//! # cep
//!
//! A complex event processing (CEP) stack with join-query-optimization-based
//! plan generation — a from-scratch Rust implementation of Kolchinsky &
//! Schuster, *Join Query Optimization Techniques for Complex Event
//! Processing Applications* (VLDB 2018, arXiv:1801.09413).
//!
//! ## Crates
//!
//! * [`core`] (`cep-core`) — events, patterns, predicates, evaluation
//!   plans, cost models, statistics, and the naive oracle engine.
//! * [`nfa`] (`cep-nfa`) — the order-based (lazy chain NFA) engine.
//! * [`tree`] (`cep-tree`) — the tree-based (ZStream-style) engine.
//! * [`delta`] (`cep-delta`) — the delta-indexed, non-materializing
//!   engine: windowed equality-join indexes instead of partial matches,
//!   with on-demand match enumeration.
//! * [`optimizer`] (`cep-optimizer`) — TRIVIAL/EFREQ (native CPG) and
//!   GREEDY/II/DP/KBZ/ZSTREAM (adapted JQPG) plan generation.
//! * [`sase`] (`cep-sase`) — parser for SASE-style pattern specifications.
//! * [`shard`] (`cep-shard`) — partitioned parallel runtime with a
//!   deterministic, dedup-aware merge; cross-partition queries run under
//!   replicate-join routing.
//! * [`adaptive`] (`cep-adaptive`) — live plan swap: rate- and
//!   selectivity-drift-triggered replanning with swap-cost amortization
//!   and retained-window state migration.
//! * [`streamgen`] (`cep-streamgen`) — synthetic stock streams (plain,
//!   partition-replicated, drifting-rate, and drifting-selectivity) and
//!   the paper's five-category workloads.
//! * [`analyze`] (`cep-analyze`) — static query and plan analysis:
//!   satisfiability linting (`A001`), schema checks, redundant-predicate
//!   and dead-negation detection, Kleene state-blowup warnings, and the
//!   plan-invariant verifier (`A010`) the planner, adaptive swap path,
//!   and sharded runtime run in debug builds. Ships the `cep-lint` tool.
//! * [`obs`] (`cep-obs`) — observability: structured trace records
//!   (plan-swap decisions, replay windows, shard routing and queue
//!   depths, match emissions) behind a near-zero-cost [`obs::Tracer`],
//!   log₂-bucketed latency histograms with p50/p95/p99, and a
//!   [`obs::MetricsRegistry`] rendering Prometheus text exposition and
//!   JSON. Tracing only observes: traced runs are byte-identical to
//!   untraced ones.
//!
//! ## Quick start
//!
//! ```
//! use cep::prelude::*;
//! use cep::core::engine::run_to_completion;
//!
//! // Catalog and stream (synthetic stock updates).
//! let config = StockConfig::nasdaq_like(8, 30_000, 0.5, 42);
//! let mut catalog = cep::core::schema::Catalog::new();
//! let generated = StockStreamGenerator::generate(&config, &mut catalog).unwrap();
//!
//! // A pattern in SASE syntax.
//! let pattern = parse_pattern(
//!     "PATTERN SEQ(S0000 a, S0001 b) WHERE a.difference < b.difference WITHIN 5 s",
//!     &catalog,
//! ).unwrap();
//!
//! // Plan with an adapted join algorithm and run the NFA engine.
//! let mut engine = cep::build_nfa_engine(
//!     &pattern,
//!     &generated,
//!     OrderAlgorithm::DpLd,
//!     Default::default(),
//! ).unwrap();
//! let result = run_to_completion(engine.as_mut(), &generated.stream, true);
//! println!("{} matches", result.match_count);
//! ```

#![warn(missing_docs)]

pub use cep_adaptive as adaptive;
pub use cep_analyze as analyze;
pub use cep_core as core;
pub use cep_delta as delta;
pub use cep_nfa as nfa;
pub use cep_obs as obs;
pub use cep_optimizer as optimizer;
pub use cep_sase as sase;
pub use cep_shard as shard;
pub use cep_streamgen as streamgen;
pub use cep_tree as tree;

use cep_core::compile::CompiledPattern;
use cep_core::compiled::{shared_plan_cache, PredicateProgram, SharedPlanCache};
use cep_core::engine::{Engine, EngineConfig, EngineFactory, MultiEngine};
use cep_core::error::CepError;
use cep_core::pattern::Pattern;
use cep_core::plan::{OrderPlan, TreePlan};
use cep_delta::DeltaEngine;
use cep_nfa::NfaEngine;
use cep_optimizer::{OrderAlgorithm, Planner, TreeAlgorithm};
use cep_streamgen::{analytic_measured_stats, analytic_selectivities, GeneratedStream};
use cep_tree::TreeEngine;
use std::sync::Arc;

pub mod conformance;

/// Commonly used items, re-exported for `use cep::prelude::*`.
pub mod prelude {
    pub use cep_adaptive::{
        AdaptiveConfig, AdaptiveEngine, AdaptiveFactory, PlanKind, PlanReplanner, ReplanVerdict,
        Replanner, SwapCost,
    };
    pub use cep_analyze::{
        analyze_pattern, analyze_query_file, Code, Diagnostic, Report, Severity,
    };
    pub use cep_core::prelude::*;
    pub use cep_delta::DeltaEngine;
    pub use cep_nfa::NfaEngine;
    pub use cep_obs::{
        LatencyHistogram, MetricsRegistry, RingSink, TraceRecord, TraceSink, Tracer,
    };
    pub use cep_optimizer::planner::{LatencyAnchor, Planner, PlannerConfig};
    pub use cep_optimizer::{OrderAlgorithm, SelectivityMonitor, StatsMonitor, TreeAlgorithm};
    pub use cep_sase::{parse_pattern, pretty_pattern};
    pub use cep_shard::{RouteTarget, RoutingPolicy, ShardConfig, ShardedRuntime};
    pub use cep_streamgen::{PatternSetKind, StockConfig, StockStreamGenerator};
    pub use cep_tree::TreeEngine;
}

/// Capacity of a [`PlannedFactory`]'s compiled-plan cache: one slot per
/// DNF branch is enough (builds reuse identical patterns), with headroom
/// for wide disjunctions.
const PLAN_CACHE_CAP: usize = 64;

/// Per-branch evaluation plans shared by the engines a factory stamps out.
enum BranchPlans {
    Order(Vec<(CompiledPattern, OrderPlan)>),
    Tree(Vec<(CompiledPattern, TreePlan)>),
}

/// An [`EngineFactory`] over pre-validated branch plans: plan once, build
/// fresh engines any number of times (one per worker shard, typically).
/// Disjunctions build a [`MultiEngine`] over the DNF branches, exactly as
/// [`build_nfa_engine`] / [`build_tree_engine`] do.
struct PlannedFactory {
    branches: BranchPlans,
    window: u64,
    config: EngineConfig,
    /// Signature-keyed compiled-program cache shared by every engine this
    /// factory stamps out: each DNF branch's predicates are lowered once
    /// (on the first build) and every further build — one per worker
    /// shard, typically — reuses the cached program.
    plan_cache: SharedPlanCache,
}

impl EngineFactory for PlannedFactory {
    fn build(&self) -> Box<dyn Engine> {
        // `PlannedFactory` is only ever constructed with plans the planner
        // produced for these very compiled patterns, so engine
        // construction cannot fail. Each branch's hit/miss is stamped onto
        // the freshly built engine's metrics, so cache effectiveness
        // surfaces through the normal metrics pipeline (a [`MultiEngine`]
        // absorbs branch counters into its aggregate view).
        let fetch = |cp: &CompiledPattern| -> (Option<Arc<PredicateProgram>>, u64, u64) {
            if !self.config.compiled_predicates {
                return (None, 0, 0);
            }
            let mut cache = self.plan_cache.lock().expect("plan cache poisoned");
            let (h0, m0) = (cache.hits(), cache.misses());
            let program = cache.get_or_compile(cp);
            (Some(program), cache.hits() - h0, cache.misses() - m0)
        };
        let mut engines: Vec<Box<dyn Engine>> = match &self.branches {
            BranchPlans::Order(branches) => branches
                .iter()
                .map(|(cp, plan)| {
                    let (program, hits, misses) = fetch(cp);
                    let mut engine = Box::new(
                        NfaEngine::with_program(
                            cp.clone(),
                            plan.clone(),
                            self.config.clone(),
                            program,
                        )
                        .expect("pre-validated plan"),
                    );
                    engine.metrics_mut().plan_cache_hits = hits;
                    engine.metrics_mut().plan_cache_misses = misses;
                    engine as Box<dyn Engine>
                })
                .collect(),
            BranchPlans::Tree(branches) => branches
                .iter()
                .map(|(cp, plan)| {
                    let (program, hits, misses) = fetch(cp);
                    let mut engine = Box::new(
                        TreeEngine::with_program(
                            cp.clone(),
                            plan.clone(),
                            self.config.clone(),
                            program,
                        )
                        .expect("pre-validated plan"),
                    );
                    engine.metrics_mut().plan_cache_hits = hits;
                    engine.metrics_mut().plan_cache_misses = misses;
                    engine as Box<dyn Engine>
                })
                .collect(),
        };
        if engines.len() == 1 {
            engines.pop().expect("one engine")
        } else {
            Box::new(MultiEngine::new(engines, self.window))
        }
    }
}

/// Plans every DNF branch of `pattern` with `algorithm` (using the
/// generated stream's analytic statistics) and returns a factory that
/// stamps out order-based (NFA) engines for the result — the input a
/// sharded runtime ([`cep_shard::ShardedRuntime`]) needs, where each
/// worker builds its own engine from the shared plan.
pub fn nfa_engine_factory(
    pattern: &Pattern,
    gen: &GeneratedStream,
    algorithm: OrderAlgorithm,
    config: EngineConfig,
) -> Result<Box<dyn EngineFactory>, CepError> {
    let planner = Planner::default();
    let measured = analytic_measured_stats(gen);
    let compiled = CompiledPattern::compile(pattern)?;
    let mut branches = Vec::with_capacity(compiled.len());
    for cp in compiled {
        let sels = analytic_selectivities(&cp, gen);
        let stats = planner.stats_for(&cp, &measured, &sels)?;
        let plan = planner.plan_order(&cp, &stats, algorithm)?;
        branches.push((cp, plan));
    }
    Ok(Box::new(PlannedFactory {
        branches: BranchPlans::Order(branches),
        window: pattern.window,
        config,
        plan_cache: shared_plan_cache(PLAN_CACHE_CAP),
    }))
}

/// Tree-based counterpart of [`nfa_engine_factory`].
pub fn tree_engine_factory(
    pattern: &Pattern,
    gen: &GeneratedStream,
    algorithm: TreeAlgorithm,
    config: EngineConfig,
) -> Result<Box<dyn EngineFactory>, CepError> {
    let planner = Planner::default();
    let measured = analytic_measured_stats(gen);
    let compiled = CompiledPattern::compile(pattern)?;
    let mut branches = Vec::with_capacity(compiled.len());
    for cp in compiled {
        let sels = analytic_selectivities(&cp, gen);
        let stats = planner.stats_for(&cp, &measured, &sels)?;
        let plan = planner.plan_tree(&cp, &stats, algorithm)?;
        branches.push((cp, plan));
    }
    Ok(Box::new(PlannedFactory {
        branches: BranchPlans::Tree(branches),
        window: pattern.window,
        config,
        plan_cache: shared_plan_cache(PLAN_CACHE_CAP),
    }))
}

/// Compiles `pattern` and pairs each DNF branch with its analytic
/// selectivities over the generated stream.
fn compiled_branches(
    pattern: &Pattern,
    gen: &GeneratedStream,
) -> Result<Vec<(CompiledPattern, Vec<f64>)>, CepError> {
    Ok(CompiledPattern::compile(pattern)?
        .into_iter()
        .map(|cp| {
            let sels = analytic_selectivities(&cp, gen);
            (cp, sels)
        })
        .collect())
}

/// Event pairs the full-adaptive factories' selectivity monitors sample
/// per estimate.
const SELECTIVITY_MAX_PAIRS: usize = 512;

/// Shared construction site of the four adaptive factories: a
/// [`cep_adaptive::PlanReplanner`] over the pattern's DNF branches and the
/// generated stream's analytic statistics, optionally with online
/// selectivity monitoring, wrapped in an [`cep_adaptive::AdaptiveFactory`].
fn adaptive_factory(
    pattern: &Pattern,
    gen: &GeneratedStream,
    kind: cep_adaptive::PlanKind,
    config: EngineConfig,
    adaptive: cep_adaptive::AdaptiveConfig,
    monitor_selectivities: bool,
) -> Result<Box<dyn EngineFactory>, CepError> {
    let mut replanner = cep_adaptive::PlanReplanner::new(
        compiled_branches(pattern, gen)?,
        &analytic_measured_stats(gen),
        Planner::default(),
        kind,
        config,
    )?;
    if monitor_selectivities {
        replanner = replanner.with_selectivity_monitoring(
            adaptive.horizon_ms,
            adaptive.drift_threshold,
            SELECTIVITY_MAX_PAIRS,
        );
    }
    Ok(Box::new(cep_adaptive::AdaptiveFactory::new(
        replanner,
        pattern.window,
        adaptive,
    )))
}

/// Adaptive counterpart of [`nfa_engine_factory`]: every engine the
/// factory stamps out wraps its NFA engine in a
/// [`cep_adaptive::AdaptiveEngine`] that monitors arrival-rate drift on
/// its own input, replans with `algorithm` from live estimates, and
/// hot-swaps plans with retained-window state migration. The initial plan
/// comes from the generated stream's analytic statistics, exactly like the
/// static factory's. Handing this factory to a
/// [`cep_shard::ShardedRuntime`] gives per-shard independent replanning.
pub fn adaptive_nfa_engine_factory(
    pattern: &Pattern,
    gen: &GeneratedStream,
    algorithm: OrderAlgorithm,
    config: EngineConfig,
    adaptive: cep_adaptive::AdaptiveConfig,
) -> Result<Box<dyn EngineFactory>, CepError> {
    let kind = cep_adaptive::PlanKind::Order(algorithm);
    adaptive_factory(pattern, gen, kind, config, adaptive, false)
}

/// Tree-based counterpart of [`adaptive_nfa_engine_factory`].
pub fn adaptive_tree_engine_factory(
    pattern: &Pattern,
    gen: &GeneratedStream,
    algorithm: TreeAlgorithm,
    config: EngineConfig,
    adaptive: cep_adaptive::AdaptiveConfig,
) -> Result<Box<dyn EngineFactory>, CepError> {
    let kind = cep_adaptive::PlanKind::Tree(algorithm);
    adaptive_factory(pattern, gen, kind, config, adaptive, false)
}

/// *Fully* adaptive counterpart of [`adaptive_nfa_engine_factory`]: the
/// stamped-out engines additionally re-estimate predicate selectivities
/// online (sampling event pairs over the drift horizon), so a stream whose
/// correlations shift while its arrival rates stay flat — invisible to the
/// rate-only monitor — still triggers a replan. Swaps remain
/// swap-cost-gated per [`cep_adaptive::AdaptiveConfig::amortize_windows`].
pub fn full_adaptive_nfa_engine_factory(
    pattern: &Pattern,
    gen: &GeneratedStream,
    algorithm: OrderAlgorithm,
    config: EngineConfig,
    adaptive: cep_adaptive::AdaptiveConfig,
) -> Result<Box<dyn EngineFactory>, CepError> {
    let kind = cep_adaptive::PlanKind::Order(algorithm);
    adaptive_factory(pattern, gen, kind, config, adaptive, true)
}

/// Tree-based counterpart of [`full_adaptive_nfa_engine_factory`].
pub fn full_adaptive_tree_engine_factory(
    pattern: &Pattern,
    gen: &GeneratedStream,
    algorithm: TreeAlgorithm,
    config: EngineConfig,
    adaptive: cep_adaptive::AdaptiveConfig,
) -> Result<Box<dyn EngineFactory>, CepError> {
    let kind = cep_adaptive::PlanKind::Tree(algorithm);
    adaptive_factory(pattern, gen, kind, config, adaptive, true)
}

/// Replicate-join counterpart of [`nfa_engine_factory`] for
/// **cross-partition** queries (correlation attribute ≠ partition/routing
/// attribute): returns the planned factory *plus* the
/// [`cep_shard::RoutingPolicy::ReplicateJoin`] policy to run it under.
///
/// The policy wraps a [`cep_core::partition::PartitionSpec`] derived by
/// [`cep_core::partition::QueryPartitioner`] from the pattern's equality
/// predicates and the generated stream's analytic rates: key-linked types
/// are hashed by their join key, the (low-rate) remainder is broadcast to
/// every shard. Hand both to [`cep_shard::ShardedRuntime::run`] (or
/// `run_query`) and the merged output is byte-identical to the
/// single-threaded engine for any shard count, under the three exact
/// selection strategies.
pub fn replicate_join_nfa_engine_factory(
    pattern: &Pattern,
    gen: &GeneratedStream,
    algorithm: OrderAlgorithm,
    config: EngineConfig,
) -> Result<(Box<dyn EngineFactory>, cep_shard::RoutingPolicy), CepError> {
    let factory = nfa_engine_factory(pattern, gen, algorithm, config)?;
    Ok((factory, replicate_join_policy(pattern, gen)?))
}

/// Tree-based counterpart of [`replicate_join_nfa_engine_factory`].
pub fn replicate_join_tree_engine_factory(
    pattern: &Pattern,
    gen: &GeneratedStream,
    algorithm: TreeAlgorithm,
    config: EngineConfig,
) -> Result<(Box<dyn EngineFactory>, cep_shard::RoutingPolicy), CepError> {
    let factory = tree_engine_factory(pattern, gen, algorithm, config)?;
    Ok((factory, replicate_join_policy(pattern, gen)?))
}

/// The replicate-join routing policy for `pattern` over the generated
/// stream's analytic statistics (shared by the two factories above).
fn replicate_join_policy(
    pattern: &Pattern,
    gen: &GeneratedStream,
) -> Result<cep_shard::RoutingPolicy, CepError> {
    let branches = CompiledPattern::compile(pattern)?;
    let spec = cep_core::partition::QueryPartitioner::analyze_measured(
        &branches,
        &analytic_measured_stats(gen),
    )?;
    Ok(cep_shard::RoutingPolicy::ReplicateJoin(
        std::sync::Arc::new(spec),
    ))
}

/// An [`EngineFactory`] stamping out [`DeltaEngine`]s — one per DNF
/// branch, wrapped in a [`MultiEngine`] for disjunctions. The delta
/// engine needs no evaluation plan (its join order is chosen per probe
/// from live index sizes), so unlike [`PlannedFactory`] there is no
/// planner input; the shared plan cache still deduplicates predicate
/// lowering across builds.
struct DeltaFactory {
    branches: Vec<CompiledPattern>,
    window: u64,
    config: EngineConfig,
    plan_cache: SharedPlanCache,
}

impl EngineFactory for DeltaFactory {
    fn build(&self) -> Box<dyn Engine> {
        let fetch = |cp: &CompiledPattern| -> (Option<Arc<PredicateProgram>>, u64, u64) {
            if !self.config.compiled_predicates {
                return (None, 0, 0);
            }
            let mut cache = self.plan_cache.lock().expect("plan cache poisoned");
            let (h0, m0) = (cache.hits(), cache.misses());
            let program = cache.get_or_compile(cp);
            (Some(program), cache.hits() - h0, cache.misses() - m0)
        };
        let mut engines: Vec<Box<dyn Engine>> = self
            .branches
            .iter()
            .map(|cp| {
                let (program, hits, misses) = fetch(cp);
                let mut engine = Box::new(DeltaEngine::with_program(
                    cp.clone(),
                    self.config.clone(),
                    program,
                ));
                engine.metrics_mut().plan_cache_hits = hits;
                engine.metrics_mut().plan_cache_misses = misses;
                engine as Box<dyn Engine>
            })
            .collect();
        if engines.len() == 1 {
            engines.pop().expect("one engine")
        } else {
            Box::new(MultiEngine::new(engines, self.window))
        }
    }
}

/// Delta-indexed counterpart of [`nfa_engine_factory`]: compiles
/// `pattern`'s DNF branches and returns a factory stamping out
/// non-materializing [`DeltaEngine`]s. No stream statistics are needed —
/// the engine orders its joins at probe time from live index sizes — so
/// this is the factory of choice when no representative sample of the
/// stream exists yet. Being an [`EngineFactory`], it composes with
/// [`cep_shard::ShardedRuntime`] like every other backend.
pub fn delta_engine_factory(
    pattern: &Pattern,
    config: EngineConfig,
) -> Result<Box<dyn EngineFactory>, CepError> {
    let branches = CompiledPattern::compile(pattern)?;
    Ok(Box::new(DeltaFactory {
        branches,
        window: pattern.window,
        config,
        plan_cache: shared_plan_cache(PLAN_CACHE_CAP),
    }))
}

/// Builds a delta-indexed engine for `pattern` (see
/// [`delta_engine_factory`]).
pub fn build_delta_engine(
    pattern: &Pattern,
    config: EngineConfig,
) -> Result<Box<dyn Engine>, CepError> {
    Ok(delta_engine_factory(pattern, config)?.build())
}

/// Builds an order-based (NFA) engine for `pattern`, planning every DNF
/// branch with `algorithm` using the generated stream's analytic
/// statistics. Disjunctions produce a [`MultiEngine`] internally.
pub fn build_nfa_engine(
    pattern: &Pattern,
    gen: &GeneratedStream,
    algorithm: OrderAlgorithm,
    config: EngineConfig,
) -> Result<Box<dyn Engine>, CepError> {
    Ok(nfa_engine_factory(pattern, gen, algorithm, config)?.build())
}

/// Builds a tree-based engine for `pattern` (see [`build_nfa_engine`]).
pub fn build_tree_engine(
    pattern: &Pattern,
    gen: &GeneratedStream,
    algorithm: TreeAlgorithm,
    config: EngineConfig,
) -> Result<Box<dyn Engine>, CepError> {
    Ok(tree_engine_factory(pattern, gen, algorithm, config)?.build())
}
