//! # cep
//!
//! A complex event processing (CEP) stack with join-query-optimization-based
//! plan generation — a from-scratch Rust implementation of Kolchinsky &
//! Schuster, *Join Query Optimization Techniques for Complex Event
//! Processing Applications* (VLDB 2018, arXiv:1801.09413).
//!
//! ## Crates
//!
//! * [`core`] (`cep-core`) — events, patterns, predicates, evaluation
//!   plans, cost models, statistics, the naive oracle engine, and the
//!   multi-query [`core::registry::QueryRegistry`] with shared-fragment
//!   execution.
//! * [`nfa`] (`cep-nfa`) — the order-based (lazy chain NFA) engine.
//! * [`tree`] (`cep-tree`) — the tree-based (ZStream-style) engine.
//! * [`delta`] (`cep-delta`) — the delta-indexed, non-materializing
//!   engine: windowed equality-join indexes instead of partial matches,
//!   with on-demand match enumeration.
//! * [`optimizer`] (`cep-optimizer`) — TRIVIAL/EFREQ (native CPG) and
//!   GREEDY/II/DP/KBZ/ZSTREAM (adapted JQPG) plan generation.
//! * [`sase`] (`cep-sase`) — parser for SASE-style pattern specifications.
//! * [`shard`] (`cep-shard`) — partitioned parallel runtime with a
//!   deterministic, dedup-aware merge; cross-partition queries run under
//!   replicate-join routing, and registered query *sets* run under the
//!   multi-query layout ([`shard::ShardedRuntime::run_registry`]).
//! * [`adaptive`] (`cep-adaptive`) — live plan swap: rate- and
//!   selectivity-drift-triggered replanning with swap-cost amortization
//!   and retained-window state migration.
//! * [`streamgen`] (`cep-streamgen`) — synthetic stock streams (plain,
//!   partition-replicated, drifting-rate, and drifting-selectivity) and
//!   the paper's five-category workloads.
//! * [`analyze`] (`cep-analyze`) — static query and plan analysis:
//!   satisfiability linting (`A001`), schema checks, redundant-predicate
//!   and dead-negation detection, Kleene state-blowup warnings, and the
//!   plan-invariant verifier (`A010`) the planner, adaptive swap path,
//!   and sharded runtime run in debug builds. Ships the `cep-lint` tool.
//! * [`obs`] (`cep-obs`) — observability: structured trace records
//!   (plan-swap decisions, replay windows, shard routing and queue
//!   depths, match emissions, query registrations) behind a
//!   near-zero-cost [`obs::Tracer`], log₂-bucketed latency histograms
//!   with p50/p95/p99, and a [`obs::MetricsRegistry`] rendering
//!   Prometheus text exposition and JSON. Tracing only observes: traced
//!   runs are byte-identical to untraced ones.
//!
//! ## Quick start
//!
//! Engines are constructed through the fluent [`EngineBuilder`]
//! (see [`engine`]); multi-query execution through the
//! [`RegistryBuilder`] (see [`registry`]). The constructor functions of
//! earlier releases still exist as `#[deprecated]` shims — the
//! [`builder`] module docs carry the full migration table.
//!
//! ```
//! use cep::prelude::*;
//! use cep::core::engine::run_to_completion;
//!
//! // Catalog and stream (synthetic stock updates).
//! let config = StockConfig::nasdaq_like(8, 30_000, 0.5, 42);
//! let mut catalog = cep::core::schema::Catalog::new();
//! let generated = StockStreamGenerator::generate(&config, &mut catalog).unwrap();
//!
//! // A pattern in SASE syntax.
//! let pattern = parse_pattern(
//!     "PATTERN SEQ(S0000 a, S0001 b) WHERE a.difference < b.difference WITHIN 5 s",
//!     &catalog,
//! ).unwrap();
//!
//! // Plan with an adapted join algorithm and run the NFA engine.
//! let mut engine = cep::engine(&pattern)
//!     .backend(Backend::Nfa(OrderAlgorithm::DpLd))
//!     .stats(&generated)
//!     .build()
//!     .unwrap();
//! let result = run_to_completion(engine.as_mut(), &generated.stream, true);
//! println!("{} matches", result.match_count);
//! ```

#![warn(missing_docs)]

pub use cep_adaptive as adaptive;
pub use cep_analyze as analyze;
pub use cep_core as core;
pub use cep_delta as delta;
pub use cep_nfa as nfa;
pub use cep_obs as obs;
pub use cep_optimizer as optimizer;
pub use cep_sase as sase;
pub use cep_shard as shard;
pub use cep_streamgen as streamgen;
pub use cep_tree as tree;

use cep_core::engine::{Engine, EngineConfig, EngineFactory};
use cep_core::error::CepError;
use cep_core::pattern::Pattern;
use cep_optimizer::{OrderAlgorithm, TreeAlgorithm};
use cep_streamgen::GeneratedStream;

pub mod builder;
pub mod conformance;

pub use builder::{engine, registry, Backend, EngineBuilder, RegistryBuilder};

/// Commonly used items, re-exported for `use cep::prelude::*`.
pub mod prelude {
    pub use crate::builder::{Backend, EngineBuilder, RegistryBuilder};
    pub use cep_adaptive::{
        AdaptiveConfig, AdaptiveEngine, AdaptiveFactory, PlanKind, PlanReplanner, ReplanVerdict,
        Replanner, SwapCost,
    };
    pub use cep_analyze::{
        analyze_pattern, analyze_query_file, Code, Diagnostic, Report, Severity,
    };
    pub use cep_core::prelude::*;
    pub use cep_delta::DeltaEngine;
    pub use cep_nfa::NfaEngine;
    pub use cep_obs::{RingSink, TraceSink};
    pub use cep_optimizer::planner::{LatencyAnchor, Planner, PlannerConfig};
    pub use cep_optimizer::{OrderAlgorithm, SelectivityMonitor, StatsMonitor, TreeAlgorithm};
    pub use cep_sase::{parse_pattern, pretty_pattern};
    pub use cep_shard::{
        MultiQueryRunResult, RouteTarget, RoutingPolicy, ShardConfig, ShardedRuntime,
    };
    pub use cep_streamgen::{PatternSetKind, StockConfig, StockStreamGenerator};
    pub use cep_tree::TreeEngine;
}

/// Plans every DNF branch of `pattern` with `algorithm` and returns a
/// factory stamping out order-based (NFA) engines.
#[deprecated(
    since = "0.1.0",
    note = "use cep::engine(pattern).backend(Backend::Nfa(algorithm)).stats(gen).config(config).factory()"
)]
pub fn nfa_engine_factory(
    pattern: &Pattern,
    gen: &GeneratedStream,
    algorithm: OrderAlgorithm,
    config: EngineConfig,
) -> Result<Box<dyn EngineFactory>, CepError> {
    engine(pattern)
        .backend(Backend::Nfa(algorithm))
        .stats(gen)
        .config(config)
        .factory()
}

/// Tree-based counterpart of `nfa_engine_factory`.
#[deprecated(
    since = "0.1.0",
    note = "use cep::engine(pattern).backend(Backend::Tree(algorithm)).stats(gen).config(config).factory()"
)]
pub fn tree_engine_factory(
    pattern: &Pattern,
    gen: &GeneratedStream,
    algorithm: TreeAlgorithm,
    config: EngineConfig,
) -> Result<Box<dyn EngineFactory>, CepError> {
    engine(pattern)
        .backend(Backend::Tree(algorithm))
        .stats(gen)
        .config(config)
        .factory()
}

/// Adaptive counterpart of `nfa_engine_factory`: stamped-out engines
/// monitor arrival-rate drift and hot-swap replanned orders.
#[deprecated(
    since = "0.1.0",
    note = "use cep::engine(pattern).backend(Backend::Nfa(algorithm)).stats(gen).config(config).adaptive(adaptive).factory()"
)]
pub fn adaptive_nfa_engine_factory(
    pattern: &Pattern,
    gen: &GeneratedStream,
    algorithm: OrderAlgorithm,
    config: EngineConfig,
    adaptive: cep_adaptive::AdaptiveConfig,
) -> Result<Box<dyn EngineFactory>, CepError> {
    engine(pattern)
        .backend(Backend::Nfa(algorithm))
        .stats(gen)
        .config(config)
        .adaptive(adaptive)
        .factory()
}

/// Tree-based counterpart of `adaptive_nfa_engine_factory`.
#[deprecated(
    since = "0.1.0",
    note = "use cep::engine(pattern).backend(Backend::Tree(algorithm)).stats(gen).config(config).adaptive(adaptive).factory()"
)]
pub fn adaptive_tree_engine_factory(
    pattern: &Pattern,
    gen: &GeneratedStream,
    algorithm: TreeAlgorithm,
    config: EngineConfig,
    adaptive: cep_adaptive::AdaptiveConfig,
) -> Result<Box<dyn EngineFactory>, CepError> {
    engine(pattern)
        .backend(Backend::Tree(algorithm))
        .stats(gen)
        .config(config)
        .adaptive(adaptive)
        .factory()
}

/// *Fully* adaptive counterpart of `adaptive_nfa_engine_factory`:
/// additionally re-estimates predicate selectivities online.
#[deprecated(
    since = "0.1.0",
    note = "use cep::engine(pattern).backend(Backend::Nfa(algorithm)).stats(gen).config(config).full_adaptive(adaptive).factory()"
)]
pub fn full_adaptive_nfa_engine_factory(
    pattern: &Pattern,
    gen: &GeneratedStream,
    algorithm: OrderAlgorithm,
    config: EngineConfig,
    adaptive: cep_adaptive::AdaptiveConfig,
) -> Result<Box<dyn EngineFactory>, CepError> {
    engine(pattern)
        .backend(Backend::Nfa(algorithm))
        .stats(gen)
        .config(config)
        .full_adaptive(adaptive)
        .factory()
}

/// Tree-based counterpart of `full_adaptive_nfa_engine_factory`.
#[deprecated(
    since = "0.1.0",
    note = "use cep::engine(pattern).backend(Backend::Tree(algorithm)).stats(gen).config(config).full_adaptive(adaptive).factory()"
)]
pub fn full_adaptive_tree_engine_factory(
    pattern: &Pattern,
    gen: &GeneratedStream,
    algorithm: TreeAlgorithm,
    config: EngineConfig,
    adaptive: cep_adaptive::AdaptiveConfig,
) -> Result<Box<dyn EngineFactory>, CepError> {
    engine(pattern)
        .backend(Backend::Tree(algorithm))
        .stats(gen)
        .config(config)
        .full_adaptive(adaptive)
        .factory()
}

/// Replicate-join counterpart of `nfa_engine_factory` for
/// cross-partition queries: the planned factory plus the
/// [`cep_shard::RoutingPolicy::ReplicateJoin`] policy to run it under.
#[deprecated(
    since = "0.1.0",
    note = "use cep::engine(pattern).backend(Backend::Nfa(algorithm)).stats(gen).config(config).replicate_join().factory_and_policy()"
)]
pub fn replicate_join_nfa_engine_factory(
    pattern: &Pattern,
    gen: &GeneratedStream,
    algorithm: OrderAlgorithm,
    config: EngineConfig,
) -> Result<(Box<dyn EngineFactory>, cep_shard::RoutingPolicy), CepError> {
    engine(pattern)
        .backend(Backend::Nfa(algorithm))
        .stats(gen)
        .config(config)
        .replicate_join()
        .factory_and_policy()
}

/// Tree-based counterpart of `replicate_join_nfa_engine_factory`.
#[deprecated(
    since = "0.1.0",
    note = "use cep::engine(pattern).backend(Backend::Tree(algorithm)).stats(gen).config(config).replicate_join().factory_and_policy()"
)]
pub fn replicate_join_tree_engine_factory(
    pattern: &Pattern,
    gen: &GeneratedStream,
    algorithm: TreeAlgorithm,
    config: EngineConfig,
) -> Result<(Box<dyn EngineFactory>, cep_shard::RoutingPolicy), CepError> {
    engine(pattern)
        .backend(Backend::Tree(algorithm))
        .stats(gen)
        .config(config)
        .replicate_join()
        .factory_and_policy()
}

/// Delta-indexed counterpart of `nfa_engine_factory`: stamps out
/// non-materializing delta engines; no stream statistics are needed.
#[deprecated(
    since = "0.1.0",
    note = "use cep::engine(pattern).config(config).factory() — delta is the default backend"
)]
pub fn delta_engine_factory(
    pattern: &Pattern,
    config: EngineConfig,
) -> Result<Box<dyn EngineFactory>, CepError> {
    engine(pattern)
        .backend(Backend::Delta)
        .config(config)
        .factory()
}

/// Builds a delta-indexed engine for `pattern`.
#[deprecated(
    since = "0.1.0",
    note = "use cep::engine(pattern).config(config).build() — delta is the default backend"
)]
pub fn build_delta_engine(
    pattern: &Pattern,
    config: EngineConfig,
) -> Result<Box<dyn Engine>, CepError> {
    engine(pattern)
        .backend(Backend::Delta)
        .config(config)
        .build()
}

/// Builds an order-based (NFA) engine for `pattern`, planning every DNF
/// branch with `algorithm`.
#[deprecated(
    since = "0.1.0",
    note = "use cep::engine(pattern).backend(Backend::Nfa(algorithm)).stats(gen).config(config).build()"
)]
pub fn build_nfa_engine(
    pattern: &Pattern,
    gen: &GeneratedStream,
    algorithm: OrderAlgorithm,
    config: EngineConfig,
) -> Result<Box<dyn Engine>, CepError> {
    engine(pattern)
        .backend(Backend::Nfa(algorithm))
        .stats(gen)
        .config(config)
        .build()
}

/// Builds a tree-based engine for `pattern` (see `build_nfa_engine`).
#[deprecated(
    since = "0.1.0",
    note = "use cep::engine(pattern).backend(Backend::Tree(algorithm)).stats(gen).config(config).build()"
)]
pub fn build_tree_engine(
    pattern: &Pattern,
    gen: &GeneratedStream,
    algorithm: TreeAlgorithm,
    config: EngineConfig,
) -> Result<Box<dyn Engine>, CepError> {
    engine(pattern)
        .backend(Backend::Tree(algorithm))
        .stats(gen)
        .config(config)
        .build()
}
