//! Backend-parametric conformance harness: differential testing of any
//! [`Engine`] backend against the naive exhaustive oracle.
//!
//! This is the load-bearing correctness property behind the whole
//! evaluation — Section 2.2's claim that "all (n!) NFAs track the exact
//! same pattern", extended to tree plans and the delta-indexed backend.
//! The harness owns the random-pattern/random-stream machinery the
//! `engine_equivalence` integration suite draws from, plus the backend
//! registry: a [`Backend`] is a named constructor from a compiled pattern
//! (and a plan seed) to a boxed engine, and [`check_equivalence_under`]
//! runs every registered backend — interpreted and compiled predicate
//! paths both — over the same stream, asserting output *byte-identical*
//! to the oracle: sorted `(signature, emitted_at)` pairs, not just match
//! sets. New backends get the full differential sweep by adding one entry
//! to [`standard_backends`].

use std::sync::Arc;

use cep_core::compile::CompiledPattern;
use cep_core::compiled::PredicateProgram;
use cep_core::engine::{run_to_completion, Engine, EngineConfig, MultiEngine};
use cep_core::event::{Event, EventRef, TypeId};
use cep_core::matches::{validate_match, Match};
use cep_core::naive::NaiveEngine;
use cep_core::pattern::{Pattern, PatternBuilder, PatternExpr};
use cep_core::plan::{OrderPlan, TreeNode, TreePlan};
use cep_core::predicate::{CmpOp, Predicate};
use cep_core::registry::{FragmentBuilder, QueryRegistry};
use cep_core::selection::SelectionStrategy;
use cep_core::stream::{EventStream, StreamBuilder};
use cep_core::value::Value;
use cep_delta::DeltaEngine;
use cep_nfa::NfaEngine;
use cep_tree::TreeEngine;

/// Random pattern description, typically drawn by proptest.
#[derive(Debug, Clone)]
pub struct PatternSpec {
    /// SEQ (true) or AND (false).
    pub is_seq: bool,
    /// Per element: event type, and a flag — 0 plain, 1 negated, 2 Kleene.
    pub elements: Vec<(u32, u8)>,
    /// Predicates between element indices: `(i, j, op-code)`, indices
    /// taken modulo the element count, self-pairs and negated endpoints
    /// skipped.
    pub predicates: Vec<(usize, usize, u8)>,
    /// Pattern window.
    pub window: u64,
}

/// Maps a raw op-code to a comparison operator (`Eq` is excluded here:
/// equality joins get dedicated fixtures where hits are likely).
pub fn op_of(code: u8) -> CmpOp {
    match code % 4 {
        0 => CmpOp::Lt,
        1 => CmpOp::Le,
        2 => CmpOp::Ne,
        _ => CmpOp::Gt,
    }
}

/// Materializes a [`PatternSpec`], or `None` for structurally degenerate
/// draws (e.g. no positive element).
pub fn build_pattern(spec: &PatternSpec) -> Option<Pattern> {
    let mut b = PatternBuilder::new(spec.window);
    let evs: Vec<_> = spec
        .elements
        .iter()
        .enumerate()
        .map(|(i, (t, _))| b.event(TypeId(*t), &format!("e{i}")))
        .collect();
    for &(i, j, opc) in &spec.predicates {
        let (i, j) = (i % evs.len(), j % evs.len());
        if i == j {
            continue;
        }
        // Predicates only between non-negated elements (negated predicates
        // are exercised separately).
        if spec.elements[i].1 == 1 || spec.elements[j].1 == 1 {
            continue;
        }
        b.predicate(Predicate::attr_cmp(
            evs[i].pos(),
            0,
            op_of(opc),
            evs[j].pos(),
            0,
        ));
    }
    let exprs: Vec<PatternExpr> = evs
        .iter()
        .zip(&spec.elements)
        .map(|(&e, (_, flag))| match flag {
            1 => b.not(e),
            2 => b.kleene(e),
            _ => b.expr(e),
        })
        .collect();
    let result = if spec.is_seq {
        b.seq_exprs(exprs)
    } else {
        b.and_exprs(exprs)
    };
    result.ok().filter(|p| {
        // Need at least one positive element.
        p.primitives().iter().any(|pr| !pr.negated)
    })
}

/// Materializes a raw `(type, Δts, attr)` tuple list as a stream (types
/// modulo 5, Δts modulo 4 — ties included).
pub fn build_stream(raw: &[(u32, u8, i8)]) -> Vec<EventRef> {
    let mut sb = StreamBuilder::new();
    let mut ts = 0u64;
    for &(tid, dt, x) in raw {
        ts += (dt % 4) as u64;
        sb.push(Event::new(TypeId(tid % 5), ts, vec![Value::Int(x as i64)]));
    }
    sb.build()
}

/// Sorted match signatures — the set-identity key.
pub fn signatures(ms: &[Match]) -> Vec<Vec<(usize, Vec<u64>)>> {
    let mut sigs: Vec<_> = ms.iter().map(|m| m.signature()).collect();
    sigs.sort();
    sigs
}

/// A match's byte-identity key: its signature paired with `emitted_at`.
pub type MatchKey = (Vec<(usize, Vec<u64>)>, u64);

/// Sorted `(signature, emitted_at)` pairs — the byte-identity key: two
/// engines agreeing here emit the same matches *at the same watermarks*.
pub fn keyed(ms: &[Match]) -> Vec<MatchKey> {
    let mut ks: Vec<_> = ms.iter().map(|m| (m.signature(), m.emitted_at)).collect();
    ks.sort();
    ks
}

/// Deterministic "random" permutation of `0..n` derived from a seed.
pub fn order_from_seed(n: usize, seed: u64) -> Vec<usize> {
    let mut order: Vec<usize> = (0..n).collect();
    let mut s = seed | 1;
    for i in (1..n).rev() {
        s = s
            .wrapping_mul(6364136223846793005)
            .wrapping_add(1442695040888963407);
        let j = (s >> 33) as usize % (i + 1);
        order.swap(i, j);
    }
    order
}

/// Deterministic random binary tree over the given leaf order.
pub fn tree_from_order(order: &[usize], seed: u64) -> TreeNode {
    fn rec(leaves: &[usize], s: &mut u64) -> TreeNode {
        if leaves.len() == 1 {
            return TreeNode::Leaf(leaves[0]);
        }
        *s = s
            .wrapping_mul(6364136223846793005)
            .wrapping_add(1442695040888963407);
        let split = 1 + ((*s >> 33) as usize % (leaves.len() - 1));
        TreeNode::join(rec(&leaves[..split], s), rec(&leaves[split..], s))
    }
    let mut s = seed | 1;
    rec(order, &mut s)
}

/// A backend constructor: compiled pattern + plan seed + config → engine.
/// `Send + Sync` so a [`Backend`] can double as a registry
/// [`FragmentBuilder`] in the multi-query conformance check.
type BackendCtor =
    Box<dyn Fn(&CompiledPattern, u64, &EngineConfig) -> Box<dyn Engine> + Send + Sync>;

/// A named engine backend under conformance test: a constructor from a
/// compiled pattern, a plan seed (backends that need an evaluation plan
/// derive a deterministic random one from it), and an engine config.
pub struct Backend {
    /// Backend name, used in assertion messages.
    pub name: &'static str,
    build: BackendCtor,
}

impl Backend {
    /// Creates a backend from a name and a constructor.
    pub fn new(
        name: &'static str,
        build: impl Fn(&CompiledPattern, u64, &EngineConfig) -> Box<dyn Engine> + Send + Sync + 'static,
    ) -> Backend {
        Backend {
            name,
            build: Box::new(build),
        }
    }

    /// Builds a fresh engine for `cp` under plan seed `seed`.
    pub fn build(&self, cp: &CompiledPattern, seed: u64, cfg: &EngineConfig) -> Box<dyn Engine> {
        (self.build)(cp, seed, cfg)
    }
}

/// The three production backends: the lazy NFA under a seed-derived random
/// order plan, the tree engine under a seed-derived random tree plan, and
/// the (plan-free) delta-indexed engine.
pub fn standard_backends() -> Vec<Backend> {
    vec![
        Backend::new("nfa", |cp, seed, cfg| {
            let order = order_from_seed(cp.n(), seed);
            let plan = OrderPlan::new(order).expect("permutation");
            Box::new(NfaEngine::new(cp.clone(), plan, cfg.clone()).expect("valid plan"))
        }),
        Backend::new("tree", |cp, seed, cfg| {
            let order = order_from_seed(cp.n(), seed);
            let tree = TreePlan::new(tree_from_order(&order, seed ^ 0xABCD)).expect("valid tree");
            Box::new(TreeEngine::new(cp.clone(), tree, cfg.clone()).expect("valid plan"))
        }),
        Backend::new("delta", |cp, _seed, cfg| {
            Box::new(DeltaEngine::new(cp.clone(), cfg.clone()))
        }),
    ]
}

/// [`check_equivalence_under`] with skip-till-any-match.
pub fn check_equivalence(spec: PatternSpec, raw_stream: Vec<(u32, u8, i8)>, seed: u64) {
    check_equivalence_under(spec, raw_stream, seed, SelectionStrategy::SkipTillAnyMatch);
}

/// Runs every [`standard_backends`] backend — interpreted and compiled
/// predicate paths both — over the spec'd pattern and stream under
/// `strategy`, asserting each backend's output byte-identical
/// (`(signature, emitted_at)`, see [`keyed`]) to the naive oracle's.
/// Degenerate draws (unbuildable patterns) are silently skipped, matching
/// proptest usage.
pub fn check_equivalence_under(
    spec: PatternSpec,
    raw_stream: Vec<(u32, u8, i8)>,
    seed: u64,
    strategy: SelectionStrategy,
) {
    let Some(mut pattern) = build_pattern(&spec) else {
        return; // structurally degenerate draw
    };
    pattern.strategy = strategy;
    let Ok(cp) = CompiledPattern::compile_single(&pattern) else {
        return;
    };
    let stream = build_stream(&raw_stream);
    let base_cfg = EngineConfig {
        max_kleene_events: 4,
        ..Default::default()
    };
    check_stream_under(&cp, &stream, &base_cfg, seed, &format!("{pattern}"));
}

/// The core differential check over an already-compiled pattern and
/// stream: oracle once, then every backend × {interpreted, compiled},
/// every emitted match structurally validated, outputs compared with
/// [`keyed`]. `context` names the query in assertion messages.
#[allow(clippy::ptr_arg)] // `EventStream` is `Vec<EventRef>`; callers hold one.
pub fn check_stream_under(
    cp: &CompiledPattern,
    stream: &EventStream,
    base_cfg: &EngineConfig,
    seed: u64,
    context: &str,
) {
    let mut oracle = NaiveEngine::new(cp.clone(), base_cfg.clone());
    let expected = keyed(&run_to_completion(&mut oracle, stream, true).matches);
    for backend in standard_backends() {
        for compiled in [false, true] {
            let cfg = EngineConfig {
                compiled_predicates: compiled,
                ..base_cfg.clone()
            };
            let mut engine = backend.build(cp, seed, &cfg);
            let matches = run_to_completion(engine.as_mut(), stream, true).matches;
            for m in &matches {
                validate_match(cp, m)
                    .unwrap_or_else(|e| panic!("{} emitted an invalid match: {e}", backend.name));
            }
            assert_eq!(
                keyed(&matches),
                expected,
                "{}(seed {seed}, compiled={compiled}) disagrees with oracle for {context}",
                backend.name
            );
        }
    }
}

/// Multi-query conformance: registers every pattern in one
/// [`QueryRegistry`] per standard backend — interpreted and compiled
/// predicate paths both — and asserts each query's collected output
/// byte-identical ([`keyed`]) to an independent per-query
/// [`MultiEngine`] over the same backend's branch engines, built under
/// the same plan seed. This is the registry's core contract: sharing
/// fragments across queries must be invisible in every query's output.
#[allow(clippy::ptr_arg)] // `EventStream` is `Vec<EventRef>`; callers hold one.
pub fn check_registry_stream(
    patterns: &[Pattern],
    stream: &EventStream,
    base_cfg: &EngineConfig,
    seed: u64,
) {
    for backend in standard_backends() {
        let backend = Arc::new(backend);
        for compiled in [false, true] {
            let cfg = EngineConfig {
                compiled_predicates: compiled,
                ..base_cfg.clone()
            };
            // Independent baselines: a fresh MultiEngine per query (one
            // branch engine per DNF branch, registry-style dedup).
            let mut expected = Vec::new();
            for pattern in patterns {
                let branches = CompiledPattern::compile(pattern).expect("compilable pattern");
                let engines: Vec<Box<dyn Engine>> = branches
                    .iter()
                    .map(|cp| backend.build(cp, seed, &cfg))
                    .collect();
                let mut multi = MultiEngine::new(engines, pattern.window);
                expected.push(keyed(&run_to_completion(&mut multi, stream, true).matches));
            }
            // One registry over all the queries, same builder and seed.
            let b = Arc::clone(&backend);
            let bcfg = cfg.clone();
            let builder: Arc<dyn FragmentBuilder> = Arc::new(
                move |cp: &CompiledPattern, _program: Option<Arc<PredicateProgram>>| {
                    Ok(b.build(cp, seed, &bcfg))
                },
            );
            let mut registry = QueryRegistry::new(builder, cfg.clone());
            let ids: Vec<_> = patterns
                .iter()
                .map(|p| registry.register(p).expect("registration"))
                .collect();
            let result = registry.run(stream);
            for (id, want) in ids.iter().zip(&expected) {
                let got = keyed(result.per_query.get(id).map_or(&[][..], Vec::as_slice));
                assert_eq!(
                    &got, want,
                    "{}(seed {seed}, compiled={compiled}): registry query {id} \
                     diverged from its independent engine",
                    backend.name
                );
            }
        }
    }
}

/// [`check_registry_equivalence_under`] with skip-till-any-match.
pub fn check_registry_equivalence(
    specs: Vec<PatternSpec>,
    raw_stream: Vec<(u32, u8, i8)>,
    seed: u64,
) {
    check_registry_equivalence_under(specs, raw_stream, seed, SelectionStrategy::SkipTillAnyMatch);
}

/// [`check_registry_stream`] over proptest-drawn specs: every buildable
/// spec becomes one registered query (degenerate draws skipped), all
/// evaluated under `strategy` over one shared stream.
pub fn check_registry_equivalence_under(
    specs: Vec<PatternSpec>,
    raw_stream: Vec<(u32, u8, i8)>,
    seed: u64,
    strategy: SelectionStrategy,
) {
    let patterns: Vec<Pattern> = specs
        .iter()
        .filter_map(build_pattern)
        .map(|mut p| {
            p.strategy = strategy;
            p
        })
        .filter(|p| CompiledPattern::compile(p).is_ok())
        .collect();
    if patterns.is_empty() {
        return;
    }
    let stream = build_stream(&raw_stream);
    let base_cfg = EngineConfig {
        max_kleene_events: 4,
        ..Default::default()
    };
    check_registry_stream(&patterns, &stream, &base_cfg, seed);
}
