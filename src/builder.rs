//! The unified construction API for the facade: [`EngineBuilder`] turns
//! one pattern into an engine or an [`EngineFactory`], [`RegistryBuilder`]
//! sets up multi-query execution ([`QueryRegistry`] / [`RegistrySpec`]),
//! and [`Backend`] names the evaluation engine family either builds on.
//!
//! # Migration from the constructor functions
//!
//! The twelve per-shape constructors of earlier releases are thin
//! `#[deprecated]` shims over this builder; replace them as follows:
//!
//! | Old constructor | Builder chain |
//! |---|---|
//! | `build_nfa_engine(p, g, alg, c)` | `engine(p).backend(Backend::Nfa(alg)).stats(g).config(c).build()` |
//! | `build_tree_engine(p, g, alg, c)` | `engine(p).backend(Backend::Tree(alg)).stats(g).config(c).build()` |
//! | `build_delta_engine(p, c)` | `engine(p).config(c).build()` (delta is the default backend) |
//! | `nfa_engine_factory(p, g, alg, c)` | `engine(p).backend(Backend::Nfa(alg)).stats(g).config(c).factory()` |
//! | `tree_engine_factory(p, g, alg, c)` | `engine(p).backend(Backend::Tree(alg)).stats(g).config(c).factory()` |
//! | `delta_engine_factory(p, c)` | `engine(p).config(c).factory()` |
//! | `adaptive_nfa_engine_factory(p, g, alg, c, a)` | `engine(p).backend(Backend::Nfa(alg)).stats(g).config(c).adaptive(a).factory()` |
//! | `adaptive_tree_engine_factory(p, g, alg, c, a)` | `engine(p).backend(Backend::Tree(alg)).stats(g).config(c).adaptive(a).factory()` |
//! | `full_adaptive_nfa_engine_factory(p, g, alg, c, a)` | `engine(p).backend(Backend::Nfa(alg)).stats(g).config(c).full_adaptive(a).factory()` |
//! | `full_adaptive_tree_engine_factory(p, g, alg, c, a)` | `engine(p).backend(Backend::Tree(alg)).stats(g).config(c).full_adaptive(a).factory()` |
//! | `replicate_join_nfa_engine_factory(p, g, alg, c)` | `engine(p).backend(Backend::Nfa(alg)).stats(g).config(c).replicate_join().factory_and_policy()` |
//! | `replicate_join_tree_engine_factory(p, g, alg, c)` | `engine(p).backend(Backend::Tree(alg)).stats(g).config(c).replicate_join().factory_and_policy()` |
//!
//! Misuse is reported up front with typed errors:
//! [`CepError::Stats`] when the NFA/tree planner (or adaptive replanning,
//! or a replicate-join policy) is requested without
//! [`stats`](EngineBuilder::stats), and [`CepError::Plan`] when adaptive
//! replanning is combined with the plan-free delta backend or a
//! [`replicate_join`](EngineBuilder::replicate_join) engine is built
//! without collecting its routing policy.

use cep_core::compile::{CompiledPattern, NaryOp};
use cep_core::compiled::{shared_plan_cache, PredicateProgram, SharedPlanCache};
use cep_core::engine::{Engine, EngineConfig, EngineFactory, MultiEngine};
use cep_core::error::CepError;
use cep_core::pattern::Pattern;
use cep_core::plan::{OrderPlan, TreePlan};
use cep_core::registry::{prefix_signature, FragmentBuilder, QueryRegistry, RegistrySpec};
use cep_core::stats::MeasuredStats;
use cep_core::stream::StreamBuilder;
use cep_delta::DeltaEngine;
use cep_nfa::NfaEngine;
use cep_optimizer::{OrderAlgorithm, Planner, TreeAlgorithm};
use cep_streamgen::{analytic_measured_stats, analytic_selectivities, GeneratedStream};
use cep_tree::TreeEngine;
use std::collections::hash_map::Entry;
use std::collections::HashMap;
use std::sync::{Arc, Mutex};

/// Capacity of a planned factory's compiled-plan cache: one slot per DNF
/// branch is enough (builds reuse identical patterns), with headroom for
/// wide disjunctions.
const PLAN_CACHE_CAP: usize = 64;

/// Event pairs the full-adaptive factories' selectivity monitors sample
/// per estimate.
const SELECTIVITY_MAX_PAIRS: usize = 512;

/// The evaluation engine family an [`EngineBuilder`] or
/// [`RegistryBuilder`] constructs.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Backend {
    /// Order-based (lazy chain NFA) evaluation, planned with the given
    /// order algorithm from stream statistics
    /// ([`EngineBuilder::stats`] is required).
    Nfa(OrderAlgorithm),
    /// Tree-based (ZStream-style) evaluation, planned with the given
    /// tree algorithm from stream statistics (`stats` is required).
    Tree(TreeAlgorithm),
    /// Delta-indexed, non-materializing evaluation. Needs no plan and no
    /// statistics — join order is chosen per probe from live index
    /// sizes — and is therefore the default backend.
    Delta,
}

/// Starts a fluent [`EngineBuilder`] for `pattern`.
///
/// ```
/// # use cep::prelude::*;
/// # let config = StockConfig::nasdaq_like(2, 200, 0.5, 7);
/// # let mut catalog = cep::core::schema::Catalog::new();
/// # let generated = StockStreamGenerator::generate(&config, &mut catalog).unwrap();
/// # let pattern = parse_pattern(
/// #     "PATTERN SEQ(S0000 a, S0001 b) WHERE a.difference < b.difference WITHIN 5 s",
/// #     &catalog,
/// # ).unwrap();
/// let mut engine = cep::engine(&pattern)
///     .backend(Backend::Nfa(OrderAlgorithm::DpLd))
///     .stats(&generated)
///     .build()
///     .unwrap();
/// ```
pub fn engine(pattern: &Pattern) -> EngineBuilder<'_> {
    EngineBuilder {
        pattern,
        backend: Backend::Delta,
        stats: None,
        config: EngineConfig::default(),
        adaptive: None,
        replicate_join: false,
    }
}

/// Fluent single-query construction: pick a [`Backend`], optionally
/// attach stream statistics, engine configuration, adaptive replanning,
/// or replicate-join routing, then terminate with
/// [`build`](EngineBuilder::build) (one engine),
/// [`factory`](EngineBuilder::factory) (an [`EngineFactory`] stamping
/// out identical engines, e.g. one per worker shard), or
/// [`factory_and_policy`](EngineBuilder::factory_and_policy) (factory
/// plus the replicate-join [`cep_shard::RoutingPolicy`] for
/// cross-partition sharding). Created by [`engine`].
pub struct EngineBuilder<'a> {
    pattern: &'a Pattern,
    backend: Backend,
    stats: Option<&'a GeneratedStream>,
    config: EngineConfig,
    adaptive: Option<(cep_adaptive::AdaptiveConfig, bool)>,
    replicate_join: bool,
}

impl<'a> EngineBuilder<'a> {
    /// Selects the evaluation backend (default: [`Backend::Delta`]).
    pub fn backend(mut self, backend: Backend) -> Self {
        self.backend = backend;
        self
    }

    /// Attaches a generated stream whose analytic statistics drive plan
    /// generation. Required by the NFA/tree backends, by adaptive
    /// replanning (initial plan + monitors), and by
    /// [`factory_and_policy`](EngineBuilder::factory_and_policy);
    /// ignored by a plain delta build.
    pub fn stats(mut self, gen: &'a GeneratedStream) -> Self {
        self.stats = Some(gen);
        self
    }

    /// Sets the engine configuration (default: [`EngineConfig::default`]).
    pub fn config(mut self, config: EngineConfig) -> Self {
        self.config = config;
        self
    }

    /// Wraps every constructed engine in a
    /// [`cep_adaptive::AdaptiveEngine`] monitoring arrival-rate drift on
    /// its own input, replanning from live estimates and hot-swapping
    /// with retained-window state migration. Incompatible with
    /// [`Backend::Delta`] (which has no plan to swap).
    pub fn adaptive(mut self, adaptive: cep_adaptive::AdaptiveConfig) -> Self {
        self.adaptive = Some((adaptive, false));
        self
    }

    /// [`adaptive`](EngineBuilder::adaptive) plus online selectivity
    /// re-estimation: correlation drift that leaves arrival rates flat —
    /// invisible to the rate-only monitor — still triggers a replan.
    pub fn full_adaptive(mut self, adaptive: cep_adaptive::AdaptiveConfig) -> Self {
        self.adaptive = Some((adaptive, true));
        self
    }

    /// Marks this engine for cross-partition sharding under
    /// replicate-join routing: the terminal must be
    /// [`factory_and_policy`](EngineBuilder::factory_and_policy), which
    /// returns the derived [`cep_shard::RoutingPolicy`] alongside the
    /// factory — [`build`](EngineBuilder::build) and
    /// [`factory`](EngineBuilder::factory) fail rather than silently
    /// dropping the policy the engines must run under.
    pub fn replicate_join(mut self) -> Self {
        self.replicate_join = true;
        self
    }

    /// Builds one engine. Disjunctions produce a [`MultiEngine`] over
    /// the DNF branches internally.
    pub fn build(self) -> Result<Box<dyn Engine>, CepError> {
        Ok(self.factory()?.build())
    }

    /// Builds an [`EngineFactory`] stamping out identical engines —
    /// the input a [`cep_shard::ShardedRuntime`] needs, where each
    /// worker builds its own engine from the shared plan. Every engine
    /// from one factory shares a signature-keyed compiled-predicate
    /// cache, so each branch's predicates are lowered once.
    pub fn factory(self) -> Result<Box<dyn EngineFactory>, CepError> {
        if self.replicate_join {
            return Err(CepError::Plan(
                "replicate-join engines ship with a routing policy: terminate the \
                 builder with factory_and_policy() instead of build()/factory()"
                    .into(),
            ));
        }
        self.factory_inner()
    }

    /// Builds the factory *plus* the
    /// [`cep_shard::RoutingPolicy::ReplicateJoin`] policy to run it
    /// under: a [`cep_core::partition::PartitionSpec`] derived from the
    /// pattern's equality predicates and the stream's analytic rates —
    /// key-linked types hashed by their join key, the (low-rate)
    /// remainder broadcast. Hand both to
    /// [`cep_shard::ShardedRuntime::run`] (or `run_query`) and the
    /// merged output is byte-identical to the single-threaded engine
    /// for any shard count, under the three exact selection strategies.
    pub fn factory_and_policy(
        mut self,
    ) -> Result<(Box<dyn EngineFactory>, cep_shard::RoutingPolicy), CepError> {
        let gen = self.stats.ok_or_else(|| {
            CepError::Stats(
                "deriving a replicate-join policy needs stream statistics: \
                 call .stats(&generated) before .factory_and_policy()"
                    .into(),
            )
        })?;
        let policy = replicate_join_policy(self.pattern, gen)?;
        self.replicate_join = false;
        Ok((self.factory_inner()?, policy))
    }

    fn require_stats(&self, what: &str) -> Result<&'a GeneratedStream, CepError> {
        self.stats.ok_or_else(|| {
            CepError::Stats(format!(
                "{what} needs stream statistics: call .stats(&generated) first, \
                 or use Backend::Delta which plans per probe without them"
            ))
        })
    }

    fn factory_inner(&self) -> Result<Box<dyn EngineFactory>, CepError> {
        match (self.backend, &self.adaptive) {
            (Backend::Delta, None) => {
                let branches = CompiledPattern::compile(self.pattern)?;
                Ok(Box::new(DeltaFactory {
                    branches,
                    window: self.pattern.window,
                    config: self.config.clone(),
                    plan_cache: shared_plan_cache(PLAN_CACHE_CAP),
                }))
            }
            (Backend::Delta, Some(_)) => Err(CepError::Plan(
                "the delta backend picks its join order per probe and has no plan \
                 to replan; use Backend::Nfa or Backend::Tree for adaptive engines"
                    .into(),
            )),
            (Backend::Nfa(algorithm), None) => {
                let gen = self.require_stats("planning an order-based (NFA) engine")?;
                let planner = Planner::default();
                let measured = analytic_measured_stats(gen);
                let compiled = CompiledPattern::compile(self.pattern)?;
                let mut branches = Vec::with_capacity(compiled.len());
                for cp in compiled {
                    let sels = analytic_selectivities(&cp, gen);
                    let stats = planner.stats_for(&cp, &measured, &sels)?;
                    let plan = planner.plan_order(&cp, &stats, algorithm)?;
                    branches.push((cp, plan));
                }
                Ok(Box::new(PlannedFactory {
                    branches: BranchPlans::Order(branches),
                    window: self.pattern.window,
                    config: self.config.clone(),
                    plan_cache: shared_plan_cache(PLAN_CACHE_CAP),
                }))
            }
            (Backend::Tree(algorithm), None) => {
                let gen = self.require_stats("planning a tree-based engine")?;
                let planner = Planner::default();
                let measured = analytic_measured_stats(gen);
                let compiled = CompiledPattern::compile(self.pattern)?;
                let mut branches = Vec::with_capacity(compiled.len());
                for cp in compiled {
                    let sels = analytic_selectivities(&cp, gen);
                    let stats = planner.stats_for(&cp, &measured, &sels)?;
                    let plan = planner.plan_tree(&cp, &stats, algorithm)?;
                    branches.push((cp, plan));
                }
                Ok(Box::new(PlannedFactory {
                    branches: BranchPlans::Tree(branches),
                    window: self.pattern.window,
                    config: self.config.clone(),
                    plan_cache: shared_plan_cache(PLAN_CACHE_CAP),
                }))
            }
            (Backend::Nfa(algorithm), Some((adaptive, full))) => {
                let gen = self.require_stats("adaptive replanning")?;
                adaptive_factory(
                    self.pattern,
                    gen,
                    cep_adaptive::PlanKind::Order(algorithm),
                    self.config.clone(),
                    adaptive.clone(),
                    *full,
                )
            }
            (Backend::Tree(algorithm), Some((adaptive, full))) => {
                let gen = self.require_stats("adaptive replanning")?;
                adaptive_factory(
                    self.pattern,
                    gen,
                    cep_adaptive::PlanKind::Tree(algorithm),
                    self.config.clone(),
                    adaptive.clone(),
                    *full,
                )
            }
        }
    }
}

/// Starts a fluent [`RegistryBuilder`] for multi-query execution.
///
/// ```
/// # use cep::prelude::*;
/// # let config = StockConfig::nasdaq_like(2, 200, 0.5, 7);
/// # let mut catalog = cep::core::schema::Catalog::new();
/// # let generated = StockStreamGenerator::generate(&config, &mut catalog).unwrap();
/// # let pattern = parse_pattern(
/// #     "PATTERN SEQ(S0000 a, S0001 b) WHERE a.difference < b.difference WITHIN 5 s",
/// #     &catalog,
/// # ).unwrap();
/// let mut registry = cep::registry().build().unwrap(); // delta backend
/// let q0 = registry.register(&pattern).unwrap();
/// let q1 = registry.register(&pattern).unwrap(); // shares q0's fragment
/// let result = registry.run(&generated.stream);
/// assert_eq!(result.per_query[&q0], result.per_query[&q1]);
/// ```
pub fn registry() -> RegistryBuilder {
    RegistryBuilder {
        backend: Backend::Delta,
        stats: None,
        config: EngineConfig::default(),
    }
}

/// Statistics snapshot a [`RegistryBuilder`] carries: the analytic
/// measured stats plus a stream-less copy of the generated stream's
/// metadata (`analytic_selectivities` only reads type ids and symbol
/// specs, so the events themselves need not be retained).
struct StatsSnapshot {
    measured: MeasuredStats,
    meta: GeneratedStream,
}

impl StatsSnapshot {
    fn capture(gen: &GeneratedStream) -> StatsSnapshot {
        StatsSnapshot {
            measured: analytic_measured_stats(gen),
            meta: GeneratedStream {
                stream: StreamBuilder::new().build(),
                type_ids: gen.type_ids.clone(),
                symbols: gen.symbols.clone(),
                replicas: gen.replicas,
            },
        }
    }
}

/// Fluent multi-query construction: pick a [`Backend`] (and statistics,
/// for the planned ones), then terminate with
/// [`build`](RegistryBuilder::build) (a live [`QueryRegistry`] to
/// register queries against) or [`spec`](RegistryBuilder::spec) (a
/// [`RegistrySpec`] for [`cep_shard::ShardedRuntime::run_registry`],
/// which stamps one registry per worker shard). Created by [`registry`].
pub struct RegistryBuilder {
    backend: Backend,
    stats: Option<StatsSnapshot>,
    config: EngineConfig,
}

impl RegistryBuilder {
    /// Selects the evaluation backend every registered query's fragments
    /// run on (default: [`Backend::Delta`], which needs no statistics).
    pub fn backend(mut self, backend: Backend) -> Self {
        self.backend = backend;
        self
    }

    /// Attaches stream statistics for the planned (NFA/tree) backends;
    /// only the analytic metadata is retained, not the events.
    pub fn stats(mut self, gen: &GeneratedStream) -> Self {
        self.stats = Some(StatsSnapshot::capture(gen));
        self
    }

    /// Sets the engine configuration shared by every fragment.
    pub fn config(mut self, config: EngineConfig) -> Self {
        self.config = config;
        self
    }

    /// Builds an empty [`QueryRegistry`]; register queries with
    /// [`QueryRegistry::register`].
    pub fn build(self) -> Result<QueryRegistry, CepError> {
        let config = self.config.clone();
        Ok(QueryRegistry::new(self.fragment_builder()?, config))
    }

    /// Builds an empty [`RegistrySpec`]; add queries with
    /// [`RegistrySpec::add`] and hand it to
    /// [`cep_shard::ShardedRuntime::run_registry`].
    pub fn spec(self) -> Result<RegistrySpec, CepError> {
        let config = self.config.clone();
        Ok(RegistrySpec::new(self.fragment_builder()?, config))
    }

    fn fragment_builder(self) -> Result<Arc<dyn FragmentBuilder>, CepError> {
        let planning = match self.backend {
            Backend::Delta => None,
            Backend::Nfa(_) | Backend::Tree(_) => {
                let snapshot = self.stats.ok_or_else(|| {
                    CepError::Stats(
                        "the NFA/tree registry backends plan each fragment from stream \
                         statistics: call .stats(&generated) first, or use \
                         Backend::Delta which plans per probe without them"
                            .into(),
                    )
                })?;
                Some(snapshot)
            }
        };
        Ok(Arc::new(FacadeFragmentBuilder {
            backend: self.backend,
            config: self.config,
            planner: Planner::default(),
            planning,
            prefix_orders: Mutex::new(HashMap::new()),
        }))
    }
}

/// The planner-backed [`FragmentBuilder`] behind [`RegistryBuilder`]:
/// each distinct DNF-branch fragment is planned once (NFA/tree) or built
/// plan-free (delta), with the registry-cached predicate program threaded
/// through. Order plans are **prefix-aligned** across fragments: when a
/// new fragment shares a maximal SEQ prefix
/// ([`prefix_signature`]) with an earlier one, its plan
/// evaluates the shared prefix in the earlier fragment's order followed
/// by its own residual — the set-level planning pass. Plans never affect
/// *what* is matched, only evaluation cost, so alignment preserves
/// byte-identity.
struct FacadeFragmentBuilder {
    backend: Backend,
    config: EngineConfig,
    planner: Planner,
    /// `None` only for [`Backend::Delta`].
    planning: Option<StatsSnapshot>,
    /// Leader prefix orders by `(prefix length, prefix signature)`.
    prefix_orders: Mutex<HashMap<(usize, u64), Vec<usize>>>,
}

impl FacadeFragmentBuilder {
    /// Aligns `base` to an earlier fragment's shared-prefix order when
    /// one exists, otherwise records `base`'s own prefix orders as the
    /// leaders for later fragments.
    fn align_order(&self, cp: &CompiledPattern, base: OrderPlan) -> OrderPlan {
        if cp.op != NaryOp::Seq || !cp.negated.is_empty() || cp.n() < 3 {
            return base;
        }
        let mut leaders = self.prefix_orders.lock().expect("prefix orders poisoned");
        for k in (2..cp.n()).rev() {
            let Some(sig) = prefix_signature(cp, k) else {
                continue;
            };
            match leaders.entry((k, sig)) {
                Entry::Occupied(leader) => {
                    let aligned = align_prefix_order(base.order(), k, leader.get());
                    return OrderPlan::new(aligned).expect("aligned order is a permutation");
                }
                Entry::Vacant(slot) => {
                    slot.insert(base.order().iter().copied().filter(|&p| p < k).collect());
                }
            }
        }
        base
    }
}

/// The leader's prefix order (a permutation of `0..k`) followed by the
/// follower's residual positions in the follower's own relative order.
fn align_prefix_order(base: &[usize], k: usize, leader: &[usize]) -> Vec<usize> {
    let mut order = leader.to_vec();
    order.extend(base.iter().copied().filter(|&p| p >= k));
    order
}

impl FragmentBuilder for FacadeFragmentBuilder {
    fn build_fragment(
        &self,
        cp: &CompiledPattern,
        program: Option<Arc<PredicateProgram>>,
    ) -> Result<Box<dyn Engine>, CepError> {
        match self.backend {
            Backend::Delta => Ok(Box::new(DeltaEngine::with_program(
                cp.clone(),
                self.config.clone(),
                program,
            ))),
            Backend::Nfa(algorithm) => {
                let ctx = self.planning.as_ref().expect("planned backend has stats");
                let sels = analytic_selectivities(cp, &ctx.meta);
                let stats = self.planner.stats_for(cp, &ctx.measured, &sels)?;
                let plan = self.align_order(cp, self.planner.plan_order(cp, &stats, algorithm)?);
                Ok(Box::new(NfaEngine::with_program(
                    cp.clone(),
                    plan,
                    self.config.clone(),
                    program,
                )?))
            }
            Backend::Tree(algorithm) => {
                let ctx = self.planning.as_ref().expect("planned backend has stats");
                let sels = analytic_selectivities(cp, &ctx.meta);
                let stats = self.planner.stats_for(cp, &ctx.measured, &sels)?;
                let plan = self.planner.plan_tree(cp, &stats, algorithm)?;
                Ok(Box::new(TreeEngine::with_program(
                    cp.clone(),
                    plan,
                    self.config.clone(),
                    program,
                )?))
            }
        }
    }
}

/// Per-branch evaluation plans shared by the engines a factory stamps out.
enum BranchPlans {
    Order(Vec<(CompiledPattern, OrderPlan)>),
    Tree(Vec<(CompiledPattern, TreePlan)>),
}

/// An [`EngineFactory`] over pre-validated branch plans: plan once, build
/// fresh engines any number of times (one per worker shard, typically).
/// Disjunctions build a [`MultiEngine`] over the DNF branches.
struct PlannedFactory {
    branches: BranchPlans,
    window: u64,
    config: EngineConfig,
    /// Signature-keyed compiled-program cache shared by every engine this
    /// factory stamps out: each DNF branch's predicates are lowered once
    /// (on the first build) and every further build — one per worker
    /// shard, typically — reuses the cached program.
    plan_cache: SharedPlanCache,
}

impl EngineFactory for PlannedFactory {
    fn build(&self) -> Box<dyn Engine> {
        // `PlannedFactory` is only ever constructed with plans the planner
        // produced for these very compiled patterns, so engine
        // construction cannot fail. Each branch's hit/miss is stamped onto
        // the freshly built engine's metrics, so cache effectiveness
        // surfaces through the normal metrics pipeline (a [`MultiEngine`]
        // absorbs branch counters into its aggregate view).
        let fetch = |cp: &CompiledPattern| -> (Option<Arc<PredicateProgram>>, u64, u64) {
            if !self.config.compiled_predicates {
                return (None, 0, 0);
            }
            let mut cache = self.plan_cache.lock().expect("plan cache poisoned");
            let (h0, m0) = (cache.hits(), cache.misses());
            let program = cache.get_or_compile(cp);
            (Some(program), cache.hits() - h0, cache.misses() - m0)
        };
        let mut engines: Vec<Box<dyn Engine>> = match &self.branches {
            BranchPlans::Order(branches) => branches
                .iter()
                .map(|(cp, plan)| {
                    let (program, hits, misses) = fetch(cp);
                    let mut engine = Box::new(
                        NfaEngine::with_program(
                            cp.clone(),
                            plan.clone(),
                            self.config.clone(),
                            program,
                        )
                        .expect("pre-validated plan"),
                    );
                    engine.metrics_mut().plan_cache_hits = hits;
                    engine.metrics_mut().plan_cache_misses = misses;
                    engine as Box<dyn Engine>
                })
                .collect(),
            BranchPlans::Tree(branches) => branches
                .iter()
                .map(|(cp, plan)| {
                    let (program, hits, misses) = fetch(cp);
                    let mut engine = Box::new(
                        TreeEngine::with_program(
                            cp.clone(),
                            plan.clone(),
                            self.config.clone(),
                            program,
                        )
                        .expect("pre-validated plan"),
                    );
                    engine.metrics_mut().plan_cache_hits = hits;
                    engine.metrics_mut().plan_cache_misses = misses;
                    engine as Box<dyn Engine>
                })
                .collect(),
        };
        if engines.len() == 1 {
            engines.pop().expect("one engine")
        } else {
            Box::new(MultiEngine::new(engines, self.window))
        }
    }
}

/// An [`EngineFactory`] stamping out [`DeltaEngine`]s — one per DNF
/// branch, wrapped in a [`MultiEngine`] for disjunctions. The delta
/// engine needs no evaluation plan (its join order is chosen per probe
/// from live index sizes), so unlike [`PlannedFactory`] there is no
/// planner input; the shared plan cache still deduplicates predicate
/// lowering across builds.
struct DeltaFactory {
    branches: Vec<CompiledPattern>,
    window: u64,
    config: EngineConfig,
    plan_cache: SharedPlanCache,
}

impl EngineFactory for DeltaFactory {
    fn build(&self) -> Box<dyn Engine> {
        let fetch = |cp: &CompiledPattern| -> (Option<Arc<PredicateProgram>>, u64, u64) {
            if !self.config.compiled_predicates {
                return (None, 0, 0);
            }
            let mut cache = self.plan_cache.lock().expect("plan cache poisoned");
            let (h0, m0) = (cache.hits(), cache.misses());
            let program = cache.get_or_compile(cp);
            (Some(program), cache.hits() - h0, cache.misses() - m0)
        };
        let mut engines: Vec<Box<dyn Engine>> = self
            .branches
            .iter()
            .map(|cp| {
                let (program, hits, misses) = fetch(cp);
                let mut engine = Box::new(DeltaEngine::with_program(
                    cp.clone(),
                    self.config.clone(),
                    program,
                ));
                engine.metrics_mut().plan_cache_hits = hits;
                engine.metrics_mut().plan_cache_misses = misses;
                engine as Box<dyn Engine>
            })
            .collect();
        if engines.len() == 1 {
            engines.pop().expect("one engine")
        } else {
            Box::new(MultiEngine::new(engines, self.window))
        }
    }
}

/// Compiles `pattern` and pairs each DNF branch with its analytic
/// selectivities over the generated stream.
fn compiled_branches(
    pattern: &Pattern,
    gen: &GeneratedStream,
) -> Result<Vec<(CompiledPattern, Vec<f64>)>, CepError> {
    Ok(CompiledPattern::compile(pattern)?
        .into_iter()
        .map(|cp| {
            let sels = analytic_selectivities(&cp, gen);
            (cp, sels)
        })
        .collect())
}

/// Shared construction site of the adaptive engine shapes: a
/// [`cep_adaptive::PlanReplanner`] over the pattern's DNF branches and the
/// generated stream's analytic statistics, optionally with online
/// selectivity monitoring, wrapped in an [`cep_adaptive::AdaptiveFactory`].
fn adaptive_factory(
    pattern: &Pattern,
    gen: &GeneratedStream,
    kind: cep_adaptive::PlanKind,
    config: EngineConfig,
    adaptive: cep_adaptive::AdaptiveConfig,
    monitor_selectivities: bool,
) -> Result<Box<dyn EngineFactory>, CepError> {
    let mut replanner = cep_adaptive::PlanReplanner::new(
        compiled_branches(pattern, gen)?,
        &analytic_measured_stats(gen),
        Planner::default(),
        kind,
        config,
    )?;
    if monitor_selectivities {
        replanner = replanner.with_selectivity_monitoring(
            adaptive.horizon_ms,
            adaptive.drift_threshold,
            SELECTIVITY_MAX_PAIRS,
        );
    }
    Ok(Box::new(cep_adaptive::AdaptiveFactory::new(
        replanner,
        pattern.window,
        adaptive,
    )))
}

/// The replicate-join routing policy for `pattern` over the generated
/// stream's analytic statistics.
fn replicate_join_policy(
    pattern: &Pattern,
    gen: &GeneratedStream,
) -> Result<cep_shard::RoutingPolicy, CepError> {
    let branches = CompiledPattern::compile(pattern)?;
    let spec = cep_core::partition::QueryPartitioner::analyze_measured(
        &branches,
        &analytic_measured_stats(gen),
    )?;
    Ok(cep_shard::RoutingPolicy::ReplicateJoin(Arc::new(spec)))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn align_prefix_order_keeps_leader_prefix_and_follower_residual() {
        // Leader evaluated the shared 3-element prefix as [2, 0, 1];
        // the follower's own plan was [3, 1, 0, 2, 4].
        let aligned = align_prefix_order(&[3, 1, 0, 2, 4], 3, &[2, 0, 1]);
        assert_eq!(aligned, vec![2, 0, 1, 3, 4]);
        // Degenerate: leader covers everything (no residual).
        let aligned = align_prefix_order(&[1, 0], 2, &[0, 1]);
        assert_eq!(aligned, vec![0, 1]);
    }
}
