//! The facade's `EngineBuilder`: the deprecated constructor shims are
//! exact synonyms for their builder chains (same engines, same output),
//! and builder misuse fails with typed errors instead of panicking.

use cep::conformance::keyed;
use cep::core::engine::{run_to_completion, EngineConfig};
use cep::core::error::CepError;
use cep::prelude::*;
use cep::streamgen::GeneratedStream;

/// `unwrap_err` for results whose `Ok` type has no `Debug` impl.
fn expect_err<T>(r: Result<T, CepError>) -> CepError {
    match r {
        Ok(_) => panic!("expected a builder error"),
        Err(e) => e,
    }
}

fn fixture() -> (cep::core::pattern::Pattern, GeneratedStream) {
    let config = StockConfig::nasdaq_like(6, 8_000, 0.5, 11);
    let mut catalog = cep::core::schema::Catalog::new();
    let generated = StockStreamGenerator::generate(&config, &mut catalog).unwrap();
    let pattern = parse_pattern(
        "PATTERN SEQ(S0000 a, S0002 b)
         WHERE a.difference < b.difference
         WITHIN 4 s",
        &catalog,
    )
    .unwrap();
    (pattern, generated)
}

/// Every deprecated constructor family produces output byte-identical to
/// its replacement builder chain (the shims *are* the chains).
#[test]
#[allow(deprecated)]
fn deprecated_shims_equal_builder_chains() {
    let (pattern, generated) = fixture();
    let run = |mut e: Box<dyn cep::core::engine::Engine>| {
        keyed(&run_to_completion(e.as_mut(), &generated.stream, true).matches)
    };

    let via_shim = run(cep::build_nfa_engine(
        &pattern,
        &generated,
        OrderAlgorithm::DpLd,
        EngineConfig::default(),
    )
    .unwrap());
    let via_builder = run(cep::engine(&pattern)
        .backend(Backend::Nfa(OrderAlgorithm::DpLd))
        .stats(&generated)
        .build()
        .unwrap());
    assert!(!via_builder.is_empty(), "fixture must produce matches");
    assert_eq!(via_shim, via_builder);

    let via_shim = run(cep::build_tree_engine(
        &pattern,
        &generated,
        TreeAlgorithm::DpB,
        EngineConfig::default(),
    )
    .unwrap());
    let via_builder = run(cep::engine(&pattern)
        .backend(Backend::Tree(TreeAlgorithm::DpB))
        .stats(&generated)
        .build()
        .unwrap());
    assert_eq!(via_shim, via_builder);

    let via_shim = run(cep::build_delta_engine(&pattern, EngineConfig::default()).unwrap());
    let via_builder = run(cep::engine(&pattern).build().unwrap());
    assert_eq!(via_shim, via_builder);

    let shim_factory = cep::delta_engine_factory(&pattern, EngineConfig::default()).unwrap();
    let builder_factory = cep::engine(&pattern).factory().unwrap();
    assert_eq!(run(shim_factory.build()), run(builder_factory.build()));
}

/// The replicate-join shims return the same routing policy as
/// `.replicate_join().factory_and_policy()`.
#[test]
#[allow(deprecated)]
fn deprecated_replicate_join_shim_equals_builder_chain() {
    let (pattern, generated) = fixture();
    let (_, shim_policy) = cep::replicate_join_nfa_engine_factory(
        &pattern,
        &generated,
        OrderAlgorithm::DpLd,
        EngineConfig::default(),
    )
    .unwrap();
    let (_, builder_policy) = cep::engine(&pattern)
        .backend(Backend::Nfa(OrderAlgorithm::DpLd))
        .stats(&generated)
        .replicate_join()
        .factory_and_policy()
        .unwrap();
    assert_eq!(format!("{shim_policy:?}"), format!("{builder_policy:?}"));
}

/// Builder misuse fails with typed errors, never panics: stats-needing
/// backends without `.stats()`, adaptive planning on the plan-free delta
/// backend, and a `.replicate_join()` chain terminated with the wrong
/// finisher (which would silently drop the routing policy).
#[test]
fn builder_misuse_is_a_typed_error() {
    let (pattern, generated) = fixture();

    let err = expect_err(
        cep::engine(&pattern)
            .backend(Backend::Nfa(OrderAlgorithm::DpLd))
            .build(),
    );
    assert!(matches!(err, CepError::Stats(_)), "got {err:?}");

    let err = expect_err(
        cep::engine(&pattern)
            .backend(Backend::Tree(TreeAlgorithm::DpB))
            .factory(),
    );
    assert!(matches!(err, CepError::Stats(_)), "got {err:?}");

    let err = expect_err(
        cep::engine(&pattern)
            .adaptive(AdaptiveConfig::default())
            .stats(&generated)
            .build(),
    );
    assert!(matches!(err, CepError::Plan(_)), "got {err:?}");

    let err = expect_err(
        cep::engine(&pattern)
            .backend(Backend::Nfa(OrderAlgorithm::DpLd))
            .stats(&generated)
            .replicate_join()
            .build(),
    );
    assert!(matches!(err, CepError::Plan(_)), "got {err:?}");

    let err = expect_err(
        cep::registry()
            .backend(Backend::Nfa(OrderAlgorithm::DpLd))
            .build(),
    );
    assert!(matches!(err, CepError::Stats(_)), "got {err:?}");
}

/// The facade registry builder wires the planner in: an NFA-backed
/// registry emits the same matches as a delta-backed one on the same
/// query set.
#[test]
fn facade_registry_backends_agree() {
    let (pattern, generated) = fixture();
    let mut results = Vec::new();
    for (name, builder) in [
        ("delta", cep::registry()),
        (
            "nfa",
            cep::registry()
                .backend(Backend::Nfa(OrderAlgorithm::DpLd))
                .stats(&generated),
        ),
        (
            "tree",
            cep::registry()
                .backend(Backend::Tree(TreeAlgorithm::DpB))
                .stats(&generated),
        ),
    ] {
        let mut registry = builder.build().unwrap();
        let q0 = registry.register(&pattern).unwrap();
        let q1 = registry.register(&pattern).unwrap();
        assert_eq!(registry.fragment_count(), 1, "identical queries share");
        let r = registry.run(&generated.stream);
        assert_eq!(
            keyed(&r.per_query[&q0]),
            keyed(&r.per_query[&q1]),
            "{name}: duplicate registrations must see identical output"
        );
        results.push((name, keyed(&r.per_query[&q0])));
    }
    assert!(!results[0].1.is_empty(), "fixture must produce matches");
    for (name, ks) in &results[1..] {
        assert_eq!(ks, &results[0].1, "{name} disagrees with delta");
    }
}
