//! Parser-to-engine pipeline coverage: every operator and clause of the
//! SASE surface syntax, evaluated end to end on crafted streams.

use cep::core::compile::CompiledPattern;
use cep::core::engine::{run_to_completion, EngineConfig};
use cep::core::event::Event;
use cep::core::schema::{Catalog, ValueKind};
use cep::core::stream::StreamBuilder;
use cep::core::value::Value;
use cep::nfa::NfaEngine;
use cep::prelude::*;
use cep::tree::TreeEngine;

fn catalog() -> Catalog {
    let mut cat = Catalog::new();
    for name in ["A", "B", "C", "D"] {
        cat.add_type(name, &[("x", ValueKind::Int), ("y", ValueKind::Float)])
            .unwrap();
    }
    cat
}

fn run_both(spec: &str, events: Vec<(u32, u64, i64, f64)>) -> (u64, u64) {
    let cat = catalog();
    let pattern = parse_pattern(spec, &cat).expect("spec parses");
    let mut sb = StreamBuilder::new();
    for (tid, ts, x, y) in events {
        sb.push(Event::new(
            cep::core::event::TypeId(tid),
            ts,
            vec![Value::Int(x), Value::Float(y)],
        ));
    }
    let stream = sb.build();
    let cfg = EngineConfig {
        max_kleene_events: 6,
        ..Default::default()
    };
    let branches = CompiledPattern::compile(&pattern).unwrap();
    let mut nfa_total = 0;
    let mut tree_total = 0;
    for cp in branches {
        let mut nfa = NfaEngine::with_trivial_plan(cp.clone(), cfg.clone());
        nfa_total += run_to_completion(&mut nfa, &stream, true).match_count;
        let mut tree = TreeEngine::with_trivial_plan(cp, cfg.clone());
        tree_total += run_to_completion(&mut tree, &stream, true).match_count;
    }
    (nfa_total, tree_total)
}

#[test]
fn seq_with_where_and_constants() {
    let (n, t) = run_both(
        "PATTERN SEQ(A a, B b) WHERE a.x < b.x AND b.y >= 1.5 WITHIN 10",
        vec![
            (0, 1, 1, 0.0),
            (1, 2, 2, 2.0), // matches (1 < 2, 2.0 >= 1.5)
            (1, 3, 0, 9.0), // x too small
            (1, 4, 5, 1.0), // y too small
        ],
    );
    assert_eq!((n, t), (1, 1));
}

#[test]
fn and_is_order_insensitive() {
    let (n, t) = run_both(
        "PATTERN AND(A a, B b) WITHIN 10",
        vec![(1, 1, 0, 0.0), (0, 2, 0, 0.0)],
    );
    assert_eq!((n, t), (1, 1));
}

#[test]
fn or_branches_union() {
    let (n, t) = run_both(
        "PATTERN OR(SEQ(A a, B b), SEQ(C c, D d)) WITHIN 10",
        vec![
            (0, 1, 0, 0.0),
            (1, 2, 0, 0.0),
            (2, 3, 0, 0.0),
            (3, 4, 0, 0.0),
        ],
    );
    assert_eq!((n, t), (2, 2));
}

#[test]
fn not_with_linked_predicate() {
    let (n, t) = run_both(
        "PATTERN SEQ(A a, NOT(B b), C c) WHERE b.x == a.x WITHIN 10",
        vec![
            (0, 1, 7, 0.0),
            (1, 2, 7, 0.0), // kills the a(x=7)..c chain
            (2, 3, 0, 0.0),
            (0, 4, 8, 0.0),
            (1, 5, 9, 0.0), // x differs: harmless
            (2, 6, 0, 0.0),
        ],
    );
    // (a@1, c@3) killed; (a@1, c@6) killed (same b between);
    // (a@4, c@6) survives.
    assert_eq!((n, t), (1, 1));
}

#[test]
fn kleene_counts_subsets() {
    let (n, t) = run_both(
        "PATTERN SEQ(A a, KL(B b)) WITHIN 10",
        vec![(0, 1, 0, 0.0), (1, 2, 0, 0.0), (1, 3, 0, 0.0)],
    );
    // Subsets of {b@2, b@3}: 3 non-empty.
    assert_eq!((n, t), (3, 3));
}

#[test]
fn ts_operands_enforce_extra_ordering() {
    // AND with an explicit a.ts < b.ts condition behaves like SEQ.
    let (n, t) = run_both(
        "PATTERN AND(A a, B b) WHERE a.ts < b.ts WITHIN 10",
        vec![(1, 1, 0, 0.0), (0, 2, 0, 0.0), (1, 3, 0, 0.0)],
    );
    // Only (a@2, b@3) respects a.ts < b.ts.
    assert_eq!((n, t), (1, 1));
}

#[test]
fn strategy_clause_changes_results() {
    let spec_any = "PATTERN SEQ(A a, B b) WITHIN 10";
    let spec_next = "PATTERN SEQ(A a, B b) WITHIN 10 STRATEGY next";
    let events = vec![(0u32, 1u64, 0i64, 0.0f64), (0, 2, 0, 0.0), (1, 3, 0, 0.0)];
    let (any_n, _) = run_both(spec_any, events.clone());
    let (next_n, _) = run_both(spec_next, events);
    assert_eq!(any_n, 2);
    assert_eq!(next_n, 1);
}

#[test]
fn deeply_nested_specification() {
    let (n, t) = run_both(
        "PATTERN OR(AND(A a, OR(B b, C c)), SEQ(D d1, D d2)) WITHIN 10",
        vec![
            (0, 1, 0, 0.0), // a
            (2, 2, 0, 0.0), // c -> AND(a, c) via branch 2
            (3, 3, 0, 0.0),
            (3, 4, 0, 0.0), // d,d -> SEQ(d,d)
        ],
    );
    // Branches: AND(A,B): 0; AND(A,C): 1; SEQ(D,D): 1.
    assert_eq!((n, t), (2, 2));
}
