//! Smoke tests pinning the core path of every `examples/*.rs` to a small
//! deterministic seeded stream, so the examples cannot silently rot: each
//! test mirrors its example's pattern and stream shape (scaled down to
//! stay fast under `cargo test`) and asserts the pipeline still produces
//! matches (or, for the adaptivity demo, still swaps plans exactly).

use cep::core::compile::CompiledPattern;
use cep::core::engine::{run_to_completion, EngineConfig};
use cep::core::event::Event;
use cep::core::plan::OrderPlan;
use cep::core::schema::{Catalog, ValueKind};
use cep::core::selection::SelectionStrategy;
use cep::core::stream::StreamBuilder;
use cep::core::value::Value;
use cep::prelude::*;
use cep::streamgen::{analytic_measured_stats, analytic_selectivities, SymbolSpec};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// Every example under `examples/` that has a mirror test in this file.
/// [`every_example_has_a_smoke_mirror`] fails when the directory and this
/// list drift apart, so a new example cannot be added without a mirror
/// here (CI builds its example matrix from the directory, so that side
/// cannot be forgotten either).
const MIRRORED_EXAMPLES: &[&str] = &[
    "adaptive_replanning",
    "cross_partition_fraud",
    "fraud_detection",
    "quickstart",
    "selection_strategies",
    "sharded_fraud",
    "stock_correlation",
    "traffic_cameras",
];

#[test]
fn every_example_has_a_smoke_mirror() {
    let dir = std::path::Path::new(env!("CARGO_MANIFEST_DIR")).join("examples");
    let mut found: Vec<String> = std::fs::read_dir(dir)
        .expect("examples/ directory exists")
        .filter_map(|e| {
            let name = e.expect("readable dir entry").file_name();
            let name = name.to_string_lossy().into_owned();
            name.strip_suffix(".rs").map(str::to_owned)
        })
        .collect();
    found.sort();
    let expected: Vec<String> = MIRRORED_EXAMPLES.iter().map(|s| s.to_string()).collect();
    assert_eq!(
        found, expected,
        "examples/ and MIRRORED_EXAMPLES drifted apart; add a smoke mirror \
         for the new example (or remove the stale entry)"
    );
}

/// `examples/cross_partition_fraud.rs`: on a pinned stream partitioned by
/// terminal but correlated by account, split-only routing is rejected with
/// a typed error and the replicate-join run reproduces the single-threaded
/// alerts byte for byte at 1 and 4 shards.
#[test]
fn cross_partition_fraud_core_path_matches() {
    use cep::core::engine::{Engine, EngineFactory};
    use cep::core::stats::MeasuredStats;
    use cep::shard::{canonical_sort, ShardRouter};
    use std::sync::Arc;

    let mut catalog = Catalog::new();
    let swipe = catalog
        .add_type(
            "CardSwipe",
            &[("account", ValueKind::Int), ("amount", ValueKind::Float)],
        )
        .unwrap();
    let withdraw = catalog
        .add_type(
            "Withdrawal",
            &[("account", ValueKind::Int), ("amount", ValueKind::Float)],
        )
        .unwrap();
    let bulletin = catalog
        .add_type("Bulletin", &[("level", ValueKind::Int)])
        .unwrap();
    let pattern = parse_pattern(
        "PATTERN SEQ(Bulletin b, CardSwipe s, Withdrawal w)
         WHERE (s.account == w.account AND b.level >= 3 AND w.amount >= 500)
         WITHIN 60 s",
        &catalog,
    )
    .unwrap();

    // Smaller than the example, same shape: terminals != accounts.
    let mut rng = StdRng::seed_from_u64(17);
    let mut sb = StreamBuilder::new();
    let mut ts = 0u64;
    for burst in 0..16i64 {
        let account = burst % 8;
        ts += rng.gen_range(500..3_000);
        if burst % 4 == 0 {
            sb.push_partitioned(
                Event::new(bulletin, ts, vec![Value::Int(4)]),
                rng.gen_range(0..6),
            );
        }
        ts += rng.gen_range(200..2_000);
        sb.push_partitioned(
            Event::new(swipe, ts, vec![Value::Int(account), Value::Float(20.0)]),
            rng.gen_range(0..6),
        );
        ts += rng.gen_range(200..2_000);
        let amount = if burst % 2 == 0 { 900.0 } else { 40.0 };
        sb.push_partitioned(
            Event::new(
                withdraw,
                ts,
                vec![Value::Int(account), Value::Float(amount)],
            ),
            rng.gen_range(0..6),
        );
    }
    let stream = sb.build();

    let cp = CompiledPattern::compile_single(&pattern).unwrap();
    let branches = std::slice::from_ref(&cp);
    // The regression guard: split-only routing is rejected, typed.
    for policy in [RoutingPolicy::HashAttr(0), RoutingPolicy::Partition] {
        let err = ShardRouter::for_query(4, policy, branches).unwrap_err();
        assert!(matches!(err, CepError::Routing(_)), "{err}");
        assert!(err.to_string().contains("ReplicateJoin"), "{err}");
    }
    let spec =
        QueryPartitioner::analyze_measured(branches, &MeasuredStats::measure(&stream)).unwrap();
    assert_eq!(spec.replicated_types().count(), 1, "bulletin is broadcast");
    let factory = {
        let cp = cp.clone();
        move || {
            Box::new(NfaEngine::with_trivial_plan(
                cp.clone(),
                EngineConfig::default(),
            )) as Box<dyn Engine>
        }
    };
    let mut engine = EngineFactory::build(&factory);
    let mut baseline = run_to_completion(engine.as_mut(), &stream, true);
    canonical_sort(&mut baseline.matches);
    assert!(baseline.match_count >= 1, "fraud shape must alert");
    let policy = RoutingPolicy::ReplicateJoin(Arc::new(spec));
    for shards in [1usize, 4] {
        let r = ShardedRuntime::with_shards(shards)
            .run_query(&factory, &stream, policy.clone(), branches, true)
            .unwrap();
        assert_eq!(
            r.matches, baseline.matches,
            "replicate-join with {shards} shards must reproduce the alerts"
        );
    }
}

/// `examples/quickstart.rs`: the three-stock sequence pattern matches on a
/// seeded NASDAQ-like stream under both the trivial and the DP-LD plan,
/// and both plans agree.
#[test]
fn quickstart_core_path_matches() {
    let config = StockConfig::nasdaq_like(10, 8_000, 0.5, 7);
    let mut catalog = cep::core::schema::Catalog::new();
    let generated = StockStreamGenerator::generate(&config, &mut catalog).unwrap();
    let pattern = parse_pattern(
        "PATTERN SEQ(S0000 a, S0001 b, S0003 c)
         WHERE (a.difference < b.difference AND c.difference > 0)
         WITHIN 10 s",
        &catalog,
    )
    .unwrap();

    let mut counts = Vec::new();
    for algo in [OrderAlgorithm::Trivial, OrderAlgorithm::DpLd] {
        let mut engine = cep::engine(&pattern)
            .backend(Backend::Nfa(algo))
            .stats(&generated)
            .build()
            .unwrap();
        let result = run_to_completion(engine.as_mut(), &generated.stream, false);
        counts.push(result.match_count);
    }
    assert!(counts[0] >= 1, "quickstart pattern must match");
    assert_eq!(counts[0], counts[1], "plans must agree on the match set");
}

/// `examples/fraud_detection.rs`: the KL + NOT pattern fires on the
/// fraudulent account, both engines agree, and the re-verified account
/// never alerts.
#[test]
fn fraud_detection_core_path_matches() {
    let mut catalog = Catalog::new();
    let small = catalog
        .add_type(
            "SmallTxn",
            &[("account", ValueKind::Int), ("amount", ValueKind::Float)],
        )
        .unwrap();
    let verify = catalog
        .add_type("Verify", &[("account", ValueKind::Int)])
        .unwrap();
    let withdraw = catalog
        .add_type(
            "Withdrawal",
            &[("account", ValueKind::Int), ("amount", ValueKind::Float)],
        )
        .unwrap();
    let pattern = parse_pattern(
        "PATTERN SEQ(KL(SmallTxn s), NOT(Verify v), Withdrawal w)
         WHERE (s.account == w.account AND v.account == w.account
                AND s.amount < 50 AND w.amount >= 500)
         WITHIN 30 s",
        &catalog,
    )
    .unwrap();

    let mut rng = StdRng::seed_from_u64(5);
    let mut sb = StreamBuilder::new();
    let mut ts = 0u64;
    let mut push = |sb: &mut StreamBuilder, ts: &mut u64, ty, attrs: Vec<Value>| {
        *ts += rng.gen_range(100..800);
        sb.push(Event::new(ty, *ts, attrs));
    };
    // Fewer noise/probe events than the example: the Kleene closure is
    // exponential in same-account small transactions, and this must stay
    // fast in debug builds.
    for _ in 0..5 {
        push(
            &mut sb,
            &mut ts,
            small,
            vec![Value::Int(0), Value::Float(25.0)],
        );
    }
    for _ in 0..2 {
        push(
            &mut sb,
            &mut ts,
            small,
            vec![Value::Int(1), Value::Float(9.99)],
        );
    }
    push(
        &mut sb,
        &mut ts,
        withdraw,
        vec![Value::Int(1), Value::Float(900.0)],
    );
    for _ in 0..2 {
        push(
            &mut sb,
            &mut ts,
            small,
            vec![Value::Int(2), Value::Float(12.0)],
        );
    }
    push(&mut sb, &mut ts, verify, vec![Value::Int(2)]);
    push(
        &mut sb,
        &mut ts,
        withdraw,
        vec![Value::Int(2), Value::Float(800.0)],
    );
    let stream = sb.build();

    let cp = CompiledPattern::compile_single(&pattern).unwrap();
    let cfg = EngineConfig {
        max_kleene_events: 8,
        ..Default::default()
    };
    let mut nfa = NfaEngine::with_trivial_plan(cp.clone(), cfg.clone());
    let nfa_result = run_to_completion(&mut nfa, &stream, true);
    let mut tree = TreeEngine::with_trivial_plan(cp, cfg);
    let tree_result = run_to_completion(&mut tree, &stream, true);

    assert!(nfa_result.match_count >= 1, "fraud pattern must alert");
    assert_eq!(nfa_result.match_count, tree_result.match_count);
    assert!(
        nfa_result.matches.iter().all(|m| {
            m.events()
                .all(|e| e.attr(0) == Some(&Value::Int(1)) || e.attr(0).is_none())
        }),
        "only the fraudulent account may alert"
    );
}

/// `examples/sharded_fraud.rs`: on a pinned deterministic multi-account
/// stream, the sharded runtime returns byte-identical match vectors to the
/// single-threaded engine for 1 and 4 shards, under both hash-by-account
/// and partition routing.
#[test]
fn sharded_fraud_core_path_matches() {
    use cep::core::engine::{Engine, EngineFactory};
    use cep::shard::canonical_sort;

    let mut catalog = Catalog::new();
    let small = catalog
        .add_type(
            "SmallTxn",
            &[("account", ValueKind::Int), ("amount", ValueKind::Float)],
        )
        .unwrap();
    let verify = catalog
        .add_type("Verify", &[("account", ValueKind::Int)])
        .unwrap();
    let withdraw = catalog
        .add_type(
            "Withdrawal",
            &[("account", ValueKind::Int), ("amount", ValueKind::Float)],
        )
        .unwrap();
    let pattern = parse_pattern(
        "PATTERN SEQ(KL(SmallTxn s), NOT(Verify v), Withdrawal w)
         WHERE (s.account == w.account AND v.account == w.account
                AND s.amount < 50 AND w.amount >= 500)
         WITHIN 30 s",
        &catalog,
    )
    .unwrap();

    // Fewer accounts than the example, staggered the same way so the
    // Kleene power-set stays small in debug builds.
    let mut rng = StdRng::seed_from_u64(41);
    let mut timeline: Vec<(u64, Event)> = Vec::new();
    for account in 0..16i64 {
        let fraudulent = account % 3 == 0;
        let mut ts = account as u64 * 20_000 + rng.gen_range(0..5_000u64);
        for _ in 0..2 {
            ts += rng.gen_range(200..2_000);
            timeline.push((
                ts,
                Event::new(small, ts, vec![Value::Int(account), Value::Float(9.99)]),
            ));
        }
        if !fraudulent {
            ts += rng.gen_range(200..2_000);
            timeline.push((ts, Event::new(verify, ts, vec![Value::Int(account)])));
        }
        ts += rng.gen_range(200..2_000);
        timeline.push((
            ts,
            Event::new(withdraw, ts, vec![Value::Int(account), Value::Float(900.0)]),
        ));
    }
    timeline.sort_by_key(|(ts, _)| *ts);
    let mut sb = StreamBuilder::new();
    for (_, event) in timeline {
        let account = match event.attr(0) {
            Some(Value::Int(a)) => *a as u32,
            _ => unreachable!(),
        };
        sb.push_partitioned(event, account);
    }
    let stream = sb.build();

    let cp = CompiledPattern::compile_single(&pattern).unwrap();
    let cfg = EngineConfig {
        max_kleene_events: 8,
        ..Default::default()
    };
    let factory =
        move || Box::new(NfaEngine::with_trivial_plan(cp.clone(), cfg.clone())) as Box<dyn Engine>;
    let mut engine = EngineFactory::build(&factory);
    let mut baseline = run_to_completion(engine.as_mut(), &stream, true);
    canonical_sort(&mut baseline.matches);
    assert!(baseline.match_count >= 1, "fraud pattern must alert");

    for policy in [RoutingPolicy::HashAttr(0), RoutingPolicy::Partition] {
        for shards in [1, 4] {
            let r =
                ShardedRuntime::with_shards(shards).run(&factory, &stream, policy.clone(), true);
            assert_eq!(
                r.matches, baseline.matches,
                "{policy} with {shards} shards must reproduce the single-threaded alerts"
            );
        }
    }
}

/// `examples/stock_correlation.rs`: every order algorithm and every tree
/// algorithm plans the conjunction pattern and all agree on a non-empty
/// match count.
#[test]
fn stock_correlation_core_path_matches() {
    let config = StockConfig {
        symbols: vec![
            SymbolSpec {
                name: "MSFT".into(),
                rate_per_sec: 8.0,
                start_price: 410.0,
                drift: 0.05,
                volatility: 0.8,
            },
            SymbolSpec {
                name: "GOOG".into(),
                rate_per_sec: 3.0,
                start_price: 175.0,
                drift: 0.4,
                volatility: 0.6,
            },
            SymbolSpec {
                name: "INTC".into(),
                rate_per_sec: 0.5,
                start_price: 31.0,
                drift: -0.2,
                volatility: 0.5,
            },
        ],
        duration_ms: 30_000,
        seed: 2024,
    };
    let mut catalog = cep::core::schema::Catalog::new();
    let generated = StockStreamGenerator::generate(&config, &mut catalog).unwrap();
    let pattern = parse_pattern(
        "PATTERN AND(MSFT m, GOOG g, INTC i)
         WHERE (m.difference < g.difference AND i.difference > 0.3)
         WITHIN 5 s",
        &catalog,
    )
    .unwrap();

    let planner = Planner::default();
    let cp = CompiledPattern::compile_single(&pattern).unwrap();
    let measured = analytic_measured_stats(&generated);
    let sels = analytic_selectivities(&cp, &generated);
    let stats = planner.stats_for(&cp, &measured, &sels).unwrap();

    let mut counts = Vec::new();
    for algo in [
        OrderAlgorithm::Trivial,
        OrderAlgorithm::EFreq,
        OrderAlgorithm::Greedy,
        OrderAlgorithm::IIGreedy,
        OrderAlgorithm::DpLd,
        OrderAlgorithm::Kbz,
    ] {
        planner.plan_order(&cp, &stats, algo).unwrap();
        let mut engine = cep::engine(&pattern)
            .backend(Backend::Nfa(algo))
            .stats(&generated)
            .build()
            .unwrap();
        counts.push(run_to_completion(engine.as_mut(), &generated.stream, false).match_count);
    }
    for algo in [
        TreeAlgorithm::ZStream,
        TreeAlgorithm::ZStreamOrd,
        TreeAlgorithm::DpB,
    ] {
        planner.plan_tree(&cp, &stats, algo).unwrap();
        let mut engine = cep::engine(&pattern)
            .backend(Backend::Tree(algo))
            .stats(&generated)
            .build()
            .unwrap();
        counts.push(run_to_completion(engine.as_mut(), &generated.stream, false).match_count);
    }
    assert!(counts[0] >= 1, "correlation pattern must match");
    assert!(
        counts.iter().all(|&c| c == counts[0]),
        "all plan algorithms must agree: {counts:?}"
    );
}

/// `examples/traffic_cameras.rs`: the in-order and lazy NFA plans agree on
/// the match set and the lazy plan creates strictly fewer partial matches.
#[test]
fn traffic_cameras_core_path_matches() {
    let mut catalog = Catalog::new();
    let cams: Vec<_> = ["A", "B", "C", "D"]
        .iter()
        .map(|n| {
            catalog
                .add_type(n, &[("vehicleID", ValueKind::Int)])
                .unwrap()
        })
        .collect();
    let pattern = parse_pattern(
        "PATTERN SEQ(A a, B b, C c, D d)
         WHERE (a.vehicleID == b.vehicleID AND b.vehicleID == c.vehicleID
                AND c.vehicleID == d.vehicleID)
         WITHIN 60 s",
        &catalog,
    )
    .unwrap();

    let mut rng = StdRng::seed_from_u64(99);
    let mut sb = StreamBuilder::new();
    let mut ts = 0u64;
    for vehicle in 0..150i64 {
        for (i, &cam) in cams.iter().enumerate() {
            ts += rng.gen_range(20..120);
            if i < 3 || vehicle % 10 == 0 {
                sb.push(Event::new(cam, ts, vec![Value::Int(vehicle)]));
            }
        }
    }
    let stream = sb.build();

    let cp = CompiledPattern::compile_single(&pattern).unwrap();
    let trivial = OrderPlan::trivial(&cp);
    let lazy = OrderPlan::new(vec![3, 2, 1, 0]).unwrap();

    let run = |plan: OrderPlan| {
        let mut engine = NfaEngine::new(cp.clone(), plan, EngineConfig::default()).unwrap();
        let r = run_to_completion(&mut engine, &stream, false);
        (r.match_count, r.metrics.partial_matches_created)
    };
    let (trivial_matches, trivial_partials) = run(trivial);
    let (lazy_matches, lazy_partials) = run(lazy);
    assert!(trivial_matches >= 1, "camera pattern must match");
    assert_eq!(trivial_matches, lazy_matches);
    assert!(
        lazy_partials < trivial_partials,
        "waiting for the rare camera D must create fewer partial matches \
         ({lazy_partials} vs {trivial_partials})"
    );
}

/// `examples/selection_strategies.rs`: each selection strategy upholds its
/// invariant on the same pattern, and the permissive strategies match.
#[test]
fn selection_strategies_core_path_matches() {
    let config = StockConfig::nasdaq_like(8, 20_000, 0.5, 77);
    let mut catalog = cep::core::schema::Catalog::new();
    let generated = StockStreamGenerator::generate(&config, &mut catalog).unwrap();
    let base = parse_pattern(
        "PATTERN SEQ(S0000 a, S0002 b, S0005 c)
         WHERE (a.difference < b.difference)
         WITHIN 6 s",
        &catalog,
    )
    .unwrap();

    let mut any_match_count = 0;
    let mut next_match_count = 0;
    for strategy in [
        SelectionStrategy::SkipTillAnyMatch,
        SelectionStrategy::SkipTillNextMatch,
        SelectionStrategy::StrictContiguity,
        SelectionStrategy::PartitionContiguity,
    ] {
        let mut pattern = base.clone();
        pattern.strategy = strategy;
        let mut engine = cep::engine(&pattern)
            .backend(Backend::Nfa(OrderAlgorithm::DpLd))
            .stats(&generated)
            .build()
            .unwrap();
        let r = run_to_completion(engine.as_mut(), &generated.stream, true);
        match strategy {
            SelectionStrategy::SkipTillAnyMatch => any_match_count = r.match_count,
            SelectionStrategy::SkipTillNextMatch => {
                next_match_count = r.match_count;
                let mut used = std::collections::HashSet::new();
                for m in &r.matches {
                    for e in m.events() {
                        assert!(used.insert(e.seq), "next-match events are single-use");
                    }
                }
            }
            SelectionStrategy::StrictContiguity => {
                for m in &r.matches {
                    let mut seqs: Vec<u64> = m.events().map(|e| e.seq).collect();
                    seqs.sort_unstable();
                    assert!(seqs.windows(2).all(|w| w[1] == w[0] + 1));
                }
            }
            SelectionStrategy::PartitionContiguity => {
                assert_eq!(
                    r.match_count, 0,
                    "cross-symbol patterns cannot be partition-contiguous"
                );
            }
        }
    }
    assert!(any_match_count >= 1, "any-match must find matches");
    assert!(next_match_count >= 1, "next-match must find matches");
    assert!(
        next_match_count <= any_match_count,
        "consuming events cannot increase the match count"
    );
}

/// `examples/adaptive_replanning.rs`: on a drifting-rate stream whose
/// frequent and rare types flip, the `AdaptiveEngine` swaps plans at least
/// once, does measurably less work than the static engine, and its output
/// stays byte-identical under every exact selection strategy.
#[test]
fn adaptive_replanning_core_path_swaps_and_stays_exact() {
    use cep::core::engine::Engine;
    use cep::core::matches::Match;
    use cep::shard::canonical_sort;
    use cep::streamgen::{generate_drifting, DriftPhase, StockConfig};

    let spec = |name: &str, rate: f64, drift: f64| SymbolSpec {
        name: name.into(),
        rate_per_sec: rate,
        start_price: 100.0,
        drift,
        volatility: 1.0,
    };
    // Milder drift separation than the example: at this scale the very
    // selective predicates would leave the fixture matchless.
    let base = StockConfig {
        symbols: vec![
            spec("AAA", 20.0, 0.5),
            spec("BBB", 4.0, 0.0),
            spec("CCC", 1.0, -0.5),
        ],
        duration_ms: 0,
        seed: 0xADA,
    };
    // Shorter phases than the example so this stays fast in debug builds.
    let phases = vec![
        DriftPhase::new(8_000, vec![1.0, 1.0, 1.0]),
        DriftPhase::new(8_000, vec![0.05, 1.0, 20.0]),
    ];
    let mut catalog = Catalog::new();
    let gen = generate_drifting(&base, &phases, &mut catalog).unwrap();
    let pattern = parse_pattern(
        "PATTERN SEQ(AAA a, BBB b, CCC c)
         WHERE (a.difference < b.difference AND b.difference < c.difference)
         WITHIN 2 s",
        &catalog,
    )
    .unwrap();
    let sels = vec![
        base.symbols[0].lt_selectivity(&base.symbols[1]),
        base.symbols[1].lt_selectivity(&base.symbols[2]),
    ];

    let run = |engine: &mut dyn Engine| -> Vec<Match> {
        let mut matches = run_to_completion(engine, &gen.stream, true).matches;
        canonical_sort(&mut matches);
        matches
    };
    for strategy in [
        SelectionStrategy::SkipTillAnyMatch,
        SelectionStrategy::StrictContiguity,
        SelectionStrategy::PartitionContiguity,
    ] {
        let mut p = pattern.clone();
        p.strategy = strategy;
        let cp = CompiledPattern::compile_single(&p).unwrap();
        let replanner = PlanReplanner::new(
            vec![(cp, sels.clone())],
            &gen.initial_stats(),
            Planner::default(),
            PlanKind::Order(OrderAlgorithm::DpLd),
            EngineConfig::default(),
        )
        .unwrap();
        let initial_plan = replanner.describe();
        let mut static_engine = replanner.build();
        let expected = run(static_engine.as_mut());
        let mut adaptive = AdaptiveEngine::new(
            replanner,
            p.window,
            AdaptiveConfig {
                horizon_ms: 2_000,
                drift_threshold: 0.5,
                check_every: 16,
                cooldown_events: 32,
                ..AdaptiveConfig::default()
            },
        );
        let got = run(&mut adaptive);
        assert_eq!(got, expected, "{strategy}: swapped output diverged");
        if strategy == SelectionStrategy::SkipTillAnyMatch {
            assert!(!expected.is_empty(), "fixture should produce matches");
            assert!(adaptive.swaps() >= 1, "the rate flip must trigger a swap");
            assert_ne!(adaptive.replanner().describe(), initial_plan);
            assert!(
                adaptive.metrics().partial_matches_created
                    < static_engine.metrics().partial_matches_created,
                "the swapped plan must do less work after the drift"
            );
        }
    }
}

/// The facade's adaptive factories: engines stamped out by the builder's
/// `.adaptive(..)` chain agree byte for byte with the static factories'
/// engines on a stationary stream (where calibration may swap, but the
/// result set cannot change).
#[test]
fn adaptive_factories_agree_with_static_factories() {
    use cep::core::matches::Match;
    use cep::shard::canonical_sort;

    let config = StockConfig::nasdaq_like(8, 10_000, 0.5, 21);
    let mut catalog = Catalog::new();
    let generated = StockStreamGenerator::generate(&config, &mut catalog).unwrap();
    let pattern = parse_pattern(
        "PATTERN SEQ(S0000 a, S0002 b)
         WHERE a.difference < b.difference
         WITHIN 4 s",
        &catalog,
    )
    .unwrap();
    let adaptive_cfg = AdaptiveConfig {
        horizon_ms: 2_000,
        drift_threshold: 0.5,
        check_every: 32,
        cooldown_events: 64,
        ..AdaptiveConfig::default()
    };
    let run = |factory: &dyn cep::core::engine::EngineFactory| -> Vec<Match> {
        let mut engine = factory.build();
        let mut matches = run_to_completion(engine.as_mut(), &generated.stream, true).matches;
        canonical_sort(&mut matches);
        matches
    };
    let nfa_static = run(cep::engine(&pattern)
        .backend(Backend::Nfa(OrderAlgorithm::DpLd))
        .stats(&generated)
        .factory()
        .unwrap()
        .as_ref());
    assert!(!nfa_static.is_empty(), "fixture should produce matches");
    let nfa_adaptive = run(cep::engine(&pattern)
        .backend(Backend::Nfa(OrderAlgorithm::DpLd))
        .stats(&generated)
        .adaptive(adaptive_cfg.clone())
        .factory()
        .unwrap()
        .as_ref());
    assert_eq!(nfa_adaptive, nfa_static);
    let tree_static = run(cep::engine(&pattern)
        .backend(Backend::Tree(TreeAlgorithm::DpB))
        .stats(&generated)
        .factory()
        .unwrap()
        .as_ref());
    let tree_adaptive = run(cep::engine(&pattern)
        .backend(Backend::Tree(TreeAlgorithm::DpB))
        .stats(&generated)
        .adaptive(adaptive_cfg)
        .factory()
        .unwrap()
        .as_ref());
    assert_eq!(tree_adaptive, tree_static);
    assert_eq!(
        nfa_adaptive.len(),
        tree_adaptive.len(),
        "engine families agree on the match count"
    );
}

/// The facade's *full*-adaptive factories (online selectivity
/// re-estimation on top of rate monitoring): on a stationary stream their
/// engines agree byte for byte with the static factories' — re-estimated
/// selectivities may refine the plan, never the result set.
#[test]
fn full_adaptive_factories_agree_with_static_factories() {
    use cep::core::matches::Match;
    use cep::shard::canonical_sort;

    let config = StockConfig::nasdaq_like(8, 10_000, 0.5, 21);
    let mut catalog = Catalog::new();
    let generated = StockStreamGenerator::generate(&config, &mut catalog).unwrap();
    let pattern = parse_pattern(
        "PATTERN SEQ(S0000 a, S0002 b)
         WHERE a.difference < b.difference
         WITHIN 4 s",
        &catalog,
    )
    .unwrap();
    let adaptive_cfg = AdaptiveConfig {
        horizon_ms: 2_000,
        drift_threshold: 0.5,
        check_every: 32,
        cooldown_events: 64,
        ..AdaptiveConfig::default()
    };
    let run = |factory: &dyn cep::core::engine::EngineFactory| -> Vec<Match> {
        let mut engine = factory.build();
        let mut matches = run_to_completion(engine.as_mut(), &generated.stream, true).matches;
        canonical_sort(&mut matches);
        matches
    };
    let nfa_static = run(cep::engine(&pattern)
        .backend(Backend::Nfa(OrderAlgorithm::DpLd))
        .stats(&generated)
        .factory()
        .unwrap()
        .as_ref());
    assert!(!nfa_static.is_empty(), "fixture should produce matches");
    let nfa_full = run(cep::engine(&pattern)
        .backend(Backend::Nfa(OrderAlgorithm::DpLd))
        .stats(&generated)
        .full_adaptive(adaptive_cfg.clone())
        .factory()
        .unwrap()
        .as_ref());
    assert_eq!(nfa_full, nfa_static);
    let tree_static = run(cep::engine(&pattern)
        .backend(Backend::Tree(TreeAlgorithm::DpB))
        .stats(&generated)
        .factory()
        .unwrap()
        .as_ref());
    let tree_full = run(cep::engine(&pattern)
        .backend(Backend::Tree(TreeAlgorithm::DpB))
        .stats(&generated)
        .full_adaptive(adaptive_cfg)
        .factory()
        .unwrap()
        .as_ref());
    assert_eq!(tree_full, tree_static);
}
