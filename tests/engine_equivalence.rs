//! Property-based cross-backend conformance: for random patterns and
//! random streams, every production backend — the lazy NFA (under a
//! random order plan), the tree engine (under a random tree plan), and
//! the delta-indexed engine — must emit output byte-identical
//! (signatures *and* `emitted_at`) to the naive exhaustive oracle. This
//! is the load-bearing correctness property behind the whole evaluation —
//! Section 2.2's claim that "all (n!) NFAs track the exact same
//! pattern", extended to tree plans and the non-materializing backend.
//!
//! The harness itself lives in [`cep::conformance`]; this suite draws
//! the random cases and fixtures through it, so any future backend added
//! to [`cep::conformance::standard_backends`] inherits the full sweep.

use cep::conformance::{
    build_pattern, check_equivalence, check_equivalence_under, check_stream_under, keyed,
    signatures, PatternSpec,
};
use cep::core::compile::CompiledPattern;
use cep::core::engine::{run_to_completion, EngineConfig};
use cep::core::event::{Event, TypeId};
use cep::core::naive::NaiveEngine;
use cep::core::pattern::PatternBuilder;
use cep::core::plan::{OrderPlan, TreeNode, TreePlan};
use cep::core::predicate::{CmpOp, Predicate};
use cep::core::selection::SelectionStrategy;
use cep::core::stream::StreamBuilder;
use cep::core::value::Value;
use cep::delta::DeltaEngine;
use cep::nfa::NfaEngine;
use cep::tree::TreeEngine;
use proptest::prelude::*;

proptest! {
    #![proptest_config(ProptestConfig {
        cases: 48,
        max_shrink_iters: 200,
    })]

    #[test]
    fn pure_patterns_equivalent(
        is_seq in any::<bool>(),
        types in prop::collection::vec(0u32..4, 2..=4),
        preds in prop::collection::vec((0usize..4, 0usize..4, 0u8..8), 0..=3),
        raw in prop::collection::vec((0u32..5, 0u8..4, -3i8..4), 10..=45),
        seed in any::<u64>(),
        window in 4u64..14,
    ) {
        let spec = PatternSpec {
            is_seq,
            elements: types.into_iter().map(|t| (t, 0)).collect(),
            predicates: preds,
            window,
        };
        check_equivalence(spec, raw, seed);
    }

    #[test]
    fn negation_patterns_equivalent(
        is_seq in any::<bool>(),
        types in prop::collection::vec(0u32..4, 3..=4),
        neg_at in 0usize..4,
        raw in prop::collection::vec((0u32..5, 0u8..4, -3i8..4), 10..=35),
        seed in any::<u64>(),
        window in 4u64..12,
    ) {
        let mut elements: Vec<(u32, u8)> = types.into_iter().map(|t| (t, 0)).collect();
        let k = neg_at % elements.len();
        elements[k].1 = 1;
        let spec = PatternSpec { is_seq, elements, predicates: vec![], window };
        check_equivalence(spec, raw, seed);
    }

    #[test]
    fn kleene_patterns_equivalent(
        is_seq in any::<bool>(),
        types in prop::collection::vec(0u32..4, 2..=3),
        kl_at in 0usize..3,
        preds in prop::collection::vec((0usize..3, 0usize..3, 0u8..8), 0..=2),
        raw in prop::collection::vec((0u32..5, 1u8..4, -3i8..4), 8..=25),
        seed in any::<u64>(),
        window in 4u64..10,
    ) {
        let mut elements: Vec<(u32, u8)> = types.into_iter().map(|t| (t, 0)).collect();
        let k = kl_at % elements.len();
        elements[k].1 = 2;
        let spec = PatternSpec { is_seq, elements, predicates: preds, window };
        check_equivalence(spec, raw, seed);
    }

    #[test]
    fn contiguity_patterns_equivalent(
        types in prop::collection::vec(0u32..3, 2..=3),
        raw in prop::collection::vec((0u32..4, 0u8..3, -3i8..4), 10..=30),
        seed in any::<u64>(),
    ) {
        let spec = PatternSpec {
            is_seq: true,
            elements: types.into_iter().map(|t| (t, 0)).collect(),
            predicates: vec![],
            window: 8,
        };
        check_equivalence_under(spec, raw, seed, SelectionStrategy::StrictContiguity);
    }

    #[test]
    fn eq_join_patterns_equivalent(
        is_seq in any::<bool>(),
        types in prop::collection::vec(0u32..3, 2..=3),
        join_at in 0usize..3,
        raw in prop::collection::vec((0u32..4, 0u8..3, -2i8..3), 10..=35),
        seed in any::<u64>(),
        window in 4u64..12,
    ) {
        // Equality-join sweep: the narrow attribute domain (-2..3) makes
        // `==` hits likely, exercising the delta engine's posting-list
        // probes rather than its scan fallback.
        let Some(mut pattern) = build_pattern(&PatternSpec {
            is_seq,
            elements: types.iter().map(|&t| (t, 0)).collect(),
            predicates: vec![],
            window,
        }) else { return Ok(()); };
        let n = types.len();
        let (i, j) = (join_at % n, (join_at + 1) % n);
        if i != j {
            let prims = pattern.primitives();
            let (pi, pj) = (prims[i].position, prims[j].position);
            pattern
                .predicates
                .push(Predicate::attr_cmp(pi, 0, CmpOp::Eq, pj, 0));
        }
        let Ok(cp) = CompiledPattern::compile_single(&pattern) else { return Ok(()); };
        let stream = cep::conformance::build_stream(&raw);
        check_stream_under(
            &cp,
            &stream,
            &EngineConfig::default(),
            seed,
            &format!("{pattern}"),
        );
    }
}

proptest! {
    #![proptest_config(ProptestConfig {
        cases: 64,
        max_shrink_iters: 200,
    })]

    /// The randomized differential sweep: queries drawn with negation and
    /// Kleene operators (possibly both), random predicates, and random
    /// windows, checked under **all three exact selection strategies** —
    /// 64 cases × 3 strategies = 192 query evaluations per run, each
    /// asserting NFA (random order plan), tree (random tree plan), the
    /// delta-indexed engine, and the naive exhaustive oracle emit
    /// byte-identical match streams.
    #[test]
    fn mixed_negation_kleene_equivalent_under_all_exact_strategies(
        is_seq in any::<bool>(),
        types in prop::collection::vec(0u32..4, 3..=4),
        neg_at in 0usize..4,
        kl_at in 0usize..4,
        with_neg in any::<bool>(),
        with_kl in any::<bool>(),
        preds in prop::collection::vec((0usize..4, 0usize..4, 0u8..8), 0..=2),
        raw in prop::collection::vec((0u32..5, 1u8..4, -3i8..4), 8..=28),
        seed in any::<u64>(),
        window in 4u64..10,
    ) {
        let mut elements: Vec<(u32, u8)> = types.into_iter().map(|t| (t, 0)).collect();
        if with_neg {
            let k = neg_at % elements.len();
            elements[k].1 = 1;
        }
        if with_kl {
            let k = kl_at % elements.len();
            if elements[k].1 == 0 {
                elements[k].1 = 2;
            }
        }
        let spec = PatternSpec { is_seq, elements, predicates: preds, window };
        for strategy in [
            SelectionStrategy::SkipTillAnyMatch,
            SelectionStrategy::StrictContiguity,
            SelectionStrategy::PartitionContiguity,
        ] {
            check_equivalence_under(spec.clone(), raw.clone(), seed, strategy);
        }
    }
}

/// Regression fixture: the paper's four-camera pattern on a crafted stream,
/// checked across all 24 plan orders, a bushy tree, and the delta engine.
#[test]
fn four_cameras_all_plans_agree() {
    let mut b = PatternBuilder::new(50);
    let a = b.event(TypeId(0), "a");
    let bb = b.event(TypeId(1), "b");
    let c = b.event(TypeId(2), "c");
    let d = b.event(TypeId(3), "d");
    for (x, y) in [(a, bb), (bb, c), (c, d)] {
        b.predicate(Predicate::attr_cmp(x.pos(), 0, CmpOp::Eq, y.pos(), 0));
    }
    let pattern = b.seq([a, bb, c, d]).unwrap();
    let cp = CompiledPattern::compile_single(&pattern).unwrap();

    let mut sb = StreamBuilder::new();
    let mut ts = 0;
    for vehicle in 0..6i64 {
        for cam in 0..4u32 {
            ts += 2;
            if cam < 3 || vehicle % 2 == 0 {
                sb.push(Event::new(TypeId(cam), ts, vec![Value::Int(vehicle)]));
            }
        }
    }
    let stream = sb.build();
    let mut oracle = NaiveEngine::new(cp.clone(), EngineConfig::default());
    let expected = keyed(&run_to_completion(&mut oracle, &stream, true).matches);
    assert!(!expected.is_empty(), "fixture must produce matches");

    for compiled in [false, true] {
        let cfg = EngineConfig {
            compiled_predicates: compiled,
            ..Default::default()
        };
        // All 24 orders.
        for p0 in 0..4usize {
            for p1 in 0..4usize {
                for p2 in 0..4usize {
                    let mut full: Vec<usize> = Vec::new();
                    for x in [p0, p1, p2] {
                        if !full.contains(&x) {
                            full.push(x);
                        }
                    }
                    for x in 0..4 {
                        if !full.contains(&x) {
                            full.push(x);
                        }
                    }
                    let plan = OrderPlan::new(full).unwrap();
                    let mut e = NfaEngine::new(cp.clone(), plan, cfg.clone()).unwrap();
                    assert_eq!(
                        keyed(&run_to_completion(&mut e, &stream, true).matches),
                        expected
                    );
                }
            }
        }
        // A bushy tree plan.
        let tree = TreePlan::new(TreeNode::join(
            TreeNode::join(TreeNode::Leaf(3), TreeNode::Leaf(2)),
            TreeNode::join(TreeNode::Leaf(1), TreeNode::Leaf(0)),
        ))
        .unwrap();
        let mut te = TreeEngine::new(cp.clone(), tree, cfg.clone()).unwrap();
        assert_eq!(
            keyed(&run_to_completion(&mut te, &stream, true).matches),
            expected
        );
        // The plan-free delta backend.
        let mut de = DeltaEngine::new(cp.clone(), cfg);
        let r = run_to_completion(&mut de, &stream, true);
        assert_eq!(keyed(&r.matches), expected);
        assert_eq!(
            r.metrics.partial_matches_created, 0,
            "delta must not materialize partial matches"
        );
        assert_eq!(signatures(&r.matches).len(), expected.len());
    }
}
