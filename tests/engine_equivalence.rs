//! Property-based cross-engine equivalence: for random patterns and random
//! streams, the lazy NFA (under a random order plan), the tree engine
//! (under a random tree plan), and the naive exhaustive oracle must emit
//! exactly the same set of matches. This is the load-bearing correctness
//! property behind the whole evaluation — Section 2.2's claim that "all
//! (n!) NFAs track the exact same pattern", extended to tree plans.

use cep::core::compile::CompiledPattern;
use cep::core::engine::{run_to_completion, EngineConfig};
use cep::core::event::{Event, TypeId};
use cep::core::matches::{validate_match, Match};
use cep::core::naive::NaiveEngine;
use cep::core::pattern::{Pattern, PatternBuilder, PatternExpr};
use cep::core::plan::{OrderPlan, TreeNode, TreePlan};
use cep::core::predicate::{CmpOp, Predicate};
use cep::core::stream::StreamBuilder;
use cep::core::value::Value;
use cep::nfa::NfaEngine;
use cep::tree::TreeEngine;
use proptest::prelude::*;

/// Random pattern description drawn by proptest.
#[derive(Debug, Clone)]
struct PatternSpec {
    is_seq: bool,
    /// Per element: event type (0..4), negated?, kleene?
    elements: Vec<(u32, u8)>, // flag: 0 plain, 1 not, 2 kleene
    /// Predicates between element indices: (i, j, op).
    predicates: Vec<(usize, usize, u8)>,
    window: u64,
}

fn op_of(code: u8) -> CmpOp {
    match code % 4 {
        0 => CmpOp::Lt,
        1 => CmpOp::Le,
        2 => CmpOp::Ne,
        _ => CmpOp::Gt,
    }
}

fn build_pattern(spec: &PatternSpec) -> Option<Pattern> {
    let mut b = PatternBuilder::new(spec.window);
    let evs: Vec<_> = spec
        .elements
        .iter()
        .enumerate()
        .map(|(i, (t, _))| b.event(TypeId(*t), &format!("e{i}")))
        .collect();
    for &(i, j, opc) in &spec.predicates {
        let (i, j) = (i % evs.len(), j % evs.len());
        if i == j {
            continue;
        }
        // Predicates only between non-negated elements (negated predicates
        // are exercised separately).
        if spec.elements[i].1 == 1 || spec.elements[j].1 == 1 {
            continue;
        }
        b.predicate(Predicate::attr_cmp(
            evs[i].pos(),
            0,
            op_of(opc),
            evs[j].pos(),
            0,
        ));
    }
    let exprs: Vec<PatternExpr> = evs
        .iter()
        .zip(&spec.elements)
        .map(|(&e, (_, flag))| match flag {
            1 => b.not(e),
            2 => b.kleene(e),
            _ => b.expr(e),
        })
        .collect();
    let result = if spec.is_seq {
        b.seq_exprs(exprs)
    } else {
        b.and_exprs(exprs)
    };
    result.ok().filter(|p| {
        // Need at least one positive element.
        p.primitives().iter().any(|pr| !pr.negated)
    })
}

fn build_stream(raw: &[(u32, u8, i8)]) -> Vec<cep::core::event::EventRef> {
    let mut sb = StreamBuilder::new();
    let mut ts = 0u64;
    for &(tid, dt, x) in raw {
        ts += (dt % 4) as u64;
        sb.push(Event::new(TypeId(tid % 5), ts, vec![Value::Int(x as i64)]));
    }
    sb.build()
}

fn signatures(ms: &[Match]) -> Vec<Vec<(usize, Vec<u64>)>> {
    let mut sigs: Vec<_> = ms.iter().map(|m| m.signature()).collect();
    sigs.sort();
    sigs
}

/// Deterministic "random" plan choices derived from a seed.
fn order_from_seed(n: usize, seed: u64) -> Vec<usize> {
    let mut order: Vec<usize> = (0..n).collect();
    let mut s = seed | 1;
    for i in (1..n).rev() {
        s = s
            .wrapping_mul(6364136223846793005)
            .wrapping_add(1442695040888963407);
        let j = (s >> 33) as usize % (i + 1);
        order.swap(i, j);
    }
    order
}

fn tree_from_order(order: &[usize], seed: u64) -> TreeNode {
    // Random binary tree over the given leaf order.
    fn rec(leaves: &[usize], s: &mut u64) -> TreeNode {
        if leaves.len() == 1 {
            return TreeNode::Leaf(leaves[0]);
        }
        *s = s
            .wrapping_mul(6364136223846793005)
            .wrapping_add(1442695040888963407);
        let split = 1 + ((*s >> 33) as usize % (leaves.len() - 1));
        TreeNode::join(rec(&leaves[..split], s), rec(&leaves[split..], s))
    }
    let mut s = seed | 1;
    rec(order, &mut s)
}

fn check_equivalence(spec: PatternSpec, raw_stream: Vec<(u32, u8, i8)>, seed: u64) {
    check_equivalence_under(
        spec,
        raw_stream,
        seed,
        cep::core::selection::SelectionStrategy::SkipTillAnyMatch,
    );
}

fn check_equivalence_under(
    spec: PatternSpec,
    raw_stream: Vec<(u32, u8, i8)>,
    seed: u64,
    strategy: cep::core::selection::SelectionStrategy,
) {
    let Some(mut pattern) = build_pattern(&spec) else {
        return; // structurally degenerate draw
    };
    pattern.strategy = strategy;
    let Ok(cp) = CompiledPattern::compile_single(&pattern) else {
        return;
    };
    let stream = build_stream(&raw_stream);
    let base_cfg = EngineConfig {
        max_kleene_events: 4,
        ..Default::default()
    };
    let mut oracle = NaiveEngine::new(cp.clone(), base_cfg.clone());
    let expected = signatures(&run_to_completion(&mut oracle, &stream, true).matches);

    let order = order_from_seed(cp.n(), seed);
    let tree = TreePlan::new(tree_from_order(&order, seed ^ 0xABCD)).expect("valid tree");
    // Every case runs both the interpreted predicate path and the compiled
    // pipeline (fused evaluators + arena + eager pruning): the two must be
    // byte-identical to each other and to the oracle.
    for compiled in [false, true] {
        let cfg = EngineConfig {
            compiled_predicates: compiled,
            ..base_cfg.clone()
        };
        let plan = OrderPlan::new(order.clone()).expect("permutation");
        let mut nfa = NfaEngine::new(cp.clone(), plan, cfg.clone()).expect("valid plan");
        let nfa_matches = run_to_completion(&mut nfa, &stream, true).matches;
        for m in &nfa_matches {
            validate_match(&cp, m).expect("NFA emitted an invalid match");
        }
        assert_eq!(
            signatures(&nfa_matches),
            expected,
            "NFA(order {order:?}, compiled={compiled}) disagrees with oracle for {pattern}"
        );

        let mut te = TreeEngine::new(cp.clone(), tree.clone(), cfg).expect("valid plan");
        let tree_matches = run_to_completion(&mut te, &stream, true).matches;
        for m in &tree_matches {
            validate_match(&cp, m).expect("tree emitted an invalid match");
        }
        assert_eq!(
            signatures(&tree_matches),
            expected,
            "Tree({tree}, compiled={compiled}) disagrees with oracle for {pattern}"
        );
    }
}

proptest! {
    #![proptest_config(ProptestConfig {
        cases: 48,
        max_shrink_iters: 200,
    })]

    #[test]
    fn pure_patterns_equivalent(
        is_seq in any::<bool>(),
        types in prop::collection::vec(0u32..4, 2..=4),
        preds in prop::collection::vec((0usize..4, 0usize..4, 0u8..8), 0..=3),
        raw in prop::collection::vec((0u32..5, 0u8..4, -3i8..4), 10..=45),
        seed in any::<u64>(),
        window in 4u64..14,
    ) {
        let spec = PatternSpec {
            is_seq,
            elements: types.into_iter().map(|t| (t, 0)).collect(),
            predicates: preds,
            window,
        };
        check_equivalence(spec, raw, seed);
    }

    #[test]
    fn negation_patterns_equivalent(
        is_seq in any::<bool>(),
        types in prop::collection::vec(0u32..4, 3..=4),
        neg_at in 0usize..4,
        raw in prop::collection::vec((0u32..5, 0u8..4, -3i8..4), 10..=35),
        seed in any::<u64>(),
        window in 4u64..12,
    ) {
        let mut elements: Vec<(u32, u8)> = types.into_iter().map(|t| (t, 0)).collect();
        let k = neg_at % elements.len();
        elements[k].1 = 1;
        let spec = PatternSpec { is_seq, elements, predicates: vec![], window };
        check_equivalence(spec, raw, seed);
    }

    #[test]
    fn kleene_patterns_equivalent(
        is_seq in any::<bool>(),
        types in prop::collection::vec(0u32..4, 2..=3),
        kl_at in 0usize..3,
        preds in prop::collection::vec((0usize..3, 0usize..3, 0u8..8), 0..=2),
        raw in prop::collection::vec((0u32..5, 1u8..4, -3i8..4), 8..=25),
        seed in any::<u64>(),
        window in 4u64..10,
    ) {
        let mut elements: Vec<(u32, u8)> = types.into_iter().map(|t| (t, 0)).collect();
        let k = kl_at % elements.len();
        elements[k].1 = 2;
        let spec = PatternSpec { is_seq, elements, predicates: preds, window };
        check_equivalence(spec, raw, seed);
    }

    #[test]
    fn contiguity_patterns_equivalent(
        types in prop::collection::vec(0u32..3, 2..=3),
        raw in prop::collection::vec((0u32..4, 0u8..3, -3i8..4), 10..=30),
        seed in any::<u64>(),
    ) {
        let Some(mut pattern) = build_pattern(&PatternSpec {
            is_seq: true,
            elements: types.into_iter().map(|t| (t, 0)).collect(),
            predicates: vec![],
            window: 8,
        }) else { return Ok(()); };
        pattern.strategy = cep::core::selection::SelectionStrategy::StrictContiguity;
        let cp = CompiledPattern::compile_single(&pattern).unwrap();
        let stream = build_stream(&raw);
        let mut oracle = NaiveEngine::new(cp.clone(), EngineConfig::default());
        let expected = signatures(&run_to_completion(&mut oracle, &stream, true).matches);
        let order = order_from_seed(cp.n(), seed);
        let tree = TreePlan::new(tree_from_order(&order, seed)).unwrap();
        for compiled in [false, true] {
            let cfg = EngineConfig {
                compiled_predicates: compiled,
                ..Default::default()
            };
            let mut nfa = NfaEngine::new(
                cp.clone(),
                OrderPlan::new(order.clone()).unwrap(),
                cfg.clone(),
            ).unwrap();
            prop_assert_eq!(
                signatures(&run_to_completion(&mut nfa, &stream, true).matches),
                expected.clone()
            );
            let mut te = TreeEngine::new(cp.clone(), tree.clone(), cfg).unwrap();
            prop_assert_eq!(
                signatures(&run_to_completion(&mut te, &stream, true).matches),
                expected.clone()
            );
        }
    }
}

proptest! {
    #![proptest_config(ProptestConfig {
        cases: 64,
        max_shrink_iters: 200,
    })]

    /// The randomized differential sweep: queries drawn with negation and
    /// Kleene operators (possibly both), random predicates, and random
    /// windows, checked under **all three exact selection strategies** —
    /// 64 cases × 3 strategies = 192 query evaluations per run, each
    /// asserting NFA (random order plan), tree (random tree plan), and the
    /// naive exhaustive oracle emit identical match sets.
    #[test]
    fn mixed_negation_kleene_equivalent_under_all_exact_strategies(
        is_seq in any::<bool>(),
        types in prop::collection::vec(0u32..4, 3..=4),
        neg_at in 0usize..4,
        kl_at in 0usize..4,
        with_neg in any::<bool>(),
        with_kl in any::<bool>(),
        preds in prop::collection::vec((0usize..4, 0usize..4, 0u8..8), 0..=2),
        raw in prop::collection::vec((0u32..5, 1u8..4, -3i8..4), 8..=28),
        seed in any::<u64>(),
        window in 4u64..10,
    ) {
        let mut elements: Vec<(u32, u8)> = types.into_iter().map(|t| (t, 0)).collect();
        if with_neg {
            let k = neg_at % elements.len();
            elements[k].1 = 1;
        }
        if with_kl {
            let k = kl_at % elements.len();
            if elements[k].1 == 0 {
                elements[k].1 = 2;
            }
        }
        let spec = PatternSpec { is_seq, elements, predicates: preds, window };
        for strategy in [
            cep::core::selection::SelectionStrategy::SkipTillAnyMatch,
            cep::core::selection::SelectionStrategy::StrictContiguity,
            cep::core::selection::SelectionStrategy::PartitionContiguity,
        ] {
            check_equivalence_under(spec.clone(), raw.clone(), seed, strategy);
        }
    }
}

/// Regression fixture: the paper's four-camera pattern on a crafted stream,
/// checked across all 24 plan orders and a bushy tree.
#[test]
fn four_cameras_all_plans_agree() {
    let mut b = PatternBuilder::new(50);
    let a = b.event(TypeId(0), "a");
    let bb = b.event(TypeId(1), "b");
    let c = b.event(TypeId(2), "c");
    let d = b.event(TypeId(3), "d");
    for (x, y) in [(a, bb), (bb, c), (c, d)] {
        b.predicate(Predicate::attr_cmp(x.pos(), 0, CmpOp::Eq, y.pos(), 0));
    }
    let pattern = b.seq([a, bb, c, d]).unwrap();
    let cp = CompiledPattern::compile_single(&pattern).unwrap();

    let mut sb = StreamBuilder::new();
    let mut ts = 0;
    for vehicle in 0..6i64 {
        for cam in 0..4u32 {
            ts += 2;
            if cam < 3 || vehicle % 2 == 0 {
                sb.push(Event::new(TypeId(cam), ts, vec![Value::Int(vehicle)]));
            }
        }
    }
    let stream = sb.build();
    let mut oracle = NaiveEngine::new(cp.clone(), EngineConfig::default());
    let expected = signatures(&run_to_completion(&mut oracle, &stream, true).matches);
    assert!(!expected.is_empty(), "fixture must produce matches");

    for compiled in [false, true] {
        let cfg = EngineConfig {
            compiled_predicates: compiled,
            ..Default::default()
        };
        // All 24 orders.
        for p0 in 0..4usize {
            for p1 in 0..4usize {
                for p2 in 0..4usize {
                    let mut order = vec![p0, p1, p2];
                    order.dedup();
                    let mut full: Vec<usize> = Vec::new();
                    for x in [p0, p1, p2] {
                        if !full.contains(&x) {
                            full.push(x);
                        }
                    }
                    for x in 0..4 {
                        if !full.contains(&x) {
                            full.push(x);
                        }
                    }
                    let plan = OrderPlan::new(full).unwrap();
                    let mut e = NfaEngine::new(cp.clone(), plan, cfg.clone()).unwrap();
                    assert_eq!(
                        signatures(&run_to_completion(&mut e, &stream, true).matches),
                        expected
                    );
                }
            }
        }
        // A bushy tree plan.
        let tree = TreePlan::new(TreeNode::join(
            TreeNode::join(TreeNode::Leaf(3), TreeNode::Leaf(2)),
            TreeNode::join(TreeNode::Leaf(1), TreeNode::Leaf(0)),
        ))
        .unwrap();
        let mut te = TreeEngine::new(cp.clone(), tree, cfg).unwrap();
        assert_eq!(
            signatures(&run_to_completion(&mut te, &stream, true).matches),
            expected
        );
    }
}
