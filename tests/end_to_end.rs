//! End-to-end pipeline tests: SASE text → parser → compiler → planner →
//! engines over generated stock streams, with every algorithm agreeing on
//! the detected matches and the strategy semantics holding.

use cep::core::compile::CompiledPattern;
use cep::core::engine::{run_to_completion, EngineConfig};
use cep::core::matches::Match;
use cep::core::schema::Catalog;
use cep::core::selection::SelectionStrategy;
use cep::prelude::*;
use cep::streamgen::{generate_set, GeneratedStream, WorkloadConfig};

fn setup(seed: u64) -> (Catalog, GeneratedStream) {
    let config = StockConfig::nasdaq_like(12, 60_000, 0.2, seed);
    let mut catalog = Catalog::new();
    let gen = StockStreamGenerator::generate(&config, &mut catalog).unwrap();
    (catalog, gen)
}

fn signatures(ms: &[Match]) -> Vec<Vec<(usize, Vec<u64>)>> {
    let mut sigs: Vec<_> = ms.iter().map(|m| m.signature()).collect();
    sigs.sort();
    sigs
}

#[test]
fn sase_to_engines_all_algorithms_agree() {
    let (catalog, gen) = setup(31);
    let pattern = parse_pattern(
        "PATTERN SEQ(S0001 a, S0004 b, S0007 c)
         WHERE (a.difference < b.difference AND b.difference < c.difference)
         WITHIN 8 s",
        &catalog,
    )
    .unwrap();
    let cfg = EngineConfig::default();
    let mut reference: Option<Vec<_>> = None;
    for algo in [
        OrderAlgorithm::Trivial,
        OrderAlgorithm::EFreq,
        OrderAlgorithm::Greedy,
        OrderAlgorithm::IIRandom {
            restarts: 5,
            seed: 1,
        },
        OrderAlgorithm::IIGreedy,
        OrderAlgorithm::DpLd,
        OrderAlgorithm::Kbz,
    ] {
        let mut engine = cep::engine(&pattern)
            .backend(Backend::Nfa(algo))
            .stats(&gen)
            .config(cfg.clone())
            .build()
            .unwrap();
        let r = run_to_completion(engine.as_mut(), &gen.stream, true);
        let sigs = signatures(&r.matches);
        match &reference {
            None => reference = Some(sigs),
            Some(expected) => assert_eq!(&sigs, expected, "{algo} disagrees"),
        }
    }
    for algo in [
        TreeAlgorithm::ZStream,
        TreeAlgorithm::ZStreamOrd,
        TreeAlgorithm::DpB,
    ] {
        let mut engine = cep::engine(&pattern)
            .backend(Backend::Tree(algo))
            .stats(&gen)
            .config(cfg.clone())
            .build()
            .unwrap();
        let r = run_to_completion(engine.as_mut(), &gen.stream, true);
        assert_eq!(
            &signatures(&r.matches),
            reference.as_ref().unwrap(),
            "{algo} disagrees"
        );
    }
    assert!(
        !reference.unwrap().is_empty(),
        "fixture should detect at least one match"
    );
}

#[test]
fn disjunction_equals_union_of_branches() {
    let (catalog, gen) = setup(37);
    let pattern = parse_pattern(
        "PATTERN OR(SEQ(S0000 a, S0002 b), SEQ(S0005 c, S0008 d)) WITHIN 5 s",
        &catalog,
    )
    .unwrap();
    // Multi-engine result.
    let mut engine = cep::engine(&pattern)
        .backend(Backend::Nfa(OrderAlgorithm::Greedy))
        .stats(&gen)
        .build()
        .unwrap();
    let combined = run_to_completion(engine.as_mut(), &gen.stream, true);
    // Branches evaluated individually.
    let branches = CompiledPattern::compile(&pattern).unwrap();
    assert_eq!(branches.len(), 2);
    let mut union = 0u64;
    for cp in branches {
        let mut e = cep::nfa::NfaEngine::with_trivial_plan(cp, EngineConfig::default());
        union += run_to_completion(&mut e, &gen.stream, true).match_count;
    }
    assert_eq!(combined.match_count, union);
    assert!(union > 0, "fixture should match");
}

#[test]
fn next_match_is_disjoint_and_any_match_is_superset() {
    let (catalog, gen) = setup(41);
    let any = parse_pattern("PATTERN SEQ(S0001 a, S0003 b) WITHIN 4 s", &catalog).unwrap();
    let mut next = any.clone();
    next.strategy = SelectionStrategy::SkipTillNextMatch;

    let mut e_any = cep::engine(&any)
        .backend(Backend::Nfa(OrderAlgorithm::DpLd))
        .stats(&gen)
        .build()
        .unwrap();
    let r_any = run_to_completion(e_any.as_mut(), &gen.stream, true);
    let mut e_next = cep::engine(&next)
        .backend(Backend::Nfa(OrderAlgorithm::DpLd))
        .stats(&gen)
        .build()
        .unwrap();
    let r_next = run_to_completion(e_next.as_mut(), &gen.stream, true);

    // Next-match: disjoint events, and no more matches than any-match.
    let mut used = std::collections::HashSet::new();
    for m in &r_next.matches {
        for e in m.events() {
            assert!(used.insert(e.seq), "event reused under next-match");
        }
    }
    assert!(r_next.match_count <= r_any.match_count);
    // Every next-match is also an any-match.
    let any_sigs: std::collections::HashSet<_> =
        r_any.matches.iter().map(|m| m.signature()).collect();
    for m in &r_next.matches {
        assert!(any_sigs.contains(&m.signature()));
    }
}

#[test]
fn partition_contiguity_on_partitioned_stream() {
    // The stock generator partitions by symbol, so a cross-symbol pattern
    // can never satisfy partition contiguity, while a same-symbol pair
    // pattern can.
    let (catalog, gen) = setup(43);
    let cross = parse_pattern(
        "PATTERN SEQ(S0001 a, S0003 b) WITHIN 4 s STRATEGY partition",
        &catalog,
    )
    .unwrap();
    let mut engine = cep::engine(&cross)
        .backend(Backend::Nfa(OrderAlgorithm::Trivial))
        .stats(&gen)
        .build()
        .unwrap();
    let r = run_to_completion(engine.as_mut(), &gen.stream, true);
    assert_eq!(
        r.match_count, 0,
        "different symbols live in different partitions"
    );

    let same = parse_pattern(
        "PATTERN SEQ(S0001 a, S0001 b) WITHIN 60 s STRATEGY partition",
        &catalog,
    )
    .unwrap();
    let mut engine = cep::engine(&same)
        .backend(Backend::Nfa(OrderAlgorithm::Trivial))
        .stats(&gen)
        .build()
        .unwrap();
    let r = run_to_completion(engine.as_mut(), &gen.stream, true);
    assert!(
        r.match_count > 0,
        "consecutive updates of one symbol are partition-adjacent"
    );
}

#[test]
fn workload_sets_run_under_both_engines() {
    let (_, gen) = setup(47);
    let wl = WorkloadConfig {
        window_ms: 4_000,
        seed: 5,
    };
    let cfg = EngineConfig {
        max_kleene_events: 5,
        ..Default::default()
    };
    for kind in PatternSetKind::all() {
        let set = generate_set(kind, 3..=3, 2, &gen, &wl).unwrap();
        for gp in &set {
            let mut nfa = cep::engine(&gp.pattern)
                .backend(Backend::Nfa(OrderAlgorithm::Greedy))
                .stats(&gen)
                .config(cfg.clone())
                .build()
                .unwrap();
            let rn = run_to_completion(nfa.as_mut(), &gen.stream, true);
            let mut tree = cep::engine(&gp.pattern)
                .backend(Backend::Tree(TreeAlgorithm::ZStreamOrd))
                .stats(&gen)
                .config(cfg.clone())
                .build()
                .unwrap();
            let rt = run_to_completion(tree.as_mut(), &gen.stream, true);
            assert_eq!(
                signatures(&rn.matches),
                signatures(&rt.matches),
                "{kind} pattern disagrees between engines: {}",
                gp.pattern
            );
        }
    }
}

#[test]
fn latency_plans_shift_work_before_the_last_event() {
    // With a large latency weight, the planner schedules the temporally
    // last element last, so detection work after its arrival is minimal.
    use cep::optimizer::{Planner, PlannerConfig};
    let (catalog, gen) = setup(53);
    let pattern = parse_pattern(
        "PATTERN SEQ(S0002 a, S0004 b, S0006 c) WITHIN 8 s",
        &catalog,
    )
    .unwrap();
    let cp = CompiledPattern::compile_single(&pattern).unwrap();
    let measured = cep::streamgen::analytic_measured_stats(&gen);
    let sels = cep::streamgen::analytic_selectivities(&cp, &gen);
    let high_alpha = Planner::new(PlannerConfig {
        alpha: 1e9,
        ..Default::default()
    });
    let stats = high_alpha.stats_for(&cp, &measured, &sels).unwrap();
    let plan = high_alpha
        .plan_order(&cp, &stats, OrderAlgorithm::DpLd)
        .unwrap();
    assert_eq!(
        *plan.order().last().unwrap(),
        2,
        "latency-dominated plan must finish with the last sequence element"
    );
}
