//! Deeper coverage of the selection strategies, multi-engine disjunction
//! handling, and engine lifecycle edge cases.

use cep::core::compile::CompiledPattern;
use cep::core::engine::{run_to_completion, Engine, EngineConfig, MultiEngine};
use cep::core::event::{Event, TypeId};
use cep::core::naive::NaiveEngine;
use cep::core::pattern::PatternBuilder;
use cep::core::plan::{OrderPlan, TreeNode, TreePlan};
use cep::core::predicate::{CmpOp, Predicate};
use cep::core::selection::SelectionStrategy;
use cep::core::stream::StreamBuilder;
use cep::core::value::Value;
use cep::nfa::NfaEngine;
use cep::tree::TreeEngine;

fn t(i: u32) -> TypeId {
    TypeId(i)
}

fn ev(tid: u32, ts: u64, x: i64) -> Event {
    Event::new(t(tid), ts, vec![Value::Int(x)])
}

fn stream(events: Vec<Event>) -> Vec<cep::core::event::EventRef> {
    let mut b = StreamBuilder::new();
    for e in events {
        b.push(e);
    }
    b.build()
}

#[test]
fn empty_stream_produces_no_matches() {
    let mut b = PatternBuilder::new(10);
    let a = b.event(t(0), "a");
    let c = b.event(t(1), "c");
    let cp = CompiledPattern::compile_single(&b.seq([a, c]).unwrap()).unwrap();
    let s: Vec<cep::core::event::EventRef> = Vec::new();
    let mut nfa = NfaEngine::with_trivial_plan(cp.clone(), EngineConfig::default());
    assert_eq!(run_to_completion(&mut nfa, &s, true).match_count, 0);
    let mut tree = TreeEngine::with_trivial_plan(cp, EngineConfig::default());
    assert_eq!(run_to_completion(&mut tree, &s, true).match_count, 0);
}

#[test]
fn single_element_pattern_matches_every_event() {
    let mut b = PatternBuilder::new(10);
    let a = b.event(t(0), "a");
    let cp = CompiledPattern::compile_single(&b.seq([a]).unwrap()).unwrap();
    let s = stream(vec![ev(0, 1, 0), ev(1, 2, 0), ev(0, 3, 0)]);
    let mut nfa = NfaEngine::with_trivial_plan(cp.clone(), EngineConfig::default());
    assert_eq!(run_to_completion(&mut nfa, &s, true).match_count, 2);
    let mut tree = TreeEngine::with_trivial_plan(cp, EngineConfig::default());
    assert_eq!(run_to_completion(&mut tree, &s, true).match_count, 2);
}

#[test]
fn flush_without_events_is_harmless() {
    let mut b = PatternBuilder::new(10);
    let a = b.event(t(0), "a");
    let cp = CompiledPattern::compile_single(&b.seq([a]).unwrap()).unwrap();
    let mut nfa = NfaEngine::with_trivial_plan(cp, EngineConfig::default());
    let mut out = Vec::new();
    nfa.flush(&mut out);
    nfa.flush(&mut out);
    assert!(out.is_empty());
}

#[test]
fn next_match_greedy_takes_earliest_pairs_in_order_plans() {
    // Stream: a1 a2 c1 c2. Trivial plan consumes (a1, c1) then (a2, c2).
    let mut b = PatternBuilder::new(20);
    b.strategy(SelectionStrategy::SkipTillNextMatch);
    let a = b.event(t(0), "a");
    let c = b.event(t(1), "c");
    let cp = CompiledPattern::compile_single(&b.seq([a, c]).unwrap()).unwrap();
    let s = stream(vec![ev(0, 1, 0), ev(0, 2, 0), ev(1, 3, 0), ev(1, 4, 0)]);
    let mut nfa =
        NfaEngine::new(cp.clone(), OrderPlan::trivial(&cp), EngineConfig::default()).unwrap();
    let r = run_to_completion(&mut nfa, &s, true);
    assert_eq!(r.match_count, 2);
    let sigs: Vec<_> = r.matches.iter().map(|m| m.signature()).collect();
    assert!(sigs.contains(&vec![(0, vec![0]), (1, vec![2])]));
    assert!(sigs.contains(&vec![(0, vec![1]), (1, vec![3])]));
}

#[test]
fn next_match_under_negation_consumes_only_emitted() {
    // SEQ(A, NOT(B), C) under next-match: a blocked match must not consume
    // its events.
    let mut b = PatternBuilder::new(20);
    b.strategy(SelectionStrategy::SkipTillNextMatch);
    let a = b.event(t(0), "a");
    let nb = b.event(t(1), "n");
    let c = b.event(t(2), "c");
    let ae = b.expr(a);
    let ne = b.not(nb);
    let ce = b.expr(c);
    let p = b.seq_exprs([ae, ne, ce]).unwrap();
    let cp = CompiledPattern::compile_single(&p).unwrap();
    // a@1, b@2 (kills a@1..c@3), c@3; then c@4 also blocked (b still
    // between a and it); fresh a@5, c@6 succeeds.
    let s = stream(vec![
        ev(0, 1, 0),
        ev(1, 2, 0),
        ev(2, 3, 0),
        ev(2, 4, 0),
        ev(0, 5, 0),
        ev(2, 6, 0),
    ]);
    let mut nfa =
        NfaEngine::new(cp.clone(), OrderPlan::trivial(&cp), EngineConfig::default()).unwrap();
    let r = run_to_completion(&mut nfa, &s, true);
    assert_eq!(r.match_count, 1);
    assert_eq!(r.matches[0].signature(), vec![(0, vec![4]), (2, vec![5])]);
}

#[test]
fn multi_engine_prunes_dedup_memory() {
    // Two identical branches; the dedup table must not grow with the
    // stream (signatures older than the window are evicted).
    let mut b1 = PatternBuilder::new(5);
    let a1 = b1.event(t(0), "a");
    let cp1 = CompiledPattern::compile_single(&b1.seq([a1]).unwrap()).unwrap();
    let mut b2 = PatternBuilder::new(5);
    let a2 = b2.event(t(0), "a");
    let cp2 = CompiledPattern::compile_single(&b2.seq([a2]).unwrap()).unwrap();
    let engines: Vec<Box<dyn Engine>> = vec![
        Box::new(NfaEngine::with_trivial_plan(cp1, EngineConfig::default())),
        Box::new(NfaEngine::with_trivial_plan(cp2, EngineConfig::default())),
    ];
    let mut me = MultiEngine::new(engines, 5);
    let mut events = Vec::new();
    for i in 0..3000u64 {
        events.push(ev(0, i * 2, 0));
    }
    let s = stream(events);
    let r = run_to_completion(&mut me, &s, true);
    // Identical branches: each event matches once (deduped).
    assert_eq!(r.match_count, 3000);
}

#[test]
fn tree_engine_negation_matches_oracle_under_all_tree_shapes() {
    // AND with NOT: windowed negation semantics across tree shapes.
    let mut b = PatternBuilder::new(6);
    let a = b.event(t(0), "a");
    let nb = b.event(t(1), "n");
    let c = b.event(t(2), "c");
    let d = b.event(t(3), "d");
    let ae = b.expr(a);
    let ne = b.not(nb);
    let ce = b.expr(c);
    let de = b.expr(d);
    let p = b.and_exprs([ae, ne, ce, de]).unwrap();
    let cp = CompiledPattern::compile_single(&p).unwrap();
    let s = stream(vec![
        ev(2, 1, 0),
        ev(0, 2, 0),
        ev(3, 3, 0),
        ev(1, 9, 0), // within window of nothing that matters? ts 9 vs span 1..3 + W 6
        ev(0, 12, 0),
        ev(2, 13, 0),
        ev(3, 14, 0),
    ]);
    let mut oracle = NaiveEngine::new(cp.clone(), EngineConfig::default());
    let expected: Vec<_> = run_to_completion(&mut oracle, &s, true)
        .matches
        .iter()
        .map(|m| m.signature())
        .collect();
    for tree in [
        TreeNode::join(
            TreeNode::join(TreeNode::Leaf(0), TreeNode::Leaf(1)),
            TreeNode::Leaf(2),
        ),
        TreeNode::join(
            TreeNode::Leaf(2),
            TreeNode::join(TreeNode::Leaf(1), TreeNode::Leaf(0)),
        ),
    ] {
        let plan = TreePlan::new(tree).unwrap();
        let mut te = TreeEngine::new(cp.clone(), plan, EngineConfig::default()).unwrap();
        let got: Vec<_> = run_to_completion(&mut te, &s, true)
            .matches
            .iter()
            .map(|m| m.signature())
            .collect();
        let mut g = got.clone();
        let mut e = expected.clone();
        g.sort();
        e.sort();
        assert_eq!(g, e);
    }
}

#[test]
fn metrics_are_populated_consistently() {
    let mut b = PatternBuilder::new(10);
    let a = b.event(t(0), "a");
    let c = b.event(t(1), "c");
    b.predicate(Predicate::attr_cmp(a.pos(), 0, CmpOp::Le, c.pos(), 0));
    let cp = CompiledPattern::compile_single(&b.seq([a, c]).unwrap()).unwrap();
    let s = stream(vec![ev(0, 1, 0), ev(1, 2, 0), ev(0, 3, 0), ev(1, 4, 1)]);
    for engine in [
        Box::new(NfaEngine::with_trivial_plan(
            cp.clone(),
            EngineConfig::default(),
        )) as Box<dyn Engine>,
        Box::new(TreeEngine::with_trivial_plan(
            cp.clone(),
            EngineConfig::default(),
        )),
        Box::new(NaiveEngine::new(cp.clone(), EngineConfig::default())),
    ] {
        let mut engine = engine;
        let r = run_to_completion(engine.as_mut(), &s, true);
        assert_eq!(r.metrics.events_processed, 4);
        assert_eq!(r.metrics.events_relevant, 4);
        assert_eq!(r.metrics.matches_emitted, r.match_count);
        assert!(r.metrics.wall_time_ns > 0);
        assert_eq!(r.match_count, 3, "{}", engine.name());
    }
}

#[test]
fn kleene_under_contiguity_validates_exactly() {
    // KL inside a strict-contiguity sequence: the whole match (set members
    // included) must be stream-adjacent.
    let mut b = PatternBuilder::new(20);
    b.strategy(SelectionStrategy::StrictContiguity);
    let a = b.event(t(0), "a");
    let k = b.event(t(1), "k");
    let c = b.event(t(2), "c");
    let ae = b.expr(a);
    let ke = b.kleene(k);
    let ce = b.expr(c);
    let p = b.seq_exprs([ae, ke, ce]).unwrap();
    let cp = CompiledPattern::compile_single(&p).unwrap();
    // a k k c -> matches must use both k's (a k1 k2 c) for adjacency; the
    // subset {k1} would leave a gap.
    let s = stream(vec![ev(0, 1, 0), ev(1, 2, 0), ev(1, 3, 0), ev(2, 4, 0)]);
    let mut oracle = NaiveEngine::new(cp.clone(), EngineConfig::default());
    let expected: Vec<_> = run_to_completion(&mut oracle, &s, true)
        .matches
        .iter()
        .map(|m| m.signature())
        .collect();
    assert_eq!(expected.len(), 1);
    assert_eq!(
        expected[0],
        vec![(0, vec![0]), (1, vec![1, 2]), (2, vec![3])]
    );
    let mut nfa = NfaEngine::with_trivial_plan(cp.clone(), EngineConfig::default());
    let got: Vec<_> = run_to_completion(&mut nfa, &s, true)
        .matches
        .iter()
        .map(|m| m.signature())
        .collect();
    assert_eq!(got, expected);
}
