//! The delta engine composes with the sharded runtime for free: it is an
//! [`cep::core::engine::EngineFactory`] like every other backend, so
//! key-hashed routing over an equality-correlated query merges
//! byte-identical to the serial engine for any shard count — and the new
//! delta counters (index probes, delta updates, enumeration histogram)
//! survive the cross-shard metrics merge.

use cep::conformance::keyed;
use cep::core::compile::CompiledPattern;
use cep::core::engine::{run_to_completion, EngineConfig};
use cep::core::event::{Event, TypeId};
use cep::core::pattern::PatternBuilder;
use cep::core::predicate::{CmpOp, Predicate};
use cep::core::stream::StreamBuilder;
use cep::core::value::Value;
use cep::delta::DeltaEngine;
use cep::shard::{RoutingPolicy, ShardedRuntime};

#[test]
fn sharded_delta_is_byte_identical_to_serial() {
    // SEQ(A a, B b, C c) WHERE a.key == b.key AND b.key == c.key: the
    // key-equated shape HashAttr routing is exact for.
    let mut b = PatternBuilder::new(40);
    let a = b.event(TypeId(0), "a");
    let bb = b.event(TypeId(1), "b");
    let c = b.event(TypeId(2), "c");
    b.predicate(Predicate::attr_cmp(a.pos(), 0, CmpOp::Eq, bb.pos(), 0));
    b.predicate(Predicate::attr_cmp(bb.pos(), 0, CmpOp::Eq, c.pos(), 0));
    let pattern = b.seq([a, bb, c]).unwrap();

    let mut sb = StreamBuilder::new();
    for i in 0..1200u64 {
        let tid = if i % 17 == 0 { 2 } else { (i % 2) as u32 };
        // Blocks of 4 consecutive events share a key, so both parities
        // (types A and B) and the occasional C land on every key.
        let key = ((i / 4) % 8) as i64;
        sb.push(Event::new(
            TypeId(tid),
            i,
            vec![Value::Int(key), Value::Int((i % 5) as i64)],
        ));
    }
    let stream = sb.build();

    let cp = CompiledPattern::compile_single(&pattern).unwrap();
    let mut serial = DeltaEngine::new(cp, EngineConfig::default());
    let expected = run_to_completion(&mut serial, &stream, true);
    assert!(expected.match_count > 0, "fixture must produce matches");

    let factory = cep::engine(&pattern).factory().unwrap();
    for shards in [1, 2, 4] {
        let runtime = ShardedRuntime::with_shards(shards);
        let r = runtime.run(factory.as_ref(), &stream, RoutingPolicy::HashAttr(0), true);
        assert_eq!(
            keyed(&r.matches),
            keyed(&expected.matches),
            "{shards}-shard delta merge diverged from serial"
        );
        assert_eq!(
            r.metrics.partial_matches_created, 0,
            "delta shards must not materialize partial matches"
        );
        assert!(
            r.metrics.index_probes > 0,
            "index probes must survive the cross-shard metrics merge"
        );
        assert!(r.metrics.delta_updates > 0);
        assert!(r.metrics.enumeration_ns.count() > 0);
    }
}

#[test]
fn delta_factory_shares_compiled_programs_across_builds() {
    let mut b = PatternBuilder::new(10);
    let a = b.event(TypeId(0), "a");
    let c = b.event(TypeId(1), "c");
    b.predicate(Predicate::attr_cmp(a.pos(), 0, CmpOp::Eq, c.pos(), 0));
    let pattern = b.seq([a, c]).unwrap();
    let factory = cep::engine(&pattern).factory().unwrap();
    let first = factory.build();
    let second = factory.build();
    // First build lowers the program (miss), the second reuses it (hit).
    assert_eq!(first.metrics().plan_cache_misses, 1);
    assert_eq!(first.metrics().plan_cache_hits, 0);
    assert_eq!(second.metrics().plan_cache_hits, 1);
    assert_eq!(second.metrics().plan_cache_misses, 0);
}
