//! Multi-query registry conformance: a [`cep::core::registry::QueryRegistry`]
//! evaluating N overlapping queries must be *invisible* — each query's
//! output byte-identical (`(signature, emitted_at)`) to an independent
//! engine evaluating that query alone — while shared fragments execute
//! once. The property sweep draws random query sets through
//! [`cep::conformance`]; the acceptance fixture pins the headline claim:
//! 32 overlapping queries, three backends, byte-identity per query, and
//! sub-linear predicate work.

use cep::conformance::{check_registry_equivalence_under, keyed, PatternSpec};
use cep::core::engine::run_to_completion;
use cep::core::selection::SelectionStrategy;
use cep::prelude::*;
use proptest::prelude::*;

proptest! {
    #![proptest_config(ProptestConfig {
        cases: 24,
        max_shrink_iters: 100,
    })]

    /// Random query sets (with deliberate duplicates, so fragment sharing
    /// actually triggers) agree per-query with independent engines across
    /// every backend, interpreted and compiled predicate paths both.
    #[test]
    fn registry_matches_independent_engines(
        seqs in prop::collection::vec(any::<bool>(), 2..=3),
        types in prop::collection::vec(prop::collection::vec(0u32..4, 2..=3), 2..=3),
        preds in prop::collection::vec((0usize..3, 0usize..3, 0u8..8), 0..=2),
        raw in prop::collection::vec((0u32..5, 0u8..4, -3i8..4), 10..=40),
        seed in any::<u64>(),
        window in 4u64..12,
        duplicate in any::<bool>(),
    ) {
        let mut specs: Vec<PatternSpec> = seqs
            .iter()
            .zip(&types)
            .map(|(&is_seq, ts)| PatternSpec {
                is_seq,
                elements: ts.iter().map(|&t| (t, 0)).collect(),
                predicates: preds.clone(),
                window,
            })
            .collect();
        if duplicate {
            // Register the first query twice: identical branches must
            // share one fragment yet both queries must see every match.
            specs.push(specs[0].clone());
        }
        check_registry_equivalence_under(
            specs,
            raw,
            seed,
            SelectionStrategy::SkipTillAnyMatch,
        );
    }

    /// The same property under the stricter exact strategies.
    #[test]
    fn registry_matches_independent_engines_strict(
        types in prop::collection::vec(prop::collection::vec(0u32..4, 2..=3), 2..=2),
        raw in prop::collection::vec((0u32..5, 0u8..4, -3i8..4), 10..=35),
        seed in any::<u64>(),
        window in 4u64..12,
        strict in any::<bool>(),
    ) {
        let specs: Vec<PatternSpec> = types
            .iter()
            .map(|ts| PatternSpec {
                is_seq: true,
                elements: ts.iter().map(|&t| (t, 0)).collect(),
                predicates: vec![],
                window,
            })
            .collect();
        let strategy = if strict {
            SelectionStrategy::StrictContiguity
        } else {
            SelectionStrategy::PartitionContiguity
        };
        check_registry_equivalence_under(specs, raw, seed, strategy);
    }
}

/// The patterns for the 32-query acceptance fixture: 8 distinct queries
/// over a NASDAQ-like stream, registered 4 times each.
fn acceptance_pool(catalog: &cep::core::schema::Catalog) -> Vec<cep::core::pattern::Pattern> {
    let specs = [
        "PATTERN SEQ(S0000 a, S0001 b) WHERE a.difference < b.difference WITHIN 4 s",
        "PATTERN SEQ(S0000 a, S0002 b) WHERE a.difference < b.difference WITHIN 4 s",
        "PATTERN SEQ(S0001 a, S0003 b) WHERE a.difference > b.difference WITHIN 3 s",
        "PATTERN SEQ(S0002 a, S0004 b, S0005 c)
         WHERE (a.difference < b.difference AND c.difference > 0) WITHIN 5 s",
        "PATTERN AND(S0003 a, S0006 b) WHERE a.difference < b.difference WITHIN 3 s",
        "PATTERN SEQ(S0004 a, S0007 b) WHERE a.difference <= b.difference WITHIN 4 s",
        "PATTERN SEQ(S0005 a, S0006 b) WHERE a.difference != b.difference WITHIN 2 s",
        "PATTERN SEQ(S0001 a, S0005 b, S0007 c)
         WHERE (a.difference < c.difference) WITHIN 6 s",
    ];
    specs
        .iter()
        .map(|s| parse_pattern(s, catalog).expect("valid acceptance pattern"))
        .collect()
}

/// The headline acceptance check: 32 overlapping queries (8 distinct × 4)
/// in one registry, per-query byte-identical to 32 independent engines,
/// across all three backends — while evaluating each shared fragment
/// once (fragments < queries, sub-linear predicate evaluations).
#[test]
fn registry_32_overlapping_queries_match_independent_engines() {
    let config = StockConfig::nasdaq_like(8, 15_000, 0.5, 42);
    let mut catalog = cep::core::schema::Catalog::new();
    let generated = StockStreamGenerator::generate(&config, &mut catalog).unwrap();
    let pool = acceptance_pool(&catalog);
    let queries: Vec<_> = (0..32).map(|i| pool[i % pool.len()].clone()).collect();

    for backend in [
        Backend::Nfa(OrderAlgorithm::DpLd),
        Backend::Tree(TreeAlgorithm::DpB),
        Backend::Delta,
    ] {
        // The registry: all 32 queries, one fragment per distinct branch.
        let mut registry = cep::registry()
            .backend(backend)
            .stats(&generated)
            .build()
            .unwrap();
        let ids: Vec<QueryId> = queries
            .iter()
            .map(|p| registry.register(p).unwrap())
            .collect();
        assert_eq!(registry.len(), 32);
        assert_eq!(
            registry.fragment_count(),
            pool.len(),
            "{backend:?}: 32 queries over {} distinct patterns must share fragments",
            pool.len()
        );
        let result = registry.run(&generated.stream);
        let metrics = registry.metrics();
        assert_eq!(metrics.registered_queries, 32);
        // 24 of the 32 subscriptions were served by an existing fragment.
        assert_eq!(metrics.shared_fragments, (32 - pool.len()) as u64);

        // The baselines: one independent engine per query.
        let mut independent_predicate_evals = 0u64;
        let mut any_matches = false;
        for (pattern, id) in queries.iter().zip(&ids) {
            let mut engine = cep::engine(pattern)
                .backend(backend)
                .stats(&generated)
                .build()
                .unwrap();
            let r = run_to_completion(engine.as_mut(), &generated.stream, true);
            independent_predicate_evals += r.metrics.predicate_evaluations;
            any_matches |= r.match_count > 0;
            assert_eq!(
                keyed(&result.per_query[id]),
                keyed(&r.matches),
                "{backend:?}: query {id} diverged from its independent engine"
            );
        }
        assert!(any_matches, "{backend:?}: fixture must produce matches");

        // Shared fragments ran once: with 4× duplication the registry
        // does at most half (actually a quarter) of the independent
        // engines' predicate work.
        if independent_predicate_evals > 0 {
            assert!(
                metrics.predicate_evaluations * 2 <= independent_predicate_evals,
                "{backend:?}: registry predicate work must be sub-linear \
                 ({} vs {} independent)",
                metrics.predicate_evaluations,
                independent_predicate_evals
            );
        }
    }
}

/// The set-level plan report surfaces the sharing the acceptance fixture
/// relies on: 32 queries, 8 distinct fragments, sharing ratio 4.
#[test]
fn registry_set_plan_reports_sharing() {
    let config = StockConfig::nasdaq_like(8, 2_000, 0.5, 42);
    let mut catalog = cep::core::schema::Catalog::new();
    let generated = StockStreamGenerator::generate(&config, &mut catalog).unwrap();
    let pool = acceptance_pool(&catalog);
    let mut registry = cep::registry().build().unwrap();
    for i in 0..32 {
        registry.register(&pool[i % pool.len()]).unwrap();
    }
    let report = registry.set_plan();
    assert_eq!(report.queries, 32);
    assert_eq!(report.distinct_fragments, pool.len());
    assert!(
        (report.sharing_ratio() - 4.0).abs() < 1e-9,
        "8 distinct patterns registered 4x each share at ratio 4, got {}",
        report.sharing_ratio()
    );
    let _ = generated; // stream only needed to build the catalog types
}
