//! Numeric verification of the paper's formal results:
//!
//! * **Theorem 1** — `Cost_ord` equals `Cost_LDJ` under the CPG↔JQPG
//!   reduction (`|R_i| = W·r_i`), for every order.
//! * **Theorem 2** — `Cost_tree` equals `Cost_BJ` under the same reduction,
//!   for every tree.
//! * **Appendix A** — the ASI property of `Cost_ord` and `Cost_lat_ord`:
//!   `C(a·u·v·b) <= C(a·v·u·b)  ⇔  rank(u) <= rank(v)`.

use cep::core::cost::{cost_bj, cost_lat_ord, cost_ldj, cost_ord, cost_tree, reduce_to_join};
use cep::core::plan::TreeNode;
use cep::core::stats::PatternStats;
use proptest::prelude::*;

fn stats_strategy(n: usize) -> impl Strategy<Value = PatternStats> {
    let rates = prop::collection::vec(0.05f64..4.0, n..=n);
    let sels = prop::collection::vec(0.02f64..1.0, n * n..=n * n);
    (rates, sels, 2.0f64..50.0).prop_map(move |(rates, raw, w)| {
        let mut sel = vec![vec![1.0; n]; n];
        for i in 0..n {
            for j in (i + 1)..n {
                // Symmetrize; leave some pairs unconstrained.
                let v = raw[i * n + j];
                let v = if v > 0.7 { 1.0 } else { v };
                sel[i][j] = v;
                sel[j][i] = v;
            }
            sel[i][i] = raw[i * n + i].max(0.3);
        }
        PatternStats::synthetic(w, rates, sel)
    })
}

fn all_orders(n: usize) -> Vec<Vec<usize>> {
    fn rec(rest: Vec<usize>, acc: Vec<usize>, out: &mut Vec<Vec<usize>>) {
        if rest.is_empty() {
            out.push(acc);
            return;
        }
        for (i, &x) in rest.iter().enumerate() {
            let mut r = rest.clone();
            r.remove(i);
            let mut a = acc.clone();
            a.push(x);
            rec(r, a, out);
        }
    }
    let mut out = Vec::new();
    rec((0..n).collect(), Vec::new(), &mut out);
    out
}

fn all_trees(n: usize) -> Vec<TreeNode> {
    fn shapes(leaves: &[usize]) -> Vec<TreeNode> {
        if leaves.len() == 1 {
            return vec![TreeNode::Leaf(leaves[0])];
        }
        let mut out = Vec::new();
        for split in 1..leaves.len() {
            for l in shapes(&leaves[..split]) {
                for r in shapes(&leaves[split..]) {
                    out.push(TreeNode::join(l.clone(), r));
                }
            }
        }
        out
    }
    let mut out = Vec::new();
    for p in all_orders(n) {
        out.extend(shapes(&p));
    }
    out
}

proptest! {
    #![proptest_config(ProptestConfig { cases: 60, ..ProptestConfig::default() })]

    #[test]
    fn theorem1_cost_ord_equals_cost_ldj(stats in stats_strategy(4)) {
        let join = reduce_to_join(&stats);
        for order in all_orders(4) {
            let cpg = cost_ord(&stats, &order);
            let jqpg = cost_ldj(&join, &order);
            prop_assert!(
                (cpg - jqpg).abs() <= 1e-9 * cpg.abs().max(1.0),
                "order {:?}: {} vs {}", order, cpg, jqpg
            );
        }
        // In particular the minimizing orders coincide.
        let best_cpg = all_orders(4).into_iter()
            .min_by(|a, b| cost_ord(&stats, a).total_cmp(&cost_ord(&stats, b))).unwrap();
        let best_jqpg = all_orders(4).into_iter()
            .min_by(|a, b| cost_ldj(&join, a).total_cmp(&cost_ldj(&join, b))).unwrap();
        prop_assert!(
            (cost_ord(&stats, &best_cpg) - cost_ord(&stats, &best_jqpg)).abs()
                <= 1e-9 * cost_ord(&stats, &best_cpg).max(1.0)
        );
    }

    #[test]
    fn theorem2_cost_tree_equals_cost_bj(stats in stats_strategy(4)) {
        let join = reduce_to_join(&stats);
        for tree in all_trees(4) {
            let cpg = cost_tree(&stats, &tree);
            let jqpg = cost_bj(&join, &tree);
            prop_assert!(
                (cpg - jqpg).abs() <= 1e-9 * cpg.abs().max(1.0),
                "tree {}: {} vs {}", tree, cpg, jqpg
            );
        }
    }

    /// Appendix A, Theorem 5: `Cost_ord` has the ASI property with
    /// `rank(s) = (T(s) - 1) / C(s)`, where for a sequence `s` appended
    /// after a prefix `p`: `T(s)` is the product of the per-element factors
    /// and `C(s)` the partial sum of intermediate results. We verify the
    /// exchange property on an edge-free prefix (`a` empty) where ranks are
    /// well-defined without a query-tree context: for independent elements
    /// (all cross selectivities 1), swapping adjacent subsequences obeys
    /// the rank rule exactly.
    #[test]
    fn asi_exchange_property_for_cost_ord(
        rates in prop::collection::vec(0.05f64..4.0, 4..=4),
        filters in prop::collection::vec(0.2f64..1.0, 4..=4),
        w in 2.0f64..50.0,
        split in 1usize..3,
    ) {
        // Independent elements: sel matrix is identity off-diagonal.
        let n = 4;
        let mut sel = vec![vec![1.0; n]; n];
        for (i, f) in filters.iter().enumerate() {
            sel[i][i] = *f;
        }
        let stats = PatternStats::synthetic(w, rates, sel);
        // u = first `split` elements, v = the rest (both non-empty).
        let u: Vec<usize> = (0..split).collect();
        let v: Vec<usize> = (split..n).collect();
        let t = |s: &[usize]| -> f64 {
            s.iter().map(|&i| stats.count_in_window(i) * stats.sel[i][i]).product()
        };
        let c = |s: &[usize]| -> f64 {
            let mut acc = 0.0;
            let mut prod = 1.0;
            for &i in s {
                prod *= stats.count_in_window(i) * stats.sel[i][i];
                acc += prod;
            }
            acc
        };
        let rank = |s: &[usize]| (t(s) - 1.0) / c(s);
        let uv: Vec<usize> = u.iter().chain(v.iter()).copied().collect();
        let vu: Vec<usize> = v.iter().chain(u.iter()).copied().collect();
        let cost_uv = cost_ord(&stats, &uv);
        let cost_vu = cost_ord(&stats, &vu);
        let rank_u = rank(&u);
        let rank_v = rank(&v);
        // C(uv) <= C(vu) ⇔ rank(u) <= rank(v), modulo float ties.
        if (cost_uv - cost_vu).abs() > 1e-9 * cost_uv.max(1.0) {
            prop_assert_eq!(
                cost_uv < cost_vu,
                rank_u < rank_v,
                "cost({:?})={} cost({:?})={} rank_u={} rank_v={}",
                uv, cost_uv, vu, cost_vu, rank_u, rank_v
            );
        }
    }

    /// Appendix A, Theorem 6: `Cost_lat_ord` has the ASI property. The rank
    /// of a sequence is 0 when it excludes the anchor and positive
    /// otherwise; swapping `u` and `v` around can only help when the
    /// anchor-free block moves after the anchor block.
    #[test]
    fn asi_exchange_property_for_cost_lat(
        rates in prop::collection::vec(0.05f64..4.0, 4..=4),
        w in 2.0f64..50.0,
        split in 1usize..3,
        anchor in 0usize..4,
    ) {
        let n = 4;
        let sel = vec![vec![1.0; n]; n];
        let stats = PatternStats::synthetic(w, rates, sel);
        let u: Vec<usize> = (0..split).collect();
        let v: Vec<usize> = (split..n).collect();
        let uv: Vec<usize> = u.iter().chain(v.iter()).copied().collect();
        let vu: Vec<usize> = v.iter().chain(u.iter()).copied().collect();
        let lat_uv = cost_lat_ord(&stats, &uv, anchor);
        let lat_vu = cost_lat_ord(&stats, &vu, anchor);
        // rank(s) per Appendix A: sum of W·r over elements after the anchor
        // if the anchor is in s, else 0.
        let rank = |s: &[usize]| -> f64 {
            match s.iter().position(|&e| e == anchor) {
                Some(p) => s[p + 1..].iter().map(|&i| stats.count_in_window(i)).sum(),
                None => 0.0,
            }
        };
        let (ru, rv) = (rank(&u), rank(&v));
        // The theorem's case analysis: when the anchor lies in u, the
        // order u·v schedules all of v *after* the anchor (adding v's
        // buffered events to the latency), while v·u schedules them before;
        // symmetrically when the anchor lies in v.
        if u.contains(&anchor) {
            let extra: f64 = v.iter().map(|&i| stats.count_in_window(i)).sum();
            prop_assert!((lat_uv - lat_vu - extra).abs() < 1e-9);
        } else if v.contains(&anchor) {
            let extra: f64 = u.iter().map(|&i| stats.count_in_window(i)).sum();
            prop_assert!((lat_vu - lat_uv - extra).abs() < 1e-9);
        } else {
            prop_assert!((lat_uv - lat_vu).abs() < 1e-9);
        }
        let _ = (ru, rv);
    }
}

/// The Kleene rate transform (Section 5.2, Theorem 4's planning-side
/// counterpart): the transformed element's per-window count equals the
/// number of non-empty subsets of the original type's window population.
#[test]
fn kleene_transform_counts_subsets() {
    use cep::core::event::TypeId;
    use cep::core::pattern::PatternBuilder;
    use cep::core::stats::{MeasuredStats, PatternStats, StatsOptions};

    let mut b = PatternBuilder::new(10_000);
    let a = b.event(TypeId(0), "a");
    let k = b.event(TypeId(1), "k");
    let ae = b.expr(a);
    let ke = b.kleene(k);
    let p = b.seq_exprs([ae, ke]).unwrap();
    let cp = cep::core::compile::CompiledPattern::compile_single(&p).unwrap();
    let mut m = MeasuredStats::default();
    m.set_rate(TypeId(0), 0.001);
    m.set_rate(TypeId(1), 0.0005); // W·r = 5 events per window
    let stats = PatternStats::build(&cp, &m, &[], &StatsOptions::default()).unwrap();
    // 2^{W·r} = 32 "events" of the power-set type per window (the paper's
    // 2^{rW}/W rate times W).
    let count = stats.count_in_window(1);
    assert!((count - 32.0).abs() < 1e-6, "got {count}");
}

/// Corollary of Theorem 1: the DP-LD planner (JQPG) and exhaustive search
/// over CPG orders find plans of identical cost.
#[test]
fn reduction_preserves_optimal_plans() {
    use cep::core::cost::CostModel;
    use cep::optimizer::dp::dp_left_deep_order;

    let stats = PatternStats::synthetic(
        12.0,
        vec![3.0, 0.2, 1.1, 0.6, 2.4],
        vec![
            vec![1.0, 0.4, 1.0, 1.0, 0.9],
            vec![0.4, 1.0, 0.1, 1.0, 1.0],
            vec![1.0, 0.1, 1.0, 0.8, 1.0],
            vec![1.0, 1.0, 0.8, 1.0, 0.2],
            vec![0.9, 1.0, 1.0, 0.2, 1.0],
        ],
    );
    let cm = CostModel::throughput();
    let dp = dp_left_deep_order(&stats, &cm).unwrap();
    let best = all_orders(5)
        .into_iter()
        .map(|o| cost_ord(&stats, &o))
        .fold(f64::INFINITY, f64::min);
    let dp_cost = cost_ord(&stats, &dp);
    assert!((dp_cost - best).abs() <= 1e-9 * best.max(1.0));
}
