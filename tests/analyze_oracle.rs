//! Differential validation of the static analyzer against the naive
//! oracle engine:
//!
//! * **A001 soundness** — every pattern the analyzer flags
//!   unsatisfiable produces zero oracle matches on ≥ 64 randomized
//!   streams (deterministic fixtures) and on every stream of the
//!   property sweep.
//! * **A006/A007 soundness** — removing the predicates the analyzer
//!   calls redundant leaves the oracle's match-signature set
//!   byte-identical.
//! * **Total analysis** — clean-flagged random queries analyze without
//!   panics under all four selection strategies.

use cep::analyze::{analyze_branch, analyze_pattern, Code, Severity};
use cep::core::compile::CompiledPattern;
use cep::core::engine::{run_to_completion, EngineConfig};
use cep::core::event::{Event, EventRef, TypeId};
use cep::core::matches::Match;
use cep::core::naive::NaiveEngine;
use cep::core::pattern::{Pattern, PatternBuilder};
use cep::core::predicate::{CmpOp, Operand, Predicate};
use cep::core::schema::{Catalog, ValueKind};
use cep::core::selection::SelectionStrategy;
use cep::core::stream::StreamBuilder;
use cep::core::value::Value;
use proptest::prelude::*;

const N_TYPES: u32 = 5;
const ALL_STRATEGIES: [SelectionStrategy; 4] = [
    SelectionStrategy::SkipTillAnyMatch,
    SelectionStrategy::SkipTillNextMatch,
    SelectionStrategy::StrictContiguity,
    SelectionStrategy::PartitionContiguity,
];

/// Catalog matching the generated streams: types `T0..T4`, one `Int`
/// attribute `x` each.
fn catalog() -> Catalog {
    let mut cat = Catalog::new();
    for t in 0..N_TYPES {
        cat.add_type(&format!("T{t}"), &[("x", ValueKind::Int)])
            .unwrap();
    }
    cat
}

fn lcg(state: &mut u64) -> u64 {
    *state = state
        .wrapping_mul(6364136223846793005)
        .wrapping_add(1442695040888963407);
    *state >> 33
}

/// A deterministic random stream: ~30 events over the catalog types with
/// values in the range the generated predicates constrain (-3..=3).
fn seeded_stream(seed: u64) -> Vec<EventRef> {
    let mut s = seed.wrapping_add(0x9E37_79B9_7F4A_7C15) | 1;
    let mut sb = StreamBuilder::new();
    let mut ts = 0u64;
    let len = 24 + (lcg(&mut s) % 12);
    for _ in 0..len {
        ts += lcg(&mut s) % 4;
        let tid = TypeId((lcg(&mut s) % N_TYPES as u64) as u32);
        let x = (lcg(&mut s) % 7) as i64 - 3;
        sb.push(Event::new(tid, ts, vec![Value::Int(x)]));
    }
    sb.build()
}

fn oracle_signatures(pattern: &Pattern, stream: &Vec<EventRef>) -> Vec<Vec<(usize, Vec<u64>)>> {
    let branches = CompiledPattern::compile(pattern).expect("compilable pattern");
    let cfg = EngineConfig {
        max_kleene_events: 4,
        ..Default::default()
    };
    let mut sigs: Vec<_> = Vec::new();
    for cp in branches {
        let mut oracle = NaiveEngine::new(cp, cfg.clone());
        let matches: Vec<Match> = run_to_completion(&mut oracle, stream, true).matches;
        sigs.extend(matches.iter().map(|m| m.signature()));
    }
    sigs.sort();
    sigs.dedup();
    sigs
}

/// Asserts the analyzer's fatal-unsat verdict against `streams` seeded
/// oracle runs: zero matches on every one of them.
fn assert_unsat_is_sound(pattern: &Pattern, streams: u64, label: &str) {
    for seed in 0..streams {
        let stream = seeded_stream(seed);
        let sigs = oracle_signatures(pattern, &stream);
        assert!(
            sigs.is_empty(),
            "{label}: analyzer says unsatisfiable, oracle matched on stream seed {seed}"
        );
    }
}

fn has_fatal_a001(pattern: &Pattern, cat: &Catalog) -> bool {
    analyze_pattern(pattern, cat)
        .expect("compilable pattern")
        .iter()
        .any(|d| d.code == Code::A001 && d.severity == Severity::Error)
}

// ---------------------------------------------------------------------
// Deterministic A001 fixtures: each checked against 64 seeded streams,
// the acceptance bar for the analyzer's headline claim.
// ---------------------------------------------------------------------

/// `SEQ(T0 a, T1 b, T2 c)` with the given predicates; panics if the
/// analyzer does NOT flag it fatally unsatisfiable.
fn unsat_fixture(label: &str, build: impl FnOnce(&mut PatternBuilder, [usize; 3])) {
    let cat = catalog();
    let mut b = PatternBuilder::new(10);
    let e0 = b.event(TypeId(0), "a");
    let e1 = b.event(TypeId(1), "b");
    let e2 = b.event(TypeId(2), "c");
    build(&mut b, [e0.pos(), e1.pos(), e2.pos()]);
    let pattern = b.seq([e0, e1, e2]).unwrap();
    assert!(
        has_fatal_a001(&pattern, &cat),
        "{label}: fixture should be flagged A001"
    );
    assert_unsat_is_sound(&pattern, 64, label);
}

fn attr(position: usize, a: usize) -> Operand {
    Operand::Attr { position, attr: a }
}

fn int(v: i64) -> Operand {
    Operand::Const(Value::Int(v))
}

fn pred(left: Operand, op: CmpOp, right: Operand) -> Predicate {
    Predicate { left, op, right }
}

#[test]
fn unsat_contradictory_bounds_never_match() {
    unsat_fixture("contradictory bounds", |b, p| {
        b.predicate(pred(attr(p[0], 0), CmpOp::Gt, int(1)));
        b.predicate(pred(attr(p[0], 0), CmpOp::Lt, int(-1)));
    });
}

#[test]
fn unsat_equality_chain_never_matches() {
    unsat_fixture("equality chain to distinct constants", |b, p| {
        b.predicate(pred(attr(p[0], 0), CmpOp::Eq, attr(p[1], 0)));
        b.predicate(pred(attr(p[1], 0), CmpOp::Eq, attr(p[2], 0)));
        b.predicate(pred(attr(p[0], 0), CmpOp::Eq, int(0)));
        b.predicate(pred(attr(p[2], 0), CmpOp::Eq, int(1)));
    });
}

#[test]
fn unsat_strict_cycle_never_matches() {
    unsat_fixture("strict order cycle", |b, p| {
        b.predicate(pred(attr(p[0], 0), CmpOp::Lt, attr(p[1], 0)));
        b.predicate(pred(attr(p[1], 0), CmpOp::Lt, attr(p[2], 0)));
        b.predicate(pred(attr(p[2], 0), CmpOp::Lt, attr(p[0], 0)));
    });
}

#[test]
fn unsat_ts_against_seq_order_never_matches() {
    unsat_fixture("timestamp order against SEQ", |b, p| {
        b.predicate(pred(
            Operand::Ts { position: p[2] },
            CmpOp::Lt,
            Operand::Ts { position: p[0] },
        ));
    });
}

#[test]
fn unsat_window_gap_never_matches() {
    // Window is 10 ms; the two pins are 1000 ms apart.
    unsat_fixture("window gap", |b, p| {
        b.predicate(pred(Operand::Ts { position: p[0] }, CmpOp::Ge, int(2_000)));
        b.predicate(pred(Operand::Ts { position: p[2] }, CmpOp::Le, int(1_000)));
    });
}

#[test]
fn unsat_kleene_filter_contradiction_never_matches() {
    // The contradiction sits on a Kleene element: every member must
    // satisfy both filters, so no member can exist.
    let cat = catalog();
    let mut b = PatternBuilder::new(10);
    let e0 = b.event(TypeId(0), "a");
    let ek = b.event(TypeId(1), "k");
    b.predicate(pred(attr(ek.pos(), 0), CmpOp::Gt, int(2)));
    b.predicate(pred(attr(ek.pos(), 0), CmpOp::Lt, int(0)));
    let exprs = vec![b.expr(e0), b.kleene(ek)];
    let pattern = b.seq_exprs(exprs).unwrap();
    assert!(has_fatal_a001(&pattern, &cat), "kleene contradiction");
    assert_unsat_is_sound(&pattern, 64, "kleene contradiction");
}

// ---------------------------------------------------------------------
// Redundancy soundness fixture: pruning must not change the match set.
// ---------------------------------------------------------------------

#[test]
fn pruning_redundant_predicates_preserves_matches() {
    let cat = catalog();
    let mut b = PatternBuilder::new(10);
    let e0 = b.event(TypeId(0), "a");
    let e1 = b.event(TypeId(1), "b");
    let e2 = b.event(TypeId(2), "c");
    // a.x < b.x, b.x < c.x, and the implied a.x < c.x (redundant), plus
    // a constant-only tautology (skipped by engines).
    b.predicate(pred(attr(e0.pos(), 0), CmpOp::Lt, attr(e1.pos(), 0)));
    b.predicate(pred(attr(e1.pos(), 0), CmpOp::Lt, attr(e2.pos(), 0)));
    b.predicate(pred(attr(e0.pos(), 0), CmpOp::Lt, attr(e2.pos(), 0)));
    b.predicate(pred(int(1), CmpOp::Le, int(2)));
    let pattern = b.seq([e0, e1, e2]).unwrap();
    let report = analyze_pattern(&pattern, &cat).unwrap();
    assert!(report.has_code(Code::A006), "{report}");
    assert!(report.has_code(Code::A007), "{report}");
    assert_pruning_sound(&pattern, 64);
}

/// Runs the analyzer on the (single-branch) pattern, prunes the
/// predicates it calls removable, and asserts signature-identical oracle
/// output on `streams` seeded streams. Returns how many predicates were
/// pruned.
fn assert_pruning_sound(pattern: &Pattern, streams: u64) -> usize {
    let cp = CompiledPattern::compile_single(pattern).expect("single branch");
    assert_eq!(
        cp.predicates, pattern.predicates,
        "single-branch compilation must preserve predicate order"
    );
    let analysis = analyze_branch(&cp);
    assert!(
        analysis.unsat.is_none(),
        "pruning only applies to satisfiable queries"
    );
    if analysis.redundant.is_empty() {
        return 0;
    }
    let mut pruned = pattern.clone();
    let mut keep = 0usize;
    pruned.predicates = pattern
        .predicates
        .iter()
        .enumerate()
        .filter(|(i, _)| !analysis.redundant.contains(i))
        .map(|(_, p)| {
            keep += 1;
            p.clone()
        })
        .collect();
    assert_eq!(keep + analysis.redundant.len(), pattern.predicates.len());
    for seed in 0..streams {
        let stream = seeded_stream(seed);
        assert_eq!(
            oracle_signatures(pattern, &stream),
            oracle_signatures(&pruned, &stream),
            "pruning {:?} changed the match set on stream seed {seed}",
            analysis.redundant
        );
    }
    analysis.redundant.len()
}

// ---------------------------------------------------------------------
// Property sweep: random queries with contradiction-biased predicates.
// ---------------------------------------------------------------------

/// Random query description. `twist` seeds likely-contradictory extras:
/// 0 = none, 1 = opposed constant bounds, 2 = equality chain to two
/// constants, 3 = strict predicate cycle.
#[derive(Debug, Clone)]
struct QuerySpec {
    is_seq: bool,
    types: Vec<u32>,
    kleene_at: Option<usize>,
    pair_preds: Vec<(usize, usize, u8)>,
    unary_preds: Vec<(usize, u8, i8)>,
    twist: u8,
    twist_at: usize,
    window: u64,
}

fn op_of(code: u8) -> CmpOp {
    match code % 6 {
        0 => CmpOp::Lt,
        1 => CmpOp::Le,
        2 => CmpOp::Eq,
        3 => CmpOp::Ne,
        4 => CmpOp::Ge,
        _ => CmpOp::Gt,
    }
}

fn build_query(spec: &QuerySpec) -> Option<Pattern> {
    let mut b = PatternBuilder::new(spec.window);
    let evs: Vec<_> = spec
        .types
        .iter()
        .enumerate()
        .map(|(i, t)| b.event(TypeId(t % N_TYPES), &format!("e{i}")))
        .collect();
    let n = evs.len();
    for &(i, j, opc) in &spec.pair_preds {
        let (i, j) = (i % n, j % n);
        if i != j {
            b.predicate(pred(
                attr(evs[i].pos(), 0),
                op_of(opc),
                attr(evs[j].pos(), 0),
            ));
        }
    }
    for &(i, opc, c) in &spec.unary_preds {
        b.predicate(pred(attr(evs[i % n].pos(), 0), op_of(opc), int(c as i64)));
    }
    let t = spec.twist_at % n;
    match spec.twist {
        1 => {
            b.predicate(pred(attr(evs[t].pos(), 0), CmpOp::Gt, int(1)));
            b.predicate(pred(attr(evs[t].pos(), 0), CmpOp::Lt, int(-1)));
        }
        2 => {
            let u = (t + 1) % n;
            b.predicate(pred(
                attr(evs[t].pos(), 0),
                CmpOp::Eq,
                attr(evs[u].pos(), 0),
            ));
            b.predicate(pred(attr(evs[t].pos(), 0), CmpOp::Eq, int(0)));
            b.predicate(pred(attr(evs[u].pos(), 0), CmpOp::Eq, int(1)));
        }
        3 => {
            for k in 0..n {
                b.predicate(pred(
                    attr(evs[k].pos(), 0),
                    CmpOp::Lt,
                    attr(evs[(k + 1) % n].pos(), 0),
                ));
            }
        }
        _ => {}
    }
    let exprs: Vec<_> = evs
        .iter()
        .enumerate()
        .map(|(i, &e)| {
            if spec.kleene_at == Some(i) {
                b.kleene(e)
            } else {
                b.expr(e)
            }
        })
        .collect();
    if spec.is_seq {
        b.seq_exprs(exprs).ok()
    } else {
        b.and_exprs(exprs).ok()
    }
}

proptest! {
    #![proptest_config(ProptestConfig {
        cases: 96,
        max_shrink_iters: 200,
    })]

    /// The sweep itself: analyze every drawn query; a fatal A001 verdict
    /// must mean zero oracle matches (checked on 8 seeded streams per
    /// case — the 64-stream bar is covered by the deterministic
    /// fixtures); satisfiable verdicts must survive pruning; and clean
    /// queries must analyze panic-free under all four strategies.
    #[test]
    fn analyzer_verdicts_agree_with_oracle(
        is_seq in any::<bool>(),
        types in prop::collection::vec(0u32..N_TYPES, 2..=4),
        with_kleene in any::<bool>(),
        kleene_at in 0usize..4,
        pair_preds in prop::collection::vec((0usize..4, 0usize..4, 0u8..12), 0..=3),
        unary_preds in prop::collection::vec((0usize..4, 0u8..12, -3i8..4), 0..=3),
        twist in 0u8..4,
        twist_at in 0usize..4,
        window in 4u64..12,
    ) {
        let spec = QuerySpec {
            is_seq,
            kleene_at: with_kleene.then(|| kleene_at % types.len()),
            types,
            pair_preds,
            unary_preds,
            twist,
            twist_at,
            window,
        };
        let Some(pattern) = build_query(&spec) else { return Ok(()) };
        let cat = catalog();
        let report = analyze_pattern(&pattern, &cat).expect("generated queries compile");
        prop_assert!(!report.has_code(Code::A002), "catalog covers all types: {}", report);
        prop_assert!(!report.has_code(Code::A003), "attr 0 always exists: {}", report);

        let fatal_unsat = report
            .iter()
            .any(|d| d.code == Code::A001 && d.severity == Severity::Error);
        if fatal_unsat {
            assert_unsat_is_sound(&pattern, 8, "property sweep");
        } else {
            assert_pruning_sound(&pattern, 4);
        }

        // Total analysis under every selection strategy: the verdict may
        // differ only in diagnostics, never in a panic or compile error.
        for strategy in ALL_STRATEGIES {
            let mut variant = pattern.clone();
            variant.strategy = strategy;
            let _ = analyze_pattern(&variant, &cat).expect("strategy variant compiles");
        }
    }
}
