//! The paper's Section 7.2 workload in miniature: relative-change patterns
//! over stock price updates, comparing every plan-generation algorithm on
//! the same conjunction pattern (the MSFT/GOOG/INTC example).
//!
//! Run with `cargo run --release --example stock_correlation`.

use cep::core::compile::CompiledPattern;
use cep::core::engine::run_to_completion;
use cep::prelude::*;
use cep::streamgen::{analytic_measured_stats, analytic_selectivities, SymbolSpec};

fn main() {
    // Three named stocks with distinct rates and drifts.
    let config = StockConfig {
        symbols: vec![
            SymbolSpec {
                name: "MSFT".into(),
                rate_per_sec: 8.0,
                start_price: 410.0,
                drift: 0.05,
                volatility: 0.8,
            },
            SymbolSpec {
                name: "GOOG".into(),
                rate_per_sec: 3.0,
                start_price: 175.0,
                drift: 0.4,
                volatility: 0.6,
            },
            SymbolSpec {
                name: "INTC".into(),
                rate_per_sec: 0.5,
                start_price: 31.0,
                drift: -0.2,
                volatility: 0.5,
            },
        ],
        duration_ms: 120_000,
        seed: 2024,
    };
    let mut catalog = cep::core::schema::Catalog::new();
    let generated = StockStreamGenerator::generate(&config, &mut catalog).unwrap();
    println!("stream: {} price updates", generated.stream.len());

    // The paper's example conjunction (Section 7.2): examine INTC whenever
    // GOOG's price change exceeds MSFT's, within a 5-second window (the
    // extra filter on INTC keeps the demo's match count readable).
    let pattern = parse_pattern(
        "PATTERN AND(MSFT m, GOOG g, INTC i)
         WHERE (m.difference < g.difference AND i.difference > 0.3)
         WITHIN 5 s",
        &catalog,
    )
    .unwrap();
    println!("pattern: {pattern}\n");

    // Show what each algorithm plans and how the plans perform.
    let planner = Planner::default();
    let cp = CompiledPattern::compile_single(&pattern).unwrap();
    let measured = analytic_measured_stats(&generated);
    let sels = analytic_selectivities(&cp, &generated);
    let stats = planner.stats_for(&cp, &measured, &sels).unwrap();
    let cm = planner.cost_model(&cp);

    println!("order-based algorithms (lazy NFA):");
    for algo in [
        OrderAlgorithm::Trivial,
        OrderAlgorithm::EFreq,
        OrderAlgorithm::Greedy,
        OrderAlgorithm::IIGreedy,
        OrderAlgorithm::DpLd,
        OrderAlgorithm::Kbz,
    ] {
        let plan = planner.plan_order(&cp, &stats, algo).unwrap();
        let cost = cm.order_plan_cost(&stats, &plan);
        let mut engine = cep::engine(&pattern)
            .backend(Backend::Nfa(algo))
            .stats(&generated)
            .build()
            .unwrap();
        let r = run_to_completion(engine.as_mut(), &generated.stream, false);
        println!(
            "  {algo:>10} plan {plan:<22} cost {cost:>10.1}  -> {:>7.0} events/s, {} matches",
            r.metrics.throughput_eps(),
            r.match_count
        );
    }

    println!("tree-based algorithms (ZStream-style):");
    for algo in [
        TreeAlgorithm::ZStream,
        TreeAlgorithm::ZStreamOrd,
        TreeAlgorithm::DpB,
    ] {
        let plan = planner.plan_tree(&cp, &stats, algo).unwrap();
        let cost = cm.tree_plan_cost(&stats, &plan);
        let mut engine = cep::engine(&pattern)
            .backend(Backend::Tree(algo))
            .stats(&generated)
            .build()
            .unwrap();
        let r = run_to_completion(engine.as_mut(), &generated.stream, false);
        println!(
            "  {algo:>11} plan {plan:<22} cost {cost:>10.1}  -> {:>7.0} events/s, {} matches",
            r.metrics.throughput_eps(),
            r.match_count
        );
    }
}
