//! Cross-partition fraud detection: the correlation attribute is **not**
//! the partition attribute, so split-only routing cannot shard this query
//! — replicate-join can.
//!
//! The stream is partitioned by *terminal* (the channel an event arrives
//! on), but fraud correlates by *account*: after a high-severity fraud
//! bulletin (a rare, account-less broadcast event), a card swipe followed
//! by a large withdrawal on the same account — typically through two
//! different terminals — must alert within the window.
//!
//! A `QueryPartitioner` classifies the event types from the query's
//! equality predicates and the measured rates: `CardSwipe` and
//! `Withdrawal` are key-linked on `account` (partitioned — the high-rate
//! side scales across shards), while `Bulletin` has no key and is
//! replicated to every worker. The sharded run is then byte-identical to
//! the single-threaded engine for any shard count, and the old
//! silent-wrong-answer policies are *rejected* with a typed error.
//!
//! Run with `cargo run --release --example cross_partition_fraud [-- --shards N]`.

use cep::core::compile::CompiledPattern;
use cep::core::engine::{run_to_completion, Engine, EngineConfig};
use cep::core::event::Event;
use cep::core::schema::{Catalog, ValueKind};
use cep::core::stats::MeasuredStats;
use cep::core::stream::StreamBuilder;
use cep::core::value::Value;
use cep::prelude::*;
use cep::shard::{canonical_sort, ShardRouter};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use std::sync::Arc;

fn main() {
    let shards_flag = parse_shards_flag();

    let mut catalog = Catalog::new();
    let swipe = catalog
        .add_type(
            "CardSwipe",
            &[("account", ValueKind::Int), ("amount", ValueKind::Float)],
        )
        .unwrap();
    let withdraw = catalog
        .add_type(
            "Withdrawal",
            &[("account", ValueKind::Int), ("amount", ValueKind::Float)],
        )
        .unwrap();
    let bulletin = catalog
        .add_type("Bulletin", &[("level", ValueKind::Int)])
        .unwrap();

    // Swipe and withdrawal correlate on `account`; the bulletin is global
    // (no account at all) — the unkeyed side replicate-join broadcasts.
    let pattern = parse_pattern(
        "PATTERN SEQ(Bulletin b, CardSwipe s, Withdrawal w)
         WHERE (s.account == w.account AND b.level >= 3 AND w.amount >= 500)
         WITHIN 60 s",
        &catalog,
    )
    .unwrap();
    println!("pattern: {pattern}\n");

    // Activity on 48 accounts spread over 16 terminals: every event lands
    // on a random terminal, so one account's events straddle partitions —
    // the stream partition (terminal) is NOT the correlation key (account).
    let mut rng = StdRng::seed_from_u64(17);
    let terminals = 16u32;
    let mut timeline: Vec<(u64, u32, Event)> = Vec::new();
    let mut ts = 0u64;
    for burst in 0..48i64 {
        let account = burst % 24;
        ts += rng.gen_range(500..3_000);
        // A bulletin every few bursts; only high-severity ones arm alerts.
        if burst % 5 == 0 {
            let level = if burst % 10 == 0 { 4 } else { 1 };
            timeline.push((
                ts,
                rng.gen_range(0..terminals),
                Event::new(bulletin, ts, vec![Value::Int(level)]),
            ));
        }
        ts += rng.gen_range(200..2_000);
        timeline.push((
            ts,
            rng.gen_range(0..terminals),
            Event::new(
                swipe,
                ts,
                vec![Value::Int(account), Value::Float(rng.gen_range(5.0..80.0))],
            ),
        ));
        ts += rng.gen_range(200..2_000);
        let amount = if burst % 3 == 0 { 900.0 } else { 40.0 };
        timeline.push((
            ts,
            rng.gen_range(0..terminals),
            Event::new(
                withdraw,
                ts,
                vec![Value::Int(account), Value::Float(amount)],
            ),
        ));
    }
    let mut sb = StreamBuilder::new();
    for (_, terminal, event) in timeline {
        sb.push_partitioned(event, terminal);
    }
    let stream = sb.build();
    println!(
        "transaction stream: {} events over {terminals} terminals \
         (partition = terminal, correlation = account)\n",
        stream.len()
    );

    let cp = CompiledPattern::compile_single(&pattern).unwrap();
    let branches = std::slice::from_ref(&cp);
    let factory = {
        let cp = cp.clone();
        move || {
            Box::new(NfaEngine::with_trivial_plan(
                cp.clone(),
                EngineConfig::default(),
            )) as Box<dyn Engine>
        }
    };

    // The guard rail first: the split-only policies PR 2 shipped are now
    // *rejected* for this query instead of silently losing matches.
    for policy in [RoutingPolicy::HashAttr(0), RoutingPolicy::Partition] {
        let err = ShardRouter::for_query(4, policy.clone(), branches)
            .expect_err("split-only routing must be rejected for cross-key queries");
        println!("{policy} rejected:\n  {err}\n");
    }

    // Replicate-join: partitioned/replicated classification from the
    // query's equality predicates plus measured rates.
    let spec =
        QueryPartitioner::analyze_measured(branches, &MeasuredStats::measure(&stream)).unwrap();
    println!("partition spec: {spec}");
    let policy = RoutingPolicy::ReplicateJoin(Arc::new(spec));

    // Single-threaded ground truth, in the runtime's canonical merge order.
    let mut engine = (factory)();
    let mut baseline = run_to_completion(engine.as_mut(), &stream, true);
    canonical_sort(&mut baseline.matches);
    println!(
        "single-threaded baseline: {} alerts ({:.0} events/s)\n",
        baseline.match_count,
        baseline.metrics.throughput_eps()
    );

    let sweep: Vec<usize> = match shards_flag {
        Some(n) => vec![n],
        None => vec![1, 2, 4, 8],
    };
    for &shards in &sweep {
        let r = ShardedRuntime::with_shards(shards)
            .run_query(&factory, &stream, policy.clone(), branches, true)
            .expect("replicate-join policy is sound for this query");
        println!(
            "--shards {shards}: {} alerts ({:.0} events/s; +{} replicated \
             deliveries, {} duplicates suppressed)",
            r.match_count,
            r.metrics.throughput_eps(),
            r.metrics.replicated_events,
            r.metrics.dedup_hits,
        );
        assert_eq!(
            r.matches, baseline.matches,
            "replicate-join alerts must be identical to the single-threaded run"
        );
    }
    assert!(baseline.match_count >= 1, "the fraud shape must alert");
    println!(
        "\nall shard counts agree with the single-threaded engine: \
         {} alerts, byte-identical match vectors",
        baseline.match_count
    );
    for m in baseline.matches.iter().take(3) {
        let account = m
            .bindings
            .last()
            .and_then(|(_, b)| b.events().next())
            .and_then(|e| e.attr(0).cloned());
        println!("  e.g. alert on account {:?}: {m}", account.unwrap());
    }
}

fn parse_shards_flag() -> Option<usize> {
    let args: Vec<String> = std::env::args().skip(1).collect();
    match args.iter().position(|a| a == "--shards") {
        Some(i) => match args.get(i + 1).and_then(|s| s.parse().ok()) {
            Some(n) if n >= 1 => Some(n),
            _ => {
                eprintln!("usage: cross_partition_fraud [--shards N]");
                std::process::exit(2);
            }
        },
        None => None,
    }
}
