//! Adaptivity sketch (Section 6.3): monitor arrival-rate drift with a
//! sliding window and regenerate the evaluation plan when the statistics
//! the current plan was built with no longer hold.
//!
//! The stream starts with S-A frequent and S-C rare; halfway through, the
//! rates flip. A static plan ordered for phase 1 becomes poor in phase 2;
//! the monitor detects the drift and a re-plan restores the cheap order.
//!
//! Run with `cargo run --release --example adaptive_replanning`.

use cep::core::compile::CompiledPattern;
use cep::core::event::Event;
use cep::core::schema::{Catalog, ValueKind};
use cep::core::stats::{MeasuredStats, StatsOptions};
use cep::core::stream::StreamBuilder;
use cep::core::value::Value;
use cep::optimizer::StatsMonitor;
use cep::prelude::*;

fn main() {
    let mut catalog = Catalog::new();
    let ta = catalog.add_type("S-A", &[("x", ValueKind::Int)]).unwrap();
    let tb = catalog.add_type("S-B", &[("x", ValueKind::Int)]).unwrap();
    let tc = catalog.add_type("S-C", &[("x", ValueKind::Int)]).unwrap();

    let pattern = parse_pattern("PATTERN SEQ(S-A a, S-B b, S-C c) WITHIN 2 s", &catalog).unwrap();
    let cp = CompiledPattern::compile_single(&pattern).unwrap();

    // Phase 1: A at 10/s, B at 2/s, C at 0.5/s. Phase 2: rates of A and C swap.
    let mut sb = StreamBuilder::new();
    for phase in 0..2u64 {
        let (ra, rc) = if phase == 0 { (10, 1) } else { (1, 10) };
        let base = phase * 30_000;
        for i in 0..30_000u64 {
            let ts = base + i;
            if i % (1000 / ra) == 0 {
                sb.push(Event::new(ta, ts, vec![Value::Int(0)]));
            }
            if i % 500 == 0 {
                sb.push(Event::new(tb, ts, vec![Value::Int(0)]));
            }
            if i % (1000 / rc) == 0 {
                sb.push(Event::new(tc, ts, vec![Value::Int(0)]));
            }
        }
    }
    let stream = sb.build();
    println!("two-phase stream: {} events", stream.len());

    let planner = Planner::default();
    let plan_for = |rates: &MeasuredStats| {
        let stats =
            cep::core::stats::PatternStats::build(&cp, rates, &[], &StatsOptions::default())
                .unwrap();
        planner
            .plan_order(&cp, &stats, OrderAlgorithm::DpLd)
            .unwrap()
    };

    // Bootstrap plan from phase-1 rates.
    let mut monitor = StatsMonitor::new(10_000, 0.8);
    let mut measured = MeasuredStats::default();
    measured.set_rate(ta, 0.010);
    measured.set_rate(tb, 0.002);
    measured.set_rate(tc, 0.001);
    let mut plan = plan_for(&measured);
    monitor.rebaseline();
    println!("initial plan (phase-1 statistics): {plan}");

    let mut replans = 0;
    for (i, e) in stream.iter().enumerate() {
        monitor.observe(e);
        // Check for drift periodically, as a real deployment would.
        if i % 50 == 0 && i > 0 && monitor.drifted() {
            let mut fresh = MeasuredStats::default();
            for (ty, rate) in monitor.rates() {
                fresh.set_rate(ty, rate);
            }
            let new_plan = plan_for(&fresh);
            if new_plan != plan {
                replans += 1;
                println!(
                    "drift detected at event {i} (ts {}): replanning {plan} -> {new_plan}",
                    e.ts
                );
                plan = new_plan;
            }
            monitor.rebaseline();
        }
    }
    println!("replans triggered: {replans}");
    assert!(replans >= 1, "the rate flip must trigger a re-plan");
    println!(
        "final plan starts with the now-rare type: {}",
        plan.order()[0] == cp.elem_index(0).unwrap()
    );
}
