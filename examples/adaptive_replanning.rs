//! Live plan swap (the detect → replan → swap loop the paper's Section 6.3
//! defers to companion work), running end to end: an `AdaptiveEngine`
//! monitors arrival-rate drift, rebuilds its evaluation plan from live
//! estimates, and hot-swaps engines mid-stream — replaying the retained
//! pattern window into the fresh engine and deduplicating re-detections so
//! the output is **byte-identical** to a never-swapped engine.
//!
//! The stream starts with AAA frequent and CCC rare; halfway through, the
//! rates flip. The initial plan (wait for rare CCC, then join backwards)
//! becomes the worst order in phase 2; the adaptive engine detects the
//! drift and swaps to the inverted plan, which a side-by-side static
//! engine never does.
//!
//! Run with `cargo run --release --example adaptive_replanning`.

use cep::core::compile::CompiledPattern;
use cep::core::engine::{run_to_completion, Engine};
use cep::core::matches::Match;
use cep::core::schema::Catalog;
use cep::core::selection::SelectionStrategy;
use cep::prelude::*;
use cep::shard::canonical_sort;
use cep::streamgen::{generate_drifting, DriftPhase, StockConfig, SymbolSpec};

fn main() {
    // Three symbols: AAA frequent, BBB steady, CCC rare — until the flip.
    let spec = |name: &str, rate: f64, drift: f64| SymbolSpec {
        name: name.into(),
        rate_per_sec: rate,
        start_price: 100.0,
        drift,
        volatility: 1.0,
    };
    let base = StockConfig {
        symbols: vec![
            spec("AAA", 20.0, 2.0),
            spec("BBB", 4.0, 0.0),
            spec("CCC", 1.0, -2.0),
        ],
        duration_ms: 0, // per-phase durations below
        seed: 0xADA,
    };
    let phases = vec![
        DriftPhase::new(30_000, vec![1.0, 1.0, 1.0]),
        DriftPhase::new(30_000, vec![0.05, 1.0, 20.0]),
    ];
    let mut catalog = Catalog::new();
    let gen = generate_drifting(&base, &phases, &mut catalog).unwrap();
    println!(
        "drifting stream: {} events, rates flip at {} ms",
        gen.stream.len(),
        gen.drift_start_ms()
    );

    let pattern = parse_pattern(
        "PATTERN SEQ(AAA a, BBB b, CCC c)
         WHERE (a.difference < b.difference AND b.difference < c.difference)
         WITHIN 3 s",
        &catalog,
    )
    .unwrap();
    let sels = vec![
        base.symbols[0].lt_selectivity(&base.symbols[1]),
        base.symbols[1].lt_selectivity(&base.symbols[2]),
    ];
    let adaptive_cfg = AdaptiveConfig {
        horizon_ms: 3_000,
        drift_threshold: 0.5,
        check_every: 32,
        cooldown_events: 128,
        ..AdaptiveConfig::default()
    };

    let run = |engine: &mut dyn Engine, stream| -> (Vec<Match>, u64) {
        let r = run_to_completion(engine, stream, true);
        let mut matches = r.matches;
        canonical_sort(&mut matches);
        (matches, r.metrics.partial_matches_created)
    };

    // The exactness guarantee: under every exact selection strategy, the
    // swapping engine's output is byte-identical to the static engine's.
    for strategy in [
        SelectionStrategy::SkipTillAnyMatch,
        SelectionStrategy::StrictContiguity,
        SelectionStrategy::PartitionContiguity,
    ] {
        let mut p = pattern.clone();
        p.strategy = strategy;
        let cp = CompiledPattern::compile_single(&p).unwrap();
        let replanner = PlanReplanner::new(
            vec![(cp, sels.clone())],
            &gen.initial_stats(),
            Planner::default(),
            PlanKind::Order(OrderAlgorithm::DpLd),
            Default::default(),
        )
        .unwrap();
        let initial_plan = replanner.describe();
        let mut static_engine = replanner.build();
        let (expected, static_partials) = run(static_engine.as_mut(), &gen.stream);
        let mut adaptive = AdaptiveEngine::new(replanner, p.window, adaptive_cfg.clone());
        let (got, adaptive_partials) = run(&mut adaptive, &gen.stream);
        assert_eq!(
            got, expected,
            "{strategy}: the swapped output must be byte-identical"
        );
        println!(
            "\n[{strategy}] {} matches, byte-identical with and without swaps",
            got.len()
        );
        if strategy == SelectionStrategy::SkipTillAnyMatch {
            let m = adaptive.metrics();
            println!("  initial plan : {initial_plan}");
            println!("  final plan   : {}", adaptive.replanner().describe());
            println!(
                "  plan swaps   : {} ({} events replayed, {:.2} ms replay time)",
                m.plan_swaps,
                m.replayed_events,
                m.replay_time_ns as f64 / 1e6
            );
            println!("  partial matches: static {static_partials} vs adaptive {adaptive_partials}");
            assert!(m.plan_swaps >= 1, "the rate flip must trigger a swap");
            assert_ne!(
                adaptive.replanner().describe(),
                initial_plan,
                "the swap must adopt a different plan"
            );
            assert!(
                adaptive_partials < static_partials,
                "the swapped plan must do less work after the drift"
            );
        }
    }
    println!("\nadaptivity: detected drift, swapped plans, output provably unchanged");
}
