//! Sharded fraud detection: the `fraud_detection` pattern (a burst of
//! small card transactions, no identity re-verification, then a large
//! withdrawal) scaled out across worker shards with `cep_shard`.
//!
//! The query is *partition-keyed*: every pattern position carries the
//! `account` attribute and the predicates equate it, so all events of a
//! match share one account. Routing by that key (hash routing, or
//! partition passthrough since the stream is partitioned by account)
//! keeps each account's events on one shard, which makes the sharded run
//! **exact**: identical matches, in identical order, for any shard count.
//!
//! Run with `cargo run --release --example sharded_fraud [-- --shards N]`.
//! Without a flag it sweeps 1/2/4/8 shards and checks the counts agree.

use cep::core::compile::CompiledPattern;
use cep::core::engine::{run_to_completion, Engine, EngineConfig};
use cep::core::event::Event;
use cep::core::schema::{Catalog, ValueKind};
use cep::core::stream::StreamBuilder;
use cep::core::value::Value;
use cep::prelude::*;
use cep::shard::canonical_sort;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

fn main() {
    let shards_flag = parse_shards_flag();

    let mut catalog = Catalog::new();
    let small = catalog
        .add_type(
            "SmallTxn",
            &[("account", ValueKind::Int), ("amount", ValueKind::Float)],
        )
        .unwrap();
    let verify = catalog
        .add_type("Verify", &[("account", ValueKind::Int)])
        .unwrap();
    let withdraw = catalog
        .add_type(
            "Withdrawal",
            &[("account", ValueKind::Int), ("amount", ValueKind::Float)],
        )
        .unwrap();

    // Same shape as examples/fraud_detection.rs, but every position is
    // keyed by account — the property that makes sharding exact.
    let pattern = parse_pattern(
        "PATTERN SEQ(KL(SmallTxn s), NOT(Verify v), Withdrawal w)
         WHERE (s.account == w.account AND v.account == w.account
                AND s.amount < 50 AND w.amount >= 500)
         WITHIN 30 s",
        &catalog,
    )
    .unwrap();
    println!("pattern: {pattern}\n");

    // Activity on many accounts; partition = account. Every third account
    // shows the fraudulent shape (probes, then a big withdrawal with no
    // re-verification in between). Account bursts are staggered so only a
    // couple of accounts overlap inside any 30 s window: the Kleene element
    // accumulates *candidate* small transactions before the withdrawal pins
    // the account, so its power-set cost is exponential in the small
    // transactions per window, whatever account they belong to.
    fn at(
        rng: &mut StdRng,
        timeline: &mut Vec<(u64, Event)>,
        ts: &mut u64,
        ty: cep::core::event::TypeId,
        attrs: Vec<Value>,
    ) {
        *ts += rng.gen_range(200..2_000);
        timeline.push((*ts, Event::new(ty, *ts, attrs)));
    }
    let mut rng = StdRng::seed_from_u64(41);
    let accounts = 64i64;
    let mut timeline: Vec<(u64, Event)> = Vec::new();
    for account in 0..accounts {
        let fraudulent = account % 3 == 0;
        let mut ts = account as u64 * 20_000 + rng.gen_range(0..5_000u64);
        for _ in 0..rng.gen_range(2..4u32) {
            let amount = Value::Float(rng.gen_range(5.0..45.0));
            at(
                &mut rng,
                &mut timeline,
                &mut ts,
                small,
                vec![Value::Int(account), amount],
            );
        }
        if !fraudulent {
            at(
                &mut rng,
                &mut timeline,
                &mut ts,
                verify,
                vec![Value::Int(account)],
            );
        }
        let amount = Value::Float(rng.gen_range(500.0..2_000.0));
        at(
            &mut rng,
            &mut timeline,
            &mut ts,
            withdraw,
            vec![Value::Int(account), amount],
        );
    }
    timeline.sort_by_key(|(ts, _)| *ts);
    let mut sb = StreamBuilder::new();
    for (_, event) in timeline {
        let account = match event.attr(0) {
            Some(Value::Int(a)) => *a as u32,
            _ => unreachable!("every type carries the account key"),
        };
        sb.push_partitioned(event, account);
    }
    let stream = sb.build();
    println!(
        "transaction stream: {} events across {accounts} accounts\n",
        stream.len()
    );

    // One shared plan; each worker shard builds its own engine from it.
    let cp = CompiledPattern::compile_single(&pattern).unwrap();
    let cfg = EngineConfig {
        max_kleene_events: 8,
        ..Default::default()
    };
    let factory =
        move || Box::new(NfaEngine::with_trivial_plan(cp.clone(), cfg.clone())) as Box<dyn Engine>;

    // Single-threaded ground truth, in the runtime's canonical merge order.
    let mut engine = (factory)();
    let mut baseline = run_to_completion(engine.as_mut(), &stream, true);
    canonical_sort(&mut baseline.matches);
    println!(
        "single-threaded baseline: {} alerts ({:.0} events/s)",
        baseline.match_count,
        baseline.metrics.throughput_eps()
    );

    let sweep: Vec<usize> = match shards_flag {
        Some(n) => vec![n],
        None => vec![1, 2, 4, 8],
    };
    let mut counts = Vec::new();
    for &shards in &sweep {
        let runtime = ShardedRuntime::with_shards(shards);
        // Hash routing on the account attribute; `RoutingPolicy::Partition`
        // is equivalent here because the stream is partitioned by account.
        let r = runtime.run(&factory, &stream, RoutingPolicy::HashAttr(0), true);
        println!(
            "--shards {shards}: {} alerts ({:.0} events/s; per-shard events: {:?})",
            r.match_count,
            r.metrics.throughput_eps(),
            r.per_shard
                .iter()
                .map(|s| s.events_routed)
                .collect::<Vec<_>>()
        );
        assert_eq!(
            r.matches, baseline.matches,
            "sharded alerts must be identical to the single-threaded run"
        );
        counts.push(r.match_count);
    }
    assert!(counts.iter().all(|&c| c == counts[0]));
    assert!(counts[0] >= 1, "the fraudulent accounts must alert");
    println!(
        "\nall shard counts agree with the single-threaded engine: \
         {} alerts, byte-identical match vectors",
        counts[0]
    );
    for m in baseline.matches.iter().take(3) {
        let account = m
            .bindings
            .last()
            .and_then(|(_, b)| b.events().next())
            .and_then(|e| e.attr(0).cloned());
        println!("  e.g. alert on account {:?}: {m}", account.unwrap());
    }
}

fn parse_shards_flag() -> Option<usize> {
    let args: Vec<String> = std::env::args().skip(1).collect();
    match args.iter().position(|a| a == "--shards") {
        Some(i) => match args.get(i + 1).and_then(|s| s.parse().ok()) {
            Some(n) if n >= 1 => Some(n),
            _ => {
                eprintln!("usage: sharded_fraud [--shards N]");
                std::process::exit(2);
            }
        },
        None => None,
    }
}
