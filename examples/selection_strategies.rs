//! Event selection strategies (Section 6.2): the same pattern evaluated
//! under skip-till-any-match, skip-till-next-match, and strict contiguity,
//! showing how the result sets and engine workloads differ — and how the
//! planner switches cost models per strategy.
//!
//! Run with `cargo run --release --example selection_strategies`.

use cep::core::compile::CompiledPattern;
use cep::core::cost::CostModel;
use cep::core::engine::run_to_completion;
use cep::core::selection::SelectionStrategy;
use cep::prelude::*;
use cep::streamgen::{analytic_measured_stats, analytic_selectivities};

fn main() {
    let config = StockConfig::nasdaq_like(8, 60_000, 0.5, 77);
    let mut catalog = cep::core::schema::Catalog::new();
    let generated = StockStreamGenerator::generate(&config, &mut catalog).unwrap();
    println!("stream: {} events\n", generated.stream.len());

    let base = parse_pattern(
        "PATTERN SEQ(S0000 a, S0002 b, S0005 c)
         WHERE (a.difference < b.difference)
         WITHIN 6 s",
        &catalog,
    )
    .unwrap();

    println!(
        "{:<22} {:>9} {:>12} {:>14} {:>12}",
        "strategy", "matches", "events/s", "partial mtchs", "plan cost"
    );
    for strategy in [
        SelectionStrategy::SkipTillAnyMatch,
        SelectionStrategy::SkipTillNextMatch,
        SelectionStrategy::StrictContiguity,
        SelectionStrategy::PartitionContiguity,
    ] {
        let mut pattern = base.clone();
        pattern.strategy = strategy;
        let cp = CompiledPattern::compile_single(&pattern).unwrap();

        // The cost model switches formulas by strategy (Section 6.2).
        let planner = Planner::default();
        let measured = analytic_measured_stats(&generated);
        let sels = analytic_selectivities(&cp, &generated);
        let stats = planner.stats_for(&cp, &measured, &sels).unwrap();
        let plan = planner
            .plan_order(&cp, &stats, OrderAlgorithm::DpLd)
            .unwrap();
        let cm = CostModel::for_pattern(&cp);
        let cost = cm.order_plan_cost(&stats, &plan);

        let mut engine = cep::engine(&pattern)
            .backend(Backend::Nfa(OrderAlgorithm::DpLd))
            .stats(&generated)
            .build()
            .unwrap();
        let r = run_to_completion(engine.as_mut(), &generated.stream, true);
        println!(
            "{:<22} {:>9} {:>12.0} {:>14} {:>12.2}",
            strategy.to_string(),
            r.match_count,
            r.metrics.throughput_eps(),
            r.metrics.partial_matches_created,
            cost,
        );

        // Strategy-specific invariants, verified live:
        match strategy {
            SelectionStrategy::SkipTillNextMatch => {
                let mut used = std::collections::HashSet::new();
                for m in &r.matches {
                    for e in m.events() {
                        assert!(used.insert(e.seq), "events are single-use");
                    }
                }
            }
            SelectionStrategy::StrictContiguity => {
                for m in &r.matches {
                    let mut seqs: Vec<u64> = m.events().map(|e| e.seq).collect();
                    seqs.sort_unstable();
                    assert!(seqs.windows(2).all(|w| w[1] == w[0] + 1));
                }
            }
            SelectionStrategy::PartitionContiguity => {
                // Cross-symbol patterns cannot be partition-contiguous on a
                // per-symbol-partitioned stream.
                assert_eq!(r.match_count, 0);
            }
            SelectionStrategy::SkipTillAnyMatch => {}
        }
    }
    println!("\n(any-match finds every combination; next-match consumes events;");
    println!(" contiguity requires adjacent stream positions — Section 6.2)");
}
