//! The paper's introductory example (Section 1, Figure 1): four traffic
//! cameras A → B → C → D report sightings of vehicles; camera D is
//! malfunctioning and transmits only one frame for every ten from the
//! others. Detecting SEQ(A, B, C, D) with the trivial NFA creates a partial
//! match for every prefix; the lazy (out-of-order) plan waits for the rare
//! D first — same matches, far fewer partial matches.
//!
//! Run with `cargo run --release --example traffic_cameras`.

use cep::core::compile::CompiledPattern;
use cep::core::engine::{run_to_completion, EngineConfig};
use cep::core::event::Event;
use cep::core::plan::OrderPlan;
use cep::core::schema::{Catalog, ValueKind};
use cep::core::stream::StreamBuilder;
use cep::core::value::Value;
use cep::prelude::*;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

fn main() {
    // Camera reading types, each with the spotted vehicle id.
    let mut catalog = Catalog::new();
    let cams: Vec<_> = ["A", "B", "C", "D"]
        .iter()
        .map(|n| {
            catalog
                .add_type(n, &[("vehicleID", ValueKind::Int)])
                .unwrap()
        })
        .collect();

    // The pattern from the paper, in SASE syntax.
    let pattern = parse_pattern(
        "PATTERN SEQ(A a, B b, C c, D d)
         WHERE (a.vehicleID == b.vehicleID AND b.vehicleID == c.vehicleID
                AND c.vehicleID == d.vehicleID)
         WITHIN 60 s",
        &catalog,
    )
    .unwrap();

    // Simulate the road: vehicles pass every camera in order; camera D
    // only transmits 1 of 10 frames.
    let mut rng = StdRng::seed_from_u64(99);
    let mut sb = StreamBuilder::new();
    let mut ts = 0u64;
    for vehicle in 0..400i64 {
        for (i, &cam) in cams.iter().enumerate() {
            ts += rng.gen_range(20..120);
            let transmits = i < 3 || vehicle % 10 == 0;
            if transmits {
                sb.push(Event::new(cam, ts, vec![Value::Int(vehicle)]));
            }
        }
    }
    let stream = sb.build();
    println!("camera stream: {} readings", stream.len());

    let cp = CompiledPattern::compile_single(&pattern).unwrap();

    // Figure 1(a): the trivial in-order NFA.
    let trivial = OrderPlan::trivial(&cp);
    // Figure 1(b): the lazy NFA that waits for the rare D first, then
    // walks the equality chain backwards (d=c, c=b, b=a) so every step is
    // constrained by a predicate.
    let lazy = OrderPlan::new(vec![3, 2, 1, 0]).unwrap();

    for (name, plan) in [
        ("in-order NFA (Fig 1a)", trivial),
        ("lazy NFA (Fig 1b)", lazy),
    ] {
        let mut engine = NfaEngine::new(cp.clone(), plan.clone(), EngineConfig::default()).unwrap();
        let r = run_to_completion(&mut engine, &stream, false);
        println!(
            "{name:>22} plan {plan}: {} matches, {:>6} partial matches created, peak {:>4}",
            r.match_count, r.metrics.partial_matches_created, r.metrics.peak_partial_matches,
        );
    }
    println!("(same matches; the reordered plan is the cheapest of all 4! orders — Section 1)");
}
