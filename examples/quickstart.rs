//! Quickstart: detect a three-stock correlation pattern with an optimized
//! evaluation plan, and compare it against the naive specification-order
//! plan.
//!
//! Run with `cargo run --release --example quickstart`.

use cep::core::engine::run_to_completion;
use cep::prelude::*;

fn main() {
    // 1. A synthetic NASDAQ-like stream: 10 symbols, 2 minutes, seeded.
    let config = StockConfig::nasdaq_like(10, 120_000, 0.5, 7);
    let mut catalog = cep::core::schema::Catalog::new();
    let generated =
        StockStreamGenerator::generate(&config, &mut catalog).expect("stream generation");
    println!(
        "stream: {} events over {} symbols",
        generated.stream.len(),
        catalog.len()
    );

    // 2. A pattern in the paper's SASE syntax: a rise in S0003 preceded by
    //    updates of S0000 and S0001 with ordered differences.
    let spec = "PATTERN SEQ(S0000 a, S0001 b, S0003 c)
                WHERE (a.difference < b.difference AND c.difference > 0)
                WITHIN 10 s";
    let pattern = parse_pattern(spec, &catalog).expect("valid spec");
    println!("pattern: {pattern}");

    // 3. Plan + run with the trivial (specification-order) plan and with
    //    the exhaustive left-deep DP adapted from join optimization.
    for algo in [OrderAlgorithm::Trivial, OrderAlgorithm::DpLd] {
        let mut engine = cep::engine(&pattern)
            .backend(Backend::Nfa(algo))
            .stats(&generated)
            .build()
            .expect("engine construction");
        let result = run_to_completion(engine.as_mut(), &generated.stream, true);
        println!(
            "{algo:>8}: {} matches, {:.0} events/s, peak {} partial matches",
            result.match_count,
            result.metrics.throughput_eps(),
            result.metrics.peak_partial_matches,
        );
        for m in result.matches.iter().take(2) {
            println!("          match {m}");
        }
    }
}
