//! Fraud detection with negation and Kleene closure: a burst of small card
//! transactions (KL) followed by a large withdrawal, with no intervening
//! identity re-verification (NOT) — the kind of security-monitoring pattern
//! the paper's introduction motivates.
//!
//! Run with `cargo run --release --example fraud_detection`.

use cep::core::engine::{run_to_completion, EngineConfig};
use cep::core::event::Event;
use cep::core::schema::{Catalog, ValueKind};
use cep::core::stream::StreamBuilder;
use cep::core::value::Value;
use cep::prelude::*;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

fn main() {
    let mut catalog = Catalog::new();
    let small = catalog
        .add_type(
            "SmallTxn",
            &[("account", ValueKind::Int), ("amount", ValueKind::Float)],
        )
        .unwrap();
    let verify = catalog
        .add_type("Verify", &[("account", ValueKind::Int)])
        .unwrap();
    let withdraw = catalog
        .add_type(
            "Withdrawal",
            &[("account", ValueKind::Int), ("amount", ValueKind::Float)],
        )
        .unwrap();

    // One or more small transactions on the same account, no verification
    // in between, then a big withdrawal — all within 30 seconds.
    let pattern = parse_pattern(
        "PATTERN SEQ(KL(SmallTxn s), NOT(Verify v), Withdrawal w)
         WHERE (s.account == w.account AND v.account == w.account
                AND s.amount < 50 AND w.amount >= 500)
         WITHIN 30 s",
        &catalog,
    )
    .unwrap();
    println!("pattern: {pattern}\n");

    // Simulate activity on a handful of accounts. Account 1 shows the
    // fraudulent shape; account 2 has the same shape but re-verifies.
    let mut rng = StdRng::seed_from_u64(5);
    let mut sb = StreamBuilder::new();
    let mut ts = 0u64;
    let mut push = |sb: &mut StreamBuilder, ts: &mut u64, ty, attrs: Vec<Value>| {
        *ts += rng.gen_range(100..800);
        sb.push(Event::new(ty, *ts, attrs));
    };
    // Background noise on account 0.
    for _ in 0..20 {
        push(
            &mut sb,
            &mut ts,
            small,
            vec![Value::Int(0), Value::Float(25.0)],
        );
    }
    // Fraud shape on account 1: probes then a big withdrawal.
    for _ in 0..3 {
        push(
            &mut sb,
            &mut ts,
            small,
            vec![Value::Int(1), Value::Float(9.99)],
        );
    }
    push(
        &mut sb,
        &mut ts,
        withdraw,
        vec![Value::Int(1), Value::Float(900.0)],
    );
    // Legitimate shape on account 2: probes, re-verification, withdrawal.
    for _ in 0..3 {
        push(
            &mut sb,
            &mut ts,
            small,
            vec![Value::Int(2), Value::Float(12.0)],
        );
    }
    push(&mut sb, &mut ts, verify, vec![Value::Int(2)]);
    push(
        &mut sb,
        &mut ts,
        withdraw,
        vec![Value::Int(2), Value::Float(800.0)],
    );
    let stream = sb.build();
    println!("transaction stream: {} events", stream.len());

    // Evaluate with both engines; the planner handles NOT placement and the
    // Kleene rate transform internally.
    let cp = cep::core::compile::CompiledPattern::compile_single(&pattern).unwrap();
    let cfg = EngineConfig {
        max_kleene_events: 8,
        ..Default::default()
    };
    let mut nfa = NfaEngine::with_trivial_plan(cp.clone(), cfg.clone());
    let nfa_result = run_to_completion(&mut nfa, &stream, true);
    let mut tree = TreeEngine::with_trivial_plan(cp.clone(), cfg);
    let tree_result = run_to_completion(&mut tree, &stream, true);

    println!(
        "NFA engine: {} alerts; tree engine: {} alerts (must agree)",
        nfa_result.match_count, tree_result.match_count
    );
    for m in nfa_result.matches.iter().take(5) {
        let account = m
            .bindings
            .last()
            .and_then(|(_, b)| b.events().next())
            .and_then(|e| e.attr(0).cloned());
        println!("  alert on account {:?}: {m}", account.unwrap());
    }
    assert_eq!(nfa_result.match_count, tree_result.match_count);
    // Every alert is on account 1 (account 2 re-verified).
    let all_on_account_1 = nfa_result.matches.iter().all(|m| {
        m.events()
            .all(|e| e.attr(0) == Some(&Value::Int(1)) || e.attr(0).is_none())
    });
    println!("all alerts on the fraudulent account: {all_on_account_1}");
}
