//! Drifting stock workloads: the substrate for adaptive-replanning
//! experiments.
//!
//! A drifting stream concatenates several *phases*. Two axes can drift:
//!
//! * **Rates** ([`generate_drifting`]): within a phase every symbol keeps
//!   a stationary Poisson arrival rate; at a phase boundary the rates
//!   jump — each phase scales the base symbol rates by its own multiplier
//!   vector. A plan generated for one phase's statistics can be
//!   arbitrarily poor in the next, which is exactly the situation a live
//!   plan swap (`cep-adaptive`) must detect and repair.
//! * **Correlations** ([`generate_selectivity_drifting`]): rates stay
//!   exactly constant, but each phase overrides the symbols' Gaussian
//!   difference drifts, so pairwise `a.difference < b.difference`
//!   selectivities shift. A rate monitor is blind to this by
//!   construction — only selectivity re-estimation can trigger the
//!   replan.

use crate::stock::{synthesize, StockConfig, SymbolSpec};
use cep_core::error::CepError;
use cep_core::event::TypeId;
use cep_core::schema::{Catalog, ValueKind};
use cep_core::stats::MeasuredStats;
use cep_core::stream::{EventStream, StreamBuilder};

/// One stationary segment of a drifting stream.
#[derive(Debug, Clone)]
pub struct DriftPhase {
    /// Segment length in milliseconds.
    pub duration_ms: u64,
    /// Per-symbol multiplier applied to the base configuration's rates for
    /// the duration of this phase (same order as the symbols).
    pub rate_multipliers: Vec<f64>,
}

impl DriftPhase {
    /// A phase scaling every symbol's rate by the paired multiplier.
    pub fn new(duration_ms: u64, rate_multipliers: Vec<f64>) -> DriftPhase {
        DriftPhase {
            duration_ms,
            rate_multipliers,
        }
    }
}

/// A generated drifting stream plus the per-phase ground truth.
pub struct DriftingStream {
    /// The ts-ordered event stream across all phases.
    pub stream: EventStream,
    /// Type id per symbol (same order as the base config).
    pub type_ids: Vec<TypeId>,
    /// Base symbol specs (multiplier 1.0 rates).
    pub symbols: Vec<SymbolSpec>,
    /// The phase schedule.
    pub phases: Vec<DriftPhase>,
}

impl DriftingStream {
    /// Start timestamp (ms) of phase `i`.
    pub fn phase_start_ms(&self, i: usize) -> u64 {
        self.phases[..i].iter().map(|p| p.duration_ms).sum()
    }

    /// Timestamp of the first rate change — the drift point a static
    /// initial plan is blind to.
    pub fn drift_start_ms(&self) -> u64 {
        self.phase_start_ms(1)
    }

    /// Exact type-level statistics of phase `i` (configured rates, no
    /// sampling noise).
    pub fn phase_stats(&self, i: usize) -> MeasuredStats {
        let mut m = MeasuredStats::default();
        for (s, (&ty, &mult)) in self
            .symbols
            .iter()
            .zip(self.type_ids.iter().zip(&self.phases[i].rate_multipliers))
        {
            m.set_rate(ty, s.rate_per_ms() * mult);
        }
        m
    }

    /// Statistics of the first phase: what a bootstrap measurement sees.
    pub fn initial_stats(&self) -> MeasuredStats {
        self.phase_stats(0)
    }

    /// Statistics of the last phase: the post-drift regime an oracle
    /// planner would have used.
    pub fn final_stats(&self) -> MeasuredStats {
        self.phase_stats(self.phases.len() - 1)
    }
}

/// Generates a drifting stock stream: `base` provides the symbols (its
/// `duration_ms` is ignored — each phase carries its own), `phases` the
/// schedule. Event types are registered with the plain stock schema
/// (`price`, `difference`); each symbol is its own partition, as in
/// [`crate::StockStreamGenerator::generate`]. Deterministic per seed.
pub fn generate_drifting(
    base: &StockConfig,
    phases: &[DriftPhase],
    catalog: &mut Catalog,
) -> Result<DriftingStream, CepError> {
    assert!(!phases.is_empty(), "need at least one phase");
    for (i, p) in phases.iter().enumerate() {
        assert!(p.duration_ms > 0, "phase {i} has zero duration");
        assert_eq!(
            p.rate_multipliers.len(),
            base.symbols.len(),
            "phase {i} supplies {} multipliers for {} symbols",
            p.rate_multipliers.len(),
            base.symbols.len()
        );
    }
    let mut type_ids = Vec::with_capacity(base.symbols.len());
    for s in &base.symbols {
        let id = catalog.add_type(
            &s.name,
            &[
                ("price", ValueKind::Float),
                ("difference", ValueKind::Float),
            ],
        )?;
        type_ids.push(id);
    }
    let mut builder = StreamBuilder::new();
    let mut offset = 0u64;
    for (pi, phase) in phases.iter().enumerate() {
        let scaled = StockConfig {
            symbols: base
                .symbols
                .iter()
                .zip(&phase.rate_multipliers)
                .map(|(s, &mult)| SymbolSpec {
                    rate_per_sec: s.rate_per_sec * mult,
                    ..s.clone()
                })
                .collect(),
            duration_ms: phase.duration_ms,
            seed: base.seed,
        };
        let seed = base
            .seed
            .wrapping_add((pi as u64 + 1).wrapping_mul(0x9E3779B97F4A7C15));
        for (i, mut event) in synthesize(&scaled, seed, &type_ids) {
            event.ts += offset;
            builder.push_partitioned(event, i as u32);
        }
        offset += phase.duration_ms;
    }
    Ok(DriftingStream {
        stream: builder.build(),
        type_ids,
        symbols: base.symbols.clone(),
        phases: phases.to_vec(),
    })
}

/// One stationary segment of a selectivity-drifting stream: arrival rates
/// are untouched, the Gaussian `difference` drifts are replaced.
#[derive(Debug, Clone)]
pub struct SelectivityPhase {
    /// Segment length in milliseconds.
    pub duration_ms: u64,
    /// Per-symbol replacement for [`SymbolSpec::drift`] during this phase
    /// (same order as the symbols). Volatilities and rates are untouched,
    /// so only pairwise difference-comparison selectivities move.
    pub drifts: Vec<f64>,
}

impl SelectivityPhase {
    /// A phase overriding every symbol's difference drift.
    pub fn new(duration_ms: u64, drifts: Vec<f64>) -> SelectivityPhase {
        SelectivityPhase {
            duration_ms,
            drifts,
        }
    }
}

/// A generated selectivity-drifting stream plus per-phase ground truth.
pub struct SelectivityDriftStream {
    /// The ts-ordered event stream across all phases.
    pub stream: EventStream,
    /// Type id per symbol (same order as the base config).
    pub type_ids: Vec<TypeId>,
    /// Base symbol specs (the rates are valid for *every* phase).
    pub symbols: Vec<SymbolSpec>,
    /// The phase schedule.
    pub phases: Vec<SelectivityPhase>,
}

impl SelectivityDriftStream {
    /// Start timestamp (ms) of phase `i`.
    pub fn phase_start_ms(&self, i: usize) -> u64 {
        self.phases[..i].iter().map(|p| p.duration_ms).sum()
    }

    /// Timestamp of the first correlation change — the drift point a rate
    /// monitor cannot see.
    pub fn drift_start_ms(&self) -> u64 {
        self.phase_start_ms(1)
    }

    /// Exact type-level statistics — identical for every phase, because
    /// only correlations drift.
    pub fn stats(&self) -> MeasuredStats {
        let mut m = MeasuredStats::default();
        for (s, &ty) in self.symbols.iter().zip(&self.type_ids) {
            m.set_rate(ty, s.rate_per_ms());
        }
        m
    }

    /// The symbol specs as they behave during phase `i` (base specs with
    /// the phase's drifts substituted) — the input for closed-form
    /// selectivities via [`SymbolSpec::lt_selectivity`].
    pub fn phase_symbols(&self, i: usize) -> Vec<SymbolSpec> {
        self.symbols
            .iter()
            .zip(&self.phases[i].drifts)
            .map(|(s, &drift)| SymbolSpec { drift, ..s.clone() })
            .collect()
    }

    /// Closed-form selectivity of `symbol a .difference < symbol b
    /// .difference` during phase `i`.
    pub fn phase_lt_selectivity(&self, i: usize, a: usize, b: usize) -> f64 {
        let symbols = self.phase_symbols(i);
        symbols[a].lt_selectivity(&symbols[b])
    }
}

/// Generates a selectivity-drifting stock stream: `base` provides the
/// symbols and their (phase-invariant) rates; each phase substitutes its
/// own difference drifts. Event types are registered with the plain stock
/// schema (`price`, `difference`); each symbol is its own partition, as in
/// [`crate::StockStreamGenerator::generate`]. Deterministic per seed.
pub fn generate_selectivity_drifting(
    base: &StockConfig,
    phases: &[SelectivityPhase],
    catalog: &mut Catalog,
) -> Result<SelectivityDriftStream, CepError> {
    assert!(!phases.is_empty(), "need at least one phase");
    for (i, p) in phases.iter().enumerate() {
        assert!(p.duration_ms > 0, "phase {i} has zero duration");
        assert_eq!(
            p.drifts.len(),
            base.symbols.len(),
            "phase {i} supplies {} drifts for {} symbols",
            p.drifts.len(),
            base.symbols.len()
        );
    }
    let mut type_ids = Vec::with_capacity(base.symbols.len());
    for s in &base.symbols {
        let id = catalog.add_type(
            &s.name,
            &[
                ("price", ValueKind::Float),
                ("difference", ValueKind::Float),
            ],
        )?;
        type_ids.push(id);
    }
    let mut builder = StreamBuilder::new();
    let mut offset = 0u64;
    for (pi, phase) in phases.iter().enumerate() {
        let shifted = StockConfig {
            symbols: base
                .symbols
                .iter()
                .zip(&phase.drifts)
                .map(|(s, &drift)| SymbolSpec { drift, ..s.clone() })
                .collect(),
            duration_ms: phase.duration_ms,
            seed: base.seed,
        };
        // Same per-phase seed decorrelation as `generate_drifting`, with a
        // distinct stride so rate- and selectivity-drift streams from one
        // base seed differ.
        let seed = base
            .seed
            .wrapping_add((pi as u64 + 1).wrapping_mul(0xD1B54A32D192ED03));
        for (i, mut event) in synthesize(&shifted, seed, &type_ids) {
            event.ts += offset;
            builder.push_partitioned(event, i as u32);
        }
        offset += phase.duration_ms;
    }
    Ok(SelectivityDriftStream {
        stream: builder.build(),
        type_ids,
        symbols: base.symbols.clone(),
        phases: phases.to_vec(),
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    fn base() -> StockConfig {
        StockConfig {
            symbols: vec![
                SymbolSpec {
                    name: "AAA".into(),
                    rate_per_sec: 20.0,
                    start_price: 100.0,
                    drift: 0.5,
                    volatility: 1.0,
                },
                SymbolSpec {
                    name: "BBB".into(),
                    rate_per_sec: 4.0,
                    start_price: 50.0,
                    drift: -0.5,
                    volatility: 1.0,
                },
                SymbolSpec {
                    name: "CCC".into(),
                    rate_per_sec: 1.0,
                    start_price: 20.0,
                    drift: 0.0,
                    volatility: 0.8,
                },
            ],
            duration_ms: 0, // ignored by drifting generation
            seed: 11,
        }
    }

    /// AAA and CCC swap roles at the halfway point; BBB is steady.
    fn flip_phases(phase_ms: u64) -> Vec<DriftPhase> {
        vec![
            DriftPhase::new(phase_ms, vec![1.0, 1.0, 1.0]),
            DriftPhase::new(phase_ms, vec![0.05, 1.0, 20.0]),
        ]
    }

    #[test]
    fn drifting_stream_is_ordered_and_phase_rates_flip() {
        let mut cat = Catalog::new();
        let d = generate_drifting(&base(), &flip_phases(30_000), &mut cat).unwrap();
        assert_eq!(cat.len(), 3);
        assert_eq!(d.drift_start_ms(), 30_000);
        for w in d.stream.windows(2) {
            assert!(w[0].ts <= w[1].ts);
            assert!(w[0].seq < w[1].seq);
        }
        // Empirical rates per phase track the configured flip (Poisson
        // noise allowed).
        let count = |ty: TypeId, lo: u64, hi: u64| {
            d.stream
                .iter()
                .filter(|e| e.type_id == ty && e.ts >= lo && e.ts < hi)
                .count() as f64
        };
        let aaa_p1 = count(d.type_ids[0], 0, 30_000) / 30.0;
        let aaa_p2 = count(d.type_ids[0], 30_000, 60_000) / 30.0;
        let ccc_p1 = count(d.type_ids[2], 0, 30_000) / 30.0;
        let ccc_p2 = count(d.type_ids[2], 30_000, 60_000) / 30.0;
        assert!((aaa_p1 - 20.0).abs() < 4.0, "AAA phase 1: {aaa_p1}/s");
        assert!(aaa_p2 < 3.0, "AAA phase 2: {aaa_p2}/s");
        assert!(ccc_p1 < 3.0, "CCC phase 1: {ccc_p1}/s");
        assert!((ccc_p2 - 20.0).abs() < 4.0, "CCC phase 2: {ccc_p2}/s");
    }

    #[test]
    fn phase_stats_report_exact_configured_rates() {
        let mut cat = Catalog::new();
        let d = generate_drifting(&base(), &flip_phases(10_000), &mut cat).unwrap();
        let p1 = d.initial_stats();
        let p2 = d.final_stats();
        assert!((p1.rate(d.type_ids[0]) - 0.020).abs() < 1e-9);
        assert!((p1.rate(d.type_ids[2]) - 0.001).abs() < 1e-9);
        assert!((p2.rate(d.type_ids[0]) - 0.001).abs() < 1e-9);
        assert!((p2.rate(d.type_ids[2]) - 0.020).abs() < 1e-9);
        // The steady symbol keeps its rate in both phases.
        assert!((p1.rate(d.type_ids[1]) - p2.rate(d.type_ids[1])).abs() < 1e-9);
    }

    #[test]
    fn drifting_generation_is_deterministic_per_seed() {
        let mut c1 = Catalog::new();
        let mut c2 = Catalog::new();
        let d1 = generate_drifting(&base(), &flip_phases(5_000), &mut c1).unwrap();
        let d2 = generate_drifting(&base(), &flip_phases(5_000), &mut c2).unwrap();
        assert_eq!(d1.stream.len(), d2.stream.len());
        for (a, b) in d1.stream.iter().zip(&d2.stream) {
            assert_eq!(a.ts, b.ts);
            assert_eq!(a.type_id, b.type_id);
            assert_eq!(a.attrs, b.attrs);
        }
    }

    #[test]
    #[should_panic(expected = "multipliers")]
    fn mismatched_multiplier_count_rejected() {
        let mut cat = Catalog::new();
        let _ = generate_drifting(&base(), &[DriftPhase::new(1_000, vec![1.0])], &mut cat);
    }

    /// AAA's and CCC's difference drifts swap at the halfway point; BBB is
    /// steady. Rates never change.
    fn sel_flip_phases(phase_ms: u64) -> Vec<SelectivityPhase> {
        vec![
            SelectivityPhase::new(phase_ms, vec![2.0, 0.0, -2.0]),
            SelectivityPhase::new(phase_ms, vec![-2.0, 0.0, 2.0]),
        ]
    }

    #[test]
    fn selectivity_drift_keeps_rates_flat_and_flips_correlations() {
        let mut cat = Catalog::new();
        let d = generate_selectivity_drifting(&base(), &sel_flip_phases(30_000), &mut cat).unwrap();
        assert_eq!(cat.len(), 3);
        assert_eq!(d.drift_start_ms(), 30_000);
        for w in d.stream.windows(2) {
            assert!(w[0].ts <= w[1].ts);
            assert!(w[0].seq < w[1].seq);
        }
        // Arrival rates are phase-invariant (Poisson noise allowed).
        let count = |ty: TypeId, lo: u64, hi: u64| {
            d.stream
                .iter()
                .filter(|e| e.type_id == ty && e.ts >= lo && e.ts < hi)
                .count() as f64
        };
        for (i, expect_per_sec) in [(0usize, 20.0), (1, 4.0), (2, 1.0)] {
            let p1 = count(d.type_ids[i], 0, 30_000) / 30.0;
            let p2 = count(d.type_ids[i], 30_000, 60_000) / 30.0;
            let tol = 1.5 + expect_per_sec * 0.25;
            assert!((p1 - expect_per_sec).abs() < tol, "symbol {i} p1: {p1}/s");
            assert!((p2 - expect_per_sec).abs() < tol, "symbol {i} p2: {p2}/s");
        }
        // Empirical P(AAA.diff < CCC.diff) flips between phases.
        let diffs = |i: usize, lo: u64, hi: u64| -> Vec<f64> {
            d.stream
                .iter()
                .filter(|e| e.type_id == d.type_ids[i] && e.ts >= lo && e.ts < hi)
                .filter_map(|e| e.attrs[crate::stock::ATTR_DIFFERENCE].as_f64())
                .collect()
        };
        let frac_lt = |a: &[f64], b: &[f64]| {
            let mut hits = 0usize;
            let mut total = 0usize;
            for (i, &x) in a.iter().enumerate() {
                let y = b[i % b.len()];
                total += 1;
                if x < y {
                    hits += 1;
                }
            }
            hits as f64 / total.max(1) as f64
        };
        let p1 = frac_lt(&diffs(0, 0, 30_000), &diffs(2, 0, 30_000));
        let p2 = frac_lt(&diffs(0, 30_000, 60_000), &diffs(2, 30_000, 60_000));
        assert!(p1 < 0.1, "phase 1 AAA<CCC should be rare: {p1}");
        assert!(p2 > 0.9, "phase 2 AAA<CCC should dominate: {p2}");
        // Closed-form ground truth agrees.
        assert!(d.phase_lt_selectivity(0, 0, 2) < 0.05);
        assert!(d.phase_lt_selectivity(1, 0, 2) > 0.95);
        // The stats helper reports the (phase-invariant) configured rates.
        let m = d.stats();
        assert!((m.rate(d.type_ids[0]) - 0.020).abs() < 1e-9);
        assert!((m.rate(d.type_ids[2]) - 0.001).abs() < 1e-9);
    }

    #[test]
    fn selectivity_drifting_generation_is_deterministic_per_seed() {
        let mut c1 = Catalog::new();
        let mut c2 = Catalog::new();
        let d1 = generate_selectivity_drifting(&base(), &sel_flip_phases(5_000), &mut c1).unwrap();
        let d2 = generate_selectivity_drifting(&base(), &sel_flip_phases(5_000), &mut c2).unwrap();
        assert_eq!(d1.stream.len(), d2.stream.len());
        for (a, b) in d1.stream.iter().zip(&d2.stream) {
            assert_eq!(a.ts, b.ts);
            assert_eq!(a.type_id, b.type_id);
            assert_eq!(a.attrs, b.attrs);
        }
    }

    #[test]
    #[should_panic(expected = "drifts")]
    fn mismatched_drift_count_rejected() {
        let mut cat = Catalog::new();
        let _ = generate_selectivity_drifting(
            &base(),
            &[SelectivityPhase::new(1_000, vec![1.0])],
            &mut cat,
        );
    }
}
