//! # cep-streamgen
//!
//! Synthetic substrate for the Section 7 experiments of Kolchinsky &
//! Schuster (VLDB 2018): a NASDAQ-like stock-update stream generator
//! ([`stock`]) and the five-category pattern workload generator
//! ([`workload`]).
//!
//! The real dataset (eoddata.com NASDAQ dump) is not redistributable; see
//! `DESIGN.md` §3 for why this substitution preserves the evaluated
//! behaviour: the optimizer consumes only arrival rates and predicate
//! selectivities, both of which the generator reproduces (with closed-form
//! ground truth) over the paper's measured ranges.

#![warn(missing_docs)]

pub mod drift;
pub mod stock;
pub mod workload;

pub use drift::{
    generate_drifting, generate_selectivity_drifting, DriftPhase, DriftingStream,
    SelectivityDriftStream, SelectivityPhase,
};
pub use stock::{
    GeneratedStream, StockConfig, StockStreamGenerator, SymbolSpec, ATTR_ACCOUNT, ATTR_DIFFERENCE,
    ATTR_PRICE, ATTR_REPLICA,
};
pub use workload::{
    analytic_measured_stats, analytic_selectivities, generate_pattern, generate_set,
    GeneratedPattern, PatternSetKind, WorkloadConfig,
};
