//! Pattern-set (workload) generator for the Section 7 experiments.
//!
//! The paper evaluates five pattern sets — pure sequences, sequences with a
//! negated event, conjunctions, sequences with a Kleene-closed event, and
//! disjunctions of three sequences — with sizes 3–7 and roughly
//! `size / 2` predicates comparing `difference` attributes of the involved
//! stock types (Section 7.2). This module reproduces those sets over the
//! synthetic stock catalog, deterministically per seed.

use crate::stock::{GeneratedStream, ATTR_DIFFERENCE};
use cep_core::compile::CompiledPattern;
use cep_core::error::CepError;
use cep_core::event::TypeId;
use cep_core::pattern::{Pattern, PatternBuilder, PatternExpr};
use cep_core::predicate::{CmpOp, Operand, Predicate};
use cep_core::stats::MeasuredStats;
use rand::rngs::StdRng;
use rand::seq::SliceRandom;
use rand::{Rng, SeedableRng};
use std::fmt;

/// The five evaluated pattern categories.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum PatternSetKind {
    /// Pure sequences.
    Sequence,
    /// Sequences with one negated event.
    Negation,
    /// Pure conjunctions.
    Conjunction,
    /// Sequences with one Kleene-closed event ("iteration" in the figures).
    Kleene,
    /// Disjunctions of three sequences ("composite" patterns).
    Disjunction,
}

impl PatternSetKind {
    /// All five categories, in the paper's presentation order.
    pub fn all() -> [PatternSetKind; 5] {
        [
            PatternSetKind::Sequence,
            PatternSetKind::Negation,
            PatternSetKind::Conjunction,
            PatternSetKind::Kleene,
            PatternSetKind::Disjunction,
        ]
    }
}

impl fmt::Display for PatternSetKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = match self {
            PatternSetKind::Sequence => "sequence",
            PatternSetKind::Negation => "negation",
            PatternSetKind::Conjunction => "conjunction",
            PatternSetKind::Kleene => "kleene",
            PatternSetKind::Disjunction => "disjunction",
        };
        f.write_str(s)
    }
}

/// Workload generation parameters.
#[derive(Debug, Clone)]
pub struct WorkloadConfig {
    /// Pattern time window in milliseconds (the paper uses 20 minutes).
    pub window_ms: u64,
    /// RNG seed.
    pub seed: u64,
}

impl Default for WorkloadConfig {
    fn default() -> Self {
        WorkloadConfig {
            window_ms: 20 * 60 * 1000,
            seed: 1,
        }
    }
}

/// A generated pattern with its category and size annotation.
#[derive(Debug, Clone)]
pub struct GeneratedPattern {
    /// The pattern.
    pub pattern: Pattern,
    /// Category.
    pub kind: PatternSetKind,
    /// Size (number of participating events per conjunctive branch).
    pub size: usize,
}

/// Generates one pattern of the given category and size over the stream's
/// symbols.
///
/// Interpretation notes (the paper leaves these implicit):
/// * `size` counts the primitive events of a conjunctive branch; negation
///   patterns have `size` events of which one (non-boundary when possible)
///   is negated;
/// * Kleene patterns place the KL operator on the lowest-rate chosen
///   symbol — the power-set semantics makes high-rate KL elements
///   intractable for *any* engine (the `2^{rW}` of Section 5.2);
/// * disjunction patterns are `OR`s of three sequences of `size` events
///   each, over disjoint symbol sets.
pub fn generate_pattern(
    kind: PatternSetKind,
    size: usize,
    gen: &GeneratedStream,
    cfg: &WorkloadConfig,
    rng: &mut StdRng,
) -> Result<GeneratedPattern, CepError> {
    assert!(size >= 2, "pattern size must be at least 2");
    let need = match kind {
        PatternSetKind::Disjunction => 3 * size,
        _ => size,
    };
    assert!(
        gen.type_ids.len() >= need,
        "workload needs {need} symbols, stream has {}",
        gen.type_ids.len()
    );
    let mut symbol_idx: Vec<usize> = (0..gen.type_ids.len()).collect();
    symbol_idx.shuffle(rng);
    symbol_idx.truncate(need);

    let mut b = PatternBuilder::new(cfg.window_ms);
    let pattern = match kind {
        PatternSetKind::Sequence | PatternSetKind::Conjunction => {
            let evs: Vec<_> = symbol_idx
                .iter()
                .enumerate()
                .map(|(i, &s)| b.event(gen.type_ids[s], &format!("e{i}")))
                .collect();
            add_difference_predicates(
                &mut b,
                &evs.iter().map(|e| e.pos()).collect::<Vec<_>>(),
                size / 2,
                rng,
            );
            if kind == PatternSetKind::Sequence {
                b.seq(evs)?
            } else {
                b.and(evs)?
            }
        }
        PatternSetKind::Negation => {
            let evs: Vec<_> = symbol_idx
                .iter()
                .enumerate()
                .map(|(i, &s)| b.event(gen.type_ids[s], &format!("e{i}")))
                .collect();
            // Negate a middle event; predicates link positive events only.
            let neg_slot = if size > 2 {
                1 + rng.gen_range(0..(size - 2))
            } else {
                1
            };
            let positive_pos: Vec<usize> = evs
                .iter()
                .enumerate()
                .filter(|(i, _)| *i != neg_slot)
                .map(|(_, e)| e.pos())
                .collect();
            add_difference_predicates(&mut b, &positive_pos, (size - 1) / 2, rng);
            let exprs: Vec<PatternExpr> = evs
                .iter()
                .enumerate()
                .map(|(i, &e)| if i == neg_slot { b.not(e) } else { b.expr(e) })
                .collect();
            b.seq_exprs(exprs)?
        }
        PatternSetKind::Kleene => {
            // Put the KL operator on the *globally* rarest symbol: the
            // power-set semantics stores 2^{W·r} partial matches
            // (Section 5.2), so any non-rare KL type is intractable for
            // every engine and plan alike.
            let rarest = (0..gen.symbols.len())
                .min_by(|&a, &b| {
                    gen.symbols[a]
                        .rate_per_sec
                        .partial_cmp(&gen.symbols[b].rate_per_sec)
                        .unwrap_or(std::cmp::Ordering::Equal)
                })
                .expect("non-empty symbols");
            let mut symbol_idx = symbol_idx;
            if !symbol_idx.contains(&rarest) {
                symbol_idx[0] = rarest;
            }
            let kl_slot = if size > 2 {
                1 + rng.gen_range(0..(size - 2))
            } else {
                1
            };
            let mut ordered = symbol_idx.clone();
            let rarest_pos = ordered.iter().position(|&s| s == rarest).expect("chosen");
            ordered.swap(kl_slot, rarest_pos);
            let evs: Vec<_> = ordered
                .iter()
                .enumerate()
                .map(|(i, &s)| b.event(gen.type_ids[s], &format!("e{i}")))
                .collect();
            let non_kl: Vec<usize> = evs
                .iter()
                .enumerate()
                .filter(|(i, _)| *i != kl_slot)
                .map(|(_, e)| e.pos())
                .collect();
            add_difference_predicates(&mut b, &non_kl, (size - 1) / 2, rng);
            let exprs: Vec<PatternExpr> = evs
                .iter()
                .enumerate()
                .map(|(i, &e)| if i == kl_slot { b.kleene(e) } else { b.expr(e) })
                .collect();
            b.seq_exprs(exprs)?
        }
        PatternSetKind::Disjunction => {
            let mut branches = Vec::with_capacity(3);
            for br in 0..3 {
                let slice = &symbol_idx[br * size..(br + 1) * size];
                let evs: Vec<_> = slice
                    .iter()
                    .enumerate()
                    .map(|(i, &s)| b.event(gen.type_ids[s], &format!("b{br}e{i}")))
                    .collect();
                add_difference_predicates(
                    &mut b,
                    &evs.iter().map(|e| e.pos()).collect::<Vec<_>>(),
                    size / 2,
                    rng,
                );
                branches.push(PatternExpr::Seq(evs.iter().map(|&e| b.expr(e)).collect()));
            }
            b.or_exprs(branches)?
        }
    };
    Ok(GeneratedPattern {
        pattern,
        kind,
        size,
    })
}

/// Adds `count` random `difference`-comparison predicates between distinct
/// position pairs.
fn add_difference_predicates(
    b: &mut PatternBuilder,
    positions: &[usize],
    count: usize,
    rng: &mut StdRng,
) {
    if positions.len() < 2 {
        return;
    }
    let mut pairs: Vec<(usize, usize)> = Vec::new();
    for (i, &p) in positions.iter().enumerate() {
        for &q in &positions[i + 1..] {
            pairs.push((p, q));
        }
    }
    pairs.shuffle(rng);
    for &(p, q) in pairs.iter().take(count) {
        let (l, r) = if rng.gen_bool(0.5) { (p, q) } else { (q, p) };
        b.predicate(Predicate::attr_cmp(
            l,
            ATTR_DIFFERENCE,
            CmpOp::Lt,
            r,
            ATTR_DIFFERENCE,
        ));
    }
}

/// Generates a full pattern set: `per_size` patterns for each size in
/// `sizes` (the paper: sizes 3..=7, 100 patterns each).
pub fn generate_set(
    kind: PatternSetKind,
    sizes: std::ops::RangeInclusive<usize>,
    per_size: usize,
    gen: &GeneratedStream,
    cfg: &WorkloadConfig,
) -> Result<Vec<GeneratedPattern>, CepError> {
    let mut rng = StdRng::seed_from_u64(cfg.seed ^ (kind as u64).wrapping_mul(0x9E3779B97F4A7C15));
    let mut out = Vec::new();
    for size in sizes {
        for _ in 0..per_size {
            out.push(generate_pattern(kind, size, gen, cfg, &mut rng)?);
        }
    }
    Ok(out)
}

/// Analytic per-predicate selectivities for a compiled pattern over the
/// generated stock stream (closed-form Gaussian comparison, no sampling).
pub fn analytic_selectivities(cp: &CompiledPattern, gen: &GeneratedStream) -> Vec<f64> {
    let spec_of = |ty: TypeId| {
        gen.type_ids
            .iter()
            .position(|&t| t == ty)
            .map(|i| &gen.symbols[i])
    };
    let type_of_pos = |pos: usize| {
        cp.elements
            .iter()
            .find(|e| e.position == pos)
            .map(|e| e.event_type)
            .or_else(|| {
                cp.negated
                    .iter()
                    .find(|n| n.position == pos)
                    .map(|n| n.event_type)
            })
    };
    cp.predicates
        .iter()
        .map(|p| {
            // Only `difference < difference` predicates are generated.
            let (
                Operand::Attr {
                    position: pa,
                    attr: ATTR_DIFFERENCE,
                },
                Operand::Attr {
                    position: pb,
                    attr: ATTR_DIFFERENCE,
                },
            ) = (&p.left, &p.right)
            else {
                return 1.0;
            };
            let (Some(ta), Some(tb)) = (type_of_pos(*pa), type_of_pos(*pb)) else {
                return 1.0;
            };
            let (Some(sa), Some(sb)) = (spec_of(ta), spec_of(tb)) else {
                return 1.0;
            };
            match p.op {
                CmpOp::Lt | CmpOp::Le => sa.lt_selectivity(sb),
                CmpOp::Gt | CmpOp::Ge => sb.lt_selectivity(sa),
                _ => 1.0,
            }
        })
        .collect()
}

/// Analytic type-level statistics (exact configured rates instead of
/// measured ones). Partition-replicated streams interleave `replicas`
/// independent copies, so each type's arrival rate scales accordingly.
pub fn analytic_measured_stats(gen: &GeneratedStream) -> MeasuredStats {
    let mut m = MeasuredStats::default();
    for (i, s) in gen.symbols.iter().enumerate() {
        m.set_rate(gen.type_ids[i], s.rate_per_ms() * gen.replicas as f64);
    }
    m
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::stock::{StockConfig, StockStreamGenerator};
    use cep_core::schema::Catalog;

    fn fixture() -> GeneratedStream {
        let cfg = StockConfig::nasdaq_like(25, 2_000, 0.2, 11);
        let mut cat = Catalog::new();
        StockStreamGenerator::generate(&cfg, &mut cat).unwrap()
    }

    #[test]
    fn sequence_patterns_are_pure_sequences() {
        let gen = fixture();
        let cfg = WorkloadConfig {
            window_ms: 5_000,
            seed: 3,
        };
        let mut rng = StdRng::seed_from_u64(1);
        for size in 3..=7 {
            let gp =
                generate_pattern(PatternSetKind::Sequence, size, &gen, &cfg, &mut rng).unwrap();
            assert!(gp.pattern.is_pure());
            assert_eq!(gp.pattern.size(), size);
            assert_eq!(gp.pattern.predicates.len(), size / 2);
            let cp = CompiledPattern::compile_single(&gp.pattern).unwrap();
            assert_eq!(cp.op, cep_core::compile::NaryOp::Seq);
        }
    }

    #[test]
    fn negation_patterns_have_one_negated_event() {
        let gen = fixture();
        let cfg = WorkloadConfig::default();
        let mut rng = StdRng::seed_from_u64(2);
        let gp = generate_pattern(PatternSetKind::Negation, 5, &gen, &cfg, &mut rng).unwrap();
        let prims = gp.pattern.primitives();
        assert_eq!(prims.iter().filter(|p| p.negated).count(), 1);
        assert_eq!(prims.len(), 5);
        // The negated event is never first or last in the sequence.
        let neg_idx = prims.iter().position(|p| p.negated).unwrap();
        assert!(neg_idx > 0 && neg_idx < 4);
    }

    #[test]
    fn kleene_patterns_use_rarest_symbol() {
        let gen = fixture();
        let cfg = WorkloadConfig::default();
        let mut rng = StdRng::seed_from_u64(5);
        let gp = generate_pattern(PatternSetKind::Kleene, 4, &gen, &cfg, &mut rng).unwrap();
        let prims = gp.pattern.primitives();
        let kl = prims.iter().find(|p| p.kleene).expect("one KL event");
        // The KL symbol must have the minimum rate among chosen symbols.
        let rate_of = |ty: TypeId| {
            let i = gen.type_ids.iter().position(|&t| t == ty).unwrap();
            gen.symbols[i].rate_per_sec
        };
        let min_rate = prims
            .iter()
            .map(|p| rate_of(p.event_type))
            .fold(f64::INFINITY, f64::min);
        assert!((rate_of(kl.event_type) - min_rate).abs() < 1e-12);
    }

    #[test]
    fn disjunction_patterns_have_three_branches() {
        let gen = fixture();
        let cfg = WorkloadConfig::default();
        let mut rng = StdRng::seed_from_u64(7);
        let gp = generate_pattern(PatternSetKind::Disjunction, 3, &gen, &cfg, &mut rng).unwrap();
        let cps = CompiledPattern::compile(&gp.pattern).unwrap();
        assert_eq!(cps.len(), 3);
        for cp in &cps {
            assert_eq!(cp.n(), 3);
        }
    }

    #[test]
    fn sets_are_deterministic_and_sized() {
        let gen = fixture();
        let cfg = WorkloadConfig {
            window_ms: 5_000,
            seed: 9,
        };
        let s1 = generate_set(PatternSetKind::Sequence, 3..=5, 4, &gen, &cfg).unwrap();
        let s2 = generate_set(PatternSetKind::Sequence, 3..=5, 4, &gen, &cfg).unwrap();
        assert_eq!(s1.len(), 12);
        assert_eq!(
            format!("{}", s1[5].pattern),
            format!("{}", s2[5].pattern),
            "same seed must give identical patterns"
        );
    }

    #[test]
    fn analytic_selectivities_are_probabilities() {
        let gen = fixture();
        let cfg = WorkloadConfig::default();
        let mut rng = StdRng::seed_from_u64(13);
        for _ in 0..10 {
            let gp =
                generate_pattern(PatternSetKind::Conjunction, 6, &gen, &cfg, &mut rng).unwrap();
            let cp = CompiledPattern::compile_single(&gp.pattern).unwrap();
            let sels = analytic_selectivities(&cp, &gen);
            assert_eq!(sels.len(), cp.predicates.len());
            assert!(sels.iter().all(|&s| (0.0..=1.0).contains(&s)));
        }
    }

    #[test]
    fn analytic_stats_reproduce_configured_rates() {
        let gen = fixture();
        let m = analytic_measured_stats(&gen);
        for (i, s) in gen.symbols.iter().enumerate() {
            let r = m.rate(gen.type_ids[i]);
            assert!(
                (r - s.rate_per_ms()).abs() < 1e-6,
                "type {i}: {r} vs {}",
                s.rate_per_ms()
            );
        }
    }

    #[test]
    fn analytic_selectivity_agrees_with_sampled() {
        use cep_core::stats::estimate_selectivities;
        // Longer stream than the shared fixture: sampling needs hundreds of
        // events per symbol for a stable estimate.
        let scfg = StockConfig::nasdaq_like(8, 60_000, 0.5, 23);
        let mut cat = Catalog::new();
        let gen = StockStreamGenerator::generate(&scfg, &mut cat).unwrap();
        let cfg = WorkloadConfig {
            window_ms: 5_000,
            seed: 21,
        };
        let mut rng = StdRng::seed_from_u64(17);
        let gp = generate_pattern(PatternSetKind::Conjunction, 4, &gen, &cfg, &mut rng).unwrap();
        let cp = CompiledPattern::compile_single(&gp.pattern).unwrap();
        let analytic = analytic_selectivities(&cp, &gen);
        let sampled = estimate_selectivities(&gen.stream, &cp, 20_000);
        for (a, s) in analytic.iter().zip(&sampled) {
            assert!((a - s).abs() < 0.12, "analytic {a} vs sampled {s}");
        }
    }
}
