//! Synthetic NASDAQ-like stock stream (the Section 7.2 dataset substitute).
//!
//! The paper's evaluation uses one year of NASDAQ price updates
//! (80.5M events, >2100 tickers, measured rates between 1 and 45 events/s,
//! predicate selectivities between 0.002 and 0.88) with a precomputed
//! `difference` attribute. The real dump is not redistributable, so this
//! module generates a stream with the same *statistical interface*: the
//! plan-generation algorithms only ever observe per-type arrival rates and
//! per-predicate selectivities, and both are reproduced (and controllable)
//! here:
//!
//! * per-symbol Poisson arrivals with configurable rates;
//! * per-symbol Gaussian price-difference walks with distinct drifts and
//!   volatilities, so `a.difference < b.difference` predicates span a wide
//!   selectivity range (computable in closed form, see
//!   [`SymbolSpec::lt_selectivity`]).
//!
//! Streams are seeded and fully deterministic.

use cep_core::error::CepError;
use cep_core::event::{Event, TypeId};
use cep_core::schema::{Catalog, ValueKind};
use cep_core::stream::{EventStream, StreamBuilder};
use cep_core::value::Value;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// Attribute index of `price` in stock event schemas.
pub const ATTR_PRICE: usize = 0;
/// Attribute index of `difference` (current minus previous price).
pub const ATTR_DIFFERENCE: usize = 1;
/// Attribute index of `replica` in partition-replicated stock schemas
/// (see [`StockStreamGenerator::generate_replicated`]).
pub const ATTR_REPLICA: usize = 2;
/// Attribute index of `account` in cross-key stock schemas (see
/// [`StockStreamGenerator::generate_cross_key`]).
pub const ATTR_ACCOUNT: usize = 2;

/// One stock symbol's generation parameters.
#[derive(Debug, Clone)]
pub struct SymbolSpec {
    /// Ticker name (becomes the event type name).
    pub name: String,
    /// Arrival rate in events per second.
    pub rate_per_sec: f64,
    /// Initial price.
    pub start_price: f64,
    /// Mean of the per-update price difference.
    pub drift: f64,
    /// Standard deviation of the per-update price difference.
    pub volatility: f64,
}

impl SymbolSpec {
    /// Arrival rate in events per millisecond (the unit used by
    /// [`cep_core::stats::PatternStats`]).
    pub fn rate_per_ms(&self) -> f64 {
        self.rate_per_sec / 1000.0
    }

    /// Closed-form selectivity of `self.difference < other.difference` for
    /// independent Gaussian differences:
    /// `Φ((μ_other − μ_self) / √(σ_self² + σ_other²))`.
    pub fn lt_selectivity(&self, other: &SymbolSpec) -> f64 {
        let mu = other.drift - self.drift;
        let sigma = (self.volatility.powi(2) + other.volatility.powi(2)).sqrt();
        if sigma <= 0.0 {
            return if mu > 0.0 { 1.0 } else { 0.0 };
        }
        normal_cdf(mu / sigma)
    }
}

/// Standard normal CDF via the Abramowitz–Stegun 7.1.26 erf approximation
/// (max error ~1.5e-7, ample for selectivity estimation).
pub fn normal_cdf(x: f64) -> f64 {
    0.5 * (1.0 + erf(x / std::f64::consts::SQRT_2))
}

fn erf(x: f64) -> f64 {
    let sign = if x < 0.0 { -1.0 } else { 1.0 };
    let x = x.abs();
    let t = 1.0 / (1.0 + 0.3275911 * x);
    let y = 1.0
        - (((((1.061405429 * t - 1.453152027) * t) + 1.421413741) * t - 0.284496736) * t
            + 0.254829592)
            * t
            * (-x * x).exp();
    sign * y
}

/// Full stream-generation configuration.
#[derive(Debug, Clone)]
pub struct StockConfig {
    /// Symbols to generate.
    pub symbols: Vec<SymbolSpec>,
    /// Stream duration in milliseconds.
    pub duration_ms: u64,
    /// RNG seed (streams are deterministic per seed).
    pub seed: u64,
}

impl StockConfig {
    /// A NASDAQ-like configuration: `n` symbols with rates drawn uniformly
    /// from the paper's measured range, scaled by `rate_scale` (use 1.0 for
    /// the paper's 1–45 events/s; quick experiments use smaller scales),
    /// and drift/volatility spread so that difference-comparison
    /// selectivities span roughly the paper's 0.002–0.88 range.
    pub fn nasdaq_like(n: usize, duration_ms: u64, rate_scale: f64, seed: u64) -> StockConfig {
        let mut rng = StdRng::seed_from_u64(seed);
        let symbols = (0..n)
            .map(|i| {
                let rate = rng.gen_range(1.0..45.0) * rate_scale;
                // Spread drifts widely relative to volatility so pairwise
                // P(a.diff < b.diff) covers near-0 to near-1.
                let drift = rng.gen_range(-2.0..2.0);
                let volatility = rng.gen_range(0.4..1.2);
                SymbolSpec {
                    name: format!("S{i:04}"),
                    rate_per_sec: rate,
                    start_price: rng.gen_range(10.0..500.0),
                    drift,
                    volatility,
                }
            })
            .collect();
        StockConfig {
            symbols,
            duration_ms,
            seed: seed.wrapping_add(0x5EED),
        }
    }
}

/// Generates stock streams and registers their event types.
pub struct StockStreamGenerator;

/// Result of stream generation.
pub struct GeneratedStream {
    /// The ts-ordered event stream.
    pub stream: EventStream,
    /// Type id per symbol (same order as the config).
    pub type_ids: Vec<TypeId>,
    /// The symbol specs (for analytic statistics).
    pub symbols: Vec<SymbolSpec>,
    /// Number of interleaved partition replicas; 1 for plain generation.
    /// Per-type arrival rates scale linearly with this factor.
    pub replicas: u32,
}

impl StockStreamGenerator {
    /// Registers one event type per symbol in `catalog` and generates the
    /// merged, ts-ordered stream. Each symbol is its own partition (for
    /// partition contiguity).
    pub fn generate(
        config: &StockConfig,
        catalog: &mut Catalog,
    ) -> Result<GeneratedStream, CepError> {
        let mut type_ids = Vec::with_capacity(config.symbols.len());
        for s in &config.symbols {
            let id = catalog.add_type(
                &s.name,
                &[
                    ("price", ValueKind::Float),
                    ("difference", ValueKind::Float),
                ],
            )?;
            type_ids.push(id);
        }
        let mut builder = StreamBuilder::new();
        for (i, event) in synthesize(config, config.seed, &type_ids) {
            builder.push_partitioned(event, i as u32);
        }
        Ok(GeneratedStream {
            stream: builder.build(),
            type_ids,
            symbols: config.symbols.clone(),
            replicas: 1,
        })
    }

    /// Generates `replicas` statistically identical copies of the configured
    /// stock stream (same symbol specs, decorrelated seeds), interleaves
    /// them by timestamp, and tags every event with its replica: partition
    /// id and a third `replica` attribute ([`ATTR_REPLICA`]).
    ///
    /// This is the substrate for sharded evaluation experiments: each
    /// replica is an independent sub-market, so a query whose predicates
    /// equate `replica` across all positions (or that runs under partition
    /// contiguity) is *partition-local* — every match lies inside one
    /// replica — and a partition-routed sharded run detects exactly the
    /// single-threaded match set, for any shard count.
    pub fn generate_replicated(
        config: &StockConfig,
        replicas: u32,
        catalog: &mut Catalog,
    ) -> Result<GeneratedStream, CepError> {
        assert!(replicas >= 1, "need at least one replica");
        let mut type_ids = Vec::with_capacity(config.symbols.len());
        for s in &config.symbols {
            let id = catalog.add_type(
                &s.name,
                &[
                    ("price", ValueKind::Float),
                    ("difference", ValueKind::Float),
                    ("replica", ValueKind::Int),
                ],
            )?;
            type_ids.push(id);
        }
        // Tagged events from every replica, concatenated in replica order,
        // then stably sorted: within one replica the synthesized order is
        // preserved, and equal-ts events across replicas order by replica.
        let mut tagged: Vec<(u32, Event)> = Vec::new();
        for r in 0..replicas {
            let seed = config
                .seed
                .wrapping_add((r as u64 + 1).wrapping_mul(0x9E3779B97F4A7C15));
            for (_, mut event) in synthesize(config, seed, &type_ids) {
                event.attrs.push(Value::Int(r as i64));
                tagged.push((r, event));
            }
        }
        tagged.sort_by_key(|(_, e)| e.ts);
        let mut builder = StreamBuilder::new();
        for (r, event) in tagged {
            builder.push_partitioned(event, r);
        }
        Ok(GeneratedStream {
            stream: builder.build(),
            type_ids,
            symbols: config.symbols.clone(),
            replicas,
        })
    }

    /// Generates a **cross-key** stock stream: every update carries a
    /// third `account` attribute ([`ATTR_ACCOUNT`]) drawn uniformly from
    /// `0..accounts`, while the stream stays partitioned by *symbol* (as
    /// in [`StockStreamGenerator::generate`]).
    ///
    /// The correlation attribute therefore differs from the partition
    /// attribute: a query equating `account` across positions cannot be
    /// served exactly by partition or single-attribute hash routing (an
    /// account's events are spread over every symbol partition) — it is
    /// the substrate for replicate-join sharding experiments, where
    /// account-keyed types are hashed on [`ATTR_ACCOUNT`] and unkeyed
    /// types are broadcast.
    pub fn generate_cross_key(
        config: &StockConfig,
        accounts: u32,
        catalog: &mut Catalog,
    ) -> Result<GeneratedStream, CepError> {
        assert!(accounts >= 1, "need at least one account");
        let mut type_ids = Vec::with_capacity(config.symbols.len());
        for s in &config.symbols {
            let id = catalog.add_type(
                &s.name,
                &[
                    ("price", ValueKind::Float),
                    ("difference", ValueKind::Float),
                    ("account", ValueKind::Int),
                ],
            )?;
            type_ids.push(id);
        }
        let mut rng = StdRng::seed_from_u64(config.seed.wrapping_add(0xACC0));
        let mut builder = StreamBuilder::new();
        for (i, mut event) in synthesize(config, config.seed, &type_ids) {
            event
                .attrs
                .push(Value::Int(rng.gen_range(0..accounts as i64)));
            builder.push_partitioned(event, i as u32);
        }
        Ok(GeneratedStream {
            stream: builder.build(),
            type_ids,
            symbols: config.symbols.clone(),
            replicas: 1,
        })
    }
}

/// Synthesizes one stock stream: Poisson arrivals per symbol merged by
/// timestamp, with a Gaussian price-difference walk per symbol. Returns
/// `(symbol index, event)` pairs in `ts` order, without stream coordinates;
/// events carry the `(price, difference)` attributes only (the caller
/// appends extras).
pub(crate) fn synthesize(
    config: &StockConfig,
    seed: u64,
    type_ids: &[TypeId],
) -> Vec<(usize, Event)> {
    let mut rng = StdRng::seed_from_u64(seed);
    // Draw all arrivals, then merge by timestamp.
    let mut arrivals: Vec<(u64, usize)> = Vec::new();
    for (i, s) in config.symbols.iter().enumerate() {
        let rate_ms = s.rate_per_ms();
        if rate_ms <= 0.0 {
            continue;
        }
        let mut t = 0.0f64;
        loop {
            // Exponential inter-arrival via inverse transform.
            let u: f64 = rng.gen_range(f64::EPSILON..1.0);
            t += -u.ln() / rate_ms;
            if t >= config.duration_ms as f64 {
                break;
            }
            arrivals.push((t as u64, i));
        }
    }
    arrivals.sort_unstable();
    // Gaussian walk per symbol (Box–Muller).
    let mut prices: Vec<f64> = config.symbols.iter().map(|s| s.start_price).collect();
    let mut spare: Option<f64> = None;
    let mut next_gauss = |rng: &mut StdRng| -> f64 {
        if let Some(z) = spare.take() {
            return z;
        }
        let u1: f64 = rng.gen_range(f64::EPSILON..1.0);
        let u2: f64 = rng.gen_range(0.0..1.0);
        let r = (-2.0 * u1.ln()).sqrt();
        let theta = 2.0 * std::f64::consts::PI * u2;
        spare = Some(r * theta.sin());
        r * theta.cos()
    };
    arrivals
        .into_iter()
        .map(|(ts, i)| {
            let spec = &config.symbols[i];
            let diff = spec.drift + spec.volatility * next_gauss(&mut rng);
            prices[i] = (prices[i] + diff).max(0.01);
            let event = Event::new(
                type_ids[i],
                ts,
                vec![Value::Float(prices[i]), Value::Float(diff)],
            );
            (i, event)
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use cep_core::stats::MeasuredStats;

    fn small_config() -> StockConfig {
        StockConfig {
            symbols: vec![
                SymbolSpec {
                    name: "AAA".into(),
                    rate_per_sec: 20.0,
                    start_price: 100.0,
                    drift: 0.5,
                    volatility: 1.0,
                },
                SymbolSpec {
                    name: "BBB".into(),
                    rate_per_sec: 5.0,
                    start_price: 50.0,
                    drift: -0.5,
                    volatility: 1.0,
                },
            ],
            duration_ms: 60_000,
            seed: 7,
        }
    }

    #[test]
    fn stream_is_ordered_and_typed() {
        let mut cat = Catalog::new();
        let g = StockStreamGenerator::generate(&small_config(), &mut cat).unwrap();
        assert_eq!(cat.len(), 2);
        assert!(!g.stream.is_empty());
        for w in g.stream.windows(2) {
            assert!(w[0].ts <= w[1].ts);
            assert!(w[0].seq < w[1].seq);
        }
        // Every event has price + difference.
        assert!(g.stream.iter().all(|e| e.attrs.len() == 2));
    }

    #[test]
    fn measured_rates_match_configuration() {
        let mut cat = Catalog::new();
        let g = StockStreamGenerator::generate(&small_config(), &mut cat).unwrap();
        let m = MeasuredStats::measure(&g.stream);
        // 20/s = 0.02/ms; allow Poisson noise.
        let r0 = m.rate(g.type_ids[0]);
        let r1 = m.rate(g.type_ids[1]);
        assert!((r0 - 0.020).abs() < 0.004, "r0 = {r0}");
        assert!((r1 - 0.005).abs() < 0.002, "r1 = {r1}");
    }

    #[test]
    fn generation_is_deterministic_per_seed() {
        let mut c1 = Catalog::new();
        let mut c2 = Catalog::new();
        let g1 = StockStreamGenerator::generate(&small_config(), &mut c1).unwrap();
        let g2 = StockStreamGenerator::generate(&small_config(), &mut c2).unwrap();
        assert_eq!(g1.stream.len(), g2.stream.len());
        assert_eq!(g1.stream[5].ts, g2.stream[5].ts);
        assert_eq!(g1.stream[5].attrs, g2.stream[5].attrs);
    }

    #[test]
    fn analytic_selectivity_matches_empirical() {
        let mut cat = Catalog::new();
        let cfg = small_config();
        let g = StockStreamGenerator::generate(&cfg, &mut cat).unwrap();
        // Empirical P(a.diff < b.diff) over sampled pairs.
        let a: Vec<f64> = g
            .stream
            .iter()
            .filter(|e| e.type_id == g.type_ids[0])
            .filter_map(|e| e.attrs[ATTR_DIFFERENCE].as_f64())
            .collect();
        let b: Vec<f64> = g
            .stream
            .iter()
            .filter(|e| e.type_id == g.type_ids[1])
            .filter_map(|e| e.attrs[ATTR_DIFFERENCE].as_f64())
            .collect();
        let mut hits = 0usize;
        let mut total = 0usize;
        for (i, &x) in a.iter().enumerate().step_by(3) {
            let y = b[i % b.len()];
            total += 1;
            if x < y {
                hits += 1;
            }
        }
        let empirical = hits as f64 / total as f64;
        let analytic = cfg.symbols[0].lt_selectivity(&cfg.symbols[1]);
        assert!(
            (empirical - analytic).abs() < 0.06,
            "empirical {empirical} vs analytic {analytic}"
        );
    }

    #[test]
    fn nasdaq_like_spans_selectivities() {
        let cfg = StockConfig::nasdaq_like(30, 1000, 1.0, 42);
        assert_eq!(cfg.symbols.len(), 30);
        let mut lo = f64::INFINITY;
        let mut hi = 0.0f64;
        for i in 0..cfg.symbols.len() {
            for j in 0..cfg.symbols.len() {
                if i != j {
                    let s = cfg.symbols[i].lt_selectivity(&cfg.symbols[j]);
                    lo = lo.min(s);
                    hi = hi.max(s);
                }
            }
        }
        // Should roughly cover the paper's 0.002..0.88 spread.
        assert!(lo < 0.05, "min selectivity {lo}");
        assert!(hi > 0.8, "max selectivity {hi}");
    }

    #[test]
    fn replicated_stream_interleaves_partitions() {
        let mut cat = Catalog::new();
        let g = StockStreamGenerator::generate_replicated(&small_config(), 4, &mut cat).unwrap();
        assert_eq!(g.replicas, 4);
        // Schema gained the replica attribute.
        assert!(g.stream.iter().all(|e| e.attrs.len() == 3));
        // Partition == replica attribute, and all four replicas are present.
        let mut seen = std::collections::HashSet::new();
        for e in &g.stream {
            assert_eq!(e.attrs[ATTR_REPLICA], Value::Int(e.partition as i64));
            seen.insert(e.partition);
        }
        assert_eq!(seen.len(), 4);
        // Globally ts-ordered with monotone seq.
        for w in g.stream.windows(2) {
            assert!(w[0].ts <= w[1].ts);
            assert!(w[0].seq < w[1].seq);
        }
        // Replicas are decorrelated copies of the same process: roughly
        // equal event counts, not identical streams.
        let count = |p: u32| g.stream.iter().filter(|e| e.partition == p).count();
        let (c0, c1) = (count(0), count(1));
        assert!(c0 > 0 && c1 > 0);
        assert!((c0 as f64 - c1 as f64).abs() < 0.5 * c0 as f64);
    }

    #[test]
    fn replicated_generation_is_deterministic_per_seed() {
        let mut c1 = Catalog::new();
        let mut c2 = Catalog::new();
        let g1 = StockStreamGenerator::generate_replicated(&small_config(), 3, &mut c1).unwrap();
        let g2 = StockStreamGenerator::generate_replicated(&small_config(), 3, &mut c2).unwrap();
        assert_eq!(g1.stream.len(), g2.stream.len());
        for (a, b) in g1.stream.iter().zip(&g2.stream) {
            assert_eq!(a.ts, b.ts);
            assert_eq!(a.partition, b.partition);
            assert_eq!(a.attrs, b.attrs);
        }
    }

    #[test]
    fn cross_key_stream_decouples_account_from_partition() {
        let mut cat = Catalog::new();
        let g = StockStreamGenerator::generate_cross_key(&small_config(), 8, &mut cat).unwrap();
        // Schema gained the account attribute; partition is the symbol.
        assert!(g.stream.iter().all(|e| e.attrs.len() == 3));
        let account = |e: &Event| match e.attrs[ATTR_ACCOUNT] {
            Value::Int(a) => a,
            _ => panic!("account must be an Int"),
        };
        let mut accounts = std::collections::HashSet::new();
        let mut cross = 0usize;
        for e in &g.stream {
            let a = account(e);
            assert!((0..8).contains(&a));
            accounts.insert(a);
            if a != e.partition as i64 {
                cross += 1;
            }
        }
        assert_eq!(accounts.len(), 8, "all accounts must appear");
        assert!(
            cross > g.stream.len() / 2,
            "correlation attribute must not mirror the partition attribute"
        );
        // Each account's events span several symbol partitions.
        let parts_of = |a: i64| {
            g.stream
                .iter()
                .filter(|e| account(e) == a)
                .map(|e| e.partition)
                .collect::<std::collections::HashSet<_>>()
        };
        assert_eq!(parts_of(0).len(), 2, "both symbols carry account 0");
        // Ts-ordered with monotone seq, like every generated stream.
        for w in g.stream.windows(2) {
            assert!(w[0].ts <= w[1].ts);
            assert!(w[0].seq < w[1].seq);
        }
    }

    #[test]
    fn cross_key_generation_is_deterministic_per_seed() {
        let mut c1 = Catalog::new();
        let mut c2 = Catalog::new();
        let g1 = StockStreamGenerator::generate_cross_key(&small_config(), 4, &mut c1).unwrap();
        let g2 = StockStreamGenerator::generate_cross_key(&small_config(), 4, &mut c2).unwrap();
        assert_eq!(g1.stream.len(), g2.stream.len());
        for (a, b) in g1.stream.iter().zip(&g2.stream) {
            assert_eq!(a.ts, b.ts);
            assert_eq!(a.partition, b.partition);
            assert_eq!(a.attrs, b.attrs);
        }
    }

    #[test]
    fn normal_cdf_sanity() {
        assert!((normal_cdf(0.0) - 0.5).abs() < 1e-7);
        assert!((normal_cdf(1.96) - 0.975).abs() < 1e-3);
        assert!((normal_cdf(-1.96) - 0.025).abs() < 1e-3);
    }
}
