//! Windowed per-type event store with equality-key posting lists.
//!
//! The [`WindowIndex`] is the only state a [`crate::DeltaEngine`] keeps per
//! window (besides parked negation matches): each arriving event is one
//! *insert delta* (append to its type's deque plus one posting-list append
//! per indexed join attribute), and each expiration is the *inverse delta*
//! (pop the same entries back off the fronts). Both are amortized O(1) per
//! event per indexed attribute, because arrival order is timestamp order —
//! the expiring event is always at the front of every list it is in.

use cep_core::event::{EventRef, Timestamp, TypeId};
use cep_core::value::Value;
use std::collections::{HashMap, VecDeque};

/// Hashable canonical form of a [`Value`] for equality-join probes.
///
/// Numeric values hash by their `f64` image (with `-0.0` folded into
/// `+0.0`) so `Int(1)` and `Float(1.0)` land in the same bucket, matching
/// [`cep_core::value::Value::partial_cmp_value`]'s cross-kind equality. `NaN` has
/// no key at all — `==` never holds for it, so an event with a `NaN` join
/// attribute is simply not indexed under that attribute, and a probe *by*
/// `NaN` finds nothing. Collisions are harmless (probe results are
/// re-checked by the full predicate evaluator); missed candidates are
/// impossible by construction.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub enum IndexKey {
    /// Canonicalized bit pattern of the value's `f64` image.
    Num(u64),
    /// Boolean values hash as themselves.
    Bool(bool),
    /// String values hash by content.
    Str(std::sync::Arc<str>),
}

/// The canonical equality key of `value`, or `None` when no event can ever
/// compare `==` to it (`NaN`).
pub fn index_key(value: &Value) -> Option<IndexKey> {
    fn canon(f: f64) -> u64 {
        if f == 0.0 {
            0.0f64.to_bits()
        } else {
            f.to_bits()
        }
    }
    match value {
        Value::Int(i) => Some(IndexKey::Num(canon(*i as f64))),
        Value::Float(f) => {
            if f.is_nan() {
                None
            } else {
                Some(IndexKey::Num(canon(*f)))
            }
        }
        Value::Bool(b) => Some(IndexKey::Bool(*b)),
        Value::Str(s) => Some(IndexKey::Str(s.clone())),
    }
}

/// Per-type windowed event store plus `(type, attr) → key → events`
/// posting lists over the pattern's equality-join attributes.
///
/// All deques hold events in arrival order, which the engine's stream
/// contract guarantees is non-decreasing timestamp (and strictly
/// increasing serial-number) order — so range scans are binary-searchable
/// and expiration only ever pops fronts.
#[derive(Debug, Default)]
pub struct WindowIndex {
    store: HashMap<TypeId, VecDeque<EventRef>>,
    postings: HashMap<(TypeId, usize), HashMap<IndexKey, VecDeque<EventRef>>>,
    /// Which attributes are indexed per type (deduplicated).
    indexed: HashMap<TypeId, Vec<usize>>,
    total: usize,
}

impl WindowIndex {
    /// Creates an index over the given `(type, attr)` equality-join keys.
    pub fn new(keys: impl IntoIterator<Item = (TypeId, usize)>) -> WindowIndex {
        let mut indexed: HashMap<TypeId, Vec<usize>> = HashMap::new();
        for (ty, attr) in keys {
            let attrs = indexed.entry(ty).or_default();
            if !attrs.contains(&attr) {
                attrs.push(attr);
            }
        }
        WindowIndex {
            indexed,
            ..WindowIndex::default()
        }
    }

    /// Inserts `event` (the positive delta). Returns the number of list
    /// appends performed (1 for the store + 1 per indexed attribute with a
    /// hashable value).
    pub fn insert(&mut self, event: EventRef) -> u64 {
        let ty = event.type_id;
        let mut ops = 1;
        if let Some(attrs) = self.indexed.get(&ty) {
            for &attr in attrs {
                if let Some(key) = event.attr(attr).and_then(index_key) {
                    self.postings
                        .entry((ty, attr))
                        .or_default()
                        .entry(key)
                        .or_default()
                        .push_back(event.clone());
                    ops += 1;
                }
            }
        }
        self.store.entry(ty).or_default().push_back(event);
        self.total += 1;
        ops
    }

    /// Expires every event with `ts + window < watermark` (the inverse
    /// delta — events with `ts + window == watermark` survive, matching
    /// [`cep_core::buffer::TypeBuffers::prune`]). Returns the number of
    /// list removals performed.
    pub fn expire(&mut self, watermark: Timestamp, window: u64) -> u64 {
        let mut ops = 0;
        for (&ty, deque) in &mut self.store {
            while let Some(front) = deque.front() {
                if front.ts + window >= watermark {
                    break;
                }
                let ev = deque.pop_front().expect("checked front");
                self.total -= 1;
                ops += 1;
                if let Some(attrs) = self.indexed.get(&ty) {
                    for &attr in attrs {
                        if let Some(key) = ev.attr(attr).and_then(index_key) {
                            let lists = self
                                .postings
                                .get_mut(&(ty, attr))
                                .expect("indexed attr has postings");
                            let list = lists.get_mut(&key).expect("inserted under this key");
                            let popped = list.pop_front().expect("non-empty posting");
                            debug_assert_eq!(
                                popped.seq, ev.seq,
                                "posting lists must expire in arrival order"
                            );
                            ops += 1;
                            if list.is_empty() {
                                lists.remove(&key);
                            }
                        }
                    }
                }
            }
        }
        ops
    }

    /// The posting list for `(ty, attr) == key`, in arrival order.
    pub fn posting(&self, ty: TypeId, attr: usize, key: &IndexKey) -> Option<&VecDeque<EventRef>> {
        self.postings.get(&(ty, attr)).and_then(|m| m.get(key))
    }

    /// Length of the posting list for `(ty, attr) == key` (0 when absent).
    pub fn posting_len(&self, ty: TypeId, attr: usize, key: &IndexKey) -> usize {
        self.posting(ty, attr, key).map_or(0, |d| d.len())
    }

    /// All live events of `ty`, in arrival order.
    pub fn of_type(&self, ty: TypeId) -> Option<&VecDeque<EventRef>> {
        self.store.get(&ty)
    }

    /// Number of live events of `ty`.
    pub fn type_len(&self, ty: TypeId) -> usize {
        self.store.get(&ty).map_or(0, |d| d.len())
    }

    /// Total live events across all types.
    pub fn len(&self) -> usize {
        self.total
    }

    /// Whether no events are live.
    pub fn is_empty(&self) -> bool {
        self.total == 0
    }
}

/// Iterates the events of a ts-ordered deque whose timestamps fall in
/// `[lo, hi]`, locating the boundaries by binary search on both halves of
/// the deque's ring buffer.
pub fn ts_range(
    deque: &VecDeque<EventRef>,
    lo: Timestamp,
    hi: Timestamp,
) -> impl Iterator<Item = &EventRef> {
    let (a, b) = deque.as_slices();
    slice_range(a, lo, hi).chain(slice_range(b, lo, hi))
}

fn slice_range(slice: &[EventRef], lo: Timestamp, hi: Timestamp) -> std::slice::Iter<'_, EventRef> {
    let start = slice.partition_point(|e| e.ts < lo);
    let end = slice.partition_point(|e| e.ts <= hi);
    slice[start..end.max(start)].iter()
}

#[cfg(test)]
mod tests {
    use super::*;
    use cep_core::event::Event;

    fn ev(tid: u32, ts: u64, seq: u64, x: i64) -> EventRef {
        let mut e = Event::new(TypeId(tid), ts, vec![Value::Int(x)]);
        e.seq = seq;
        std::sync::Arc::new(e)
    }

    #[test]
    fn numeric_keys_unify_int_and_float() {
        assert_eq!(
            index_key(&Value::Int(1)),
            index_key(&Value::Float(1.0)),
            "Int/Float equality must share a bucket"
        );
        assert_eq!(index_key(&Value::Float(-0.0)), index_key(&Value::Int(0)));
        assert_eq!(index_key(&Value::Float(f64::NAN)), None);
        assert_ne!(index_key(&Value::Bool(true)), index_key(&Value::Int(1)));
    }

    #[test]
    fn insert_probe_expire_roundtrip() {
        let mut idx = WindowIndex::new([(TypeId(0), 0)]);
        idx.insert(ev(0, 1, 0, 7));
        idx.insert(ev(0, 2, 1, 7));
        idx.insert(ev(0, 3, 2, 8));
        assert_eq!(idx.len(), 3);
        let key = index_key(&Value::Int(7)).unwrap();
        assert_eq!(idx.posting_len(TypeId(0), 0, &key), 2);
        // Expire ts=1 (window 5, watermark 7: 1 + 5 < 7).
        idx.expire(7, 5);
        assert_eq!(idx.len(), 2);
        assert_eq!(idx.posting_len(TypeId(0), 0, &key), 1);
        // Boundary event (ts + window == watermark) survives.
        idx.expire(7, 5);
        assert_eq!(idx.len(), 2);
        // Expire everything; empty keys are dropped.
        idx.expire(100, 5);
        assert!(idx.is_empty());
        assert_eq!(idx.posting_len(TypeId(0), 0, &key), 0);
    }

    #[test]
    fn ts_range_respects_bounds_across_ring_wrap() {
        let mut d: VecDeque<EventRef> = VecDeque::with_capacity(4);
        // Force a wrapped ring: push, pop, push more.
        d.push_back(ev(0, 1, 0, 0));
        d.push_back(ev(0, 2, 1, 0));
        d.pop_front();
        d.push_back(ev(0, 3, 2, 0));
        d.push_back(ev(0, 4, 3, 0));
        let ts: Vec<u64> = ts_range(&d, 2, 3).map(|e| e.ts).collect();
        assert_eq!(ts, vec![2, 3]);
        assert_eq!(ts_range(&d, 5, 10).count(), 0);
        assert_eq!(ts_range(&d, 0, 10).count(), 3);
    }
}
