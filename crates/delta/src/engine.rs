//! The delta-indexed evaluation engine.

use crate::index::{index_key, ts_range, IndexKey, WindowIndex};
use cep_core::buffer::TypeBuffers;
use cep_core::compile::CompiledPattern;
use cep_core::compiled::PredicateProgram;
use cep_core::engine::{Engine, EngineConfig};
use cep_core::event::{EventRef, Timestamp};
use cep_core::instance::{compatible_with, Instance};
use cep_core::matches::{validate_match, Match};
use cep_core::metrics::EngineMetrics;
use cep_core::negation::DeferredStore;
use cep_core::predicate::{CmpOp, Operand};
use std::collections::HashSet;
use std::collections::VecDeque;
use std::sync::Arc;
use std::time::Instant;

/// An equality join between two positive elements, extracted from a `==`
/// predicate: candidates for the owning element can be found by probing
/// the `(type, attr)` posting list with the key read from the partner's
/// bound event (attribute `other_attr` of element `other`).
#[derive(Debug, Clone)]
struct EqJoin {
    /// Partner element index.
    other: usize,
    /// Attribute of the owning element (the probe's posting-list side).
    attr: usize,
    /// Attribute of the partner element (the probe key's side).
    other_attr: usize,
}

/// Equality joins per element of `cp` (symmetric: a `a.x == b.y`
/// predicate yields one entry under `a` and one under `b`).
fn eq_joins_of(cp: &CompiledPattern) -> Vec<Vec<EqJoin>> {
    let mut joins = vec![Vec::new(); cp.n()];
    for p in &cp.predicates {
        if p.op != CmpOp::Eq {
            continue;
        }
        let (
            Operand::Attr {
                position: pa,
                attr: aa,
            },
            Operand::Attr {
                position: pb,
                attr: ab,
            },
        ) = (&p.left, &p.right)
        else {
            continue;
        };
        if pa == pb {
            continue;
        }
        // Negated positions have no element index; their predicates are
        // enforced by the deferred-negation machinery, not the index.
        let (Some(i), Some(j)) = (cp.elem_index(*pa), cp.elem_index(*pb)) else {
            continue;
        };
        joins[i].push(EqJoin {
            other: j,
            attr: *aa,
            other_attr: *ab,
        });
        joins[j].push(EqJoin {
            other: i,
            attr: *ab,
            other_attr: *aa,
        });
    }
    joins
}

/// The candidate source chosen for one element at one search node.
/// (A third case — an equality join against an unkeyable partner value —
/// returns early from [`DeltaEngine::candidates_for`]: `==` can never
/// hold, so the pool is empty.)
enum Pool {
    /// Probe the `(type, attr)` posting list with `key`.
    Probe(usize, IndexKey),
    /// Scan the element type's whole windowed store.
    Scan,
}

/// The delta-indexed (non-materializing) evaluation engine.
///
/// Semantically a drop-in third backend next to the NFA and tree engines:
/// byte-identical match output (signatures *and* `emitted_at`) to the
/// naive oracle under the three exact selection strategies. Instead of
/// materializing partial matches it keeps only a [`WindowIndex`] of live
/// events — per-type deques plus equality-key posting lists — and
/// enumerates the matches completed by each arriving event on demand, by
/// a backtracking search that picks the cheapest index probe first.
///
/// Under `SkipTillNextMatch` (the only non-exact strategy) the engine is
/// greedy like the NFA/tree engines, but its enumeration order may pick a
/// different witness than the oracle's, so only the three exact
/// strategies carry the byte-identity guarantee.
pub struct DeltaEngine {
    cp: CompiledPattern,
    cfg: EngineConfig,
    program: Option<Arc<PredicateProgram>>,
    eq_joins: Vec<Vec<EqJoin>>,
    index: WindowIndex,
    /// Negated-type events for the anchored anti-join scan performed by
    /// [`DeferredStore::admit`]; pruned in lockstep with the index.
    neg_buffers: TypeBuffers,
    deferred: DeferredStore,
    consumed: HashSet<u64>,
    watermark: Timestamp,
    metrics: EngineMetrics,
}

impl DeltaEngine {
    /// Creates a delta engine for one compiled pattern branch. Unlike the
    /// NFA/tree constructors this is infallible: the delta engine needs no
    /// evaluation plan — its join order is chosen per search node from
    /// live posting-list sizes.
    pub fn new(cp: CompiledPattern, cfg: EngineConfig) -> DeltaEngine {
        DeltaEngine::with_program(cp, cfg, None)
    }

    /// [`DeltaEngine::new`] with an optional pre-lowered
    /// [`PredicateProgram`] (e.g. from a shared
    /// [`cep_core::compiled::PlanCache`]). The config wins: with
    /// [`EngineConfig::compiled_predicates`] off, any provided program is
    /// ignored; with it on and no program provided, one is compiled here.
    pub fn with_program(
        cp: CompiledPattern,
        cfg: EngineConfig,
        program: Option<Arc<PredicateProgram>>,
    ) -> DeltaEngine {
        let program = if cfg.compiled_predicates {
            program.or_else(|| Some(Arc::new(PredicateProgram::compile(&cp))))
        } else {
            None
        };
        let eq_joins = eq_joins_of(&cp);
        let keys = eq_joins.iter().enumerate().flat_map(|(elem, joins)| {
            let ty = cp.elements[elem].event_type;
            joins.iter().map(move |j| (ty, j.attr))
        });
        let index = WindowIndex::new(keys);
        DeltaEngine {
            cp,
            cfg,
            program,
            eq_joins,
            index,
            neg_buffers: TypeBuffers::new(),
            deferred: DeferredStore::new(),
            consumed: HashSet::new(),
            watermark: 0,
            metrics: EngineMetrics::new(),
        }
    }

    /// The compiled predicate program in use (`None` when running
    /// interpreted).
    pub fn program(&self) -> Option<&Arc<PredicateProgram>> {
        self.program.as_ref()
    }

    /// The compiled pattern this engine evaluates.
    pub fn pattern(&self) -> &CompiledPattern {
        &self.cp
    }

    fn emit(&mut self, m: Match, out: &mut Vec<Match>) {
        if self.cp.strategy.consumes() {
            if m.events().any(|e| self.consumed.contains(&e.seq)) {
                return;
            }
            for e in m.events() {
                self.consumed.insert(e.seq);
            }
        }
        self.metrics.matches_emitted += 1;
        out.push(m);
    }

    fn release_deferred(&mut self, watermark: Timestamp, out: &mut Vec<Match>) {
        let mut ready = Vec::new();
        self.deferred.drain_ready(watermark, &mut ready);
        for m in ready {
            self.emit(m, out);
        }
    }

    /// Enumerates all matches whose latest event is `newest`, then routes
    /// them through negation admission. The search pins `newest` at each
    /// element of its type in turn (every match contains it at exactly one
    /// element, so the pins partition the result set) and completes the
    /// remaining elements by index probes.
    fn enumerate(&mut self, newest: &EventRef, out: &mut Vec<Match>) {
        let t0 = Instant::now();
        let mut found = Vec::new();
        let pins: Vec<usize> = self.cp.elements_of_type(newest.type_id).collect();
        for j in pins {
            let inst = Instance::empty(self.cp.n());
            if self.cp.elements[j].kleene {
                self.pinned_kleene(j, newest, &inst, &mut found);
            } else if compatible_with(
                &self.cp,
                self.program.as_deref(),
                &inst,
                j,
                newest,
                &self.consumed,
                &mut self.metrics,
            ) {
                let inst = inst.with_single(j, newest.clone());
                self.extend(newest, &inst, &mut found);
            }
        }
        self.metrics
            .enumeration_ns
            .record(t0.elapsed().as_nanos() as u64);
        for m in found {
            if let Some(m) = self
                .deferred
                .admit(&self.cp, m, self.watermark, &self.neg_buffers)
            {
                self.emit(m, out);
            }
        }
    }

    /// Pins `newest` inside the Kleene accumulator of element `j`: every
    /// subset bound at `j` must contain it, so the search enumerates
    /// subsets of *older* candidates (in serial order, like the oracle)
    /// and closes each — including the empty one — with `newest`.
    fn pinned_kleene(
        &mut self,
        j: usize,
        newest: &EventRef,
        inst: &Instance,
        found: &mut Vec<Match>,
    ) {
        if self.cfg.max_kleene_events == 0 {
            return;
        }
        let candidates: Vec<EventRef> = self
            .candidates_for(j, inst)
            .into_iter()
            .filter(|e| e.seq < newest.seq)
            .collect();
        self.pinned_kleene_rec(j, newest, &candidates, 0, inst, 0, found);
    }

    #[allow(clippy::too_many_arguments)]
    fn pinned_kleene_rec(
        &mut self,
        j: usize,
        newest: &EventRef,
        candidates: &[EventRef],
        from: usize,
        inst: &Instance,
        depth: usize,
        found: &mut Vec<Match>,
    ) {
        if compatible_with(
            &self.cp,
            self.program.as_deref(),
            inst,
            j,
            newest,
            &self.consumed,
            &mut self.metrics,
        ) {
            let closed = inst.with_kleene(j, newest.clone());
            self.extend(newest, &closed, found);
        }
        // `newest` always occupies one slot, so older members may fill at
        // most `max_kleene_events - 1`.
        if depth + 1 >= self.cfg.max_kleene_events {
            return;
        }
        for i in from..candidates.len() {
            if !compatible_with(
                &self.cp,
                self.program.as_deref(),
                inst,
                j,
                &candidates[i],
                &self.consumed,
                &mut self.metrics,
            ) {
                continue;
            }
            let grown = inst.with_kleene(j, candidates[i].clone());
            self.pinned_kleene_rec(j, newest, candidates, i + 1, &grown, depth + 1, found);
        }
    }

    /// Binds the remaining elements of `inst`, cheapest live pool first;
    /// emits into `found` at full assignments that validate.
    fn extend(&mut self, newest: &EventRef, inst: &Instance, found: &mut Vec<Match>) {
        let Some(elem) = self.next_element(inst) else {
            let m = Match {
                bindings: inst
                    .bindings
                    .iter()
                    .enumerate()
                    .map(|(i, b)| {
                        (
                            self.cp.elements[i].position,
                            b.clone().expect("all elements bound"),
                        )
                    })
                    .collect(),
                last_ts: newest.ts,
                emitted_at: newest.ts,
            };
            if validate_match(&self.cp, &m).is_ok() {
                found.push(m);
            }
            return;
        };
        let candidates = self.candidates_for(elem, inst);
        if self.cp.elements[elem].kleene {
            self.kleene_subsets(elem, newest, &candidates, 0, inst, 0, found);
        } else {
            for c in candidates {
                if !compatible_with(
                    &self.cp,
                    self.program.as_deref(),
                    inst,
                    elem,
                    &c,
                    &self.consumed,
                    &mut self.metrics,
                ) {
                    continue;
                }
                let bound = inst.with_single(elem, c);
                self.extend(newest, &bound, found);
            }
        }
    }

    /// Enumerates non-empty, capped subsets of `candidates` (in serial
    /// order, mirroring the oracle) as the Kleene accumulator of `elem`,
    /// recursing into [`DeltaEngine::extend`] for each.
    #[allow(clippy::too_many_arguments)]
    fn kleene_subsets(
        &mut self,
        elem: usize,
        newest: &EventRef,
        candidates: &[EventRef],
        from: usize,
        inst: &Instance,
        depth: usize,
        found: &mut Vec<Match>,
    ) {
        if depth > 0 {
            self.extend(newest, inst, found);
        }
        if depth >= self.cfg.max_kleene_events {
            return;
        }
        for i in from..candidates.len() {
            if !compatible_with(
                &self.cp,
                self.program.as_deref(),
                inst,
                elem,
                &candidates[i],
                &self.consumed,
                &mut self.metrics,
            ) {
                continue;
            }
            let grown = inst.with_kleene(elem, candidates[i].clone());
            self.kleene_subsets(elem, newest, candidates, i + 1, &grown, depth + 1, found);
        }
    }

    /// The unbound element with the smallest live candidate pool (ties by
    /// element index), or `None` when every element is bound.
    fn next_element(&self, inst: &Instance) -> Option<usize> {
        let mut best: Option<(usize, usize)> = None;
        for elem in 0..self.cp.n() {
            if inst.bindings[elem].is_some() {
                continue;
            }
            let est = self.pool_estimate(elem, inst);
            if best.is_none_or(|(b, _)| est < b) {
                best = Some((est, elem));
            }
        }
        best.map(|(_, elem)| elem)
    }

    /// Upper bound on `elem`'s candidate pool: the smallest posting list
    /// reachable through an equality join to a bound partner, else the
    /// whole type store (0 when a partner's key is unkeyable — `==` can
    /// never hold, so the branch is dead).
    fn pool_estimate(&self, elem: usize, inst: &Instance) -> usize {
        let ty = self.cp.elements[elem].event_type;
        let mut best = self.index.type_len(ty);
        for join in &self.eq_joins[elem] {
            let Some(b) = &inst.bindings[join.other] else {
                continue;
            };
            let partner = b.events().next().expect("bindings are non-empty");
            match partner.attr(join.other_attr).and_then(index_key) {
                None => return 0,
                Some(key) => best = best.min(self.index.posting_len(ty, join.attr, &key)),
            }
        }
        best
    }

    /// Materializes the candidate pool for `elem` under `inst`: the best
    /// equality-join probe (or full type scan), narrowed to the timestamp
    /// range that window and precedence constraints against the bound
    /// elements allow. A superset of the events `compatible_with` accepts,
    /// so shrinking the pool never loses a match.
    fn candidates_for(&mut self, elem: usize, inst: &Instance) -> Vec<EventRef> {
        let ty = self.cp.elements[elem].event_type;
        // Timestamp bounds: window span against the bound extents, strict
        // precedence against each bound element.
        let (mut lo, mut hi) = if inst.event_count > 0 {
            (
                inst.max_ts.saturating_sub(self.cp.window),
                inst.min_ts.saturating_add(self.cp.window),
            )
        } else {
            (0, Timestamp::MAX)
        };
        for (j, binding) in inst.bindings.iter().enumerate() {
            let Some(binding) = binding else { continue };
            if j == elem {
                continue;
            }
            if self.cp.must_precede(elem, j) {
                let m = binding.min_ts();
                if m == 0 {
                    return Vec::new();
                }
                hi = hi.min(m - 1);
            }
            if self.cp.must_precede(j, elem) {
                lo = lo.max(binding.max_ts().saturating_add(1));
            }
        }
        if lo > hi {
            return Vec::new();
        }
        // Pool: cheapest equality-join probe over bound partners, else scan.
        let mut pool = Pool::Scan;
        let mut pool_len = self.index.type_len(ty);
        for join in &self.eq_joins[elem] {
            let Some(b) = &inst.bindings[join.other] else {
                continue;
            };
            let partner = b.events().next().expect("bindings are non-empty");
            let Some(key) = partner.attr(join.other_attr).and_then(index_key) else {
                // `==` against an unkeyable value (missing attribute or
                // NaN) holds for no event.
                return Vec::new();
            };
            let len = self.index.posting_len(ty, join.attr, &key);
            if len <= pool_len {
                pool = Pool::Probe(join.attr, key);
                pool_len = len;
            }
        }
        let list: Option<&VecDeque<EventRef>> = match &pool {
            Pool::Probe(attr, key) => self.index.posting(ty, *attr, key),
            Pool::Scan => self.index.of_type(ty),
        };
        let out: Vec<EventRef> = match list {
            Some(d) => ts_range(d, lo, hi).cloned().collect(),
            None => Vec::new(),
        };
        if matches!(pool, Pool::Probe(..)) {
            self.metrics.index_probes += 1;
        }
        out
    }
}

impl Engine for DeltaEngine {
    fn process(&mut self, event: &EventRef, out: &mut Vec<Match>) {
        self.metrics.events_processed += 1;
        self.watermark = self.watermark.max(event.ts);
        let watermark = self.watermark;
        self.release_deferred(watermark, out);
        self.deferred.on_event(&self.cp, event);
        // Expire every event: the inverse delta is amortized O(1), and the
        // negation buffer must match the oracle's view exactly.
        let expired = self.index.expire(watermark, self.cp.window);
        self.metrics.delta_updates += expired;
        self.neg_buffers.prune(watermark, self.cp.window);
        if !self.cp.uses_type(event.type_id) {
            return;
        }
        self.metrics.events_relevant += 1;
        let positive = self.cp.elements_of_type(event.type_id).next().is_some();
        if positive {
            let inserted = self.index.insert(event.clone());
            self.metrics.delta_updates += inserted;
        }
        if self.cp.negated_of_type(event.type_id).next().is_some() {
            self.neg_buffers.push(event.clone());
        }
        if positive {
            self.enumerate(event, out);
        }
        self.metrics.record_live(
            self.deferred.len(),
            self.index.len() + self.neg_buffers.len(),
        );
    }

    fn flush(&mut self, out: &mut Vec<Match>) {
        self.release_deferred(Timestamp::MAX, out);
    }

    fn metrics(&self) -> &EngineMetrics {
        &self.metrics
    }

    fn metrics_mut(&mut self) -> &mut EngineMetrics {
        &mut self.metrics
    }

    fn name(&self) -> &'static str {
        "delta"
    }
}
