//! # cep-delta
//!
//! Delta-indexed CEP evaluation: a non-materializing third backend next to
//! the NFA and tree engines, in the style of dynamic query evaluation for
//! theta joins under updates (Idris et al., arXiv:1905.09848).
//!
//! ## Index layout
//!
//! The materializing engines store *partial matches* — binding vectors
//! that grow multiplicatively with window size on correlated streams. The
//! [`DeltaEngine`] stores none. Its only windowed state is a
//! [`WindowIndex`]: one arrival-ordered deque per event type, plus
//! `(type, attr) → key → events` posting lists over the equality-join
//! attributes extracted from the compiled pattern's `==` predicates. Each
//! arriving event is one *delta* — an amortized-O(1) append per list —
//! and each expiration is the inverse delta, popping the same entries
//! back off the list fronts (arrival order is timestamp order, so the
//! expiring event is always at every front).
//!
//! ## Enumeration delay
//!
//! Matches are enumerated on demand when the event completing them
//! arrives: the newest event is pinned at each pattern element of its
//! type, and the remaining elements are bound by a backtracking search
//! that at every node picks the unbound element with the smallest live
//! candidate pool — an equality-join index probe when a bound partner
//! supplies a key, a type scan otherwise — narrowed by binary-searched
//! timestamp ranges from the window and SEQ precedence constraints.
//! Between two reported matches the search backtracks through at most
//! `n` levels whose sibling candidates are pruned by necessary
//! conditions of match validity, so the delay between consecutive
//! results is bounded by the probe work, not by window size. Negation
//! uses the same anchored anti-join machinery as every other backend
//! ([`cep_core::negation::DeferredStore`]) over a dedicated
//! negated-type buffer pruned in lockstep with the index.
//!
//! ## Kleene fallback
//!
//! Kleene closures have no constant-delay enumeration: one pinned event
//! can close exponentially many accumulator subsets. For Kleene elements
//! the search therefore falls back per-branch to the materializing
//! engines' semantics — capped subset enumeration in serial order
//! (`max_kleene_events`), with the pinned event always a member — which
//! keeps output byte-identical to the oracle at the oracle's cost for
//! those branches only.
//!
//! ## Guarantee
//!
//! Under the three exact selection strategies (skip-till-any-match and
//! both contiguity modes), output is byte-identical — signatures *and*
//! `emitted_at` — to the naive oracle and hence to the NFA and tree
//! engines, negation and Kleene included. Under skip-till-next-match the
//! engine is greedy like the others, but enumeration order may choose a
//! different witness set than the oracle, so byte-identity is not
//! guaranteed there.

#![deny(missing_docs)]

mod engine;
mod index;

pub use engine::DeltaEngine;
pub use index::{index_key, ts_range, IndexKey, WindowIndex};

#[cfg(test)]
mod tests {
    use super::*;
    use cep_core::compile::CompiledPattern;
    use cep_core::engine::{run_to_completion, Engine, EngineConfig};
    use cep_core::event::{Event, TypeId};
    use cep_core::matches::{validate_match, Match};
    use cep_core::naive::NaiveEngine;
    use cep_core::pattern::{Pattern, PatternBuilder};
    use cep_core::predicate::{CmpOp, Predicate};
    use cep_core::selection::SelectionStrategy;
    use cep_core::stream::StreamBuilder;
    use cep_core::value::Value;

    fn t(i: u32) -> TypeId {
        TypeId(i)
    }

    fn ev(tid: u32, ts: u64, x: i64) -> Event {
        Event::new(t(tid), ts, vec![Value::Int(x)])
    }

    fn stream(events: Vec<Event>) -> Vec<cep_core::event::EventRef> {
        let mut b = StreamBuilder::new();
        for e in events {
            b.push(e);
        }
        b.build()
    }

    /// A match's byte-identity key: its signature paired with `emitted_at`.
    type MatchKey = (Vec<(usize, Vec<u64>)>, u64);

    /// Sorted `(signature, emitted_at)` pairs: the byte-identity key.
    fn keyed(ms: &[Match]) -> Vec<MatchKey> {
        let mut ks: Vec<_> = ms.iter().map(|m| (m.signature(), m.emitted_at)).collect();
        ks.sort();
        ks
    }

    fn assert_matches_oracle_under(pattern: &Pattern, events: Vec<Event>, cfg: EngineConfig) {
        let cp = CompiledPattern::compile_single(pattern).unwrap();
        let s = stream(events);
        let mut oracle = NaiveEngine::new(cp.clone(), cfg.clone());
        let expected = keyed(&run_to_completion(&mut oracle, &s, true).matches);
        for compiled in [false, true] {
            let mut c = cfg.clone();
            c.compiled_predicates = compiled;
            let mut engine = DeltaEngine::new(cp.clone(), c);
            let r = run_to_completion(&mut engine, &s, true);
            for m in &r.matches {
                validate_match(&cp, m).unwrap();
            }
            assert_eq!(
                keyed(&r.matches),
                expected,
                "delta (compiled={compiled}) disagrees with oracle"
            );
            assert_eq!(
                r.metrics.partial_matches_created, 0,
                "delta must not materialize partial matches"
            );
        }
    }

    fn assert_matches_oracle(pattern: &Pattern, events: Vec<Event>) {
        assert_matches_oracle_under(pattern, events, EngineConfig::default());
    }

    #[test]
    fn sequence_matches_oracle() {
        let mut b = PatternBuilder::new(10);
        let a = b.event(t(0), "a");
        let c = b.event(t(1), "c");
        let d = b.event(t(2), "d");
        b.predicate(Predicate::attr_cmp(a.pos(), 0, CmpOp::Lt, d.pos(), 0));
        let p = b.seq([a, c, d]).unwrap();
        let events = vec![
            ev(0, 1, 3),
            ev(1, 2, 0),
            ev(0, 3, 7),
            ev(2, 4, 5),
            ev(1, 5, 0),
            ev(2, 6, 9),
            ev(0, 7, 1),
            ev(2, 8, 2),
        ];
        assert_matches_oracle(&p, events);
    }

    #[test]
    fn eq_join_sequence_matches_oracle_and_probes_index() {
        let mut b = PatternBuilder::new(20);
        let a = b.event(t(0), "a");
        let c = b.event(t(1), "c");
        b.predicate(Predicate::attr_cmp(a.pos(), 0, CmpOp::Eq, c.pos(), 0));
        let p = b.seq([a, c]).unwrap();
        let cp = CompiledPattern::compile_single(&p).unwrap();
        let mut events = Vec::new();
        for i in 0..40u64 {
            events.push(ev((i % 2) as u32, i, (i % 5) as i64));
        }
        let s = stream(events.clone());
        let mut engine = DeltaEngine::new(cp.clone(), EngineConfig::default());
        let r = run_to_completion(&mut engine, &s, true);
        let mut oracle = NaiveEngine::new(cp, EngineConfig::default());
        let expected = run_to_completion(&mut oracle, &s, true);
        assert_eq!(keyed(&r.matches), keyed(&expected.matches));
        assert!(
            r.metrics.index_probes > 0,
            "eq-join pattern must drive posting-list probes"
        );
        assert!(r.metrics.delta_updates > 0);
    }

    #[test]
    fn duplicate_types_match_oracle() {
        // SEQ(A a1, A a2): the pin must partition correctly when the
        // newest event can sit at either element.
        let mut b = PatternBuilder::new(10);
        let a1 = b.event(t(0), "a1");
        let a2 = b.event(t(0), "a2");
        let p = b.seq([a1, a2]).unwrap();
        let events = vec![ev(0, 1, 0), ev(0, 2, 0), ev(0, 3, 0)];
        assert_matches_oracle(&p, events);
    }

    #[test]
    fn conjunction_matches_oracle() {
        let mut b = PatternBuilder::new(6);
        let a = b.event(t(0), "a");
        let c = b.event(t(1), "c");
        let d = b.event(t(2), "d");
        b.predicate(Predicate::attr_cmp(a.pos(), 0, CmpOp::Le, c.pos(), 0));
        let p = b.and([a, c, d]).unwrap();
        let events = vec![
            ev(2, 1, 0),
            ev(1, 2, 4),
            ev(0, 3, 4),
            ev(1, 4, 1),
            ev(0, 5, 9),
            ev(2, 6, 0),
            ev(0, 7, 0),
        ];
        assert_matches_oracle(&p, events);
    }

    #[test]
    fn negation_matches_oracle() {
        let mut b = PatternBuilder::new(10);
        let a = b.event(t(0), "a");
        let nb = b.event(t(1), "nb");
        let c = b.event(t(2), "c");
        b.predicate(Predicate::attr_cmp(a.pos(), 0, CmpOp::Eq, nb.pos(), 0));
        let ae = b.expr(a);
        let ne = b.not(nb);
        let ce = b.expr(c);
        let p = b.seq_exprs([ae, ne, ce]).unwrap();
        let events = vec![
            ev(0, 1, 1),
            ev(1, 2, 1),
            ev(0, 3, 2),
            ev(2, 4, 0),
            ev(1, 5, 2),
            ev(2, 6, 0),
        ];
        assert_matches_oracle(&p, events);
    }

    #[test]
    fn trailing_negation_defers_and_matches_oracle() {
        let mut b = PatternBuilder::new(5);
        let a = b.event(t(0), "a");
        let c = b.event(t(1), "c");
        let nb = b.event(t(2), "nb");
        let ae = b.expr(a);
        let ce = b.expr(c);
        let ne = b.not(nb);
        let p = b.seq_exprs([ae, ce, ne]).unwrap();
        let events = vec![
            ev(0, 1, 0),
            ev(1, 2, 0),
            ev(2, 3, 0),
            ev(0, 10, 0),
            ev(1, 11, 0),
        ];
        assert_matches_oracle(&p, events);
    }

    #[test]
    fn kleene_fallback_matches_oracle() {
        let mut b = PatternBuilder::new(10);
        let a = b.event(t(0), "a");
        let k = b.event(t(1), "k");
        let c = b.event(t(2), "c");
        let ae = b.expr(a);
        let ke = b.kleene(k);
        let ce = b.expr(c);
        let p = b.seq_exprs([ae, ke, ce]).unwrap();
        let events = vec![
            ev(0, 1, 0),
            ev(1, 2, 0),
            ev(1, 3, 0),
            ev(2, 4, 0),
            ev(1, 5, 0),
            ev(2, 6, 0),
        ];
        assert_matches_oracle(&p, events);
    }

    #[test]
    fn kleene_cap_zero_emits_nothing_like_oracle() {
        let mut b = PatternBuilder::new(10);
        let a = b.event(t(0), "a");
        let k = b.event(t(1), "k");
        let ae = b.expr(a);
        let ke = b.kleene(k);
        let p = b.seq_exprs([ae, ke]).unwrap();
        let cfg = EngineConfig {
            max_kleene_events: 0,
            ..EngineConfig::default()
        };
        assert_matches_oracle_under(&p, vec![ev(0, 1, 0), ev(1, 2, 0), ev(1, 3, 0)], cfg);
    }

    #[test]
    fn strict_contiguity_matches_oracle() {
        let mut b = PatternBuilder::new(10);
        b.strategy(SelectionStrategy::StrictContiguity);
        let a = b.event(t(0), "a");
        let c = b.event(t(1), "c");
        let p = b.seq([a, c]).unwrap();
        let events = vec![
            ev(0, 1, 0),
            ev(1, 2, 0),
            ev(0, 3, 0),
            ev(2, 4, 0),
            ev(1, 5, 0),
        ];
        assert_matches_oracle(&p, events);
    }

    #[test]
    fn partition_contiguity_matches_oracle() {
        let mut b = PatternBuilder::new(10);
        b.strategy(SelectionStrategy::PartitionContiguity);
        let a = b.event(t(0), "a");
        let c = b.event(t(1), "c");
        let p = b.seq([a, c]).unwrap();
        let mut sb = StreamBuilder::new();
        for (tid, ts, part) in [
            (0u32, 1u64, 0u32),
            (0, 2, 1),
            (1, 3, 0),
            (1, 4, 1),
            (0, 5, 0),
            (1, 6, 0),
        ] {
            sb.push_partitioned(ev(tid, ts, 0), part);
        }
        let s = sb.build();
        let cp = CompiledPattern::compile_single(&p).unwrap();
        let mut oracle = NaiveEngine::new(cp.clone(), EngineConfig::default());
        let expected = keyed(&run_to_completion(&mut oracle, &s, true).matches);
        let mut engine = DeltaEngine::new(cp, EngineConfig::default());
        let r = run_to_completion(&mut engine, &s, true);
        assert_eq!(keyed(&r.matches), expected);
        assert!(!r.matches.is_empty(), "fixture should produce matches");
    }

    #[test]
    fn next_match_consumes_and_is_disjoint() {
        // Byte-identity is not guaranteed under skip-till-next-match, but
        // the greedy invariants are.
        let mut b = PatternBuilder::new(10);
        b.strategy(SelectionStrategy::SkipTillNextMatch);
        let a = b.event(t(0), "a");
        let c = b.event(t(1), "c");
        let p = b.seq([a, c]).unwrap();
        let cp = CompiledPattern::compile_single(&p).unwrap();
        let s = stream(vec![ev(0, 1, 0), ev(0, 2, 0), ev(1, 3, 0), ev(1, 4, 0)]);
        let mut engine = DeltaEngine::new(cp.clone(), EngineConfig::default());
        let r = run_to_completion(&mut engine, &s, true);
        let mut used = std::collections::HashSet::new();
        for m in &r.matches {
            for e in m.events() {
                assert!(used.insert(e.seq), "event reused under next-match");
            }
            validate_match(&cp, m).unwrap();
        }
        assert_eq!(r.matches.len(), 2);
    }

    #[test]
    fn window_expiry_bounds_index_size() {
        let mut b = PatternBuilder::new(5);
        let a = b.event(t(0), "a");
        let c = b.event(t(1), "c");
        let p = b.seq([a, c]).unwrap();
        let cp = CompiledPattern::compile_single(&p).unwrap();
        let mut events = Vec::new();
        for i in 0..2000u64 {
            events.push(ev(0, i * 3, 0));
        }
        let s = stream(events);
        let mut engine = DeltaEngine::new(cp, EngineConfig::default());
        let r = run_to_completion(&mut engine, &s, true);
        assert_eq!(r.metrics.partial_matches_created, 0);
        assert!(
            r.metrics.peak_buffered_events < 10,
            "index must evict expired events, peak was {}",
            r.metrics.peak_buffered_events
        );
        assert!(r.matches.is_empty());
    }

    #[test]
    fn irrelevant_types_are_skipped_cheaply() {
        let mut b = PatternBuilder::new(10);
        let a = b.event(t(0), "a");
        let c = b.event(t(1), "c");
        let p = b.seq([a, c]).unwrap();
        let cp = CompiledPattern::compile_single(&p).unwrap();
        let s = stream(vec![ev(7, 1, 0), ev(8, 2, 0), ev(0, 3, 0), ev(1, 4, 0)]);
        let mut engine = DeltaEngine::new(cp, EngineConfig::default());
        let r = run_to_completion(&mut engine, &s, true);
        assert_eq!(r.metrics.events_processed, 4);
        assert_eq!(r.metrics.events_relevant, 2);
        assert_eq!(r.matches.len(), 1);
    }

    #[test]
    fn engine_reports_name_and_enumeration_histogram() {
        let mut b = PatternBuilder::new(10);
        let a = b.event(t(0), "a");
        let c = b.event(t(1), "c");
        let p = b.seq([a, c]).unwrap();
        let cp = CompiledPattern::compile_single(&p).unwrap();
        let mut engine = DeltaEngine::new(cp, EngineConfig::default());
        assert_eq!(engine.name(), "delta");
        assert!(engine.program().is_some(), "compiled predicates by default");
        let s = stream(vec![ev(0, 1, 0), ev(1, 2, 0)]);
        let r = run_to_completion(&mut engine, &s, true);
        assert_eq!(r.matches.len(), 1);
        assert!(
            r.metrics.enumeration_ns.count() > 0,
            "enumeration delay must be recorded"
        );
    }
}
