//! Window-expiration correctness under adversarial timestamp ties.
//!
//! Random streams are drawn with zero inter-arrival deltas allowed, so
//! runs of equal timestamps pile up exactly at window boundaries — the
//! regime where an off-by-one in the expiration rule (`ts + window <
//! watermark`, boundary events survive) flips match sets. Each case
//! asserts the delta engine's output byte-identical (signatures *and*
//! `emitted_at`) to the naive oracle, and that expired events are
//! *actually evicted*: the engine's peak live-event count must equal an
//! independently simulated bound, catching the unbounded-growth failure
//! mode where matches stay correct but the index silently retains the
//! whole stream.

use cep_core::compile::CompiledPattern;
use cep_core::engine::{run_to_completion, EngineConfig};
use cep_core::event::{Event, EventRef, TypeId};
use cep_core::matches::Match;
use cep_core::naive::NaiveEngine;
use cep_core::pattern::{Pattern, PatternBuilder};
use cep_core::predicate::{CmpOp, Predicate};
use cep_core::stream::StreamBuilder;
use cep_core::value::Value;
use cep_delta::DeltaEngine;
use proptest::prelude::*;

/// A match's byte-identity key: its signature paired with `emitted_at`.
type MatchKey = (Vec<(usize, Vec<u64>)>, u64);

/// Sorted `(signature, emitted_at)` pairs: the byte-identity key.
fn keyed(ms: &[Match]) -> Vec<MatchKey> {
    let mut ks: Vec<_> = ms.iter().map(|m| (m.signature(), m.emitted_at)).collect();
    ks.sort();
    ks
}

/// Builds a tie-heavy stream: `dt` is taken modulo 3, so about a third of
/// consecutive events share a timestamp.
fn tie_stream(raw: &[(u32, u8, i8)]) -> Vec<EventRef> {
    let mut sb = StreamBuilder::new();
    let mut ts = 0u64;
    for &(tid, dt, x) in raw {
        ts += (dt % 3) as u64;
        sb.push(Event::new(TypeId(tid % 3), ts, vec![Value::Int(x as i64)]));
    }
    sb.build()
}

/// Independently simulates the oracle's retention rule over the stream:
/// the maximum number of simultaneously live events of the given positive
/// types, sampled after each relevant arrival (exactly when the engine
/// samples `record_live`).
fn simulated_peak(stream: &[EventRef], positive_types: &[u32], window: u64) -> usize {
    let mut live: Vec<u64> = Vec::new();
    let mut watermark = 0u64;
    let mut peak = 0usize;
    for e in stream {
        watermark = watermark.max(e.ts);
        live.retain(|&ts| ts + window >= watermark);
        if positive_types.contains(&e.type_id.0) {
            live.push(e.ts);
            peak = peak.max(live.len());
        }
    }
    peak
}

fn seq_eq_pattern(window: u64) -> Pattern {
    let mut b = PatternBuilder::new(window);
    let a = b.event(TypeId(0), "a");
    let c = b.event(TypeId(1), "c");
    b.predicate(Predicate::attr_cmp(a.pos(), 0, CmpOp::Eq, c.pos(), 0));
    b.seq([a, c]).unwrap()
}

proptest! {
    #![proptest_config(ProptestConfig {
        cases: 48,
        max_shrink_iters: 200,
    })]

    #[test]
    fn expiry_is_byte_identical_and_evicts(
        raw in prop::collection::vec((0u32..3, 0u8..3, 0i8..3), 10..=60),
        window in 1u64..6,
    ) {
        let p = seq_eq_pattern(window);
        let cp = CompiledPattern::compile_single(&p).unwrap();
        let stream = tie_stream(&raw);
        let mut oracle = NaiveEngine::new(cp.clone(), EngineConfig::default());
        let expected = keyed(&run_to_completion(&mut oracle, &stream, true).matches);
        for compiled in [false, true] {
            let cfg = EngineConfig { compiled_predicates: compiled, ..Default::default() };
            let mut engine = DeltaEngine::new(cp.clone(), cfg);
            let r = run_to_completion(&mut engine, &stream, true);
            prop_assert_eq!(keyed(&r.matches), expected.clone());
            // Eviction actually happened: the engine's peak equals the
            // simulated retention bound (type 2 is stream noise — it
            // advances the watermark but is never stored).
            let bound = simulated_peak(&stream, &[0, 1], window);
            prop_assert_eq!(
                r.metrics.peak_buffered_events, bound,
                "index retention diverged from the window rule (peak {} vs bound {})",
                r.metrics.peak_buffered_events, bound
            );
            prop_assert_eq!(r.metrics.partial_matches_created, 0);
        }
    }

    #[test]
    fn expiry_with_negation_is_byte_identical(
        raw in prop::collection::vec((0u32..3, 0u8..3, 0i8..3), 10..=50),
        window in 1u64..6,
    ) {
        // SEQ(A a, NOT B nb, C c): the negation buffer must prune in
        // lockstep with the index, or tie-boundary violators are kept or
        // dropped one event too long and admission flips.
        let mut b = PatternBuilder::new(window);
        let a = b.event(TypeId(0), "a");
        let nb = b.event(TypeId(2), "nb");
        let c = b.event(TypeId(1), "c");
        b.predicate(Predicate::attr_cmp(a.pos(), 0, CmpOp::Eq, nb.pos(), 0));
        let ae = b.expr(a);
        let ne = b.not(nb);
        let ce = b.expr(c);
        let p = b.seq_exprs([ae, ne, ce]).unwrap();
        let cp = CompiledPattern::compile_single(&p).unwrap();
        let stream = tie_stream(&raw);
        let mut oracle = NaiveEngine::new(cp.clone(), EngineConfig::default());
        let expected = keyed(&run_to_completion(&mut oracle, &stream, true).matches);
        for compiled in [false, true] {
            let cfg = EngineConfig { compiled_predicates: compiled, ..Default::default() };
            let mut engine = DeltaEngine::new(cp.clone(), cfg);
            let r = run_to_completion(&mut engine, &stream, true);
            prop_assert_eq!(keyed(&r.matches), expected.clone());
        }
    }

    #[test]
    fn expiry_with_kleene_ties_is_byte_identical(
        raw in prop::collection::vec((0u32..3, 0u8..2, 0i8..2), 8..=30),
        window in 1u64..5,
    ) {
        // SEQ(A a, KL(B) k): zero deltas make whole Kleene accumulators
        // straddle window boundaries.
        let mut b = PatternBuilder::new(window);
        let a = b.event(TypeId(0), "a");
        let k = b.event(TypeId(1), "k");
        let ae = b.expr(a);
        let ke = b.kleene(k);
        let p = b.seq_exprs([ae, ke]).unwrap();
        let cp = CompiledPattern::compile_single(&p).unwrap();
        let stream = tie_stream(&raw);
        let cfg = EngineConfig { max_kleene_events: 4, ..Default::default() };
        let mut oracle = NaiveEngine::new(cp.clone(), cfg.clone());
        let expected = keyed(&run_to_completion(&mut oracle, &stream, true).matches);
        let mut engine = DeltaEngine::new(cp, cfg);
        let r = run_to_completion(&mut engine, &stream, true);
        prop_assert_eq!(keyed(&r.matches), expected);
    }
}

/// Deterministic boundary fixture: events exactly at `ts + window ==
/// watermark` must survive (they are still joinable), one tick further
/// must not.
#[test]
fn boundary_event_survives_exactly_to_the_window_edge() {
    let p = seq_eq_pattern(5);
    let cp = CompiledPattern::compile_single(&p).unwrap();
    let mut sb = StreamBuilder::new();
    sb.push(Event::new(TypeId(0), 0, vec![Value::Int(1)]));
    // Exactly at the edge: 0 + 5 == 5 → still live, match expected.
    sb.push(Event::new(TypeId(1), 5, vec![Value::Int(1)]));
    // One past the edge relative to the first event: no second match.
    sb.push(Event::new(TypeId(1), 6, vec![Value::Int(1)]));
    let stream = sb.build();
    let mut engine = DeltaEngine::new(cp.clone(), EngineConfig::default());
    let r = run_to_completion(&mut engine, &stream, true);
    let mut oracle = NaiveEngine::new(cp, EngineConfig::default());
    let expected = run_to_completion(&mut oracle, &stream, true);
    assert_eq!(keyed(&r.matches), keyed(&expected.matches));
    assert_eq!(r.matches.len(), 1, "only the edge event pairs up");
}
