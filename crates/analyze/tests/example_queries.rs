//! Every shipped example query (`queries/*.sase`) must parse, lint
//! clean, and stay in sync with the pattern embedded in its
//! `examples/*.rs` counterpart.

use cep_analyze::analyze_query_file;
use std::path::{Path, PathBuf};

fn repo_root() -> PathBuf {
    Path::new(env!("CARGO_MANIFEST_DIR"))
        .join("../..")
        .canonicalize()
        .unwrap()
}

fn normalize(s: &str) -> String {
    s.split_whitespace().collect::<Vec<_>>().join(" ")
}

/// Extracts the `PATTERN ... WITHIN ...` text from a Rust example source
/// (the first string literal starting with `PATTERN`).
fn pattern_in_example(source: &str) -> Option<String> {
    let start = source.find("\"PATTERN")? + 1;
    let end = start + source[start..].find('"')?;
    Some(source[start..end].to_string())
}

#[test]
fn all_example_queries_lint_clean() {
    let dir = repo_root().join("queries");
    let mut checked = 0;
    for entry in std::fs::read_dir(&dir).unwrap() {
        let path = entry.unwrap().path();
        if path.extension().and_then(|e| e.to_str()) != Some("sase") {
            continue;
        }
        let source = std::fs::read_to_string(&path).unwrap();
        let (_, report) = analyze_query_file(&source)
            .unwrap_or_else(|e| panic!("{} failed to parse: {e}", path.display()));
        assert!(
            report.is_clean(),
            "{} should lint clean, got:\n{report}",
            path.display()
        );
        checked += 1;
    }
    assert_eq!(checked, 8, "expected the eight shipped example queries");
}

#[test]
fn query_files_match_their_examples() {
    let root = repo_root();
    for entry in std::fs::read_dir(root.join("queries")).unwrap() {
        let path = entry.unwrap().path();
        if path.extension().and_then(|e| e.to_str()) != Some("sase") {
            continue;
        }
        let stem = path.file_stem().unwrap().to_str().unwrap().to_string();
        let example = root.join("examples").join(format!("{stem}.rs"));
        let example_src = std::fs::read_to_string(&example)
            .unwrap_or_else(|e| panic!("{} has no example twin: {e}", path.display()));
        let embedded = pattern_in_example(&example_src)
            .unwrap_or_else(|| panic!("{} embeds no PATTERN literal", example.display()));
        let query_src = std::fs::read_to_string(&path).unwrap();
        let from_file = &query_src[query_src.find("PATTERN").unwrap()..];
        assert_eq!(
            normalize(from_file),
            normalize(&embedded),
            "{} drifted from {}",
            path.display(),
            example.display()
        );
    }
}
