//! Schema-level semantic checks: unknown event types, out-of-bounds
//! attributes, type-incompatible comparisons, and timestamp shadowing.
//!
//! These checks run against the raw [`Pattern`], before DNF compilation,
//! so they also cover patterns assembled programmatically with
//! [`cep_core::pattern::PatternBuilder`] (the SASE parser rejects most of
//! these at parse time, but the builder does not).

use crate::diagnostic::{Code, Diagnostic, Report};
use cep_core::pattern::{Pattern, PrimitiveInfo};
use cep_core::predicate::Operand;
use cep_core::schema::{Catalog, ValueKind};
use std::collections::HashMap;

/// The comparability class of a value kind: comparisons across classes
/// are undefined and evaluate to false for every event.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum KindClass {
    Numeric,
    Boolean,
    Text,
}

fn class_of(kind: ValueKind) -> KindClass {
    match kind {
        ValueKind::Int | ValueKind::Float => KindClass::Numeric,
        ValueKind::Bool => KindClass::Boolean,
        ValueKind::Str => KindClass::Text,
    }
}

/// Runs every semantic check on `pattern` against `catalog`.
pub fn check_pattern(pattern: &Pattern, catalog: &Catalog) -> Report {
    let mut report = Report::new();
    let prims = pattern.primitives();
    let by_position: HashMap<usize, &PrimitiveInfo> =
        prims.iter().map(|p| (p.position, p)).collect();

    // A002: every primitive's event type must exist in the catalog.
    for prim in &prims {
        if catalog.schema(prim.event_type).is_none() {
            report.push(Diagnostic::new(
                Code::A002,
                format!(
                    "event {:?} (position {}) references type id {:?} which is not in the catalog",
                    prim.name, prim.position, prim.event_type
                ),
            ));
        }
    }

    // A005: schemas of used types that declare an attribute named `ts`.
    // The SASE surface syntax resolves `var.ts` to the occurrence
    // timestamp, so such an attribute is unreachable from query text.
    let mut warned_types = Vec::new();
    for prim in &prims {
        let Some(schema) = catalog.schema(prim.event_type) else {
            continue;
        };
        if schema.attr_index("ts").is_some() && !warned_types.contains(&prim.event_type) {
            warned_types.push(prim.event_type);
            report.push(Diagnostic::new(
                Code::A005,
                format!(
                    "type {:?} declares an attribute named \"ts\"; in query text `var.ts` \
                     resolves to the intrinsic occurrence timestamp, shadowing it",
                    schema.name
                ),
            ));
        }
    }

    // Per-predicate checks: dangling positions, attribute bounds (A003)
    // and comparability of the two operand kinds (A004).
    for (pi, pred) in pattern.predicates.iter().enumerate() {
        let mut kinds = Vec::new();
        for operand in [&pred.left, &pred.right] {
            match operand {
                Operand::Const(v) => kinds.push(Some(v.kind())),
                Operand::Ts { position } => {
                    if !by_position.contains_key(position) {
                        report.push(Diagnostic::new(
                            Code::A003,
                            format!(
                                "predicate #{pi} `{pred}` references position {position}, \
                                 which is not declared by the pattern"
                            ),
                        ));
                        kinds.push(None);
                    } else {
                        // Timestamps are integral milliseconds.
                        kinds.push(Some(ValueKind::Int));
                    }
                }
                Operand::Attr { position, attr } => {
                    let Some(prim) = by_position.get(position) else {
                        report.push(Diagnostic::new(
                            Code::A003,
                            format!(
                                "predicate #{pi} `{pred}` references position {position}, \
                                 which is not declared by the pattern"
                            ),
                        ));
                        kinds.push(None);
                        continue;
                    };
                    let Some(schema) = catalog.schema(prim.event_type) else {
                        // Unknown type already reported as A002.
                        kinds.push(None);
                        continue;
                    };
                    match schema.attributes.get(*attr) {
                        Some(def) => kinds.push(Some(def.kind)),
                        None => {
                            report.push(Diagnostic::new(
                                Code::A003,
                                format!(
                                    "predicate #{pi} `{pred}` uses attribute index {attr} but \
                                     type {:?} declares only {} attributes",
                                    schema.name,
                                    schema.attributes.len()
                                ),
                            ));
                            kinds.push(None);
                        }
                    }
                }
            }
        }
        if let (Some(Some(lk)), Some(Some(rk))) = (kinds.first(), kinds.get(1)) {
            if class_of(*lk) != class_of(*rk) {
                report.push(Diagnostic::new(
                    Code::A004,
                    format!(
                        "predicate #{pi} `{pred}` compares {lk:?} against {rk:?}; \
                         the kinds are incomparable, so the predicate is false for every event"
                    ),
                ));
            }
        }
    }

    report
}

#[cfg(test)]
mod tests {
    use super::*;
    use cep_core::event::TypeId;
    use cep_core::pattern::PatternBuilder;
    use cep_core::predicate::{CmpOp, Predicate};
    use cep_core::value::Value;

    fn catalog() -> Catalog {
        let mut cat = Catalog::new();
        cat.add_type(
            "Trade",
            &[("price", ValueKind::Float), ("sym", ValueKind::Str)],
        )
        .unwrap();
        cat.add_type("Quote", &[("price", ValueKind::Float)])
            .unwrap();
        cat
    }

    fn seq(cat: &Catalog) -> Pattern {
        let mut b = PatternBuilder::new(1000);
        let t = b.event(cat.type_id("Trade").unwrap(), "t");
        let q = b.event(cat.type_id("Quote").unwrap(), "q");
        b.seq([t, q]).unwrap()
    }

    #[test]
    fn clean_pattern_reports_nothing() {
        let cat = catalog();
        let mut p = seq(&cat);
        p.predicates.push(Predicate {
            left: Operand::Attr {
                position: 0,
                attr: 0,
            },
            op: CmpOp::Lt,
            right: Operand::Attr {
                position: 1,
                attr: 0,
            },
        });
        assert!(check_pattern(&p, &cat).is_clean());
    }

    #[test]
    fn unknown_type_is_a002() {
        let cat = catalog();
        let mut b = PatternBuilder::new(1000);
        let x = b.event(TypeId(99), "x");
        let t = b.event(cat.type_id("Trade").unwrap(), "t");
        let p = b.seq([x, t]).unwrap();
        let r = check_pattern(&p, &cat);
        assert!(r.has_code(Code::A002));
        assert!(r.has_errors());
    }

    #[test]
    fn attribute_out_of_bounds_is_a003() {
        let cat = catalog();
        let mut p = seq(&cat);
        p.predicates.push(Predicate {
            left: Operand::Attr {
                position: 1,
                attr: 7,
            },
            op: CmpOp::Eq,
            right: Operand::Const(Value::Int(1)),
        });
        let r = check_pattern(&p, &cat);
        assert!(r.has_code(Code::A003));
    }

    #[test]
    fn dangling_position_is_a003() {
        let cat = catalog();
        let mut p = seq(&cat);
        p.predicates.push(Predicate {
            left: Operand::Attr {
                position: 9,
                attr: 0,
            },
            op: CmpOp::Eq,
            right: Operand::Const(Value::Int(1)),
        });
        assert!(check_pattern(&p, &cat).has_code(Code::A003));
    }

    #[test]
    fn cross_kind_comparison_is_a004() {
        let cat = catalog();
        let mut p = seq(&cat);
        // Trade.sym (Str) vs a number.
        p.predicates.push(Predicate {
            left: Operand::Attr {
                position: 0,
                attr: 1,
            },
            op: CmpOp::Eq,
            right: Operand::Const(Value::Int(5)),
        });
        let r = check_pattern(&p, &cat);
        assert!(r.has_code(Code::A004));
        // Int vs Float is fine (numeric class).
        let mut p2 = seq(&cat);
        p2.predicates.push(Predicate {
            left: Operand::Attr {
                position: 0,
                attr: 0,
            },
            op: CmpOp::Ge,
            right: Operand::Const(Value::Int(5)),
        });
        assert!(check_pattern(&p2, &cat).is_clean());
    }

    #[test]
    fn ts_shadowing_attribute_is_a005() {
        let mut cat = Catalog::new();
        cat.add_type("Weird", &[("ts", ValueKind::Int)]).unwrap();
        let mut b = PatternBuilder::new(100);
        let w = b.event(cat.type_id("Weird").unwrap(), "w");
        let w2 = b.event(cat.type_id("Weird").unwrap(), "w2");
        let p = b.seq([w, w2]).unwrap();
        let r = check_pattern(&p, &cat);
        // One warning per type, not per primitive.
        assert_eq!(r.iter().filter(|d| d.code == Code::A005).count(), 1, "{r}");
        assert!(!r.has_errors());
    }

    #[test]
    fn ts_operand_is_numeric() {
        let cat = catalog();
        let mut p = seq(&cat);
        p.predicates.push(Predicate {
            left: Operand::Ts { position: 0 },
            op: CmpOp::Lt,
            right: Operand::Attr {
                position: 1,
                attr: 0,
            },
        });
        assert!(check_pattern(&p, &cat).is_clean());
        let mut p2 = seq(&cat);
        p2.predicates.push(Predicate {
            left: Operand::Ts { position: 0 },
            op: CmpOp::Eq,
            right: Operand::Attr {
                position: 0,
                attr: 1,
            },
        });
        assert!(check_pattern(&p2, &cat).has_code(Code::A004));
    }
}
