//! `cep-lint` — lint SASE query files.
//!
//! ```text
//! cep-lint [--codes] <query.sase>...
//! ```
//!
//! Each file is a self-contained `.sase` query (a `TYPE` schema header
//! followed by a SASE pattern; see `cep_analyze::query_file`). The tool
//! prints every diagnostic and exits non-zero when any file fails to
//! parse or carries an error-severity diagnostic.

use cep_analyze::{analyze_query_file, ALL_CODES};
use cep_core::error::CepError;
use std::process::ExitCode;

const USAGE: &str = "usage: cep-lint [--codes] <query.sase>...

  --codes   print the table of diagnostic codes and exit

Each input file holds TYPE declarations (e.g. `TYPE Trade(price float)`)
followed by a SASE pattern specification. Exit status is non-zero when
any file fails to parse or produces an error-severity diagnostic.";

fn print_codes() {
    println!("{:<6} {:<8} description", "code", "severity");
    for code in ALL_CODES {
        println!(
            "{:<6} {:<8} {}",
            code.as_str(),
            code.severity().to_string(),
            code.description()
        );
    }
}

fn lint_file(path: &str) -> Result<bool, String> {
    let source = std::fs::read_to_string(path).map_err(|e| format!("{path}: {e}"))?;
    match analyze_query_file(&source) {
        Ok((_, report)) => {
            if report.is_clean() {
                println!("{path}: ok");
                Ok(true)
            } else {
                for d in report.iter() {
                    println!("{path}: {d}");
                }
                Ok(!report.has_errors())
            }
        }
        Err(CepError::Parse {
            message,
            line,
            column,
            ..
        }) if line > 0 => Err(format!("{path}:{line}:{column}: parse error: {message}")),
        Err(e) => Err(format!("{path}: {e}")),
    }
}

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    if args.iter().any(|a| a == "--codes") {
        print_codes();
        return ExitCode::SUCCESS;
    }
    if args.is_empty() || args.iter().any(|a| a == "--help" || a == "-h") {
        eprintln!("{USAGE}");
        return if args.is_empty() {
            ExitCode::from(2)
        } else {
            ExitCode::SUCCESS
        };
    }
    let mut ok = true;
    for path in &args {
        match lint_file(path) {
            Ok(clean) => ok &= clean,
            Err(msg) => {
                eprintln!("{msg}");
                ok = false;
            }
        }
    }
    if ok {
        ExitCode::SUCCESS
    } else {
        ExitCode::FAILURE
    }
}
