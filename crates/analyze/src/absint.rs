//! Abstract interpretation over compiled pattern branches: congruence
//! closure over `==`-predicates (built on [`cep_core::union_find`]), an
//! interval domain over numeric attributes, and an order digraph over the
//! equivalence classes.
//!
//! The pass is deliberately **conservative in one direction**: it reports
//! a branch unsatisfiable ([`BranchAnalysis::unsat`]) only when no
//! assignment of event values can satisfy every predicate together with
//! the branch's temporal constraints. Engine predicate semantics are
//! *stricter* than the ideal theory (a comparison on missing or
//! incomparable values is false), so an unsatisfiable theory implies the
//! engines can never produce a match — the property the differential
//! oracle sweep in `tests/analyze_oracle.rs` checks.
//!
//! Kleene elements are sound here because the engines evaluate every
//! predicate against **each** member of a Kleene accumulator: any match
//! yields a satisfying one-event-per-element assignment of the theory.

use crate::diagnostic::{Code, Diagnostic, Report};
use cep_core::compile::CompiledPattern;
use cep_core::predicate::{CmpOp, Operand, Predicate};
use cep_core::stats::MeasuredStats;
use cep_core::union_find::UnionFind;
use cep_core::value::Value;
use std::cmp::Ordering;
use std::collections::{HashMap, HashSet};

/// Result of analyzing one compiled branch.
#[derive(Debug, Clone)]
pub struct BranchAnalysis {
    /// `Some(reason)` when the branch provably can never match.
    pub unsat: Option<String>,
    /// Indices into `cp.predicates` whose removal provably leaves the
    /// match set unchanged (redundant predicates and constant-only
    /// predicates the engines skip anyway).
    pub redundant: Vec<usize>,
    /// Warnings gathered along the way (`A006`, `A007`, `A008`). The
    /// `A001` verdict itself is carried in [`BranchAnalysis::unsat`] so
    /// callers can grade it (error for a single-branch query, warning
    /// for one dead branch of an `OR`).
    pub report: Report,
}

/// A term of the predicate theory: an attribute of a pattern position,
/// the occurrence timestamp of a position, or a constant.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
enum TermKey {
    Attr(usize, usize),
    Ts(usize),
    Const(usize),
}

/// Directed reachability strength between classes.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
enum Reach {
    No,
    Le,
    Lt,
}

/// One side of an interval; `strict` excludes the endpoint.
#[derive(Debug, Clone, Copy)]
struct Bound {
    value: f64,
    strict: bool,
}

#[derive(Debug, Clone, Copy, Default)]
struct Interval {
    lo: Option<Bound>,
    hi: Option<Bound>,
}

impl Interval {
    fn tighten_lo(&mut self, b: Bound) -> bool {
        match self.lo {
            Some(cur)
                if cur.value > b.value || (cur.value == b.value && (cur.strict || !b.strict)) =>
            {
                false
            }
            _ => {
                self.lo = Some(b);
                true
            }
        }
    }

    fn tighten_hi(&mut self, b: Bound) -> bool {
        match self.hi {
            Some(cur)
                if cur.value < b.value || (cur.value == b.value && (cur.strict || !b.strict)) =>
            {
                false
            }
            _ => {
                self.hi = Some(b);
                true
            }
        }
    }

    fn is_empty(&self) -> bool {
        match (self.lo, self.hi) {
            (Some(lo), Some(hi)) => {
                lo.value > hi.value || (lo.value == hi.value && (lo.strict || hi.strict))
            }
            _ => false,
        }
    }
}

/// Conjunction solver over predicate terms.
#[derive(Debug, Default)]
struct Solver {
    uf: UnionFind,
    node_term: Vec<TermKey>,
    node_of: HashMap<TermKey, usize>,
    consts: Vec<Value>,
    /// `(a, b, strict)`: term `a` is less than (`strict`) or at most `b`.
    edges: Vec<(usize, usize, bool)>,
    ne_pairs: Vec<(usize, usize)>,
    /// Positions whose timestamps must pairwise fit in `window`.
    window: Option<(f64, Vec<usize>)>,
}

impl Solver {
    fn new() -> Solver {
        Solver::default()
    }

    fn intern(&mut self, key: TermKey) -> usize {
        if let Some(&id) = self.node_of.get(&key) {
            return id;
        }
        let id = self.uf.make();
        debug_assert_eq!(id, self.node_term.len());
        self.node_term.push(key);
        self.node_of.insert(key, id);
        id
    }

    fn const_key(&mut self, v: &Value) -> TermKey {
        // Canonicalize by value equality (`Int(3)` and `Float(3.0)` are the
        // same constant) so equal constants share one node.
        for (i, c) in self.consts.iter().enumerate() {
            if c.partial_cmp_value(v) == Some(Ordering::Equal) {
                return TermKey::Const(i);
            }
        }
        self.consts.push(v.clone());
        TermKey::Const(self.consts.len() - 1)
    }

    fn operand_node(&mut self, op: &Operand) -> usize {
        let key = match op {
            Operand::Attr { position, attr } => TermKey::Attr(*position, *attr),
            Operand::Ts { position } => TermKey::Ts(*position),
            Operand::Const(v) => self.const_key(v),
        };
        self.intern(key)
    }

    /// Looks an operand's node up without creating it.
    fn operand_node_ref(&self, op: &Operand) -> Option<usize> {
        let key = match op {
            Operand::Attr { position, attr } => TermKey::Attr(*position, *attr),
            Operand::Ts { position } => TermKey::Ts(*position),
            Operand::Const(v) => {
                let i = self
                    .consts
                    .iter()
                    .position(|c| c.partial_cmp_value(v) == Some(Ordering::Equal))?;
                TermKey::Const(i)
            }
        };
        self.node_of.get(&key).copied()
    }

    fn add_predicate(&mut self, p: &Predicate) {
        let l = self.operand_node(&p.left);
        let r = self.operand_node(&p.right);
        match p.op {
            CmpOp::Eq => self.uf.union(l, r),
            CmpOp::Ne => self.ne_pairs.push((l, r)),
            CmpOp::Lt => self.edges.push((l, r, true)),
            CmpOp::Le => self.edges.push((l, r, false)),
            CmpOp::Gt => self.edges.push((r, l, true)),
            CmpOp::Ge => self.edges.push((r, l, false)),
        }
    }

    /// Records that position `a` occurs strictly before position `b`.
    fn add_ts_order(&mut self, a: usize, b: usize) {
        let na = self.intern(TermKey::Ts(a));
        let nb = self.intern(TermKey::Ts(b));
        self.edges.push((na, nb, true));
    }

    fn ensure_ts(&mut self, position: usize) {
        self.intern(TermKey::Ts(position));
    }

    fn set_window(&mut self, window_ms: u64, positions: Vec<usize>) {
        for &p in &positions {
            self.ensure_ts(p);
        }
        self.window = Some((window_ms as f64, positions));
    }

    fn solve(&self) -> State {
        // Dense class numbering.
        let n = self.node_term.len();
        let mut class_index: HashMap<usize, usize> = HashMap::new();
        let mut class_of_node = vec![0usize; n];
        for (id, slot) in class_of_node.iter_mut().enumerate() {
            let root = self.uf.find(id);
            let next = class_index.len();
            *slot = *class_index.entry(root).or_insert(next);
        }
        let k = class_index.len();
        let mut state = State {
            class_of_node,
            reach: vec![vec![Reach::No; k]; k],
            intervals: vec![Interval::default(); k],
            pinned: vec![None; k],
            unsat: None,
        };

        // Pin classes to constants; two distinct canonical constants in a
        // class contradict (they are unequal or incomparable).
        for id in 0..n {
            if let TermKey::Const(ci) = self.node_term[id] {
                let c = state.class_of_node[id];
                match &state.pinned[c] {
                    None => state.pinned[c] = Some(self.consts[ci].clone()),
                    Some(prev) => {
                        state.unsat = Some(format!(
                            "equality constraints force {prev} and {} to be the same value",
                            self.consts[ci]
                        ));
                        return state;
                    }
                }
            }
        }

        // Order closure over classes (Floyd–Warshall; class counts are
        // tiny — bounded by term count).
        for &(a, b, strict) in &self.edges {
            let (ca, cb) = (state.class_of_node[a], state.class_of_node[b]);
            let s = if strict { Reach::Lt } else { Reach::Le };
            if s > state.reach[ca][cb] {
                state.reach[ca][cb] = s;
            }
        }
        for mid in 0..k {
            for from in 0..k {
                if state.reach[from][mid] == Reach::No {
                    continue;
                }
                for to in 0..k {
                    if state.reach[mid][to] == Reach::No {
                        continue;
                    }
                    let s = state.reach[from][mid].max(state.reach[mid][to]);
                    if s > state.reach[from][to] {
                        state.reach[from][to] = s;
                    }
                }
            }
        }
        for c in 0..k {
            if state.reach[c][c] == Reach::Lt {
                state.unsat = Some(
                    "ordering constraints form a strict cycle (a value would have to be \
                     less than itself)"
                        .into(),
                );
                return state;
            }
        }

        // Constant-to-constant consistency along reachability.
        for a in 0..k {
            let Some(va) = &state.pinned[a] else { continue };
            for b in 0..k {
                if a == b || state.reach[a][b] == Reach::No {
                    continue;
                }
                let Some(vb) = &state.pinned[b] else { continue };
                let ok = match va.partial_cmp_value(vb) {
                    Some(Ordering::Less) => true,
                    Some(Ordering::Equal) => state.reach[a][b] == Reach::Le,
                    _ => false,
                };
                if !ok {
                    state.unsat = Some(format!(
                        "ordering constraints require {va} < {vb}, which is false"
                    ));
                    return state;
                }
            }
        }

        // Interval seeding from numeric pins, then propagation along the
        // class order edges to a fixpoint.
        for c in 0..k {
            if let Some(v) = &state.pinned[c] {
                if let Some(x) = v.as_f64() {
                    state.intervals[c].tighten_lo(Bound {
                        value: x,
                        strict: false,
                    });
                    state.intervals[c].tighten_hi(Bound {
                        value: x,
                        strict: false,
                    });
                }
            }
        }
        let mut class_edges: Vec<(usize, usize, bool)> = Vec::new();
        for &(a, b, strict) in &self.edges {
            class_edges.push((state.class_of_node[a], state.class_of_node[b], strict));
        }
        let mut changed = true;
        let mut rounds = 0usize;
        while changed && rounds <= 2 * k + 2 {
            changed = false;
            rounds += 1;
            for &(a, b, strict) in &class_edges {
                if let Some(lo) = state.intervals[a].lo {
                    let bound = Bound {
                        value: lo.value,
                        strict: lo.strict || strict,
                    };
                    changed |= state.intervals[b].tighten_lo(bound);
                }
                if let Some(hi) = state.intervals[b].hi {
                    let bound = Bound {
                        value: hi.value,
                        strict: hi.strict || strict,
                    };
                    changed |= state.intervals[a].tighten_hi(bound);
                }
            }
        }
        for c in 0..k {
            if state.intervals[c].is_empty() {
                let what = state.pinned[c]
                    .as_ref()
                    .map(|v| format!("the value pinned to {v}"))
                    .unwrap_or_else(|| "a constrained value".into());
                state.unsat = Some(format!("{what} has an empty feasible interval"));
                return state;
            }
        }

        // Disequalities: a forced-equal pair can never differ.
        for &(a, b) in &self.ne_pairs {
            let (ca, cb) = (state.class_of_node[a], state.class_of_node[b]);
            let forced_equal =
                ca == cb || (state.reach[ca][cb] == Reach::Le && state.reach[cb][ca] == Reach::Le);
            if forced_equal {
                state.unsat = Some(
                    "a != predicate contradicts equality constraints on the same terms".into(),
                );
                return state;
            }
        }

        // Window feasibility: every pair of positive elements must land
        // within the window; provably larger timestamp gaps contradict.
        if let Some((window, positions)) = &self.window {
            for (ix, &pa) in positions.iter().enumerate() {
                for &pb in positions.iter().skip(ix + 1) {
                    for (x, y) in [(pa, pb), (pb, pa)] {
                        let (Some(&nx), Some(&ny)) = (
                            self.node_of.get(&TermKey::Ts(x)),
                            self.node_of.get(&TermKey::Ts(y)),
                        ) else {
                            continue;
                        };
                        let cx = state.class_of_node[nx];
                        let cy = state.class_of_node[ny];
                        if let (Some(lo), Some(hi)) =
                            (state.intervals[cx].lo, state.intervals[cy].hi)
                        {
                            if lo.value - hi.value > *window {
                                state.unsat = Some(format!(
                                    "timestamp constraints place two elements more than the \
                                     {window} ms window apart"
                                ));
                                return state;
                            }
                        }
                    }
                }
            }
        }

        state
    }
}

/// Solved view of a [`Solver`]'s constraints.
#[derive(Debug)]
struct State {
    class_of_node: Vec<usize>,
    reach: Vec<Vec<Reach>>,
    intervals: Vec<Interval>,
    pinned: Vec<Option<Value>>,
    unsat: Option<String>,
}

impl State {
    fn class(&self, node: usize) -> usize {
        self.class_of_node[node]
    }

    /// Whether the solved constraints entail `pred` under engine
    /// semantics (operands comparable and related as `pred` demands).
    ///
    /// Every positive answer is backed by a chain of *other* predicates
    /// that force both operands to be present, mutually comparable, and
    /// in the required relation — so dropping `pred` cannot admit new
    /// matches.
    fn entails(&self, solver: &Solver, pred: &Predicate) -> bool {
        if self.unsat.is_some() {
            return false;
        }
        // Self-comparisons (`x.a == x.a`) are NOT entailed: the engines
        // evaluate them to false when the attribute is missing, so they
        // are not removal-safe without schema guarantees.
        if pred.left == pred.right {
            return false;
        }
        // Constant operands are resolved by value (they need no node in
        // the remainder solver); event operands must already be
        // constrained by the retained predicates to say anything.
        enum Side {
            Cls(usize),
            Lit(Value),
        }
        let resolve = |op: &Operand| -> Option<Side> {
            match op {
                Operand::Const(v) => Some(Side::Lit(v.clone())),
                _ => solver
                    .operand_node_ref(op)
                    .map(|n| Side::Cls(self.class(n))),
            }
        };
        let (Some(l), Some(r)) = (resolve(&pred.left), resolve(&pred.right)) else {
            return false;
        };
        match (l, r) {
            (Side::Cls(cl), Side::Cls(cr)) => self.entails_classes(cl, cr, pred.op),
            (Side::Cls(c), Side::Lit(v)) => self.entails_literal(c, &v, pred.op),
            (Side::Lit(v), Side::Cls(c)) => self.entails_literal(c, &v, pred.op.flip()),
            // A constant-only predicate is never a removal candidate
            // (engines skip it; classified separately as A007).
            (Side::Lit(_), Side::Lit(_)) => false,
        }
    }

    /// Does every satisfying assignment relate classes `cl` and `cr` as
    /// `op` demands?
    fn entails_classes(&self, cl: usize, cr: usize, op: CmpOp) -> bool {
        // `Lt` reachability also witnesses `Le`.
        let le = |a: usize, b: usize| a == b || self.reach[a][b] != Reach::No;
        let lt = |a: usize, b: usize| self.reach[a][b] == Reach::Lt;
        let bounds_lt = |a: usize, b: usize, allow_equal: bool| {
            let (Some(hi), Some(lo)) = (self.intervals[a].hi, self.intervals[b].lo) else {
                return false;
            };
            hi.value < lo.value
                || (hi.value == lo.value && (hi.strict || lo.strict))
                || (allow_equal && hi.value == lo.value)
        };
        match op {
            CmpOp::Eq => {
                cl == cr || (self.reach[cl][cr] == Reach::Le && self.reach[cr][cl] == Reach::Le)
            }
            CmpOp::Le => le(cl, cr) || bounds_lt(cl, cr, true),
            CmpOp::Lt => lt(cl, cr) || bounds_lt(cl, cr, false),
            CmpOp::Ge => le(cr, cl) || bounds_lt(cr, cl, true),
            CmpOp::Gt => lt(cr, cl) || bounds_lt(cr, cl, false),
            CmpOp::Ne => {
                if cl == cr {
                    return false;
                }
                if lt(cl, cr) || lt(cr, cl) || bounds_lt(cl, cr, false) || bounds_lt(cr, cl, false)
                {
                    return true;
                }
                // Distinct comparable pinned constants.
                match (&self.pinned[cl], &self.pinned[cr]) {
                    (Some(a), Some(b)) => matches!(
                        a.partial_cmp_value(b),
                        Some(Ordering::Less) | Some(Ordering::Greater)
                    ),
                    _ => false,
                }
            }
        }
    }

    /// Does every value of class `c` satisfy `x op v`?
    fn entails_literal(&self, c: usize, v: &Value, op: CmpOp) -> bool {
        // A pinned class takes exactly one value; compare it directly.
        if let Some(p) = &self.pinned[c] {
            if op.test(p.partial_cmp_value(v)) {
                return true;
            }
        }
        let Some(x) = v.as_f64() else { return false };
        let iv = &self.intervals[c];
        let hi_below = |allow_equal: bool| {
            iv.hi
                .is_some_and(|hi| hi.value < x || (hi.value == x && (hi.strict || allow_equal)))
        };
        let lo_above = |allow_equal: bool| {
            iv.lo
                .is_some_and(|lo| lo.value > x || (lo.value == x && (lo.strict || allow_equal)))
        };
        match op {
            CmpOp::Lt => hi_below(false),
            CmpOp::Le => hi_below(true),
            CmpOp::Gt => lo_above(false),
            CmpOp::Ge => lo_above(true),
            // The interval pinches the class to exactly `v`.
            CmpOp::Eq => matches!(
                (iv.lo, iv.hi),
                (Some(lo), Some(hi))
                    if lo.value == x && hi.value == x && !lo.strict && !hi.strict
            ),
            CmpOp::Ne => hi_below(false) || lo_above(false),
        }
    }
}

/// Classification of a branch's predicates by the element sets they touch.
struct PredClasses {
    /// Indices of predicates over positive elements only.
    positive: Vec<usize>,
    /// Indices of constant-only predicates (skipped by engines).
    constant_only: Vec<usize>,
}

fn classify(cp: &CompiledPattern) -> PredClasses {
    let neg_positions: HashSet<usize> = cp.negated.iter().map(|ne| ne.position).collect();
    let mut positive = Vec::new();
    let mut constant_only = Vec::new();
    for (pi, p) in cp.predicates.iter().enumerate() {
        let (a, b) = p.position_pair();
        if a == usize::MAX {
            constant_only.push(pi);
            continue;
        }
        let touches_neg =
            neg_positions.contains(&a) || b.is_some_and(|b| neg_positions.contains(&b));
        if !touches_neg {
            positive.push(pi);
        }
    }
    PredClasses {
        positive,
        constant_only,
    }
}

/// Builds a solver over the given positive predicate indices plus the
/// branch's temporal facts (precedence order and window feasibility).
fn positive_solver(cp: &CompiledPattern, pred_indices: &[usize]) -> Solver {
    let mut solver = Solver::new();
    for &pi in pred_indices {
        solver.add_predicate(&cp.predicates[pi]);
    }
    let positions: Vec<usize> = cp.elements.iter().map(|e| e.position).collect();
    for i in 0..cp.n() {
        for j in 0..cp.n() {
            if i != j && cp.must_precede(i, j) {
                solver.add_ts_order(positions[i], positions[j]);
            }
        }
    }
    solver.set_window(cp.window, positions);
    solver
}

/// Runs the full abstract-interpretation pass over one compiled branch:
/// satisfiability, redundant predicates, and dead negations.
pub fn analyze_branch(cp: &CompiledPattern) -> BranchAnalysis {
    let classes = classify(cp);
    let mut report = Report::new();
    let mut redundant = Vec::new();

    // Constant-only predicates: engines never evaluate them (A007).
    for &pi in &classes.constant_only {
        let p = &cp.predicates[pi];
        let holds = p.eval_single(usize::MAX, &dummy_event());
        let note = if holds {
            "it is vacuously true"
        } else {
            "note that it is false, yet the engines do not fail the query on it"
        };
        report.push(Diagnostic::new(
            Code::A007,
            format!(
                "predicate `{p}` compares constants only; the engines skip it entirely ({note})"
            ),
        ));
        redundant.push(pi);
    }

    // Satisfiability of the positive conjunction.
    let solver = positive_solver(cp, &classes.positive);
    let state = solver.solve();
    if let Some(reason) = state.unsat {
        return BranchAnalysis {
            unsat: Some(reason),
            redundant: Vec::new(),
            report,
        };
    }

    // Redundancy: greedy removal set. A predicate is removable when the
    // retained remainder entails it; entailment is re-checked against the
    // shrinking retained set so the removals compose.
    let mut removed: HashSet<usize> = HashSet::new();
    for &candidate in &classes.positive {
        let retained: Vec<usize> = classes
            .positive
            .iter()
            .copied()
            .filter(|&pi| pi != candidate && !removed.contains(&pi))
            .collect();
        let sub = positive_solver(cp, &retained);
        let sub_state = sub.solve();
        let p = &cp.predicates[candidate];
        if sub_state.entails(&sub, p) {
            removed.insert(candidate);
            report.push(Diagnostic::new(
                Code::A006,
                format!(
                    "predicate `{p}` is implied by the remaining predicates and the \
                     pattern's temporal constraints; removing it leaves the match set unchanged"
                ),
            ));
            redundant.push(candidate);
        }
    }

    // Dead negations: positives are satisfiable, but adding the negated
    // element's constraints (predicates plus anchoring order) is not —
    // the NOT can never reject anything.
    let positions: Vec<usize> = cp.elements.iter().map(|e| e.position).collect();
    for (k, ne) in cp.negated.iter().enumerate() {
        let mut neg_solver = positive_solver(cp, &classes.positive);
        for &pi in cp.negated_predicates(k) {
            neg_solver.add_predicate(&cp.predicates[pi]);
        }
        for &b in &ne.before {
            neg_solver.add_ts_order(positions[b], ne.position);
        }
        for &a in &ne.after {
            neg_solver.add_ts_order(ne.position, positions[a]);
        }
        if let Some(reason) = neg_solver.solve().unsat {
            report.push(Diagnostic::new(
                Code::A008,
                format!(
                    "negated element {:?} can never match: {reason}; the NOT is a no-op",
                    ne.name
                ),
            ));
        }
    }

    BranchAnalysis {
        unsat: None,
        redundant,
        report,
    }
}

/// Event placeholder for evaluating constant-only predicates (their
/// operands never read the event).
fn dummy_event() -> cep_core::event::Event {
    cep_core::event::Event::new(cep_core::event::TypeId(u32::MAX), 0, Vec::new())
}

/// Thresholds for the Kleene/window state-blowup check (`A009`).
#[derive(Debug, Clone)]
pub struct BlowupOptions {
    /// Maximum tolerated `rate × window` exponent for one Kleene element
    /// before warning: the paper's power-set bound admits `2^{rW}`
    /// partial matches per window (Section 3.2). Default: 20 (≈ one
    /// million partial matches).
    pub max_kleene_exponent: f64,
    /// Maximum tolerated `log2` of the whole branch's partial-match
    /// bound (product of per-element windowed counts, Kleene elements
    /// contributing `2^{rW}`). Default: 40 (≈ 10^12).
    pub max_total_log2: f64,
}

impl Default for BlowupOptions {
    fn default() -> Self {
        BlowupOptions {
            max_kleene_exponent: 20.0,
            max_total_log2: 40.0,
        }
    }
}

/// Flags Kleene/window state-blowup risks (`A009`) from measured event
/// rates, using the [`cep_core::stats::PatternStats`] bound: a Kleene
/// element over a type arriving at rate `r` within window `W` admits up
/// to `2^{rW}` partial matches.
pub fn check_state_blowup(
    cp: &CompiledPattern,
    measured: &MeasuredStats,
    opts: &BlowupOptions,
) -> Report {
    let mut report = Report::new();
    let w = cp.window as f64;
    let mut total_log2 = 0.0f64;
    for e in &cp.elements {
        let rate = measured.rate(e.event_type);
        let in_window = rate * w;
        if e.kleene {
            total_log2 += in_window;
            if in_window > opts.max_kleene_exponent {
                report.push(Diagnostic::new(
                    Code::A009,
                    format!(
                        "Kleene element {:?} sees ≈{in_window:.1} events per {} ms window; \
                         the power-set bound admits 2^{in_window:.0} partial matches \
                         (threshold 2^{:.0}) — consider a tighter window or \
                         StatsOptions::kleene_exponent_cap-aware planning",
                        e.name, cp.window, opts.max_kleene_exponent
                    ),
                ));
            }
        } else if in_window > 1.0 {
            total_log2 += in_window.log2();
        }
    }
    if total_log2 > opts.max_total_log2 && !report.has_code(Code::A009) {
        report.push(Diagnostic::new(
            Code::A009,
            format!(
                "the branch's partial-match bound is ≈2^{total_log2:.0} per window \
                 (threshold 2^{:.0}); expect state blowup at these rates",
                opts.max_total_log2
            ),
        ));
    }
    report
}

#[cfg(test)]
mod tests {
    use super::*;
    use cep_core::event::TypeId;
    use cep_core::pattern::PatternBuilder;
    use cep_core::selection::SelectionStrategy;

    fn attr(position: usize, attr: usize) -> Operand {
        Operand::Attr { position, attr }
    }

    fn int(v: i64) -> Operand {
        Operand::Const(Value::Int(v))
    }

    fn pred(left: Operand, op: CmpOp, right: Operand) -> Predicate {
        Predicate { left, op, right }
    }

    /// SEQ(A a, B b, C c) with the given predicates.
    fn seq3(predicates: Vec<Predicate>) -> CompiledPattern {
        let mut b = PatternBuilder::new(10_000);
        b.strategy(SelectionStrategy::SkipTillAnyMatch);
        let e0 = b.event(TypeId(0), "a");
        let e1 = b.event(TypeId(1), "b");
        let e2 = b.event(TypeId(2), "c");
        for p in predicates {
            b.predicate(p);
        }
        let pat = b.seq([e0, e1, e2]).unwrap();
        CompiledPattern::compile_single(&pat).unwrap()
    }

    #[test]
    fn contradictory_constants_are_unsat() {
        // a.0 == 5 AND a.0 == 7
        let cp = seq3(vec![
            pred(attr(0, 0), CmpOp::Eq, int(5)),
            pred(attr(0, 0), CmpOp::Eq, int(7)),
        ]);
        assert!(analyze_branch(&cp).unsat.is_some());
    }

    #[test]
    fn empty_interval_is_unsat() {
        // a.0 > 10 AND a.0 < 3
        let cp = seq3(vec![
            pred(attr(0, 0), CmpOp::Gt, int(10)),
            pred(attr(0, 0), CmpOp::Lt, int(3)),
        ]);
        assert!(analyze_branch(&cp).unsat.is_some());
        // Boundary: a.0 >= 5 AND a.0 < 5
        let cp = seq3(vec![
            pred(attr(0, 0), CmpOp::Ge, int(5)),
            pred(attr(0, 0), CmpOp::Lt, int(5)),
        ]);
        assert!(analyze_branch(&cp).unsat.is_some());
        // Satisfiable boundary: a.0 >= 5 AND a.0 <= 5
        let cp = seq3(vec![
            pred(attr(0, 0), CmpOp::Ge, int(5)),
            pred(attr(0, 0), CmpOp::Le, int(5)),
        ]);
        assert!(analyze_branch(&cp).unsat.is_none());
    }

    #[test]
    fn strict_order_cycle_is_unsat() {
        // a.0 < b.0 AND b.0 < c.0 AND c.0 < a.0
        let cp = seq3(vec![
            pred(attr(0, 0), CmpOp::Lt, attr(1, 0)),
            pred(attr(1, 0), CmpOp::Lt, attr(2, 0)),
            pred(attr(2, 0), CmpOp::Lt, attr(0, 0)),
        ]);
        assert!(analyze_branch(&cp).unsat.is_some());
        // Non-strict cycle is satisfiable (all equal).
        let cp = seq3(vec![
            pred(attr(0, 0), CmpOp::Le, attr(1, 0)),
            pred(attr(1, 0), CmpOp::Le, attr(2, 0)),
            pred(attr(2, 0), CmpOp::Le, attr(0, 0)),
        ]);
        assert!(analyze_branch(&cp).unsat.is_none());
    }

    #[test]
    fn equality_propagates_through_congruence_closure() {
        // a.0 == b.0, b.0 == c.0, a.0 == 5, c.0 == 9 → unsat.
        let cp = seq3(vec![
            pred(attr(0, 0), CmpOp::Eq, attr(1, 0)),
            pred(attr(1, 0), CmpOp::Eq, attr(2, 0)),
            pred(attr(0, 0), CmpOp::Eq, int(5)),
            pred(attr(2, 0), CmpOp::Eq, int(9)),
        ]);
        assert!(analyze_branch(&cp).unsat.is_some());
    }

    #[test]
    fn ne_against_forced_equality_is_unsat() {
        let cp = seq3(vec![
            pred(attr(0, 0), CmpOp::Eq, attr(1, 0)),
            pred(attr(0, 0), CmpOp::Ne, attr(1, 0)),
        ]);
        assert!(analyze_branch(&cp).unsat.is_some());
    }

    #[test]
    fn ts_precedence_feeds_the_order_graph() {
        // SEQ forces a before b; a predicate demanding b.ts < a.ts is unsat.
        let cp = seq3(vec![pred(
            Operand::Ts { position: 1 },
            CmpOp::Lt,
            Operand::Ts { position: 0 },
        )]);
        assert!(analyze_branch(&cp).unsat.is_some());
    }

    #[test]
    fn window_gap_is_unsat() {
        // Window is 10 000 ms; pin a.ts ≥ 100 000 and c.ts ≤ 50 000.
        let cp = seq3(vec![
            pred(Operand::Ts { position: 0 }, CmpOp::Ge, int(100_000)),
            pred(Operand::Ts { position: 2 }, CmpOp::Le, int(50_000)),
        ]);
        assert!(analyze_branch(&cp).unsat.is_some());
    }

    #[test]
    fn incomparable_constants_in_one_class_are_unsat() {
        let cp = seq3(vec![
            pred(attr(0, 0), CmpOp::Eq, int(5)),
            pred(
                attr(0, 0),
                CmpOp::Eq,
                Operand::Const(Value::Str("five".into())),
            ),
        ]);
        assert!(analyze_branch(&cp).unsat.is_some());
    }

    #[test]
    fn satisfiable_queries_are_not_flagged() {
        let cp = seq3(vec![
            pred(attr(0, 0), CmpOp::Lt, attr(1, 0)),
            pred(attr(1, 0), CmpOp::Lt, attr(2, 0)),
            pred(attr(0, 1), CmpOp::Eq, attr(2, 1)),
            pred(attr(2, 0), CmpOp::Ge, int(10)),
        ]);
        let a = analyze_branch(&cp);
        assert!(a.unsat.is_none());
        assert!(a.redundant.is_empty(), "{:?}", a.report);
    }

    #[test]
    fn duplicate_predicate_is_redundant() {
        let cp = seq3(vec![
            pred(attr(0, 0), CmpOp::Lt, attr(1, 0)),
            pred(attr(0, 0), CmpOp::Lt, attr(1, 0)),
        ]);
        let a = analyze_branch(&cp);
        assert!(a.unsat.is_none());
        assert_eq!(a.redundant.len(), 1);
        assert!(a.report.has_code(Code::A006));
    }

    #[test]
    fn transitive_order_implication_is_redundant() {
        // a.0 < b.0 AND b.0 < c.0 makes a.0 < c.0 redundant.
        let cp = seq3(vec![
            pred(attr(0, 0), CmpOp::Lt, attr(1, 0)),
            pred(attr(1, 0), CmpOp::Lt, attr(2, 0)),
            pred(attr(0, 0), CmpOp::Lt, attr(2, 0)),
        ]);
        let a = analyze_branch(&cp);
        assert_eq!(a.redundant.len(), 1);
    }

    #[test]
    fn interval_subsumption_is_redundant() {
        // a.0 > 10 makes a.0 > 5 redundant (and ≥ 10 makes ≥ 5).
        let cp = seq3(vec![
            pred(attr(0, 0), CmpOp::Gt, int(10)),
            pred(attr(0, 0), CmpOp::Gt, int(5)),
        ]);
        let a = analyze_branch(&cp);
        assert_eq!(a.redundant.len(), 1, "{:?}", a.report);
    }

    #[test]
    fn ts_predicate_implied_by_seq_order_is_redundant() {
        let cp = seq3(vec![pred(
            Operand::Ts { position: 0 },
            CmpOp::Lt,
            Operand::Ts { position: 1 },
        )]);
        let a = analyze_branch(&cp);
        assert_eq!(a.redundant.len(), 1, "{:?}", a.report);
    }

    #[test]
    fn self_comparison_is_not_removed() {
        // `a.0 == a.0` is false for events missing the attribute, so the
        // analyzer must not claim removal safety.
        let cp = seq3(vec![pred(attr(0, 0), CmpOp::Eq, attr(0, 0))]);
        let a = analyze_branch(&cp);
        assert!(a.unsat.is_none());
        assert!(a.redundant.is_empty());
    }

    #[test]
    fn constant_only_predicate_is_a007() {
        let cp = seq3(vec![pred(int(3), CmpOp::Gt, int(5))]);
        let a = analyze_branch(&cp);
        // Engines skip it, so the query is NOT unsatisfiable.
        assert!(a.unsat.is_none());
        assert!(a.report.has_code(Code::A007));
        assert_eq!(a.redundant.len(), 1);
    }

    #[test]
    fn dead_negation_is_a008() {
        // SEQ(A a, NOT(B x), C c) where x.0 < 2 AND x.0 > 7.
        let mut b = PatternBuilder::new(10_000);
        let e0 = b.event(TypeId(0), "a");
        let ex = b.event(TypeId(1), "x");
        let e2 = b.event(TypeId(2), "c");
        b.predicate(pred(attr(ex.pos(), 0), CmpOp::Lt, int(2)));
        b.predicate(pred(attr(ex.pos(), 0), CmpOp::Gt, int(7)));
        let exprs = vec![b.expr(e0), b.not(ex), b.expr(e2)];
        let pat = b.seq_exprs(exprs).unwrap();
        let cp = CompiledPattern::compile_single(&pat).unwrap();
        let a = analyze_branch(&cp);
        assert!(a.unsat.is_none(), "positives must stay satisfiable");
        assert!(a.report.has_code(Code::A008), "{:?}", a.report);
    }

    #[test]
    fn live_negation_is_not_flagged() {
        let mut b = PatternBuilder::new(10_000);
        let e0 = b.event(TypeId(0), "a");
        let ex = b.event(TypeId(1), "x");
        let e2 = b.event(TypeId(2), "c");
        b.predicate(pred(attr(ex.pos(), 0), CmpOp::Gt, int(7)));
        let exprs = vec![b.expr(e0), b.not(ex), b.expr(e2)];
        let pat = b.seq_exprs(exprs).unwrap();
        let cp = CompiledPattern::compile_single(&pat).unwrap();
        let a = analyze_branch(&cp);
        assert!(!a.report.has_code(Code::A008), "{:?}", a.report);
    }

    #[test]
    fn blowup_warning_fires_on_hot_kleene() {
        let mut b = PatternBuilder::new(10_000);
        let e0 = b.event(TypeId(0), "a");
        let ek = b.event(TypeId(1), "k");
        let exprs = vec![b.expr(e0), b.kleene(ek)];
        let pat = b.seq_exprs(exprs).unwrap();
        let cp = CompiledPattern::compile_single(&pat).unwrap();
        let mut measured = MeasuredStats::default();
        measured.set_rate(TypeId(0), 0.001);
        measured.set_rate(TypeId(1), 0.01); // 100 events per 10 s window
        let r = check_state_blowup(&cp, &measured, &BlowupOptions::default());
        assert!(r.has_code(Code::A009), "{r}");
        // Cold stream: no warning.
        let mut cold = MeasuredStats::default();
        cold.set_rate(TypeId(0), 0.0001);
        cold.set_rate(TypeId(1), 0.0005);
        let r = check_state_blowup(&cp, &cold, &BlowupOptions::default());
        assert!(r.is_clean(), "{r}");
    }
}
