//! The diagnostic framework shared by every static check: stable error
//! codes, severities, optional source spans, and a collecting report.

use cep_core::span::Span;
use std::fmt;

/// Stable diagnostic codes emitted by the analyzer.
///
/// Codes are append-only: a code's meaning never changes once released,
/// so downstream tooling can match on them.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
#[non_exhaustive]
pub enum Code {
    /// The predicate set (plus temporal constraints) is unsatisfiable:
    /// the query can never produce a match.
    A001,
    /// An event type referenced by the pattern is not in the catalog.
    A002,
    /// An attribute index is out of bounds for its event type's schema.
    A003,
    /// A comparison between incompatible value kinds (e.g. a string
    /// against a number): it evaluates to false for every event.
    A004,
    /// A schema declares an attribute named `ts`, which the SASE surface
    /// syntax shadows with the intrinsic occurrence timestamp.
    A005,
    /// A predicate implied by the remaining predicates; removing it
    /// cannot change the match set.
    A006,
    /// A constant-only predicate (no event operand); engines skip these
    /// entirely, so it has no effect on matching.
    A007,
    /// A dead negation: the `NOT` element's constraints are
    /// unsatisfiable, so it can never reject a match.
    A008,
    /// Kleene/window state blowup: the `2^{rW}` partial-match bound for
    /// a Kleene element exceeds the configured threshold.
    A009,
    /// A plan invariant violation: planner output does not preserve the
    /// predicate multiset, negation anchoring, or partition soundness.
    A010,
}

impl Code {
    /// The code as printed, e.g. `"A001"`.
    pub fn as_str(&self) -> &'static str {
        match self {
            Code::A001 => "A001",
            Code::A002 => "A002",
            Code::A003 => "A003",
            Code::A004 => "A004",
            Code::A005 => "A005",
            Code::A006 => "A006",
            Code::A007 => "A007",
            Code::A008 => "A008",
            Code::A009 => "A009",
            Code::A010 => "A010",
        }
    }

    /// Default severity of this code.
    pub fn severity(&self) -> Severity {
        match self {
            Code::A001 | Code::A002 | Code::A003 | Code::A004 | Code::A010 => Severity::Error,
            Code::A005 | Code::A006 | Code::A007 | Code::A008 | Code::A009 => Severity::Warning,
        }
    }

    /// One-line description of the condition the code reports.
    pub fn description(&self) -> &'static str {
        match self {
            Code::A001 => "unsatisfiable predicate set: the query can never match",
            Code::A002 => "unknown event type",
            Code::A003 => "attribute index out of bounds for the event schema",
            Code::A004 => "type-incompatible comparison: always false",
            Code::A005 => "attribute shadows the intrinsic `ts` timestamp",
            Code::A006 => "redundant predicate: implied by the remaining predicates",
            Code::A007 => "constant-only predicate: ignored by the engines",
            Code::A008 => "dead negation: the NOT can never reject a match",
            Code::A009 => "Kleene/window state blowup risk",
            Code::A010 => "plan invariant violation",
        }
    }
}

impl fmt::Display for Code {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.as_str())
    }
}

/// How serious a diagnostic is.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum Severity {
    /// Suspicious but not match-preventing.
    Warning,
    /// The query (or plan) is broken: it cannot behave as written.
    Error,
}

impl fmt::Display for Severity {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Severity::Warning => f.write_str("warning"),
            Severity::Error => f.write_str("error"),
        }
    }
}

/// One finding: a code, a severity, a human-readable message, and an
/// optional source location.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Diagnostic {
    /// Stable code.
    pub code: Code,
    /// Severity; defaults to [`Code::severity`] but may be downgraded
    /// (e.g. an unsatisfiable branch of a multi-branch `OR` is a
    /// warning, not an error).
    pub severity: Severity,
    /// Human-readable message.
    pub message: String,
    /// Source location, when the originating construct has one.
    pub span: Option<Span>,
}

impl Diagnostic {
    /// Creates a diagnostic with the code's default severity.
    pub fn new(code: Code, message: impl Into<String>) -> Diagnostic {
        Diagnostic {
            code,
            severity: code.severity(),
            message: message.into(),
            span: None,
        }
    }

    /// Attaches a source span.
    pub fn with_span(mut self, span: Span) -> Diagnostic {
        self.span = Some(span);
        self
    }

    /// Downgrades the diagnostic to a warning.
    pub fn as_warning(mut self) -> Diagnostic {
        self.severity = Severity::Warning;
        self
    }
}

impl fmt::Display for Diagnostic {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}[{}]: {}", self.severity, self.code, self.message)?;
        if let Some(span) = &self.span {
            write!(f, " (at {span})")?;
        }
        Ok(())
    }
}

/// An ordered collection of diagnostics produced by one analysis run.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct Report {
    diagnostics: Vec<Diagnostic>,
}

impl Report {
    /// Creates an empty report.
    pub fn new() -> Report {
        Report::default()
    }

    /// Adds a diagnostic.
    pub fn push(&mut self, d: Diagnostic) {
        self.diagnostics.push(d);
    }

    /// Appends every diagnostic of `other`.
    pub fn merge(&mut self, other: Report) {
        self.diagnostics.extend(other.diagnostics);
    }

    /// The diagnostics, in emission order.
    pub fn diagnostics(&self) -> &[Diagnostic] {
        &self.diagnostics
    }

    /// Iterates over the diagnostics.
    pub fn iter(&self) -> impl Iterator<Item = &Diagnostic> {
        self.diagnostics.iter()
    }

    /// Number of diagnostics.
    pub fn len(&self) -> usize {
        self.diagnostics.len()
    }

    /// Whether the report contains no diagnostics at all.
    pub fn is_empty(&self) -> bool {
        self.diagnostics.is_empty()
    }

    /// Whether the report is clean: no diagnostics of any severity.
    pub fn is_clean(&self) -> bool {
        self.is_empty()
    }

    /// Whether any diagnostic is an error.
    pub fn has_errors(&self) -> bool {
        self.diagnostics
            .iter()
            .any(|d| d.severity == Severity::Error)
    }

    /// Whether some diagnostic carries the given code.
    pub fn has_code(&self, code: Code) -> bool {
        self.diagnostics.iter().any(|d| d.code == code)
    }
}

impl fmt::Display for Report {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        for d in &self.diagnostics {
            writeln!(f, "{d}")?;
        }
        Ok(())
    }
}

impl IntoIterator for Report {
    type Item = Diagnostic;
    type IntoIter = std::vec::IntoIter<Diagnostic>;
    fn into_iter(self) -> Self::IntoIter {
        self.diagnostics.into_iter()
    }
}

/// Every diagnostic code, for documentation and `--explain`-style listings.
pub const ALL_CODES: [Code; 10] = [
    Code::A001,
    Code::A002,
    Code::A003,
    Code::A004,
    Code::A005,
    Code::A006,
    Code::A007,
    Code::A008,
    Code::A009,
    Code::A010,
];

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn codes_roundtrip_and_have_metadata() {
        for code in ALL_CODES {
            assert!(code.as_str().starts_with('A'));
            assert!(!code.description().is_empty());
        }
        assert_eq!(Code::A001.severity(), Severity::Error);
        assert_eq!(Code::A006.severity(), Severity::Warning);
    }

    #[test]
    fn report_tracks_errors_and_cleanliness() {
        let mut r = Report::new();
        assert!(r.is_clean());
        assert!(!r.has_errors());
        r.push(Diagnostic::new(Code::A006, "dup"));
        assert!(!r.is_clean());
        assert!(!r.has_errors());
        r.push(Diagnostic::new(Code::A001, "contradiction"));
        assert!(r.has_errors());
        assert!(r.has_code(Code::A001));
        assert!(!r.has_code(Code::A009));
        assert_eq!(r.len(), 2);
    }

    #[test]
    fn downgraded_diagnostics_are_warnings() {
        let d = Diagnostic::new(Code::A001, "dead OR branch").as_warning();
        assert_eq!(d.severity, Severity::Warning);
        assert!(d.to_string().starts_with("warning[A001]"));
    }

    #[test]
    fn display_includes_span_when_present() {
        let d = Diagnostic::new(Code::A002, "unknown type")
            .with_span(cep_core::span::Span::locate("ab\ncd", 3));
        let s = d.to_string();
        assert!(s.contains("error[A002]"));
        assert!(s.contains("line 2, column 1"));
    }
}
