#![deny(missing_docs)]
//! Static query and plan analysis for the CEP stack.
//!
//! The crate lints queries **before** they run and verifies planner
//! output **as** it is produced:
//!
//! * [`semantic`] — schema-level checks against a
//!   [`Catalog`]: unknown event types (`A002`),
//!   out-of-bounds attributes (`A003`), type-incompatible comparisons
//!   (`A004`), timestamp-shadowing attributes (`A005`).
//! * [`absint`] — abstract interpretation over compiled branches:
//!   congruence closure over `==`, an interval domain, and an order
//!   digraph that also folds in `SEQ` precedence and the time window.
//!   Detects unsatisfiable queries (`A001`), redundant (`A006`) and
//!   constant-only (`A007`) predicates, dead negations (`A008`), and
//!   Kleene/window state blowup (`A009`).
//! * [`plan_verify`] — plan-invariant verification (`A010`): predicate
//!   multiset preservation, negation anchoring, precedence sanity, and
//!   partition-spec soundness. The optimizer, the adaptive swap path,
//!   and the sharded runtime call these in debug builds.
//! * [`query_file`] — self-contained `.sase` files (`TYPE` header plus
//!   pattern), the input format of the `cep-lint` binary.
//!
//! The analyzer is conservative by construction: it reports `A001`/`A006`
//! only when the verdict is provable under engine semantics, so
//! "unsatisfiable" really means *zero matches on every stream* — the
//! property the differential test sweep enforces against the naive
//! oracle engine.

pub mod absint;
pub mod diagnostic;
pub mod plan_verify;
pub mod query_file;
pub mod semantic;

pub use absint::{analyze_branch, check_state_blowup, BlowupOptions, BranchAnalysis};
pub use diagnostic::{Code, Diagnostic, Report, Severity, ALL_CODES};
pub use plan_verify::{
    verify_order_plan, verify_partition_spec, verify_pattern_invariants, verify_tree_plan,
};
pub use query_file::{parse_query_file, QueryFile};
pub use semantic::check_pattern;

use cep_core::compile::CompiledPattern;
use cep_core::error::CepError;
use cep_core::pattern::Pattern;
use cep_core::schema::Catalog;

/// Runs the full analysis pipeline on a pattern: semantic checks, then —
/// when the pattern is semantically sound — per-branch abstract
/// interpretation and compile-output invariant verification.
///
/// Returns `Err` only when the pattern is structurally invalid (it does
/// not even compile); lint findings, including fatal ones, come back as
/// diagnostics in the [`Report`].
///
/// `A001` grading: for a single-branch query an unsatisfiable branch is
/// an error (the query can never match); for a multi-branch `OR`, one
/// dead branch is a warning and the error fires only when *every*
/// branch is dead.
pub fn analyze_pattern(pattern: &Pattern, catalog: &Catalog) -> Result<Report, CepError> {
    let mut report = semantic::check_pattern(pattern, catalog);
    if report.has_errors() {
        // Deeper analysis of a semantically broken pattern would lint
        // predicates that cannot mean what they say; stop here.
        return Ok(report);
    }
    let branches = CompiledPattern::compile(pattern)?;
    let mut dead: Vec<(usize, String)> = Vec::new();
    for (bi, cp) in branches.iter().enumerate() {
        let analysis = absint::analyze_branch(cp);
        report.merge(analysis.report);
        if let Some(reason) = analysis.unsat {
            dead.push((bi, reason));
        }
        if let Err(e) = plan_verify::verify_pattern_invariants(cp) {
            report.push(Diagnostic::new(
                Code::A010,
                format!("compiled branch #{bi} violates pattern invariants: {e}"),
            ));
        }
    }
    if dead.len() == branches.len() {
        for (bi, reason) in &dead {
            let msg = if branches.len() == 1 {
                format!("the query can never match: {reason}")
            } else {
                format!("branch #{bi} can never match: {reason}")
            };
            report.push(Diagnostic::new(Code::A001, msg));
        }
    } else {
        for (bi, reason) in &dead {
            report.push(
                Diagnostic::new(
                    Code::A001,
                    format!("branch #{bi} of the OR can never match ({reason}); it is dead weight"),
                )
                .as_warning(),
            );
        }
    }
    Ok(report)
}

/// Parses and analyzes a `.sase` query file in one step.
///
/// Returns the parsed [`QueryFile`] and its lint [`Report`]; `Err` means
/// the file itself does not parse.
pub fn analyze_query_file(source: &str) -> Result<(QueryFile, Report), CepError> {
    let qf = query_file::parse_query_file(source)?;
    let report = analyze_pattern(&qf.pattern, &qf.catalog)?;
    Ok((qf, report))
}

#[cfg(test)]
mod tests {
    use super::*;
    use cep_core::event::TypeId;
    use cep_core::pattern::PatternBuilder;
    use cep_core::predicate::{CmpOp, Operand, Predicate};
    use cep_core::schema::ValueKind;
    use cep_core::value::Value;

    fn catalog() -> Catalog {
        let mut cat = Catalog::new();
        cat.add_type("A", &[("x", ValueKind::Int)]).unwrap();
        cat.add_type("B", &[("x", ValueKind::Int)]).unwrap();
        cat
    }

    fn contradiction(position: usize) -> [Predicate; 2] {
        let attr = |position, attr| Operand::Attr { position, attr };
        [
            Predicate {
                left: attr(position, 0),
                op: CmpOp::Lt,
                right: Operand::Const(Value::Int(0)),
            },
            Predicate {
                left: attr(position, 0),
                op: CmpOp::Gt,
                right: Operand::Const(Value::Int(0)),
            },
        ]
    }

    #[test]
    fn unsat_single_branch_is_an_error() {
        let cat = catalog();
        let mut b = PatternBuilder::new(1000);
        let a = b.event(cat.type_id("A").unwrap(), "a");
        let c = b.event(cat.type_id("B").unwrap(), "b");
        for p in contradiction(a.pos()) {
            b.predicate(p);
        }
        let p = b.seq([a, c]).unwrap();
        let r = analyze_pattern(&p, &cat).unwrap();
        assert!(r.has_code(Code::A001));
        assert!(r.has_errors());
    }

    #[test]
    fn one_dead_or_branch_is_a_warning() {
        let cat = catalog();
        let mut b = PatternBuilder::new(1000);
        let a = b.event(cat.type_id("A").unwrap(), "a");
        let c = b.event(cat.type_id("B").unwrap(), "b");
        // The contradiction only binds inside the branch containing `a`.
        for p in contradiction(a.pos()) {
            b.predicate(p);
        }
        let exprs = vec![b.expr(a), b.expr(c)];
        let p = b.or_exprs(exprs).unwrap();
        let r = analyze_pattern(&p, &cat).unwrap();
        assert!(r.has_code(Code::A001), "{r}");
        assert!(!r.has_errors(), "{r}");
    }

    #[test]
    fn clean_query_lints_clean() {
        let cat = catalog();
        let mut b = PatternBuilder::new(1000);
        let a = b.event(cat.type_id("A").unwrap(), "a");
        let c = b.event(cat.type_id("B").unwrap(), "b");
        b.predicate(Predicate {
            left: Operand::Attr {
                position: a.pos(),
                attr: 0,
            },
            op: CmpOp::Lt,
            right: Operand::Attr {
                position: c.pos(),
                attr: 0,
            },
        });
        let p = b.seq([a, c]).unwrap();
        let r = analyze_pattern(&p, &cat).unwrap();
        assert!(r.is_clean(), "{r}");
    }

    #[test]
    fn semantic_errors_short_circuit_deep_analysis() {
        let cat = catalog();
        let mut b = PatternBuilder::new(1000);
        let a = b.event(TypeId(42), "a"); // unknown type
        let c = b.event(cat.type_id("B").unwrap(), "b");
        for p in contradiction(a.pos()) {
            b.predicate(p);
        }
        let p = b.seq([a, c]).unwrap();
        let r = analyze_pattern(&p, &cat).unwrap();
        assert!(r.has_code(Code::A002));
        assert!(!r.has_code(Code::A001));
    }

    #[test]
    fn query_file_pipeline_works_end_to_end() {
        let src = "TYPE A(x int)\nTYPE B(x int)\n\
                   PATTERN SEQ(A a, B b)\nWHERE (a.x < 0 AND a.x > 0)\nWITHIN 1 s\n";
        let (_qf, report) = analyze_query_file(src).unwrap();
        assert!(report.has_code(Code::A001), "{report}");
    }
}
