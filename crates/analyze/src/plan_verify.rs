//! Plan-invariant verification: lints planner output against the
//! compiled pattern it claims to evaluate.
//!
//! Every check returns `Err(CepError::Plan("A010: ..."))` on violation so
//! debug builds of the planner, the adaptive swap path, and the sharded
//! runtime can fail fast on a plan that would silently drop predicates,
//! mis-anchor a negation, or route events unsoundly.

use cep_core::compile::{CompiledPattern, NaryOp};
use cep_core::error::CepError;
use cep_core::partition::PartitionSpec;
use cep_core::plan::{OrderPlan, TreePlan};
use std::collections::HashMap;

fn a010(message: impl std::fmt::Display) -> CepError {
    CepError::Plan(format!("A010: {message}"))
}

/// Verifies the structural invariants every compiled branch must uphold,
/// independent of any particular evaluation order:
///
/// 1. **Predicate multiset preservation** — each predicate is reachable
///    from the evaluation indexes exactly as often as its position
///    profile demands (constant-only predicates are skipped; a predicate
///    between two negated elements appears in both negations' lists).
/// 2. **Negation anchoring** — every negated element's `before`/`after`
///    anchors are in range, disjoint, and consistent with the precedence
///    relation.
/// 3. **Precedence sanity** — irreflexive, antisymmetric, and total for
///    `SEQ` branches.
pub fn verify_pattern_invariants(cp: &CompiledPattern) -> Result<(), CepError> {
    let n = cp.n();
    let pos_to_elem: HashMap<usize, usize> = cp
        .elements
        .iter()
        .enumerate()
        .map(|(i, e)| (e.position, i))
        .collect();
    let pos_to_neg: HashMap<usize, usize> = cp
        .negated
        .iter()
        .enumerate()
        .map(|(k, ne)| (ne.position, k))
        .collect();

    // Expected reachability count per predicate.
    let mut expected = vec![0usize; cp.predicates.len()];
    for (pi, p) in cp.predicates.iter().enumerate() {
        let (a, b) = p.position_pair();
        if a == usize::MAX {
            continue; // constant-only: engines skip it
        }
        let resolve = |pos: usize| -> Result<bool, CepError> {
            if pos_to_elem.contains_key(&pos) {
                Ok(false)
            } else if pos_to_neg.contains_key(&pos) {
                Ok(true)
            } else {
                Err(a010(format!(
                    "predicate #{pi} `{p}` references position {pos}, which is neither a \
                     positive nor a negated element of the branch"
                )))
            }
        };
        let a_neg = resolve(a)?;
        expected[pi] = match b {
            None => 1,
            Some(b) => {
                let b_neg = resolve(b)?;
                if a_neg && b_neg {
                    2 // indexed under both negations
                } else {
                    1
                }
            }
        };
    }

    // Actual reachability from the evaluation indexes.
    let mut actual = vec![0usize; cp.predicates.len()];
    let mut bump = |pi: usize| -> Result<(), CepError> {
        match actual.get_mut(pi) {
            Some(c) => {
                *c += 1;
                Ok(())
            }
            None => Err(a010(format!(
                "evaluation index references predicate #{pi}, but the branch has only {} \
                 predicates",
                cp.predicates.len()
            ))),
        }
    };
    for i in 0..n {
        for &pi in cp.filters_of(i) {
            bump(pi)?;
        }
        for j in (i + 1)..n {
            for &pi in cp.predicates_between(i, j) {
                bump(pi)?;
            }
        }
    }
    for k in 0..cp.negated.len() {
        for &pi in cp.negated_predicates(k) {
            bump(pi)?;
        }
    }
    for (pi, (&exp, &act)) in expected.iter().zip(actual.iter()).enumerate() {
        if exp != act {
            return Err(a010(format!(
                "predicate multiset not preserved: predicate #{pi} `{}` should be reachable \
                 {exp} time(s) from the evaluation indexes but is reachable {act} time(s)",
                cp.predicates[pi]
            )));
        }
    }

    // Negation anchoring.
    for (k, ne) in cp.negated.iter().enumerate() {
        for &i in ne.before.iter().chain(ne.after.iter()) {
            if i >= n {
                return Err(a010(format!(
                    "negated element {:?} anchors on element index {i}, but the branch has \
                     only {n} positive elements",
                    ne.name
                )));
            }
        }
        if let Some(&i) = ne.before.iter().find(|i| ne.after.contains(i)) {
            return Err(a010(format!(
                "negated element {:?} lists element {i} both before and after the forbidden \
                 interval",
                ne.name
            )));
        }
        for &b in &ne.before {
            for &a in &ne.after {
                if !cp.must_precede(b, a) {
                    return Err(a010(format!(
                        "negated element {:?} is anchored between elements {b} and {a}, but \
                         the precedence relation does not order them",
                        ne.name
                    )));
                }
            }
        }
        let _ = k;
    }

    // Precedence relation sanity.
    for i in 0..n {
        if cp.must_precede(i, i) {
            return Err(a010(format!(
                "precedence relation is reflexive at element {i}"
            )));
        }
        for j in (i + 1)..n {
            if cp.must_precede(i, j) && cp.must_precede(j, i) {
                return Err(a010(format!(
                    "precedence relation orders elements {i} and {j} both ways"
                )));
            }
            if cp.op == NaryOp::Seq && !(cp.must_precede(i, j) || cp.must_precede(j, i)) {
                return Err(a010(format!(
                    "SEQ branch leaves elements {i} and {j} unordered"
                )));
            }
        }
    }

    Ok(())
}

/// Verifies an order-based (NFA) plan against its compiled branch: the
/// plan must be a permutation of the branch's elements, and the branch
/// itself must satisfy [`verify_pattern_invariants`].
pub fn verify_order_plan(cp: &CompiledPattern, plan: &OrderPlan) -> Result<(), CepError> {
    plan.validate(cp)?;
    let mut seen = vec![false; cp.n()];
    for &i in plan.order() {
        match seen.get_mut(i) {
            Some(s) if !*s => *s = true,
            Some(_) => {
                return Err(a010(format!("order plan visits element {i} twice")));
            }
            None => {
                return Err(a010(format!(
                    "order plan references element {i}, but the branch has only {} elements",
                    cp.n()
                )));
            }
        }
    }
    verify_pattern_invariants(cp)
}

/// Verifies a tree plan against its compiled branch: the leaves must be
/// exactly the branch's elements (each once), and the branch must
/// satisfy [`verify_pattern_invariants`].
pub fn verify_tree_plan(cp: &CompiledPattern, plan: &TreePlan) -> Result<(), CepError> {
    plan.validate(cp)?;
    let mut leaves = plan.root.leaves();
    leaves.sort_unstable();
    let expect: Vec<usize> = (0..cp.n()).collect();
    if leaves != expect {
        return Err(a010(format!(
            "tree plan leaves {leaves:?} are not a permutation of the branch's {} elements",
            cp.n()
        )));
    }
    verify_pattern_invariants(cp)
}

/// Verifies a partition spec against the branches it will route for:
/// the spec's own validation (join-key closure over the branch's
/// equivalence classes) plus every branch's structural invariants.
pub fn verify_partition_spec(
    spec: &PartitionSpec,
    branches: &[CompiledPattern],
) -> Result<(), CepError> {
    spec.validate(branches)
        .map_err(|e| a010(format!("partition spec rejected: {e}")))?;
    for cp in branches {
        verify_pattern_invariants(cp)?;
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use cep_core::event::TypeId;
    use cep_core::pattern::PatternBuilder;
    use cep_core::predicate::{CmpOp, Operand, Predicate};
    use cep_core::value::Value;

    fn sample() -> CompiledPattern {
        let mut b = PatternBuilder::new(5_000);
        let a = b.event(TypeId(0), "a");
        let x = b.event(TypeId(1), "x");
        let c = b.event(TypeId(2), "c");
        b.predicate(Predicate {
            left: Operand::Attr {
                position: a.pos(),
                attr: 0,
            },
            op: CmpOp::Eq,
            right: Operand::Attr {
                position: c.pos(),
                attr: 0,
            },
        });
        b.predicate(Predicate {
            left: Operand::Attr {
                position: x.pos(),
                attr: 0,
            },
            op: CmpOp::Gt,
            right: Operand::Const(Value::Int(3)),
        });
        let exprs = vec![b.expr(a), b.not(x), b.expr(c)];
        let pat = b.seq_exprs(exprs).unwrap();
        CompiledPattern::compile_single(&pat).unwrap()
    }

    #[test]
    fn intact_branch_passes() {
        let cp = sample();
        verify_pattern_invariants(&cp).unwrap();
    }

    #[test]
    fn dropped_predicate_is_detected() {
        let mut cp = sample();
        // Appending a predicate after compilation leaves it unreachable
        // from the evaluation indexes: the multiset check must notice.
        cp.predicates.push(Predicate {
            left: Operand::Attr {
                position: 0,
                attr: 1,
            },
            op: CmpOp::Lt,
            right: Operand::Const(Value::Int(9)),
        });
        let err = verify_pattern_invariants(&cp).unwrap_err();
        assert!(err.to_string().contains("A010"), "{err}");
        assert!(err.to_string().contains("multiset"), "{err}");
    }

    #[test]
    fn order_plan_permutation_is_checked() {
        let cp = sample();
        let good = OrderPlan::new(vec![1, 0]).unwrap();
        verify_order_plan(&cp, &good).unwrap();
        let bad = OrderPlan::new(vec![0]).unwrap();
        let err = verify_order_plan(&cp, &bad).unwrap_err();
        assert!(err.to_string().contains("plan"), "{err}");
    }

    #[test]
    fn tree_plan_leaves_are_checked() {
        use cep_core::plan::TreeNode;
        let cp = sample();
        let good = TreePlan::new(TreeNode::Node(
            Box::new(TreeNode::Leaf(0)),
            Box::new(TreeNode::Leaf(1)),
        ))
        .unwrap();
        verify_tree_plan(&cp, &good).unwrap();
        let bad = TreePlan::new(TreeNode::Node(
            Box::new(TreeNode::Leaf(0)),
            Box::new(TreeNode::Leaf(0)),
        ));
        match bad {
            // Either construction already rejects the duplicate leaf, or
            // verification must.
            Err(_) => {}
            Ok(plan) => {
                assert!(verify_tree_plan(&cp, &plan).is_err());
            }
        }
    }
}
