//! Self-contained `.sase` query files: a schema header of `TYPE`
//! declarations followed by a SASE pattern specification.
//!
//! ```text
//! # fraud detection
//! TYPE SmallTxn(account int, amount float)
//! TYPE Withdrawal(account int, amount float)
//!
//! PATTERN SEQ(KL(SmallTxn s), Withdrawal w)
//! WHERE (s.account == w.account AND w.amount >= 500)
//! WITHIN 30 s
//! ```
//!
//! Blank lines and `#` comments are allowed anywhere before the pattern.
//! Attribute kinds are `int`, `float`, `bool`, and `str`. Parse errors in
//! the pattern section carry spans re-based against the whole file, so
//! `cep-lint` reports the real line and column.

use cep_core::error::CepError;
use cep_core::pattern::Pattern;
use cep_core::schema::{Catalog, ValueKind};
use cep_core::span::Span;

/// A parsed `.sase` query file: the declared catalog, the pattern, and
/// the original source text (for span rendering).
#[derive(Debug, Clone)]
pub struct QueryFile {
    /// Catalog assembled from the `TYPE` header lines.
    pub catalog: Catalog,
    /// The parsed pattern.
    pub pattern: Pattern,
    /// The full file source.
    pub source: String,
}

fn parse_err(message: impl Into<String>, source: &str, offset: usize) -> CepError {
    let span = Span::locate(source, offset);
    CepError::Parse {
        message: message.into(),
        offset,
        line: span.line,
        column: span.column,
    }
}

fn kind_of(word: &str) -> Option<ValueKind> {
    match word {
        "int" => Some(ValueKind::Int),
        "float" => Some(ValueKind::Float),
        "bool" => Some(ValueKind::Bool),
        "str" => Some(ValueKind::Str),
        _ => None,
    }
}

/// Parses one `TYPE Name(attr kind, ...)` declaration body (the part
/// after the `TYPE` keyword). `line_offset` is the byte offset of `rest`
/// within the whole file, for error spans.
fn parse_type_decl(
    rest: &str,
    source: &str,
    line_offset: usize,
    catalog: &mut Catalog,
) -> Result<(), CepError> {
    let rest_trim = rest.trim();
    let open = rest_trim
        .find('(')
        .ok_or_else(|| parse_err("TYPE declaration is missing '('", source, line_offset))?;
    let close = rest_trim
        .rfind(')')
        .ok_or_else(|| parse_err("TYPE declaration is missing ')'", source, line_offset))?;
    if close < open {
        return Err(parse_err("malformed TYPE declaration", source, line_offset));
    }
    let name = rest_trim[..open].trim();
    if name.is_empty() || !name.chars().all(|c| c.is_alphanumeric() || c == '_') {
        return Err(parse_err(
            format!("invalid type name {name:?} in TYPE declaration"),
            source,
            line_offset,
        ));
    }
    let mut attrs: Vec<(&str, ValueKind)> = Vec::new();
    let body = rest_trim[open + 1..close].trim();
    if !body.is_empty() {
        for part in body.split(',') {
            let mut words = part.split_whitespace();
            let (Some(attr), Some(kind_word), None) = (words.next(), words.next(), words.next())
            else {
                return Err(parse_err(
                    format!("expected `name kind` in TYPE attribute, got {part:?}"),
                    source,
                    line_offset,
                ));
            };
            let Some(kind) = kind_of(kind_word) else {
                return Err(parse_err(
                    format!(
                        "unknown attribute kind {kind_word:?} (expected int, float, bool, or str)"
                    ),
                    source,
                    line_offset,
                ));
            };
            attrs.push((attr, kind));
        }
    }
    catalog.add_type(name, &attrs).map_err(|e| {
        parse_err(
            format!("invalid TYPE declaration: {e}"),
            source,
            line_offset,
        )
    })?;
    Ok(())
}

/// Parses a complete `.sase` query file: `TYPE` header plus pattern.
pub fn parse_query_file(source: &str) -> Result<QueryFile, CepError> {
    let mut catalog = Catalog::new();
    let mut offset = 0usize;
    let mut pattern_start: Option<usize> = None;
    for line in source.split_inclusive('\n') {
        let trimmed = line.trim();
        if trimmed.is_empty() || trimmed.starts_with('#') {
            offset += line.len();
            continue;
        }
        if let Some(rest) = trimmed.strip_prefix("TYPE") {
            if rest.starts_with([' ', '\t']) || rest.starts_with('(') {
                let decl_offset = offset + (line.len() - line.trim_start().len());
                parse_type_decl(rest, source, decl_offset, &mut catalog)?;
                offset += line.len();
                continue;
            }
        }
        // First non-header line: the pattern starts here and runs to EOF.
        pattern_start = Some(offset + (line.len() - line.trim_start().len()));
        break;
    }
    let Some(start) = pattern_start else {
        return Err(parse_err(
            "query file has no pattern (only TYPE declarations and comments)",
            source,
            source.len(),
        ));
    };
    let pattern = cep_sase::parse_pattern(&source[start..], &catalog).map_err(|e| match e {
        // Re-base the parse span against the whole file.
        CepError::Parse {
            message, offset, ..
        } => parse_err(message, source, start + offset),
        other => other,
    })?;
    Ok(QueryFile {
        catalog,
        pattern,
        source: source.to_owned(),
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    const GOOD: &str = "\
# a comment
TYPE SmallTxn(account int, amount float)
TYPE Verify(account int)
TYPE Withdrawal(account int, amount float)

PATTERN SEQ(KL(SmallTxn s), NOT(Verify v), Withdrawal w)
WHERE (s.account == w.account AND v.account == w.account AND w.amount >= 500)
WITHIN 30 s
";

    #[test]
    fn parses_header_and_pattern() {
        let qf = parse_query_file(GOOD).unwrap();
        assert!(qf.catalog.type_id("SmallTxn").is_some());
        assert!(qf.catalog.type_id("Withdrawal").is_some());
        assert_eq!(qf.pattern.window, 30_000);
        assert_eq!(qf.pattern.predicates.len(), 3);
    }

    #[test]
    fn empty_attribute_list_is_allowed() {
        let qf =
            parse_query_file("TYPE Ping()\nTYPE Pong()\nPATTERN SEQ(Ping a, Pong b) WITHIN 1 s\n")
                .unwrap();
        assert_eq!(qf.pattern.window, 1_000);
    }

    #[test]
    fn bad_kind_is_rejected_with_position() {
        let err =
            parse_query_file("TYPE T(x quux)\nPATTERN SEQ(T a, T b) WITHIN 1 s\n").unwrap_err();
        let CepError::Parse { message, line, .. } = err else {
            panic!("expected parse error, got {err:?}");
        };
        assert!(message.contains("quux"), "{message}");
        assert_eq!(line, 1);
    }

    #[test]
    fn pattern_errors_are_rebased_to_file_coordinates() {
        // The bad token is on file line 3 (pattern line 2).
        let src = "TYPE A(x int)\nPATTERN SEQ(A a, A b)\nWHERE (a.nope < 1)\nWITHIN 1 s\n";
        let err = parse_query_file(src).unwrap_err();
        let CepError::Parse { offset, line, .. } = err else {
            panic!("expected parse error, got {err:?}");
        };
        assert_eq!(line, 3, "{err}");
        assert!(src[offset..].starts_with("nope"), "{err}");
    }

    #[test]
    fn missing_pattern_is_an_error() {
        assert!(parse_query_file("TYPE A(x int)\n# nothing else\n").is_err());
    }
}
