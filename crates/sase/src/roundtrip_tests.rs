//! Fuzz-style round-trip property tests for the SASE front end: random
//! generated patterns are pretty-printed, re-parsed, and re-printed, and
//! both hops must be lossless — `parse(pretty(p)) == p` structurally and
//! `pretty(parse(pretty(p))) == pretty(p)` textually. This gives the
//! lexer/parser the randomized coverage they previously lacked: every
//! accepted surface construct (nested operators, `NOT`/`KL` wrappers,
//! attribute/timestamp/constant operands, all comparison operators, all
//! four selection strategies) is exercised from the AST side.

use crate::{parse_pattern, pretty_pattern};
use cep_core::event::TypeId;
use cep_core::pattern::{Pattern, PatternExpr};
use cep_core::predicate::{CmpOp, Operand, Predicate};
use cep_core::schema::{Catalog, ValueKind};
use cep_core::selection::SelectionStrategy;
use cep_core::value::Value;
use proptest::prelude::*;

fn catalog() -> Catalog {
    let mut cat = Catalog::new();
    for name in ["T0", "T1", "T2", "T3"] {
        cat.add_type(name, &[("x", ValueKind::Int), ("y", ValueKind::Float)])
            .unwrap();
    }
    cat
}

/// Drawable description of a random pattern.
#[derive(Debug, Clone)]
struct Spec {
    /// Top-level operator: 0 SEQ, 1 AND, 2 OR.
    top_op: u8,
    /// Per element: (type 0..4, flag 0 plain / 1 not / 2 kleene).
    elements: Vec<(u32, u8)>,
    /// Wrap the last two elements in a nested operator (0..3) instead of
    /// keeping them at top level. Only applied when ≥ 3 elements.
    nest_op: Option<u8>,
    /// Predicates: (left pos, right pos, op code, operand shape).
    /// Shapes: 0 attr-vs-attr, 1 attr-vs-ts, 2 ts-vs-ts, 3 attr-vs-int,
    /// 4 attr-vs-float, 5 int-vs-attr.
    predicates: Vec<(usize, usize, u8, u8, i64)>,
    window: u64,
    strategy_idx: usize,
}

fn nary(op: u8, children: Vec<PatternExpr>) -> PatternExpr {
    match op % 3 {
        0 => PatternExpr::Seq(children),
        1 => PatternExpr::And(children),
        _ => PatternExpr::Or(children),
    }
}

fn op_of(code: u8) -> CmpOp {
    [
        CmpOp::Lt,
        CmpOp::Le,
        CmpOp::Eq,
        CmpOp::Ne,
        CmpOp::Ge,
        CmpOp::Gt,
    ][code as usize % 6]
}

/// Builds the pattern a spec describes, or `None` for draws the language
/// (or pattern validation) rejects — e.g. every element negated.
fn build(spec: &Spec) -> Option<Pattern> {
    let n = spec.elements.len();
    let prims: Vec<PatternExpr> = spec
        .elements
        .iter()
        .enumerate()
        .map(|(i, (ty, flag))| {
            let event = PatternExpr::Event {
                position: i,
                event_type: TypeId(ty % 4),
                name: format!("e{i}"),
            };
            match flag {
                1 => PatternExpr::Not(Box::new(event)),
                2 => PatternExpr::Kleene(Box::new(event)),
                _ => event,
            }
        })
        .collect();
    let expr = match spec.nest_op {
        Some(op) if n >= 3 => {
            let mut prims = prims;
            let tail = prims.split_off(n - 2);
            prims.push(nary(op, tail));
            nary(spec.top_op, prims)
        }
        _ => nary(spec.top_op, prims),
    };
    let predicates = spec
        .predicates
        .iter()
        .map(|&(a, b, opc, shape, lit)| {
            let (a, b) = (a % n, b % n);
            let attr = |pos: usize| Operand::Attr {
                position: pos,
                attr: (lit % 2) as usize,
            };
            let (left, right) = match shape % 6 {
                0 => (attr(a), attr(b)),
                1 => (attr(a), Operand::Ts { position: b }),
                2 => (Operand::Ts { position: a }, Operand::Ts { position: b }),
                3 => (attr(a), Operand::Const(Value::Int(lit.abs()))),
                4 => (
                    attr(a),
                    Operand::Const(Value::Float(lit.abs() as f64 + 0.5)),
                ),
                _ => (Operand::Const(Value::Int(lit.abs())), attr(b)),
            };
            Predicate {
                left,
                op: op_of(opc),
                right,
            }
        })
        .collect();
    let pattern = Pattern {
        expr,
        predicates,
        window: spec.window,
        strategy: [
            SelectionStrategy::SkipTillAnyMatch,
            SelectionStrategy::SkipTillNextMatch,
            SelectionStrategy::StrictContiguity,
            SelectionStrategy::PartitionContiguity,
        ][spec.strategy_idx % 4],
    };
    pattern.validate().ok()?;
    Some(pattern)
}

proptest! {
    #![proptest_config(ProptestConfig {
        cases: 256,
        max_shrink_iters: 200,
    })]

    /// parse ∘ pretty is the identity on generated patterns, and pretty is
    /// a fixed point of the composition.
    #[test]
    fn pretty_parse_roundtrip(
        top_op in 0u8..3,
        elements in prop::collection::vec((0u32..4, 0u8..3), 2..=5),
        nest in any::<bool>(),
        nest_op in 0u8..3,
        predicates in prop::collection::vec(
            (0usize..5, 0usize..5, 0u8..6, 0u8..6, 0i64..100),
            0..=3,
        ),
        window in 1u64..100_000,
        strategy_idx in 0usize..4,
    ) {
        let spec = Spec {
            top_op,
            elements,
            nest_op: nest.then_some(nest_op),
            predicates,
            window,
            strategy_idx,
        };
        let Some(pattern) = build(&spec) else {
            return Ok(()); // rejected by pattern validation: not printable
        };
        let cat = catalog();
        let printed = pretty_pattern(&pattern, &cat).expect("generated patterns are printable");
        let reparsed = parse_pattern(&printed, &cat)
            .unwrap_or_else(|e| panic!("printed spec failed to parse: {e}\n{printed}"));
        prop_assert_eq!(
            &reparsed, &pattern,
            "round trip changed the pattern; printed spec:\n{}", printed
        );
        let reprinted = pretty_pattern(&reparsed, &cat).expect("reparsed pattern is printable");
        prop_assert_eq!(printed, reprinted);
    }
}

#[test]
fn generator_rarely_rejects() {
    // The round-trip property is vacuous if `build` rejects most draws;
    // pin a deterministic sweep showing the generator mostly produces
    // valid patterns (only all-negative element sets are rejected).
    let mut ok = 0;
    let mut total = 0;
    for top_op in 0..3u8 {
        for flags in 0..27u32 {
            let elements = (0..3)
                .map(|i| (i, ((flags / 3u32.pow(i)) % 3) as u8))
                .collect();
            let spec = Spec {
                top_op,
                elements,
                nest_op: None,
                predicates: vec![(0, 2, 0, 0, 1)],
                window: 50,
                strategy_idx: 0,
            };
            total += 1;
            if build(&spec).is_some() {
                ok += 1;
            }
        }
    }
    assert!(
        ok * 2 > total,
        "generator must accept most draws, got {ok}/{total}"
    );
}
