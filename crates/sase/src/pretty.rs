//! Pretty-printer: renders a [`Pattern`] back into the SASE specification
//! language, the inverse of [`crate::parse_pattern`].
//!
//! The printer guarantees **round-trip fidelity**: for any pattern it
//! accepts, `parse_pattern(&pretty_pattern(p, cat)?, cat)` reconstructs a
//! structurally equal pattern. Patterns the surface language cannot
//! express are rejected rather than silently misprinted:
//!
//! * constants the lexer has no literal for (negative numbers, strings,
//!   floats with integral value — those re-parse as `Int`);
//! * attributes literally named `ts` (the spelling `var.ts` is reserved
//!   for the occurrence timestamp);
//! * unary operators over anything but a primitive event;
//! * variable or type names that are not plain identifiers, collide with
//!   a keyword (`PATTERN`, `SEQ`, …, `true`), or repeat across variables
//!   — the printed spec would fail or change meaning on re-parse.

use cep_core::error::CepError;
use cep_core::pattern::{Pattern, PatternExpr};
use cep_core::predicate::Operand;
use cep_core::schema::Catalog;
use cep_core::selection::SelectionStrategy;
use cep_core::value::Value;
use std::collections::HashMap;
use std::fmt::Write;

/// Words the grammar claims for itself: a variable or type spelled like
/// one would be consumed as structure (or a literal) on re-parse.
const RESERVED: [&str; 11] = [
    "PATTERN", "SEQ", "AND", "OR", "NOT", "KL", "WHERE", "WITHIN", "STRATEGY", "TRUE", "FALSE",
];

/// Whether `name` re-lexes as exactly one identifier token and none of the
/// grammar's (case-insensitive) keywords.
fn printable_name(name: &str) -> bool {
    let mut bytes = name.bytes();
    let head_ok = bytes
        .next()
        .is_some_and(|b| b.is_ascii_alphabetic() || b == b'_');
    head_ok
        && name
            .bytes()
            .skip(1)
            .all(|b| b.is_ascii_alphanumeric() || b == b'_' || b == b'-')
        && !RESERVED.iter().any(|kw| name.eq_ignore_ascii_case(kw))
}

/// Renders `pattern` as a SASE specification string that re-parses (under
/// the same catalog) to a structurally equal pattern.
pub fn pretty_pattern(pattern: &Pattern, catalog: &Catalog) -> Result<String, CepError> {
    // Variable name and type per position, for operand rendering; the
    // names must survive re-lexing, and variables must be unique (the
    // parser rejects a twice-declared variable).
    let mut vars: HashMap<usize, (String, cep_core::event::TypeId)> = HashMap::new();
    let mut seen_names: std::collections::HashSet<&str> = std::collections::HashSet::new();
    let primitives = pattern.primitives();
    for p in &primitives {
        if !printable_name(&p.name) {
            return Err(CepError::Pattern(format!(
                "variable {:?} is not expressible as a SASE identifier",
                p.name
            )));
        }
        if !seen_names.insert(&p.name) {
            return Err(CepError::Pattern(format!(
                "variable {:?} is declared more than once; the printed spec \
                 would not re-parse",
                p.name
            )));
        }
        vars.insert(p.position, (p.name.clone(), p.event_type));
    }
    let mut out = String::from("PATTERN ");
    render_expr(&pattern.expr, catalog, &mut out)?;
    if !pattern.predicates.is_empty() {
        out.push_str(" WHERE ");
        for (i, p) in pattern.predicates.iter().enumerate() {
            if i > 0 {
                out.push_str(" AND ");
            }
            render_operand(&p.left, catalog, &vars, &mut out)?;
            write!(out, " {} ", p.op).expect("writing to String cannot fail");
            render_operand(&p.right, catalog, &vars, &mut out)?;
        }
    }
    write!(out, " WITHIN {} ms", pattern.window).expect("writing to String cannot fail");
    let strategy = match pattern.strategy {
        SelectionStrategy::SkipTillAnyMatch => "skip-till-any-match",
        SelectionStrategy::SkipTillNextMatch => "skip-till-next-match",
        SelectionStrategy::StrictContiguity => "strict-contiguity",
        SelectionStrategy::PartitionContiguity => "partition-contiguity",
    };
    write!(out, " STRATEGY {strategy}").expect("writing to String cannot fail");
    Ok(out)
}

fn type_name(catalog: &Catalog, ty: cep_core::event::TypeId) -> Result<String, CepError> {
    let name = catalog
        .schema(ty)
        .map(|s| s.name.clone())
        .ok_or_else(|| CepError::Pattern(format!("type {ty:?} is not in the catalog")))?;
    if !printable_name(&name) {
        return Err(CepError::Pattern(format!(
            "type name {name:?} is not expressible as a SASE identifier"
        )));
    }
    Ok(name)
}

fn render_expr(expr: &PatternExpr, catalog: &Catalog, out: &mut String) -> Result<(), CepError> {
    match expr {
        PatternExpr::Event {
            event_type, name, ..
        } => {
            write!(out, "{} {name}", type_name(catalog, *event_type)?)
                .expect("writing to String cannot fail");
            Ok(())
        }
        PatternExpr::Not(inner) | PatternExpr::Kleene(inner) => {
            let op = if matches!(expr, PatternExpr::Not(_)) {
                "NOT"
            } else {
                "KL"
            };
            if !matches!(**inner, PatternExpr::Event { .. }) {
                return Err(CepError::Pattern(format!(
                    "{op} over a non-primitive expression is not expressible in SASE syntax"
                )));
            }
            out.push_str(op);
            out.push('(');
            render_expr(inner, catalog, out)?;
            out.push(')');
            Ok(())
        }
        PatternExpr::Seq(children) | PatternExpr::And(children) | PatternExpr::Or(children) => {
            out.push_str(match expr {
                PatternExpr::Seq(_) => "SEQ",
                PatternExpr::And(_) => "AND",
                _ => "OR",
            });
            out.push('(');
            for (i, c) in children.iter().enumerate() {
                if i > 0 {
                    out.push_str(", ");
                }
                render_expr(c, catalog, out)?;
            }
            out.push(')');
            Ok(())
        }
    }
}

fn render_operand(
    operand: &Operand,
    catalog: &Catalog,
    vars: &HashMap<usize, (String, cep_core::event::TypeId)>,
    out: &mut String,
) -> Result<(), CepError> {
    let var_of = |position: usize| {
        vars.get(&position).ok_or_else(|| {
            CepError::Pattern(format!("operand references undeclared position {position}"))
        })
    };
    match operand {
        Operand::Ts { position } => {
            let (var, _) = var_of(*position)?;
            write!(out, "{var}.ts").expect("writing to String cannot fail");
            Ok(())
        }
        Operand::Attr { position, attr } => {
            let (var, ty) = var_of(*position)?;
            let schema = catalog
                .schema(*ty)
                .ok_or_else(|| CepError::Pattern(format!("type {ty:?} is not in the catalog")))?;
            let Some(def) = schema.attributes.get(*attr) else {
                return Err(CepError::Pattern(format!(
                    "type {:?} has no attribute index {attr}",
                    schema.name
                )));
            };
            if def.name == "ts" {
                return Err(CepError::Pattern(
                    "attribute named \"ts\" shadows the timestamp operand and cannot be \
                     printed unambiguously"
                        .into(),
                ));
            }
            write!(out, "{var}.{}", def.name).expect("writing to String cannot fail");
            Ok(())
        }
        Operand::Const(v) => {
            match v {
                Value::Int(n) if *n >= 0 => {
                    write!(out, "{n}").expect("writing to String cannot fail")
                }
                Value::Int(n) => {
                    return Err(CepError::Pattern(format!(
                        "negative literal {n} has no SASE spelling"
                    )))
                }
                Value::Float(x) if x.fract() != 0.0 && x.is_finite() && *x > 0.0 => {
                    write!(out, "{x}").expect("writing to String cannot fail")
                }
                Value::Float(x) => {
                    return Err(CepError::Pattern(format!(
                        "float literal {x} would not re-parse as a float"
                    )))
                }
                Value::Bool(b) => write!(out, "{b}").expect("writing to String cannot fail"),
                other => {
                    return Err(CepError::Pattern(format!(
                        "literal {other} has no SASE spelling"
                    )))
                }
            }
            Ok(())
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::parse_pattern;
    use cep_core::predicate::{CmpOp, Predicate};
    use cep_core::schema::ValueKind;

    fn catalog() -> Catalog {
        let mut cat = Catalog::new();
        for name in ["T0", "T1", "T2", "T3"] {
            cat.add_type(name, &[("x", ValueKind::Int), ("y", ValueKind::Float)])
                .unwrap();
        }
        cat
    }

    #[test]
    fn fixed_point_on_a_hand_written_spec() {
        let cat = catalog();
        let spec = "PATTERN SEQ(T0 a, NOT(T1 b), KL(T2 c), AND(T3 d, T0 e))
                    WHERE a.x < c.x AND d.y >= 2.5 AND a.ts < d.ts AND c.x != 7
                    WITHIN 1500 ms STRATEGY skip-till-next-match";
        let p1 = parse_pattern(spec, &cat).unwrap();
        let printed = pretty_pattern(&p1, &cat).unwrap();
        let p2 = parse_pattern(&printed, &cat).unwrap();
        assert_eq!(p1, p2, "printed spec:\n{printed}");
        assert_eq!(printed, pretty_pattern(&p2, &cat).unwrap());
    }

    #[test]
    fn unrepresentable_literals_are_rejected() {
        let cat = catalog();
        let base = parse_pattern("PATTERN SEQ(T0 a, T1 b) WITHIN 10", &cat).unwrap();
        for bad in [
            Value::Int(-3),
            Value::Float(2.0),
            Value::from("string"),
            Value::Float(f64::NAN),
        ] {
            let mut p = base.clone();
            p.predicates
                .push(Predicate::attr_const(0, 0, CmpOp::Eq, bad.clone()));
            assert!(
                pretty_pattern(&p, &cat).is_err(),
                "literal {bad} must be rejected as unprintable"
            );
        }
        // The representable spellings of the same shapes round-trip.
        let mut p = base.clone();
        p.predicates
            .push(Predicate::attr_const(0, 0, CmpOp::Eq, Value::Int(3)));
        p.predicates
            .push(Predicate::attr_const(1, 1, CmpOp::Gt, Value::Float(2.5)));
        let printed = pretty_pattern(&p, &cat).unwrap();
        assert_eq!(parse_pattern(&printed, &cat).unwrap(), p);
    }

    #[test]
    fn unprintable_names_are_rejected() {
        use cep_core::event::TypeId;
        use cep_core::pattern::PatternExpr;
        use cep_core::selection::SelectionStrategy;
        let cat = catalog();
        let pattern_with_vars = |names: [&str; 2]| Pattern {
            expr: PatternExpr::Seq(
                names
                    .iter()
                    .enumerate()
                    .map(|(i, n)| PatternExpr::Event {
                        position: i,
                        event_type: TypeId(i as u32),
                        name: (*n).to_string(),
                    })
                    .collect(),
            ),
            predicates: vec![],
            window: 10,
            strategy: SelectionStrategy::SkipTillAnyMatch,
        };
        // Duplicate variables, keyword collisions (any case), and
        // non-identifier spellings all refuse to print...
        for bad in [
            ["a", "a"],
            ["true", "b"],
            ["a", "WHERE"],
            ["a", "my var"],
            ["1x", "b"],
            ["a", ""],
        ] {
            assert!(
                pretty_pattern(&pattern_with_vars(bad), &cat).is_err(),
                "variables {bad:?} must be rejected as unprintable"
            );
        }
        // ...while ordinary identifiers round-trip.
        let ok = pattern_with_vars(["a_1", "b-2"]);
        let printed = pretty_pattern(&ok, &cat).unwrap();
        assert_eq!(parse_pattern(&printed, &cat).unwrap(), ok);
        // A catalog type whose name collides with a keyword is rejected.
        let mut kw_cat = Catalog::new();
        kw_cat.add_type("NOT", &[("x", ValueKind::Int)]).unwrap();
        kw_cat.add_type("T1", &[("x", ValueKind::Int)]).unwrap();
        let p = pattern_with_vars(["a", "b"]);
        assert!(pretty_pattern(&p, &kw_cat).is_err());
    }

    #[test]
    fn ts_named_attribute_is_rejected() {
        let mut cat = Catalog::new();
        cat.add_type("E", &[("ts", ValueKind::Int)]).unwrap();
        cat.add_type("F", &[("x", ValueKind::Int)]).unwrap();
        let mut p = parse_pattern("PATTERN SEQ(E a, F b) WITHIN 10", &cat).unwrap();
        p.predicates
            .push(Predicate::attr_const(0, 0, CmpOp::Eq, Value::Int(1)));
        assert!(pretty_pattern(&p, &cat).is_err());
    }
}
