//! # cep-sase
//!
//! Parser for the SASE-style pattern specification language used throughout
//! *Join Query Optimization Techniques for CEP Applications* (VLDB 2018),
//! e.g. the paper's "four cameras" pattern:
//!
//! ```text
//! PATTERN SEQ(A a, B b, C c, D d)
//! WHERE (a.vehicleID == b.vehicleID AND b.vehicleID == c.vehicleID
//!        AND c.vehicleID == d.vehicleID)
//! WITHIN 10 s
//! ```
//!
//! Extensions over the paper's fragment: nested operators inside the
//! `PATTERN` clause (`AND(A a, OR(C c, D d))`), duration units in
//! `WITHIN`, `a.ts` timestamp operands, and an optional `STRATEGY` clause
//! selecting the Section 6.2 event selection strategy.

#![warn(missing_docs)]

mod lexer;
mod parser;
mod pretty;

pub use parser::parse_pattern;
pub use pretty::pretty_pattern;

#[cfg(test)]
mod roundtrip_tests;
