//! Tokenizer for the SASE-style pattern specification language.

use cep_core::error::CepError;
use cep_core::span::Span;

/// A lexical token; the lexer pairs each token with the [`Span`] of its
/// first byte.
#[derive(Debug, Clone, PartialEq)]
pub enum Token {
    /// Identifier or keyword (case preserved; keyword matching is
    /// case-insensitive).
    Ident(String),
    /// Numeric literal.
    Number(f64),
    /// `(`
    LParen,
    /// `)`
    RParen,
    /// `,`
    Comma,
    /// `.`
    Dot,
    /// Comparison operator.
    Cmp(cep_core::predicate::CmpOp),
    /// End of input.
    Eof,
}

/// Token stream with single-token lookahead.
#[derive(Debug)]
pub struct Lexer<'a> {
    input: &'a str,
    bytes: &'a [u8],
    pos: usize,
    peeked: Option<(Token, Span)>,
}

impl<'a> Lexer<'a> {
    /// Creates a lexer over `input`.
    pub fn new(input: &'a str) -> Lexer<'a> {
        Lexer {
            input,
            bytes: input.as_bytes(),
            pos: 0,
            peeked: None,
        }
    }

    /// Current byte offset (for error reporting).
    pub fn offset(&self) -> usize {
        self.peeked
            .as_ref()
            .map(|(_, s)| s.offset)
            .unwrap_or(self.pos)
    }

    /// Span of the next token to be produced (line/column resolved
    /// against the full input).
    pub fn span(&self) -> Span {
        self.span_at(self.offset())
    }

    /// Resolves a byte offset to a [`Span`] within this lexer's input.
    pub fn span_at(&self, offset: usize) -> Span {
        Span::locate(self.input, offset)
    }

    fn error(&self, message: impl Into<String>, offset: usize) -> CepError {
        let span = self.span_at(offset);
        CepError::Parse {
            message: message.into(),
            offset,
            line: span.line,
            column: span.column,
        }
    }

    fn skip_ws(&mut self) {
        while self.pos < self.bytes.len() {
            let b = self.bytes[self.pos];
            if b.is_ascii_whitespace() {
                self.pos += 1;
            } else if b == b'#' {
                // Line comment.
                while self.pos < self.bytes.len() && self.bytes[self.pos] != b'\n' {
                    self.pos += 1;
                }
            } else {
                break;
            }
        }
    }

    fn lex(&mut self) -> Result<(Token, Span), CepError> {
        use cep_core::predicate::CmpOp;
        self.skip_ws();
        let start = self.pos;
        if self.pos >= self.bytes.len() {
            return Ok((Token::Eof, self.span_at(start)));
        }
        let b = self.bytes[self.pos];
        let tok = match b {
            b'(' => {
                self.pos += 1;
                Token::LParen
            }
            b')' => {
                self.pos += 1;
                Token::RParen
            }
            b',' => {
                self.pos += 1;
                Token::Comma
            }
            b'.' => {
                self.pos += 1;
                Token::Dot
            }
            b'<' => {
                self.pos += 1;
                if self.bytes.get(self.pos) == Some(&b'=') {
                    self.pos += 1;
                    Token::Cmp(CmpOp::Le)
                } else {
                    Token::Cmp(CmpOp::Lt)
                }
            }
            b'>' => {
                self.pos += 1;
                if self.bytes.get(self.pos) == Some(&b'=') {
                    self.pos += 1;
                    Token::Cmp(CmpOp::Ge)
                } else {
                    Token::Cmp(CmpOp::Gt)
                }
            }
            b'=' => {
                self.pos += 1;
                if self.bytes.get(self.pos) == Some(&b'=') {
                    self.pos += 1;
                }
                Token::Cmp(CmpOp::Eq)
            }
            b'!' => {
                self.pos += 1;
                if self.bytes.get(self.pos) == Some(&b'=') {
                    self.pos += 1;
                    Token::Cmp(CmpOp::Ne)
                } else {
                    return Err(self.error("expected '=' after '!'", start));
                }
            }
            b'0'..=b'9' => {
                while self.pos < self.bytes.len()
                    && (self.bytes[self.pos].is_ascii_digit() || self.bytes[self.pos] == b'.')
                {
                    // A dot is part of the number only when followed by a
                    // digit (so `3.x` never occurs: attrs follow idents).
                    if self.bytes[self.pos] == b'.'
                        && !self
                            .bytes
                            .get(self.pos + 1)
                            .is_some_and(|c| c.is_ascii_digit())
                    {
                        break;
                    }
                    self.pos += 1;
                }
                let text = &self.input[start..self.pos];
                let v: f64 = text
                    .parse()
                    .map_err(|_| self.error(format!("invalid number {text:?}"), start))?;
                Token::Number(v)
            }
            b'A'..=b'Z' | b'a'..=b'z' | b'_' => {
                while self.pos < self.bytes.len()
                    && (self.bytes[self.pos].is_ascii_alphanumeric()
                        || self.bytes[self.pos] == b'_'
                        || self.bytes[self.pos] == b'-')
                {
                    self.pos += 1;
                }
                Token::Ident(self.input[start..self.pos].to_owned())
            }
            other => {
                return Err(self.error(format!("unexpected character {:?}", other as char), start))
            }
        };
        Ok((tok, self.span_at(start)))
    }

    /// Returns the next token without consuming it.
    pub fn peek(&mut self) -> Result<&Token, CepError> {
        if self.peeked.is_none() {
            self.peeked = Some(self.lex()?);
        }
        Ok(&self.peeked.as_ref().expect("just set").0)
    }

    /// Consumes and returns the next token and the span of its first byte.
    pub fn next(&mut self) -> Result<(Token, Span), CepError> {
        match self.peeked.take() {
            Some(t) => Ok(t),
            None => self.lex(),
        }
    }

    /// Consumes the next token, requiring it to equal `expected`.
    pub fn expect(&mut self, expected: &Token, what: &str) -> Result<(), CepError> {
        let (tok, span) = self.next()?;
        if &tok == expected {
            Ok(())
        } else {
            Err(self.error(format!("expected {what}, found {tok:?}"), span.offset))
        }
    }

    /// Consumes an identifier token.
    pub fn expect_ident(&mut self, what: &str) -> Result<(String, Span), CepError> {
        let (tok, span) = self.next()?;
        match tok {
            Token::Ident(s) => Ok((s, span)),
            other => Err(self.error(format!("expected {what}, found {other:?}"), span.offset)),
        }
    }

    /// Whether the next token is the (case-insensitive) keyword `kw`;
    /// consumes it when it is.
    pub fn eat_keyword(&mut self, kw: &str) -> Result<bool, CepError> {
        if let Token::Ident(s) = self.peek()? {
            if s.eq_ignore_ascii_case(kw) {
                self.next()?;
                return Ok(true);
            }
        }
        Ok(false)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use cep_core::predicate::CmpOp;

    fn all_tokens(s: &str) -> Vec<Token> {
        let mut lx = Lexer::new(s);
        let mut out = Vec::new();
        loop {
            let (t, _) = lx.next().unwrap();
            if t == Token::Eof {
                break;
            }
            out.push(t);
        }
        out
    }

    #[test]
    fn basic_tokens() {
        let toks = all_tokens("SEQ(A a, B b)");
        assert_eq!(
            toks,
            vec![
                Token::Ident("SEQ".into()),
                Token::LParen,
                Token::Ident("A".into()),
                Token::Ident("a".into()),
                Token::Comma,
                Token::Ident("B".into()),
                Token::Ident("b".into()),
                Token::RParen,
            ]
        );
    }

    #[test]
    fn comparison_operators() {
        let toks = all_tokens("< <= == = != >= >");
        assert_eq!(
            toks,
            vec![
                Token::Cmp(CmpOp::Lt),
                Token::Cmp(CmpOp::Le),
                Token::Cmp(CmpOp::Eq),
                Token::Cmp(CmpOp::Eq),
                Token::Cmp(CmpOp::Ne),
                Token::Cmp(CmpOp::Ge),
                Token::Cmp(CmpOp::Gt),
            ]
        );
    }

    #[test]
    fn numbers_and_attribute_dots() {
        // `a.price < 3.5`: the first dot is an attribute access, the second
        // part of a number.
        let toks = all_tokens("a.price < 3.5");
        assert_eq!(
            toks,
            vec![
                Token::Ident("a".into()),
                Token::Dot,
                Token::Ident("price".into()),
                Token::Cmp(CmpOp::Lt),
                Token::Number(3.5),
            ]
        );
    }

    #[test]
    fn comments_are_skipped() {
        let toks = all_tokens("SEQ # trailing comment\n (");
        assert_eq!(toks, vec![Token::Ident("SEQ".into()), Token::LParen]);
    }

    #[test]
    fn error_reports_offset() {
        let mut lx = Lexer::new("abc $");
        lx.next().unwrap();
        let err = lx.next().unwrap_err();
        match err {
            CepError::Parse {
                offset,
                line,
                column,
                ..
            } => {
                assert_eq!(offset, 4);
                assert_eq!((line, column), (1, 5));
            }
            other => panic!("unexpected error {other:?}"),
        }
    }

    #[test]
    fn tokens_carry_line_and_column_spans() {
        let mut lx = Lexer::new(
            "SEQ(A a,
  B b)",
        );
        let (_, s0) = lx.next().unwrap(); // SEQ
        assert_eq!((s0.line, s0.column), (1, 1));
        for _ in 0..4 {
            lx.next().unwrap(); // ( A a ,
        }
        let (tok, sb) = lx.next().unwrap(); // B on line 2
        assert_eq!(tok, Token::Ident("B".into()));
        assert_eq!((sb.line, sb.column), (2, 3));
    }

    #[test]
    fn keyword_matching_is_case_insensitive() {
        let mut lx = Lexer::new("where WITHIN");
        assert!(lx.eat_keyword("WHERE").unwrap());
        assert!(!lx.eat_keyword("WHERE").unwrap());
        assert!(lx.eat_keyword("within").unwrap());
    }
}
