//! Recursive-descent parser for SASE-style pattern specifications.

use crate::lexer::{Lexer, Token};
use cep_core::error::CepError;
use cep_core::pattern::{Pattern, PatternExpr};
use cep_core::predicate::{Operand, Predicate};
use cep_core::schema::Catalog;
use cep_core::selection::SelectionStrategy;
use cep_core::span::Span;
use cep_core::value::Value;
use std::collections::HashMap;

/// Parses a full pattern specification against a catalog:
///
/// ```text
/// PATTERN SEQ(MSFT m, NOT(GOOG g), KL(INTC i))
/// WHERE (m.difference < i.difference AND i.price >= 20)
/// WITHIN 20 minutes
/// STRATEGY skip-till-next-match        # optional
/// ```
///
/// Operators `SEQ`, `AND`, `OR` nest arbitrarily; `NOT` and `KL` apply to
/// primitive events. The `WHERE` clause is a conjunction of pairwise
/// comparisons between `var.attribute` references and/or literals
/// (`a.ts` refers to the occurrence timestamp). `WITHIN` accepts `ms`,
/// `s`/`sec`/`seconds`, `m`/`min`/`minutes`, `h`/`hours` (default: ms).
pub fn parse_pattern(input: &str, catalog: &Catalog) -> Result<Pattern, CepError> {
    Parser::new(input, catalog).parse()
}

struct EventDecl {
    position: usize,
    type_id: cep_core::event::TypeId,
}

struct Parser<'a> {
    lx: Lexer<'a>,
    catalog: &'a Catalog,
    vars: HashMap<String, EventDecl>,
    next_position: usize,
}

impl<'a> Parser<'a> {
    fn new(input: &'a str, catalog: &'a Catalog) -> Parser<'a> {
        Parser {
            lx: Lexer::new(input),
            catalog,
            vars: HashMap::new(),
            next_position: 0,
        }
    }

    fn err(&self, message: impl Into<String>, span: Span) -> CepError {
        CepError::Parse {
            message: message.into(),
            offset: span.offset,
            line: span.line,
            column: span.column,
        }
    }

    fn parse(mut self) -> Result<Pattern, CepError> {
        if !self.lx.eat_keyword("PATTERN")? {
            return Err(self.err("specification must start with PATTERN", self.lx.span()));
        }
        let expr = self.parse_expr()?;
        let mut predicates = Vec::new();
        if self.lx.eat_keyword("WHERE")? {
            self.parse_where(&mut predicates)?;
        }
        if !self.lx.eat_keyword("WITHIN")? {
            return Err(self.err("expected WITHIN clause", self.lx.span()));
        }
        let window = self.parse_duration()?;
        let strategy = if self.lx.eat_keyword("STRATEGY")? {
            self.parse_strategy()?
        } else {
            SelectionStrategy::default()
        };
        let (tok, span) = self.lx.next()?;
        if tok != Token::Eof {
            return Err(self.err(format!("trailing input: {tok:?}"), span));
        }
        let pattern = Pattern {
            expr,
            predicates,
            window,
            strategy,
        };
        pattern.validate()?;
        Ok(pattern)
    }

    fn parse_expr(&mut self) -> Result<PatternExpr, CepError> {
        let span = self.lx.span();
        let (name, _) = self.lx.expect_ident("an operator or event type")?;
        let upper = name.to_ascii_uppercase();
        match upper.as_str() {
            "SEQ" | "AND" | "OR" => {
                self.lx.expect(&Token::LParen, "'('")?;
                let mut children = Vec::new();
                loop {
                    children.push(self.parse_arg()?);
                    match self.lx.next()? {
                        (Token::Comma, _) => continue,
                        (Token::RParen, _) => break,
                        (tok, span) => {
                            return Err(
                                self.err(format!("expected ',' or ')', found {tok:?}"), span)
                            )
                        }
                    }
                }
                Ok(match upper.as_str() {
                    "SEQ" => PatternExpr::Seq(children),
                    "AND" => PatternExpr::And(children),
                    _ => PatternExpr::Or(children),
                })
            }
            "NOT" | "KL" => Err(self.err(
                format!("{upper} may only appear inside an n-ary operator"),
                span,
            )),
            _ => self.parse_primitive(name, span),
        }
    }

    fn parse_arg(&mut self) -> Result<PatternExpr, CepError> {
        // Lookahead: NOT(..) / KL(..) wrappers, nested operators, or a
        // plain `Type var` declaration.
        if self.lx.eat_keyword("NOT")? {
            self.lx.expect(&Token::LParen, "'(' after NOT")?;
            let span = self.lx.span();
            let (ty, _) = self.lx.expect_ident("event type inside NOT")?;
            let inner = self.parse_primitive(ty, span)?;
            self.lx.expect(&Token::RParen, "')' closing NOT")?;
            return Ok(PatternExpr::Not(Box::new(inner)));
        }
        if self.lx.eat_keyword("KL")? {
            self.lx.expect(&Token::LParen, "'(' after KL")?;
            let span = self.lx.span();
            let (ty, _) = self.lx.expect_ident("event type inside KL")?;
            let inner = self.parse_primitive(ty, span)?;
            self.lx.expect(&Token::RParen, "')' closing KL")?;
            return Ok(PatternExpr::Kleene(Box::new(inner)));
        }
        self.parse_expr()
    }

    fn parse_primitive(&mut self, type_name: String, span: Span) -> Result<PatternExpr, CepError> {
        let Some(type_id) = self.catalog.type_id(&type_name) else {
            return Err(self.err(format!("unknown event type {type_name:?}"), span));
        };
        let (var, vspan) = self.lx.expect_ident("a variable name")?;
        if self.vars.contains_key(&var) {
            return Err(self.err(format!("variable {var:?} declared twice"), vspan));
        }
        let position = self.next_position;
        self.next_position += 1;
        self.vars
            .insert(var.clone(), EventDecl { position, type_id });
        Ok(PatternExpr::Event {
            position,
            event_type: type_id,
            name: var,
        })
    }

    fn parse_where(&mut self, predicates: &mut Vec<Predicate>) -> Result<(), CepError> {
        // Optional outer parentheses around the conjunction.
        let outer_paren = matches!(self.lx.peek()?, Token::LParen);
        if outer_paren {
            self.lx.next()?;
        }
        loop {
            predicates.push(self.parse_condition()?);
            if !self.lx.eat_keyword("AND")? {
                break;
            }
        }
        if outer_paren {
            self.lx.expect(&Token::RParen, "')' closing WHERE")?;
        }
        Ok(())
    }

    fn parse_condition(&mut self) -> Result<Predicate, CepError> {
        let left = self.parse_operand()?;
        let (tok, span) = self.lx.next()?;
        let Token::Cmp(op) = tok else {
            return Err(self.err(
                format!("expected a comparison operator, found {tok:?}"),
                span,
            ));
        };
        let right = self.parse_operand()?;
        Ok(Predicate { left, op, right })
    }

    fn parse_operand(&mut self) -> Result<Operand, CepError> {
        let (tok, span) = self.lx.next()?;
        match tok {
            Token::Number(v) => {
                // Integral literals stay Int so `==` against Int attrs works.
                if v.fract() == 0.0 && v.abs() < i64::MAX as f64 {
                    Ok(Operand::Const(Value::Int(v as i64)))
                } else {
                    Ok(Operand::Const(Value::Float(v)))
                }
            }
            Token::Ident(name) => {
                if name.eq_ignore_ascii_case("true") {
                    return Ok(Operand::Const(Value::Bool(true)));
                }
                if name.eq_ignore_ascii_case("false") {
                    return Ok(Operand::Const(Value::Bool(false)));
                }
                let Some(decl) = self.vars.get(&name) else {
                    return Err(self.err(format!("unknown variable {name:?}"), span));
                };
                let position = decl.position;
                let type_id = decl.type_id;
                self.lx.expect(&Token::Dot, "'.' after variable")?;
                let (attr_name, aspan) = self.lx.expect_ident("an attribute name")?;
                if attr_name == "ts" {
                    return Ok(Operand::Ts { position });
                }
                let schema = self
                    .catalog
                    .schema(type_id)
                    .expect("declared types exist in catalog");
                let Some(attr) = schema.attr_index(&attr_name) else {
                    return Err(self.err(
                        format!("type {:?} has no attribute {attr_name:?}", schema.name),
                        aspan,
                    ));
                };
                Ok(Operand::Attr { position, attr })
            }
            other => Err(self.err(format!("expected an operand, found {other:?}"), span)),
        }
    }

    fn parse_duration(&mut self) -> Result<u64, CepError> {
        let (tok, span) = self.lx.next()?;
        let Token::Number(v) = tok else {
            return Err(self.err(format!("expected a duration, found {tok:?}"), span));
        };
        if v < 0.0 {
            return Err(self.err("duration must be non-negative", span));
        }
        let multiplier = if let Token::Ident(unit) = self.lx.peek()? {
            let m = match unit.to_ascii_lowercase().as_str() {
                "ms" | "millis" | "milliseconds" => Some(1.0),
                "s" | "sec" | "secs" | "seconds" => Some(1000.0),
                "m" | "min" | "mins" | "minutes" => Some(60_000.0),
                "h" | "hour" | "hours" => Some(3_600_000.0),
                _ => None,
            };
            if m.is_some() {
                self.lx.next()?;
            }
            m.unwrap_or(1.0)
        } else {
            1.0
        };
        Ok((v * multiplier).round() as u64)
    }

    fn parse_strategy(&mut self) -> Result<SelectionStrategy, CepError> {
        let (name, span) = self.lx.expect_ident("a selection strategy")?;
        match name.to_ascii_lowercase().as_str() {
            "skip-till-any-match" | "any" => Ok(SelectionStrategy::SkipTillAnyMatch),
            "skip-till-next-match" | "next" => Ok(SelectionStrategy::SkipTillNextMatch),
            "strict-contiguity" | "strict" => Ok(SelectionStrategy::StrictContiguity),
            "partition-contiguity" | "partition" => Ok(SelectionStrategy::PartitionContiguity),
            other => Err(self.err(format!("unknown strategy {other:?}"), span)),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use cep_core::schema::ValueKind;

    fn catalog() -> Catalog {
        let mut cat = Catalog::new();
        for name in ["MSFT", "GOOG", "INTC", "AAPL"] {
            cat.add_type(
                name,
                &[
                    ("price", ValueKind::Float),
                    ("difference", ValueKind::Float),
                ],
            )
            .unwrap();
        }
        cat
    }

    #[test]
    fn parses_the_papers_conjunction_example() {
        // Section 7.2's example pattern.
        let cat = catalog();
        let p = parse_pattern(
            "PATTERN AND(MSFT m, GOOG g, INTC i)\n\
             WHERE (m.difference < g.difference)\n\
             WITHIN 20 minutes",
            &cat,
        )
        .unwrap();
        assert_eq!(p.size(), 3);
        assert!(p.is_pure());
        assert_eq!(p.window, 20 * 60 * 1000);
        assert_eq!(p.predicates.len(), 1);
    }

    #[test]
    fn parses_sequence_with_unary_operators() {
        let cat = catalog();
        let p = parse_pattern(
            "PATTERN SEQ(MSFT m, NOT(GOOG g), KL(INTC i), AAPL a) WITHIN 5 s",
            &cat,
        )
        .unwrap();
        let prims = p.primitives();
        assert_eq!(prims.len(), 4);
        assert!(prims[1].negated);
        assert!(prims[2].kleene);
        assert_eq!(p.window, 5000);
    }

    #[test]
    fn parses_nested_disjunction() {
        let cat = catalog();
        let p = parse_pattern("PATTERN AND(MSFT m, OR(GOOG g, INTC i)) WITHIN 100", &cat).unwrap();
        assert!(!p.is_simple());
        assert!(p.expr.contains_or());
    }

    #[test]
    fn where_supports_constants_and_ts() {
        let cat = catalog();
        let p = parse_pattern(
            "PATTERN SEQ(MSFT m, GOOG g) \
             WHERE m.price >= 100.5 AND m.ts < g.ts AND g.difference != 0 \
             WITHIN 1 min",
            &cat,
        )
        .unwrap();
        assert_eq!(p.predicates.len(), 3);
        assert!(matches!(p.predicates[1].left, Operand::Ts { position: 0 }));
        assert!(matches!(
            p.predicates[0].right,
            Operand::Const(Value::Float(_))
        ));
        assert!(matches!(
            p.predicates[2].right,
            Operand::Const(Value::Int(0))
        ));
    }

    #[test]
    fn strategy_clause() {
        let cat = catalog();
        let p = parse_pattern(
            "PATTERN SEQ(MSFT m, GOOG g) WITHIN 10 STRATEGY skip-till-next-match",
            &cat,
        )
        .unwrap();
        assert_eq!(p.strategy, SelectionStrategy::SkipTillNextMatch);
        let p = parse_pattern(
            "PATTERN SEQ(MSFT m, GOOG g) WITHIN 10 STRATEGY strict",
            &cat,
        )
        .unwrap();
        assert_eq!(p.strategy, SelectionStrategy::StrictContiguity);
    }

    #[test]
    fn unknown_type_is_reported_with_offset() {
        let cat = catalog();
        let err = parse_pattern("PATTERN SEQ(XXXX x, GOOG g) WITHIN 10", &cat).unwrap_err();
        match err {
            CepError::Parse {
                message,
                offset,
                line,
                column,
            } => {
                assert!(message.contains("XXXX"));
                assert_eq!(offset, 12);
                assert_eq!((line, column), (1, 13));
            }
            other => panic!("unexpected: {other:?}"),
        }
    }

    #[test]
    fn errors_on_later_lines_report_line_and_column() {
        let cat = catalog();
        let err = parse_pattern(
            "PATTERN SEQ(MSFT m, GOOG g)\nWHERE m.volume < 1\nWITHIN 10",
            &cat,
        )
        .unwrap_err();
        match err {
            CepError::Parse { line, column, .. } => {
                assert_eq!(line, 2);
                assert_eq!(column, 9);
            }
            other => panic!("unexpected: {other:?}"),
        }
        assert!(err.to_string().contains("line 2"));
    }

    #[test]
    fn unknown_variable_in_where_rejected() {
        let cat = catalog();
        let err = parse_pattern(
            "PATTERN SEQ(MSFT m, GOOG g) WHERE z.price < 1 WITHIN 10",
            &cat,
        )
        .unwrap_err();
        assert!(matches!(err, CepError::Parse { .. }));
    }

    #[test]
    fn unknown_attribute_rejected() {
        let cat = catalog();
        let err = parse_pattern(
            "PATTERN SEQ(MSFT m, GOOG g) WHERE m.volume < 1 WITHIN 10",
            &cat,
        )
        .unwrap_err();
        assert!(err.to_string().contains("volume"));
    }

    #[test]
    fn duplicate_variable_rejected() {
        let cat = catalog();
        let err = parse_pattern("PATTERN SEQ(MSFT a, GOOG a) WITHIN 10", &cat).unwrap_err();
        assert!(err.to_string().contains("declared twice"));
    }

    #[test]
    fn trailing_garbage_rejected() {
        let cat = catalog();
        let err = parse_pattern(
            "PATTERN SEQ(MSFT m, GOOG g) WITHIN 10 garbage garbage",
            &cat,
        )
        .unwrap_err();
        assert!(matches!(err, CepError::Parse { .. }));
    }

    #[test]
    fn not_outside_operator_rejected() {
        let cat = catalog();
        let err = parse_pattern("PATTERN NOT(MSFT m) WITHIN 10", &cat).unwrap_err();
        assert!(err.to_string().contains("NOT"));
    }

    #[test]
    fn duration_units() {
        let cat = catalog();
        for (spec, expect) in [
            ("WITHIN 1500", 1500u64),
            ("WITHIN 2 s", 2000),
            ("WITHIN 3 min", 180_000),
            ("WITHIN 1 h", 3_600_000),
            ("WITHIN 250 ms", 250),
        ] {
            let p = parse_pattern(&format!("PATTERN SEQ(MSFT m, GOOG g) {spec}"), &cat).unwrap();
            assert_eq!(p.window, expect, "{spec}");
        }
    }

    #[test]
    fn parsed_pattern_compiles() {
        use cep_core::compile::CompiledPattern;
        let cat = catalog();
        let p = parse_pattern(
            "PATTERN SEQ(MSFT m, NOT(GOOG g), INTC i) \
             WHERE m.difference < i.difference AND g.price > 10 \
             WITHIN 20 minutes",
            &cat,
        )
        .unwrap();
        let cp = CompiledPattern::compile_single(&p).unwrap();
        assert_eq!(cp.n(), 2);
        assert_eq!(cp.negated.len(), 1);
        assert_eq!(cp.negated_predicates(0).len(), 1);
    }
}
