//! The adaptive engine wrapper: drift detection, exact hot swap, replay.

use cep_core::engine::{Engine, EngineFactory};
use cep_core::event::{EventRef, Timestamp};
use cep_core::matches::Match;
use cep_core::metrics::EngineMetrics;
use cep_core::stats::MeasuredStats;
use cep_obs::{TraceRecord, Tracer};
use cep_optimizer::StatsMonitor;
use std::collections::{HashMap, VecDeque};
use std::sync::Arc;
use std::time::Instant;

/// How often (in processed events) the aggregate metrics view is rebuilt
/// from the active engine; keeps the per-event hot path free of the
/// 17-field rebuild (the view is always refreshed at swap and flush).
const REFRESH_EVERY: u64 = 64;

/// Canonical match identity (see [`Match::signature`]).
type Sig = Vec<(usize, Vec<u64>)>;

/// Knobs of the detect → replan → swap loop.
#[derive(Debug, Clone)]
pub struct AdaptiveConfig {
    /// Sliding horizon of the arrival-rate monitor, in stream milliseconds.
    pub horizon_ms: u64,
    /// Relative rate deviation that counts as drift (0.5 = ±50%).
    pub drift_threshold: f64,
    /// Drift is checked every `check_every` processed events. Checking per
    /// event would put a map scan on the hot path for no benefit — rates
    /// move on window timescales, not event timescales.
    pub check_every: u64,
    /// Minimum number of events between two swaps. A swap replays up to a
    /// full window of events; the cooldown keeps a noisy boundary from
    /// thrashing plan builds faster than they can pay off.
    pub cooldown_events: u64,
    /// Amortization horizon of the swap-cost gate, in pattern windows: a
    /// candidate plan is only adopted when its predicted per-window savings
    /// over this many windows exceed the predicted cost of replaying the
    /// retained buffer under the new plan. Larger values swap more eagerly
    /// (the regime is assumed to persist longer); `f64::INFINITY` disables
    /// the gate, `0.0` suppresses every swap.
    pub amortize_windows: f64,
}

/// Default [`AdaptiveConfig::amortize_windows`]: assume a fresh regime
/// persists for at least this many pattern windows. With the default 20%
/// cost hysteresis this gate only bites when the replay buffer is large
/// relative to the predicted improvement.
pub const DEFAULT_AMORTIZE_WINDOWS: f64 = 8.0;

impl Default for AdaptiveConfig {
    fn default() -> Self {
        AdaptiveConfig {
            horizon_ms: 10_000,
            drift_threshold: 0.5,
            check_every: 256,
            cooldown_events: 1024,
            amortize_windows: DEFAULT_AMORTIZE_WINDOWS,
        }
    }
}

/// How expensive an immediate hot swap would be, handed by the adaptive
/// engine to [`Replanner::replan_amortized`] so plan adoption can weigh
/// predicted savings against the replay bill.
///
/// Plan costs approximate per-window evaluation work, so both sides of the
/// comparison live in the same unit: replaying the retained buffer under a
/// candidate plan costs about `replay_fraction ×` the candidate's
/// per-window cost, while switching saves
/// `(current − candidate) × amortize_windows` over the horizon the new
/// statistics are assumed to persist.
#[derive(Debug, Clone, Copy)]
pub struct SwapCost {
    /// Retained replay buffer size as a fraction of the events expected in
    /// one pattern window at current rates (clamped by the caller).
    pub replay_fraction: f64,
    /// Amortization horizon in pattern windows
    /// (see [`AdaptiveConfig::amortize_windows`]).
    pub amortize_windows: f64,
}

impl SwapCost {
    /// A context that never suppresses a strictly better plan — the
    /// pre-gating behaviour.
    pub const IGNORE: SwapCost = SwapCost {
        replay_fraction: 0.0,
        amortize_windows: f64::INFINITY,
    };

    /// Whether switching from a plan costing `current` to one costing
    /// `candidate` (per window, under the same statistics) pays for its
    /// replay within the amortization horizon. Non-improvements never
    /// amortize.
    pub fn amortizes(&self, current: f64, candidate: f64) -> bool {
        if candidate.partial_cmp(&current) != Some(std::cmp::Ordering::Less) {
            return false;
        }
        (current - candidate) * self.amortize_windows > candidate * self.replay_fraction
    }
}

/// Per-window cost breakdown of the last replan attempt: the incumbent
/// plan versus the best candidate, both costed under the same fresh
/// statistics. Surfaced through [`Replanner::last_costs`] so a traced run
/// can show the arithmetic behind every [`ReplanVerdict`].
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ReplanCosts {
    /// Predicted per-window cost of the incumbent plan.
    pub current: f64,
    /// Predicted per-window cost of the best candidate plan.
    pub candidate: f64,
}

/// Outcome of a gated replan attempt (see [`Replanner::replan_amortized`]).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ReplanVerdict {
    /// A better plan was adopted; the caller must hot-swap engines.
    Swap,
    /// No plan change (no candidate beat the incumbent by the margin).
    Keep,
    /// A better plan exists but its predicted savings do not amortize the
    /// replay cost yet; the incumbent plan stays and the caller counts a
    /// suppressed swap.
    Suppressed,
}

/// Rebuilds evaluation plans from live rate estimates and stamps out
/// engines for the current plan — the planning half of the adaptive loop.
///
/// [`AdaptiveEngine`] is generic over this trait rather than over a
/// concrete engine type: what varies per deployment is not the engine
/// (always a `Box<dyn Engine>` so order- and tree-based evaluators swap
/// uniformly) but *how plans are rebuilt* — which algorithm, which
/// selectivities, whether an output profiler feeds the latency anchor.
/// See [`crate::PlanReplanner`] for the full planner-backed implementation.
pub trait Replanner: Send {
    /// Builds a fresh engine, positioned at stream start, from the current
    /// plan.
    fn build(&self) -> Box<dyn Engine>;

    /// Re-derives the plan from fresh arrival-rate estimates. Returns
    /// `true` when the plan changed (the caller then hot-swaps engines).
    /// Implementations must keep the previous plan on planning errors —
    /// a live engine never goes down because one replan failed.
    fn replan(&mut self, rates: &MeasuredStats) -> bool;

    /// Swap-cost-aware replan: like [`Self::replan`], but the caller also
    /// supplies how expensive the resulting hot swap would be, so an
    /// implementation can decline a better-but-not-better-enough plan
    /// ([`ReplanVerdict::Suppressed`]) instead of forcing a replay that
    /// will not pay for itself. The default ignores the context and
    /// delegates to `replan`.
    fn replan_amortized(&mut self, rates: &MeasuredStats, swap: &SwapCost) -> ReplanVerdict {
        let _ = swap;
        if self.replan(rates) {
            ReplanVerdict::Swap
        } else {
            ReplanVerdict::Keep
        }
    }

    /// Observes one input event *before* it reaches the engine — the hook
    /// selectivity re-estimation rides on (see
    /// [`crate::PlanReplanner::with_selectivity_monitoring`]). Default:
    /// no-op.
    fn observe_event(&mut self, _e: &EventRef) {}

    /// Whether statistics beyond arrival rates (e.g. predicate
    /// selectivities) have drifted from what the current plan assumes. The
    /// adaptive engine attempts a replan when *either* this or its own
    /// rate monitor fires. Default: `false` (rates are the only signal).
    fn stats_drifted(&self) -> bool {
        false
    }

    /// Events absorbed by the implementation's selectivity monitoring so
    /// far (surfaced as [`EngineMetrics::selectivity_samples`]). Default 0.
    fn selectivity_samples(&self) -> u64 {
        0
    }

    /// Compiled-plan cache hits of the implementation's program cache so
    /// far (surfaced as [`EngineMetrics::plan_cache_hits`]). Default 0 (no
    /// cache in play).
    fn plan_cache_hits(&self) -> u64 {
        0
    }

    /// Compiled-plan cache misses of the implementation's program cache so
    /// far (surfaced as [`EngineMetrics::plan_cache_misses`]). Default 0.
    fn plan_cache_misses(&self) -> u64 {
        0
    }

    /// Cost breakdown of the most recent `replan`/`replan_amortized`
    /// call, for tracing: incumbent vs best candidate, per window, under
    /// the statistics of that call. `None` when the last attempt bailed
    /// out before costing anything (e.g. a planning error) or when the
    /// implementation does not track costs. Default: `None`.
    fn last_costs(&self) -> Option<ReplanCosts> {
        None
    }

    /// Observes an emitted match (e.g. to feed an output profiler).
    fn observe_match(&mut self, _m: &Match) {}

    /// Whether the pattern's selection strategy consumes events on
    /// emission (skip-till-next-match). When true, the adaptive wrapper
    /// migrates consumption state across swaps: events bound by an emitted
    /// match are remembered for one window and later emissions reusing
    /// them are suppressed, keeping the output event-disjoint even though
    /// a freshly swapped engine starts with no consumption memory.
    fn consumes(&self) -> bool {
        false
    }
}

/// An [`Engine`] that replans itself while running.
///
/// See the crate docs for the swap protocol and the exactness guarantee.
/// The wrapper retains the last pattern window of input events; on drift it
/// builds a fresh engine from the replanner's new plan, replays the
/// retained window into it, and suppresses replayed re-emissions through a
/// signature dedup, so downstream consumers never see a duplicate or a gap.
pub struct AdaptiveEngine<R: Replanner> {
    inner: Box<dyn Engine>,
    replanner: R,
    monitor: StatsMonitor,
    /// Window-bounded replay buffer: every event with
    /// `ts ≥ watermark − window`, in arrival order.
    retained: VecDeque<EventRef>,
    /// Signatures of emitted matches, remembered for one window length
    /// (everything a replay could re-emit), tagged with their max event ts.
    /// An append-only deque — emissions are already in non-decreasing
    /// watermark order — so normal operation pays one push per match; the
    /// set a replay filters against is only materialized at swap time.
    recent: VecDeque<(Timestamp, Sig)>,
    /// Whether the replanner's strategy consumes events (cached).
    consumes: bool,
    /// Serial numbers of events consumed by emitted matches, remembered
    /// for one window; only populated when [`Self::consumes`] is set (see
    /// [`Replanner::consumes`]).
    consumed: HashMap<u64, Timestamp>,
    window: u64,
    cfg: AdaptiveConfig,
    /// Combined counters of engines retired by past swaps.
    retired: EngineMetrics,
    /// Aggregate metrics presented to callers; also stores this wrapper's
    /// own counters (events, emissions, swap/replay accounting, timing).
    metrics: EngineMetrics,
    watermark: Timestamp,
    events_since_swap: u64,
    /// Trace destination for replan decisions and replay windows; the
    /// disabled default costs one branch per decision point.
    tracer: Tracer,
}

impl<R: Replanner> AdaptiveEngine<R> {
    /// Wraps the replanner's current-plan engine; `window` is the pattern
    /// window in stream milliseconds (bounds the retained replay buffer).
    pub fn new(replanner: R, window: u64, cfg: AdaptiveConfig) -> AdaptiveEngine<R> {
        assert!(cfg.check_every >= 1, "check_every must be positive");
        let inner = replanner.build();
        let consumes = replanner.consumes();
        let monitor = StatsMonitor::new(cfg.horizon_ms, cfg.drift_threshold);
        let events_since_swap = cfg.cooldown_events; // first swap is not throttled
        AdaptiveEngine {
            inner,
            replanner,
            monitor,
            retained: VecDeque::new(),
            recent: VecDeque::new(),
            consumes,
            consumed: HashMap::new(),
            window,
            cfg,
            retired: EngineMetrics::new(),
            metrics: EngineMetrics::new(),
            watermark: 0,
            events_since_swap,
            tracer: Tracer::disabled(),
        }
    }

    /// Routes this engine's [`TraceRecord::PlanSwapDecision`] and
    /// [`TraceRecord::ReplayWindow`] records to `tracer`. Tracing is
    /// observational: the match output of a traced run is byte-identical
    /// to an untraced one.
    pub fn with_tracer(mut self, tracer: Tracer) -> AdaptiveEngine<R> {
        self.tracer = tracer;
        self
    }

    /// The replanner (e.g. to inspect the current plan).
    pub fn replanner(&self) -> &R {
        &self.replanner
    }

    /// Plan swaps performed so far.
    pub fn swaps(&self) -> u64 {
        self.metrics.plan_swaps
    }

    /// Events currently held in the retained replay window.
    pub fn retained_len(&self) -> usize {
        self.retained.len()
    }

    /// Records emissions (signature for future replay dedup; consumption
    /// state for consuming strategies) and forwards them downstream. A
    /// single engine never emits duplicates between swaps, so the normal
    /// path only *appends* — membership is checked exclusively against the
    /// swap-time snapshot in [`Self::swap`].
    fn emit(&mut self, staged: Vec<Match>, out: &mut Vec<Match>) {
        for m in staged {
            if self.consumes {
                // A freshly swapped engine has no memory of what its
                // predecessor consumed; suppress emissions that would
                // re-bind a consumed event and record the rest.
                if m.events().any(|e| self.consumed.contains_key(&e.seq)) {
                    continue;
                }
                for e in m.events() {
                    self.consumed.insert(e.seq, e.ts);
                }
            }
            self.recent.push_back((m.max_ts(), m.signature()));
            self.replanner.observe_match(&m);
            self.metrics.matches_emitted += 1;
            out.push(m);
        }
    }

    /// Folds a retired engine's counters into the sequential accumulator:
    /// work counters add; live-state peaks take the maximum, because
    /// retired engines and the active one run one after another on the
    /// same thread (their peaks never coexist).
    fn retire(&mut self, m: &EngineMetrics) {
        self.retired.events_relevant += m.events_relevant;
        self.retired.partial_matches_created += m.partial_matches_created;
        self.retired.predicate_evaluations += m.predicate_evaluations;
        self.retired.peak_partial_matches = self
            .retired
            .peak_partial_matches
            .max(m.peak_partial_matches);
        self.retired.peak_buffered_events = self
            .retired
            .peak_buffered_events
            .max(m.peak_buffered_events);
        self.retired.peak_memory_bytes = self.retired.peak_memory_bytes.max(m.peak_memory_bytes);
    }

    /// Rebuilds the aggregate metrics: this wrapper's own counters plus the
    /// retired engines' accumulator plus the active engine's state.
    fn refresh_metrics(&mut self) {
        let mut agg = EngineMetrics::new();
        agg.events_processed = self.metrics.events_processed;
        agg.matches_emitted = self.metrics.matches_emitted;
        agg.wall_time_ns = self.metrics.wall_time_ns;
        agg.event_ns = self.metrics.event_ns.clone();
        agg.match_latency_ns = self.metrics.match_latency_ns.clone();
        agg.replay_ns = self.metrics.replay_ns.clone();
        agg.plan_swaps = self.metrics.plan_swaps;
        agg.replayed_events = self.metrics.replayed_events;
        agg.replay_time_ns = self.metrics.replay_time_ns;
        agg.suppressed_swaps = self.metrics.suppressed_swaps;
        agg.selectivity_samples = self.replanner.selectivity_samples();
        agg.plan_cache_hits = self.replanner.plan_cache_hits();
        agg.plan_cache_misses = self.replanner.plan_cache_misses();
        agg.retained_events = self.retained.len();
        agg.peak_retained_events = self.metrics.peak_retained_events.max(self.retained.len());
        let inner = self.inner.metrics();
        agg.events_relevant = self.retired.events_relevant + inner.events_relevant;
        agg.partial_matches_created =
            self.retired.partial_matches_created + inner.partial_matches_created;
        agg.predicate_evaluations =
            self.retired.predicate_evaluations + inner.predicate_evaluations;
        agg.live_partial_matches = inner.live_partial_matches;
        agg.buffered_events = inner.buffered_events;
        agg.peak_partial_matches = self
            .retired
            .peak_partial_matches
            .max(inner.peak_partial_matches);
        agg.peak_buffered_events = self
            .retired
            .peak_buffered_events
            .max(inner.peak_buffered_events);
        agg.peak_memory_bytes = self.retired.peak_memory_bytes.max(inner.peak_memory_bytes);
        self.metrics = agg;
    }

    /// Hot swap: build a fresh engine from the replanner's new plan, replay
    /// the retained window, suppress re-emissions. The old engine is
    /// dropped **without flushing**: anything it still held deferred (e.g.
    /// matches awaiting a trailing-negation watermark) is reconstructed —
    /// and still correctly gated by future events — inside the new engine,
    /// whereas flushing would emit those matches as if the stream ended.
    fn swap(&mut self, out: &mut Vec<Match>) {
        let fresh = self.replanner.build();
        let old = std::mem::replace(&mut self.inner, fresh);
        self.retire(old.metrics());
        drop(old);
        let replay_start = Instant::now();
        let mut staged = Vec::new();
        for event in &self.retained {
            self.inner.process(event, &mut staged);
        }
        let replay_ns = replay_start.elapsed().as_nanos() as u64;
        self.metrics.replay_time_ns += replay_ns;
        self.metrics.replay_ns.record(replay_ns);
        self.metrics.replayed_events += self.retained.len() as u64;
        self.metrics.plan_swaps += 1;
        self.events_since_swap = 0;
        // Suppress replayed re-detections of matches already emitted
        // pre-swap. For the exact strategies that is every replayed
        // completion; emitting survivors keeps the wrapper conservative
        // rather than silently dropping them.
        let staged_count = staged.len();
        let survivors: Vec<Match> = {
            let seen: std::collections::HashSet<&Sig> =
                self.recent.iter().map(|(_, sig)| sig).collect();
            staged
                .into_iter()
                .filter(|m| !seen.contains(&m.signature()))
                .collect()
        };
        self.tracer.emit_with(|| TraceRecord::ReplayWindow {
            at_event: self.metrics.events_processed,
            replayed_events: self.retained.len() as u64,
            replay_ns,
            suppressed_matches: (staged_count - survivors.len()) as u64,
        });
        self.emit(survivors, out);
        self.refresh_metrics();
    }

    /// Periodic drift check; replans and swaps when warranted. Without a
    /// baseline yet (first check), calibrates instead: adopts the measured
    /// rates and replans once, so an engine bootstrapped from wrong a
    /// priori statistics corrects itself within `check_every` events.
    ///
    /// A replan is attempted when the *rate* monitor reports drift **or**
    /// the replanner's own statistics monitoring
    /// ([`Replanner::stats_drifted`], e.g. selectivity re-estimation) does.
    /// Adoption is swap-cost-aware: the replanner receives the predicted
    /// replay bill and may suppress a swap whose savings would not amortize
    /// it ([`ReplanVerdict::Suppressed`]); suppressed attempts leave every
    /// baseline in place so the pending drift retries at the next check.
    fn maybe_replan(&mut self, out: &mut Vec<Match>) {
        if !self
            .metrics
            .events_processed
            .is_multiple_of(self.cfg.check_every)
            || self.events_since_swap < self.cfg.cooldown_events
        {
            return;
        }
        if self.monitor.has_baseline() && !self.monitor.drifted() && !self.replanner.stats_drifted()
        {
            return;
        }
        let mut rates = MeasuredStats::default();
        let mut expected_window_events = 0.0;
        for (ty, rate) in self.monitor.rates() {
            rates.set_rate(ty, rate);
            expected_window_events += rate * self.window as f64;
        }
        let replay_fraction = if expected_window_events > 0.0 {
            // Clamped: a rate estimate collapsing to near zero must not
            // turn a window-bounded buffer into an unbounded bill.
            (self.retained.len() as f64 / expected_window_events).min(4.0)
        } else {
            1.0
        };
        let swap_cost = SwapCost {
            replay_fraction,
            amortize_windows: self.cfg.amortize_windows,
        };
        let verdict = self.replanner.replan_amortized(&rates, &swap_cost);
        self.tracer.emit_with(|| {
            // A replanner that bailed before costing (or one that does not
            // track costs) reports the sentinel −1 on both sides.
            let (current_cost, candidate_cost) = self
                .replanner
                .last_costs()
                .map_or((-1.0, -1.0), |c| (c.current, c.candidate));
            TraceRecord::PlanSwapDecision {
                at_event: self.metrics.events_processed,
                verdict: match verdict {
                    ReplanVerdict::Swap => "swap",
                    ReplanVerdict::Keep => "keep",
                    ReplanVerdict::Suppressed => "suppressed",
                }
                .into(),
                current_cost,
                candidate_cost,
                replay_fraction,
                amortize_windows: self.cfg.amortize_windows,
                retained_events: self.retained.len() as u64,
            }
        });
        match verdict {
            ReplanVerdict::Swap => {
                self.monitor.rebaseline();
                self.swap(out);
            }
            ReplanVerdict::Keep => self.monitor.rebaseline(),
            ReplanVerdict::Suppressed => {
                self.metrics.suppressed_swaps += 1;
            }
        }
    }
}

impl<R: Replanner> Engine for AdaptiveEngine<R> {
    fn process(&mut self, event: &EventRef, out: &mut Vec<Match>) {
        self.metrics.events_processed += 1;
        self.events_since_swap = self.events_since_swap.saturating_add(1);
        self.watermark = self.watermark.max(event.ts);
        self.monitor.observe(event);
        self.replanner.observe_event(event);
        self.retained.push_back(Arc::clone(event));
        // Evict strictly below `watermark − window`: an event exactly one
        // window old can still share a match with an event at the
        // watermark (span == window is within the pattern window).
        let keep_from = self.watermark.saturating_sub(self.window);
        while self.retained.front().is_some_and(|e| e.ts < keep_from) {
            self.retained.pop_front();
        }
        // A replay can only re-emit matches whose events all lie in the
        // retained window, so older signatures can never recur. Emissions
        // are pushed in near-watermark order (deferred emissions lag by at
        // most a window), so trimming the front is enough: a stale entry
        // stuck behind a fresher one is over-retention, never a miss.
        while self.recent.front().is_some_and(|(ts, _)| *ts < keep_from) {
            self.recent.pop_front();
        }
        self.metrics.record_retained(self.retained.len());
        let mut staged = Vec::new();
        self.inner.process(event, &mut staged);
        self.emit(staged, out);
        if self.consumes && self.metrics.events_processed.is_multiple_of(REFRESH_EVERY) {
            // Consumption marks on events older than the window can never
            // be re-bound by a replay.
            self.consumed.retain(|_, &mut ts| ts >= keep_from);
        }
        self.maybe_replan(out);
        if self.metrics.events_processed.is_multiple_of(REFRESH_EVERY) {
            self.refresh_metrics();
        }
    }

    fn flush(&mut self, out: &mut Vec<Match>) {
        let mut staged = Vec::new();
        self.inner.flush(&mut staged);
        self.emit(staged, out);
        self.refresh_metrics();
    }

    fn metrics(&self) -> &EngineMetrics {
        &self.metrics
    }

    fn metrics_mut(&mut self) -> &mut EngineMetrics {
        &mut self.metrics
    }

    fn name(&self) -> &'static str {
        "adaptive"
    }
}

/// Stamps out independent [`AdaptiveEngine`]s from a shared replanner
/// prototype — the input a sharded runtime needs: each worker's engine
/// clones the replanner and thereafter monitors, replans, and swaps on its
/// *own* slice of the stream, entirely independently of its siblings.
pub struct AdaptiveFactory<R: Replanner + Clone + Sync> {
    replanner: R,
    window: u64,
    config: AdaptiveConfig,
    tracer: Tracer,
}

impl<R: Replanner + Clone + Sync> AdaptiveFactory<R> {
    /// Factory over a replanner prototype; see [`AdaptiveEngine::new`] for
    /// the parameters.
    pub fn new(replanner: R, window: u64, config: AdaptiveConfig) -> AdaptiveFactory<R> {
        AdaptiveFactory {
            replanner,
            window,
            config,
            tracer: Tracer::disabled(),
        }
    }

    /// Every engine built by this factory traces its replan decisions to
    /// (a clone of) `tracer` — so all shards of a sharded adaptive run
    /// fan into the same sinks.
    pub fn with_tracer(mut self, tracer: Tracer) -> AdaptiveFactory<R> {
        self.tracer = tracer;
        self
    }
}

impl<R: Replanner + Clone + Sync + 'static> EngineFactory for AdaptiveFactory<R> {
    fn build(&self) -> Box<dyn Engine> {
        Box::new(
            AdaptiveEngine::new(self.replanner.clone(), self.window, self.config.clone())
                .with_tracer(self.tracer.clone()),
        )
    }
}
