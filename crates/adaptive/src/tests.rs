//! Exactness and protocol tests for the adaptive runtime, following the
//! naive-oracle / canonical-sort harness pattern of `cep-shard`: the
//! never-swapped engine (and, for skip-till-any-match, the naive oracle)
//! is the ground truth a swapping engine must reproduce byte-identically.

use crate::{
    AdaptiveConfig, AdaptiveEngine, AdaptiveFactory, PlanKind, PlanReplanner, Replanner, SwapCost,
};
use cep_core::compile::CompiledPattern;
use cep_core::engine::{run_to_completion, Engine, EngineConfig, EngineFactory};
use cep_core::event::{Event, TypeId};
use cep_core::matches::{validate_match, Match};
use cep_core::naive::NaiveEngine;
use cep_core::pattern::{Pattern, PatternBuilder};
use cep_core::plan::{OrderPlan, TreePlan};
use cep_core::predicate::{CmpOp, Predicate};
use cep_core::selection::SelectionStrategy;
use cep_core::stats::MeasuredStats;
use cep_core::stream::{EventStream, StreamBuilder};
use cep_core::value::Value;
use cep_nfa::NfaEngine;
use cep_optimizer::{OrderAlgorithm, Planner};
use cep_tree::TreeEngine;
use proptest::prelude::*;

fn t(i: u32) -> TypeId {
    TypeId(i)
}

/// `SEQ` of `n` distinct types, no predicates.
fn seq_pattern(n: usize, window: u64, strategy: SelectionStrategy) -> Pattern {
    let mut b = PatternBuilder::new(window);
    b.strategy(strategy);
    let evs: Vec<_> = (0..n)
        .map(|i| b.event(t(i as u32), &format!("e{i}")))
        .collect();
    b.seq(evs).unwrap()
}

/// Deterministic pseudo-random workload (the LCG of the shard tests).
fn lcg_stream(len: u64, types: u32, seed: u64) -> EventStream {
    let mut state = seed;
    let mut ts = 0u64;
    let mut b = StreamBuilder::new();
    for _ in 0..len {
        state = state
            .wrapping_mul(6364136223846793005)
            .wrapping_add(1442695040888963407);
        let tid = ((state >> 33) % types as u64) as u32;
        ts += (state >> 50) % 3;
        b.push(Event::new(t(tid), ts, vec![]));
    }
    b.build()
}

/// Two-phase stream: type 0 frequent / type 2 rare, flipping halfway.
/// Type 1 is steady. Rates per ms are phase-dependent integers so drift is
/// unambiguous.
fn two_phase_stream(phase_ms: u64) -> EventStream {
    let mut b = StreamBuilder::new();
    for phase in 0..2u64 {
        let (every_a, every_c) = if phase == 0 { (2, 40) } else { (40, 2) };
        let base = phase * phase_ms;
        for i in 0..phase_ms {
            let ts = base + i;
            if i % every_a == 0 {
                b.push(Event::new(t(0), ts, vec![]));
            }
            if i % 10 == 0 {
                b.push(Event::new(t(1), ts, vec![]));
            }
            if i % every_c == 0 {
                b.push(Event::new(t(2), ts, vec![]));
            }
        }
    }
    b.build()
}

/// Phase-1 statistics of [`two_phase_stream`].
fn phase1_stats() -> MeasuredStats {
    let mut m = MeasuredStats::default();
    m.set_rate(t(0), 0.5);
    m.set_rate(t(1), 0.1);
    m.set_rate(t(2), 0.025);
    m
}

/// An eager configuration: tiny horizon, hair-trigger threshold, frequent
/// checks, no cooldown — maximizes swap pressure for protocol tests.
fn eager(horizon_ms: u64) -> AdaptiveConfig {
    AdaptiveConfig {
        horizon_ms,
        drift_threshold: 1e-6,
        check_every: 4,
        cooldown_events: 0,
        ..AdaptiveConfig::default()
    }
}

/// A test replanner that alternates between two fixed plans on every
/// replan call, reporting a change each time: guarantees swaps regardless
/// of what the statistics say, isolating the swap/replay/dedup machinery
/// from drift detection.
#[derive(Clone)]
struct FlipFlop {
    cp: CompiledPattern,
    orders: [OrderPlan; 2],
    active: usize,
    tree: bool,
}

impl FlipFlop {
    fn new(cp: CompiledPattern, tree: bool) -> FlipFlop {
        let n = cp.n();
        let fwd = OrderPlan::new((0..n).collect()).unwrap();
        let rev = OrderPlan::new((0..n).rev().collect()).unwrap();
        FlipFlop {
            cp,
            orders: [fwd, rev],
            active: 0,
            tree,
        }
    }
}

impl Replanner for FlipFlop {
    fn build(&self) -> Box<dyn Engine> {
        let plan = &self.orders[self.active];
        if self.tree {
            Box::new(
                TreeEngine::new(
                    self.cp.clone(),
                    TreePlan::left_deep(plan),
                    EngineConfig::default(),
                )
                .unwrap(),
            )
        } else {
            Box::new(
                NfaEngine::new(self.cp.clone(), plan.clone(), EngineConfig::default()).unwrap(),
            )
        }
    }

    fn replan(&mut self, _rates: &MeasuredStats) -> bool {
        self.active = 1 - self.active;
        true
    }

    fn consumes(&self) -> bool {
        self.cp.strategy.consumes()
    }
}

/// Canonical ground-truth order shared with `cep_shard::canonical_sort`.
fn canonical(mut matches: Vec<Match>) -> Vec<Match> {
    matches.sort_by_cached_key(|m| (m.emitted_at, m.last_ts, m.signature()));
    matches
}

fn run_engine(engine: &mut dyn Engine, stream: &EventStream) -> Vec<Match> {
    canonical(run_to_completion(engine, stream, true).matches)
}

#[test]
fn real_replanner_swaps_on_drift_and_output_is_byte_identical() {
    let stream = two_phase_stream(4_000);
    for strategy in [
        SelectionStrategy::SkipTillAnyMatch,
        SelectionStrategy::StrictContiguity,
        SelectionStrategy::PartitionContiguity,
    ] {
        let cp = CompiledPattern::compile_single(&seq_pattern(3, 50, strategy)).unwrap();
        let replanner = PlanReplanner::new(
            vec![(cp, vec![])],
            &phase1_stats(),
            Planner::default(),
            PlanKind::Order(OrderAlgorithm::DpLd),
            EngineConfig::default(),
        )
        .unwrap();
        let mut static_engine = replanner.build();
        let expected = run_engine(static_engine.as_mut(), &stream);
        let mut adaptive = AdaptiveEngine::new(
            replanner,
            50,
            AdaptiveConfig {
                horizon_ms: 500,
                drift_threshold: 0.5,
                check_every: 64,
                cooldown_events: 128,
                ..AdaptiveConfig::default()
            },
        );
        let got = run_engine(&mut adaptive, &stream);
        assert_eq!(got, expected, "{strategy}: swapped output diverged");
        if strategy == SelectionStrategy::SkipTillAnyMatch {
            assert!(!expected.is_empty(), "fixture should produce matches");
            assert!(
                adaptive.swaps() >= 1,
                "the rate flip must trigger at least one swap"
            );
            assert!(adaptive.metrics().replayed_events > 0);
        }
    }
}

#[test]
fn adaptive_replans_hit_the_compiled_plan_cache() {
    use cep_optimizer::TreeAlgorithm;
    let stream = two_phase_stream(4_000);
    for kind in [
        PlanKind::Order(OrderAlgorithm::DpLd),
        PlanKind::Tree(TreeAlgorithm::DpB),
    ] {
        let cp = CompiledPattern::compile_single(&seq_pattern(
            3,
            50,
            SelectionStrategy::SkipTillAnyMatch,
        ))
        .unwrap();
        let replanner = PlanReplanner::new(
            vec![(cp, vec![])],
            &phase1_stats(),
            Planner::default(),
            kind,
            EngineConfig::default(),
        )
        .unwrap();
        let cache = replanner.plan_cache().clone();
        let mut adaptive = AdaptiveEngine::new(
            replanner,
            50,
            AdaptiveConfig {
                horizon_ms: 500,
                drift_threshold: 0.5,
                check_every: 64,
                cooldown_events: 128,
                ..AdaptiveConfig::default()
            },
        );
        run_engine(&mut adaptive, &stream);
        let swaps = adaptive.swaps();
        assert!(swaps >= 1, "the rate flip must trigger at least one swap");
        // The pattern is unchanged across swaps, so its predicates are
        // lowered exactly once (the initial build) and every post-swap
        // rebuild reuses the cached program.
        let c = cache.lock().unwrap();
        assert_eq!(c.misses(), 1, "one branch compiles once");
        assert_eq!(c.hits(), swaps, "every swap rebuild must be a cache hit");
        // The counters surface through the adaptive engine's metrics.
        assert_eq!(adaptive.metrics().plan_cache_hits, swaps);
        assert_eq!(adaptive.metrics().plan_cache_misses, 1);
    }
    // With compiled predicates disabled the cache is never consulted.
    let cp =
        CompiledPattern::compile_single(&seq_pattern(3, 50, SelectionStrategy::SkipTillAnyMatch))
            .unwrap();
    let replanner = PlanReplanner::new(
        vec![(cp, vec![])],
        &phase1_stats(),
        Planner::default(),
        PlanKind::Order(OrderAlgorithm::DpLd),
        EngineConfig {
            compiled_predicates: false,
            ..EngineConfig::default()
        },
    )
    .unwrap();
    let cache = replanner.plan_cache().clone();
    let _ = replanner.build();
    let c = cache.lock().unwrap();
    assert_eq!(c.hits() + c.misses(), 0);
}

#[test]
fn forced_swaps_are_exact_for_both_engine_families() {
    let stream = lcg_stream(300, 3, 0xADA971);
    for strategy in [
        SelectionStrategy::SkipTillAnyMatch,
        SelectionStrategy::StrictContiguity,
        SelectionStrategy::PartitionContiguity,
    ] {
        let cp = CompiledPattern::compile_single(&seq_pattern(3, 12, strategy)).unwrap();
        for tree in [false, true] {
            let replanner = FlipFlop::new(cp.clone(), tree);
            let mut static_engine = replanner.build();
            let expected = run_engine(static_engine.as_mut(), &stream);
            let mut adaptive = AdaptiveEngine::new(replanner, 12, eager(50));
            let got = run_engine(&mut adaptive, &stream);
            assert!(
                adaptive.swaps() >= 2,
                "eager flip-flop must swap repeatedly, got {}",
                adaptive.swaps()
            );
            assert_eq!(
                got, expected,
                "{strategy} (tree={tree}): forced swaps changed the output"
            );
        }
    }
}

#[test]
fn replayed_window_matches_are_never_emitted_twice() {
    // Dense single-key stream: plenty of matches complete right before each
    // swap, so every replay re-detects recently emitted matches.
    let stream = lcg_stream(400, 3, 7);
    let cp =
        CompiledPattern::compile_single(&seq_pattern(3, 15, SelectionStrategy::SkipTillAnyMatch))
            .unwrap();
    let mut adaptive = AdaptiveEngine::new(FlipFlop::new(cp.clone(), false), 15, eager(60));
    let got = run_to_completion(&mut adaptive, &stream, true).matches;
    assert!(!got.is_empty());
    assert!(adaptive.swaps() >= 2);
    assert!(adaptive.metrics().replayed_events > 0);
    let mut sigs = std::collections::HashSet::new();
    for m in &got {
        validate_match(&cp, m).unwrap();
        assert!(
            sigs.insert(m.signature()),
            "duplicate emission of {m} after a swap replay"
        );
    }
}

#[test]
fn next_match_swaps_stay_valid_disjoint_and_deterministic() {
    let stream = lcg_stream(250, 3, 0xBEEF);
    let cp =
        CompiledPattern::compile_single(&seq_pattern(3, 12, SelectionStrategy::SkipTillNextMatch))
            .unwrap();
    let run = || {
        let mut adaptive = AdaptiveEngine::new(FlipFlop::new(cp.clone(), false), 12, eager(50));
        let matches = run_to_completion(&mut adaptive, &stream, true).matches;
        (matches, adaptive.swaps())
    };
    let (matches, swaps) = run();
    assert!(swaps >= 1);
    assert!(!matches.is_empty(), "fixture should produce matches");
    let mut used = std::collections::HashSet::new();
    for m in &matches {
        validate_match(&cp, m).unwrap();
        for e in m.events() {
            assert!(used.insert(e.seq), "event reused across a swap");
        }
    }
    let (again, _) = run();
    assert_eq!(matches, again, "repeat runs must be identical");
}

#[test]
fn retained_buffer_is_window_bounded() {
    let window = 20u64;
    let cp = CompiledPattern::compile_single(&seq_pattern(
        2,
        window,
        SelectionStrategy::SkipTillAnyMatch,
    ))
    .unwrap();
    let mut adaptive = AdaptiveEngine::new(FlipFlop::new(cp, false), window, eager(50));
    // One event per ms for 300 ms: the buffer must plateau at ~window+1
    // events instead of growing with the stream.
    let mut b = StreamBuilder::new();
    for ts in 0..300u64 {
        b.push(Event::new(t(ts as u32 % 2), ts, vec![]));
    }
    let stream = b.build();
    let mut out = Vec::new();
    for e in &stream {
        adaptive.process(e, &mut out);
        assert!(
            adaptive.retained_len() as u64 <= window + 1,
            "retained buffer exceeded the window bound"
        );
    }
    let m = adaptive.metrics();
    assert_eq!(m.retained_events, adaptive.retained_len());
    assert!(m.peak_retained_events as u64 <= window + 1);
    assert!(m.peak_retained_events > 0);
    assert_eq!(m.events_processed, stream.len() as u64);
    assert!(
        m.replayed_events > m.plan_swaps,
        "replays should re-process multiple events per swap"
    );
}

#[test]
fn calibration_replans_away_from_wrong_bootstrap_statistics() {
    // Bootstrap the plan from statistics claiming type 2 is frequent and
    // type 0 rare — the opposite of the stream. The first drift check has
    // no baseline, so the engine must calibrate: replan from measured
    // rates and swap to the correct order.
    let mut wrong = MeasuredStats::default();
    wrong.set_rate(t(0), 0.001);
    wrong.set_rate(t(1), 0.1);
    wrong.set_rate(t(2), 1.0);
    let cp =
        CompiledPattern::compile_single(&seq_pattern(3, 50, SelectionStrategy::SkipTillAnyMatch))
            .unwrap();
    let replanner = PlanReplanner::new(
        vec![(cp, vec![])],
        &wrong,
        Planner::default(),
        PlanKind::Order(OrderAlgorithm::DpLd),
        EngineConfig::default(),
    )
    .unwrap();
    let before = replanner.describe();
    let mut static_engine = replanner.build();
    // Phase 1 of the two-phase stream alone: stationary, but unlike the
    // bootstrap statistics.
    let stream: EventStream = two_phase_stream(2_000)
        .into_iter()
        .filter(|e| e.ts < 2_000)
        .collect();
    let expected = run_engine(static_engine.as_mut(), &stream);
    let mut adaptive = AdaptiveEngine::new(
        replanner,
        50,
        AdaptiveConfig {
            horizon_ms: 500,
            drift_threshold: 0.5,
            check_every: 64,
            cooldown_events: 64,
            ..AdaptiveConfig::default()
        },
    );
    let got = run_engine(&mut adaptive, &stream);
    assert_eq!(got, expected);
    assert!(adaptive.swaps() >= 1, "calibration must swap");
    assert_ne!(
        adaptive.replanner().describe(),
        before,
        "the calibrated plan must differ from the bootstrap plan"
    );
}

/// `SEQ(T0 a, T1 b, T2 c)` with `a.x < b.x` and `a.x < c.x`: the
/// correlation-drift fixture. Which of the two predicates is selective
/// decides whether the cheap evaluation order starts with `c` or `b`.
fn correlation_pattern(window: u64, strategy: SelectionStrategy) -> Pattern {
    let mut b = PatternBuilder::new(window);
    b.strategy(strategy);
    let a = b.event(t(0), "a");
    let bb = b.event(t(1), "b");
    let c = b.event(t(2), "c");
    b.predicate(Predicate::attr_cmp(a.pos(), 0, CmpOp::Lt, bb.pos(), 0));
    b.predicate(Predicate::attr_cmp(a.pos(), 0, CmpOp::Lt, c.pos(), 0));
    b.seq([a, bb, c]).unwrap()
}

/// Two-phase stream whose arrival rates are **identical in both phases**
/// (type 0 every ms, types 1 and 2 every 4 ms) while the correlations
/// flip: `a.x` cycles 0..100; in phase 1 `b.x = 95` (so `a.x < b.x`
/// passes 95% of the time) and `c.x = 5` (5%); phase 2 swaps the two.
/// A rate monitor is blind to the change by construction.
fn correlation_flip_stream(phase_ms: u64) -> EventStream {
    let mut b = StreamBuilder::new();
    for phase in 0..2u64 {
        let (bx, cx) = if phase == 0 { (95, 5) } else { (5, 95) };
        let base = phase * phase_ms;
        for i in 0..phase_ms {
            let ts = base + i;
            b.push(Event::new(t(0), ts, vec![Value::Int((i % 100) as i64)]));
            if i % 4 == 1 {
                b.push(Event::new(t(1), ts, vec![Value::Int(bx)]));
            }
            if i % 4 == 3 {
                b.push(Event::new(t(2), ts, vec![Value::Int(cx)]));
            }
        }
    }
    b.build()
}

/// Exact phase-1 statistics of [`correlation_flip_stream`] (also exact for
/// phase 2: the rates never change).
fn correlation_stats() -> MeasuredStats {
    let mut m = MeasuredStats::default();
    m.set_rate(t(0), 1.0);
    m.set_rate(t(1), 0.25);
    m.set_rate(t(2), 0.25);
    m
}

/// Phase-1 selectivities of the two predicates of
/// [`correlation_pattern`] over [`correlation_flip_stream`].
const CORRELATION_PHASE1_SELS: [f64; 2] = [0.95, 0.05];

fn correlation_replanner(strategy: SelectionStrategy) -> PlanReplanner {
    let cp = CompiledPattern::compile_single(&correlation_pattern(100, strategy)).unwrap();
    PlanReplanner::new(
        vec![(cp, CORRELATION_PHASE1_SELS.to_vec())],
        &correlation_stats(),
        Planner::default(),
        PlanKind::Order(OrderAlgorithm::DpLd),
        EngineConfig::default(),
    )
    .unwrap()
}

fn correlation_config() -> AdaptiveConfig {
    AdaptiveConfig {
        horizon_ms: 400,
        drift_threshold: 0.5,
        check_every: 64,
        cooldown_events: 128,
        ..AdaptiveConfig::default()
    }
}

#[test]
fn selectivity_drift_swaps_only_with_monitoring_and_stays_exact() {
    let stream = correlation_flip_stream(1_000);
    for strategy in [
        SelectionStrategy::SkipTillAnyMatch,
        SelectionStrategy::StrictContiguity,
        SelectionStrategy::PartitionContiguity,
    ] {
        let replanner = correlation_replanner(strategy);
        let mut static_engine = replanner.build();
        let expected = run_engine(static_engine.as_mut(), &stream);

        // Rate-only adaptivity: the rates are flat, so the monitor never
        // reports drift and the stale plan is kept for the whole stream.
        let mut rate_only = AdaptiveEngine::new(replanner.clone(), 100, correlation_config());
        let got = run_engine(&mut rate_only, &stream);
        assert_eq!(got, expected, "{strategy}: rate-only output diverged");
        assert_eq!(
            rate_only.swaps(),
            0,
            "{strategy}: constant rates must not trigger a rate-driven swap"
        );

        // Full adaptivity: the selectivity monitor sees the pass-rate flip
        // and replans from fresh rates *and* selectivities.
        let full_replanner = replanner
            .with_selectivity_monitoring(400, 0.5, 256)
            .with_selectivity_min_events(32);
        let mut full = AdaptiveEngine::new(full_replanner, 100, correlation_config());
        let got = run_engine(&mut full, &stream);
        assert_eq!(got, expected, "{strategy}: full-adaptive output diverged");
        assert!(
            full.swaps() >= 1,
            "{strategy}: the correlation flip must trigger a swap (got {})",
            full.swaps()
        );
        let m = full.metrics();
        assert!(m.selectivity_samples > 0, "monitor must absorb samples");
        assert!(m.replayed_events > 0, "a swap must replay retained state");
        if strategy == SelectionStrategy::SkipTillAnyMatch {
            assert!(!expected.is_empty(), "fixture should produce matches");
        }
    }
}

#[test]
fn selectivity_swapped_run_agrees_with_naive_oracle() {
    // A smaller instance of the correlation flip (the oracle is
    // exponential in live subsets, so the full fixture is out of reach):
    // the swapping engine must still agree with the exhaustive baseline.
    let stream: EventStream = correlation_flip_stream(360)
        .into_iter()
        .filter(|e| e.ts % 2 == 0 || e.type_id != t(0))
        .collect();
    let cp = CompiledPattern::compile_single(&correlation_pattern(
        60,
        SelectionStrategy::SkipTillAnyMatch,
    ))
    .unwrap();
    let replanner = PlanReplanner::new(
        vec![(cp.clone(), CORRELATION_PHASE1_SELS.to_vec())],
        &correlation_stats(),
        Planner::default(),
        PlanKind::Order(OrderAlgorithm::DpLd),
        EngineConfig::default(),
    )
    .unwrap()
    .with_selectivity_monitoring(200, 0.5, 128)
    .with_selectivity_min_events(16);
    let mut adaptive = AdaptiveEngine::new(
        replanner,
        60,
        AdaptiveConfig {
            horizon_ms: 200,
            drift_threshold: 0.5,
            check_every: 16,
            cooldown_events: 32,
            ..AdaptiveConfig::default()
        },
    );
    let got = run_engine(&mut adaptive, &stream);
    let mut oracle = NaiveEngine::new(cp, EngineConfig::default());
    let oracle_matches = run_engine(&mut oracle, &stream);
    assert!(!oracle_matches.is_empty(), "fixture should produce matches");
    assert_eq!(
        got.iter().map(|m| m.signature()).collect::<Vec<_>>(),
        oracle_matches
            .iter()
            .map(|m| m.signature())
            .collect::<Vec<_>>()
    );
}

#[test]
fn early_replan_does_not_corrupt_the_selectivity_baseline() {
    use std::sync::Arc;
    // A replan that fires before the selectivity monitor is warmed up
    // (e.g. the engine's calibration pass) must preserve the supplied
    // baseline: the monitor has only seen types 0 and 1, so re-estimating
    // now would default the a<c predicate to 1.0 — overwriting the real
    // 0.05 and making the later, fully warmed estimates look like drift.
    let mut replanner = correlation_replanner(SelectionStrategy::SkipTillAnyMatch)
        .with_selectivity_monitoring(400, 0.5, 256)
        .with_selectivity_min_events(150);
    let mut seq = 0u64;
    let mut feed = |r: &mut PlanReplanner, ty: u32, ts: u64, v: i64| {
        let mut e = Event::new(t(ty), ts, vec![Value::Int(v)]);
        e.seq = seq;
        seq += 1;
        r.observe_event(&Arc::new(e));
    };
    for i in 0..40u64 {
        feed(&mut replanner, 0, i, (i % 100) as i64);
        feed(&mut replanner, 1, i, 95);
    }
    replanner.replan_amortized(&correlation_stats(), &SwapCost::IGNORE);
    // Finish warming up under the *original* phase-1 correlations.
    for i in 40..200u64 {
        feed(&mut replanner, 0, i, (i % 100) as i64);
        if i % 4 == 1 {
            feed(&mut replanner, 1, i, 95);
        }
        if i % 4 == 3 {
            feed(&mut replanner, 2, i, 5);
        }
    }
    assert!(
        !replanner.stats_drifted(),
        "stationary correlations reported as drift: the pre-warm-up \
         replan corrupted the baseline"
    );
}

#[test]
fn non_amortized_swap_is_suppressed_with_output_unchanged() {
    let stream = correlation_flip_stream(2_000);
    let replanner = correlation_replanner(SelectionStrategy::SkipTillAnyMatch);
    let mut static_engine = replanner.build();
    let expected = run_engine(static_engine.as_mut(), &stream);
    let before = replanner.describe();
    // An amortization horizon of zero windows means no replay can ever pay
    // for itself: the monitor keeps reporting drift, the replanner keeps
    // finding the better plan, and the gate keeps declining it.
    let cfg = AdaptiveConfig {
        amortize_windows: 0.0,
        ..correlation_config()
    };
    let full_replanner = replanner
        .with_selectivity_monitoring(400, 0.5, 256)
        .with_selectivity_min_events(32);
    let mut engine = AdaptiveEngine::new(full_replanner, 100, cfg);
    let got = run_engine(&mut engine, &stream);
    assert_eq!(got, expected, "suppressed swaps must not change the output");
    assert_eq!(engine.swaps(), 0, "every swap must have been suppressed");
    let m = engine.metrics();
    assert!(
        m.suppressed_swaps >= 1,
        "the gate must have declined at least one beneficial swap"
    );
    assert_eq!(m.replayed_events, 0, "no swap, no replay");
    assert_eq!(
        engine.replanner().describe(),
        before,
        "the incumbent plan must survive suppression"
    );
}

#[test]
fn swap_cost_amortization_arithmetic() {
    let gate = SwapCost {
        replay_fraction: 1.0,
        amortize_windows: 8.0,
    };
    // Savings of 5/window over 8 windows (40) beat a replay bill of ~5.
    assert!(gate.amortizes(10.0, 5.0));
    // A 1% improvement cannot pay a full-window replay within 8 windows.
    assert!(!gate.amortizes(10.0, 9.9));
    // Non-improvements never amortize, under any horizon.
    assert!(!gate.amortizes(5.0, 5.0));
    assert!(!SwapCost::IGNORE.amortizes(5.0, 5.0));
    // The IGNORE context adopts any strict improvement.
    assert!(SwapCost::IGNORE.amortizes(5.0, 4.999));
    // A zero horizon suppresses everything.
    let never = SwapCost {
        replay_fraction: 0.0,
        amortize_windows: 0.0,
    };
    assert!(!never.amortizes(10.0, 1.0));
}

#[test]
fn factory_builds_independent_adaptive_engines() {
    let cp =
        CompiledPattern::compile_single(&seq_pattern(2, 10, SelectionStrategy::SkipTillAnyMatch))
            .unwrap();
    let factory = AdaptiveFactory::new(FlipFlop::new(cp, false), 10, eager(50));
    let f: &dyn EngineFactory = &factory;
    let mut a = f.build();
    let b = f.build();
    let mut out = Vec::new();
    a.process(&std::sync::Arc::new(Event::new(t(0), 1, vec![])), &mut out);
    assert_eq!(a.metrics().events_processed, 1);
    assert_eq!(b.metrics().events_processed, 0, "engines are independent");
    assert_eq!(a.name(), "adaptive");
}

proptest! {
    /// The tentpole property: on random workloads, a swapping engine —
    /// forced to swap as aggressively as the protocol allows — emits
    /// exactly what the never-swapped engine emits, for all three exact
    /// selection strategies and both engine families, and exactly what the
    /// naive oracle emits under skip-till-any-match.
    #[test]
    fn swapped_output_equals_static_on_random_workloads(
        raw in prop::collection::vec((0u32..3, 0u64..3), 1..80),
        strategy_idx in 0usize..3,
        tree in any::<bool>(),
    ) {
        let strategy = [
            SelectionStrategy::SkipTillAnyMatch,
            SelectionStrategy::StrictContiguity,
            SelectionStrategy::PartitionContiguity,
        ][strategy_idx];
        let mut ts = 0u64;
        let mut b = StreamBuilder::new();
        for (tid, dt) in raw {
            ts += dt;
            b.push(Event::new(t(tid), ts, vec![]));
        }
        let stream = b.build();
        let cp = CompiledPattern::compile_single(&seq_pattern(3, 10, strategy)).unwrap();
        let replanner = FlipFlop::new(cp.clone(), tree);
        let mut static_engine = replanner.build();
        let expected = run_engine(static_engine.as_mut(), &stream);
        let mut adaptive = AdaptiveEngine::new(replanner, 10, eager(30));
        let got = run_engine(&mut adaptive, &stream);
        prop_assert_eq!(&got, &expected);
        if strategy == SelectionStrategy::SkipTillAnyMatch {
            let mut oracle = NaiveEngine::new(cp, EngineConfig::default());
            let oracle_matches = run_engine(&mut oracle, &stream);
            prop_assert_eq!(
                got.iter().map(|m| m.signature()).collect::<Vec<_>>(),
                oracle_matches.iter().map(|m| m.signature()).collect::<Vec<_>>()
            );
        }
    }
}

// ---------------------------------------------------------------------------
// Observability: tracing must observe without perturbing.

proptest! {
    /// A traced adaptive run — ring sink attached, decisions and matches
    /// recorded — emits byte-identical matches to the untraced run, for
    /// all three exact strategies and both engine families.
    #[test]
    fn traced_adaptive_run_is_byte_identical_to_untraced(
        raw in prop::collection::vec((0u32..3, 0u64..3), 1..80),
        strategy_idx in 0usize..3,
        tree in any::<bool>(),
    ) {
        let strategy = [
            SelectionStrategy::SkipTillAnyMatch,
            SelectionStrategy::StrictContiguity,
            SelectionStrategy::PartitionContiguity,
        ][strategy_idx];
        let mut ts = 0u64;
        let mut b = StreamBuilder::new();
        for (tid, dt) in raw {
            ts += dt;
            b.push(Event::new(t(tid), ts, vec![]));
        }
        let stream = b.build();
        let cp = CompiledPattern::compile_single(&seq_pattern(3, 10, strategy)).unwrap();
        let replanner = FlipFlop::new(cp, tree);
        let mut plain = AdaptiveEngine::new(replanner.clone(), 10, eager(30));
        let expected = run_engine(&mut plain, &stream);
        let ring = std::sync::Arc::new(cep_obs::RingSink::new(1 << 16));
        let tracer = cep_obs::Tracer::to_sink(ring.clone());
        let mut traced =
            AdaptiveEngine::new(replanner, 10, eager(30)).with_tracer(tracer.clone());
        let got = canonical(
            cep_core::engine::run_traced(&mut traced, &stream, true, &tracer).matches,
        );
        prop_assert_eq!(&got, &expected);
        // Every emitted match produced one MatchEmitted record.
        let records = ring.snapshot();
        let emitted = records
            .iter()
            .filter(|r| matches!(r, cep_obs::TraceRecord::MatchEmitted { .. }))
            .count();
        prop_assert_eq!(emitted, got.len());
        // And every record survives a JSONL round trip byte-for-byte.
        for r in &records {
            let line = r.to_json();
            prop_assert_eq!(&cep_obs::TraceRecord::from_json(&line).unwrap(), r);
            prop_assert_eq!(
                cep_obs::TraceRecord::from_json(&line).unwrap().to_json(),
                line
            );
        }
    }
}

#[test]
fn replan_decisions_are_traced_with_cost_arithmetic() {
    let stream = two_phase_stream(4_000);
    let cp =
        CompiledPattern::compile_single(&seq_pattern(3, 50, SelectionStrategy::SkipTillAnyMatch))
            .unwrap();
    let replanner = PlanReplanner::new(
        vec![(cp, vec![])],
        &phase1_stats(),
        Planner::default(),
        PlanKind::Order(OrderAlgorithm::DpLd),
        EngineConfig::default(),
    )
    .unwrap();
    let ring = std::sync::Arc::new(cep_obs::RingSink::new(1 << 14));
    let tracer = cep_obs::Tracer::to_sink(ring.clone());
    let mut adaptive = AdaptiveEngine::new(
        replanner,
        50,
        AdaptiveConfig {
            horizon_ms: 500,
            drift_threshold: 0.5,
            check_every: 64,
            cooldown_events: 0,
            ..AdaptiveConfig::default()
        },
    )
    .with_tracer(tracer.clone());
    let result = cep_core::engine::run_traced(&mut adaptive, &stream, false, &tracer);
    assert!(result.metrics.plan_swaps >= 1, "drift must trigger a swap");
    let records = ring.snapshot();
    let mut swap_decisions = 0u64;
    let mut replays = 0u64;
    for r in &records {
        match r {
            cep_obs::TraceRecord::PlanSwapDecision {
                verdict,
                current_cost,
                candidate_cost,
                amortize_windows,
                ..
            } => {
                assert!(["swap", "keep", "suppressed"].contains(&verdict.as_str()));
                if verdict == "swap" {
                    swap_decisions += 1;
                    // The real replanner always reports the arithmetic it
                    // decided on: a swap needs a strictly better candidate.
                    assert!(*current_cost > *candidate_cost, "{r:?}");
                    assert!(*candidate_cost >= 0.0, "{r:?}");
                }
                assert_eq!(*amortize_windows, crate::DEFAULT_AMORTIZE_WINDOWS);
            }
            cep_obs::TraceRecord::ReplayWindow { replay_ns, .. } => {
                replays += 1;
                assert!(*replay_ns > 0);
            }
            _ => {}
        }
    }
    assert_eq!(swap_decisions, result.metrics.plan_swaps);
    assert_eq!(replays, result.metrics.plan_swaps, "one replay per swap");
    // The replay histogram saw exactly one sample per swap, summing to the
    // replay-time counter.
    assert_eq!(result.metrics.replay_ns.count(), result.metrics.plan_swaps);
    assert_eq!(
        result.metrics.replay_ns.sum(),
        result.metrics.replay_time_ns
    );
}

#[test]
fn default_replanner_reports_no_costs_and_flipflop_uses_sentinel() {
    let cp =
        CompiledPattern::compile_single(&seq_pattern(2, 10, SelectionStrategy::SkipTillAnyMatch))
            .unwrap();
    let flip = FlipFlop::new(cp, false);
    assert_eq!(flip.last_costs(), None, "default impl tracks nothing");
    // A traced engine over such a replanner emits the −1 sentinel.
    let ring = std::sync::Arc::new(cep_obs::RingSink::new(64));
    let tracer = cep_obs::Tracer::to_sink(ring.clone());
    let mut adaptive = AdaptiveEngine::new(flip, 10, eager(50)).with_tracer(tracer);
    let stream = lcg_stream(300, 2, 0xBEEF);
    let mut out = Vec::new();
    for e in &stream {
        adaptive.process(e, &mut out);
    }
    let decision = ring
        .snapshot()
        .into_iter()
        .find(|r| matches!(r, cep_obs::TraceRecord::PlanSwapDecision { .. }))
        .expect("eager config must produce a decision");
    if let cep_obs::TraceRecord::PlanSwapDecision {
        current_cost,
        candidate_cost,
        ..
    } = decision
    {
        assert_eq!(current_cost, -1.0);
        assert_eq!(candidate_cost, -1.0);
    }
}
