//! Exactness and protocol tests for the adaptive runtime, following the
//! naive-oracle / canonical-sort harness pattern of `cep-shard`: the
//! never-swapped engine (and, for skip-till-any-match, the naive oracle)
//! is the ground truth a swapping engine must reproduce byte-identically.

use crate::{AdaptiveConfig, AdaptiveEngine, AdaptiveFactory, PlanKind, PlanReplanner, Replanner};
use cep_core::compile::CompiledPattern;
use cep_core::engine::{run_to_completion, Engine, EngineConfig, EngineFactory};
use cep_core::event::{Event, TypeId};
use cep_core::matches::{validate_match, Match};
use cep_core::naive::NaiveEngine;
use cep_core::pattern::{Pattern, PatternBuilder};
use cep_core::plan::{OrderPlan, TreePlan};
use cep_core::selection::SelectionStrategy;
use cep_core::stats::MeasuredStats;
use cep_core::stream::{EventStream, StreamBuilder};
use cep_nfa::NfaEngine;
use cep_optimizer::{OrderAlgorithm, Planner};
use cep_tree::TreeEngine;
use proptest::prelude::*;

fn t(i: u32) -> TypeId {
    TypeId(i)
}

/// `SEQ` of `n` distinct types, no predicates.
fn seq_pattern(n: usize, window: u64, strategy: SelectionStrategy) -> Pattern {
    let mut b = PatternBuilder::new(window);
    b.strategy(strategy);
    let evs: Vec<_> = (0..n)
        .map(|i| b.event(t(i as u32), &format!("e{i}")))
        .collect();
    b.seq(evs).unwrap()
}

/// Deterministic pseudo-random workload (the LCG of the shard tests).
fn lcg_stream(len: u64, types: u32, seed: u64) -> EventStream {
    let mut state = seed;
    let mut ts = 0u64;
    let mut b = StreamBuilder::new();
    for _ in 0..len {
        state = state
            .wrapping_mul(6364136223846793005)
            .wrapping_add(1442695040888963407);
        let tid = ((state >> 33) % types as u64) as u32;
        ts += (state >> 50) % 3;
        b.push(Event::new(t(tid), ts, vec![]));
    }
    b.build()
}

/// Two-phase stream: type 0 frequent / type 2 rare, flipping halfway.
/// Type 1 is steady. Rates per ms are phase-dependent integers so drift is
/// unambiguous.
fn two_phase_stream(phase_ms: u64) -> EventStream {
    let mut b = StreamBuilder::new();
    for phase in 0..2u64 {
        let (every_a, every_c) = if phase == 0 { (2, 40) } else { (40, 2) };
        let base = phase * phase_ms;
        for i in 0..phase_ms {
            let ts = base + i;
            if i % every_a == 0 {
                b.push(Event::new(t(0), ts, vec![]));
            }
            if i % 10 == 0 {
                b.push(Event::new(t(1), ts, vec![]));
            }
            if i % every_c == 0 {
                b.push(Event::new(t(2), ts, vec![]));
            }
        }
    }
    b.build()
}

/// Phase-1 statistics of [`two_phase_stream`].
fn phase1_stats() -> MeasuredStats {
    let mut m = MeasuredStats::default();
    m.set_rate(t(0), 0.5);
    m.set_rate(t(1), 0.1);
    m.set_rate(t(2), 0.025);
    m
}

/// An eager configuration: tiny horizon, hair-trigger threshold, frequent
/// checks, no cooldown — maximizes swap pressure for protocol tests.
fn eager(horizon_ms: u64) -> AdaptiveConfig {
    AdaptiveConfig {
        horizon_ms,
        drift_threshold: 1e-6,
        check_every: 4,
        cooldown_events: 0,
    }
}

/// A test replanner that alternates between two fixed plans on every
/// replan call, reporting a change each time: guarantees swaps regardless
/// of what the statistics say, isolating the swap/replay/dedup machinery
/// from drift detection.
#[derive(Clone)]
struct FlipFlop {
    cp: CompiledPattern,
    orders: [OrderPlan; 2],
    active: usize,
    tree: bool,
}

impl FlipFlop {
    fn new(cp: CompiledPattern, tree: bool) -> FlipFlop {
        let n = cp.n();
        let fwd = OrderPlan::new((0..n).collect()).unwrap();
        let rev = OrderPlan::new((0..n).rev().collect()).unwrap();
        FlipFlop {
            cp,
            orders: [fwd, rev],
            active: 0,
            tree,
        }
    }
}

impl Replanner for FlipFlop {
    fn build(&self) -> Box<dyn Engine> {
        let plan = &self.orders[self.active];
        if self.tree {
            Box::new(
                TreeEngine::new(
                    self.cp.clone(),
                    TreePlan::left_deep(plan),
                    EngineConfig::default(),
                )
                .unwrap(),
            )
        } else {
            Box::new(
                NfaEngine::new(self.cp.clone(), plan.clone(), EngineConfig::default()).unwrap(),
            )
        }
    }

    fn replan(&mut self, _rates: &MeasuredStats) -> bool {
        self.active = 1 - self.active;
        true
    }

    fn consumes(&self) -> bool {
        self.cp.strategy.consumes()
    }
}

/// Canonical ground-truth order shared with `cep_shard::canonical_sort`.
fn canonical(mut matches: Vec<Match>) -> Vec<Match> {
    matches.sort_by_cached_key(|m| (m.emitted_at, m.last_ts, m.signature()));
    matches
}

fn run_engine(engine: &mut dyn Engine, stream: &EventStream) -> Vec<Match> {
    canonical(run_to_completion(engine, stream, true).matches)
}

#[test]
fn real_replanner_swaps_on_drift_and_output_is_byte_identical() {
    let stream = two_phase_stream(4_000);
    for strategy in [
        SelectionStrategy::SkipTillAnyMatch,
        SelectionStrategy::StrictContiguity,
        SelectionStrategy::PartitionContiguity,
    ] {
        let cp = CompiledPattern::compile_single(&seq_pattern(3, 50, strategy)).unwrap();
        let replanner = PlanReplanner::new(
            vec![(cp, vec![])],
            &phase1_stats(),
            Planner::default(),
            PlanKind::Order(OrderAlgorithm::DpLd),
            EngineConfig::default(),
        )
        .unwrap();
        let mut static_engine = replanner.build();
        let expected = run_engine(static_engine.as_mut(), &stream);
        let mut adaptive = AdaptiveEngine::new(
            replanner,
            50,
            AdaptiveConfig {
                horizon_ms: 500,
                drift_threshold: 0.5,
                check_every: 64,
                cooldown_events: 128,
            },
        );
        let got = run_engine(&mut adaptive, &stream);
        assert_eq!(got, expected, "{strategy}: swapped output diverged");
        if strategy == SelectionStrategy::SkipTillAnyMatch {
            assert!(!expected.is_empty(), "fixture should produce matches");
            assert!(
                adaptive.swaps() >= 1,
                "the rate flip must trigger at least one swap"
            );
            assert!(adaptive.metrics().replayed_events > 0);
        }
    }
}

#[test]
fn forced_swaps_are_exact_for_both_engine_families() {
    let stream = lcg_stream(300, 3, 0xADA971);
    for strategy in [
        SelectionStrategy::SkipTillAnyMatch,
        SelectionStrategy::StrictContiguity,
        SelectionStrategy::PartitionContiguity,
    ] {
        let cp = CompiledPattern::compile_single(&seq_pattern(3, 12, strategy)).unwrap();
        for tree in [false, true] {
            let replanner = FlipFlop::new(cp.clone(), tree);
            let mut static_engine = replanner.build();
            let expected = run_engine(static_engine.as_mut(), &stream);
            let mut adaptive = AdaptiveEngine::new(replanner, 12, eager(50));
            let got = run_engine(&mut adaptive, &stream);
            assert!(
                adaptive.swaps() >= 2,
                "eager flip-flop must swap repeatedly, got {}",
                adaptive.swaps()
            );
            assert_eq!(
                got, expected,
                "{strategy} (tree={tree}): forced swaps changed the output"
            );
        }
    }
}

#[test]
fn replayed_window_matches_are_never_emitted_twice() {
    // Dense single-key stream: plenty of matches complete right before each
    // swap, so every replay re-detects recently emitted matches.
    let stream = lcg_stream(400, 3, 7);
    let cp =
        CompiledPattern::compile_single(&seq_pattern(3, 15, SelectionStrategy::SkipTillAnyMatch))
            .unwrap();
    let mut adaptive = AdaptiveEngine::new(FlipFlop::new(cp.clone(), false), 15, eager(60));
    let got = run_to_completion(&mut adaptive, &stream, true).matches;
    assert!(!got.is_empty());
    assert!(adaptive.swaps() >= 2);
    assert!(adaptive.metrics().replayed_events > 0);
    let mut sigs = std::collections::HashSet::new();
    for m in &got {
        validate_match(&cp, m).unwrap();
        assert!(
            sigs.insert(m.signature()),
            "duplicate emission of {m} after a swap replay"
        );
    }
}

#[test]
fn next_match_swaps_stay_valid_disjoint_and_deterministic() {
    let stream = lcg_stream(250, 3, 0xBEEF);
    let cp =
        CompiledPattern::compile_single(&seq_pattern(3, 12, SelectionStrategy::SkipTillNextMatch))
            .unwrap();
    let run = || {
        let mut adaptive = AdaptiveEngine::new(FlipFlop::new(cp.clone(), false), 12, eager(50));
        let matches = run_to_completion(&mut adaptive, &stream, true).matches;
        (matches, adaptive.swaps())
    };
    let (matches, swaps) = run();
    assert!(swaps >= 1);
    assert!(!matches.is_empty(), "fixture should produce matches");
    let mut used = std::collections::HashSet::new();
    for m in &matches {
        validate_match(&cp, m).unwrap();
        for e in m.events() {
            assert!(used.insert(e.seq), "event reused across a swap");
        }
    }
    let (again, _) = run();
    assert_eq!(matches, again, "repeat runs must be identical");
}

#[test]
fn retained_buffer_is_window_bounded() {
    let window = 20u64;
    let cp = CompiledPattern::compile_single(&seq_pattern(
        2,
        window,
        SelectionStrategy::SkipTillAnyMatch,
    ))
    .unwrap();
    let mut adaptive = AdaptiveEngine::new(FlipFlop::new(cp, false), window, eager(50));
    // One event per ms for 300 ms: the buffer must plateau at ~window+1
    // events instead of growing with the stream.
    let mut b = StreamBuilder::new();
    for ts in 0..300u64 {
        b.push(Event::new(t(ts as u32 % 2), ts, vec![]));
    }
    let stream = b.build();
    let mut out = Vec::new();
    for e in &stream {
        adaptive.process(e, &mut out);
        assert!(
            adaptive.retained_len() as u64 <= window + 1,
            "retained buffer exceeded the window bound"
        );
    }
    let m = adaptive.metrics();
    assert_eq!(m.retained_events, adaptive.retained_len());
    assert!(m.peak_retained_events as u64 <= window + 1);
    assert!(m.peak_retained_events > 0);
    assert_eq!(m.events_processed, stream.len() as u64);
    assert!(
        m.replayed_events > m.plan_swaps,
        "replays should re-process multiple events per swap"
    );
}

#[test]
fn calibration_replans_away_from_wrong_bootstrap_statistics() {
    // Bootstrap the plan from statistics claiming type 2 is frequent and
    // type 0 rare — the opposite of the stream. The first drift check has
    // no baseline, so the engine must calibrate: replan from measured
    // rates and swap to the correct order.
    let mut wrong = MeasuredStats::default();
    wrong.set_rate(t(0), 0.001);
    wrong.set_rate(t(1), 0.1);
    wrong.set_rate(t(2), 1.0);
    let cp =
        CompiledPattern::compile_single(&seq_pattern(3, 50, SelectionStrategy::SkipTillAnyMatch))
            .unwrap();
    let replanner = PlanReplanner::new(
        vec![(cp, vec![])],
        &wrong,
        Planner::default(),
        PlanKind::Order(OrderAlgorithm::DpLd),
        EngineConfig::default(),
    )
    .unwrap();
    let before = replanner.describe();
    let mut static_engine = replanner.build();
    // Phase 1 of the two-phase stream alone: stationary, but unlike the
    // bootstrap statistics.
    let stream: EventStream = two_phase_stream(2_000)
        .into_iter()
        .filter(|e| e.ts < 2_000)
        .collect();
    let expected = run_engine(static_engine.as_mut(), &stream);
    let mut adaptive = AdaptiveEngine::new(
        replanner,
        50,
        AdaptiveConfig {
            horizon_ms: 500,
            drift_threshold: 0.5,
            check_every: 64,
            cooldown_events: 64,
        },
    );
    let got = run_engine(&mut adaptive, &stream);
    assert_eq!(got, expected);
    assert!(adaptive.swaps() >= 1, "calibration must swap");
    assert_ne!(
        adaptive.replanner().describe(),
        before,
        "the calibrated plan must differ from the bootstrap plan"
    );
}

#[test]
fn factory_builds_independent_adaptive_engines() {
    let cp =
        CompiledPattern::compile_single(&seq_pattern(2, 10, SelectionStrategy::SkipTillAnyMatch))
            .unwrap();
    let factory = AdaptiveFactory::new(FlipFlop::new(cp, false), 10, eager(50));
    let f: &dyn EngineFactory = &factory;
    let mut a = f.build();
    let b = f.build();
    let mut out = Vec::new();
    a.process(&std::sync::Arc::new(Event::new(t(0), 1, vec![])), &mut out);
    assert_eq!(a.metrics().events_processed, 1);
    assert_eq!(b.metrics().events_processed, 0, "engines are independent");
    assert_eq!(a.name(), "adaptive");
}

proptest! {
    /// The tentpole property: on random workloads, a swapping engine —
    /// forced to swap as aggressively as the protocol allows — emits
    /// exactly what the never-swapped engine emits, for all three exact
    /// selection strategies and both engine families, and exactly what the
    /// naive oracle emits under skip-till-any-match.
    #[test]
    fn swapped_output_equals_static_on_random_workloads(
        raw in prop::collection::vec((0u32..3, 0u64..3), 1..80),
        strategy_idx in 0usize..3,
        tree in any::<bool>(),
    ) {
        let strategy = [
            SelectionStrategy::SkipTillAnyMatch,
            SelectionStrategy::StrictContiguity,
            SelectionStrategy::PartitionContiguity,
        ][strategy_idx];
        let mut ts = 0u64;
        let mut b = StreamBuilder::new();
        for (tid, dt) in raw {
            ts += dt;
            b.push(Event::new(t(tid), ts, vec![]));
        }
        let stream = b.build();
        let cp = CompiledPattern::compile_single(&seq_pattern(3, 10, strategy)).unwrap();
        let replanner = FlipFlop::new(cp.clone(), tree);
        let mut static_engine = replanner.build();
        let expected = run_engine(static_engine.as_mut(), &stream);
        let mut adaptive = AdaptiveEngine::new(replanner, 10, eager(30));
        let got = run_engine(&mut adaptive, &stream);
        prop_assert_eq!(&got, &expected);
        if strategy == SelectionStrategy::SkipTillAnyMatch {
            let mut oracle = NaiveEngine::new(cp, EngineConfig::default());
            let oracle_matches = run_engine(&mut oracle, &stream);
            prop_assert_eq!(
                got.iter().map(|m| m.signature()).collect::<Vec<_>>(),
                oracle_matches.iter().map(|m| m.signature()).collect::<Vec<_>>()
            );
        }
    }
}
