//! # cep-adaptive
//!
//! Live plan swap with state migration: the detect → replan → swap loop
//! the paper defers to its companion work (Section 6.3), closed inside a
//! running engine. This is the adaptive direction of the streaming-join
//! optimizers in the related work (Dossinger & Michel, arXiv:2104.07742,
//! re-optimize join orders online; Idris et al., arXiv:1905.09848,
//! maintain results under updates without recomputation).
//!
//! ## The protocol
//!
//! [`AdaptiveEngine`] wraps any plan-built engine and, per input event:
//!
//! 1. feeds a [`StatsMonitor`](cep_optimizer::StatsMonitor) (sliding-horizon
//!    arrival rates + drift detection) and a **retained-event buffer**
//!    holding exactly the last pattern window of the stream;
//! 2. forwards the event to the active engine and routes its emissions
//!    through a signature dedup keyed like the deterministic shard merge;
//! 3. every `check_every` events, if the monitor reports drift, asks its
//!    [`Replanner`] to rebuild the evaluation plan from the live rate
//!    estimates. If the plan changed, the engine **hot-swaps**: a fresh
//!    engine is built from the new plan, the retained window is replayed
//!    into it, and the old engine is dropped *without flushing* (its
//!    deferred state — e.g. matches pending a trailing-negation watermark —
//!    is reconstructed exactly by the replay).
//!
//! ## Exactness
//!
//! Under the three *exact* selection strategies (skip-till-any-match,
//! strict contiguity, partition contiguity) the merged output is
//! **byte-identical** to a never-swapped engine's, for any swap schedule:
//!
//! * any match emitted after a swap at watermark `w` only binds events with
//!   `ts ≥ w − window` (its last event has `ts ≥ w` and the pattern window
//!   bounds the span), and the retained buffer holds every such event — the
//!   new engine misses nothing;
//! * matches the old engine already emitted are re-detected during replay
//!   and suppressed by the dedup (signatures are remembered for one window
//!   length, which covers everything a replay can re-emit);
//! * match *content* is plan-independent for the exact strategies
//!   (the plan changes cost, never the result set — the paper's Section 3
//!   semantics), so swapping plans mid-stream cannot change the output.
//!
//! Skip-till-next-match is excluded, exactly as in `cep-shard`: its greedy
//! binding choices depend on the consumption state accumulated under the
//! old plan, which a swap rebuilds from the retained window only. The
//! wrapper *does* migrate consumption state — events bound by emitted
//! matches are remembered for one window, and post-swap emissions reusing
//! them are suppressed — so swapped next-match runs remain valid,
//! event-disjoint, and deterministic per configuration, but bindings may
//! differ from a never-swapped run's.
//!
//! Every shard of a `cep-shard`-style worker pool can own its own
//! `AdaptiveEngine` (via [`AdaptiveFactory`]): each worker then replans
//! independently on the statistics of its slice of the stream.

#![warn(missing_docs)]

pub mod engine;
pub mod replanner;

pub use engine::{
    AdaptiveConfig, AdaptiveEngine, AdaptiveFactory, ReplanCosts, ReplanVerdict, Replanner,
    SwapCost, DEFAULT_AMORTIZE_WINDOWS,
};
pub use replanner::{PlanKind, PlanReplanner};

#[cfg(test)]
mod tests;
