//! The planner-backed [`Replanner`]: closes the `StatsMonitor` → planner
//! loop with any order- or tree-based plan-generation algorithm, optionally
//! anchoring the latency objective with the Section 6.1 output profiler.

use crate::engine::{ReplanCosts, ReplanVerdict, Replanner, SwapCost};
use cep_core::compile::CompiledPattern;
use cep_core::compiled::{shared_plan_cache, SharedPlanCache};
use cep_core::engine::{Engine, EngineConfig, MultiEngine};
use cep_core::error::CepError;
use cep_core::event::EventRef;
use cep_core::matches::Match;
use cep_core::plan::{OrderPlan, TreePlan};
use cep_core::stats::{MeasuredStats, PatternStats};
use cep_nfa::NfaEngine;
use cep_optimizer::planner::LatencyAnchor;
use cep_optimizer::OutputProfiler;
use cep_optimizer::{OrderAlgorithm, Planner, SelectivityMonitor, TreeAlgorithm};
use cep_tree::TreeEngine;

/// Matches a replan is based on before the output profiler may override
/// the latency anchor (Section 6.1's "enough evidence" knob).
const PROFILER_MIN_SAMPLES: u64 = 64;

/// Capacity of the default per-replanner compiled-plan cache. Replans keep
/// the pattern structure fixed and only reorder evaluation, so each branch
/// occupies one slot and every post-swap rebuild is a hit; the headroom
/// covers multi-branch patterns.
const DEFAULT_PLAN_CACHE_CAP: usize = 64;

/// Default hysteresis of [`PlanReplanner`]: a candidate plan must predict
/// at least this relative cost improvement over the incumbent (under the
/// *same* fresh statistics) before a swap is worth its replay. Rate
/// estimates from a sliding horizon are noisy — for rare types a handful
/// of events move the estimate by tens of percent — and without a margin
/// the planner flaps between near-tied orders, paying a full window replay
/// for each flip.
pub const DEFAULT_MIN_IMPROVEMENT: f64 = 0.2;

/// Which plan family (and algorithm) the replanner regenerates.
#[derive(Debug, Clone, Copy)]
pub enum PlanKind {
    /// Order-based plans evaluated by the lazy-NFA engine.
    Order(OrderAlgorithm),
    /// Tree-based plans evaluated by the ZStream-style engine.
    Tree(TreeAlgorithm),
}

#[derive(Clone)]
enum CurrentPlan {
    Order(OrderPlan),
    Tree(TreePlan),
}

#[derive(Clone)]
struct Branch {
    cp: CompiledPattern,
    /// Per-predicate selectivities the current plan was built with;
    /// refreshed from the selectivity monitor when monitoring is enabled.
    sels: Vec<f64>,
    plan: CurrentPlan,
    /// Cached statistics, rebuilt **in place** on every replan
    /// ([`PatternStats::update`]) so the hot loop never reallocates the
    /// rate vector or selectivity matrix.
    stats: PatternStats,
    /// Live selectivity re-estimation for this branch, when enabled.
    monitor: Option<SelectivityMonitor>,
}

/// A [`Replanner`] that regenerates evaluation plans with a
/// [`Planner`] whenever the adaptive loop hands it fresh rate estimates.
///
/// One instance covers every DNF branch of a pattern (multi-branch builds
/// produce a [`MultiEngine`], exactly like the facade's static factories).
/// Per-predicate selectivities are supplied at construction; with
/// [`with_selectivity_monitoring`](Self::with_selectivity_monitoring) they
/// are additionally **re-estimated online** from sampled event pairs over
/// a sliding horizon, so replans see fresh *rates and selectivities* — a
/// stream whose correlations shift while its rates stay flat still
/// triggers a plan change.
///
/// For single-branch patterns an [`OutputProfiler`] observes every emitted
/// match; once it has seen enough samples, replans anchor
/// the latency term of the cost objective on the element that empirically
/// arrives last (only meaningful when the planner's `alpha > 0`).
#[derive(Clone)]
pub struct PlanReplanner {
    planner: Planner,
    kind: PlanKind,
    engine_config: EngineConfig,
    window: u64,
    branches: Vec<Branch>,
    profiler: OutputProfiler,
    min_improvement: f64,
    /// Signature-keyed compiled-program cache shared by every engine this
    /// replanner builds (including across hot swaps and factory clones):
    /// the pattern's predicates are lowered once, and every rebuild for an
    /// unchanged pattern reuses the compiled program.
    plan_cache: SharedPlanCache,
    /// Cost pair of the widest-improvement branch in the last replan
    /// attempt (see [`Replanner::last_costs`]); `None` until the first
    /// attempt or after one that errored before costing.
    last_costs: Option<ReplanCosts>,
}

impl PlanReplanner {
    /// Plans every branch against `initial` statistics and returns a
    /// replanner holding those plans as current. `branches` pairs each
    /// compiled DNF branch with the selectivity of each of its predicates.
    pub fn new(
        branches: Vec<(CompiledPattern, Vec<f64>)>,
        initial: &MeasuredStats,
        planner: Planner,
        kind: PlanKind,
        engine_config: EngineConfig,
    ) -> Result<PlanReplanner, CepError> {
        if branches.is_empty() {
            return Err(CepError::Pattern("replanner needs >= 1 branch".into()));
        }
        let window = branches[0].0.window;
        let n0 = branches[0].0.n();
        let mut replanner = PlanReplanner {
            planner,
            kind,
            engine_config,
            window,
            branches: Vec::with_capacity(branches.len()),
            profiler: OutputProfiler::new(n0, PROFILER_MIN_SAMPLES),
            min_improvement: DEFAULT_MIN_IMPROVEMENT,
            plan_cache: shared_plan_cache(DEFAULT_PLAN_CACHE_CAP),
            last_costs: None,
        };
        for (cp, sels) in branches {
            let (plan, stats) = replanner.plan_branch(&cp, &sels, initial)?;
            replanner.branches.push(Branch {
                cp,
                sels,
                plan,
                stats,
                monitor: None,
            });
        }
        Ok(replanner)
    }

    /// Enables online selectivity re-estimation: every branch gets a
    /// [`SelectivityMonitor`] seeded with its construction-time
    /// selectivities as baseline, retaining `horizon_ms` of relevant
    /// events and sampling up to `max_pairs` event pairs per estimate.
    /// `threshold` is the relative deviation that counts as selectivity
    /// drift. Replans then use the monitor's fresh estimates (once warmed
    /// up) instead of the frozen construction-time values.
    pub fn with_selectivity_monitoring(
        mut self,
        horizon_ms: u64,
        threshold: f64,
        max_pairs: usize,
    ) -> PlanReplanner {
        for b in &mut self.branches {
            b.monitor = Some(SelectivityMonitor::new(
                b.cp.clone(),
                b.sels.clone(),
                horizon_ms,
                threshold,
                max_pairs,
            ));
        }
        self
    }

    /// Overrides the warm-up threshold of every selectivity monitor (the
    /// retained-event count below which estimates are not acted on).
    /// No-op unless
    /// [`with_selectivity_monitoring`](Self::with_selectivity_monitoring)
    /// was called first.
    pub fn with_selectivity_min_events(mut self, min_events: usize) -> PlanReplanner {
        for b in &mut self.branches {
            b.monitor = b.monitor.take().map(|m| m.with_min_events(min_events));
        }
        self
    }

    /// Plans one branch under the current planner configuration, with the
    /// profiler's anchor substituted when it has enough evidence.
    fn plan_branch(
        &self,
        cp: &CompiledPattern,
        sels: &[f64],
        measured: &MeasuredStats,
    ) -> Result<(CurrentPlan, PatternStats), CepError> {
        let planner = self.anchored_planner();
        let stats = planner.stats_for(cp, measured, sels)?;
        let plan = Self::plan_with(&planner, cp, &stats, self.kind)?;
        Ok((plan, stats))
    }

    /// Plans one branch with an already-anchored planner and pre-built
    /// statistics (the shared worker for [`Self::plan_branch`] and
    /// [`Replanner::replan`]).
    fn plan_with(
        planner: &Planner,
        cp: &CompiledPattern,
        stats: &cep_core::stats::PatternStats,
        kind: PlanKind,
    ) -> Result<CurrentPlan, CepError> {
        let plan = match kind {
            PlanKind::Order(algo) => CurrentPlan::Order(planner.plan_order(cp, stats, algo)?),
            PlanKind::Tree(algo) => CurrentPlan::Tree(planner.plan_tree(cp, stats, algo)?),
        };
        // Lint every swap candidate in debug builds; a rejected plan
        // surfaces as `Err` and the caller keeps the incumbent.
        if cfg!(debug_assertions) {
            match &plan {
                CurrentPlan::Order(p) => cep_analyze::verify_order_plan(cp, p)?,
                CurrentPlan::Tree(p) => cep_analyze::verify_tree_plan(cp, p)?,
            }
        }
        Ok(plan)
    }

    /// The planner to use right now: the configured one, with the latency
    /// anchor overridden by the output profiler for single-branch patterns
    /// once enough matches were observed.
    fn anchored_planner(&self) -> Planner {
        let mut planner = self.planner.clone();
        if self.branches.len() <= 1 {
            if let Some(anchor) = self.profiler.anchor() {
                planner.config.anchor = LatencyAnchor::Element(anchor);
            }
        }
        planner
    }

    /// Overrides the swap hysteresis (see [`DEFAULT_MIN_IMPROVEMENT`]);
    /// 0.0 swaps on any strict cost improvement.
    pub fn with_min_improvement(mut self, min_improvement: f64) -> PlanReplanner {
        assert!(min_improvement >= 0.0, "improvement margin must be >= 0");
        self.min_improvement = min_improvement;
        self
    }

    /// Replaces the compiled-plan cache, e.g. with a traced one
    /// ([`cep_core::compiled::PlanCache::with_tracer`]) or one shared with
    /// other replanners or static factories.
    pub fn with_plan_cache(mut self, cache: SharedPlanCache) -> PlanReplanner {
        self.plan_cache = cache;
        self
    }

    /// The compiled-plan cache engines built by this replanner draw from.
    pub fn plan_cache(&self) -> &SharedPlanCache {
        &self.plan_cache
    }

    /// Cost of a plan for one branch under the given statistics and cost
    /// model.
    fn plan_cost(
        cm: &cep_core::cost::CostModel,
        plan: &CurrentPlan,
        stats: &cep_core::stats::PatternStats,
    ) -> f64 {
        match plan {
            CurrentPlan::Order(p) => cm.order_plan_cost(stats, p),
            CurrentPlan::Tree(p) => cm.tree_plan_cost(stats, p),
        }
    }

    /// Human-readable rendering of the current plan(s), for logs and
    /// examples.
    pub fn describe(&self) -> String {
        self.branches
            .iter()
            .map(|b| match &b.plan {
                CurrentPlan::Order(p) => p.to_string(),
                CurrentPlan::Tree(p) => p.to_string(),
            })
            .collect::<Vec<_>>()
            .join(" | ")
    }
}

impl Replanner for PlanReplanner {
    fn build(&self) -> Box<dyn Engine> {
        // Plans were produced by the planner for these very compiled
        // patterns, so engine construction cannot fail (the same argument
        // as the facade's static factories).
        let mut engines: Vec<Box<dyn Engine>> = self
            .branches
            .iter()
            .map(|b| {
                // Signature-keyed program reuse: across hot swaps the
                // pattern (and so its signature) is unchanged, so every
                // rebuild after the first is a cache hit.
                let program = if self.engine_config.compiled_predicates {
                    Some(
                        self.plan_cache
                            .lock()
                            .expect("plan cache poisoned")
                            .get_or_compile(&b.cp),
                    )
                } else {
                    None
                };
                match &b.plan {
                    CurrentPlan::Order(plan) => Box::new(
                        NfaEngine::with_program(
                            b.cp.clone(),
                            plan.clone(),
                            self.engine_config.clone(),
                            program,
                        )
                        .expect("pre-validated plan"),
                    ) as Box<dyn Engine>,
                    CurrentPlan::Tree(plan) => Box::new(
                        TreeEngine::with_program(
                            b.cp.clone(),
                            plan.clone(),
                            self.engine_config.clone(),
                            program,
                        )
                        .expect("pre-validated plan"),
                    ) as Box<dyn Engine>,
                }
            })
            .collect();
        if engines.len() == 1 {
            engines.pop().expect("one engine")
        } else {
            Box::new(MultiEngine::new(engines, self.window))
        }
    }

    fn replan(&mut self, rates: &MeasuredStats) -> bool {
        self.replan_amortized(rates, &SwapCost::IGNORE) == ReplanVerdict::Swap
    }

    fn replan_amortized(&mut self, rates: &MeasuredStats, swap: &SwapCost) -> ReplanVerdict {
        // Plan all branches first: a planning failure on any branch keeps
        // the engine on its current (complete) plan set. A branch only
        // adopts a candidate that (a) predicts a cost improvement beyond
        // the hysteresis margin under the same fresh statistics and
        // (b) whose improvement amortizes the replay bill in `swap`.
        self.last_costs = None;
        let planner = self.anchored_planner();
        struct Candidacy {
            /// A candidate beating the incumbent by the hysteresis margin.
            better: Option<CurrentPlan>,
            /// Whether that candidate's improvement amortizes the replay.
            amortizes: bool,
            /// The estimates the decision was costed with, if any.
            fresh_sels: Option<Vec<f64>>,
        }
        let mut candidacies = Vec::with_capacity(self.branches.len());
        for b in &mut self.branches {
            // Fresh selectivities: the monitor's live estimates once it has
            // seen enough events, the construction-time values otherwise.
            // Sampled once here and reused for the baseline below.
            let fresh_sels = match &b.monitor {
                Some(m) if m.warmed_up() => Some(m.estimates()),
                _ => None,
            };
            let sels = fresh_sels.as_deref().unwrap_or(&b.sels);
            // Incremental statistics rebuild: rates + selectivities are
            // re-derived in place, no reallocation.
            if b.stats
                .update(&b.cp, rates, sels, &planner.config.stats_options)
                .is_err()
            {
                return ReplanVerdict::Keep;
            }
            match Self::plan_with(&planner, &b.cp, &b.stats, self.kind) {
                Ok(candidate) => {
                    let cm = planner.cost_model(&b.cp);
                    let current_cost = Self::plan_cost(&cm, &b.plan, &b.stats);
                    let candidate_cost = Self::plan_cost(&cm, &candidate, &b.stats);
                    // Surface the widest-improvement branch's arithmetic
                    // (ties and non-improvements included, so even a Keep
                    // verdict shows the costs it was judged on).
                    if self
                        .last_costs
                        .is_none_or(|c| current_cost - candidate_cost > c.current - c.candidate)
                    {
                        self.last_costs = Some(ReplanCosts {
                            current: current_cost,
                            candidate: candidate_cost,
                        });
                    }
                    let improves = candidate_cost.is_finite()
                        && candidate_cost < current_cost * (1.0 - self.min_improvement);
                    let differs = improves
                        && !match (&b.plan, &candidate) {
                            (CurrentPlan::Order(old), CurrentPlan::Order(new)) => old == new,
                            (CurrentPlan::Tree(old), CurrentPlan::Tree(new)) => old == new,
                            _ => false,
                        };
                    candidacies.push(Candidacy {
                        amortizes: differs && swap.amortizes(current_cost, candidate_cost),
                        better: differs.then_some(candidate),
                        fresh_sels,
                    });
                }
                Err(_) => return ReplanVerdict::Keep,
            }
        }
        // The replay bill is paid once for the whole engine, so the gate is
        // engine-level: swap as soon as *any* branch's improvement
        // amortizes it — and then adopt *every* branch's better plan, the
        // marginal cost of riding along is zero. Only when no branch can
        // justify the replay on its own is the whole attempt suppressed.
        let any_amortizes = candidacies.iter().any(|c| c.amortizes);
        let any_better = candidacies.iter().any(|c| c.better.is_some());
        if any_better && !any_amortizes {
            // Suppressed: keep every incumbent plan AND baseline, so the
            // pending drift re-fires and the swap is retried once it
            // amortizes (or the regime changes again).
            return ReplanVerdict::Suppressed;
        }
        for (b, c) in self.branches.iter_mut().zip(candidacies) {
            if let Some(plan) = c.better {
                b.plan = plan;
            }
            // The decision (adopt or keep) was costed under `fresh_sels`
            // when the monitor had them: make those the branch's reference
            // point — plan description *and* drift baseline — without
            // re-sampling. Before warm-up `fresh_sels` is `None` and the
            // construction-time baseline is preserved: an early
            // calibration replan must not overwrite supplied
            // selectivities with defaults estimated from too few events.
            if let (Some(m), Some(fresh)) = (&mut b.monitor, c.fresh_sels) {
                m.set_baseline(fresh.clone());
                b.sels = fresh;
            }
        }
        if any_better {
            ReplanVerdict::Swap
        } else {
            ReplanVerdict::Keep
        }
    }

    fn last_costs(&self) -> Option<ReplanCosts> {
        self.last_costs
    }

    fn observe_event(&mut self, e: &EventRef) {
        for b in &mut self.branches {
            if let Some(m) = &mut b.monitor {
                m.observe(e);
            }
        }
    }

    fn stats_drifted(&self) -> bool {
        self.branches
            .iter()
            .any(|b| b.monitor.as_ref().is_some_and(|m| m.drifted()))
    }

    fn selectivity_samples(&self) -> u64 {
        // Branch monitors all observe the same input stream; report the
        // widest branch's absorption rather than double-counting.
        self.branches
            .iter()
            .filter_map(|b| b.monitor.as_ref().map(|m| m.samples()))
            .max()
            .unwrap_or(0)
    }

    fn plan_cache_hits(&self) -> u64 {
        self.plan_cache.lock().expect("plan cache poisoned").hits()
    }

    fn plan_cache_misses(&self) -> u64 {
        self.plan_cache
            .lock()
            .expect("plan cache poisoned")
            .misses()
    }

    fn observe_match(&mut self, m: &Match) {
        if self.branches.len() == 1 && m.bindings.len() == self.branches[0].cp.n() {
            self.profiler.observe(&self.branches[0].cp, m);
        }
    }

    fn consumes(&self) -> bool {
        self.branches.iter().any(|b| b.cp.strategy.consumes())
    }
}
