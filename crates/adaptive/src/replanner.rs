//! The planner-backed [`Replanner`]: closes the `StatsMonitor` → planner
//! loop with any order- or tree-based plan-generation algorithm, optionally
//! anchoring the latency objective with the Section 6.1 output profiler.

use crate::engine::Replanner;
use cep_core::compile::CompiledPattern;
use cep_core::engine::{Engine, EngineConfig, MultiEngine};
use cep_core::error::CepError;
use cep_core::matches::Match;
use cep_core::plan::{OrderPlan, TreePlan};
use cep_core::stats::MeasuredStats;
use cep_nfa::NfaEngine;
use cep_optimizer::planner::LatencyAnchor;
use cep_optimizer::OutputProfiler;
use cep_optimizer::{OrderAlgorithm, Planner, TreeAlgorithm};
use cep_tree::TreeEngine;

/// Matches a replan is based on before the output profiler may override
/// the latency anchor (Section 6.1's "enough evidence" knob).
const PROFILER_MIN_SAMPLES: u64 = 64;

/// Default hysteresis of [`PlanReplanner`]: a candidate plan must predict
/// at least this relative cost improvement over the incumbent (under the
/// *same* fresh statistics) before a swap is worth its replay. Rate
/// estimates from a sliding horizon are noisy — for rare types a handful
/// of events move the estimate by tens of percent — and without a margin
/// the planner flaps between near-tied orders, paying a full window replay
/// for each flip.
pub const DEFAULT_MIN_IMPROVEMENT: f64 = 0.2;

/// Which plan family (and algorithm) the replanner regenerates.
#[derive(Debug, Clone, Copy)]
pub enum PlanKind {
    /// Order-based plans evaluated by the lazy-NFA engine.
    Order(OrderAlgorithm),
    /// Tree-based plans evaluated by the ZStream-style engine.
    Tree(TreeAlgorithm),
}

#[derive(Clone)]
enum CurrentPlan {
    Order(OrderPlan),
    Tree(TreePlan),
}

#[derive(Clone)]
struct Branch {
    cp: CompiledPattern,
    sels: Vec<f64>,
    plan: CurrentPlan,
}

/// A [`Replanner`] that regenerates evaluation plans with a
/// [`Planner`] whenever the adaptive loop hands it fresh rate estimates.
///
/// One instance covers every DNF branch of a pattern (multi-branch builds
/// produce a [`MultiEngine`], exactly like the facade's static factories).
/// Per-predicate selectivities are supplied once at construction — drift in
/// *rates* is what plans are most sensitive to and what the runtime can
/// observe cheaply; selectivity re-estimation would need match-level
/// sampling and is out of scope here.
///
/// For single-branch patterns an [`OutputProfiler`] observes every emitted
/// match; once it has seen [`PROFILER_MIN_SAMPLES`] of them, replans anchor
/// the latency term of the cost objective on the element that empirically
/// arrives last (only meaningful when the planner's `alpha > 0`).
#[derive(Clone)]
pub struct PlanReplanner {
    planner: Planner,
    kind: PlanKind,
    engine_config: EngineConfig,
    window: u64,
    branches: Vec<Branch>,
    profiler: OutputProfiler,
    min_improvement: f64,
}

impl PlanReplanner {
    /// Plans every branch against `initial` statistics and returns a
    /// replanner holding those plans as current. `branches` pairs each
    /// compiled DNF branch with the selectivity of each of its predicates.
    pub fn new(
        branches: Vec<(CompiledPattern, Vec<f64>)>,
        initial: &MeasuredStats,
        planner: Planner,
        kind: PlanKind,
        engine_config: EngineConfig,
    ) -> Result<PlanReplanner, CepError> {
        if branches.is_empty() {
            return Err(CepError::Pattern("replanner needs >= 1 branch".into()));
        }
        let window = branches[0].0.window;
        let n0 = branches[0].0.n();
        let mut replanner = PlanReplanner {
            planner,
            kind,
            engine_config,
            window,
            branches: Vec::with_capacity(branches.len()),
            profiler: OutputProfiler::new(n0, PROFILER_MIN_SAMPLES),
            min_improvement: DEFAULT_MIN_IMPROVEMENT,
        };
        for (cp, sels) in branches {
            let plan = replanner.plan_branch(&cp, &sels, initial)?;
            replanner.branches.push(Branch { cp, sels, plan });
        }
        Ok(replanner)
    }

    /// Plans one branch under the current planner configuration, with the
    /// profiler's anchor substituted when it has enough evidence.
    fn plan_branch(
        &self,
        cp: &CompiledPattern,
        sels: &[f64],
        measured: &MeasuredStats,
    ) -> Result<CurrentPlan, CepError> {
        let planner = self.anchored_planner();
        let stats = planner.stats_for(cp, measured, sels)?;
        Self::plan_with(&planner, cp, &stats, self.kind)
    }

    /// Plans one branch with an already-anchored planner and pre-built
    /// statistics (the shared worker for [`Self::plan_branch`] and
    /// [`Replanner::replan`]).
    fn plan_with(
        planner: &Planner,
        cp: &CompiledPattern,
        stats: &cep_core::stats::PatternStats,
        kind: PlanKind,
    ) -> Result<CurrentPlan, CepError> {
        Ok(match kind {
            PlanKind::Order(algo) => CurrentPlan::Order(planner.plan_order(cp, stats, algo)?),
            PlanKind::Tree(algo) => CurrentPlan::Tree(planner.plan_tree(cp, stats, algo)?),
        })
    }

    /// The planner to use right now: the configured one, with the latency
    /// anchor overridden by the output profiler for single-branch patterns
    /// once enough matches were observed.
    fn anchored_planner(&self) -> Planner {
        let mut planner = self.planner.clone();
        if self.branches.len() <= 1 {
            if let Some(anchor) = self.profiler.anchor() {
                planner.config.anchor = LatencyAnchor::Element(anchor);
            }
        }
        planner
    }

    /// Overrides the swap hysteresis (see [`DEFAULT_MIN_IMPROVEMENT`]);
    /// 0.0 swaps on any strict cost improvement.
    pub fn with_min_improvement(mut self, min_improvement: f64) -> PlanReplanner {
        assert!(min_improvement >= 0.0, "improvement margin must be >= 0");
        self.min_improvement = min_improvement;
        self
    }

    /// Cost of a plan for one branch under the given statistics and cost
    /// model.
    fn plan_cost(
        cm: &cep_core::cost::CostModel,
        plan: &CurrentPlan,
        stats: &cep_core::stats::PatternStats,
    ) -> f64 {
        match plan {
            CurrentPlan::Order(p) => cm.order_plan_cost(stats, p),
            CurrentPlan::Tree(p) => cm.tree_plan_cost(stats, p),
        }
    }

    /// Human-readable rendering of the current plan(s), for logs and
    /// examples.
    pub fn describe(&self) -> String {
        self.branches
            .iter()
            .map(|b| match &b.plan {
                CurrentPlan::Order(p) => p.to_string(),
                CurrentPlan::Tree(p) => p.to_string(),
            })
            .collect::<Vec<_>>()
            .join(" | ")
    }
}

impl Replanner for PlanReplanner {
    fn build(&self) -> Box<dyn Engine> {
        // Plans were produced by the planner for these very compiled
        // patterns, so engine construction cannot fail (the same argument
        // as the facade's static factories).
        let mut engines: Vec<Box<dyn Engine>> = self
            .branches
            .iter()
            .map(|b| match &b.plan {
                CurrentPlan::Order(plan) => Box::new(
                    NfaEngine::new(b.cp.clone(), plan.clone(), self.engine_config.clone())
                        .expect("pre-validated plan"),
                ) as Box<dyn Engine>,
                CurrentPlan::Tree(plan) => Box::new(
                    TreeEngine::new(b.cp.clone(), plan.clone(), self.engine_config.clone())
                        .expect("pre-validated plan"),
                ) as Box<dyn Engine>,
            })
            .collect();
        if engines.len() == 1 {
            engines.pop().expect("one engine")
        } else {
            Box::new(MultiEngine::new(engines, self.window))
        }
    }

    fn replan(&mut self, rates: &MeasuredStats) -> bool {
        // Plan all branches first: a planning failure on any branch keeps
        // the engine on its current (complete) plan set. A branch only
        // adopts a candidate that predicts a cost improvement beyond the
        // hysteresis margin under the same fresh statistics.
        let planner = self.anchored_planner();
        let mut fresh = Vec::with_capacity(self.branches.len());
        for b in &self.branches {
            let stats = match planner.stats_for(&b.cp, rates, &b.sels) {
                Ok(stats) => stats,
                Err(_) => return false,
            };
            match Self::plan_with(&planner, &b.cp, &stats, self.kind) {
                Ok(candidate) => {
                    let cm = planner.cost_model(&b.cp);
                    let current_cost = Self::plan_cost(&cm, &b.plan, &stats);
                    let candidate_cost = Self::plan_cost(&cm, &candidate, &stats);
                    let adopt = candidate_cost.is_finite()
                        && candidate_cost < current_cost * (1.0 - self.min_improvement);
                    fresh.push(if adopt { Some(candidate) } else { None });
                }
                Err(_) => return false,
            }
        }
        let mut changed = false;
        for (b, plan) in self.branches.iter_mut().zip(fresh) {
            if let Some(plan) = plan {
                let same = match (&b.plan, &plan) {
                    (CurrentPlan::Order(old), CurrentPlan::Order(new)) => old == new,
                    (CurrentPlan::Tree(old), CurrentPlan::Tree(new)) => old == new,
                    _ => false,
                };
                if !same {
                    b.plan = plan;
                    changed = true;
                }
            }
        }
        changed
    }

    fn observe_match(&mut self, m: &Match) {
        if self.branches.len() == 1 && m.bindings.len() == self.branches[0].cp.n() {
            self.profiler.observe(&self.branches[0].cp, m);
        }
    }

    fn consumes(&self) -> bool {
        self.branches.iter().any(|b| b.cp.strategy.consumes())
    }
}
