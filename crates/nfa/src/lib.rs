//! # cep-nfa
//!
//! Order-based CEP evaluation: a lazy chain NFA with out-of-order plan
//! support, after Kolchinsky et al. [28, 29] as used in Section 2.2 of
//! *Join Query Optimization Techniques for CEP Applications* (VLDB 2018).
//!
//! The engine follows an [`OrderPlan`](cep_core::plan::OrderPlan): a chain
//! of states, one per positive pattern element, in an arbitrary
//! user-supplied order. Events arriving before their state is reached are
//! buffered; instances entering a state catch up from the buffer. All four
//! selection strategies of Section 6.2 are supported:
//!
//! * **skip-till-any-match** — full forking semantics;
//! * **skip-till-next-match** — non-forking advancement plus event
//!   consumption on emission (an event joins at most one match). Kleene
//!   elements take the greedy singleton set under this strategy;
//! * **strict / partition contiguity** — serial-number adjacency enforced
//!   incrementally (span feasibility) and exactly at completion.
//!
//! Negations are checked at the earliest decidable point and deferred past
//! the window end for trailing negations (shared semantics with the tree
//! engine and the naive oracle, see [`cep_core::negation`]).

#![warn(missing_docs)]

mod engine;

pub use cep_core::instance::Instance;
pub use engine::NfaEngine;

#[cfg(test)]
mod tests {
    use super::*;
    use cep_core::compile::CompiledPattern;
    use cep_core::engine::{run_to_completion, EngineConfig};
    use cep_core::event::{Event, TypeId};
    use cep_core::matches::{validate_match, Match};
    use cep_core::naive::NaiveEngine;
    use cep_core::pattern::{Pattern, PatternBuilder};
    use cep_core::plan::OrderPlan;
    use cep_core::predicate::{CmpOp, Predicate};
    use cep_core::selection::SelectionStrategy;
    use cep_core::stream::StreamBuilder;
    use cep_core::value::Value;

    fn t(i: u32) -> TypeId {
        TypeId(i)
    }

    fn ev(tid: u32, ts: u64, x: i64) -> Event {
        Event::new(t(tid), ts, vec![Value::Int(x)])
    }

    fn stream(events: Vec<Event>) -> Vec<cep_core::event::EventRef> {
        let mut b = StreamBuilder::new();
        for e in events {
            b.push(e);
        }
        b.build()
    }

    fn signatures(ms: &[Match]) -> Vec<Vec<(usize, Vec<u64>)>> {
        let mut sigs: Vec<_> = ms.iter().map(|m| m.signature()).collect();
        sigs.sort();
        sigs
    }

    /// Runs the NFA under every possible plan order and asserts identical
    /// results to the naive oracle.
    fn assert_all_orders_match_oracle(pattern: &Pattern, events: Vec<Event>) {
        let cp = CompiledPattern::compile_single(pattern).unwrap();
        let s = stream(events);
        let mut oracle = NaiveEngine::new(cp.clone(), EngineConfig::default());
        let expected = signatures(&run_to_completion(&mut oracle, &s, true).matches);
        let n = cp.n();
        for order in permutations(n) {
            let plan = OrderPlan::new(order.clone()).unwrap();
            let mut engine = NfaEngine::new(cp.clone(), plan, EngineConfig::default()).unwrap();
            let r = run_to_completion(&mut engine, &s, true);
            for m in &r.matches {
                validate_match(&cp, m).unwrap();
            }
            assert_eq!(
                signatures(&r.matches),
                expected,
                "order {order:?} disagrees with oracle"
            );
        }
    }

    fn permutations(n: usize) -> Vec<Vec<usize>> {
        fn rec(rest: Vec<usize>, acc: Vec<usize>, out: &mut Vec<Vec<usize>>) {
            if rest.is_empty() {
                out.push(acc);
                return;
            }
            for (i, &x) in rest.iter().enumerate() {
                let mut rest2 = rest.clone();
                rest2.remove(i);
                let mut acc2 = acc.clone();
                acc2.push(x);
                rec(rest2, acc2, out);
            }
        }
        let mut out = Vec::new();
        rec((0..n).collect(), Vec::new(), &mut out);
        out
    }

    #[test]
    fn sequence_all_orders_match_oracle() {
        let mut b = PatternBuilder::new(10);
        let a = b.event(t(0), "a");
        let c = b.event(t(1), "c");
        let d = b.event(t(2), "d");
        b.predicate(Predicate::attr_cmp(a.pos(), 0, CmpOp::Lt, d.pos(), 0));
        let p = b.seq([a, c, d]).unwrap();
        let events = vec![
            ev(0, 1, 3),
            ev(1, 2, 0),
            ev(0, 3, 7),
            ev(2, 4, 5),
            ev(1, 5, 0),
            ev(2, 6, 9),
            ev(0, 7, 1),
            ev(2, 8, 2),
        ];
        assert_all_orders_match_oracle(&p, events);
    }

    #[test]
    fn conjunction_all_orders_match_oracle() {
        let mut b = PatternBuilder::new(6);
        let a = b.event(t(0), "a");
        let c = b.event(t(1), "c");
        let d = b.event(t(2), "d");
        b.predicate(Predicate::attr_cmp(a.pos(), 0, CmpOp::Le, c.pos(), 0));
        let p = b.and([a, c, d]).unwrap();
        let events = vec![
            ev(2, 1, 0),
            ev(1, 2, 4),
            ev(0, 3, 4),
            ev(1, 4, 1),
            ev(0, 5, 9),
            ev(2, 6, 0),
            ev(0, 7, 0),
        ];
        assert_all_orders_match_oracle(&p, events);
    }

    #[test]
    fn duplicate_types_all_orders_match_oracle() {
        // SEQ(A a1, A a2) — same type at two positions.
        let mut b = PatternBuilder::new(10);
        let a1 = b.event(t(0), "a1");
        let a2 = b.event(t(0), "a2");
        let p = b.seq([a1, a2]).unwrap();
        let events = vec![ev(0, 1, 0), ev(0, 2, 0), ev(0, 3, 0)];
        assert_all_orders_match_oracle(&p, events);
    }

    #[test]
    fn negation_all_orders_match_oracle() {
        let mut b = PatternBuilder::new(10);
        let a = b.event(t(0), "a");
        let nb = b.event(t(1), "nb");
        let c = b.event(t(2), "c");
        b.predicate(Predicate::attr_cmp(a.pos(), 0, CmpOp::Eq, nb.pos(), 0));
        let ae = b.expr(a);
        let ne = b.not(nb);
        let ce = b.expr(c);
        let p = b.seq_exprs([ae, ne, ce]).unwrap();
        let events = vec![
            ev(0, 1, 1),
            ev(1, 2, 1), // kills matches of a@1
            ev(0, 3, 2),
            ev(2, 4, 0),
            ev(1, 5, 2), // after c: harmless for (a@3, c@4)
            ev(2, 6, 0),
        ];
        assert_all_orders_match_oracle(&p, events);
    }

    #[test]
    fn trailing_negation_all_orders_match_oracle() {
        let mut b = PatternBuilder::new(5);
        let a = b.event(t(0), "a");
        let c = b.event(t(1), "c");
        let nb = b.event(t(2), "nb");
        let ae = b.expr(a);
        let ce = b.expr(c);
        let ne = b.not(nb);
        let p = b.seq_exprs([ae, ce, ne]).unwrap();
        let events = vec![
            ev(0, 1, 0),
            ev(1, 2, 0),
            ev(2, 3, 0), // kills (a@1, c@2)
            ev(0, 10, 0),
            ev(1, 11, 0), // survives: no later nb within window
        ];
        assert_all_orders_match_oracle(&p, events);
    }

    #[test]
    fn kleene_all_orders_match_oracle() {
        let mut b = PatternBuilder::new(10);
        let a = b.event(t(0), "a");
        let k = b.event(t(1), "k");
        let c = b.event(t(2), "c");
        let ae = b.expr(a);
        let ke = b.kleene(k);
        let ce = b.expr(c);
        let p = b.seq_exprs([ae, ke, ce]).unwrap();
        let events = vec![
            ev(0, 1, 0),
            ev(1, 2, 0),
            ev(1, 3, 0),
            ev(2, 4, 0),
            ev(1, 5, 0),
            ev(2, 6, 0),
        ];
        assert_all_orders_match_oracle(&p, events);
    }

    #[test]
    fn kleene_first_element_in_plan() {
        // KL(B) ordered first by the plan exercises virtual-state seeding.
        let mut b = PatternBuilder::new(10);
        let a = b.event(t(0), "a");
        let k = b.event(t(1), "k");
        let ae = b.expr(a);
        let ke = b.kleene(k);
        let p = b.seq_exprs([ae, ke]).unwrap();
        assert_all_orders_match_oracle(
            &p,
            vec![
                ev(0, 1, 0),
                ev(1, 2, 0),
                ev(1, 3, 0),
                ev(0, 4, 0),
                ev(1, 5, 0),
            ],
        );
    }

    #[test]
    fn strict_contiguity_all_orders_match_oracle() {
        let mut b = PatternBuilder::new(10);
        b.strategy(SelectionStrategy::StrictContiguity);
        let a = b.event(t(0), "a");
        let c = b.event(t(1), "c");
        let p = b.seq([a, c]).unwrap();
        let events = vec![
            ev(0, 1, 0),
            ev(1, 2, 0), // adjacent: match
            ev(0, 3, 0),
            ev(2, 4, 0), // irrelevant type still breaks contiguity
            ev(1, 5, 0),
        ];
        assert_all_orders_match_oracle(&p, events);
    }

    #[test]
    fn next_match_consumes_and_is_disjoint() {
        let mut b = PatternBuilder::new(10);
        b.strategy(SelectionStrategy::SkipTillNextMatch);
        let a = b.event(t(0), "a");
        let c = b.event(t(1), "c");
        let p = b.seq([a, c]).unwrap();
        let cp = CompiledPattern::compile_single(&p).unwrap();
        let s = stream(vec![ev(0, 1, 0), ev(0, 2, 0), ev(1, 3, 0), ev(1, 4, 0)]);
        let mut engine =
            NfaEngine::new(cp.clone(), OrderPlan::trivial(&cp), EngineConfig::default()).unwrap();
        let r = run_to_completion(&mut engine, &s, true);
        // Events must be disjoint across matches.
        let mut used = std::collections::HashSet::new();
        for m in &r.matches {
            for e in m.events() {
                assert!(used.insert(e.seq), "event reused under next-match");
            }
            validate_match(&cp, m).unwrap();
        }
        assert_eq!(r.matches.len(), 2);
    }

    #[test]
    fn window_pruning_bounds_state() {
        let mut b = PatternBuilder::new(5);
        let a = b.event(t(0), "a");
        let c = b.event(t(1), "c");
        let p = b.seq([a, c]).unwrap();
        let cp = CompiledPattern::compile_single(&p).unwrap();
        let mut events = Vec::new();
        for i in 0..2000u64 {
            events.push(ev(0, i * 3, 0));
        }
        let s = stream(events);
        let mut engine =
            NfaEngine::new(cp.clone(), OrderPlan::trivial(&cp), EngineConfig::default()).unwrap();
        let r = run_to_completion(&mut engine, &s, true);
        // Only ~2 events fit a window; peaks must stay tiny, not O(stream).
        assert!(
            r.metrics.peak_partial_matches < 70,
            "{}",
            r.metrics.peak_partial_matches
        );
        assert!(r.metrics.peak_buffered_events < 70);
        assert!(r.matches.is_empty());
    }

    #[test]
    fn rare_last_plan_creates_fewer_instances() {
        // The intro's four-cameras effect: putting the rare type first
        // creates fewer partial matches than the trivial order.
        let mut b = PatternBuilder::new(1000);
        let a = b.event(t(0), "a");
        let c = b.event(t(1), "c");
        let d = b.event(t(2), "d");
        let p = b.seq([a, c, d]).unwrap();
        let cp = CompiledPattern::compile_single(&p).unwrap();
        let mut events = Vec::new();
        // a, c frequent; d rare (every 10th round).
        for i in 0..200u64 {
            events.push(ev(0, i * 5, 0));
            events.push(ev(1, i * 5 + 1, 0));
            if i % 10 == 0 {
                events.push(ev(2, i * 5 + 2, 0));
            }
        }
        let s = stream(events);
        let trivial = {
            let mut e =
                NfaEngine::new(cp.clone(), OrderPlan::trivial(&cp), EngineConfig::default())
                    .unwrap();
            run_to_completion(&mut e, &s, true)
        };
        let lazy = {
            let plan = OrderPlan::new(vec![2, 0, 1]).unwrap();
            let mut e = NfaEngine::new(cp.clone(), plan, EngineConfig::default()).unwrap();
            run_to_completion(&mut e, &s, true)
        };
        assert_eq!(
            signatures(&trivial.matches),
            signatures(&lazy.matches),
            "plans must agree on results"
        );
        assert!(
            lazy.metrics.peak_partial_matches < trivial.metrics.peak_partial_matches,
            "lazy {} vs trivial {}",
            lazy.metrics.peak_partial_matches,
            trivial.metrics.peak_partial_matches
        );
    }

    #[test]
    fn irrelevant_types_are_skipped_cheaply() {
        let mut b = PatternBuilder::new(10);
        let a = b.event(t(0), "a");
        let c = b.event(t(1), "c");
        let p = b.seq([a, c]).unwrap();
        let cp = CompiledPattern::compile_single(&p).unwrap();
        let s = stream(vec![ev(7, 1, 0), ev(8, 2, 0), ev(0, 3, 0), ev(1, 4, 0)]);
        let mut engine =
            NfaEngine::new(cp.clone(), OrderPlan::trivial(&cp), EngineConfig::default()).unwrap();
        let r = run_to_completion(&mut engine, &s, true);
        assert_eq!(r.metrics.events_processed, 4);
        assert_eq!(r.metrics.events_relevant, 2);
        assert_eq!(r.matches.len(), 1);
    }
}
