//! The lazy chain NFA engine (Section 2.2, after [28, 29]).
//!
//! Given an [`OrderPlan`] `O` over the positive elements of a
//! [`CompiledPattern`], the engine maintains a chain of `n + 1` states.
//! An instance at state `k` has bound the first `k` elements of `O` and
//! waits for element `O[k]`. Out-of-order processing is achieved by
//! buffering: every participating event is appended to a per-type buffer;
//! an instance *entering* state `k` performs a catch-up scan over the
//! buffer, while events arriving later are *delivered* to the instances
//! already waiting at the state. Together these consider every
//! (instance, event) pair exactly once — the invariant that makes the NFA
//! results identical to the naive oracle.

use cep_core::buffer::TypeBuffers;
use cep_core::compile::CompiledPattern;
use cep_core::compiled::PredicateProgram;
use cep_core::engine::{Engine, EngineConfig};
use cep_core::error::CepError;
use cep_core::event::{EventRef, Timestamp};
use cep_core::instance::{
    compatible_with, contiguity_ok, retain_or_retire, Instance, InstanceArena,
};
use cep_core::matches::Match;
use cep_core::metrics::EngineMetrics;
use cep_core::negation::DeferredStore;
use cep_core::plan::OrderPlan;
use std::collections::HashSet;
use std::sync::Arc;

/// Order-based (lazy NFA) evaluation engine.
pub struct NfaEngine {
    cp: CompiledPattern,
    order: Vec<usize>,
    cfg: EngineConfig,
    /// Compiled predicate program (`None` = interpreted evaluation).
    program: Option<Arc<PredicateProgram>>,
    /// `states[k]`: instances waiting for element `order[k]`.
    states: Vec<Vec<Instance>>,
    arena: InstanceArena,
    buffers: TypeBuffers,
    deferred: DeferredStore,
    consumed: HashSet<u64>,
    watermark: Timestamp,
    events_since_prune: u64,
    metrics: EngineMetrics,
}

impl NfaEngine {
    /// Builds an engine for one compiled pattern branch and an order plan.
    ///
    /// When [`EngineConfig::compiled_predicates`] is set (the default) the
    /// pattern's predicates are lowered into a [`PredicateProgram`] here;
    /// use [`NfaEngine::with_program`] to supply an already-compiled
    /// (cached) program instead.
    pub fn new(
        cp: CompiledPattern,
        plan: OrderPlan,
        cfg: EngineConfig,
    ) -> Result<NfaEngine, CepError> {
        NfaEngine::with_program(cp, plan, cfg, None)
    }

    /// [`NfaEngine::new`] with an optional pre-compiled program (typically
    /// from a [`cep_core::compiled::PlanCache`]), avoiding recompilation.
    /// With `compiled_predicates` disabled in `cfg`, the program is ignored
    /// and the engine interprets predicates — the config toggle wins so the
    /// interpreted baseline stays measurable.
    pub fn with_program(
        cp: CompiledPattern,
        plan: OrderPlan,
        cfg: EngineConfig,
        program: Option<Arc<PredicateProgram>>,
    ) -> Result<NfaEngine, CepError> {
        plan.validate(&cp)?;
        let program = if cfg.compiled_predicates {
            program.or_else(|| Some(Arc::new(PredicateProgram::compile(&cp))))
        } else {
            None
        };
        let n = cp.n();
        Ok(NfaEngine {
            cp,
            order: plan.order().to_vec(),
            cfg,
            program,
            states: vec![Vec::new(); n],
            arena: InstanceArena::new(),
            buffers: TypeBuffers::new(),
            deferred: DeferredStore::new(),
            consumed: HashSet::new(),
            watermark: 0,
            events_since_prune: 0,
            metrics: EngineMetrics::new(),
        })
    }

    /// The compiled predicate program driving this engine (`None` when
    /// interpreting).
    pub fn program(&self) -> Option<&Arc<PredicateProgram>> {
        self.program.as_ref()
    }

    /// Arena statistics: `(instances derived, shells reused)`.
    pub fn arena_stats(&self) -> (u64, u64) {
        (self.arena.allocs(), self.arena.reuses())
    }

    /// Convenience constructor with the trivial (specification-order) plan.
    pub fn with_trivial_plan(cp: CompiledPattern, cfg: EngineConfig) -> NfaEngine {
        let plan = OrderPlan::trivial(&cp);
        NfaEngine::new(cp, plan, cfg).expect("trivial plan always fits")
    }

    /// The plan order driving this engine.
    pub fn order(&self) -> &[usize] {
        &self.order
    }

    fn live_instances(&self) -> usize {
        self.states.iter().map(|s| s.len()).sum::<usize>() + self.deferred.len()
    }

    fn emit(&mut self, m: Match, out: &mut Vec<Match>) {
        if self.cp.strategy.consumes() {
            if m.events().any(|e| self.consumed.contains(&e.seq)) {
                return;
            }
            for e in m.events() {
                self.consumed.insert(e.seq);
            }
            // Kill partial matches that used now-consumed events; their
            // shells go back to the arena.
            let consumed = &self.consumed;
            for state in &mut self.states {
                retain_or_retire(state, &mut self.arena, |i| !i.intersects(consumed));
            }
        }
        self.metrics.matches_emitted += 1;
        out.push(m);
    }

    fn release_deferred(&mut self, watermark: Timestamp, out: &mut Vec<Match>) {
        if self.cp.negated.is_empty() {
            return;
        }
        let mut ready = Vec::new();
        self.deferred.drain_ready(watermark, &mut ready);
        for m in ready {
            self.emit(m, out);
        }
    }

    fn finalize(&mut self, inst: Instance, out: &mut Vec<Match>) {
        if !contiguity_ok(&self.cp, &inst) {
            return;
        }
        if self.cp.strategy.consumes() && inst.intersects(&self.consumed) {
            return;
        }
        let m = Match {
            bindings: inst
                .bindings
                .into_iter()
                .enumerate()
                .map(|(i, b)| {
                    (
                        self.cp.elements[i].position,
                        b.expect("finalize requires all elements bound"),
                    )
                })
                .collect(),
            last_ts: inst.max_ts,
            emitted_at: self.watermark,
        };
        if self.cp.negated.is_empty() {
            self.emit(m, out);
            return;
        }
        if let Some(m) = self
            .deferred
            .admit(&self.cp, m, self.watermark, &self.buffers)
        {
            self.emit(m, out);
        }
    }

    /// Instance enters state `k`: register it and catch up on the buffer.
    fn enter(&mut self, inst: Instance, k: usize, out: &mut Vec<Match>) {
        if k == self.order.len() {
            self.finalize(inst, out);
            return;
        }
        self.metrics.partial_matches_created += 1;
        let elem = self.order[k];
        if self.cp.elements[elem].kleene {
            self.enter_kleene(inst, k, out);
        } else {
            self.enter_single(inst, k, out);
        }
    }

    fn candidates(&self, elem: usize) -> Vec<EventRef> {
        self.buffers
            .iter_type(self.cp.elements[elem].event_type)
            .cloned()
            .collect()
    }

    fn enter_single(&mut self, inst: Instance, k: usize, out: &mut Vec<Match>) {
        let elem = self.order[k];
        for c in self.candidates(elem) {
            if !compatible_with(
                &self.cp,
                self.program.as_deref(),
                &inst,
                elem,
                &c,
                &self.consumed,
                &mut self.metrics,
            ) {
                continue;
            }
            let advanced = self.arena.with_single(&inst, elem, c);
            if self.cp.strategy.forks() {
                self.enter(advanced, k + 1, out);
            } else {
                // Non-forking: take the first match and leave this state.
                self.enter(advanced, k + 1, out);
                self.arena.retire(inst);
                return;
            }
        }
        self.states[k].push(inst);
    }

    /// Kleene state entry: the instance waits with an empty accumulator and
    /// every buffered candidate spawns subset growth (each non-empty
    /// accumulator also forks a closed copy that advances).
    fn enter_kleene(&mut self, inst: Instance, k: usize, out: &mut Vec<Match>) {
        if self.cp.strategy.forks() {
            self.kleene_grow(&inst, k, out);
            self.states[k].push(inst);
        } else {
            // Non-forking strategies: greedy singleton set (see crate docs).
            let elem = self.order[k];
            for c in self.candidates(elem) {
                if compatible_with(
                    &self.cp,
                    self.program.as_deref(),
                    &inst,
                    elem,
                    &c,
                    &self.consumed,
                    &mut self.metrics,
                ) {
                    let advanced = self.arena.with_kleene(&inst, elem, c);
                    self.enter(advanced, k + 1, out);
                    self.arena.retire(inst);
                    return;
                }
            }
            self.states[k].push(inst);
        }
    }

    /// Recursively grows `base`'s accumulator with buffered events newer
    /// than its gate. Every grown accumulator is (a) kept waiting at state
    /// `k` and (b) closed into state `k + 1`.
    fn kleene_grow(&mut self, base: &Instance, k: usize, out: &mut Vec<Match>) {
        let elem = self.order[k];
        if base.kleene_len(elem) >= self.cfg.max_kleene_events {
            return;
        }
        for c in self.candidates(elem) {
            if c.seq < base.kl_gate {
                continue;
            }
            if !compatible_with(
                &self.cp,
                self.program.as_deref(),
                base,
                elem,
                &c,
                &self.consumed,
                &mut self.metrics,
            ) {
                continue;
            }
            let grown = self.arena.with_kleene(base, elem, c);
            self.metrics.partial_matches_created += 1;
            self.enter(grown.clone(), k + 1, out);
            self.kleene_grow(&grown, k, out);
            self.states[k].push(grown);
        }
    }

    /// Delivers a fresh event to the instances already waiting at state `k`.
    fn deliver(&mut self, k: usize, event: &EventRef, out: &mut Vec<Match>) {
        let elem = self.order[k];
        if self.cp.elements[elem].event_type != event.type_id {
            return;
        }
        let kleene = self.cp.elements[elem].kleene;
        let forks = self.cp.strategy.forks();
        let len = self.states[k].len();
        let mut idx = 0;
        let mut visited = 0;
        while visited < len && idx < self.states[k].len() {
            let inst = &self.states[k][idx];
            if kleene {
                let ok = event.seq >= inst.kl_gate
                    && inst.kleene_len(elem) < self.cfg.max_kleene_events
                    && compatible_with(
                        &self.cp,
                        self.program.as_deref(),
                        inst,
                        elem,
                        event,
                        &self.consumed,
                        &mut self.metrics,
                    );
                if ok {
                    let grown = self
                        .arena
                        .with_kleene(&self.states[k][idx], elem, event.clone());
                    self.metrics.partial_matches_created += 1;
                    if forks {
                        self.enter(grown.clone(), k + 1, out);
                        self.states[k].push(grown);
                    } else {
                        let old = self.states[k].swap_remove(idx);
                        self.arena.retire(old);
                        self.enter(grown, k + 1, out);
                        visited += 1;
                        continue; // swap_remove moved a new element to idx
                    }
                }
            } else {
                let ok = compatible_with(
                    &self.cp,
                    self.program.as_deref(),
                    inst,
                    elem,
                    event,
                    &self.consumed,
                    &mut self.metrics,
                );
                if ok {
                    let advanced =
                        self.arena
                            .with_single(&self.states[k][idx], elem, event.clone());
                    if forks {
                        self.enter(advanced, k + 1, out);
                    } else {
                        let old = self.states[k].swap_remove(idx);
                        self.arena.retire(old);
                        self.enter(advanced, k + 1, out);
                        visited += 1;
                        continue;
                    }
                }
            }
            idx += 1;
            visited += 1;
        }
    }

    fn prune(&mut self) {
        let watermark = self.watermark;
        let window = self.cp.window;
        self.buffers.prune(watermark, window);
        for state in &mut self.states {
            retain_or_retire(state, &mut self.arena, |i| !i.expired(watermark, window));
        }
        if self.cp.strategy.consumes() {
            // Consumed serial numbers older than the window can't recur.
            let horizon = watermark.saturating_sub(window);
            // Events are seq-ordered by ts only loosely; conservatively keep
            // everything unless the set grows large.
            if self.consumed.len() > 100_000 {
                let _ = horizon;
                self.consumed.clear();
            }
        }
    }
}

impl Engine for NfaEngine {
    fn process(&mut self, event: &EventRef, out: &mut Vec<Match>) {
        self.metrics.events_processed += 1;
        self.watermark = self.watermark.max(event.ts);
        let watermark = self.watermark;
        self.release_deferred(watermark, out);
        if !self.cp.negated.is_empty() {
            self.deferred.on_event(&self.cp, event);
        }
        self.events_since_prune += 1;
        if self.events_since_prune >= self.cfg.prune_every {
            self.events_since_prune = 0;
            self.prune();
        }
        if !self.cp.uses_type(event.type_id) {
            return;
        }
        self.metrics.events_relevant += 1;
        // Eager buffer pruning: a relevant-typed event that fails the
        // compiled single-element filters of *every* positive element of its
        // type (and whose type has no negated element) can never bind —
        // `compatible_with` would reject it at the filter stage everywhere.
        // Skipping it entirely keeps the buffers and state sets lean.
        if let Some(pr) = &self.program {
            if !pr.can_ever_bind(event, &mut self.metrics.predicate_evaluations) {
                self.metrics
                    .record_live(self.live_instances(), self.buffers.len());
                return;
            }
        }
        self.buffers.push(event.clone());
        // Deliveries, deepest state first so instances created while
        // processing this event are never delivered the event again (their
        // entry scans already saw it in the buffer).
        for k in (0..self.order.len()).rev() {
            self.deliver(k, event, out);
        }
        // Virtual initial state: the first plan element starts instances.
        let first = self.order[0];
        if self.cp.elements[first].event_type == event.type_id {
            let root = Instance::empty(self.cp.n());
            if self.cp.elements[first].kleene {
                if compatible_with(
                    &self.cp,
                    self.program.as_deref(),
                    &root,
                    first,
                    event,
                    &self.consumed,
                    &mut self.metrics,
                ) {
                    let seeded = self.arena.with_kleene(&root, first, event.clone());
                    self.metrics.partial_matches_created += 1;
                    if self.cp.strategy.forks() {
                        self.enter(seeded.clone(), 1, out);
                        self.states[0].push(seeded);
                    } else {
                        self.enter(seeded, 1, out);
                    }
                }
            } else if compatible_with(
                &self.cp,
                self.program.as_deref(),
                &root,
                first,
                event,
                &self.consumed,
                &mut self.metrics,
            ) {
                let seeded = self.arena.with_single(&root, first, event.clone());
                self.enter(seeded, 1, out);
            }
        }
        self.metrics
            .record_live(self.live_instances(), self.buffers.len());
    }

    fn flush(&mut self, out: &mut Vec<Match>) {
        self.release_deferred(Timestamp::MAX, out);
    }

    fn metrics(&self) -> &EngineMetrics {
        &self.metrics
    }

    fn metrics_mut(&mut self) -> &mut EngineMetrics {
        &mut self.metrics
    }

    fn name(&self) -> &'static str {
        "nfa"
    }
}
