//! # cep-shard
//!
//! Sharded / partitioned parallel evaluation for the CEP engines, in the
//! spirit of multi-way stream-join scale-out (Dossinger & Michel,
//! arXiv:2104.07742): a [`ShardRouter`] assigns each input event to one of
//! `N` worker shards, every worker owns a private engine built from a
//! shared compiled plan (any [`cep_core::engine::EngineFactory`] — lazy
//! NFA, ZStream tree, a `MultiEngine` over DNF branches, or the naive
//! oracle), and per-shard outputs are combined by a deterministic merge.
//!
//! ## Semantics and the determinism guarantee
//!
//! Routing *splits* the stream, so a shard only detects matches whose
//! events all landed on it. Sharded evaluation is therefore **exact** —
//! equal to the single-threaded engine on the unsplit stream, for *any*
//! shard count — precisely when the query is **partition-local**:
//!
//! * every match's events share one routing key (all pattern positions are
//!   linked by key-equality predicates, the classic per-account /
//!   per-vehicle / per-session CEP query), routed with
//!   [`RoutingPolicy::HashAttr`] on that key or
//!   [`RoutingPolicy::Partition`] when the key is the partition id; or
//! * the pattern runs under
//!   [`SelectionStrategy::PartitionContiguity`](cep_core::selection::SelectionStrategy),
//!   which *by definition* confines matches to one partition — partition
//!   routing then keeps every partition whole on a single shard.
//!
//! Under those conditions — and under the three *exact* selection
//! strategies (skip-till-any-match, strict contiguity, partition
//! contiguity) — the merged output of [`ShardedRuntime::run`] is the
//! single-threaded result vector in [`canonical_sort`] order: same
//! `Match` values, same order, whether it ran on 1 shard or 16.
//! Skip-till-next-match is excluded from the exactness guarantee: its
//! greedy, non-forking advancement binds the first candidate of *any*
//! key, so its choices depend on how partitions interleave (the strategy
//! is already plan-dependent single-threaded). A sharded next-match run
//! is still deterministic per configuration, its matches valid and
//! event-disjoint across all shards, but bindings may differ from the
//! global greedy run's. [`RoutingPolicy::RoundRobin`] offers no exactness
//! for multi-element patterns (it splits key groups); it is exact only
//! for single-element (filter) patterns and otherwise serves as a
//! raw-throughput upper bound.
//!
//! Workers communicate over bounded [`std::sync::mpsc`] channels carrying
//! event *batches*: batching amortizes the per-send synchronization, and
//! the bound applies backpressure to the router instead of letting queues
//! grow without limit.
//!
//! Because workers accept *any* factory, they compose with the adaptive
//! runtime: hand [`ShardedRuntime::run`] a `cep_adaptive::AdaptiveFactory`
//! and every worker owns a self-replanning engine that monitors, replans,
//! and hot-swaps on the statistics of its own slice of the stream — the
//! sharded and adaptive exactness guarantees stack (tested in
//! `src/tests.rs`).

#![warn(missing_docs)]

mod router;
mod runtime;

pub use router::{hash_value, RoutingPolicy, ShardRouter};
pub use runtime::{canonical_sort, ShardConfig, ShardStats, ShardedRunResult, ShardedRuntime};

#[cfg(test)]
mod tests;
