//! # cep-shard
//!
//! Sharded / partitioned parallel evaluation for the CEP engines, in the
//! spirit of multi-way stream-join scale-out (Dossinger & Michel,
//! arXiv:2104.07742): a [`ShardRouter`] assigns each input event to one of
//! `N` worker shards, every worker owns a private engine built from a
//! shared compiled plan (any [`cep_core::engine::EngineFactory`] — lazy
//! NFA, ZStream tree, a `MultiEngine` over DNF branches, or the naive
//! oracle), and per-shard outputs are combined by a deterministic merge.
//!
//! ## Semantics and the determinism guarantee
//!
//! Routing *splits* the stream, so a shard only detects matches whose
//! events all landed on it. Sharded evaluation is therefore **exact** —
//! equal to the single-threaded engine on the unsplit stream, for *any*
//! shard count — in two regimes:
//!
//! * **partition-local queries** under the split-only policies:
//!   every match's events share one routing key (all pattern positions
//!   linked by key-equality predicates, the classic per-account /
//!   per-vehicle / per-session CEP query), routed with
//!   [`RoutingPolicy::HashAttr`] on that key or
//!   [`RoutingPolicy::Partition`] when the key is the partition id; or a
//!   pattern under
//!   [`SelectionStrategy::PartitionContiguity`](cep_core::selection::SelectionStrategy),
//!   which *by definition* confines matches to one partition.
//! * **arbitrary (cross-partition) queries** under
//!   [`RoutingPolicy::ReplicateJoin`]: a
//!   [`QueryPartitioner`](cep_core::partition::QueryPartitioner) analyzes
//!   the query's equality predicates and classifies each event type as
//!   *partitioned* (hashed by its join-key attribute — kept for the
//!   high-rate side) or *replicated* (broadcast to every shard — the
//!   low-rate side), so every match is complete on the shard its key
//!   hashes to. Matches binding no partitioned event are detected by all
//!   shards; the merge deduplicates them by signature, keeping the
//!   canonically first copy ([`cep_core::metrics::EngineMetrics`] reports
//!   the broadcast overhead as `replicated_events` and the suppressed
//!   duplicates as `dedup_hits`).
//!
//! Under those conditions — and under the three *exact* selection
//! strategies (skip-till-any-match, strict contiguity, partition
//! contiguity) — the merged output of [`ShardedRuntime::run`] is the
//! single-threaded result vector in [`canonical_sort`] order: same
//! `Match` values, same order, whether it ran on 1 shard or 16.
//! Skip-till-next-match is excluded from the exactness guarantee: its
//! greedy, non-forking advancement binds the first candidate of *any*
//! key, so its choices depend on how partitions interleave (the strategy
//! is already plan-dependent single-threaded). A sharded next-match run
//! is still deterministic per configuration, its matches valid and
//! event-disjoint across all shards, but bindings may differ from the
//! global greedy run's. [`RoutingPolicy::RoundRobin`] offers no exactness
//! for multi-element patterns (it splits key groups); it is exact only
//! for single-element (filter) patterns and otherwise serves as a
//! raw-throughput upper bound. One caveat applies to *mid-stream deferred*
//! emissions (trailing negations, negation inside conjunctions): their
//! `emitted_at` watermark is taken from the emitting engine's own input,
//! which under split routing can lag the unsplit stream's — bindings and
//! match sets are still exact, end-of-stream flushes included.
//!
//! [`ShardRouter::for_query`] (and [`ShardedRuntime::run_query`]) check a
//! policy against the compiled query and reject combinations they cannot
//! prove sound with a typed
//! [`CepError::Routing`](cep_core::error::CepError) — hash-routing a
//! query whose correlation attribute does not key every element used to
//! silently drop cross-shard matches; now it points at the replicate-join
//! policy instead. [`RoutingPolicy::Partition`] passes the check only for
//! partition-contiguity queries: whether a key-linked query's key mirrors
//! the partition id is a *stream* property no query analysis can see, so
//! key-partitioned deployments should hash the key explicitly
//! ([`RoutingPolicy::HashAttr`], which is verified) or opt out via the
//! unchecked [`ShardRouter::new`] / [`ShardedRuntime::run`] path.
//!
//! Workers communicate over bounded [`std::sync::mpsc`] channels carrying
//! event *batches*: batching amortizes the per-send synchronization, and
//! the bound applies backpressure to the router instead of letting queues
//! grow without limit.
//!
//! Because workers accept *any* factory, they compose with the adaptive
//! runtime: hand [`ShardedRuntime::run`] a `cep_adaptive::AdaptiveFactory`
//! and every worker owns a self-replanning engine that monitors, replans,
//! and hot-swaps on the statistics of its own slice of the stream — the
//! sharded and adaptive exactness guarantees stack (tested in
//! `src/tests.rs`).

#![warn(missing_docs)]

mod router;
mod runtime;

pub use router::{hash_value, RouteTarget, RoutingPolicy, ShardRouter};
pub use runtime::{
    canonical_sort, MultiQueryRunResult, ShardConfig, ShardStats, ShardedRunResult, ShardedRuntime,
};

#[cfg(test)]
mod tests;
