//! The sharded worker-pool runtime and its deterministic merge.

use crate::router::{RoutingPolicy, ShardRouter};
use cep_core::engine::EngineFactory;
use cep_core::event::EventRef;
use cep_core::matches::Match;
use cep_core::metrics::EngineMetrics;
use cep_core::stream::EventStream;
use std::sync::mpsc::{sync_channel, Receiver, SyncSender};
use std::sync::Arc;
use std::time::Instant;

/// Worker-pool knobs.
#[derive(Debug, Clone)]
pub struct ShardConfig {
    /// Number of worker shards (each owns one engine on one thread).
    pub shards: usize,
    /// Events per channel message. Batching amortizes the per-send
    /// synchronization cost; 1 degenerates to an event-at-a-time pipeline.
    pub batch_size: usize,
    /// Bound of each worker's input queue, in batches. A full queue blocks
    /// the router (backpressure) instead of buffering without limit.
    pub queue_batches: usize,
}

impl Default for ShardConfig {
    fn default() -> Self {
        ShardConfig {
            shards: std::thread::available_parallelism()
                .map(|n| n.get())
                .unwrap_or(4),
            batch_size: 256,
            queue_batches: 4,
        }
    }
}

impl ShardConfig {
    /// Default configuration with an explicit shard count.
    pub fn with_shards(shards: usize) -> ShardConfig {
        ShardConfig {
            shards,
            ..Default::default()
        }
    }
}

/// One shard's slice of a sharded run.
#[derive(Debug, Clone)]
pub struct ShardStats {
    /// Shard index.
    pub shard: usize,
    /// Events routed to this shard.
    pub events_routed: u64,
    /// Matches this shard's engine emitted.
    pub match_count: u64,
    /// The shard engine's final metrics; `wall_time_ns` is the shard's
    /// *busy* time (processing only, excluding waits on the input queue).
    pub metrics: EngineMetrics,
}

/// Result of a sharded run.
#[derive(Debug)]
pub struct ShardedRunResult {
    /// Merged matches in [`canonical_sort`] order (empty when
    /// `collect_matches` was false).
    pub matches: Vec<Match>,
    /// Total matches across shards (tracked even when not collected).
    pub match_count: u64,
    /// Aggregated metrics: per-shard metrics combined with
    /// [`EngineMetrics::merge`], with `wall_time_ns` replaced by the whole
    /// run's wall time (routing included), so
    /// [`throughput_eps`](EngineMetrics::throughput_eps) reports end-to-end
    /// parallel throughput.
    pub metrics: EngineMetrics,
    /// Per-shard breakdown, indexed by shard.
    pub per_shard: Vec<ShardStats>,
}

/// Runs any [`EngineFactory`]'s engines across a pool of worker shards.
///
/// The calling thread routes and batches events; each worker thread builds
/// a private engine from the shared factory and processes its slice in
/// stream order (routing preserves the relative order of the events a
/// shard receives, so every shard still sees a ts-ordered stream).
#[derive(Debug, Clone, Default)]
pub struct ShardedRuntime {
    config: ShardConfig,
}

struct ShardOutcome {
    matches: Vec<Match>,
    match_count: u64,
    events_routed: u64,
    metrics: EngineMetrics,
}

impl ShardedRuntime {
    /// Runtime with explicit configuration.
    pub fn new(config: ShardConfig) -> ShardedRuntime {
        assert!(config.shards >= 1, "need at least one shard");
        assert!(config.batch_size >= 1, "batch size must be positive");
        assert!(config.queue_batches >= 1, "queue bound must be positive");
        ShardedRuntime { config }
    }

    /// Runtime with `shards` workers and default batching.
    pub fn with_shards(shards: usize) -> ShardedRuntime {
        ShardedRuntime::new(ShardConfig::with_shards(shards))
    }

    /// The active configuration.
    pub fn config(&self) -> &ShardConfig {
        &self.config
    }

    /// Drives `stream` through `self.config.shards` workers, each running a
    /// fresh engine from `factory`, and merges the results
    /// deterministically. With `collect_matches == false`, matches are
    /// counted and discarded shard-side, keeping memory flat on large runs.
    ///
    /// See the crate docs for when the merged output is exactly the
    /// single-threaded result (partition-local queries) — the merge order
    /// itself is deterministic for any query and any shard count.
    pub fn run(
        &self,
        factory: &dyn EngineFactory,
        stream: &EventStream,
        policy: RoutingPolicy,
        collect_matches: bool,
    ) -> ShardedRunResult {
        let shards = self.config.shards;
        let batch_size = self.config.batch_size;
        let start = Instant::now();
        let mut router = ShardRouter::new(shards, policy);
        let mut txs: Vec<SyncSender<Vec<EventRef>>> = Vec::with_capacity(shards);
        let mut rxs: Vec<Receiver<Vec<EventRef>>> = Vec::with_capacity(shards);
        for _ in 0..shards {
            let (tx, rx) = sync_channel(self.config.queue_batches);
            txs.push(tx);
            rxs.push(rx);
        }
        let outcomes: Vec<ShardOutcome> = std::thread::scope(|s| {
            let handles: Vec<_> = rxs
                .into_iter()
                .map(|rx| s.spawn(move || worker(factory, rx, collect_matches)))
                .collect();
            let mut batches: Vec<Vec<EventRef>> = (0..shards)
                .map(|_| Vec::with_capacity(batch_size))
                .collect();
            for event in stream {
                let shard = router.route(event);
                batches[shard].push(Arc::clone(event));
                if batches[shard].len() >= batch_size {
                    let full =
                        std::mem::replace(&mut batches[shard], Vec::with_capacity(batch_size));
                    // A send only fails if the worker died; its panic
                    // resurfaces at join below.
                    let _ = txs[shard].send(full);
                }
            }
            for (shard, batch) in batches.into_iter().enumerate() {
                if !batch.is_empty() {
                    let _ = txs[shard].send(batch);
                }
            }
            drop(txs); // close the channels: workers flush and return
            handles
                .into_iter()
                .map(|h| h.join().expect("shard worker panicked"))
                .collect()
        });
        let wall = start.elapsed().as_nanos() as u64;
        let mut metrics = EngineMetrics::new();
        let mut matches = Vec::new();
        let mut match_count = 0;
        let mut per_shard = Vec::with_capacity(shards);
        for (shard, mut o) in outcomes.into_iter().enumerate() {
            metrics.merge(&o.metrics);
            match_count += o.match_count;
            matches.append(&mut o.matches);
            per_shard.push(ShardStats {
                shard,
                events_routed: o.events_routed,
                match_count: o.match_count,
                metrics: o.metrics,
            });
        }
        metrics.wall_time_ns = wall;
        canonical_sort(&mut matches);
        ShardedRunResult {
            matches,
            match_count,
            metrics,
            per_shard,
        }
    }
}

/// One worker: builds its engine, drains its queue batch by batch, flushes
/// on channel close. Latency accounting mirrors
/// [`run_to_completion`](cep_core::engine::run_to_completion).
fn worker(
    factory: &dyn EngineFactory,
    rx: Receiver<Vec<EventRef>>,
    collect_matches: bool,
) -> ShardOutcome {
    let mut engine = factory.build();
    let mut matches = Vec::new();
    let mut scratch = Vec::new();
    let mut match_count = 0u64;
    let mut events_routed = 0u64;
    let mut busy_ns = 0u64;
    let drain = |engine: &mut Box<dyn cep_core::engine::Engine>,
                 scratch: &mut Vec<Match>,
                 matches: &mut Vec<Match>,
                 latency_start: Instant| {
        if scratch.is_empty() {
            return 0u64;
        }
        let latency = latency_start.elapsed().as_nanos() as u64;
        let emitted = scratch.len() as u64;
        engine.metrics_mut().match_latency_ns_total += latency * emitted;
        if collect_matches {
            matches.append(scratch);
        } else {
            scratch.clear();
        }
        emitted
    };
    while let Ok(batch) = rx.recv() {
        let batch_start = Instant::now();
        for event in &batch {
            let ev_start = Instant::now();
            engine.process(event, &mut scratch);
            match_count += drain(&mut engine, &mut scratch, &mut matches, ev_start);
        }
        events_routed += batch.len() as u64;
        busy_ns += batch_start.elapsed().as_nanos() as u64;
    }
    let flush_start = Instant::now();
    engine.flush(&mut scratch);
    match_count += drain(&mut engine, &mut scratch, &mut matches, flush_start);
    busy_ns += flush_start.elapsed().as_nanos() as u64;
    engine.metrics_mut().wall_time_ns += busy_ns;
    ShardOutcome {
        matches,
        match_count,
        events_routed,
        metrics: engine.metrics().clone(),
    }
}

/// Sorts matches into the canonical deterministic order used to merge
/// per-shard outputs: by emission watermark, then by the timestamp of the
/// last contributing event, then by the bound `(position, serial numbers)`
/// signature. The key identifies a match completely, so the order is total
/// and independent of shard count — applying this sort to a
/// single-threaded engine's output yields exactly what a sharded run
/// returns whenever the query is partition-local.
pub fn canonical_sort(matches: &mut [Match]) {
    matches.sort_by_cached_key(|m| (m.emitted_at, m.last_ts, m.signature()));
}
