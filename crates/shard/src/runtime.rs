//! The sharded worker-pool runtime and its deterministic, dedup-aware
//! merge.

use crate::router::{RouteTarget, RoutingPolicy, ShardRouter};
use cep_core::compile::CompiledPattern;
use cep_core::engine::EngineFactory;
use cep_core::error::CepError;
use cep_core::event::EventRef;
use cep_core::matches::Match;
use cep_core::metrics::EngineMetrics;
use cep_core::registry::{QueryId, QueryRegistry, RegistrySpec};
use cep_core::stream::EventStream;
use cep_obs::{MetricsRegistry, TraceRecord, Tracer};
use std::collections::{BTreeMap, HashSet};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::mpsc::{sync_channel, Receiver, SyncSender};
use std::sync::Arc;
use std::time::Instant;

/// Every `ROUTE_SAMPLE_MASK + 1`-th event's routing decision is traced as a
/// [`TraceRecord::ShardRoute`]; sampling keeps trace volume proportional to
/// the stream without touching the per-event routing cost when disabled.
const ROUTE_SAMPLE_MASK: u64 = 63;

/// Workers sample one event in eight into
/// [`EngineMetrics::event_ns`], mirroring
/// [`run_to_completion`](cep_core::engine::run_to_completion)'s cadence.
const EVENT_SAMPLE_MASK: u64 = 7;

/// Worker-pool knobs.
#[derive(Debug, Clone)]
pub struct ShardConfig {
    /// Number of worker shards (each owns one engine on one thread).
    pub shards: usize,
    /// Events per channel message. Batching amortizes the per-send
    /// synchronization cost; 1 degenerates to an event-at-a-time pipeline.
    pub batch_size: usize,
    /// Bound of each worker's input queue, in batches. A full queue blocks
    /// the router (backpressure) instead of buffering without limit.
    pub queue_batches: usize,
}

impl Default for ShardConfig {
    fn default() -> Self {
        ShardConfig {
            shards: std::thread::available_parallelism()
                .map(|n| n.get())
                .unwrap_or(4),
            batch_size: 256,
            queue_batches: 4,
        }
    }
}

impl ShardConfig {
    /// Default configuration with an explicit shard count.
    pub fn with_shards(shards: usize) -> ShardConfig {
        ShardConfig {
            shards,
            ..Default::default()
        }
    }
}

/// One shard's slice of a sharded run.
#[derive(Debug, Clone)]
pub struct ShardStats {
    /// Shard index.
    pub shard: usize,
    /// Events routed to this shard (under replicate-join routing,
    /// broadcast events count once per receiving shard).
    pub events_routed: u64,
    /// Matches this shard's engine emitted. Under replicate-join routing a
    /// match without partitioned events is emitted by *every* shard, so
    /// these raw per-shard counts may sum to more than the merged
    /// [`ShardedRunResult::match_count`] (the difference is
    /// [`EngineMetrics::dedup_hits`]).
    pub match_count: u64,
    /// The shard engine's final metrics; `wall_time_ns` is the shard's
    /// *busy* time (processing only, excluding waits on the input queue).
    pub metrics: EngineMetrics,
}

/// Result of a sharded run.
#[derive(Debug)]
pub struct ShardedRunResult {
    /// Merged matches in [`canonical_sort`] order (empty when
    /// `collect_matches` was false), with cross-shard duplicates removed
    /// under replicate-join routing.
    pub matches: Vec<Match>,
    /// Distinct matches across shards (tracked even when not collected;
    /// duplicates from replicated-only matches are already subtracted).
    pub match_count: u64,
    /// Aggregated metrics: per-shard metrics combined with
    /// [`EngineMetrics::merge`], with `wall_time_ns` replaced by the whole
    /// run's wall time (routing included), so
    /// [`throughput_eps`](EngineMetrics::throughput_eps) reports end-to-end
    /// parallel throughput.
    pub metrics: EngineMetrics,
    /// Per-shard breakdown, indexed by shard.
    pub per_shard: Vec<ShardStats>,
}

impl ShardedRunResult {
    /// Load imbalance across workers: the maximum per-shard busy time
    /// divided by the mean. `1.0` means perfectly balanced; `shards as
    /// f64` means one worker did all the work. Returns `1.0` for runs
    /// with no recorded busy time.
    pub fn imbalance_ratio(&self) -> f64 {
        let total: u64 = self.per_shard.iter().map(|s| s.metrics.wall_time_ns).sum();
        if total == 0 {
            return 1.0;
        }
        let max = self
            .per_shard
            .iter()
            .map(|s| s.metrics.wall_time_ns)
            .max()
            .unwrap_or(0);
        max as f64 * self.per_shard.len() as f64 / total as f64
    }

    /// Exports the merged metrics plus the per-shard series the merge
    /// collapses: `cep_shard_busy_ns_total`,
    /// `cep_shard_events_routed_total`, and `cep_shard_matches_total` get
    /// one sample per shard (labelled `shard="<index>"`), and
    /// `cep_shard_imbalance_ratio` summarizes the busy-time skew. The
    /// merged snapshot alone cannot answer "which worker was hot" — its
    /// wall time is the whole run's and the per-shard busy times are
    /// summed away — so imbalance is only measurable from these series.
    pub fn export(&self, reg: &mut MetricsRegistry, labels: &[(&str, &str)]) {
        self.metrics.export(reg, labels);
        reg.gauge(
            "cep_shard_imbalance_ratio",
            "Max over mean per-shard busy time (1.0 = balanced)",
            labels,
            self.imbalance_ratio(),
        );
        for s in &self.per_shard {
            let idx = s.shard.to_string();
            let mut with_shard: Vec<(&str, &str)> = labels.to_vec();
            with_shard.push(("shard", idx.as_str()));
            reg.counter(
                "cep_shard_busy_ns_total",
                "Per-shard busy time in ns (processing only, queue waits excluded)",
                &with_shard,
                s.metrics.wall_time_ns,
            );
            reg.counter(
                "cep_shard_events_routed_total",
                "Events delivered to this shard (broadcasts count per copy)",
                &with_shard,
                s.events_routed,
            );
            reg.counter(
                "cep_shard_matches_total",
                "Raw matches this shard emitted (before cross-shard dedup)",
                &with_shard,
                s.match_count,
            );
        }
    }
}

/// Runs any [`EngineFactory`]'s engines across a pool of worker shards.
///
/// The calling thread routes and batches events; each worker thread builds
/// a private engine from the shared factory and processes its slice in
/// stream order (routing preserves the relative order of the events a
/// shard receives, so every shard still sees a ts-ordered stream).
#[derive(Debug, Clone, Default)]
pub struct ShardedRuntime {
    config: ShardConfig,
    tracer: Tracer,
}

struct ShardOutcome {
    matches: Vec<Match>,
    match_count: u64,
    events_routed: u64,
    metrics: EngineMetrics,
}

impl ShardedRuntime {
    /// Runtime with explicit configuration.
    pub fn new(config: ShardConfig) -> ShardedRuntime {
        assert!(config.shards >= 1, "need at least one shard");
        assert!(config.batch_size >= 1, "batch size must be positive");
        assert!(config.queue_batches >= 1, "queue bound must be positive");
        ShardedRuntime {
            config,
            tracer: Tracer::disabled(),
        }
    }

    /// Runtime with `shards` workers and default batching.
    pub fn with_shards(shards: usize) -> ShardedRuntime {
        ShardedRuntime::new(ShardConfig::with_shards(shards))
    }

    /// The active configuration.
    pub fn config(&self) -> &ShardConfig {
        &self.config
    }

    /// Attaches a tracer: runs then emit sampled
    /// [`TraceRecord::ShardRoute`] records (one per
    /// `ROUTE_SAMPLE_MASK + 1` events) and a [`TraceRecord::ShardBatch`]
    /// per batch send carrying the receiving worker's queue depth.
    /// Tracing only observes — matches, merge order, and metrics are
    /// byte-identical to an untraced run, and a disabled tracer costs one
    /// branch per batch.
    pub fn with_tracer(mut self, tracer: Tracer) -> ShardedRuntime {
        self.tracer = tracer;
        self
    }

    /// Drives `stream` through `self.config.shards` workers, each running a
    /// fresh engine from `factory`, and merges the results
    /// deterministically. With `collect_matches == false`, matches are
    /// counted and discarded shard-side, keeping memory flat on large runs.
    ///
    /// Under [`RoutingPolicy::ReplicateJoin`], replicated event types are
    /// broadcast to every worker (the extra deliveries are counted in the
    /// merged metrics' [`EngineMetrics::replicated_events`]) and the merge
    /// suppresses cross-shard duplicate matches by signature, keeping the
    /// first occurrence in canonical order ([`EngineMetrics::dedup_hits`]
    /// counts the rest). Duplicates only arise for matches that bind no
    /// partitioned event, which every shard detects; keeping the
    /// canonically first copy reproduces the single-threaded engine's
    /// emission exactly. Deduplication needs signatures, so replicate-join
    /// runs buffer matches shard-side even when `collect_matches` is
    /// false (they are dropped after counting).
    ///
    /// See the crate docs for when the merged output is exactly the
    /// single-threaded result — the merge order itself is deterministic
    /// for any query and any shard count.
    pub fn run(
        &self,
        factory: &dyn EngineFactory,
        stream: &EventStream,
        policy: RoutingPolicy,
        collect_matches: bool,
    ) -> ShardedRunResult {
        let shards = self.config.shards;
        let batch_size = self.config.batch_size;
        // Replicated-only matches surface on every shard; merging must
        // dedup them, which requires seeing the matches. A spec with no
        // replicated types broadcasts nothing and cannot duplicate, so it
        // keeps the flat-memory count-and-discard path.
        let dedup = shards > 1
            && matches!(&policy, RoutingPolicy::ReplicateJoin(spec)
                if !spec.is_fully_partitioned());
        let collect_in_workers = collect_matches || dedup;
        let tracer = &self.tracer;
        let traced = tracer.is_enabled();
        // In-flight batches per worker queue, maintained (and read) only
        // when tracing: the router increments at send, the worker
        // decrements at receive, so each ShardBatch record carries the
        // receiver's queue depth at the moment the batch was enqueued.
        let depths: Vec<AtomicU64> = (0..shards).map(|_| AtomicU64::new(0)).collect();
        let start = Instant::now();
        let mut router = ShardRouter::new(shards, policy);
        let mut txs: Vec<SyncSender<Vec<EventRef>>> = Vec::with_capacity(shards);
        let mut rxs: Vec<Receiver<Vec<EventRef>>> = Vec::with_capacity(shards);
        for _ in 0..shards {
            let (tx, rx) = sync_channel(self.config.queue_batches);
            txs.push(tx);
            rxs.push(rx);
        }
        let mut replicated_extra = 0u64;
        let outcomes: Vec<ShardOutcome> = std::thread::scope(|s| {
            let handles: Vec<_> = rxs
                .into_iter()
                .enumerate()
                .map(|(i, rx)| {
                    let depth = traced.then(|| &depths[i]);
                    s.spawn(move || worker(factory, rx, collect_in_workers, depth))
                })
                .collect();
            replicated_extra =
                route_and_feed(tracer, &mut router, stream, txs, &depths, batch_size);
            handles
                .into_iter()
                .map(|h| h.join().expect("shard worker panicked"))
                .collect()
        });
        let wall = start.elapsed().as_nanos() as u64;
        let mut metrics = EngineMetrics::new();
        let mut matches = Vec::new();
        let mut match_count = 0;
        let mut per_shard = Vec::with_capacity(shards);
        for (shard, mut o) in outcomes.into_iter().enumerate() {
            metrics.merge(&o.metrics);
            match_count += o.match_count;
            matches.append(&mut o.matches);
            per_shard.push(ShardStats {
                shard,
                events_routed: o.events_routed,
                match_count: o.match_count,
                metrics: o.metrics,
            });
        }
        metrics.wall_time_ns = wall;
        metrics.replicated_events = replicated_extra;
        canonical_sort(&mut matches);
        if dedup {
            let before = matches.len();
            let mut seen = HashSet::with_capacity(before);
            matches.retain(|m| seen.insert(m.signature()));
            metrics.dedup_hits = (before - matches.len()) as u64;
            match_count = matches.len() as u64;
            if !collect_matches {
                matches.clear();
            }
        }
        ShardedRunResult {
            matches,
            match_count,
            metrics,
            per_shard,
        }
    }

    /// [`run`](ShardedRuntime::run) with the routing policy first checked
    /// against the compiled query it routes for
    /// ([`ShardRouter::for_query`]): unsound combinations — e.g. hash
    /// routing a query whose correlation attribute does not key every
    /// element — fail with [`CepError::Routing`] instead of silently
    /// losing cross-shard matches.
    pub fn run_query(
        &self,
        factory: &dyn EngineFactory,
        stream: &EventStream,
        policy: RoutingPolicy,
        branches: &[CompiledPattern],
        collect_matches: bool,
    ) -> Result<ShardedRunResult, CepError> {
        ShardRouter::for_query(self.config.shards, policy.clone(), branches)?;
        // Debug builds additionally lint the branches and (for
        // replicate-join) the partition spec against them (A010).
        if cfg!(debug_assertions) {
            for cp in branches {
                cep_analyze::verify_pattern_invariants(cp)?;
            }
            if let RoutingPolicy::ReplicateJoin(spec) = &policy {
                cep_analyze::verify_partition_spec(spec, branches)?;
            }
        }
        Ok(self.run(factory, stream, policy, collect_matches))
    }

    /// Drives `stream` through the worker pool with **every query of
    /// `spec` evaluated on every shard**: each stream partition is routed
    /// once, each worker owns a private [`QueryRegistry`] stamped from
    /// the spec ([`RegistrySpec::instantiate`] — all workers share the
    /// spec's predicate-program cache), and shared fragments are
    /// evaluated once per shard however many queries subscribe to them.
    /// Per-query outputs are merged exactly like
    /// [`run`](ShardedRuntime::run) merges a single query's — per query:
    /// [`canonical_sort`], then (under non-fully-partitioned
    /// replicate-join routing) cross-shard duplicate suppression by
    /// signature.
    ///
    /// The routing policy is validated against **every branch of every
    /// registered query** ([`ShardRouter::for_query`]): the stream is
    /// split once for the whole set, so the policy must be sound for
    /// each member, and unsound combinations fail with
    /// [`CepError::Routing`] up front instead of silently losing one
    /// query's cross-shard matches.
    ///
    /// Merged-metrics caveat: every worker registry registers the full
    /// query set, so the merged
    /// [`registered_queries`](EngineMetrics::registered_queries) /
    /// `shared_fragments` counters scale with the shard count, exactly
    /// like `events_processed` under broadcast routing.
    ///
    /// # Errors
    /// [`CepError::Routing`] for an empty spec or a policy unsound for
    /// some branch; fragment-builder errors surface from
    /// [`RegistrySpec::instantiate`].
    pub fn run_registry(
        &self,
        spec: &RegistrySpec,
        stream: &EventStream,
        policy: RoutingPolicy,
        collect_matches: bool,
    ) -> Result<MultiQueryRunResult, CepError> {
        let shards = self.config.shards;
        let batch_size = self.config.batch_size;
        if spec.queries() == 0 {
            return Err(CepError::Routing(
                "cannot shard an empty registry spec: add at least one query".into(),
            ));
        }
        let branches: Vec<CompiledPattern> = spec.branches().cloned().collect();
        let mut router = ShardRouter::for_query(shards, policy.clone(), &branches)?;
        if cfg!(debug_assertions) {
            for cp in &branches {
                cep_analyze::verify_pattern_invariants(cp)?;
            }
            if let RoutingPolicy::ReplicateJoin(pspec) = &policy {
                cep_analyze::verify_partition_spec(pspec, &branches)?;
            }
        }
        // Same regime as `run`: replicated-only matches surface on every
        // shard and must be deduplicated per query, which requires
        // collecting them worker-side.
        let dedup = shards > 1
            && matches!(&policy, RoutingPolicy::ReplicateJoin(pspec)
                if !pspec.is_fully_partitioned());
        let collect_in_workers = collect_matches || dedup;
        let tracer = &self.tracer;
        let traced = tracer.is_enabled();
        let depths: Vec<AtomicU64> = (0..shards).map(|_| AtomicU64::new(0)).collect();
        let start = Instant::now();
        let mut txs: Vec<SyncSender<Vec<EventRef>>> = Vec::with_capacity(shards);
        let mut rxs: Vec<Receiver<Vec<EventRef>>> = Vec::with_capacity(shards);
        for _ in 0..shards {
            let (tx, rx) = sync_channel(self.config.queue_batches);
            txs.push(tx);
            rxs.push(rx);
        }
        let mut replicated_extra = 0u64;
        // Workers instantiate their own registry from the shared spec
        // (engines are not `Send`, so registries cannot be built here and
        // moved in); a builder failure aborts that worker, whose queue
        // simply drains into a closed channel, and the error is
        // propagated after join.
        let results: Vec<Result<RegistryOutcome, CepError>> = std::thread::scope(|s| {
            let handles: Vec<_> = rxs
                .into_iter()
                .enumerate()
                .map(|(i, rx)| {
                    let depth = traced.then(|| &depths[i]);
                    s.spawn(move || registry_worker(spec, rx, collect_in_workers, depth))
                })
                .collect();
            replicated_extra =
                route_and_feed(tracer, &mut router, stream, txs, &depths, batch_size);
            handles
                .into_iter()
                .map(|h| h.join().expect("shard worker panicked"))
                .collect()
        });
        let outcomes: Vec<RegistryOutcome> = results.into_iter().collect::<Result<_, _>>()?;
        let wall = start.elapsed().as_nanos() as u64;
        let mut metrics = EngineMetrics::new();
        let mut per_query: BTreeMap<QueryId, Vec<Match>> = BTreeMap::new();
        let mut match_counts: BTreeMap<QueryId, u64> = BTreeMap::new();
        let mut per_shard = Vec::with_capacity(shards);
        for (shard, o) in outcomes.into_iter().enumerate() {
            metrics.merge(&o.metrics);
            let shard_matches: u64 = o.counts.values().sum();
            for (id, mut ms) in o.per_query {
                per_query.entry(id).or_default().append(&mut ms);
            }
            for (id, c) in o.counts {
                *match_counts.entry(id).or_insert(0) += c;
            }
            per_shard.push(ShardStats {
                shard,
                events_routed: o.events_routed,
                match_count: shard_matches,
                metrics: o.metrics,
            });
        }
        metrics.wall_time_ns = wall;
        metrics.replicated_events = replicated_extra;
        let mut dedup_hits = 0u64;
        for (id, ms) in per_query.iter_mut() {
            canonical_sort(ms);
            if dedup {
                let before = ms.len();
                let mut seen = HashSet::with_capacity(before);
                ms.retain(|m| seen.insert(m.signature()));
                dedup_hits += (before - ms.len()) as u64;
                match_counts.insert(*id, ms.len() as u64);
                if !collect_matches {
                    ms.clear();
                }
            }
        }
        metrics.dedup_hits = dedup_hits;
        let match_count = match_counts.values().sum();
        Ok(MultiQueryRunResult {
            per_query,
            match_counts,
            match_count,
            metrics,
            per_shard,
        })
    }
}

/// Result of a multi-query sharded run
/// ([`ShardedRuntime::run_registry`]).
#[derive(Debug)]
pub struct MultiQueryRunResult {
    /// Per-query merged matches in [`canonical_sort`] order (vectors are
    /// empty when `collect_matches` was false), with cross-shard
    /// duplicates removed per query under replicate-join routing. Every
    /// registered query has an entry.
    pub per_query: BTreeMap<QueryId, Vec<Match>>,
    /// Distinct matches per query across shards (tracked even when not
    /// collected).
    pub match_counts: BTreeMap<QueryId, u64>,
    /// Total distinct matches across all queries.
    pub match_count: u64,
    /// Aggregated metrics: per-worker registry metrics combined with
    /// [`EngineMetrics::merge`], `wall_time_ns` replaced by the whole
    /// run's wall time. Shared-fragment work is counted once per shard,
    /// not once per subscribing query.
    pub metrics: EngineMetrics,
    /// Per-shard breakdown; `match_count` is the shard's total fan-out
    /// emissions across all queries (before cross-shard dedup).
    pub per_shard: Vec<ShardStats>,
}

/// One worker: builds its engine, drains its queue batch by batch, flushes
/// on channel close. Latency accounting mirrors
/// [`run_to_completion`](cep_core::engine::run_to_completion).
fn worker(
    factory: &dyn EngineFactory,
    rx: Receiver<Vec<EventRef>>,
    collect_matches: bool,
    queue_depth: Option<&AtomicU64>,
) -> ShardOutcome {
    let mut engine = factory.build();
    let mut matches = Vec::new();
    let mut scratch = Vec::new();
    let mut match_count = 0u64;
    let mut events_routed = 0u64;
    let mut busy_ns = 0u64;
    let drain = |engine: &mut Box<dyn cep_core::engine::Engine>,
                 scratch: &mut Vec<Match>,
                 matches: &mut Vec<Match>,
                 latency_start: Instant| {
        if scratch.is_empty() {
            return 0u64;
        }
        let latency = latency_start.elapsed().as_nanos() as u64;
        let emitted = scratch.len() as u64;
        engine
            .metrics_mut()
            .match_latency_ns
            .record_n(latency, emitted);
        if collect_matches {
            matches.append(scratch);
        } else {
            scratch.clear();
        }
        emitted
    };
    while let Ok(batch) = rx.recv() {
        if let Some(d) = queue_depth {
            d.fetch_sub(1, Ordering::Relaxed);
        }
        let batch_start = Instant::now();
        for event in &batch {
            let ev_start = Instant::now();
            engine.process(event, &mut scratch);
            events_routed += 1;
            if events_routed & EVENT_SAMPLE_MASK == 0 {
                let dt = ev_start.elapsed().as_nanos() as u64;
                engine.metrics_mut().event_ns.record(dt);
            }
            match_count += drain(&mut engine, &mut scratch, &mut matches, ev_start);
        }
        busy_ns += batch_start.elapsed().as_nanos() as u64;
    }
    let flush_start = Instant::now();
    engine.flush(&mut scratch);
    match_count += drain(&mut engine, &mut scratch, &mut matches, flush_start);
    busy_ns += flush_start.elapsed().as_nanos() as u64;
    engine.metrics_mut().wall_time_ns += busy_ns;
    ShardOutcome {
        matches,
        match_count,
        events_routed,
        metrics: engine.metrics().clone(),
    }
}

/// Routes and batches the whole stream into the worker channels (shared
/// by the single-query and multi-query runs), consuming — and thereby
/// closing — the senders so workers flush and return. Returns the number
/// of extra broadcast deliveries
/// ([`EngineMetrics::replicated_events`]).
fn route_and_feed(
    tracer: &Tracer,
    router: &mut ShardRouter,
    stream: &EventStream,
    txs: Vec<SyncSender<Vec<EventRef>>>,
    depths: &[AtomicU64],
    batch_size: usize,
) -> u64 {
    let shards = txs.len();
    let traced = tracer.is_enabled();
    let mut replicated_extra = 0u64;
    let mut batches: Vec<Vec<EventRef>> = (0..shards)
        .map(|_| Vec::with_capacity(batch_size))
        .collect();
    let send_batch = |shard: usize, full: Vec<EventRef>| {
        if traced {
            let queue_depth = depths[shard].fetch_add(1, Ordering::Relaxed) + 1;
            let len = full.len() as u64;
            tracer.emit_with(|| TraceRecord::ShardBatch {
                shard: shard as u64,
                len,
                queue_depth,
            });
        }
        // A send only fails if the worker died; its panic resurfaces at
        // the caller's join.
        let _ = txs[shard].send(full);
    };
    let push = |shard: usize, event: &EventRef, batches: &mut Vec<Vec<EventRef>>| {
        batches[shard].push(Arc::clone(event));
        if batches[shard].len() >= batch_size {
            let full = std::mem::replace(&mut batches[shard], Vec::with_capacity(batch_size));
            send_batch(shard, full);
        }
    };
    for event in stream {
        let target = router.route_target(event);
        if traced && event.seq & ROUTE_SAMPLE_MASK == 0 {
            tracer.emit_with(|| TraceRecord::ShardRoute {
                seq: event.seq,
                ts: event.ts,
                shard: match target {
                    RouteTarget::One(s) => s as u64,
                    RouteTarget::All => 0,
                },
                broadcast: matches!(target, RouteTarget::All),
            });
        }
        match target {
            RouteTarget::One(shard) => push(shard, event, &mut batches),
            RouteTarget::All => {
                replicated_extra += shards as u64 - 1;
                for shard in 0..shards {
                    push(shard, event, &mut batches);
                }
            }
        }
    }
    for (shard, batch) in batches.into_iter().enumerate() {
        if !batch.is_empty() {
            send_batch(shard, batch);
        }
    }
    drop(txs); // close the channels: workers flush and return
    replicated_extra
}

struct RegistryOutcome {
    per_query: BTreeMap<QueryId, Vec<Match>>,
    counts: BTreeMap<QueryId, u64>,
    events_routed: u64,
    metrics: EngineMetrics,
}

/// One multi-query worker: owns a private [`QueryRegistry`], drains its
/// queue batch by batch, flushes on channel close. Latency and per-event
/// cadence mirror [`worker`]; the sampled histograms land in a local
/// snapshot absorbed into the registry's metrics at the end (absorb
/// leaves `events_processed`/`wall_time_ns` untouched).
fn registry_worker(
    spec: &RegistrySpec,
    rx: Receiver<Vec<EventRef>>,
    collect_matches: bool,
    queue_depth: Option<&AtomicU64>,
) -> Result<RegistryOutcome, CepError> {
    fn drain(
        scratch: &mut Vec<(QueryId, Match)>,
        per_query: &mut BTreeMap<QueryId, Vec<Match>>,
        counts: &mut BTreeMap<QueryId, u64>,
        sampled: &mut EngineMetrics,
        collect: bool,
        latency_start: Instant,
    ) {
        if scratch.is_empty() {
            return;
        }
        let latency = latency_start.elapsed().as_nanos() as u64;
        sampled
            .match_latency_ns
            .record_n(latency, scratch.len() as u64);
        for (id, m) in scratch.drain(..) {
            *counts.get_mut(&id).expect("registered id") += 1;
            if collect {
                per_query.get_mut(&id).expect("registered id").push(m);
            }
        }
    }
    let mut registry: QueryRegistry = spec.instantiate()?;
    let ids = registry.query_ids();
    let mut per_query: BTreeMap<QueryId, Vec<Match>> =
        ids.iter().map(|&id| (id, Vec::new())).collect();
    let mut counts: BTreeMap<QueryId, u64> = ids.iter().map(|&id| (id, 0)).collect();
    let mut scratch: Vec<(QueryId, Match)> = Vec::new();
    let mut sampled = EngineMetrics::new();
    let mut events_routed = 0u64;
    let mut busy_ns = 0u64;
    while let Ok(batch) = rx.recv() {
        if let Some(d) = queue_depth {
            d.fetch_sub(1, Ordering::Relaxed);
        }
        let batch_start = Instant::now();
        for event in &batch {
            let ev_start = Instant::now();
            registry.process(event, &mut scratch);
            events_routed += 1;
            if events_routed & EVENT_SAMPLE_MASK == 0 {
                let dt = ev_start.elapsed().as_nanos() as u64;
                sampled.event_ns.record(dt);
            }
            drain(
                &mut scratch,
                &mut per_query,
                &mut counts,
                &mut sampled,
                collect_matches,
                ev_start,
            );
        }
        busy_ns += batch_start.elapsed().as_nanos() as u64;
    }
    let flush_start = Instant::now();
    registry.flush(&mut scratch);
    drain(
        &mut scratch,
        &mut per_query,
        &mut counts,
        &mut sampled,
        collect_matches,
        flush_start,
    );
    busy_ns += flush_start.elapsed().as_nanos() as u64;
    let mut metrics = registry.metrics();
    metrics.wall_time_ns = busy_ns;
    metrics.absorb(&sampled);
    Ok(RegistryOutcome {
        per_query,
        counts,
        events_routed,
        metrics,
    })
}

/// Sorts matches into the canonical deterministic order used to merge
/// per-shard outputs: by emission watermark, then by the timestamp of the
/// last contributing event, then by the bound `(position, serial numbers)`
/// signature. The key identifies a match completely, so the order is total
/// and independent of shard count — applying this sort to a
/// single-threaded engine's output yields exactly what a sharded run
/// returns whenever the query is partition-local.
pub fn canonical_sort(matches: &mut [Match]) {
    matches.sort_by_cached_key(|m| (m.emitted_at, m.last_ts, m.signature()));
}
