//! Routing policies: how input events map onto worker shards.

use cep_core::event::Event;
use cep_core::value::Value;

/// How the [`ShardRouter`] assigns events to shards.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum RoutingPolicy {
    /// Hash the attribute at this index: events sharing a key value always
    /// land on the same shard, making sharding exact for queries whose
    /// predicates equate the key across all pattern positions. Events
    /// missing the attribute route to shard 0.
    HashAttr(usize),
    /// Pass `event.partition` through (`partition % shards`): every
    /// partition stays whole on one shard, making sharding exact for
    /// partition-local queries (partition-contiguity, or predicates keyed
    /// by an attribute that coincides with the partition id).
    Partition,
    /// Cycle through shards. Balances perfectly but splits key groups, so
    /// it is exact only for single-element (filter) patterns; use it for
    /// stateless workloads or as a raw-throughput upper bound.
    RoundRobin,
}

impl std::fmt::Display for RoutingPolicy {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            RoutingPolicy::HashAttr(i) => write!(f, "hash-attr({i})"),
            RoutingPolicy::Partition => f.write_str("partition"),
            RoutingPolicy::RoundRobin => f.write_str("round-robin"),
        }
    }
}

/// Maps stream events onto `shards` worker indices under a
/// [`RoutingPolicy`]. Routing is deterministic: the same stream under the
/// same policy and shard count always yields the same assignment
/// (round-robin state advances per routed event).
#[derive(Debug)]
pub struct ShardRouter {
    shards: usize,
    policy: RoutingPolicy,
    rr_next: usize,
}

impl ShardRouter {
    /// Creates a router over `shards` workers (at least 1).
    pub fn new(shards: usize, policy: RoutingPolicy) -> ShardRouter {
        assert!(shards >= 1, "need at least one shard");
        ShardRouter {
            shards,
            policy,
            rr_next: 0,
        }
    }

    /// Number of shards routed across.
    pub fn shards(&self) -> usize {
        self.shards
    }

    /// The active policy.
    pub fn policy(&self) -> RoutingPolicy {
        self.policy
    }

    /// Shard index for `event`.
    pub fn route(&mut self, event: &Event) -> usize {
        match self.policy {
            RoutingPolicy::HashAttr(idx) => match event.attr(idx) {
                Some(v) => (hash_value(v) % self.shards as u64) as usize,
                None => 0,
            },
            RoutingPolicy::Partition => event.partition as usize % self.shards,
            RoutingPolicy::RoundRobin => {
                let s = self.rr_next;
                self.rr_next = (self.rr_next + 1) % self.shards;
                s
            }
        }
    }
}

/// Deterministic 64-bit FNV-1a hash of an attribute value, stable across
/// processes and runs (unlike `std`'s `RandomState`). Numeric kinds hash
/// their representation, not their numeric value, so `Int(2)` and
/// `Float(2.0)` may land on different shards — key attributes should use
/// one kind consistently. `-0.0` is normalized to `0.0`.
pub fn hash_value(v: &Value) -> u64 {
    const OFFSET: u64 = 0xcbf2_9ce4_8422_2325;
    const PRIME: u64 = 0x0000_0100_0000_01b3;
    let mut h = OFFSET;
    let mut eat = |bytes: &[u8]| {
        for &b in bytes {
            h ^= b as u64;
            h = h.wrapping_mul(PRIME);
        }
    };
    match v {
        Value::Int(i) => {
            eat(&[0x01]);
            eat(&i.to_le_bytes());
        }
        Value::Float(f) => {
            let f = if *f == 0.0 { 0.0 } else { *f };
            eat(&[0x02]);
            eat(&f.to_bits().to_le_bytes());
        }
        Value::Bool(b) => eat(&[0x03, *b as u8]),
        Value::Str(s) => {
            eat(&[0x04]);
            eat(s.as_bytes());
        }
    }
    h
}

#[cfg(test)]
mod tests {
    use super::*;
    use cep_core::event::TypeId;

    fn keyed(key: i64, partition: u32) -> Event {
        let mut e = Event::new(TypeId(0), 0, vec![Value::Int(key)]);
        e.partition = partition;
        e
    }

    #[test]
    fn hash_routing_is_deterministic_and_key_stable() {
        let mut r1 = ShardRouter::new(4, RoutingPolicy::HashAttr(0));
        let mut r2 = ShardRouter::new(4, RoutingPolicy::HashAttr(0));
        for key in 0..100 {
            let s = r1.route(&keyed(key, 0));
            assert!(s < 4);
            assert_eq!(s, r2.route(&keyed(key, 0)), "same key, same shard");
            assert_eq!(s, r1.route(&keyed(key, 7)), "partition is ignored");
        }
    }

    #[test]
    fn hash_routing_spreads_keys() {
        let mut r = ShardRouter::new(4, RoutingPolicy::HashAttr(0));
        let mut used = std::collections::HashSet::new();
        for key in 0..64 {
            used.insert(r.route(&keyed(key, 0)));
        }
        assert_eq!(used.len(), 4, "64 keys must reach all 4 shards");
    }

    #[test]
    fn missing_attribute_routes_to_shard_zero() {
        let mut r = ShardRouter::new(4, RoutingPolicy::HashAttr(3));
        assert_eq!(r.route(&keyed(42, 0)), 0);
    }

    #[test]
    fn partition_routing_is_modular() {
        let mut r = ShardRouter::new(3, RoutingPolicy::Partition);
        assert_eq!(r.route(&keyed(0, 0)), 0);
        assert_eq!(r.route(&keyed(0, 4)), 1);
        assert_eq!(r.route(&keyed(0, 5)), 2);
        assert_eq!(r.route(&keyed(0, 6)), 0);
    }

    #[test]
    fn round_robin_cycles() {
        let mut r = ShardRouter::new(3, RoutingPolicy::RoundRobin);
        let got: Vec<usize> = (0..7).map(|_| r.route(&keyed(0, 0))).collect();
        assert_eq!(got, vec![0, 1, 2, 0, 1, 2, 0]);
    }

    #[test]
    fn hash_value_distinguishes_kinds_and_normalizes_zero() {
        assert_ne!(hash_value(&Value::Int(1)), hash_value(&Value::Bool(true)));
        assert_ne!(hash_value(&Value::Int(2)), hash_value(&Value::Float(2.0)));
        assert_eq!(
            hash_value(&Value::Float(0.0)),
            hash_value(&Value::Float(-0.0))
        );
        assert_eq!(
            hash_value(&Value::from("k1")),
            hash_value(&Value::from("k1"))
        );
        assert_ne!(
            hash_value(&Value::from("k1")),
            hash_value(&Value::from("k2"))
        );
    }
}
