//! Routing policies: how input events map onto worker shards.

use cep_core::compile::CompiledPattern;
use cep_core::error::CepError;
use cep_core::event::Event;
use cep_core::partition::{partition_local_on, PartitionSpec, TypeDisposition};
use cep_core::value::Value;
use std::sync::Arc;

/// How the [`ShardRouter`] assigns events to shards.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum RoutingPolicy {
    /// Hash the attribute at this index: events sharing a key value always
    /// land on the same shard, making sharding exact for queries whose
    /// predicates equate the key across all pattern positions. Events
    /// missing the attribute route to shard 0.
    HashAttr(usize),
    /// Pass `event.partition` through (`partition % shards`): every
    /// partition stays whole on one shard, making sharding exact for
    /// partition-local queries (partition-contiguity, or predicates keyed
    /// by an attribute that coincides with the partition id).
    Partition,
    /// Cycle through shards. Balances perfectly but splits key groups, so
    /// it is exact only for single-element (filter) patterns; use it for
    /// stateless workloads or as a raw-throughput upper bound.
    RoundRobin,
    /// Replicate-join routing for cross-partition queries (Dossinger &
    /// Michel, arXiv:2104.07742): each event type is either *partitioned*
    /// (hashed by its join-key attribute from the spec) or *replicated*
    /// (broadcast to every shard), per the
    /// [`PartitionSpec`] a
    /// [`QueryPartitioner`](cep_core::partition::QueryPartitioner)
    /// derived from the query. Exact for any query the spec is sound for,
    /// at any shard count, with duplicate suppression handled by the
    /// merge. Types outside the spec (irrelevant to the query) route by
    /// `partition % shards`.
    ReplicateJoin(Arc<PartitionSpec>),
}

impl std::fmt::Display for RoutingPolicy {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            RoutingPolicy::HashAttr(i) => write!(f, "hash-attr({i})"),
            RoutingPolicy::Partition => f.write_str("partition"),
            RoutingPolicy::RoundRobin => f.write_str("round-robin"),
            RoutingPolicy::ReplicateJoin(spec) => write!(f, "replicate-join{spec}"),
        }
    }
}

/// Where one event goes: a single shard, or every shard (broadcast).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum RouteTarget {
    /// Deliver to exactly this shard index.
    One(usize),
    /// Deliver a copy to every shard (replicated event types).
    All,
}

/// Maps stream events onto `shards` worker indices under a
/// [`RoutingPolicy`]. Routing is deterministic: the same stream under the
/// same policy and shard count always yields the same assignment
/// (round-robin state advances per routed event).
#[derive(Debug)]
pub struct ShardRouter {
    shards: usize,
    policy: RoutingPolicy,
    rr_next: usize,
}

impl ShardRouter {
    /// Creates a router over `shards` workers (at least 1).
    ///
    /// This constructor performs no query analysis; use
    /// [`ShardRouter::for_query`] to have the policy checked against the
    /// query it will route for.
    pub fn new(shards: usize, policy: RoutingPolicy) -> ShardRouter {
        assert!(shards >= 1, "need at least one shard");
        ShardRouter {
            shards,
            policy,
            rr_next: 0,
        }
    }

    /// Creates a router after verifying that `policy` is *sound* for the
    /// compiled query it will route: every match must be fully detectable
    /// on at least one shard, with duplicates limited to what the merge
    /// deduplicates.
    ///
    /// * [`RoutingPolicy::HashAttr`] requires the query to be
    ///   partition-local on that attribute (every element of every branch
    ///   equality-linked on it);
    /// * [`RoutingPolicy::Partition`] requires partition-contiguity
    ///   semantics — the only case where the query *itself* guarantees
    ///   that matches never cross partitions. A key-linked query may well
    ///   be exact under partition routing too, but only if the key
    ///   mirrors `event.partition`, which is a property of the *stream*
    ///   that no query analysis can verify — such deployments should hash
    ///   the key explicitly ([`RoutingPolicy::HashAttr`], which *is*
    ///   verified) or use the unchecked [`ShardRouter::new`] path
    ///   deliberately;
    /// * [`RoutingPolicy::RoundRobin`] requires single-element (filter)
    ///   branches without negation;
    /// * [`RoutingPolicy::ReplicateJoin`] validates the spec against the
    ///   branches ([`PartitionSpec::validate`]).
    ///
    /// # Errors
    /// Returns [`CepError::Routing`] describing the unsound combination
    /// and pointing at the replicate-join policy where it applies.
    pub fn for_query(
        shards: usize,
        policy: RoutingPolicy,
        branches: &[CompiledPattern],
    ) -> Result<ShardRouter, CepError> {
        if branches.is_empty() {
            return Err(CepError::Routing(
                "cannot validate a routing policy against zero pattern branches".into(),
            ));
        }
        match &policy {
            RoutingPolicy::HashAttr(attr) => {
                partition_local_on(branches, *attr).map_err(|e| {
                    CepError::Routing(format!(
                        "hash-attr({attr}) would lose cross-shard matches: {e}; \
                         route this query with RoutingPolicy::ReplicateJoin \
                         (see cep_core::partition::QueryPartitioner)"
                    ))
                })?;
            }
            RoutingPolicy::Partition => {
                let contiguous = branches.iter().all(|cp| {
                    cp.strategy == cep_core::selection::SelectionStrategy::PartitionContiguity
                });
                if !contiguous {
                    return Err(CepError::Routing(
                        "partition routing is only verifiably exact for \
                         partition-contiguity queries; whether a key-linked query's \
                         key mirrors the partition id is a stream property this \
                         check cannot see. Hash the join key explicitly with \
                         RoutingPolicy::HashAttr, route cross-partition queries \
                         with RoutingPolicy::ReplicateJoin (see \
                         cep_core::partition::QueryPartitioner), or use the \
                         unchecked ShardRouter::new if the stream is known to be \
                         partitioned by the key"
                            .into(),
                    ));
                }
            }
            RoutingPolicy::RoundRobin => {
                if branches
                    .iter()
                    .any(|cp| cp.n() != 1 || !cp.negated.is_empty())
                {
                    return Err(CepError::Routing(
                        "round-robin routing splits key groups and is only exact for \
                         single-element filter patterns; use ReplicateJoin for \
                         multi-element queries"
                            .into(),
                    ));
                }
            }
            RoutingPolicy::ReplicateJoin(spec) => spec.validate(branches)?,
        }
        Ok(ShardRouter::new(shards, policy))
    }

    /// Number of shards routed across.
    pub fn shards(&self) -> usize {
        self.shards
    }

    /// The active policy.
    pub fn policy(&self) -> &RoutingPolicy {
        &self.policy
    }

    /// Shard index for `event` under a single-target policy.
    ///
    /// # Panics
    /// Panics for [`RoutingPolicy::ReplicateJoin`], whose replicated types
    /// broadcast to every shard — use [`ShardRouter::route_target`].
    pub fn route(&mut self, event: &Event) -> usize {
        match self.route_target(event) {
            RouteTarget::One(s) => s,
            RouteTarget::All => {
                panic!("route() called for a broadcast event; use route_target()")
            }
        }
    }

    /// Destination of `event`: one shard, or all of them.
    pub fn route_target(&mut self, event: &Event) -> RouteTarget {
        let one = |s: usize| RouteTarget::One(s);
        match &self.policy {
            RoutingPolicy::HashAttr(idx) => match event.attr(*idx) {
                Some(v) => one((hash_value(v) % self.shards as u64) as usize),
                None => one(0),
            },
            RoutingPolicy::Partition => one(event.partition as usize % self.shards),
            RoutingPolicy::RoundRobin => {
                let s = self.rr_next;
                self.rr_next = (self.rr_next + 1) % self.shards;
                one(s)
            }
            RoutingPolicy::ReplicateJoin(spec) => match spec.disposition(event.type_id) {
                Some(TypeDisposition::Replicated) => RouteTarget::All,
                Some(TypeDisposition::Partitioned { attr }) => match event.attr(attr) {
                    Some(v) => one((hash_value(v) % self.shards as u64) as usize),
                    None => one(0),
                },
                // Types the query never references cannot affect its
                // matches; spread them by partition id so they are still
                // processed exactly once.
                None => one(event.partition as usize % self.shards),
            },
        }
    }
}

/// Deterministic 64-bit FNV-1a hash of an attribute value, stable across
/// processes and runs (unlike `std`'s `RandomState`). Numeric kinds hash
/// their representation, not their numeric value, so `Int(2)` and
/// `Float(2.0)` may land on different shards — key attributes should use
/// one kind consistently. `-0.0` is normalized to `0.0`.
pub fn hash_value(v: &Value) -> u64 {
    const OFFSET: u64 = 0xcbf2_9ce4_8422_2325;
    const PRIME: u64 = 0x0000_0100_0000_01b3;
    let mut h = OFFSET;
    let mut eat = |bytes: &[u8]| {
        for &b in bytes {
            h ^= b as u64;
            h = h.wrapping_mul(PRIME);
        }
    };
    match v {
        Value::Int(i) => {
            eat(&[0x01]);
            eat(&i.to_le_bytes());
        }
        Value::Float(f) => {
            let f = if *f == 0.0 { 0.0 } else { *f };
            eat(&[0x02]);
            eat(&f.to_bits().to_le_bytes());
        }
        Value::Bool(b) => eat(&[0x03, *b as u8]),
        Value::Str(s) => {
            eat(&[0x04]);
            eat(s.as_bytes());
        }
    }
    h
}

#[cfg(test)]
mod tests {
    use super::*;
    use cep_core::event::TypeId;
    use cep_core::pattern::PatternBuilder;
    use cep_core::predicate::{CmpOp, Predicate};

    fn keyed(key: i64, partition: u32) -> Event {
        let mut e = Event::new(TypeId(0), 0, vec![Value::Int(key)]);
        e.partition = partition;
        e
    }

    #[test]
    fn hash_routing_is_deterministic_and_key_stable() {
        let mut r1 = ShardRouter::new(4, RoutingPolicy::HashAttr(0));
        let mut r2 = ShardRouter::new(4, RoutingPolicy::HashAttr(0));
        for key in 0..100 {
            let s = r1.route(&keyed(key, 0));
            assert!(s < 4);
            assert_eq!(s, r2.route(&keyed(key, 0)), "same key, same shard");
            assert_eq!(s, r1.route(&keyed(key, 7)), "partition is ignored");
        }
    }

    #[test]
    fn hash_routing_spreads_keys() {
        let mut r = ShardRouter::new(4, RoutingPolicy::HashAttr(0));
        let mut used = std::collections::HashSet::new();
        for key in 0..64 {
            used.insert(r.route(&keyed(key, 0)));
        }
        assert_eq!(used.len(), 4, "64 keys must reach all 4 shards");
    }

    #[test]
    fn missing_attribute_routes_to_shard_zero() {
        let mut r = ShardRouter::new(4, RoutingPolicy::HashAttr(3));
        assert_eq!(r.route(&keyed(42, 0)), 0);
    }

    #[test]
    fn partition_routing_is_modular() {
        let mut r = ShardRouter::new(3, RoutingPolicy::Partition);
        assert_eq!(r.route(&keyed(0, 0)), 0);
        assert_eq!(r.route(&keyed(0, 4)), 1);
        assert_eq!(r.route(&keyed(0, 5)), 2);
        assert_eq!(r.route(&keyed(0, 6)), 0);
    }

    #[test]
    fn round_robin_cycles() {
        let mut r = ShardRouter::new(3, RoutingPolicy::RoundRobin);
        let got: Vec<usize> = (0..7).map(|_| r.route(&keyed(0, 0))).collect();
        assert_eq!(got, vec![0, 1, 2, 0, 1, 2, 0]);
    }

    #[test]
    fn hash_value_distinguishes_kinds_and_normalizes_zero() {
        assert_ne!(hash_value(&Value::Int(1)), hash_value(&Value::Bool(true)));
        assert_ne!(hash_value(&Value::Int(2)), hash_value(&Value::Float(2.0)));
        assert_eq!(
            hash_value(&Value::Float(0.0)),
            hash_value(&Value::Float(-0.0))
        );
        assert_eq!(
            hash_value(&Value::from("k1")),
            hash_value(&Value::from("k1"))
        );
        assert_ne!(
            hash_value(&Value::from("k1")),
            hash_value(&Value::from("k2"))
        );
    }

    fn spec_partitioned_and_replicated() -> Arc<PartitionSpec> {
        Arc::new(PartitionSpec::new([
            (TypeId(0), TypeDisposition::Partitioned { attr: 0 }),
            (TypeId(1), TypeDisposition::Replicated),
        ]))
    }

    #[test]
    fn replicate_join_broadcasts_replicated_types_only() {
        let mut r = ShardRouter::new(
            4,
            RoutingPolicy::ReplicateJoin(spec_partitioned_and_replicated()),
        );
        // Partitioned type: consistent single-shard hash on the key attr.
        let t0 = keyed(7, 0);
        let RouteTarget::One(s) = r.route_target(&t0) else {
            panic!("partitioned type must not broadcast");
        };
        assert_eq!(r.route_target(&t0), RouteTarget::One(s));
        // Replicated type: broadcast.
        let mut t1 = keyed(7, 0);
        t1.type_id = TypeId(1);
        assert_eq!(r.route_target(&t1), RouteTarget::All);
        // Irrelevant type: routed once, by partition id.
        let mut t9 = keyed(7, 6);
        t9.type_id = TypeId(9);
        assert_eq!(r.route_target(&t9), RouteTarget::One(2));
    }

    #[test]
    #[should_panic(expected = "route_target")]
    fn route_panics_on_broadcast() {
        let mut r = ShardRouter::new(
            4,
            RoutingPolicy::ReplicateJoin(spec_partitioned_and_replicated()),
        );
        let mut e = keyed(7, 0);
        e.type_id = TypeId(1);
        r.route(&e);
    }

    /// SEQ(A a, B b, C c) with a.0 == b.0 — C is unkeyed, so plain hash
    /// routing on attribute 0 is unsound.
    fn cross_key_branches() -> Vec<CompiledPattern> {
        let mut b = PatternBuilder::new(100);
        let a = b.event(TypeId(0), "a");
        let bb = b.event(TypeId(1), "b");
        let c = b.event(TypeId(2), "c");
        b.predicate(Predicate::attr_cmp(a.pos(), 0, CmpOp::Eq, bb.pos(), 0));
        CompiledPattern::compile(&b.seq([a, bb, c]).unwrap()).unwrap()
    }

    /// Regression for the silent-wrong-answer bug: hash routing a query
    /// whose correlation attribute does not cover every element used to be
    /// accepted and silently dropped cross-shard matches. `for_query` now
    /// rejects it with a typed error pointing at replicate-join.
    #[test]
    fn for_query_rejects_partition_local_routing_of_cross_key_queries() {
        let branches = cross_key_branches();
        for policy in [RoutingPolicy::HashAttr(0), RoutingPolicy::Partition] {
            let err = ShardRouter::for_query(4, policy.clone(), &branches).unwrap_err();
            let CepError::Routing(msg) = &err else {
                panic!("{policy} must fail with CepError::Routing, got {err}");
            };
            assert!(
                msg.contains("ReplicateJoin"),
                "{policy} error must point at the replicate-join policy: {msg}"
            );
        }
        let err = ShardRouter::for_query(4, RoutingPolicy::RoundRobin, &branches).unwrap_err();
        assert!(matches!(err, CepError::Routing(_)));
    }

    #[test]
    fn for_query_accepts_sound_combinations() {
        // Fully keyed query: hash routing on the key attribute is fine.
        let mut b = PatternBuilder::new(100);
        let a = b.event(TypeId(0), "a");
        let c = b.event(TypeId(1), "c");
        b.predicate(Predicate::attr_cmp(a.pos(), 0, CmpOp::Eq, c.pos(), 0));
        let keyed = CompiledPattern::compile(&b.seq([a, c]).unwrap()).unwrap();
        assert!(ShardRouter::for_query(4, RoutingPolicy::HashAttr(0), &keyed).is_ok());
        // ...but not hash routing on a different attribute, and not
        // partition routing: whether the key mirrors the partition id is a
        // stream property the query-only check cannot verify.
        assert!(ShardRouter::for_query(4, RoutingPolicy::HashAttr(1), &keyed).is_err());
        assert!(ShardRouter::for_query(4, RoutingPolicy::Partition, &keyed).is_err());

        // The cross-key query is accepted under a sound replicate-join spec.
        let branches = cross_key_branches();
        let spec = cep_core::partition::QueryPartitioner::analyze(&branches, |_| 1.0).unwrap();
        assert!(
            ShardRouter::for_query(4, RoutingPolicy::ReplicateJoin(Arc::new(spec)), &branches)
                .is_ok()
        );
        // ...and rejected under an unsound hand-built one.
        let bad = PartitionSpec::new([
            (TypeId(0), TypeDisposition::Partitioned { attr: 0 }),
            (TypeId(1), TypeDisposition::Partitioned { attr: 0 }),
            (TypeId(2), TypeDisposition::Partitioned { attr: 0 }),
        ]);
        assert!(
            ShardRouter::for_query(4, RoutingPolicy::ReplicateJoin(Arc::new(bad)), &branches)
                .is_err()
        );

        // Single-element filter patterns may round-robin.
        let mut b = PatternBuilder::new(100);
        let a = b.event(TypeId(0), "a");
        let filter = CompiledPattern::compile(&b.seq([a]).unwrap()).unwrap();
        assert!(ShardRouter::for_query(4, RoutingPolicy::RoundRobin, &filter).is_ok());
    }

    #[test]
    fn for_query_accepts_partition_routing_for_partition_contiguity() {
        use cep_core::selection::SelectionStrategy;
        // No key predicates at all, but partition contiguity confines
        // matches to one partition by definition.
        let mut b = PatternBuilder::new(100);
        b.strategy(SelectionStrategy::PartitionContiguity);
        let a = b.event(TypeId(0), "a");
        let c = b.event(TypeId(1), "c");
        let branches = CompiledPattern::compile(&b.seq([a, c]).unwrap()).unwrap();
        assert!(ShardRouter::for_query(4, RoutingPolicy::Partition, &branches).is_ok());
        assert!(ShardRouter::for_query(4, RoutingPolicy::HashAttr(0), &branches).is_err());
    }
}
