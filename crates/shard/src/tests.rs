//! Equivalence and determinism tests for the sharded runtime, following
//! the naive-oracle harness pattern of `crates/tree/src/tests.rs`: the
//! single-threaded engine (and, for plan-independent strategies, the naive
//! oracle) is the ground truth the parallel runtime must reproduce.

use crate::{canonical_sort, RoutingPolicy, ShardConfig, ShardedRuntime};
use cep_core::compile::CompiledPattern;
use cep_core::engine::{run_to_completion, Engine, EngineConfig, EngineFactory};
use cep_core::event::{Event, TypeId};
use cep_core::matches::Match;
use cep_core::naive::NaiveEngine;
use cep_core::pattern::{Pattern, PatternBuilder};
use cep_core::predicate::{CmpOp, Predicate};
use cep_core::selection::SelectionStrategy;
use cep_core::stream::{EventStream, StreamBuilder};
use cep_core::value::Value;
use cep_nfa::NfaEngine;
use cep_tree::TreeEngine;
use proptest::prelude::*;

fn t(i: u32) -> TypeId {
    TypeId(i)
}

/// An event whose attribute 0 is the routing key; partition mirrors it.
fn keyed_stream(events: Vec<(u32, u64, i64)>) -> EventStream {
    let mut b = StreamBuilder::new();
    for (tid, ts, key) in events {
        b.push_partitioned(Event::new(t(tid), ts, vec![Value::Int(key)]), key as u32);
    }
    b.build()
}

/// `SEQ` of `n` types whose predicates equate attribute 0 across all
/// positions — the partition-keyed query shape sharding is exact for.
fn keyed_seq(n: usize, window: u64, strategy: SelectionStrategy) -> Pattern {
    let mut b = PatternBuilder::new(window);
    b.strategy(strategy);
    let evs: Vec<_> = (0..n)
        .map(|i| b.event(t(i as u32), &format!("e{i}")))
        .collect();
    for w in evs.windows(2) {
        b.predicate(Predicate::attr_cmp(w[0].pos(), 0, CmpOp::Eq, w[1].pos(), 0));
    }
    b.seq(evs).unwrap()
}

fn nfa_factory(cp: CompiledPattern) -> impl EngineFactory {
    move || {
        Box::new(NfaEngine::with_trivial_plan(
            cp.clone(),
            EngineConfig::default(),
        )) as Box<dyn Engine>
    }
}

fn tree_factory(cp: CompiledPattern) -> impl EngineFactory {
    move || {
        Box::new(TreeEngine::with_trivial_plan(
            cp.clone(),
            EngineConfig::default(),
        )) as Box<dyn Engine>
    }
}

/// Single-threaded ground truth for a factory, in canonical merge order.
fn single_threaded(factory: &dyn EngineFactory, stream: &EventStream) -> Vec<Match> {
    let mut engine = factory.build();
    let mut matches = run_to_completion(engine.as_mut(), stream, true).matches;
    canonical_sort(&mut matches);
    matches
}

/// Deterministic pseudo-random keyed workload (same LCG as the tree tests).
fn lcg_workload(len: u64, types: u32, keys: i64, seed: u64) -> Vec<(u32, u64, i64)> {
    let mut state = seed;
    let mut ts = 0u64;
    (0..len)
        .map(|_| {
            state = state
                .wrapping_mul(6364136223846793005)
                .wrapping_add(1442695040888963407);
            let tid = ((state >> 33) % types as u64) as u32;
            let key = ((state >> 20) % keys as u64) as i64;
            ts += (state >> 50) % 3;
            (tid, ts, key)
        })
        .collect()
}

#[test]
fn sharded_equals_single_threaded_for_every_exact_strategy() {
    let stream = keyed_stream(lcg_workload(160, 3, 4, 0xC0FFEE));
    for strategy in [
        SelectionStrategy::SkipTillAnyMatch,
        SelectionStrategy::StrictContiguity,
        SelectionStrategy::PartitionContiguity,
    ] {
        let cp = CompiledPattern::compile_single(&keyed_seq(3, 12, strategy)).unwrap();
        let factory = nfa_factory(cp);
        let expected = single_threaded(&factory, &stream);
        for policy in [RoutingPolicy::Partition, RoutingPolicy::HashAttr(0)] {
            for shards in [1, 2, 3, 4] {
                let r = ShardedRuntime::with_shards(shards).run(
                    &factory,
                    &stream,
                    policy.clone(),
                    true,
                );
                assert_eq!(
                    r.matches, expected,
                    "{strategy} under {policy} with {shards} shards diverged"
                );
                assert_eq!(r.match_count, expected.len() as u64);
            }
        }
    }
}

/// Skip-till-next-match is *greedy*: an empty instance binds the first
/// candidate event of any key, so its binding choices depend on how
/// partitions interleave — they are interleaving-dependent even
/// single-threaded (the strategy is already plan-dependent in the paper).
/// Sharding therefore preserves next-match's per-shard greedy semantics,
/// not the global run's exact bindings; what must survive is validity,
/// event-disjointness across all shards, and per-configuration determinism.
#[test]
fn next_match_sharded_runs_are_valid_disjoint_and_deterministic() {
    use cep_core::matches::validate_match;
    let stream = keyed_stream(lcg_workload(160, 3, 4, 0xC0FFEE));
    let cp =
        CompiledPattern::compile_single(&keyed_seq(3, 12, SelectionStrategy::SkipTillNextMatch))
            .unwrap();
    let factory = nfa_factory(cp.clone());
    for shards in [1, 2, 4] {
        let r = ShardedRuntime::with_shards(shards).run(
            &factory,
            &stream,
            RoutingPolicy::Partition,
            true,
        );
        assert!(!r.matches.is_empty(), "fixture should produce matches");
        let mut used = std::collections::HashSet::new();
        for m in &r.matches {
            validate_match(&cp, m).unwrap();
            for e in m.events() {
                assert!(used.insert(e.seq), "event reused across shards");
            }
        }
        let again = ShardedRuntime::with_shards(shards).run(
            &factory,
            &stream,
            RoutingPolicy::Partition,
            true,
        );
        assert_eq!(r.matches, again.matches, "repeat runs must be identical");
    }
}

#[test]
fn any_match_sharded_run_agrees_with_naive_oracle() {
    let stream = keyed_stream(lcg_workload(100, 3, 3, 0xBEEF));
    let cp =
        CompiledPattern::compile_single(&keyed_seq(3, 10, SelectionStrategy::SkipTillAnyMatch))
            .unwrap();
    let mut oracle = NaiveEngine::new(cp.clone(), EngineConfig::default());
    let mut expected = run_to_completion(&mut oracle, &stream, true).matches;
    canonical_sort(&mut expected);
    assert!(!expected.is_empty(), "fixture should produce matches");
    let r = ShardedRuntime::with_shards(4).run(
        &nfa_factory(cp),
        &stream,
        RoutingPolicy::Partition,
        true,
    );
    assert_eq!(
        r.matches.iter().map(|m| m.signature()).collect::<Vec<_>>(),
        expected.iter().map(|m| m.signature()).collect::<Vec<_>>(),
    );
}

#[test]
fn shard_count_does_not_change_results() {
    let stream = keyed_stream(lcg_workload(200, 3, 8, 7));
    let cp =
        CompiledPattern::compile_single(&keyed_seq(3, 15, SelectionStrategy::SkipTillAnyMatch))
            .unwrap();
    let factory = nfa_factory(cp);
    let base =
        ShardedRuntime::with_shards(1).run(&factory, &stream, RoutingPolicy::Partition, true);
    assert!(!base.matches.is_empty(), "fixture should produce matches");
    for shards in [2, 4, 8] {
        let r = ShardedRuntime::with_shards(shards).run(
            &factory,
            &stream,
            RoutingPolicy::Partition,
            true,
        );
        assert_eq!(r.matches, base.matches, "{shards} shards diverged");
    }
    // Repeat runs are bit-identical too.
    let again =
        ShardedRuntime::with_shards(4).run(&factory, &stream, RoutingPolicy::Partition, true);
    assert_eq!(again.matches, base.matches);
}

#[test]
fn tiny_batches_and_queues_only_change_plumbing() {
    let stream = keyed_stream(lcg_workload(120, 3, 4, 99));
    let cp =
        CompiledPattern::compile_single(&keyed_seq(3, 12, SelectionStrategy::SkipTillAnyMatch))
            .unwrap();
    let factory = nfa_factory(cp);
    let expected = single_threaded(&factory, &stream);
    let runtime = ShardedRuntime::new(ShardConfig {
        shards: 3,
        batch_size: 1,
        queue_batches: 1,
    });
    let r = runtime.run(&factory, &stream, RoutingPolicy::HashAttr(0), true);
    assert_eq!(r.matches, expected);
}

#[test]
fn metrics_are_aggregated_across_shards() {
    let stream = keyed_stream(lcg_workload(150, 3, 4, 5));
    let cp =
        CompiledPattern::compile_single(&keyed_seq(3, 12, SelectionStrategy::SkipTillAnyMatch))
            .unwrap();
    let factory = nfa_factory(cp);
    let r = ShardedRuntime::with_shards(4).run(&factory, &stream, RoutingPolicy::Partition, true);
    assert_eq!(r.metrics.events_processed, stream.len() as u64);
    assert_eq!(
        r.per_shard.iter().map(|s| s.events_routed).sum::<u64>(),
        stream.len() as u64
    );
    assert_eq!(
        r.per_shard.iter().map(|s| s.match_count).sum::<u64>(),
        r.match_count
    );
    assert_eq!(r.match_count, r.matches.len() as u64);
    assert!(r.metrics.wall_time_ns > 0);
    assert!(r.metrics.throughput_eps() > 0.0);
    // Peaks are per-shard maxima, not sums.
    let peak = r
        .per_shard
        .iter()
        .map(|s| s.metrics.peak_partial_matches)
        .max()
        .unwrap();
    assert_eq!(r.metrics.peak_partial_matches, peak);
}

#[test]
fn uncollected_runs_still_count_matches() {
    let stream = keyed_stream(lcg_workload(150, 3, 4, 5));
    let cp =
        CompiledPattern::compile_single(&keyed_seq(3, 12, SelectionStrategy::SkipTillAnyMatch))
            .unwrap();
    let factory = nfa_factory(cp);
    let collected =
        ShardedRuntime::with_shards(2).run(&factory, &stream, RoutingPolicy::Partition, true);
    let counted =
        ShardedRuntime::with_shards(2).run(&factory, &stream, RoutingPolicy::Partition, false);
    assert!(counted.matches.is_empty());
    assert_eq!(counted.match_count, collected.match_count);
}

#[test]
fn round_robin_is_exact_for_filter_patterns() {
    // Single-element pattern: no joins, so splitting key groups is harmless.
    let mut b = PatternBuilder::new(10);
    let a = b.event(t(0), "a");
    b.predicate(Predicate::attr_const(a.pos(), 0, CmpOp::Ge, Value::Int(3)));
    let p = b.seq([a]).unwrap();
    let cp = CompiledPattern::compile_single(&p).unwrap();
    let stream = keyed_stream(lcg_workload(120, 2, 6, 11));
    let factory = nfa_factory(cp);
    let expected = single_threaded(&factory, &stream);
    assert!(!expected.is_empty());
    let r = ShardedRuntime::with_shards(4).run(&factory, &stream, RoutingPolicy::RoundRobin, true);
    assert_eq!(r.matches, expected);
}

#[test]
fn empty_stream_yields_empty_result() {
    let cp =
        CompiledPattern::compile_single(&keyed_seq(2, 10, SelectionStrategy::SkipTillAnyMatch))
            .unwrap();
    let r = ShardedRuntime::with_shards(4).run(
        &nfa_factory(cp),
        &Vec::new(),
        RoutingPolicy::Partition,
        true,
    );
    assert!(r.matches.is_empty());
    assert_eq!(r.match_count, 0);
    assert_eq!(r.metrics.events_processed, 0);
}

#[test]
fn single_event_stream_is_routed_and_matched() {
    // A one-element pattern over a one-event stream: the smallest possible
    // sharded run must still produce the match, on every policy.
    let mut b = PatternBuilder::new(10);
    let a = b.event(t(0), "a");
    let p = b.seq([a]).unwrap();
    let cp = CompiledPattern::compile_single(&p).unwrap();
    let stream = keyed_stream(vec![(0, 5, 2)]);
    let factory = nfa_factory(cp);
    let expected = single_threaded(&factory, &stream);
    assert_eq!(expected.len(), 1);
    for policy in [
        RoutingPolicy::Partition,
        RoutingPolicy::HashAttr(0),
        RoutingPolicy::RoundRobin,
    ] {
        let r = ShardedRuntime::with_shards(4).run(&factory, &stream, policy.clone(), true);
        assert_eq!(r.matches, expected, "{policy} lost the only event");
        assert_eq!(r.metrics.events_processed, 1);
        assert_eq!(
            r.per_shard.iter().map(|s| s.events_routed).sum::<u64>(),
            1,
            "{policy} must route the event exactly once"
        );
    }
}

#[test]
fn more_shards_than_events_is_exact() {
    // 8 shards, 3 events: most workers never see input and must still
    // start, drain, flush, and merge cleanly.
    let stream = keyed_stream(vec![(0, 1, 1), (1, 2, 1), (2, 3, 1)]);
    let cp =
        CompiledPattern::compile_single(&keyed_seq(3, 10, SelectionStrategy::SkipTillAnyMatch))
            .unwrap();
    let factory = nfa_factory(cp);
    let expected = single_threaded(&factory, &stream);
    assert_eq!(expected.len(), 1, "fixture is one complete match");
    for policy in [RoutingPolicy::Partition, RoutingPolicy::HashAttr(0)] {
        let r = ShardedRuntime::with_shards(8).run(&factory, &stream, policy.clone(), true);
        assert_eq!(r.matches, expected, "{policy} diverged with idle shards");
        assert_eq!(r.metrics.events_processed, 3);
    }
}

#[test]
fn sixteen_shard_replays_are_deterministic() {
    // The widest configuration the runtime is expected to see in tests:
    // repeat the identical 16-shard run and require bit-identical output
    // (merge order included), for both engine families.
    let stream = keyed_stream(lcg_workload(300, 3, 16, 0x516));
    let cp =
        CompiledPattern::compile_single(&keyed_seq(3, 14, SelectionStrategy::SkipTillAnyMatch))
            .unwrap();
    let nfa = nfa_factory(cp.clone());
    let tree = tree_factory(cp);
    let expected_nfa = single_threaded(&nfa, &stream);
    assert!(!expected_nfa.is_empty(), "fixture should produce matches");
    let mut previous: Option<Vec<Match>> = None;
    for replay in 0..3 {
        let r = ShardedRuntime::with_shards(16).run(&nfa, &stream, RoutingPolicy::Partition, true);
        assert_eq!(r.matches, expected_nfa, "replay {replay} diverged");
        if let Some(prev) = &previous {
            assert_eq!(&r.matches, prev, "replay {replay} not bit-identical");
        }
        previous = Some(r.matches);
    }
    let r = ShardedRuntime::with_shards(16).run(&tree, &stream, RoutingPolicy::Partition, true);
    assert_eq!(
        r.matches,
        single_threaded(&tree, &stream),
        "tree family diverged at 16 shards"
    );
}

/// Per-worker adaptivity: every shard owns an
/// [`cep_adaptive::AdaptiveEngine`] and replans independently on the
/// statistics of its own slice of the stream. For a partition-local query
/// the combination of both exactness guarantees must hold at once — the
/// sharded, swapping run reproduces the single-threaded, never-swapped
/// engine byte for byte.
#[test]
fn sharded_adaptive_engines_replan_per_worker_and_stay_exact() {
    use cep_adaptive::{AdaptiveConfig, AdaptiveFactory, PlanKind, PlanReplanner, Replanner};
    use cep_core::stats::MeasuredStats;
    use cep_optimizer::{OrderAlgorithm, Planner};

    // Two-phase keyed workload: type 0 frequent / type 2 rare, flipping at
    // the halfway point; keys cycle so every shard sees the same drift.
    let mut events = Vec::new();
    for phase in 0..2u64 {
        let (every_a, every_c) = if phase == 0 { (1, 30) } else { (30, 1) };
        let base = phase * 600;
        for i in 0..600u64 {
            let ts = base + i;
            let key = (i % 4) as i64;
            if i % every_a == 0 {
                events.push((0u32, ts, key));
            }
            if i % 5 == 0 {
                events.push((1u32, ts, (i / 5 % 4) as i64));
            }
            if i % every_c == 0 {
                events.push((2u32, ts, (i / 7 % 4) as i64));
            }
        }
    }
    let stream = keyed_stream(events);
    let cp =
        CompiledPattern::compile_single(&keyed_seq(3, 12, SelectionStrategy::SkipTillAnyMatch))
            .unwrap();
    let mut phase1 = MeasuredStats::default();
    phase1.set_rate(t(0), 1.0);
    phase1.set_rate(t(1), 0.2);
    phase1.set_rate(t(2), 1.0 / 30.0);
    let replanner = PlanReplanner::new(
        vec![(cp, vec![1.0, 1.0])],
        &phase1,
        Planner::default(),
        PlanKind::Order(OrderAlgorithm::DpLd),
        EngineConfig::default(),
    )
    .unwrap();
    // Never-swapped single-threaded ground truth on the unsplit stream.
    let mut static_engine = replanner.build();
    let mut expected = run_to_completion(static_engine.as_mut(), &stream, true).matches;
    canonical_sort(&mut expected);
    assert!(!expected.is_empty(), "fixture should produce matches");
    let factory = AdaptiveFactory::new(
        replanner,
        12,
        AdaptiveConfig {
            horizon_ms: 100,
            drift_threshold: 0.5,
            check_every: 32,
            cooldown_events: 64,
            ..AdaptiveConfig::default()
        },
    );
    for shards in [2, 4] {
        let r = ShardedRuntime::with_shards(shards).run(
            &factory,
            &stream,
            RoutingPolicy::Partition,
            true,
        );
        assert_eq!(
            r.matches, expected,
            "{shards}-shard adaptive run diverged from the static baseline"
        );
        assert!(
            r.metrics.plan_swaps >= shards as u64,
            "every worker should replan on the flip (got {} swaps across {shards} shards)",
            r.metrics.plan_swaps
        );
        assert!(r.metrics.replayed_events > 0, "swaps must replay state");
    }
}

/// Per-shard **selectivity** adaptivity: every worker owns an
/// `AdaptiveEngine` whose replanner re-estimates predicate selectivities
/// on its own slice. The workload keeps all arrival rates flat and flips
/// only the value correlations, so a swap can *only* come from the
/// selectivity monitors — and the sharded, swapping run must still equal
/// the single-threaded, never-swapped engine byte for byte.
#[test]
fn sharded_selectivity_monitors_replan_per_worker_and_stay_exact() {
    use cep_adaptive::{AdaptiveConfig, AdaptiveFactory, PlanKind, PlanReplanner, Replanner};
    use cep_core::stats::MeasuredStats;
    use cep_optimizer::{OrderAlgorithm, Planner};

    // Events carry (key, value); keys cycle over 4 partitions — with the
    // strides chosen so every key regularly receives all three types — and
    // every shard sees the same correlation flip at the halfway point.
    let mut b = StreamBuilder::new();
    for phase in 0..2u64 {
        let (bv, cv) = if phase == 0 { (95, 5) } else { (5, 95) };
        let base = phase * 800;
        for i in 0..800u64 {
            let ts = base + i;
            let push = |b: &mut StreamBuilder, tid: u32, key: i64, v: i64| {
                b.push_partitioned(
                    Event::new(t(tid), ts, vec![Value::Int(key), Value::Int(v)]),
                    key as u32,
                );
            };
            push(&mut b, 0, (i % 4) as i64, (i % 100) as i64);
            if i % 4 == 1 {
                push(&mut b, 1, ((i / 4) % 4) as i64, bv);
            }
            if i % 4 == 3 {
                push(&mut b, 2, ((i / 4) % 4) as i64, cv);
            }
        }
    }
    let stream = b.build();
    // SEQ(a, b, c): key equality across positions (partition-local) plus
    // the two value predicates whose selectivities flip.
    let mut pb = PatternBuilder::new(60);
    let evs: Vec<_> = (0..3).map(|i| pb.event(t(i), &format!("e{i}"))).collect();
    for w in evs.windows(2) {
        pb.predicate(Predicate::attr_cmp(w[0].pos(), 0, CmpOp::Eq, w[1].pos(), 0));
    }
    pb.predicate(Predicate::attr_cmp(
        evs[0].pos(),
        1,
        CmpOp::Lt,
        evs[1].pos(),
        1,
    ));
    pb.predicate(Predicate::attr_cmp(
        evs[0].pos(),
        1,
        CmpOp::Lt,
        evs[2].pos(),
        1,
    ));
    let cp = CompiledPattern::compile_single(&pb.seq(evs).unwrap()).unwrap();
    let mut rates = MeasuredStats::default();
    rates.set_rate(t(0), 1.0);
    rates.set_rate(t(1), 0.25);
    rates.set_rate(t(2), 0.25);
    // Key equality is 1-in-4; the value predicates start at 0.95 / 0.05.
    let replanner = PlanReplanner::new(
        vec![(cp, vec![0.25, 0.25, 0.95, 0.05])],
        &rates,
        Planner::default(),
        PlanKind::Order(OrderAlgorithm::DpLd),
        EngineConfig::default(),
    )
    .unwrap()
    .with_selectivity_monitoring(300, 0.5, 256)
    .with_selectivity_min_events(24);
    let mut static_engine = replanner.build();
    let mut expected = run_to_completion(static_engine.as_mut(), &stream, true).matches;
    canonical_sort(&mut expected);
    assert!(!expected.is_empty(), "fixture should produce matches");
    let factory = AdaptiveFactory::new(
        replanner,
        60,
        AdaptiveConfig {
            horizon_ms: 300,
            drift_threshold: 0.5,
            check_every: 32,
            cooldown_events: 64,
            ..AdaptiveConfig::default()
        },
    );
    for shards in [2, 4] {
        let r = ShardedRuntime::with_shards(shards).run(
            &factory,
            &stream,
            RoutingPolicy::Partition,
            true,
        );
        assert_eq!(
            r.matches, expected,
            "{shards}-shard selectivity-adaptive run diverged"
        );
        assert!(
            r.metrics.plan_swaps >= shards as u64,
            "every worker should swap on the correlation flip \
             (got {} swaps across {shards} shards)",
            r.metrics.plan_swaps
        );
        assert!(
            r.metrics.selectivity_samples > 0,
            "per-shard monitors must absorb samples"
        );
        assert!(r.metrics.replayed_events > 0, "swaps must replay state");
    }
}

proptest! {
    /// The tentpole equivalence property: for random partitioned keyed
    /// workloads, all three exact selection strategies, both exact routing
    /// policies, and both engine families, the sharded match set equals the
    /// single-threaded engine's. (Skip-till-next-match is greedy and
    /// interleaving-dependent; see
    /// `next_match_sharded_runs_are_valid_disjoint_and_deterministic`.)
    #[test]
    fn sharded_equals_single_threaded_on_random_workloads(
        raw in prop::collection::vec((0u32..3, 0u64..3, 0i64..4), 1..70),
        shards in 1usize..5,
        strategy_idx in 0usize..3,
        policy_idx in 0usize..2,
    ) {
        let strategy = [
            SelectionStrategy::SkipTillAnyMatch,
            SelectionStrategy::StrictContiguity,
            SelectionStrategy::PartitionContiguity,
        ][strategy_idx];
        let policy = [RoutingPolicy::Partition, RoutingPolicy::HashAttr(0)][policy_idx].clone();
        let mut ts = 0u64;
        let events: Vec<(u32, u64, i64)> = raw
            .into_iter()
            .map(|(tid, dt, key)| {
                ts += dt;
                (tid, ts, key)
            })
            .collect();
        let stream = keyed_stream(events);
        let cp = CompiledPattern::compile_single(&keyed_seq(3, 10, strategy)).unwrap();
        let runtime = ShardedRuntime::with_shards(shards);
        let nfa = nfa_factory(cp.clone());
        let r = runtime.run(&nfa, &stream, policy.clone(), true);
        prop_assert_eq!(r.matches, single_threaded(&nfa, &stream));
        let tree = tree_factory(cp);
        let r = runtime.run(&tree, &stream, policy, true);
        prop_assert_eq!(r.matches, single_threaded(&tree, &stream));
    }
}

// ---------------------------------------------------------------------------
// Replicate-join: cross-partition queries (correlation attr != partition
// attr) must reproduce the single-threaded engine byte for byte at any
// shard count, with cross-shard duplicates suppressed by the merge.
// ---------------------------------------------------------------------------

use cep_core::partition::{QueryPartitioner, TypeDisposition};
use std::sync::Arc as StdArc;

/// An event whose attribute 0 is the *correlation* key and attribute 1 the
/// *channel*; the stream partition mirrors the channel, NOT the key — the
/// cross-partition shape plain hash/partition routing gets wrong.
fn cross_key_stream(events: Vec<(u32, u64, i64, i64)>) -> EventStream {
    let mut b = StreamBuilder::new();
    for (tid, ts, key, chan) in events {
        b.push_partitioned(
            Event::new(t(tid), ts, vec![Value::Int(key), Value::Int(chan)]),
            chan as u32,
        );
    }
    b.build()
}

/// `SEQ(A a, B b, C c)` with `a.0 == b.0` only: A and B are key-linked
/// (partitioned), C is unkeyed (must be replicated for exactness).
fn cross_key_seq(window: u64, strategy: SelectionStrategy) -> Pattern {
    let mut b = PatternBuilder::new(window);
    b.strategy(strategy);
    let a = b.event(t(0), "a");
    let bb = b.event(t(1), "b");
    let c = b.event(t(2), "c");
    b.predicate(Predicate::attr_cmp(a.pos(), 0, CmpOp::Eq, bb.pos(), 0));
    b.seq([a, bb, c]).unwrap()
}

fn replicate_join_policy(cp: &CompiledPattern) -> RoutingPolicy {
    let spec = QueryPartitioner::analyze(std::slice::from_ref(cp), |_| 1.0).unwrap();
    RoutingPolicy::ReplicateJoin(StdArc::new(spec))
}

/// Deterministic cross-key workload: key and channel drawn independently,
/// so key groups straddle channels (and therefore shards under any
/// split-only policy).
fn lcg_cross_key_workload(len: u64, keys: i64, chans: i64, seed: u64) -> Vec<(u32, u64, i64, i64)> {
    let mut state = seed;
    let mut ts = 0u64;
    (0..len)
        .map(|_| {
            state = state
                .wrapping_mul(6364136223846793005)
                .wrapping_add(1442695040888963407);
            let tid = ((state >> 33) % 3) as u32;
            let key = ((state >> 20) % keys as u64) as i64;
            let chan = ((state >> 45) % chans as u64) as i64;
            ts += (state >> 50) % 3;
            (tid, ts, key, chan)
        })
        .collect()
}

/// The acceptance-criterion sweep: shard counts {1, 2, 4, 8, 16}, all
/// three exact strategies, both engine families — byte-identical to the
/// single-threaded engine on a cross-partition query.
#[test]
fn replicate_join_equals_single_threaded_for_every_exact_strategy() {
    let stream = cross_key_stream(lcg_cross_key_workload(160, 4, 5, 0xCA11));
    for strategy in [
        SelectionStrategy::SkipTillAnyMatch,
        SelectionStrategy::StrictContiguity,
        SelectionStrategy::PartitionContiguity,
    ] {
        let cp = CompiledPattern::compile_single(&cross_key_seq(12, strategy)).unwrap();
        let policy = replicate_join_policy(&cp);
        let nfa = nfa_factory(cp.clone());
        let tree = tree_factory(cp);
        let expected_nfa = single_threaded(&nfa, &stream);
        let expected_tree = single_threaded(&tree, &stream);
        for shards in [1usize, 2, 4, 8, 16] {
            let r = ShardedRuntime::with_shards(shards).run(&nfa, &stream, policy.clone(), true);
            assert_eq!(
                r.matches, expected_nfa,
                "nfa {strategy} with {shards} shards diverged"
            );
            assert_eq!(r.match_count, expected_nfa.len() as u64);
            let r = ShardedRuntime::with_shards(shards).run(&tree, &stream, policy.clone(), true);
            assert_eq!(
                r.matches, expected_tree,
                "tree {strategy} with {shards} shards diverged"
            );
        }
    }
}

#[test]
fn replicate_join_agrees_with_naive_oracle() {
    let stream = cross_key_stream(lcg_cross_key_workload(110, 3, 4, 0xFACE));
    let cp =
        CompiledPattern::compile_single(&cross_key_seq(10, SelectionStrategy::SkipTillAnyMatch))
            .unwrap();
    let mut oracle = NaiveEngine::new(cp.clone(), EngineConfig::default());
    let mut expected = run_to_completion(&mut oracle, &stream, true).matches;
    canonical_sort(&mut expected);
    assert!(!expected.is_empty(), "fixture should produce matches");
    let policy = replicate_join_policy(&cp);
    let r = ShardedRuntime::with_shards(4).run(&nfa_factory(cp), &stream, policy, true);
    assert_eq!(
        r.matches.iter().map(|m| m.signature()).collect::<Vec<_>>(),
        expected.iter().map(|m| m.signature()).collect::<Vec<_>>(),
    );
}

/// The classic wrong-answer shape the replicate-join layer exists for:
/// split-only routing silently loses every cross-shard match, while
/// replicate-join recovers the full single-threaded match set.
#[test]
fn replicate_join_recovers_matches_split_routing_loses() {
    let stream = cross_key_stream(lcg_cross_key_workload(200, 4, 7, 0x90DD));
    let cp =
        CompiledPattern::compile_single(&cross_key_seq(12, SelectionStrategy::SkipTillAnyMatch))
            .unwrap();
    let factory = nfa_factory(cp.clone());
    let expected = single_threaded(&factory, &stream);
    assert!(!expected.is_empty(), "fixture should produce matches");
    // Partition routing splits correlation groups across channels: wrong.
    let lossy =
        ShardedRuntime::with_shards(4).run(&factory, &stream, RoutingPolicy::Partition, true);
    assert!(
        lossy.matches.len() < expected.len(),
        "fixture must actually exercise cross-partition correlation \
         ({} lossy vs {} expected)",
        lossy.matches.len(),
        expected.len()
    );
    // Replicate-join recovers exactness.
    let exact =
        ShardedRuntime::with_shards(4).run(&factory, &stream, replicate_join_policy(&cp), true);
    assert_eq!(exact.matches, expected);
    // And run_query refuses the lossy policy outright.
    let err = ShardedRuntime::with_shards(4)
        .run_query(
            &factory,
            &stream,
            RoutingPolicy::Partition,
            std::slice::from_ref(&cp),
            true,
        )
        .unwrap_err();
    assert!(matches!(err, cep_core::error::CepError::Routing(_)));
    let ok = ShardedRuntime::with_shards(4)
        .run_query(
            &factory,
            &stream,
            replicate_join_policy(&cp),
            std::slice::from_ref(&cp),
            true,
        )
        .unwrap();
    assert_eq!(ok.matches, expected);
}

/// A query with no equality structure replicates everything: every shard
/// detects every match and the merge must collapse them to exactly the
/// single-threaded result, counting the suppressed copies.
#[test]
fn replicated_only_matches_are_deduplicated() {
    let stream = cross_key_stream(lcg_cross_key_workload(60, 3, 4, 0xD0D0));
    let mut b = PatternBuilder::new(8);
    let a = b.event(t(0), "a");
    let c = b.event(t(1), "c");
    b.predicate(Predicate::attr_cmp(a.pos(), 0, CmpOp::Lt, c.pos(), 0));
    let cp = CompiledPattern::compile_single(&b.seq([a, c]).unwrap()).unwrap();
    let spec = QueryPartitioner::analyze(std::slice::from_ref(&cp), |_| 1.0).unwrap();
    assert!(spec.is_fully_replicated(), "no keys: everything broadcast");
    let factory = nfa_factory(cp);
    let expected = single_threaded(&factory, &stream);
    assert!(!expected.is_empty(), "fixture should produce matches");
    for shards in [2usize, 4] {
        let r = ShardedRuntime::with_shards(shards).run(
            &factory,
            &stream,
            RoutingPolicy::ReplicateJoin(StdArc::new(spec.clone())),
            true,
        );
        assert_eq!(r.matches, expected, "{shards} shards diverged");
        assert_eq!(
            r.metrics.dedup_hits,
            (shards as u64 - 1) * expected.len() as u64,
            "every shard re-detects every replicated-only match"
        );
        assert_eq!(
            r.per_shard.iter().map(|s| s.match_count).sum::<u64>(),
            shards as u64 * expected.len() as u64
        );
    }
}

#[test]
fn replicate_join_metrics_account_for_broadcast() {
    let events = lcg_cross_key_workload(150, 4, 5, 0xB00);
    let replicated_sources = events.iter().filter(|(tid, ..)| *tid == 2).count() as u64;
    let stream = cross_key_stream(events);
    let cp =
        CompiledPattern::compile_single(&cross_key_seq(10, SelectionStrategy::SkipTillAnyMatch))
            .unwrap();
    let factory = nfa_factory(cp.clone());
    let shards = 4;
    let r = ShardedRuntime::with_shards(shards).run(
        &factory,
        &stream,
        replicate_join_policy(&cp),
        true,
    );
    assert_eq!(
        r.metrics.replicated_events,
        replicated_sources * (shards as u64 - 1),
        "each broadcast event adds shards-1 extra deliveries"
    );
    assert_eq!(
        r.metrics.events_processed,
        stream.len() as u64 + r.metrics.replicated_events,
        "engines see the stream plus the broadcast copies"
    );
    assert_eq!(
        r.per_shard.iter().map(|s| s.events_routed).sum::<u64>(),
        stream.len() as u64 + r.metrics.replicated_events
    );
    // A 1-shard replicate-join run broadcasts nothing extra.
    let r1 =
        ShardedRuntime::with_shards(1).run(&factory, &stream, replicate_join_policy(&cp), true);
    assert_eq!(r1.metrics.replicated_events, 0);
    assert_eq!(r1.metrics.dedup_hits, 0);
}

#[test]
fn replicate_join_uncollected_runs_count_distinct_matches() {
    let stream = cross_key_stream(lcg_cross_key_workload(140, 3, 5, 0xC0DE));
    let cp =
        CompiledPattern::compile_single(&cross_key_seq(10, SelectionStrategy::SkipTillAnyMatch))
            .unwrap();
    let factory = nfa_factory(cp.clone());
    let policy = replicate_join_policy(&cp);
    let collected = ShardedRuntime::with_shards(4).run(&factory, &stream, policy.clone(), true);
    let counted = ShardedRuntime::with_shards(4).run(&factory, &stream, policy, false);
    assert!(counted.matches.is_empty());
    assert_eq!(
        counted.match_count, collected.match_count,
        "uncollected counts must already be deduplicated"
    );
    assert_eq!(counted.metrics.dedup_hits, collected.metrics.dedup_hits);
}

/// Negation under replicate-join, both ways the partitioner can classify
/// the negated type: key-linked (partitioned with the match key) and
/// unkeyed (broadcast so no shard misses a forbidding event).
#[test]
fn replicate_join_with_internal_negation_stays_exact() {
    for keyed_negation in [true, false] {
        let mut b = PatternBuilder::new(14);
        let a = b.event(t(0), "a");
        let n = b.event(t(1), "n");
        let c = b.event(t(2), "c");
        b.predicate(Predicate::attr_cmp(a.pos(), 0, CmpOp::Eq, c.pos(), 0));
        if keyed_negation {
            b.predicate(Predicate::attr_cmp(n.pos(), 0, CmpOp::Eq, a.pos(), 0));
        }
        let ae = b.expr(a);
        let ne = b.not(n);
        let ce = b.expr(c);
        let p = b.seq_exprs([ae, ne, ce]).unwrap();
        let cp = CompiledPattern::compile_single(&p).unwrap();
        let spec = QueryPartitioner::analyze(std::slice::from_ref(&cp), |_| 1.0).unwrap();
        assert_eq!(
            spec.disposition(t(1)),
            Some(if keyed_negation {
                TypeDisposition::Partitioned { attr: 0 }
            } else {
                TypeDisposition::Replicated
            })
        );
        let stream = cross_key_stream(lcg_cross_key_workload(
            150,
            3,
            4,
            0x707 + keyed_negation as u64,
        ));
        let factory = nfa_factory(cp);
        let expected = single_threaded(&factory, &stream);
        assert!(
            !expected.is_empty(),
            "fixture should survive some negations (keyed={keyed_negation})"
        );
        for shards in [2usize, 4, 8] {
            let r = ShardedRuntime::with_shards(shards).run(
                &factory,
                &stream,
                RoutingPolicy::ReplicateJoin(StdArc::new(spec.clone())),
                true,
            );
            assert_eq!(
                r.matches, expected,
                "negation (keyed={keyed_negation}) diverged at {shards} shards"
            );
        }
    }
}

/// A fully keyed query under replicate-join routing broadcasts nothing,
/// so the runtime must keep the flat-memory count-and-discard path (no
/// shard-side match buffering for dedup) while still counting exactly.
#[test]
fn fully_partitioned_replicate_join_keeps_count_and_discard_path() {
    let stream = keyed_stream(lcg_workload(150, 3, 4, 0xFA57));
    let cp =
        CompiledPattern::compile_single(&keyed_seq(3, 12, SelectionStrategy::SkipTillAnyMatch))
            .unwrap();
    let spec = QueryPartitioner::analyze(std::slice::from_ref(&cp), |_| 1.0).unwrap();
    assert!(
        spec.is_fully_partitioned(),
        "keyed query: nothing to broadcast"
    );
    let factory = nfa_factory(cp);
    let expected = single_threaded(&factory, &stream);
    assert!(!expected.is_empty(), "fixture should produce matches");
    let policy = RoutingPolicy::ReplicateJoin(StdArc::new(spec));
    let collected = ShardedRuntime::with_shards(4).run(&factory, &stream, policy.clone(), true);
    assert_eq!(collected.matches, expected);
    let counted = ShardedRuntime::with_shards(4).run(&factory, &stream, policy, false);
    assert!(counted.matches.is_empty());
    assert_eq!(counted.match_count, expected.len() as u64);
    assert_eq!(counted.metrics.replicated_events, 0);
    assert_eq!(counted.metrics.dedup_hits, 0);
    // Without dedup buffering, per-shard counts sum to the total exactly.
    assert_eq!(
        counted.per_shard.iter().map(|s| s.match_count).sum::<u64>(),
        counted.match_count
    );
}

/// Regression for the unsound positive-bridging-through-negation spec:
/// `a.0 == n.0` and `n.0 == c.0` under NOT(N) must not be treated as
/// `a.0 == c.0` — matches may bind different keys for A and C (whenever no
/// violating N exists), so C has to be replicated, and the sharded run
/// must still reproduce the single-threaded match set exactly.
#[test]
fn negation_bridged_positives_stay_exact_under_replicate_join() {
    let mut b = PatternBuilder::new(14);
    let a = b.event(t(0), "a");
    let n = b.event(t(1), "n");
    let c = b.event(t(2), "c");
    b.predicate(Predicate::attr_cmp(a.pos(), 0, CmpOp::Eq, n.pos(), 0));
    b.predicate(Predicate::attr_cmp(n.pos(), 0, CmpOp::Eq, c.pos(), 0));
    let ae = b.expr(a);
    let ne = b.not(n);
    let ce = b.expr(c);
    let p = b.seq_exprs([ae, ne, ce]).unwrap();
    let cp = CompiledPattern::compile_single(&p).unwrap();
    let spec = QueryPartitioner::analyze(std::slice::from_ref(&cp), |_| 1.0).unwrap();
    assert!(
        spec.replicated_types().count() >= 1,
        "one positive side must be replicated: {spec}"
    );
    let stream = cross_key_stream(lcg_cross_key_workload(160, 3, 4, 0xB71D));
    let factory = nfa_factory(cp);
    let expected = single_threaded(&factory, &stream);
    assert!(
        expected.iter().any(|m| {
            m.events()
                .map(|e| e.attr(0).cloned())
                .collect::<Vec<_>>()
                .windows(2)
                .any(|w| w[0] != w[1])
        }),
        "fixture must contain a cross-key (a.0 != c.0) match"
    );
    for shards in [2usize, 4, 8] {
        let r = ShardedRuntime::with_shards(shards).run(
            &factory,
            &stream,
            RoutingPolicy::ReplicateJoin(StdArc::new(spec.clone())),
            true,
        );
        assert_eq!(r.matches, expected, "{shards} shards diverged");
    }
}

proptest! {
    /// Replicate-join tentpole property: for random cross-key workloads,
    /// all three exact strategies, shard counts up to 16, and both engine
    /// families, the merged match vector is byte-identical to the
    /// single-threaded engine's.
    #[test]
    fn replicate_join_equals_single_threaded_on_random_workloads(
        raw in prop::collection::vec((0u32..3, 0u64..3, 0i64..4, 0i64..4), 1..60),
        shards_pow in 0usize..5,
        strategy_idx in 0usize..3,
    ) {
        let strategy = [
            SelectionStrategy::SkipTillAnyMatch,
            SelectionStrategy::StrictContiguity,
            SelectionStrategy::PartitionContiguity,
        ][strategy_idx];
        let shards = 1usize << shards_pow; // 1, 2, 4, 8, 16
        let mut ts = 0u64;
        let events: Vec<(u32, u64, i64, i64)> = raw
            .into_iter()
            .map(|(tid, dt, key, chan)| {
                ts += dt;
                (tid, ts, key, chan)
            })
            .collect();
        let stream = cross_key_stream(events);
        let cp = CompiledPattern::compile_single(&cross_key_seq(10, strategy)).unwrap();
        let policy = replicate_join_policy(&cp);
        let runtime = ShardedRuntime::with_shards(shards);
        let nfa = nfa_factory(cp.clone());
        let r = runtime.run(&nfa, &stream, policy.clone(), true);
        prop_assert_eq!(r.matches, single_threaded(&nfa, &stream));
        let tree = tree_factory(cp);
        let r = runtime.run(&tree, &stream, policy, true);
        prop_assert_eq!(r.matches, single_threaded(&tree, &stream));
    }
}

// ---------------------------------------------------------------------------
// Observability: tracing a sharded run must not change its output, and the
// emitted records must describe the run faithfully.
// ---------------------------------------------------------------------------

use cep_obs::{validate_prometheus, MetricsRegistry, RingSink, TraceRecord, Tracer};

proptest! {
    /// Tracing only observes: for random keyed workloads and shard counts,
    /// the traced run's matches are byte-identical to the untraced run's,
    /// and every record in the ring survives a JSONL round trip exactly.
    #[test]
    fn traced_sharded_run_is_byte_identical_to_untraced(
        raw in prop::collection::vec((0u32..3, 0u64..3, 0i64..4), 1..70),
        shards in 1usize..5,
    ) {
        let mut ts = 0u64;
        let events: Vec<(u32, u64, i64)> = raw
            .into_iter()
            .map(|(tid, dt, key)| {
                ts += dt;
                (tid, ts, key)
            })
            .collect();
        let stream = keyed_stream(events);
        let cp = CompiledPattern::compile_single(&keyed_seq(
            3,
            10,
            SelectionStrategy::SkipTillAnyMatch,
        ))
        .unwrap();
        let factory = nfa_factory(cp);
        let plain = ShardedRuntime::with_shards(shards)
            .run(&factory, &stream, RoutingPolicy::Partition, true);
        let ring = StdArc::new(RingSink::new(1 << 16));
        let traced = ShardedRuntime::with_shards(shards)
            .with_tracer(Tracer::to_sink(ring.clone()))
            .run(&factory, &stream, RoutingPolicy::Partition, true);
        prop_assert_eq!(&traced.matches, &plain.matches);
        prop_assert_eq!(traced.match_count, plain.match_count);
        let records = ring.snapshot();
        prop_assert!(!records.is_empty(), "traced run emitted no records");
        for r in &records {
            let line = r.to_json();
            let back = TraceRecord::from_json(&line).expect("trace line parses");
            prop_assert_eq!(&back.to_json(), &line);
        }
    }
}

#[test]
fn shard_trace_records_describe_routing_and_queue_depths() {
    let config = ShardConfig {
        shards: 3,
        batch_size: 8,
        queue_batches: 2,
    };
    let stream = keyed_stream(lcg_workload(400, 3, 6, 0xD47A));
    let cp =
        CompiledPattern::compile_single(&keyed_seq(3, 12, SelectionStrategy::SkipTillAnyMatch))
            .unwrap();
    let factory = nfa_factory(cp);
    let ring = StdArc::new(RingSink::new(1 << 16));
    let r = ShardedRuntime::new(config.clone())
        .with_tracer(Tracer::to_sink(ring.clone()))
        .run(&factory, &stream, RoutingPolicy::HashAttr(0), true);

    let records = ring.snapshot();
    assert_eq!(
        ring.total_emitted(),
        records.len() as u64,
        "ring overflowed"
    );
    let mut routes = 0u64;
    let mut batch_events = vec![0u64; config.shards];
    for rec in &records {
        match rec {
            TraceRecord::ShardRoute {
                seq,
                shard,
                broadcast,
                ..
            } => {
                assert_eq!(seq % 64, 0, "route sampling is every 64th seq");
                assert!(!broadcast, "hash routing never broadcasts");
                assert!((*shard as usize) < config.shards);
                routes += 1;
            }
            TraceRecord::ShardBatch {
                shard,
                len,
                queue_depth,
            } => {
                assert!((*shard as usize) < config.shards);
                assert!(*len >= 1 && *len <= config.batch_size as u64);
                // Depth counts batches incremented at send and decremented
                // at receive: bounded by the channel capacity, plus the
                // batch being sent, plus one the worker has received but
                // not yet decremented.
                assert!(
                    *queue_depth >= 1 && *queue_depth <= config.queue_batches as u64 + 2,
                    "queue depth {queue_depth} out of range"
                );
                batch_events[*shard as usize] += len;
            }
            other => panic!("unexpected record kind {:?}", other.kind()),
        }
    }
    // Every 64th seq of the 400-event stream is sampled: seq 0, 64, ... 384.
    assert_eq!(routes, 7);
    for (shard, stats) in r.per_shard.iter().enumerate() {
        assert_eq!(
            batch_events[shard], stats.events_routed,
            "batch records must account for every routed event"
        );
    }
}

#[test]
fn export_exposes_per_shard_busy_times_and_imbalance() {
    let stream = keyed_stream(lcg_workload(300, 3, 5, 0xBA1A));
    let cp =
        CompiledPattern::compile_single(&keyed_seq(3, 12, SelectionStrategy::SkipTillAnyMatch))
            .unwrap();
    let factory = nfa_factory(cp);
    let r = ShardedRuntime::with_shards(4).run(&factory, &stream, RoutingPolicy::Partition, true);

    let ratio = r.imbalance_ratio();
    assert!(
        ratio.is_finite() && ratio >= 1.0,
        "ratio {ratio} out of range"
    );
    assert!(ratio <= 4.0, "ratio {ratio} cannot exceed the shard count");

    let mut reg = MetricsRegistry::new();
    r.export(&mut reg, &[("run", "test")]);
    let text = reg.render_prometheus();
    validate_prometheus(&text).unwrap_or_else(|e| panic!("{e}\n---\n{text}"));
    // The merged snapshot collapses per-shard wall times; the export must
    // surface one busy-time sample per shard so skew stays measurable.
    for shard in 0..4 {
        assert!(
            text.contains(&format!(
                "cep_shard_busy_ns_total{{run=\"test\",shard=\"{shard}\"}}"
            )),
            "missing per-shard busy time for shard {shard}:\n{text}"
        );
    }
    assert!(text.contains("cep_shard_imbalance_ratio{run=\"test\"}"));
    let json = reg.render_json();
    let doc = cep_obs::json::parse(&json).expect("registry JSON parses");
    assert!(doc.get("metrics").is_some());
}

#[test]
fn untraced_runtime_keeps_disabled_tracer() {
    let ring = StdArc::new(RingSink::new(16));
    let stream = keyed_stream(lcg_workload(50, 3, 4, 0x0FF));
    let cp =
        CompiledPattern::compile_single(&keyed_seq(3, 10, SelectionStrategy::SkipTillAnyMatch))
            .unwrap();
    let factory = nfa_factory(cp);
    let tracer = Tracer::to_sink(ring.clone());
    tracer.set_enabled(false);
    ShardedRuntime::with_shards(2).with_tracer(tracer).run(
        &factory,
        &stream,
        RoutingPolicy::Partition,
        false,
    );
    assert_eq!(ring.total_emitted(), 0, "disabled tracer must stay silent");
}

// ---------------------------------------------------------------------------
// Multi-query shard layout: `run_registry` routes each partition once and
// feeds every registered query on that shard. Ground truth is one
// independent single-threaded engine per query.
// ---------------------------------------------------------------------------

use cep_core::compiled::PredicateProgram;
use cep_core::error::CepError;
use cep_core::plan::OrderPlan;
use cep_core::registry::{FragmentBuilder, QueryId, RegistrySpec};

/// Fragment builder over the lazy NFA with the trivial plan, threading the
/// registry's cached predicate program through.
fn nfa_fragment_builder(cfg: EngineConfig) -> StdArc<dyn FragmentBuilder> {
    StdArc::new(
        move |cp: &CompiledPattern, program: Option<StdArc<PredicateProgram>>| {
            let plan = OrderPlan::trivial(cp);
            Ok(Box::new(NfaEngine::with_program(
                cp.clone(),
                plan,
                cfg.clone(),
                program,
            )?) as Box<dyn Engine>)
        },
    )
}

/// Per-query single-threaded ground truth in canonical merge order.
fn expected_per_query(patterns: &[Pattern], stream: &EventStream) -> Vec<Vec<Match>> {
    patterns
        .iter()
        .map(|p| {
            let cp = CompiledPattern::compile_single(p).unwrap();
            let factory = nfa_factory(cp);
            single_threaded(&factory, stream)
        })
        .collect()
}

#[test]
fn run_registry_equals_independent_engines_per_query() {
    let stream = keyed_stream(lcg_workload(200, 3, 4, 0xBEEF));
    // Three queries, two of them identical: the registry shares one
    // fragment between q0 and q2, and q1 rides the same routed stream.
    let patterns = vec![
        keyed_seq(2, 10, SelectionStrategy::SkipTillAnyMatch),
        keyed_seq(3, 12, SelectionStrategy::SkipTillAnyMatch),
        keyed_seq(2, 10, SelectionStrategy::SkipTillAnyMatch),
    ];
    let expected = expected_per_query(&patterns, &stream);
    let cfg = EngineConfig::default();
    let mut spec = RegistrySpec::new(nfa_fragment_builder(cfg.clone()), cfg);
    let ids: Vec<QueryId> = patterns.iter().map(|p| spec.add(p).unwrap()).collect();
    for shards in [1usize, 2, 4] {
        let r = ShardedRuntime::with_shards(shards)
            .run_registry(&spec, &stream, RoutingPolicy::HashAttr(0), true)
            .unwrap();
        for (i, id) in ids.iter().enumerate() {
            assert_eq!(
                r.per_query[id], expected[i],
                "query {id} with {shards} shards diverged"
            );
            assert_eq!(r.match_counts[id], expected[i].len() as u64);
        }
        let total: usize = expected.iter().map(Vec::len).sum();
        assert_eq!(r.match_count, total as u64);
        assert_eq!(r.per_shard.len(), shards);
        // Every worker registered the whole set and shared the duplicate.
        assert_eq!(r.metrics.registered_queries, 3 * shards as u64);
        assert_eq!(r.metrics.shared_fragments, shards as u64);
        assert!(r.metrics.fanout_emits >= r.match_count);
    }
}

#[test]
fn run_registry_replicate_join_dedups_per_query() {
    let stream = cross_key_stream(lcg_cross_key_workload(160, 4, 5, 0x5EED));
    let pattern = cross_key_seq(12, SelectionStrategy::SkipTillAnyMatch);
    let cp = CompiledPattern::compile_single(&pattern).unwrap();
    let policy = replicate_join_policy(&cp);
    // The same cross-partition query registered twice: replicated-only
    // matches surface on every shard and must be deduplicated per query.
    let patterns = vec![pattern.clone(), pattern];
    let expected = expected_per_query(&patterns, &stream);
    let cfg = EngineConfig::default();
    let mut spec = RegistrySpec::new(nfa_fragment_builder(cfg.clone()), cfg);
    let ids: Vec<QueryId> = patterns.iter().map(|p| spec.add(p).unwrap()).collect();
    for shards in [1usize, 2, 4, 8] {
        let r = ShardedRuntime::with_shards(shards)
            .run_registry(&spec, &stream, policy.clone(), true)
            .unwrap();
        for (i, id) in ids.iter().enumerate() {
            assert_eq!(
                r.per_query[id], expected[i],
                "query {id} with {shards} shards diverged"
            );
        }
        if shards > 1 {
            assert!(
                r.metrics.replicated_events > 0,
                "replicate-join broadcastings must be accounted"
            );
        }
    }
}

#[test]
fn run_registry_uncollected_still_counts_per_query() {
    let stream = keyed_stream(lcg_workload(200, 3, 4, 0xBEEF));
    let patterns = vec![
        keyed_seq(2, 10, SelectionStrategy::SkipTillAnyMatch),
        keyed_seq(3, 12, SelectionStrategy::SkipTillAnyMatch),
    ];
    let expected = expected_per_query(&patterns, &stream);
    let cfg = EngineConfig::default();
    let mut spec = RegistrySpec::new(nfa_fragment_builder(cfg.clone()), cfg);
    let ids: Vec<QueryId> = patterns.iter().map(|p| spec.add(p).unwrap()).collect();
    let r = ShardedRuntime::with_shards(3)
        .run_registry(&spec, &stream, RoutingPolicy::HashAttr(0), false)
        .unwrap();
    for (i, id) in ids.iter().enumerate() {
        assert!(
            r.per_query[id].is_empty(),
            "uncollected run buffered matches"
        );
        assert_eq!(r.match_counts[id], expected[i].len() as u64);
    }
}

#[test]
fn run_registry_rejects_policy_unsound_for_any_member() {
    // q0 is partition-local on attribute 0; q1 joins across keys —
    // hash-attr routing is sound for the first but not the set.
    let cfg = EngineConfig::default();
    let mut spec = RegistrySpec::new(nfa_fragment_builder(cfg.clone()), cfg);
    spec.add(&keyed_seq(2, 10, SelectionStrategy::SkipTillAnyMatch))
        .unwrap();
    spec.add(&cross_key_seq(12, SelectionStrategy::SkipTillAnyMatch))
        .unwrap();
    let stream = keyed_stream(lcg_workload(10, 3, 4, 1));
    let err = ShardedRuntime::with_shards(2)
        .run_registry(&spec, &stream, RoutingPolicy::HashAttr(0), true)
        .unwrap_err();
    assert!(matches!(err, CepError::Routing(_)), "got {err:?}");
}

#[test]
fn run_registry_empty_spec_is_a_routing_error() {
    let cfg = EngineConfig::default();
    let spec = RegistrySpec::new(nfa_fragment_builder(cfg.clone()), cfg);
    let stream = keyed_stream(vec![]);
    let err = ShardedRuntime::with_shards(2)
        .run_registry(&spec, &stream, RoutingPolicy::RoundRobin, true)
        .unwrap_err();
    assert!(matches!(err, CepError::Routing(_)), "got {err:?}");
}
