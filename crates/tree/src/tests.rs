//! Oracle-equivalence and plan-quality tests for the tree engine.

use crate::TreeEngine;
use cep_core::compile::CompiledPattern;
use cep_core::engine::{run_to_completion, EngineConfig};
use cep_core::event::{Event, TypeId};
use cep_core::matches::{validate_match, Match};
use cep_core::naive::NaiveEngine;
use cep_core::pattern::{Pattern, PatternBuilder};
use cep_core::plan::{OrderPlan, TreeNode, TreePlan};
use cep_core::predicate::{CmpOp, Predicate};
use cep_core::selection::SelectionStrategy;
use cep_core::stream::StreamBuilder;
use cep_core::value::Value;

fn t(i: u32) -> TypeId {
    TypeId(i)
}

fn ev(tid: u32, ts: u64, x: i64) -> Event {
    Event::new(t(tid), ts, vec![Value::Int(x)])
}

fn stream(events: Vec<Event>) -> Vec<cep_core::event::EventRef> {
    let mut b = StreamBuilder::new();
    for e in events {
        b.push(e);
    }
    b.build()
}

fn signatures(ms: &[Match]) -> Vec<Vec<(usize, Vec<u64>)>> {
    let mut sigs: Vec<_> = ms.iter().map(|m| m.signature()).collect();
    sigs.sort();
    sigs
}

/// Every binary tree shape over every leaf permutation of `n` elements.
fn all_trees(n: usize) -> Vec<TreeNode> {
    fn shapes(leaves: &[usize]) -> Vec<TreeNode> {
        if leaves.len() == 1 {
            return vec![TreeNode::Leaf(leaves[0])];
        }
        let mut out = Vec::new();
        for split in 1..leaves.len() {
            for l in shapes(&leaves[..split]) {
                for r in shapes(&leaves[split..]) {
                    out.push(TreeNode::join(l.clone(), r));
                }
            }
        }
        out
    }
    fn perms(n: usize) -> Vec<Vec<usize>> {
        fn rec(rest: Vec<usize>, acc: Vec<usize>, out: &mut Vec<Vec<usize>>) {
            if rest.is_empty() {
                out.push(acc);
                return;
            }
            for (i, &x) in rest.iter().enumerate() {
                let mut rest2 = rest.clone();
                rest2.remove(i);
                let mut acc2 = acc.clone();
                acc2.push(x);
                rec(rest2, acc2, out);
            }
        }
        let mut out = Vec::new();
        rec((0..n).collect(), Vec::new(), &mut out);
        out
    }
    let mut out = Vec::new();
    for p in perms(n) {
        out.extend(shapes(&p));
    }
    out
}

/// Runs the tree engine under every tree plan and asserts identical
/// results to the naive oracle.
fn assert_all_trees_match_oracle(pattern: &Pattern, events: Vec<Event>) {
    let cp = CompiledPattern::compile_single(pattern).unwrap();
    let s = stream(events);
    let mut oracle = NaiveEngine::new(cp.clone(), EngineConfig::default());
    let expected = signatures(&run_to_completion(&mut oracle, &s, true).matches);
    for tree in all_trees(cp.n()) {
        let plan = TreePlan::new(tree.clone()).unwrap();
        let mut engine = TreeEngine::new(cp.clone(), plan, EngineConfig::default()).unwrap();
        let r = run_to_completion(&mut engine, &s, true);
        for m in &r.matches {
            validate_match(&cp, m).unwrap();
        }
        assert_eq!(
            signatures(&r.matches),
            expected,
            "tree {tree} disagrees with oracle"
        );
    }
}

#[test]
fn sequence_all_trees_match_oracle() {
    let mut b = PatternBuilder::new(10);
    let a = b.event(t(0), "a");
    let c = b.event(t(1), "c");
    let d = b.event(t(2), "d");
    b.predicate(Predicate::attr_cmp(a.pos(), 0, CmpOp::Lt, d.pos(), 0));
    let p = b.seq([a, c, d]).unwrap();
    let events = vec![
        ev(0, 1, 3),
        ev(1, 2, 0),
        ev(0, 3, 7),
        ev(2, 4, 5),
        ev(1, 5, 0),
        ev(2, 6, 9),
        ev(0, 7, 1),
        ev(2, 8, 2),
    ];
    assert_all_trees_match_oracle(&p, events);
}

#[test]
fn conjunction_all_trees_match_oracle() {
    let mut b = PatternBuilder::new(6);
    let a = b.event(t(0), "a");
    let c = b.event(t(1), "c");
    let d = b.event(t(2), "d");
    b.predicate(Predicate::attr_cmp(a.pos(), 0, CmpOp::Le, c.pos(), 0));
    let p = b.and([a, c, d]).unwrap();
    let events = vec![
        ev(2, 1, 0),
        ev(1, 2, 4),
        ev(0, 3, 4),
        ev(1, 4, 1),
        ev(0, 5, 9),
        ev(2, 6, 0),
        ev(0, 7, 0),
    ];
    assert_all_trees_match_oracle(&p, events);
}

#[test]
fn duplicate_types_all_trees_match_oracle() {
    let mut b = PatternBuilder::new(10);
    let a1 = b.event(t(0), "a1");
    let a2 = b.event(t(0), "a2");
    let p = b.seq([a1, a2]).unwrap();
    assert_all_trees_match_oracle(&p, vec![ev(0, 1, 0), ev(0, 2, 0), ev(0, 3, 0)]);
}

#[test]
fn negation_all_trees_match_oracle() {
    let mut b = PatternBuilder::new(10);
    let a = b.event(t(0), "a");
    let nb = b.event(t(1), "nb");
    let c = b.event(t(2), "c");
    b.predicate(Predicate::attr_cmp(a.pos(), 0, CmpOp::Eq, nb.pos(), 0));
    let ae = b.expr(a);
    let ne = b.not(nb);
    let ce = b.expr(c);
    let p = b.seq_exprs([ae, ne, ce]).unwrap();
    let events = vec![
        ev(0, 1, 1),
        ev(1, 2, 1),
        ev(0, 3, 2),
        ev(2, 4, 0),
        ev(1, 5, 2),
        ev(2, 6, 0),
    ];
    assert_all_trees_match_oracle(&p, events);
}

#[test]
fn trailing_negation_all_trees_match_oracle() {
    let mut b = PatternBuilder::new(5);
    let a = b.event(t(0), "a");
    let c = b.event(t(1), "c");
    let nb = b.event(t(2), "nb");
    let ae = b.expr(a);
    let ce = b.expr(c);
    let ne = b.not(nb);
    let p = b.seq_exprs([ae, ce, ne]).unwrap();
    let events = vec![
        ev(0, 1, 0),
        ev(1, 2, 0),
        ev(2, 3, 0),
        ev(0, 10, 0),
        ev(1, 11, 0),
    ];
    assert_all_trees_match_oracle(&p, events);
}

#[test]
fn kleene_all_trees_match_oracle() {
    let mut b = PatternBuilder::new(10);
    let a = b.event(t(0), "a");
    let k = b.event(t(1), "k");
    let c = b.event(t(2), "c");
    let ae = b.expr(a);
    let ke = b.kleene(k);
    let ce = b.expr(c);
    let p = b.seq_exprs([ae, ke, ce]).unwrap();
    let events = vec![
        ev(0, 1, 0),
        ev(1, 2, 0),
        ev(1, 3, 0),
        ev(2, 4, 0),
        ev(1, 5, 0),
        ev(2, 6, 0),
    ];
    assert_all_trees_match_oracle(&p, events);
}

#[test]
fn strict_contiguity_all_trees_match_oracle() {
    let mut b = PatternBuilder::new(10);
    b.strategy(SelectionStrategy::StrictContiguity);
    let a = b.event(t(0), "a");
    let c = b.event(t(1), "c");
    let p = b.seq([a, c]).unwrap();
    let events = vec![
        ev(0, 1, 0),
        ev(1, 2, 0),
        ev(0, 3, 0),
        ev(2, 4, 0),
        ev(1, 5, 0),
    ];
    assert_all_trees_match_oracle(&p, events);
}

#[test]
fn next_match_matches_are_disjoint() {
    let mut b = PatternBuilder::new(10);
    b.strategy(SelectionStrategy::SkipTillNextMatch);
    let a = b.event(t(0), "a");
    let c = b.event(t(1), "c");
    let p = b.seq([a, c]).unwrap();
    let cp = CompiledPattern::compile_single(&p).unwrap();
    let s = stream(vec![ev(0, 1, 0), ev(0, 2, 0), ev(1, 3, 0), ev(1, 4, 0)]);
    let mut engine = TreeEngine::with_trivial_plan(cp.clone(), EngineConfig::default());
    let r = run_to_completion(&mut engine, &s, true);
    let mut used = std::collections::HashSet::new();
    for m in &r.matches {
        for e in m.events() {
            assert!(used.insert(e.seq), "event reused under next-match");
        }
        validate_match(&cp, m).unwrap();
    }
    assert!(!r.matches.is_empty());
}

#[test]
fn nfa_and_tree_agree_on_random_streams() {
    // Cross-engine agreement without the oracle in the loop.
    use cep_nfa::NfaEngine;
    let mut b = PatternBuilder::new(12);
    let a = b.event(t(0), "a");
    let c = b.event(t(1), "c");
    let d = b.event(t(2), "d");
    b.predicate(Predicate::attr_cmp(a.pos(), 0, CmpOp::Ne, c.pos(), 0));
    let p = b.seq([a, c, d]).unwrap();
    let cp = CompiledPattern::compile_single(&p).unwrap();
    // Deterministic pseudo-random stream.
    let mut events = Vec::new();
    let mut state = 12345u64;
    for i in 0..120u64 {
        state = state
            .wrapping_mul(6364136223846793005)
            .wrapping_add(1442695040888963407);
        let tid = (state >> 33) % 4;
        let x = ((state >> 20) % 5) as i64;
        events.push(ev(tid as u32, i, x));
    }
    let s = stream(events);
    let mut nfa = NfaEngine::new(
        cp.clone(),
        OrderPlan::new(vec![2, 0, 1]).unwrap(),
        EngineConfig::default(),
    )
    .unwrap();
    let nfa_res = run_to_completion(&mut nfa, &s, true);
    let tree = TreePlan::new(TreeNode::join(
        TreeNode::Leaf(1),
        TreeNode::join(TreeNode::Leaf(0), TreeNode::Leaf(2)),
    ))
    .unwrap();
    let mut te = TreeEngine::new(cp.clone(), tree, EngineConfig::default()).unwrap();
    let tree_res = run_to_completion(&mut te, &s, true);
    assert_eq!(signatures(&nfa_res.matches), signatures(&tree_res.matches));
    assert!(
        !nfa_res.matches.is_empty(),
        "fixture should produce matches"
    );
}

#[test]
fn window_pruning_bounds_state() {
    let mut b = PatternBuilder::new(5);
    let a = b.event(t(0), "a");
    let c = b.event(t(1), "c");
    let p = b.seq([a, c]).unwrap();
    let cp = CompiledPattern::compile_single(&p).unwrap();
    let mut events = Vec::new();
    for i in 0..2000u64 {
        events.push(ev(0, i * 3, 0));
    }
    let s = stream(events);
    let mut engine = TreeEngine::with_trivial_plan(cp, EngineConfig::default());
    let r = run_to_completion(&mut engine, &s, true);
    assert!(
        r.metrics.peak_partial_matches < 70,
        "{}",
        r.metrics.peak_partial_matches
    );
    assert!(r.matches.is_empty());
}

#[test]
fn bushy_tree_beats_left_deep_on_selective_outer_pair() {
    // Figure 3's scenario: SEQ(A,B,C) with a highly selective predicate
    // between A and C. The ((A C) B) tree stores far fewer partial
    // matches than left-deep ((A B) C).
    let mut b = PatternBuilder::new(1000);
    let a = b.event(t(0), "a");
    let bb = b.event(t(1), "b");
    let c = b.event(t(2), "c");
    b.predicate(Predicate::attr_cmp(a.pos(), 0, CmpOp::Eq, c.pos(), 0));
    let p = b.seq([a, bb, c]).unwrap();
    let cp = CompiledPattern::compile_single(&p).unwrap();
    let mut events = Vec::new();
    let mut ts = 0u64;
    for i in 0..100i64 {
        events.push(ev(0, ts, i));
        ts += 1;
        events.push(ev(1, ts, i));
        ts += 1;
        events.push(ev(2, ts, i + 1_000_000)); // never equal to any a.x
        ts += 1;
    }
    let s = stream(events);
    let left_deep = TreePlan::new(TreeNode::join(
        TreeNode::join(TreeNode::Leaf(0), TreeNode::Leaf(1)),
        TreeNode::Leaf(2),
    ))
    .unwrap();
    let bushy_ac = TreePlan::new(TreeNode::join(
        TreeNode::join(TreeNode::Leaf(0), TreeNode::Leaf(2)),
        TreeNode::Leaf(1),
    ))
    .unwrap();
    let mut e1 = TreeEngine::new(cp.clone(), left_deep, EngineConfig::default()).unwrap();
    let r1 = run_to_completion(&mut e1, &s, true);
    let mut e2 = TreeEngine::new(cp.clone(), bushy_ac, EngineConfig::default()).unwrap();
    let r2 = run_to_completion(&mut e2, &s, true);
    assert_eq!(signatures(&r1.matches), signatures(&r2.matches));
    assert!(
        r2.metrics.partial_matches_created < r1.metrics.partial_matches_created,
        "(a c) first: {} vs left-deep: {}",
        r2.metrics.partial_matches_created,
        r1.metrics.partial_matches_created
    );
}
