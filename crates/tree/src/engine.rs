//! The instance-based tree engine (Section 2.3, after ZStream [35]).
//!
//! The engine follows a [`TreePlan`]: events are routed to the leaves, and
//! partial matches climb towards the root. Per the paper's modification of
//! ZStream from batch iteration to arbitrary time windows, a separate
//! instance is kept for every currently viable partial match: whenever a
//! new instance is created at a node, it is combined with the instances
//! stored at the *sibling* node, producing new instances at the parent —
//! a symmetric-join discipline that counts every pair exactly once.

use cep_core::buffer::TypeBuffers;
use cep_core::compile::CompiledPattern;
use cep_core::compiled::PredicateProgram;
use cep_core::engine::{Engine, EngineConfig};
use cep_core::error::CepError;
use cep_core::event::{EventRef, Timestamp};
use cep_core::instance::{
    compatible_with, contiguity_ok, merge_compatible_with, retain_or_retire, Instance,
    InstanceArena,
};
use cep_core::matches::Match;
use cep_core::metrics::EngineMetrics;
use cep_core::negation::DeferredStore;
use cep_core::plan::{TreeNode, TreePlan};
use std::collections::HashSet;
use std::sync::Arc;

/// A flattened tree-plan node.
#[derive(Debug, Clone)]
enum NodeKind {
    Leaf { elem: usize },
    Internal { left: usize, right: usize },
}

#[derive(Debug, Clone)]
struct NodeSpec {
    kind: NodeKind,
    parent: Option<usize>,
    sibling: Option<usize>,
}

/// Tree-based (ZStream-style) evaluation engine.
pub struct TreeEngine {
    cp: CompiledPattern,
    cfg: EngineConfig,
    /// Compiled predicate program (`None` = interpreted evaluation).
    program: Option<Arc<PredicateProgram>>,
    nodes: Vec<NodeSpec>,
    root: usize,
    /// Instances stored at each node, within the window.
    stores: Vec<Vec<Instance>>,
    arena: InstanceArena,
    /// Buffered events of negated types (for negation checks only; positive
    /// events live in the leaf stores).
    buffers: TypeBuffers,
    deferred: DeferredStore,
    consumed: HashSet<u64>,
    watermark: Timestamp,
    events_since_prune: u64,
    metrics: EngineMetrics,
}

impl TreeEngine {
    /// Builds an engine for one compiled pattern branch and a tree plan.
    ///
    /// When [`EngineConfig::compiled_predicates`] is set (the default) the
    /// pattern's predicates are lowered into a [`PredicateProgram`] here;
    /// use [`TreeEngine::with_program`] to supply an already-compiled
    /// (cached) program instead.
    pub fn new(
        cp: CompiledPattern,
        plan: TreePlan,
        cfg: EngineConfig,
    ) -> Result<TreeEngine, CepError> {
        TreeEngine::with_program(cp, plan, cfg, None)
    }

    /// [`TreeEngine::new`] with an optional pre-compiled program (typically
    /// from a [`cep_core::compiled::PlanCache`]), avoiding recompilation.
    /// With `compiled_predicates` disabled in `cfg`, the program is ignored
    /// and the engine interprets predicates — the config toggle wins so the
    /// interpreted baseline stays measurable.
    pub fn with_program(
        cp: CompiledPattern,
        plan: TreePlan,
        cfg: EngineConfig,
        program: Option<Arc<PredicateProgram>>,
    ) -> Result<TreeEngine, CepError> {
        plan.validate(&cp)?;
        let program = if cfg.compiled_predicates {
            program.or_else(|| Some(Arc::new(PredicateProgram::compile(&cp))))
        } else {
            None
        };
        let mut nodes = Vec::new();
        let root = flatten(&plan.root, &mut nodes);
        // Fill parent/sibling links.
        for i in 0..nodes.len() {
            if let NodeKind::Internal { left, right } = nodes[i].kind {
                nodes[left].parent = Some(i);
                nodes[left].sibling = Some(right);
                nodes[right].parent = Some(i);
                nodes[right].sibling = Some(left);
            }
        }
        let stores = vec![Vec::new(); nodes.len()];
        Ok(TreeEngine {
            cp,
            cfg,
            program,
            nodes,
            root,
            stores,
            arena: InstanceArena::new(),
            buffers: TypeBuffers::new(),
            deferred: DeferredStore::new(),
            consumed: HashSet::new(),
            watermark: 0,
            events_since_prune: 0,
            metrics: EngineMetrics::new(),
        })
    }

    /// Convenience constructor using the left-deep tree over specification
    /// order.
    pub fn with_trivial_plan(cp: CompiledPattern, cfg: EngineConfig) -> TreeEngine {
        let plan = TreePlan::left_deep(&cep_core::plan::OrderPlan::trivial(&cp));
        TreeEngine::new(cp, plan, cfg).expect("trivial plan always fits")
    }

    fn live_instances(&self) -> usize {
        self.stores.iter().map(|s| s.len()).sum::<usize>() + self.deferred.len()
    }

    /// The compiled predicate program driving this engine (`None` when
    /// interpreting).
    pub fn program(&self) -> Option<&Arc<PredicateProgram>> {
        self.program.as_ref()
    }

    /// Arena statistics: `(instances derived, shells reused)`.
    pub fn arena_stats(&self) -> (u64, u64) {
        (self.arena.allocs(), self.arena.reuses())
    }

    fn emit(&mut self, m: Match, out: &mut Vec<Match>) {
        if self.cp.strategy.consumes() {
            if m.events().any(|e| self.consumed.contains(&e.seq)) {
                return;
            }
            for e in m.events() {
                self.consumed.insert(e.seq);
            }
            let consumed = &self.consumed;
            for store in &mut self.stores {
                retain_or_retire(store, &mut self.arena, |i| !i.intersects(consumed));
            }
        }
        self.metrics.matches_emitted += 1;
        out.push(m);
    }

    fn release_deferred(&mut self, watermark: Timestamp, out: &mut Vec<Match>) {
        if self.cp.negated.is_empty() {
            return;
        }
        let mut ready = Vec::new();
        self.deferred.drain_ready(watermark, &mut ready);
        for m in ready {
            self.emit(m, out);
        }
    }

    fn finalize(&mut self, inst: Instance, out: &mut Vec<Match>) {
        if !contiguity_ok(&self.cp, &inst) {
            return;
        }
        let m = Match {
            bindings: inst
                .bindings
                .into_iter()
                .enumerate()
                .map(|(i, b)| {
                    (
                        self.cp.elements[i].position,
                        b.expect("root instances bind every element"),
                    )
                })
                .collect(),
            last_ts: inst.max_ts,
            emitted_at: self.watermark,
        };
        if self.cp.negated.is_empty() {
            self.emit(m, out);
            return;
        }
        if let Some(m) = self
            .deferred
            .admit(&self.cp, m, self.watermark, &self.buffers)
        {
            self.emit(m, out);
        }
    }

    /// A freshly created instance at `node` combines with the sibling store
    /// and recurses upward; at the root it becomes a match.
    fn propagate(&mut self, node: usize, inst: Instance, out: &mut Vec<Match>) {
        self.metrics.partial_matches_created += 1;
        if node == self.root {
            // Root instances are full matches; nothing joins against them.
            self.finalize(inst, out);
            return;
        }
        let parent = self.nodes[node].parent.expect("non-root has a parent");
        let sibling = self.nodes[node].sibling.expect("non-root has a sibling");
        self.stores[node].push(inst.clone());
        // Symmetric join with the sibling's current store: every (new, old)
        // pair is considered exactly once, at the newer side's creation.
        let merged: Vec<Instance> = {
            let cp = &self.cp;
            let prog = self.program.as_deref();
            let consumed = &self.consumed;
            let metrics = &mut self.metrics;
            let arena = &mut self.arena;
            self.stores[sibling]
                .iter()
                .filter(|s| merge_compatible_with(cp, prog, &inst, s, consumed, metrics))
                .map(|s| arena.merge(&inst, s))
                .collect()
        };
        for m in merged {
            self.propagate(parent, m, out);
        }
    }

    /// Handles an event arriving at a leaf.
    fn leaf_arrival(&mut self, leaf: usize, event: &EventRef, out: &mut Vec<Match>) {
        let elem = match self.nodes[leaf].kind {
            NodeKind::Leaf { elem } => elem,
            NodeKind::Internal { .. } => unreachable!("leaf_arrival on internal node"),
        };
        let empty = Instance::empty(self.cp.n());
        if !compatible_with(
            &self.cp,
            self.program.as_deref(),
            &empty,
            elem,
            event,
            &self.consumed,
            &mut self.metrics,
        ) {
            return;
        }
        if self.cp.elements[elem].kleene {
            // Grow every stored accumulator (gated by serial number so each
            // subset appears exactly once), then seed the singleton set.
            let grown: Vec<Instance> = {
                let cp = &self.cp;
                let prog = self.program.as_deref();
                let cfg = &self.cfg;
                let consumed = &self.consumed;
                let metrics = &mut self.metrics;
                let arena = &mut self.arena;
                self.stores[leaf]
                    .iter()
                    .filter(|i| {
                        event.seq >= i.kl_gate
                            && i.kleene_len(elem) < cfg.max_kleene_events
                            && compatible_with(cp, prog, i, elem, event, consumed, metrics)
                    })
                    .map(|i| arena.with_kleene(i, elem, event.clone()))
                    .collect()
            };
            for g in grown {
                self.propagate(leaf, g, out);
            }
            let seed = self.arena.with_kleene(&empty, elem, event.clone());
            self.propagate(leaf, seed, out);
        } else {
            let seed = self.arena.with_single(&empty, elem, event.clone());
            self.propagate(leaf, seed, out);
        }
    }

    fn prune(&mut self) {
        let watermark = self.watermark;
        let window = self.cp.window;
        self.buffers.prune(watermark, window);
        for store in &mut self.stores {
            retain_or_retire(store, &mut self.arena, |i| !i.expired(watermark, window));
        }
        if self.cp.strategy.consumes() && self.consumed.len() > 100_000 {
            self.consumed.clear();
        }
    }
}

fn flatten(node: &TreeNode, out: &mut Vec<NodeSpec>) -> usize {
    match node {
        TreeNode::Leaf(elem) => {
            out.push(NodeSpec {
                kind: NodeKind::Leaf { elem: *elem },
                parent: None,
                sibling: None,
            });
            out.len() - 1
        }
        TreeNode::Node(l, r) => {
            let li = flatten(l, out);
            let ri = flatten(r, out);
            out.push(NodeSpec {
                kind: NodeKind::Internal {
                    left: li,
                    right: ri,
                },
                parent: None,
                sibling: None,
            });
            out.len() - 1
        }
    }
}

impl Engine for TreeEngine {
    fn process(&mut self, event: &EventRef, out: &mut Vec<Match>) {
        self.metrics.events_processed += 1;
        self.watermark = self.watermark.max(event.ts);
        let watermark = self.watermark;
        self.release_deferred(watermark, out);
        if !self.cp.negated.is_empty() {
            self.deferred.on_event(&self.cp, event);
            if self.cp.negated_of_type(event.type_id).next().is_some() {
                self.buffers.push(event.clone());
            }
        }
        self.events_since_prune += 1;
        if self.events_since_prune >= self.cfg.prune_every {
            self.events_since_prune = 0;
            self.prune();
        }
        if !self.cp.uses_type(event.type_id) {
            return;
        }
        self.metrics.events_relevant += 1;
        // Route to every leaf accepting this type.
        let leaves: Vec<usize> = self
            .nodes
            .iter()
            .enumerate()
            .filter_map(|(i, n)| match n.kind {
                NodeKind::Leaf { elem } if self.cp.elements[elem].event_type == event.type_id => {
                    Some(i)
                }
                _ => None,
            })
            .collect();
        for leaf in leaves {
            self.leaf_arrival(leaf, event, out);
        }
        self.metrics
            .record_live(self.live_instances(), self.buffers.len());
    }

    fn flush(&mut self, out: &mut Vec<Match>) {
        self.release_deferred(Timestamp::MAX, out);
    }

    fn metrics(&self) -> &EngineMetrics {
        &self.metrics
    }

    fn metrics_mut(&mut self) -> &mut EngineMetrics {
        &mut self.metrics
    }

    fn name(&self) -> &'static str {
        "tree"
    }
}
