//! # cep-tree
//!
//! Tree-based CEP evaluation after ZStream (Mei & Madden \[35\]), modified —
//! as in Section 2.3 of *Join Query Optimization Techniques for CEP
//! Applications* (VLDB 2018) — from a batch-iterator design to an
//! instance-based design supporting arbitrary time windows.
//!
//! The engine follows a [`TreePlan`](cep_core::plan::TreePlan): primitive
//! events enter at leaves, partial matches are combined at internal nodes
//! when both children have compatible instances, and full matches surface
//! at the root. Unlike the NFA, no single processing order is imposed: any
//! arrival order is handled by the symmetric join at each node.
//!
//! Strategy support mirrors `cep-nfa` with one documented difference:
//! under skip-till-next-match the tree engine realizes single-use events
//! by consumption alone (matches stay disjoint, but intermediate instances
//! may still fork before the first emission claims their events).

#![warn(missing_docs)]

mod engine;

pub use engine::TreeEngine;

#[cfg(test)]
mod tests;
