//! Planner facade: one entry point turning (compiled pattern, statistics,
//! algorithm) into an evaluation plan, with the Section 6 adaptations
//! (strategy-aware cost model, hybrid latency objective, output-profiler
//! anchors) applied uniformly.

use crate::dp::{dp_bushy_tree, dp_left_deep_order};
use crate::kbz::kbz_order;
use crate::order::{efreq_order, greedy_order, ii_greedy_order, ii_random_order, trivial_order};
use crate::zstream::{zstream_native, zstream_ordered};
use crate::{OrderAlgorithm, TreeAlgorithm};
use cep_core::compile::CompiledPattern;
use cep_core::cost::CostModel;
use cep_core::error::CepError;
use cep_core::plan::{OrderPlan, TreePlan};
use cep_core::stats::{MeasuredStats, PatternStats, StatsOptions};

/// Where the latency anchor (the temporally last element, Section 6.1)
/// comes from.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum LatencyAnchor {
    /// Sequences: the statically known last element; conjunctions: none.
    #[default]
    Auto,
    /// No latency term regardless of `alpha`.
    Disabled,
    /// Fixed element index (e.g., from the output profiler).
    Element(usize),
}

/// Planner configuration.
#[derive(Debug, Clone, Default)]
pub struct PlannerConfig {
    /// Throughput/latency trade-off `α` (Section 6.1); 0 = pure throughput.
    pub alpha: f64,
    /// Latency anchor source.
    pub anchor: LatencyAnchor,
    /// Statistics transform options (temporal selectivity, Kleene cap).
    pub stats_options: StatsOptions,
}

/// Facade over all plan-generation algorithms.
#[derive(Debug, Clone, Default)]
pub struct Planner {
    /// Configuration used for every planning call.
    pub config: PlannerConfig,
}

impl Planner {
    /// Planner with default configuration (pure throughput objective).
    pub fn new(config: PlannerConfig) -> Planner {
        Planner { config }
    }

    /// Refines the Section 5.2 Kleene rate transform with an engine's
    /// accumulator cap (see
    /// [`StatsOptions::max_kleene_events`]): cost estimates then count only
    /// the subsets a capped engine can actually materialize. Pass the value
    /// of [`EngineConfig::max_kleene_events`](cep_core::engine::EngineConfig::max_kleene_events)
    /// the plans will run under.
    pub fn with_max_kleene_events(mut self, cap: usize) -> Planner {
        self.config.stats_options.max_kleene_events = Some(cap);
        self
    }

    /// The cost model used for a compiled pattern under this configuration.
    pub fn cost_model(&self, cp: &CompiledPattern) -> CostModel {
        let anchor = match self.config.anchor {
            LatencyAnchor::Auto => cp.last_element(),
            LatencyAnchor::Disabled => None,
            LatencyAnchor::Element(e) => Some(e),
        };
        CostModel::for_pattern(cp)
            .with_alpha(self.config.alpha)
            .with_latency_last(anchor)
    }

    /// Builds [`PatternStats`] for a compiled pattern from measured type
    /// rates and per-predicate selectivities, applying the Section 5
    /// transforms configured in [`PlannerConfig::stats_options`].
    pub fn stats_for(
        &self,
        cp: &CompiledPattern,
        measured: &MeasuredStats,
        pred_sel: &[f64],
    ) -> Result<PatternStats, CepError> {
        PatternStats::build(cp, measured, pred_sel, &self.config.stats_options)
    }

    /// Generates an order-based plan.
    pub fn plan_order(
        &self,
        cp: &CompiledPattern,
        stats: &PatternStats,
        algorithm: OrderAlgorithm,
    ) -> Result<OrderPlan, CepError> {
        if stats.n() != cp.n() {
            return Err(CepError::Stats(format!(
                "statistics cover {} elements, pattern has {}",
                stats.n(),
                cp.n()
            )));
        }
        let cm = self.cost_model(cp);
        let order = match algorithm {
            OrderAlgorithm::Trivial => trivial_order(cp.n()),
            OrderAlgorithm::EFreq => efreq_order(stats),
            OrderAlgorithm::Greedy => greedy_order(stats, &cm),
            OrderAlgorithm::IIRandom { restarts, seed } => {
                ii_random_order(stats, &cm, restarts, seed)
            }
            OrderAlgorithm::IIGreedy => ii_greedy_order(stats, &cm),
            OrderAlgorithm::DpLd => dp_left_deep_order(stats, &cm)?,
            // KBZ falls back to GREEDY outside its preconditions
            // (Section 4.3: it is a heuristic from the CPG standpoint).
            OrderAlgorithm::Kbz => {
                kbz_order(stats, &cm).unwrap_or_else(|| greedy_order(stats, &cm))
            }
        };
        let plan = OrderPlan::new(order)?;
        // Debug builds lint every plan they emit: a planner bug that
        // drops predicates or breaks negation anchoring fails fast here
        // instead of silently changing match semantics downstream.
        if cfg!(debug_assertions) {
            cep_analyze::verify_order_plan(cp, &plan)?;
        }
        Ok(plan)
    }

    /// Generates a tree-based plan.
    pub fn plan_tree(
        &self,
        cp: &CompiledPattern,
        stats: &PatternStats,
        algorithm: TreeAlgorithm,
    ) -> Result<TreePlan, CepError> {
        if stats.n() != cp.n() {
            return Err(CepError::Stats(format!(
                "statistics cover {} elements, pattern has {}",
                stats.n(),
                cp.n()
            )));
        }
        let cm = self.cost_model(cp);
        let root = match algorithm {
            TreeAlgorithm::ZStream => zstream_native(stats, &cm)?,
            TreeAlgorithm::ZStreamOrd => zstream_ordered(stats, &cm)?,
            TreeAlgorithm::DpB => dp_bushy_tree(stats, &cm)?,
        };
        let plan = TreePlan::new(root)?;
        if cfg!(debug_assertions) {
            cep_analyze::verify_tree_plan(cp, &plan)?;
        }
        Ok(plan)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use cep_core::event::TypeId;
    use cep_core::pattern::PatternBuilder;
    use cep_core::predicate::{CmpOp, Predicate};

    fn fixture() -> (CompiledPattern, PatternStats) {
        let mut b = PatternBuilder::new(10);
        let a = b.event(TypeId(0), "a");
        let c = b.event(TypeId(1), "c");
        let d = b.event(TypeId(2), "d");
        b.predicate(Predicate::attr_cmp(a.pos(), 0, CmpOp::Lt, d.pos(), 0));
        let cp = CompiledPattern::compile_single(&b.seq([a, c, d]).unwrap()).unwrap();
        let mut m = MeasuredStats::default();
        m.set_rate(TypeId(0), 2.0);
        m.set_rate(TypeId(1), 1.0);
        m.set_rate(TypeId(2), 0.1);
        let planner = Planner::default();
        let stats = planner.stats_for(&cp, &m, &[0.1]).unwrap();
        (cp, stats)
    }

    #[test]
    fn all_order_algorithms_produce_valid_plans() {
        let (cp, stats) = fixture();
        let planner = Planner::default();
        for algo in [
            OrderAlgorithm::Trivial,
            OrderAlgorithm::EFreq,
            OrderAlgorithm::Greedy,
            OrderAlgorithm::IIRandom {
                restarts: 4,
                seed: 1,
            },
            OrderAlgorithm::IIGreedy,
            OrderAlgorithm::DpLd,
            OrderAlgorithm::Kbz,
        ] {
            let plan = planner.plan_order(&cp, &stats, algo).unwrap();
            plan.validate(&cp).unwrap();
        }
    }

    #[test]
    fn all_tree_algorithms_produce_valid_plans() {
        let (cp, stats) = fixture();
        let planner = Planner::default();
        for algo in [
            TreeAlgorithm::ZStream,
            TreeAlgorithm::ZStreamOrd,
            TreeAlgorithm::DpB,
        ] {
            let plan = planner.plan_tree(&cp, &stats, algo).unwrap();
            plan.validate(&cp).unwrap();
        }
    }

    #[test]
    fn dp_ld_dominates_all_order_algorithms() {
        let (cp, stats) = fixture();
        let planner = Planner::default();
        let cm = planner.cost_model(&cp);
        let dp = planner
            .plan_order(&cp, &stats, OrderAlgorithm::DpLd)
            .unwrap();
        let dp_cost = cm.order_plan_cost(&stats, &dp);
        for algo in [
            OrderAlgorithm::Trivial,
            OrderAlgorithm::EFreq,
            OrderAlgorithm::Greedy,
            OrderAlgorithm::IIRandom {
                restarts: 4,
                seed: 1,
            },
            OrderAlgorithm::IIGreedy,
            OrderAlgorithm::Kbz,
        ] {
            let plan = planner.plan_order(&cp, &stats, algo).unwrap();
            assert!(
                dp_cost <= cm.order_plan_cost(&stats, &plan) + 1e-9,
                "{algo} beat DP-LD"
            );
        }
    }

    #[test]
    fn dp_b_dominates_all_tree_algorithms() {
        let (cp, stats) = fixture();
        let planner = Planner::default();
        let cm = planner.cost_model(&cp);
        let dp = planner.plan_tree(&cp, &stats, TreeAlgorithm::DpB).unwrap();
        let dp_cost = cm.tree_plan_cost(&stats, &dp);
        for algo in [TreeAlgorithm::ZStream, TreeAlgorithm::ZStreamOrd] {
            let plan = planner.plan_tree(&cp, &stats, algo).unwrap();
            assert!(
                dp_cost <= cm.tree_plan_cost(&stats, &plan) + 1e-9,
                "{algo} beat DP-B"
            );
        }
    }

    #[test]
    fn anchor_auto_uses_last_sequence_element() {
        let (cp, _) = fixture();
        let planner = Planner::new(PlannerConfig {
            alpha: 0.5,
            ..Default::default()
        });
        let cm = planner.cost_model(&cp);
        assert_eq!(cm.latency_last, Some(2));
        assert_eq!(cm.alpha, 0.5);
        let disabled = Planner::new(PlannerConfig {
            alpha: 0.5,
            anchor: LatencyAnchor::Disabled,
            ..Default::default()
        });
        assert_eq!(disabled.cost_model(&cp).latency_last, None);
    }

    #[test]
    fn alpha_zero_reduces_to_throughput_objective() {
        let (cp, stats) = fixture();
        let p0 = Planner::default();
        let p1 = Planner::new(PlannerConfig {
            alpha: 0.0,
            anchor: LatencyAnchor::Disabled,
            ..Default::default()
        });
        let a = p0.plan_order(&cp, &stats, OrderAlgorithm::DpLd).unwrap();
        let b = p1.plan_order(&cp, &stats, OrderAlgorithm::DpLd).unwrap();
        let cm = CostModel::throughput();
        assert!((cm.order_plan_cost(&stats, &a) - cm.order_plan_cost(&stats, &b)).abs() < 1e-9);
    }

    #[test]
    fn mismatched_stats_rejected() {
        let (cp, _) = fixture();
        let planner = Planner::default();
        let bad = PatternStats::synthetic(1.0, vec![1.0], vec![vec![1.0]]);
        assert!(planner
            .plan_order(&cp, &bad, OrderAlgorithm::Trivial)
            .is_err());
        assert!(planner
            .plan_tree(&cp, &bad, TreeAlgorithm::ZStream)
            .is_err());
    }
}
