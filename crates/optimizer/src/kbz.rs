//! IK/KBZ rank-based polynomial ordering for acyclic query graphs
//! (Section 4.3; Ibaraki & Kameda \[24\], Krishnamurthy et al. \[31\]).
//!
//! `Cost_ord` has the ASI property (Appendix A of the paper), so for
//! patterns whose *explicit* query graph is a forest the optimal
//! cross-product-free order can be found in polynomial time: root the
//! precedence tree, linearize subtrees into rank-ascending chains of
//! compound nodes, and merge. As the paper notes, excluding cross products
//! means the result can be worse than the DP-LD global optimum — the
//! algorithm is exact *within* its search space and `O(n² log n)` overall
//! (all roots tried).
//!
//! Applicability (checked by [`kbz_order`], which returns `None` otherwise):
//! skip-till-any-match cost model, no latency term, no temporal-order
//! constraints (pure conjunctive patterns), and a forest query graph.

use cep_core::cost::{cost_ord, CostModel};
use cep_core::query_graph::QueryGraph;
use cep_core::selection::SelectionStrategy;
use cep_core::stats::PatternStats;
use std::collections::VecDeque;

/// A compound node: a fixed subsequence of elements with aggregated
/// cardinality product `t` and cost contribution `c`.
#[derive(Debug, Clone)]
struct Compound {
    members: Vec<usize>,
    t: f64,
    c: f64,
}

impl Compound {
    fn single(elem: usize, parent: Option<usize>, stats: &PatternStats) -> Compound {
        let mut t = stats.count_in_window(elem) * stats.sel[elem][elem];
        if let Some(p) = parent {
            t *= stats.sel[elem][p];
        }
        Compound {
            members: vec![elem],
            t,
            c: t,
        }
    }

    /// The ASI rank `(T(s) − 1) / C(s)` (Appendix A).
    fn rank(&self) -> f64 {
        if self.c <= f64::EPSILON {
            return f64::NEG_INFINITY;
        }
        (self.t - 1.0) / self.c
    }

    fn merge(mut self, other: Compound) -> Compound {
        self.c += self.t * other.c;
        self.t *= other.t;
        self.members.extend(other.members);
        self
    }
}

/// Merges two rank-ascending chains, preserving intra-chain order.
fn merge_chains(mut a: VecDeque<Compound>, mut b: VecDeque<Compound>) -> VecDeque<Compound> {
    let mut out = VecDeque::with_capacity(a.len() + b.len());
    while let (Some(fa), Some(fb)) = (a.front(), b.front()) {
        let next = if fa.rank() <= fb.rank() {
            a.pop_front()
        } else {
            b.pop_front()
        };
        out.extend(next);
    }
    out.extend(a);
    out.extend(b);
    out
}

/// Linearizes the subtree rooted at `v`: returns a rank-ascending chain
/// whose head contains `v`.
fn linearize(
    v: usize,
    parent: Option<usize>,
    graph: &QueryGraph,
    stats: &PatternStats,
) -> VecDeque<Compound> {
    let mut merged: VecDeque<Compound> = VecDeque::new();
    for c in graph.neighbours(v) {
        if Some(c) == parent {
            continue;
        }
        let sub = linearize(c, Some(v), graph, stats);
        merged = merge_chains(merged, sub);
    }
    // Normalize: `v` precedes everything in `merged`; absorb heads whose
    // rank is below `v`'s (the ASI exchange argument makes them inseparable).
    let mut head = Compound::single(v, parent, stats);
    while let Some(first) = merged.front() {
        if head.rank() > first.rank() {
            let first = merged.pop_front().expect("front checked");
            head = head.merge(first);
        } else {
            break;
        }
    }
    let mut out = VecDeque::with_capacity(merged.len() + 1);
    out.push_back(head);
    out.extend(merged);
    out
}

fn flatten(chain: &VecDeque<Compound>) -> Vec<usize> {
    chain
        .iter()
        .flat_map(|c| c.members.iter().copied())
        .collect()
}

/// KBZ plan generation. Returns `None` when the preconditions do not hold
/// (callers fall back to a general-purpose algorithm).
pub fn kbz_order(stats: &PatternStats, cm: &CostModel) -> Option<Vec<usize>> {
    if cm.strategy != SelectionStrategy::SkipTillAnyMatch || cm.alpha != 0.0 {
        return None;
    }
    let n = stats.n();
    // No hidden (temporal) selectivities: every sel < 1 pair must be an
    // explicit predicate edge.
    for i in 0..n {
        for j in (i + 1)..n {
            if stats.sel[i][j] < 1.0 && !stats.explicit_pair[i][j] {
                return None;
            }
        }
    }
    let graph = QueryGraph::from_stats(stats);
    if !graph.is_forest() {
        return None;
    }
    let mut chains: Vec<VecDeque<Compound>> = Vec::new();
    for comp in graph.components() {
        if comp.len() == 1 {
            let mut c = VecDeque::new();
            c.push_back(Compound::single(comp[0], None, stats));
            chains.push(c);
            continue;
        }
        // Try every root; keep the cheapest linearization.
        let mut best: Option<(f64, VecDeque<Compound>)> = None;
        for &root in &comp {
            let chain = linearize(root, None, &graph, stats);
            let order = flatten(&chain);
            let cost = cost_ord(stats, &order);
            if best.as_ref().is_none_or(|(bc, _)| cost < *bc) {
                best = Some((cost, chain));
            }
        }
        chains.push(best.expect("component non-empty").1);
    }
    // Independent components interleave optimally by rank as well.
    let mut merged: VecDeque<Compound> = VecDeque::new();
    for chain in chains {
        merged = merge_chains(merged, chain);
    }
    Some(flatten(&merged))
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Star query: element 0 joined to 1, 2, 3.
    fn star_stats() -> PatternStats {
        PatternStats::synthetic(
            10.0,
            vec![0.5, 3.0, 0.2, 1.0],
            vec![
                vec![1.0, 0.3, 0.9, 0.05],
                vec![0.3, 1.0, 1.0, 1.0],
                vec![0.9, 1.0, 1.0, 1.0],
                vec![0.05, 1.0, 1.0, 1.0],
            ],
        )
    }

    /// Chain query: 0 - 1 - 2 - 3.
    fn chain_stats() -> PatternStats {
        PatternStats::synthetic(
            10.0,
            vec![2.0, 0.1, 1.5, 0.4],
            vec![
                vec![1.0, 0.2, 1.0, 1.0],
                vec![0.2, 1.0, 0.6, 1.0],
                vec![1.0, 0.6, 1.0, 0.1],
                vec![1.0, 1.0, 0.1, 1.0],
            ],
        )
    }

    /// Minimum cost over all cross-product-free ("connected-prefix") orders
    /// of a single-component query.
    fn best_connected_order_cost(stats: &PatternStats, graph: &QueryGraph) -> f64 {
        fn rec(
            stats: &PatternStats,
            graph: &QueryGraph,
            order: &mut Vec<usize>,
            used: &mut Vec<bool>,
            best: &mut f64,
        ) {
            let n = stats.n();
            if order.len() == n {
                *best = best.min(cost_ord(stats, order));
                return;
            }
            for cand in 0..n {
                if used[cand] {
                    continue;
                }
                if !order.is_empty() && !order.iter().any(|&p| graph.has_edge(p, cand)) {
                    continue; // would be a cross product
                }
                used[cand] = true;
                order.push(cand);
                rec(stats, graph, order, used, best);
                order.pop();
                used[cand] = false;
            }
        }
        let mut best = f64::INFINITY;
        rec(
            stats,
            graph,
            &mut Vec::new(),
            &mut vec![false; stats.n()],
            &mut best,
        );
        best
    }

    #[test]
    fn kbz_exact_on_star_query() {
        let s = star_stats();
        let cm = CostModel::throughput();
        let order = kbz_order(&s, &cm).expect("star is acyclic");
        let g = QueryGraph::from_stats(&s);
        let best = best_connected_order_cost(&s, &g);
        let got = cost_ord(&s, &order);
        assert!(
            (got - best).abs() <= 1e-9 * best.max(1.0),
            "{got} vs {best}"
        );
    }

    #[test]
    fn kbz_exact_on_chain_query() {
        let s = chain_stats();
        let cm = CostModel::throughput();
        let order = kbz_order(&s, &cm).expect("chain is acyclic");
        let g = QueryGraph::from_stats(&s);
        let best = best_connected_order_cost(&s, &g);
        let got = cost_ord(&s, &order);
        assert!(
            (got - best).abs() <= 1e-9 * best.max(1.0),
            "{got} vs {best}"
        );
    }

    #[test]
    fn kbz_exact_on_random_trees() {
        // Deterministic pseudo-random tree queries of size 6.
        let mut state = 99u64;
        let mut next = move || {
            state = state
                .wrapping_mul(6364136223846793005)
                .wrapping_add(1442695040888963407);
            (state >> 33) as f64 / (1u64 << 31) as f64
        };
        for _ in 0..20 {
            let n = 6;
            let mut sel = vec![vec![1.0; n]; n];
            // Random tree: attach vertex i to a random earlier vertex.
            #[allow(clippy::needless_range_loop)]
            for i in 1..n {
                let p = (next() * i as f64) as usize;
                let s = 0.05 + 0.9 * next();
                sel[i][p] = s;
                sel[p][i] = s;
            }
            let rates: Vec<f64> = (0..n).map(|_| 0.05 + 3.0 * next()).collect();
            let stats = PatternStats::synthetic(10.0, rates, sel);
            let cm = CostModel::throughput();
            let order = kbz_order(&stats, &cm).expect("tree is acyclic");
            let g = QueryGraph::from_stats(&stats);
            let best = best_connected_order_cost(&stats, &g);
            let got = cost_ord(&stats, &order);
            assert!(
                (got - best).abs() <= 1e-6 * best.max(1.0),
                "{got} vs {best} (order {order:?})"
            );
        }
    }

    #[test]
    fn kbz_refuses_cyclic_graphs() {
        let s = PatternStats::synthetic(
            10.0,
            vec![1.0, 1.0, 1.0],
            vec![
                vec![1.0, 0.5, 0.5],
                vec![0.5, 1.0, 0.5],
                vec![0.5, 0.5, 1.0],
            ],
        );
        assert!(kbz_order(&s, &CostModel::throughput()).is_none());
    }

    #[test]
    fn kbz_refuses_sequences_and_next_match() {
        // Temporal-only selectivity (sel < 1 without explicit edge).
        let mut s =
            PatternStats::synthetic(10.0, vec![1.0, 1.0], vec![vec![1.0, 0.5], vec![0.5, 1.0]]);
        s.explicit_pair[0][1] = false;
        s.explicit_pair[1][0] = false;
        assert!(kbz_order(&s, &CostModel::throughput()).is_none());
        // Next-match model unsupported.
        let s2 = star_stats();
        let cm = CostModel {
            strategy: SelectionStrategy::SkipTillNextMatch,
            ..Default::default()
        };
        assert!(kbz_order(&s2, &cm).is_none());
    }

    #[test]
    fn kbz_handles_forests_with_isolated_vertices() {
        // Components {0,1} and {2}; 2 is rare so it should go first.
        let s = PatternStats::synthetic(
            10.0,
            vec![2.0, 1.0, 0.01],
            vec![
                vec![1.0, 0.5, 1.0],
                vec![0.5, 1.0, 1.0],
                vec![1.0, 1.0, 1.0],
            ],
        );
        let order = kbz_order(&s, &CostModel::throughput()).unwrap();
        let mut sorted = order.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, vec![0, 1, 2]);
        assert_eq!(order[0], 2, "rare isolated element should lead: {order:?}");
    }

    #[test]
    fn merge_chains_handles_empty_inputs() {
        let s = star_stats();
        let single = |e: usize| {
            let mut c = VecDeque::new();
            c.push_back(Compound::single(e, None, &s));
            c
        };
        assert!(merge_chains(VecDeque::new(), VecDeque::new()).is_empty());
        let left = merge_chains(single(0), VecDeque::new());
        assert_eq!(flatten(&left), vec![0]);
        let right = merge_chains(VecDeque::new(), single(1));
        assert_eq!(flatten(&right), vec![1]);
    }

    #[test]
    fn merge_chains_interleaves_by_rank() {
        // Ranks are (t-1)/c with t = rate * window = rate * 10.
        let s = PatternStats::synthetic(10.0, vec![0.01, 0.3, 0.05, 0.2], vec![vec![1.0; 4]; 4]);
        let chain = |elems: &[usize]| {
            elems
                .iter()
                .map(|&e| Compound::single(e, None, &s))
                .collect::<VecDeque<_>>()
        };
        let merged = merge_chains(chain(&[0, 1]), chain(&[2, 3]));
        let ranks: Vec<f64> = merged.iter().map(Compound::rank).collect();
        assert!(ranks.windows(2).all(|w| w[0] <= w[1]), "{ranks:?}");
        assert_eq!(flatten(&merged), vec![0, 2, 3, 1]);
    }

    #[test]
    fn kbz_degenerate_inputs() {
        // Zero-element and single-element queries must not panic.
        let cm = CostModel::throughput();
        let empty = PatternStats::synthetic(10.0, vec![], vec![]);
        assert_eq!(kbz_order(&empty, &cm), Some(vec![]));
        let one = PatternStats::synthetic(10.0, vec![1.5], vec![vec![1.0]]);
        assert_eq!(kbz_order(&one, &cm), Some(vec![0]));
    }
}
