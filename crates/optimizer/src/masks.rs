//! Incremental subset tables used by the dynamic-programming planners.
//!
//! The DP algorithms need, for every subset `S` of pattern elements, the
//! expected partial-match count `PM(S)` (Sections 4.1/4.2) under either
//! selection model. Computing each from scratch costs `O(n²)` per subset;
//! these tables build all `2^n` values incrementally in `O(2^n · n)`.

use cep_core::selection::SelectionStrategy;
use cep_core::stats::PatternStats;

/// Hard limit on elements for subset DP (`2^n` tables).
pub const MAX_DP_ELEMENTS: usize = 26;

/// Subset tables of partial-match counts.
pub struct SubsetTables {
    /// `PM(S)` under the order-based convention (filters included).
    pub pm_order: Vec<f64>,
    /// `PM(S)` under the tree convention (no filters).
    pub pm_tree: Vec<f64>,
    n: usize,
}

impl SubsetTables {
    /// Builds the tables for all subsets of `stats.n()` elements.
    ///
    /// # Panics
    /// Panics if `stats.n() > MAX_DP_ELEMENTS`.
    pub fn build(stats: &PatternStats, strategy: SelectionStrategy) -> SubsetTables {
        let n = stats.n();
        assert!(
            n <= MAX_DP_ELEMENTS,
            "subset DP supports at most {MAX_DP_ELEMENTS} elements, got {n}"
        );
        let size = 1usize << n;
        // prod_sel[S]: product of sel[i][j] over i<j in S (cross pairs).
        // filt[S]: product of sel[i][i] over i in S.
        // count_prod[S]: product of W·r_i over i in S.
        // min_rate[S]: min rate over i in S.
        let mut prod_sel = vec![1.0f64; size];
        let mut filt = vec![1.0f64; size];
        let mut count_prod = vec![1.0f64; size];
        let mut min_rate = vec![f64::INFINITY; size];
        for s in 1..size {
            let low = s.trailing_zeros() as usize;
            let rest = s & (s - 1);
            let mut cross = 1.0;
            let mut r = rest;
            while r != 0 {
                let j = r.trailing_zeros() as usize;
                cross *= stats.sel[low][j];
                r &= r - 1;
            }
            prod_sel[s] = prod_sel[rest] * cross;
            filt[s] = filt[rest] * stats.sel[low][low];
            count_prod[s] = count_prod[rest] * stats.count_in_window(low);
            min_rate[s] = min_rate[rest].min(stats.rates[low]);
        }
        let any = strategy == SelectionStrategy::SkipTillAnyMatch;
        let mut pm_order = vec![0.0f64; size];
        let mut pm_tree = vec![0.0f64; size];
        for s in 1..size {
            if any {
                pm_order[s] = count_prod[s] * prod_sel[s] * filt[s];
                pm_tree[s] = count_prod[s] * prod_sel[s];
            } else {
                // Next-match model: W·min(r)·Πsel. The order flavour also
                // carries the extra W factor of Cost_next_ord's summation
                // (Σ_k W·m[k]).
                let m = stats.window_ms * min_rate[s] * prod_sel[s];
                pm_order[s] = stats.window_ms * m * filt[s];
                pm_tree[s] = m;
            }
        }
        pm_order[0] = 0.0;
        pm_tree[0] = 0.0;
        SubsetTables {
            pm_order,
            pm_tree,
            n,
        }
    }

    /// Number of elements.
    pub fn n(&self) -> usize {
        self.n
    }

    /// Full-set mask.
    pub fn full_mask(&self) -> usize {
        (1usize << self.n) - 1
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use cep_core::cost::{cost_ord, cost_tree};
    use cep_core::plan::TreeNode;

    fn stats3() -> PatternStats {
        PatternStats::synthetic(
            10.0,
            vec![1.0, 2.0, 0.1],
            vec![
                vec![0.9, 1.0, 0.1],
                vec![1.0, 1.0, 0.5],
                vec![0.1, 0.5, 0.8],
            ],
        )
    }

    #[test]
    fn pm_order_matches_direct_computation() {
        let s = stats3();
        let t = SubsetTables::build(&s, SelectionStrategy::SkipTillAnyMatch);
        for (mask, set) in [
            (0b001usize, vec![0usize]),
            (0b011, vec![0, 1]),
            (0b101, vec![0, 2]),
            (0b111, vec![0, 1, 2]),
        ] {
            let direct = s.pm_of_set(&set);
            assert!(
                (t.pm_order[mask] - direct).abs() <= 1e-9 * direct.max(1.0),
                "mask {mask:#b}: {} vs {}",
                t.pm_order[mask],
                direct
            );
        }
    }

    #[test]
    fn prefix_sums_reproduce_cost_ord() {
        let s = stats3();
        let t = SubsetTables::build(&s, SelectionStrategy::SkipTillAnyMatch);
        let order = [2usize, 0, 1];
        let mut mask = 0usize;
        let mut total = 0.0;
        for &e in &order {
            mask |= 1 << e;
            total += t.pm_order[mask];
        }
        let direct = cost_ord(&s, &order);
        assert!((total - direct).abs() <= 1e-9 * direct.max(1.0));
    }

    #[test]
    fn tree_pm_matches_cost_tree_node_sums() {
        let s = stats3();
        let t = SubsetTables::build(&s, SelectionStrategy::SkipTillAnyMatch);
        // ((0 1) 2): nodes {0},{1},{0,1},{2},{0,1,2}.
        let tree = TreeNode::join(
            TreeNode::join(TreeNode::Leaf(0), TreeNode::Leaf(1)),
            TreeNode::Leaf(2),
        );
        let total = t.pm_tree[0b001]
            + t.pm_tree[0b010]
            + t.pm_tree[0b011]
            + t.pm_tree[0b100]
            + t.pm_tree[0b111];
        let direct = cost_tree(&s, &tree);
        assert!((total - direct).abs() <= 1e-9 * direct.max(1.0));
    }

    #[test]
    fn next_model_uses_min_rate() {
        let s = stats3();
        let t = SubsetTables::build(&s, SelectionStrategy::SkipTillNextMatch);
        // {0,1}: W² · min(1,2) · sel(0,1)=1 · filters 0.9·1.
        let expect = 10.0 * 10.0 * 1.0 * 1.0 * 0.9;
        assert!((t.pm_order[0b011] - expect).abs() < 1e-9);
    }
}
