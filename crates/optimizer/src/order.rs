//! Order-based plan generation: the native CPG baselines (TRIVIAL, EFREQ)
//! and the greedy / local-search JQPG adaptations (Section 7.1).

use cep_core::cost::CostModel;
use cep_core::stats::PatternStats;
use rand::rngs::StdRng;
use rand::seq::SliceRandom;
use rand::{Rng, SeedableRng};

/// TRIVIAL: the specification order (the strategy of SASE / Cayuga).
pub fn trivial_order(n: usize) -> Vec<usize> {
    (0..n).collect()
}

/// EFREQ: ascending arrival frequency (the strategy of PB-CED and the lazy
/// NFA of \[29\]). Selectivities are ignored — the weakness the JQPG methods
/// exploit.
pub fn efreq_order(stats: &PatternStats) -> Vec<usize> {
    let mut order: Vec<usize> = (0..stats.n()).collect();
    order.sort_by(|&a, &b| {
        stats.rates[a]
            .partial_cmp(&stats.rates[b])
            .unwrap_or(std::cmp::Ordering::Equal)
            .then(a.cmp(&b))
    });
    order
}

/// GREEDY \[47\]: stepwise construction, each step appending the element that
/// minimizes the cost increase of the extended prefix (intermediate-result
/// size plus, when configured, the latency term).
pub fn greedy_order(stats: &PatternStats, cm: &CostModel) -> Vec<usize> {
    let n = stats.n();
    let mut remaining: Vec<usize> = (0..n).collect();
    let mut order = Vec::with_capacity(n);
    while !remaining.is_empty() {
        let mut best: Option<(f64, usize, usize)> = None;
        for (idx, &cand) in remaining.iter().enumerate() {
            order.push(cand);
            let cost = cm.order_cost(stats, &order);
            order.pop();
            if best.is_none_or(|(bc, _, _)| cost < bc) {
                best = Some((cost, idx, cand));
            }
        }
        let (_, idx, cand) = best.expect("non-empty remaining");
        remaining.swap_remove(idx);
        order.push(cand);
    }
    order
}

/// One iterative-improvement descent \[47\]: applies the best improving
/// `swap` or `cycle` move until a local minimum is reached.
pub fn ii_descent(stats: &PatternStats, cm: &CostModel, start: Vec<usize>) -> (Vec<usize>, f64) {
    let n = start.len();
    let mut order = start;
    let mut cost = cm.order_cost(stats, &order);
    loop {
        let mut best_move: Option<(f64, Vec<usize>)> = None;
        // swap moves.
        for i in 0..n {
            for j in (i + 1)..n {
                order.swap(i, j);
                let c = cm.order_cost(stats, &order);
                if c < cost && best_move.as_ref().is_none_or(|(bc, _)| c < *bc) {
                    best_move = Some((c, order.clone()));
                }
                order.swap(i, j);
            }
        }
        // cycle moves (rotate three positions).
        for i in 0..n {
            for j in (i + 1)..n {
                for k in (j + 1)..n {
                    let saved = (order[i], order[j], order[k]);
                    order[i] = saved.2;
                    order[j] = saved.0;
                    order[k] = saved.1;
                    let c = cm.order_cost(stats, &order);
                    if c < cost && best_move.as_ref().is_none_or(|(bc, _)| c < *bc) {
                        best_move = Some((c, order.clone()));
                    }
                    order[i] = saved.0;
                    order[j] = saved.1;
                    order[k] = saved.2;
                }
            }
        }
        match best_move {
            Some((c, o)) => {
                cost = c;
                order = o;
            }
            None => return (order, cost),
        }
    }
}

/// II-RANDOM \[47\]: iterative improvement from random starting points.
pub fn ii_random_order(
    stats: &PatternStats,
    cm: &CostModel,
    restarts: usize,
    seed: u64,
) -> Vec<usize> {
    let n = stats.n();
    let mut rng = StdRng::seed_from_u64(seed);
    let mut best: Option<(f64, Vec<usize>)> = None;
    for _ in 0..restarts.max(1) {
        let mut start: Vec<usize> = (0..n).collect();
        start.shuffle(&mut rng);
        let (order, cost) = ii_descent(stats, cm, start);
        if best.as_ref().is_none_or(|(bc, _)| cost < *bc) {
            best = Some((cost, order));
        }
    }
    best.expect("at least one restart").1
}

/// II-GREEDY \[47\]: iterative improvement seeded with the greedy order.
pub fn ii_greedy_order(stats: &PatternStats, cm: &CostModel) -> Vec<usize> {
    let start = greedy_order(stats, cm);
    ii_descent(stats, cm, start).0
}

/// A uniformly random order (ablation baseline).
pub fn random_order(n: usize, rng: &mut impl Rng) -> Vec<usize> {
    let mut order: Vec<usize> = (0..n).collect();
    order.shuffle(rng);
    order
}

#[cfg(test)]
mod tests {
    use super::*;
    use cep_core::cost::cost_ord;

    fn stats() -> PatternStats {
        PatternStats::synthetic(
            10.0,
            vec![4.0, 1.0, 0.05, 2.0],
            vec![
                vec![1.0, 0.5, 1.0, 1.0],
                vec![0.5, 1.0, 0.2, 1.0],
                vec![1.0, 0.2, 1.0, 0.7],
                vec![1.0, 1.0, 0.7, 1.0],
            ],
        )
    }

    fn exhaustive_best(stats: &PatternStats, cm: &CostModel) -> f64 {
        fn perms(n: usize) -> Vec<Vec<usize>> {
            fn rec(rest: Vec<usize>, acc: Vec<usize>, out: &mut Vec<Vec<usize>>) {
                if rest.is_empty() {
                    out.push(acc);
                    return;
                }
                for (i, &x) in rest.iter().enumerate() {
                    let mut r = rest.clone();
                    r.remove(i);
                    let mut a = acc.clone();
                    a.push(x);
                    rec(r, a, out);
                }
            }
            let mut out = Vec::new();
            rec((0..n).collect(), Vec::new(), &mut out);
            out
        }
        perms(stats.n())
            .into_iter()
            .map(|o| cm.order_cost(stats, &o))
            .fold(f64::INFINITY, f64::min)
    }

    #[test]
    fn trivial_is_identity() {
        assert_eq!(trivial_order(4), vec![0, 1, 2, 3]);
    }

    #[test]
    fn efreq_sorts_by_rate() {
        let s = stats();
        assert_eq!(efreq_order(&s), vec![2, 1, 3, 0]);
    }

    #[test]
    fn greedy_improves_on_trivial() {
        let s = stats();
        let cm = CostModel::throughput();
        let g = greedy_order(&s, &cm);
        assert!(cost_ord(&s, &g) <= cost_ord(&s, &trivial_order(4)));
    }

    #[test]
    fn greedy_starts_with_cheapest_singleton() {
        let s = stats();
        let cm = CostModel::throughput();
        assert_eq!(greedy_order(&s, &cm)[0], 2); // rarest element
    }

    #[test]
    fn ii_descent_never_worsens() {
        let s = stats();
        let cm = CostModel::throughput();
        let start = vec![0, 1, 2, 3];
        let (order, cost) = ii_descent(&s, &cm, start.clone());
        assert!(cost <= cm.order_cost(&s, &start));
        let mut sorted = order.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, vec![0, 1, 2, 3], "result must stay a permutation");
    }

    #[test]
    fn ii_random_finds_global_optimum_on_small_instance() {
        let s = stats();
        let cm = CostModel::throughput();
        let best = exhaustive_best(&s, &cm);
        let order = ii_random_order(&s, &cm, 10, 42);
        let cost = cm.order_cost(&s, &order);
        assert!(
            (cost - best).abs() <= 1e-9 * best.max(1.0),
            "{cost} vs {best}"
        );
    }

    #[test]
    fn ii_greedy_no_worse_than_greedy() {
        let s = stats();
        let cm = CostModel::throughput();
        let g = cm.order_cost(&s, &greedy_order(&s, &cm));
        let ig = cm.order_cost(&s, &ii_greedy_order(&s, &cm));
        assert!(ig <= g + 1e-12);
    }

    #[test]
    fn ii_random_is_deterministic_per_seed() {
        let s = stats();
        let cm = CostModel::throughput();
        let a = ii_random_order(&s, &cm, 3, 7);
        let b = ii_random_order(&s, &cm, 3, 7);
        assert_eq!(a, b);
    }

    #[test]
    fn latency_alpha_pulls_last_element_late() {
        // With a large alpha and element 3 as the latency anchor, local
        // search schedules 3 at the end. (GREEDY may not: the latency
        // penalty of placing the anchor early only materializes at later
        // steps, and greedy is myopic — one of the reasons the paper pairs
        // it with iterative improvement.)
        let s = stats();
        let cm = CostModel::throughput()
            .with_alpha(1e6)
            .with_latency_last(Some(3));
        let ii = ii_greedy_order(&s, &cm);
        assert_eq!(*ii.last().unwrap(), 3, "{ii:?}");
        let iir = ii_random_order(&s, &cm, 5, 3);
        assert_eq!(*iir.last().unwrap(), 3, "{iir:?}");
        // And the II result can only improve on greedy's cost.
        let g = greedy_order(&s, &cm);
        assert!(cm.order_cost(&s, &ii) <= cm.order_cost(&s, &g) + 1e-9);
    }
}
