//! Lightweight adaptivity hook (Section 6.3).
//!
//! The paper defers full adaptive CEP to its companion work [27]; what plan
//! generation needs from the runtime is (a) fresh arrival-rate estimates
//! and (b) a signal that the statistics have drifted far enough from the
//! ones the current plan was built with. [`StatsMonitor`] provides both
//! over a sliding horizon; callers re-plan when [`StatsMonitor::drifted`]
//! fires (see the `adaptive_replanning` example in the repository root).

use cep_core::event::{EventRef, Timestamp, TypeId};
use std::collections::{HashMap, VecDeque};

/// Sliding-horizon arrival-rate monitor with drift detection.
#[derive(Debug, Clone)]
pub struct StatsMonitor {
    horizon_ms: u64,
    threshold: f64,
    events: VecDeque<(TypeId, Timestamp)>,
    counts: HashMap<TypeId, u64>,
    baseline: HashMap<TypeId, f64>,
    watermark: Timestamp,
}

impl StatsMonitor {
    /// Creates a monitor keeping `horizon_ms` of history; `threshold` is
    /// the relative rate deviation that counts as drift (e.g. 0.5 = ±50%).
    pub fn new(horizon_ms: u64, threshold: f64) -> StatsMonitor {
        assert!(horizon_ms > 0, "horizon must be positive");
        assert!(threshold > 0.0, "threshold must be positive");
        StatsMonitor {
            horizon_ms,
            threshold,
            events: VecDeque::new(),
            counts: HashMap::new(),
            baseline: HashMap::new(),
            watermark: 0,
        }
    }

    /// Feeds one stream event.
    pub fn observe(&mut self, e: &EventRef) {
        self.watermark = self.watermark.max(e.ts);
        self.events.push_back((e.type_id, e.ts));
        *self.counts.entry(e.type_id).or_insert(0) += 1;
        let horizon_start = self.watermark.saturating_sub(self.horizon_ms);
        while let Some(&(ty, ts)) = self.events.front() {
            if ts < horizon_start {
                self.events.pop_front();
                // Drop entries that reach zero so `counts` only holds types
                // alive inside the horizon: `rates()` / `drifted()` stay
                // proportional to the live type set instead of scanning
                // every type id ever observed.
                if let Some(c) = self.counts.get_mut(&ty) {
                    *c -= 1;
                    if *c == 0 {
                        self.counts.remove(&ty);
                    }
                }
            } else {
                break;
            }
        }
    }

    /// Current rate estimate for a type, in events per millisecond.
    pub fn rate(&self, ty: TypeId) -> f64 {
        let span = self.horizon_ms.min(self.watermark.max(1)).max(1) as f64;
        *self.counts.get(&ty).unwrap_or(&0) as f64 / span
    }

    /// Snapshot of all current rates.
    pub fn rates(&self) -> HashMap<TypeId, f64> {
        self.counts.keys().map(|&ty| (ty, self.rate(ty))).collect()
    }

    /// Freezes the current rates as the baseline the active plan was built
    /// with.
    pub fn rebaseline(&mut self) {
        self.baseline = self.rates();
    }

    /// Whether a baseline has been frozen yet. Adaptive runtimes use this
    /// to distinguish "no reference point yet" (calibrate: adopt the
    /// current rates, replan once) from genuine drift.
    pub fn has_baseline(&self) -> bool {
        !self.baseline.is_empty()
    }

    /// Whether any observed type's rate deviates from the baseline by more
    /// than the threshold (relative). Types absent from the baseline count
    /// as drifted once seen, and a type whose rate collapsed to zero from a
    /// positive baseline (its last event slid out of the horizon) counts as
    /// drifted regardless of the threshold — a rate of 0 invalidates any
    /// plan ordered around that type being present.
    pub fn drifted(&self) -> bool {
        for &ty in self.counts.keys() {
            let now = self.rate(ty);
            match self.baseline.get(&ty) {
                Some(&base) if base > 0.0 => {
                    if (now - base).abs() / base > self.threshold {
                        return true;
                    }
                }
                Some(_) | None => {
                    if now > 0.0 && !self.baseline.contains_key(&ty) {
                        return true;
                    }
                }
            }
        }
        // Types that vanished entirely: present in the baseline with a
        // positive rate but no longer in `counts` (eviction removed them).
        self.baseline
            .iter()
            .any(|(ty, &base)| base > 0.0 && !self.counts.contains_key(ty))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use cep_core::event::Event;
    use std::sync::Arc;

    fn ev(ty: u32, ts: u64) -> EventRef {
        Arc::new(Event::new(TypeId(ty), ts, vec![]))
    }

    #[test]
    fn rates_track_sliding_horizon() {
        let mut m = StatsMonitor::new(100, 0.5);
        for ts in 0..100u64 {
            m.observe(&ev(0, ts));
        }
        let dense = m.rate(TypeId(0));
        assert!(dense > 0.9, "{dense}");
        // Go quiet: rate must fall as the horizon slides.
        for ts in (200..400u64).step_by(50) {
            m.observe(&ev(1, ts));
        }
        assert!(m.rate(TypeId(0)) < 0.1);
    }

    #[test]
    fn drift_detection_after_rate_change() {
        let mut m = StatsMonitor::new(100, 0.5);
        for ts in 0..100u64 {
            m.observe(&ev(0, ts)); // 1 event/ms
        }
        m.rebaseline();
        assert!(!m.drifted(), "no drift right after rebaseline");
        // Rate collapses to 0.1/ms.
        for ts in (100..300u64).step_by(10) {
            m.observe(&ev(0, ts));
        }
        assert!(m.drifted());
        m.rebaseline();
        assert!(!m.drifted());
    }

    #[test]
    fn new_type_counts_as_drift() {
        let mut m = StatsMonitor::new(100, 0.5);
        for ts in 0..50u64 {
            m.observe(&ev(0, ts));
        }
        m.rebaseline();
        for ts in 50..60u64 {
            m.observe(&ev(7, ts));
        }
        assert!(m.drifted());
    }

    #[test]
    #[should_panic(expected = "horizon must be positive")]
    fn zero_horizon_rejected() {
        StatsMonitor::new(0, 0.5);
    }

    #[test]
    fn dead_types_are_evicted_from_counts() {
        let mut m = StatsMonitor::new(100, 0.5);
        for ts in 0..50u64 {
            m.observe(&ev(0, ts));
        }
        assert!(m.rates().contains_key(&TypeId(0)));
        // Slide the horizon entirely past type 0 with a different type.
        for ts in (300..500u64).step_by(25) {
            m.observe(&ev(1, ts));
        }
        let rates = m.rates();
        assert!(
            !rates.contains_key(&TypeId(0)),
            "zero-count type must be evicted, got {rates:?}"
        );
        assert_eq!(m.rate(TypeId(0)), 0.0);
        assert!(rates.contains_key(&TypeId(1)));
    }

    #[test]
    fn rate_collapse_to_zero_counts_as_drift() {
        // Threshold 2.0: the relative check alone would never fire for a
        // rate that merely halves — only the vanished-type rule can.
        let mut m = StatsMonitor::new(100, 2.0);
        for ts in 0..100u64 {
            m.observe(&ev(0, ts));
        }
        m.rebaseline();
        assert!(!m.drifted());
        for ts in (300..500u64).step_by(25) {
            m.observe(&ev(1, ts)); // type 1 is new AND type 0 vanished
        }
        assert!(m.drifted(), "vanished type must register as drift");
        m.rebaseline();
        assert!(!m.drifted(), "rebaseline adopts the new regime");
    }

    #[test]
    fn watermark_ties_keep_boundary_events() {
        let mut m = StatsMonitor::new(10, 0.5);
        m.observe(&ev(0, 0));
        m.observe(&ev(0, 10));
        // horizon_start = 0: the ts-0 event sits exactly on the boundary
        // and must still be counted (eviction is strictly `ts < start`).
        assert_eq!(*m.rates().get(&TypeId(0)).unwrap(), 0.2);
        // A tied watermark (same max ts again) must not evict it either.
        m.observe(&ev(1, 10));
        assert_eq!(*m.rates().get(&TypeId(0)).unwrap(), 0.2);
        // One tick further and the ts-0 event falls out.
        m.observe(&ev(1, 11));
        assert_eq!(*m.rates().get(&TypeId(0)).unwrap(), 0.1);
    }

    #[test]
    fn single_event_horizon() {
        let mut m = StatsMonitor::new(1, 0.5);
        m.observe(&ev(0, 5));
        assert_eq!(m.rate(TypeId(0)), 1.0);
        m.observe(&ev(1, 7));
        // The horizon is one ms: only the newest event survives.
        assert_eq!(m.rate(TypeId(0)), 0.0);
        assert_eq!(m.rate(TypeId(1)), 1.0);
        assert_eq!(m.rates().len(), 1);
    }

    #[test]
    fn rebaseline_after_quiet_restarts_detection() {
        let mut m = StatsMonitor::new(100, 0.5);
        for ts in 0..100u64 {
            m.observe(&ev(0, ts));
        }
        m.rebaseline();
        // Quiet period: everything slides out.
        for ts in (500..700u64).step_by(50) {
            m.observe(&ev(1, ts));
        }
        assert!(m.drifted());
        m.rebaseline();
        assert!(!m.drifted(), "baseline now matches the quiet regime");
        // The old type coming back is drift again relative to the quiet
        // baseline (type 0 is no longer in the rebaselined map).
        for ts in 700..750u64 {
            m.observe(&ev(0, ts));
        }
        assert!(m.drifted());
    }
}
