//! Lightweight adaptivity hooks (Section 6.3).
//!
//! The paper defers full adaptive CEP to its companion work \[27\]; what plan
//! generation needs from the runtime is (a) fresh arrival-rate estimates
//! and (b) a signal that the statistics have drifted far enough from the
//! ones the current plan was built with. [`StatsMonitor`] provides both
//! over a sliding horizon; callers re-plan when [`StatsMonitor::drifted`]
//! fires (see the `adaptive_replanning` example in the repository root).
//!
//! Rates are only half of the cost model, though: plan choice is equally
//! driven by predicate *selectivities*, and a stream whose correlations
//! shift while its rates stay flat leaves `StatsMonitor` blind.
//! [`SelectivityMonitor`] covers that axis — it retains the pattern's
//! relevant events over the same kind of sliding horizon, re-estimates
//! per-predicate pass rates by pair sampling
//! ([`cep_core::stats::estimate_selectivities`]), and reports drift
//! against the selectivities the active plan was built with.

use cep_core::compile::CompiledPattern;
use cep_core::event::{EventRef, Timestamp, TypeId};
use cep_core::stats::estimate_selectivities_iter;
use std::collections::{HashMap, VecDeque};

/// Sliding-horizon arrival-rate monitor with drift detection.
#[derive(Debug, Clone)]
pub struct StatsMonitor {
    horizon_ms: u64,
    threshold: f64,
    events: VecDeque<(TypeId, Timestamp)>,
    counts: HashMap<TypeId, u64>,
    baseline: HashMap<TypeId, f64>,
    watermark: Timestamp,
}

impl StatsMonitor {
    /// Creates a monitor keeping `horizon_ms` of history; `threshold` is
    /// the relative rate deviation that counts as drift (e.g. 0.5 = ±50%).
    pub fn new(horizon_ms: u64, threshold: f64) -> StatsMonitor {
        assert!(horizon_ms > 0, "horizon must be positive");
        assert!(threshold > 0.0, "threshold must be positive");
        StatsMonitor {
            horizon_ms,
            threshold,
            events: VecDeque::new(),
            counts: HashMap::new(),
            baseline: HashMap::new(),
            watermark: 0,
        }
    }

    /// Feeds one stream event.
    pub fn observe(&mut self, e: &EventRef) {
        self.watermark = self.watermark.max(e.ts);
        self.events.push_back((e.type_id, e.ts));
        *self.counts.entry(e.type_id).or_insert(0) += 1;
        let horizon_start = self.watermark.saturating_sub(self.horizon_ms);
        while let Some(&(ty, ts)) = self.events.front() {
            if ts < horizon_start {
                self.events.pop_front();
                // Drop entries that reach zero so `counts` only holds types
                // alive inside the horizon: `rates()` / `drifted()` stay
                // proportional to the live type set instead of scanning
                // every type id ever observed.
                if let Some(c) = self.counts.get_mut(&ty) {
                    *c -= 1;
                    if *c == 0 {
                        self.counts.remove(&ty);
                    }
                }
            } else {
                break;
            }
        }
    }

    /// Current rate estimate for a type, in events per millisecond.
    pub fn rate(&self, ty: TypeId) -> f64 {
        let span = self.horizon_ms.min(self.watermark.max(1)).max(1) as f64;
        *self.counts.get(&ty).unwrap_or(&0) as f64 / span
    }

    /// Snapshot of all current rates.
    pub fn rates(&self) -> HashMap<TypeId, f64> {
        self.counts.keys().map(|&ty| (ty, self.rate(ty))).collect()
    }

    /// Freezes the current rates as the baseline the active plan was built
    /// with.
    pub fn rebaseline(&mut self) {
        self.baseline = self.rates();
    }

    /// Whether a baseline has been frozen yet. Adaptive runtimes use this
    /// to distinguish "no reference point yet" (calibrate: adopt the
    /// current rates, replan once) from genuine drift.
    pub fn has_baseline(&self) -> bool {
        !self.baseline.is_empty()
    }

    /// Whether any observed type's rate deviates from the baseline by more
    /// than the threshold (relative). Types absent from the baseline count
    /// as drifted once seen, and a type whose rate collapsed to zero from a
    /// positive baseline (its last event slid out of the horizon) counts as
    /// drifted regardless of the threshold — a rate of 0 invalidates any
    /// plan ordered around that type being present.
    pub fn drifted(&self) -> bool {
        for &ty in self.counts.keys() {
            let now = self.rate(ty);
            match self.baseline.get(&ty) {
                Some(&base) if base > 0.0 => {
                    if (now - base).abs() / base > self.threshold {
                        return true;
                    }
                }
                Some(_) | None => {
                    if now > 0.0 && !self.baseline.contains_key(&ty) {
                        return true;
                    }
                }
            }
        }
        // Types that vanished entirely: present in the baseline with a
        // positive rate but no longer in `counts` (eviction removed them).
        self.baseline
            .iter()
            .any(|(ty, &base)| base > 0.0 && !self.counts.contains_key(ty))
    }

    /// Replicate-join partition spec for a sharded deployment of `branches`,
    /// derived from this monitor's *live* rate estimates
    /// ([`cep_core::partition::QueryPartitioner::analyze`]): the
    /// highest-rate key component stays partitioned, the low-rate
    /// remainder is replicated. Re-derive after drift to let the
    /// replicated side follow the rates.
    pub fn partition_spec(
        &self,
        branches: &[CompiledPattern],
    ) -> Result<cep_core::partition::PartitionSpec, cep_core::error::CepError> {
        cep_core::partition::QueryPartitioner::analyze(branches, |ty| self.rate(ty))
    }
}

/// Relative-deviation floor for selectivity drift: deviations are measured
/// against `max(baseline, floor)` so near-zero baselines do not turn
/// sampling noise into infinite relative drift.
const SELECTIVITY_FLOOR: f64 = 0.05;

/// Default number of retained relevant events before drift may fire;
/// pair-sampled estimates over fewer events are too noisy to act on.
const DEFAULT_MIN_EVENTS: usize = 64;

/// Sliding-horizon predicate-selectivity monitor with drift detection —
/// the selectivity sibling of [`StatsMonitor`].
///
/// The monitor retains the last `horizon_ms` of events whose types the
/// pattern references and estimates each predicate's selectivity by
/// striding sampled event pairs through it, exactly like the offline
/// [`cep_core::stats::estimate_selectivities`] bootstrap. Its baseline
/// starts as the
/// selectivities the initial plan was built with, so drift is always
/// "relative to what the active plan assumes".
#[derive(Debug, Clone)]
pub struct SelectivityMonitor {
    cp: CompiledPattern,
    horizon_ms: u64,
    threshold: f64,
    max_pairs: usize,
    min_events: usize,
    buffer: VecDeque<EventRef>,
    baseline: Vec<f64>,
    watermark: Timestamp,
    samples: u64,
}

impl SelectivityMonitor {
    /// Creates a monitor for one compiled pattern. `initial` is the
    /// per-predicate selectivity vector the current plan was built with
    /// (the starting baseline); `threshold` is the relative deviation that
    /// counts as drift (e.g. 0.5 = ±50%); `max_pairs` bounds the sampling
    /// work per estimate.
    pub fn new(
        cp: CompiledPattern,
        initial: Vec<f64>,
        horizon_ms: u64,
        threshold: f64,
        max_pairs: usize,
    ) -> SelectivityMonitor {
        assert!(horizon_ms > 0, "horizon must be positive");
        assert!(threshold > 0.0, "threshold must be positive");
        assert_eq!(
            initial.len(),
            cp.predicates.len(),
            "one baseline selectivity per predicate"
        );
        SelectivityMonitor {
            cp,
            horizon_ms,
            threshold,
            max_pairs: max_pairs.max(1),
            min_events: DEFAULT_MIN_EVENTS,
            buffer: VecDeque::new(),
            baseline: initial,
            watermark: 0,
            samples: 0,
        }
    }

    /// Overrides the minimum number of retained relevant events before
    /// [`Self::drifted`] may fire (default 64). Tests use small values.
    pub fn with_min_events(mut self, min_events: usize) -> SelectivityMonitor {
        self.min_events = min_events;
        self
    }

    /// Feeds one stream event; events of types the pattern does not
    /// reference are ignored (and not counted as samples).
    pub fn observe(&mut self, e: &EventRef) {
        self.watermark = self.watermark.max(e.ts);
        if self.cp.uses_type(e.type_id) {
            self.buffer.push_back(e.clone());
            self.samples += 1;
        }
        let horizon_start = self.watermark.saturating_sub(self.horizon_ms);
        while self.buffer.front().is_some_and(|e| e.ts < horizon_start) {
            self.buffer.pop_front();
        }
    }

    /// Fresh per-predicate selectivity estimates over the retained
    /// horizon. Predicates whose types have no retained events default to
    /// 1.0, mirroring the offline estimator. One bucketing pass over the
    /// ring buffer, no copy, up to `max_pairs` predicate evaluations.
    pub fn estimates(&self) -> Vec<f64> {
        estimate_selectivities_iter(self.buffer.iter(), &self.cp, self.max_pairs)
    }

    /// The baseline selectivities the active plan was built with.
    pub fn baseline(&self) -> &[f64] {
        &self.baseline
    }

    /// Total relevant events ever absorbed (the `selectivity_samples`
    /// metric of adaptive wrappers).
    pub fn samples(&self) -> u64 {
        self.samples
    }

    /// Events currently retained inside the horizon.
    pub fn retained_len(&self) -> usize {
        self.buffer.len()
    }

    /// Whether enough evidence has accumulated for [`Self::drifted`] and
    /// [`Self::estimates`] to be meaningful.
    pub fn warmed_up(&self) -> bool {
        self.buffer.len() >= self.min_events
    }

    /// Adopts the current estimates as the new baseline (call after a
    /// replan) and returns them.
    pub fn rebaseline(&mut self) -> Vec<f64> {
        let fresh = self.estimates();
        self.set_baseline(fresh.clone());
        fresh
    }

    /// Replaces the baseline with selectivities the caller already has —
    /// typically the estimates a replan was just costed with, so the
    /// baseline adopts them without paying for a second sampling pass.
    pub fn set_baseline(&mut self, sels: Vec<f64>) {
        assert_eq!(
            sels.len(),
            self.cp.predicates.len(),
            "one baseline selectivity per predicate"
        );
        self.baseline = sels;
    }

    /// Whether any predicate's estimated selectivity deviates from the
    /// baseline by more than the threshold, relative to
    /// `max(baseline, 0.05)`. Always `false` before the monitor is
    /// [warmed up](Self::warmed_up), and for patterns without predicates.
    pub fn drifted(&self) -> bool {
        if !self.warmed_up() || self.baseline.is_empty() {
            return false;
        }
        self.estimates()
            .iter()
            .zip(&self.baseline)
            .any(|(&now, &base)| (now - base).abs() / base.max(SELECTIVITY_FLOOR) > self.threshold)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use cep_core::event::Event;
    use std::sync::Arc;

    fn ev(ty: u32, ts: u64) -> EventRef {
        Arc::new(Event::new(TypeId(ty), ts, vec![]))
    }

    #[test]
    fn rates_track_sliding_horizon() {
        let mut m = StatsMonitor::new(100, 0.5);
        for ts in 0..100u64 {
            m.observe(&ev(0, ts));
        }
        let dense = m.rate(TypeId(0));
        assert!(dense > 0.9, "{dense}");
        // Go quiet: rate must fall as the horizon slides.
        for ts in (200..400u64).step_by(50) {
            m.observe(&ev(1, ts));
        }
        assert!(m.rate(TypeId(0)) < 0.1);
    }

    #[test]
    fn drift_detection_after_rate_change() {
        let mut m = StatsMonitor::new(100, 0.5);
        for ts in 0..100u64 {
            m.observe(&ev(0, ts)); // 1 event/ms
        }
        m.rebaseline();
        assert!(!m.drifted(), "no drift right after rebaseline");
        // Rate collapses to 0.1/ms.
        for ts in (100..300u64).step_by(10) {
            m.observe(&ev(0, ts));
        }
        assert!(m.drifted());
        m.rebaseline();
        assert!(!m.drifted());
    }

    #[test]
    fn new_type_counts_as_drift() {
        let mut m = StatsMonitor::new(100, 0.5);
        for ts in 0..50u64 {
            m.observe(&ev(0, ts));
        }
        m.rebaseline();
        for ts in 50..60u64 {
            m.observe(&ev(7, ts));
        }
        assert!(m.drifted());
    }

    #[test]
    #[should_panic(expected = "horizon must be positive")]
    fn zero_horizon_rejected() {
        StatsMonitor::new(0, 0.5);
    }

    #[test]
    fn dead_types_are_evicted_from_counts() {
        let mut m = StatsMonitor::new(100, 0.5);
        for ts in 0..50u64 {
            m.observe(&ev(0, ts));
        }
        assert!(m.rates().contains_key(&TypeId(0)));
        // Slide the horizon entirely past type 0 with a different type.
        for ts in (300..500u64).step_by(25) {
            m.observe(&ev(1, ts));
        }
        let rates = m.rates();
        assert!(
            !rates.contains_key(&TypeId(0)),
            "zero-count type must be evicted, got {rates:?}"
        );
        assert_eq!(m.rate(TypeId(0)), 0.0);
        assert!(rates.contains_key(&TypeId(1)));
    }

    #[test]
    fn rate_collapse_to_zero_counts_as_drift() {
        // Threshold 2.0: the relative check alone would never fire for a
        // rate that merely halves — only the vanished-type rule can.
        let mut m = StatsMonitor::new(100, 2.0);
        for ts in 0..100u64 {
            m.observe(&ev(0, ts));
        }
        m.rebaseline();
        assert!(!m.drifted());
        for ts in (300..500u64).step_by(25) {
            m.observe(&ev(1, ts)); // type 1 is new AND type 0 vanished
        }
        assert!(m.drifted(), "vanished type must register as drift");
        m.rebaseline();
        assert!(!m.drifted(), "rebaseline adopts the new regime");
    }

    #[test]
    fn watermark_ties_keep_boundary_events() {
        let mut m = StatsMonitor::new(10, 0.5);
        m.observe(&ev(0, 0));
        m.observe(&ev(0, 10));
        // horizon_start = 0: the ts-0 event sits exactly on the boundary
        // and must still be counted (eviction is strictly `ts < start`).
        assert_eq!(*m.rates().get(&TypeId(0)).unwrap(), 0.2);
        // A tied watermark (same max ts again) must not evict it either.
        m.observe(&ev(1, 10));
        assert_eq!(*m.rates().get(&TypeId(0)).unwrap(), 0.2);
        // One tick further and the ts-0 event falls out.
        m.observe(&ev(1, 11));
        assert_eq!(*m.rates().get(&TypeId(0)).unwrap(), 0.1);
    }

    #[test]
    fn single_event_horizon() {
        let mut m = StatsMonitor::new(1, 0.5);
        m.observe(&ev(0, 5));
        assert_eq!(m.rate(TypeId(0)), 1.0);
        m.observe(&ev(1, 7));
        // The horizon is one ms: only the newest event survives.
        assert_eq!(m.rate(TypeId(0)), 0.0);
        assert_eq!(m.rate(TypeId(1)), 1.0);
        assert_eq!(m.rates().len(), 1);
    }

    use cep_core::pattern::PatternBuilder;
    use cep_core::predicate::{CmpOp, Predicate};
    use cep_core::value::Value;

    /// `SEQ(T0 a, T1 b)` with `a.x < b.x`.
    fn lt_pattern() -> CompiledPattern {
        let mut b = PatternBuilder::new(1_000);
        let a = b.event(TypeId(0), "a");
        let c = b.event(TypeId(1), "b");
        b.predicate(Predicate::attr_cmp(a.pos(), 0, CmpOp::Lt, c.pos(), 0));
        CompiledPattern::compile_single(&b.seq([a, c]).unwrap()).unwrap()
    }

    /// Event with distinct stream coordinates (the estimator skips
    /// same-`seq` pairs, so seqs must differ as they do in real streams).
    fn vev(ty: u32, ts: u64, x: i64) -> EventRef {
        let mut e = Event::new(TypeId(ty), ts, vec![Value::Int(x)]);
        e.seq = ts;
        Arc::new(e)
    }

    /// Interleaved T0/T1 events with the given attribute values.
    fn feed(m: &mut SelectivityMonitor, ts0: u64, n: u64, x_a: i64, x_b: i64) {
        for i in 0..n {
            m.observe(&vev(0, ts0 + 2 * i, x_a));
            m.observe(&vev(1, ts0 + 2 * i + 1, x_b));
        }
    }

    #[test]
    fn selectivity_monitor_tracks_pass_rate_flip() {
        let cp = lt_pattern();
        // Baseline: the predicate always passes (a.x=1 < b.x=2).
        let mut m = SelectivityMonitor::new(cp, vec![1.0], 500, 0.5, 256).with_min_events(16);
        feed(&mut m, 0, 100, 1, 2);
        assert!(m.warmed_up());
        let est = m.estimates();
        assert!((est[0] - 1.0).abs() < 1e-9, "estimated {est:?}");
        assert!(!m.drifted(), "estimates match the baseline");
        // Correlation flips while both rates stay identical: the predicate
        // now never passes, which must register as drift.
        feed(&mut m, 1_000, 100, 3, 2);
        assert!((m.estimates()[0]).abs() < 1e-9);
        assert!(m.drifted(), "pass-rate collapse must count as drift");
        let adopted = m.rebaseline();
        assert!((adopted[0]).abs() < 1e-9);
        assert!(!m.drifted(), "rebaseline adopts the new correlation");
    }

    #[test]
    fn selectivity_monitor_is_horizon_bounded_and_counts_samples() {
        let cp = lt_pattern();
        let mut m = SelectivityMonitor::new(cp, vec![0.5], 100, 0.5, 64).with_min_events(8);
        feed(&mut m, 0, 50, 1, 2);
        // Irrelevant types are ignored entirely.
        m.observe(&vev(7, 99, 0));
        assert_eq!(m.samples(), 100);
        // Events slide out with the horizon: retained length is bounded.
        feed(&mut m, 10_000, 30, 1, 2);
        assert_eq!(m.samples(), 160);
        assert!(
            m.retained_len() <= 102,
            "horizon must bound the buffer, got {}",
            m.retained_len()
        );
    }

    #[test]
    fn selectivity_monitor_needs_warmup_and_predicates() {
        let cp = lt_pattern();
        // Far from warmed up: even a flagrant mismatch must not fire.
        let mut m = SelectivityMonitor::new(cp, vec![1.0], 500, 0.5, 64).with_min_events(1_000);
        feed(&mut m, 0, 20, 3, 2);
        assert!(!m.drifted(), "below min_events the monitor stays quiet");
        // A predicate-free pattern has nothing to drift on.
        let mut b = PatternBuilder::new(100);
        let a = b.event(TypeId(0), "a");
        let c = b.event(TypeId(1), "b");
        let plain = CompiledPattern::compile_single(&b.seq([a, c]).unwrap()).unwrap();
        let mut m = SelectivityMonitor::new(plain, vec![], 500, 0.5, 64).with_min_events(1);
        feed(&mut m, 0, 20, 1, 2);
        assert!(!m.drifted());
        assert!(m.estimates().is_empty());
    }

    #[test]
    fn partition_spec_follows_live_rates() {
        use cep_core::partition::TypeDisposition;
        use cep_core::predicate::{CmpOp, Predicate};

        // Two disjoint key components — (T0, T1) and (T2, T3) — so the
        // monitor's live rates decide which side stays partitioned.
        let branch = || {
            let mut b = cep_core::pattern::PatternBuilder::new(100);
            let a = b.event(TypeId(0), "a");
            let bb = b.event(TypeId(1), "b");
            let c = b.event(TypeId(2), "c");
            let d = b.event(TypeId(3), "d");
            b.predicate(Predicate::attr_cmp(a.pos(), 0, CmpOp::Eq, bb.pos(), 0));
            b.predicate(Predicate::attr_cmp(c.pos(), 0, CmpOp::Eq, d.pos(), 0));
            CompiledPattern::compile_single(&b.seq([a, bb, c, d]).unwrap()).unwrap()
        };
        let mut m = StatsMonitor::new(1_000, 0.5);
        for ts in 0..500u64 {
            m.observe(&ev(0, ts));
            m.observe(&ev(1, ts));
            if ts % 50 == 0 {
                m.observe(&ev(2, ts));
                m.observe(&ev(3, ts));
            }
        }
        let spec = m.partition_spec(&[branch()]).unwrap();
        assert_eq!(
            spec.disposition(TypeId(0)),
            Some(TypeDisposition::Partitioned { attr: 0 })
        );
        assert_eq!(
            spec.disposition(TypeId(2)),
            Some(TypeDisposition::Replicated),
            "the low-rate component is the replicated side"
        );
        // Flip the rates: the spec follows.
        for ts in 1_500..2_000u64 {
            m.observe(&ev(2, ts));
            m.observe(&ev(3, ts));
            if ts % 50 == 0 {
                m.observe(&ev(0, ts));
                m.observe(&ev(1, ts));
            }
        }
        let spec = m.partition_spec(&[branch()]).unwrap();
        assert_eq!(
            spec.disposition(TypeId(0)),
            Some(TypeDisposition::Replicated)
        );
        assert_eq!(
            spec.disposition(TypeId(2)),
            Some(TypeDisposition::Partitioned { attr: 0 })
        );
    }

    #[test]
    fn rebaseline_after_quiet_restarts_detection() {
        let mut m = StatsMonitor::new(100, 0.5);
        for ts in 0..100u64 {
            m.observe(&ev(0, ts));
        }
        m.rebaseline();
        // Quiet period: everything slides out.
        for ts in (500..700u64).step_by(50) {
            m.observe(&ev(1, ts));
        }
        assert!(m.drifted());
        m.rebaseline();
        assert!(!m.drifted(), "baseline now matches the quiet regime");
        // The old type coming back is drift again relative to the quiet
        // baseline (type 0 is no longer in the rebaselined map).
        for ts in 700..750u64 {
            m.observe(&ev(0, ts));
        }
        assert!(m.drifted());
    }
}
