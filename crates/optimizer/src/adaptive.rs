//! Lightweight adaptivity hook (Section 6.3).
//!
//! The paper defers full adaptive CEP to its companion work [27]; what plan
//! generation needs from the runtime is (a) fresh arrival-rate estimates
//! and (b) a signal that the statistics have drifted far enough from the
//! ones the current plan was built with. [`StatsMonitor`] provides both
//! over a sliding horizon; callers re-plan when [`StatsMonitor::drifted`]
//! fires (see the `adaptive_replanning` example in the repository root).

use cep_core::event::{EventRef, Timestamp, TypeId};
use std::collections::{HashMap, VecDeque};

/// Sliding-horizon arrival-rate monitor with drift detection.
#[derive(Debug, Clone)]
pub struct StatsMonitor {
    horizon_ms: u64,
    threshold: f64,
    events: VecDeque<(TypeId, Timestamp)>,
    counts: HashMap<TypeId, u64>,
    baseline: HashMap<TypeId, f64>,
    watermark: Timestamp,
}

impl StatsMonitor {
    /// Creates a monitor keeping `horizon_ms` of history; `threshold` is
    /// the relative rate deviation that counts as drift (e.g. 0.5 = ±50%).
    pub fn new(horizon_ms: u64, threshold: f64) -> StatsMonitor {
        assert!(horizon_ms > 0, "horizon must be positive");
        assert!(threshold > 0.0, "threshold must be positive");
        StatsMonitor {
            horizon_ms,
            threshold,
            events: VecDeque::new(),
            counts: HashMap::new(),
            baseline: HashMap::new(),
            watermark: 0,
        }
    }

    /// Feeds one stream event.
    pub fn observe(&mut self, e: &EventRef) {
        self.watermark = self.watermark.max(e.ts);
        self.events.push_back((e.type_id, e.ts));
        *self.counts.entry(e.type_id).or_insert(0) += 1;
        let horizon_start = self.watermark.saturating_sub(self.horizon_ms);
        while let Some(&(ty, ts)) = self.events.front() {
            if ts < horizon_start {
                self.events.pop_front();
                if let Some(c) = self.counts.get_mut(&ty) {
                    *c -= 1;
                }
            } else {
                break;
            }
        }
    }

    /// Current rate estimate for a type, in events per millisecond.
    pub fn rate(&self, ty: TypeId) -> f64 {
        let span = self.horizon_ms.min(self.watermark.max(1)).max(1) as f64;
        *self.counts.get(&ty).unwrap_or(&0) as f64 / span
    }

    /// Snapshot of all current rates.
    pub fn rates(&self) -> HashMap<TypeId, f64> {
        self.counts.keys().map(|&ty| (ty, self.rate(ty))).collect()
    }

    /// Freezes the current rates as the baseline the active plan was built
    /// with.
    pub fn rebaseline(&mut self) {
        self.baseline = self.rates();
    }

    /// Whether any observed type's rate deviates from the baseline by more
    /// than the threshold (relative). Types absent from the baseline count
    /// as drifted once seen.
    pub fn drifted(&self) -> bool {
        for &ty in self.counts.keys() {
            let now = self.rate(ty);
            match self.baseline.get(&ty) {
                Some(&base) if base > 0.0 => {
                    if (now - base).abs() / base > self.threshold {
                        return true;
                    }
                }
                Some(_) | None => {
                    if now > 0.0 && !self.baseline.contains_key(&ty) {
                        return true;
                    }
                }
            }
        }
        false
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use cep_core::event::Event;
    use std::sync::Arc;

    fn ev(ty: u32, ts: u64) -> EventRef {
        Arc::new(Event::new(TypeId(ty), ts, vec![]))
    }

    #[test]
    fn rates_track_sliding_horizon() {
        let mut m = StatsMonitor::new(100, 0.5);
        for ts in 0..100u64 {
            m.observe(&ev(0, ts));
        }
        let dense = m.rate(TypeId(0));
        assert!(dense > 0.9, "{dense}");
        // Go quiet: rate must fall as the horizon slides.
        for ts in (200..400u64).step_by(50) {
            m.observe(&ev(1, ts));
        }
        assert!(m.rate(TypeId(0)) < 0.1);
    }

    #[test]
    fn drift_detection_after_rate_change() {
        let mut m = StatsMonitor::new(100, 0.5);
        for ts in 0..100u64 {
            m.observe(&ev(0, ts)); // 1 event/ms
        }
        m.rebaseline();
        assert!(!m.drifted(), "no drift right after rebaseline");
        // Rate collapses to 0.1/ms.
        for ts in (100..300u64).step_by(10) {
            m.observe(&ev(0, ts));
        }
        assert!(m.drifted());
        m.rebaseline();
        assert!(!m.drifted());
    }

    #[test]
    fn new_type_counts_as_drift() {
        let mut m = StatsMonitor::new(100, 0.5);
        for ts in 0..50u64 {
            m.observe(&ev(0, ts));
        }
        m.rebaseline();
        for ts in 50..60u64 {
            m.observe(&ev(7, ts));
        }
        assert!(m.drifted());
    }

    #[test]
    #[should_panic(expected = "horizon must be positive")]
    fn zero_horizon_rejected() {
        StatsMonitor::new(0, 0.5);
    }
}
