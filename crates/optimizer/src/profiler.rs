//! Output profiler (Section 6.1).
//!
//! Conjunction patterns have no statically known "last" event type, so the
//! latency cost model cannot pick its anchor a priori. The paper proposes
//! profiling the emitted matches: record which element arrived temporally
//! last in each full match and, once enough evidence accumulates, feed the
//! most frequent last element to `Cost_lat` as the anchor.

use cep_core::compile::CompiledPattern;
use cep_core::matches::Match;

/// Records the temporal-arrival-order statistics of emitted matches.
#[derive(Debug, Clone)]
pub struct OutputProfiler {
    counts: Vec<u64>,
    total: u64,
    min_samples: u64,
}

impl OutputProfiler {
    /// Creates a profiler for a pattern of `n` elements; an anchor is
    /// reported only after `min_samples` matches.
    pub fn new(n: usize, min_samples: u64) -> OutputProfiler {
        OutputProfiler {
            counts: vec![0; n],
            total: 0,
            min_samples,
        }
    }

    /// Records one emitted match.
    pub fn observe(&mut self, cp: &CompiledPattern, m: &Match) {
        debug_assert_eq!(m.bindings.len(), cp.n());
        let mut last = 0usize;
        let mut last_ts = 0;
        for (i, (_, b)) in m.bindings.iter().enumerate() {
            let ts = b.max_ts();
            if ts >= last_ts {
                last_ts = ts;
                last = i;
            }
        }
        self.counts[last] += 1;
        self.total += 1;
    }

    /// Number of matches observed.
    pub fn samples(&self) -> u64 {
        self.total
    }

    /// The element most frequently arriving last, once enough samples
    /// exist.
    pub fn anchor(&self) -> Option<usize> {
        if self.total < self.min_samples {
            return None;
        }
        self.counts
            .iter()
            .enumerate()
            .max_by_key(|(_, &c)| c)
            .map(|(i, _)| i)
    }

    /// Empirical probability that element `i` arrives last.
    pub fn probability(&self, i: usize) -> f64 {
        if self.total == 0 {
            return 0.0;
        }
        self.counts[i] as f64 / self.total as f64
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use cep_core::event::{Event, TypeId};
    use cep_core::matches::Binding;
    use cep_core::pattern::PatternBuilder;
    use std::sync::Arc;

    fn cp_and2() -> CompiledPattern {
        let mut b = PatternBuilder::new(10);
        let a = b.event(TypeId(0), "a");
        let c = b.event(TypeId(1), "c");
        CompiledPattern::compile_single(&b.and([a, c]).unwrap()).unwrap()
    }

    fn mk(ts0: u64, ts1: u64) -> Match {
        let mut e0 = Event::new(TypeId(0), ts0, vec![]);
        e0.seq = ts0;
        let mut e1 = Event::new(TypeId(1), ts1, vec![]);
        e1.seq = ts1;
        Match {
            bindings: vec![
                (0, Binding::One(Arc::new(e0))),
                (1, Binding::One(Arc::new(e1))),
            ],
            last_ts: ts0.max(ts1),
            emitted_at: ts0.max(ts1),
        }
    }

    #[test]
    fn no_anchor_before_min_samples() {
        let cp = cp_and2();
        let mut p = OutputProfiler::new(2, 3);
        p.observe(&cp, &mk(1, 2));
        p.observe(&cp, &mk(3, 4));
        assert_eq!(p.anchor(), None);
        assert_eq!(p.samples(), 2);
    }

    #[test]
    fn anchor_is_most_frequent_last_element() {
        let cp = cp_and2();
        let mut p = OutputProfiler::new(2, 3);
        p.observe(&cp, &mk(1, 2)); // element 1 last
        p.observe(&cp, &mk(3, 4)); // element 1 last
        p.observe(&cp, &mk(6, 5)); // element 0 last
        assert_eq!(p.anchor(), Some(1));
        assert!((p.probability(1) - 2.0 / 3.0).abs() < 1e-12);
        assert!((p.probability(0) - 1.0 / 3.0).abs() < 1e-12);
    }
}
