//! Exhaustive dynamic-programming planners (Selinger \[45\]):
//! DP-LD for left-deep (order) plans and DP-B for bushy (tree) plans.
//!
//! Both are *exact* for the paper's objectives because those decompose over
//! element subsets: `Cost_ord` sums `PM(prefix)` over prefixes (and a
//! prefix's PM depends only on its element set), `Cost_tree` sums `PM(set)`
//! over subtree leaf sets, and the latency terms attach to the step/merge
//! that schedules an element after the latency anchor.

use crate::masks::{SubsetTables, MAX_DP_ELEMENTS};
use cep_core::cost::CostModel;
use cep_core::error::CepError;
use cep_core::plan::TreeNode;
use cep_core::stats::PatternStats;

/// Practical cap for DP-B: subset-split enumeration is `O(3^n)`.
pub const MAX_DP_BUSHY_ELEMENTS: usize = 18;

/// DP-LD \[45\]: provably optimal order plan, `O(2^n · n)`.
pub fn dp_left_deep_order(stats: &PatternStats, cm: &CostModel) -> Result<Vec<usize>, CepError> {
    let n = stats.n();
    if n > MAX_DP_ELEMENTS {
        return Err(CepError::Plan(format!(
            "DP-LD supports at most {MAX_DP_ELEMENTS} elements, got {n}"
        )));
    }
    if n == 0 {
        return Ok(Vec::new());
    }
    let tables = SubsetTables::build(stats, cm.strategy);
    let size = 1usize << n;
    let mut dp = vec![f64::INFINITY; size];
    let mut last = vec![usize::MAX; size];
    dp[0] = 0.0;
    let anchor = cm.latency_last;
    for s in 1..size {
        let pm = tables.pm_order[s];
        let mut best = f64::INFINITY;
        let mut best_t = usize::MAX;
        let mut bits = s;
        while bits != 0 {
            let t = bits.trailing_zeros() as usize;
            bits &= bits - 1;
            let prev = s & !(1 << t);
            let mut cost = dp[prev] + pm;
            if let Some(a) = anchor {
                // `t` is scheduled after the anchor iff the anchor is
                // already in the prefix.
                if t != a && prev & (1 << a) != 0 {
                    cost += cm.alpha * stats.count_in_window(t);
                }
            }
            if cost < best {
                best = cost;
                best_t = t;
            }
        }
        dp[s] = best;
        last[s] = best_t;
    }
    let mut order = Vec::with_capacity(n);
    let mut s = size - 1;
    while s != 0 {
        let t = last[s];
        order.push(t);
        s &= !(1 << t);
    }
    order.reverse();
    Ok(order)
}

/// DP-B \[45\]: provably optimal bushy tree, `O(3^n)`.
pub fn dp_bushy_tree(stats: &PatternStats, cm: &CostModel) -> Result<TreeNode, CepError> {
    let n = stats.n();
    if n == 0 {
        return Err(CepError::Plan("empty pattern".into()));
    }
    if n > MAX_DP_BUSHY_ELEMENTS {
        return Err(CepError::Plan(format!(
            "DP-B supports at most {MAX_DP_BUSHY_ELEMENTS} elements, got {n}"
        )));
    }
    let tables = SubsetTables::build(stats, cm.strategy);
    let size = 1usize << n;
    let mut dp = vec![f64::INFINITY; size];
    let mut split = vec![0usize; size];
    for i in 0..n {
        dp[1 << i] = tables.pm_tree[1 << i];
    }
    let anchor = cm.latency_last;
    for s in 1..size {
        if s.count_ones() < 2 {
            continue;
        }
        let pm = tables.pm_tree[s];
        let mut best = f64::INFINITY;
        let mut best_a = 0usize;
        // Enumerate splits once: force the lowest bit into `a`.
        let lowest = s & s.wrapping_neg();
        let rest = s & !lowest;
        let mut sub = rest;
        loop {
            let a = sub | lowest;
            let b = s & !a;
            if b != 0 {
                let mut cost = dp[a] + dp[b] + pm;
                if let Some(anchor) = anchor {
                    let abit = 1usize << anchor;
                    if a & abit != 0 {
                        cost += cm.alpha * tables.pm_tree[b];
                    } else if b & abit != 0 {
                        cost += cm.alpha * tables.pm_tree[a];
                    }
                }
                if cost < best {
                    best = cost;
                    best_a = a;
                }
            }
            if sub == 0 {
                break;
            }
            sub = (sub - 1) & rest;
        }
        dp[s] = best;
        split[s] = best_a;
    }
    fn rebuild(s: usize, split: &[usize]) -> TreeNode {
        if s.count_ones() == 1 {
            return TreeNode::Leaf(s.trailing_zeros() as usize);
        }
        let a = split[s];
        let b = s & !a;
        TreeNode::join(rebuild(a, split), rebuild(b, split))
    }
    Ok(rebuild(size - 1, &split))
}

#[cfg(test)]
mod tests {
    use super::*;
    use cep_core::selection::SelectionStrategy;

    fn stats4() -> PatternStats {
        PatternStats::synthetic(
            10.0,
            vec![4.0, 1.0, 0.05, 2.0],
            vec![
                vec![1.0, 0.5, 1.0, 1.0],
                vec![0.5, 1.0, 0.2, 1.0],
                vec![1.0, 0.2, 1.0, 0.7],
                vec![1.0, 1.0, 0.7, 1.0],
            ],
        )
    }

    fn all_orders(n: usize) -> Vec<Vec<usize>> {
        fn rec(rest: Vec<usize>, acc: Vec<usize>, out: &mut Vec<Vec<usize>>) {
            if rest.is_empty() {
                out.push(acc);
                return;
            }
            for (i, &x) in rest.iter().enumerate() {
                let mut r = rest.clone();
                r.remove(i);
                let mut a = acc.clone();
                a.push(x);
                rec(r, a, out);
            }
        }
        let mut out = Vec::new();
        rec((0..n).collect(), Vec::new(), &mut out);
        out
    }

    fn all_trees(n: usize) -> Vec<TreeNode> {
        fn shapes(leaves: &[usize]) -> Vec<TreeNode> {
            if leaves.len() == 1 {
                return vec![TreeNode::Leaf(leaves[0])];
            }
            let mut out = Vec::new();
            for split in 1..leaves.len() {
                for l in shapes(&leaves[..split]) {
                    for r in shapes(&leaves[split..]) {
                        out.push(TreeNode::join(l.clone(), r));
                    }
                }
            }
            out
        }
        let mut out = Vec::new();
        for p in all_orders(n) {
            out.extend(shapes(&p));
        }
        out
    }

    #[test]
    fn dp_ld_matches_exhaustive_optimum() {
        let s = stats4();
        for strategy in [
            SelectionStrategy::SkipTillAnyMatch,
            SelectionStrategy::SkipTillNextMatch,
        ] {
            let cm = CostModel {
                strategy,
                ..Default::default()
            };
            let dp = dp_left_deep_order(&s, &cm).unwrap();
            let dp_cost = cm.order_cost(&s, &dp);
            let best = all_orders(4)
                .into_iter()
                .map(|o| cm.order_cost(&s, &o))
                .fold(f64::INFINITY, f64::min);
            assert!(
                (dp_cost - best).abs() <= 1e-9 * best.max(1.0),
                "{strategy}: {dp_cost} vs {best}"
            );
        }
    }

    #[test]
    fn dp_ld_with_latency_matches_exhaustive() {
        let s = stats4();
        let cm = CostModel::throughput()
            .with_alpha(0.5)
            .with_latency_last(Some(3));
        let dp = dp_left_deep_order(&s, &cm).unwrap();
        let dp_cost = cm.order_cost(&s, &dp);
        let best = all_orders(4)
            .into_iter()
            .map(|o| cm.order_cost(&s, &o))
            .fold(f64::INFINITY, f64::min);
        assert!((dp_cost - best).abs() <= 1e-9 * best.max(1.0));
    }

    #[test]
    fn dp_bushy_matches_exhaustive_optimum() {
        let s = stats4();
        for strategy in [
            SelectionStrategy::SkipTillAnyMatch,
            SelectionStrategy::SkipTillNextMatch,
        ] {
            let cm = CostModel {
                strategy,
                ..Default::default()
            };
            let dp = dp_bushy_tree(&s, &cm).unwrap();
            let dp_cost = cm.tree_cost(&s, &dp);
            let best = all_trees(4)
                .into_iter()
                .map(|t| cm.tree_cost(&s, &t))
                .fold(f64::INFINITY, f64::min);
            assert!(
                (dp_cost - best).abs() <= 1e-9 * best.max(1.0),
                "{strategy}: {dp_cost} vs {best}"
            );
        }
    }

    #[test]
    fn dp_bushy_with_latency_matches_exhaustive() {
        let s = stats4();
        let cm = CostModel::throughput()
            .with_alpha(0.7)
            .with_latency_last(Some(2));
        let dp = dp_bushy_tree(&s, &cm).unwrap();
        let dp_cost = cm.tree_cost(&s, &dp);
        let best = all_trees(4)
            .into_iter()
            .map(|t| cm.tree_cost(&s, &t))
            .fold(f64::INFINITY, f64::min);
        assert!((dp_cost - best).abs() <= 1e-9 * best.max(1.0));
    }

    #[test]
    fn dp_bushy_at_least_as_good_as_left_deep() {
        let s = stats4();
        let cm = CostModel::throughput();
        let order = dp_left_deep_order(&s, &cm).unwrap();
        let ld_tree = TreeNode::left_deep(&order);
        let bushy = dp_bushy_tree(&s, &cm).unwrap();
        assert!(cm.tree_cost(&s, &bushy) <= cm.tree_cost(&s, &ld_tree) + 1e-9);
    }

    #[test]
    fn size_limits_enforced() {
        let n = MAX_DP_BUSHY_ELEMENTS + 1;
        let s = PatternStats::synthetic(1.0, vec![1.0; n], vec![vec![1.0; n]; n]);
        let cm = CostModel::throughput();
        assert!(dp_bushy_tree(&s, &cm).is_err());
        // DP-LD accepts this size (limit is higher).
        assert!(dp_left_deep_order(&s, &cm).is_ok());
    }

    #[test]
    fn dp_ld_returns_permutation() {
        let s = stats4();
        let cm = CostModel::throughput();
        let mut o = dp_left_deep_order(&s, &cm).unwrap();
        o.sort_unstable();
        assert_eq!(o, vec![0, 1, 2, 3]);
    }
}
