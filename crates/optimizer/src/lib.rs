//! # cep-optimizer
//!
//! CEP Plan Generation: the full algorithm suite evaluated in Section 7.1
//! of *Join Query Optimization Techniques for CEP Applications*
//! (Kolchinsky & Schuster, VLDB 2018):
//!
//! | Name (paper)  | Kind  | Origin | Function |
//! |---------------|-------|--------|----------|
//! | TRIVIAL       | order | native CPG (SASE, Cayuga) | [`order::trivial_order`] |
//! | EFREQ         | order | native CPG (PB-CED, lazy NFA) | [`order::efreq_order`] |
//! | GREEDY        | order | JQPG, Swami \[47\] | [`order::greedy_order`] |
//! | II-RANDOM     | order | JQPG, Swami \[47\] | [`order::ii_random_order`] |
//! | II-GREEDY     | order | JQPG, Swami \[47\] | [`order::ii_greedy_order`] |
//! | DP-LD         | order | JQPG, Selinger \[45\] | [`dp::dp_left_deep_order`] |
//! | KBZ (ext.)    | order | JQPG, IK/KBZ [24, 31] (Section 4.3) | [`kbz::kbz_order`] |
//! | ZSTREAM       | tree  | native CPG, Mei & Madden \[35\] | [`zstream::zstream_native`] |
//! | ZSTREAM-ORD   | tree  | hybrid (Section 7.1) | [`zstream::zstream_ordered`] |
//! | DP-B          | tree  | JQPG, Selinger \[45\] | [`dp::dp_bushy_tree`] |
//!
//! All algorithms optimize the same [`CostModel`](cep_core::cost::CostModel)
//! objective — strategy-aware throughput cost plus `α ×` latency cost — so
//! results are directly comparable. The [`planner`] module provides the
//! facade, [`profiler`] the Section 6.1 output profiler, and [`adaptive`]
//! the Section 6.3 statistics monitor.

#![warn(missing_docs)]

pub mod adaptive;
pub mod dp;
pub mod kbz;
pub mod masks;
pub mod order;
pub mod planner;
pub mod profiler;
pub mod zstream;

use std::fmt;

/// Order-based plan generation algorithms (Section 7.1).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum OrderAlgorithm {
    /// Specification order (native CPG baseline).
    Trivial,
    /// Ascending event frequency (native CPG baseline).
    EFreq,
    /// Greedy cost-based construction \[47\].
    Greedy,
    /// Iterative improvement from random starts \[47\].
    IIRandom {
        /// Number of random restarts.
        restarts: usize,
        /// RNG seed (plans are deterministic per seed).
        seed: u64,
    },
    /// Iterative improvement seeded by GREEDY \[47\].
    IIGreedy,
    /// Exhaustive left-deep dynamic programming \[45\].
    DpLd,
    /// IK/KBZ rank-based ordering for acyclic graphs (Section 4.3
    /// extension); falls back to GREEDY outside its preconditions.
    Kbz,
}

impl OrderAlgorithm {
    /// The paper's set, in presentation order (II variants with defaults).
    pub fn paper_set() -> Vec<OrderAlgorithm> {
        vec![
            OrderAlgorithm::Trivial,
            OrderAlgorithm::EFreq,
            OrderAlgorithm::Greedy,
            OrderAlgorithm::IIRandom {
                restarts: 10,
                seed: 0xCEB,
            },
            OrderAlgorithm::IIGreedy,
            OrderAlgorithm::DpLd,
        ]
    }

    /// Whether the algorithm is an adapted JQPG method (vs native CPG).
    pub fn is_jqpg(&self) -> bool {
        !matches!(self, OrderAlgorithm::Trivial | OrderAlgorithm::EFreq)
    }
}

impl fmt::Display for OrderAlgorithm {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = match self {
            OrderAlgorithm::Trivial => "TRIVIAL",
            OrderAlgorithm::EFreq => "EFREQ",
            OrderAlgorithm::Greedy => "GREEDY",
            OrderAlgorithm::IIRandom { .. } => "II-RANDOM",
            OrderAlgorithm::IIGreedy => "II-GREEDY",
            OrderAlgorithm::DpLd => "DP-LD",
            OrderAlgorithm::Kbz => "KBZ",
        };
        f.write_str(s)
    }
}

/// Tree-based plan generation algorithms (Section 7.1).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TreeAlgorithm {
    /// ZStream's native interval DP over the specification leaf order \[35\].
    ZStream,
    /// GREEDY leaf ordering followed by the interval DP (Section 7.1).
    ZStreamOrd,
    /// Exhaustive bushy dynamic programming \[45\].
    DpB,
}

impl TreeAlgorithm {
    /// The paper's set, in presentation order.
    pub fn paper_set() -> Vec<TreeAlgorithm> {
        vec![
            TreeAlgorithm::ZStream,
            TreeAlgorithm::ZStreamOrd,
            TreeAlgorithm::DpB,
        ]
    }

    /// Whether the algorithm is an adapted JQPG method (vs native CPG).
    pub fn is_jqpg(&self) -> bool {
        !matches!(self, TreeAlgorithm::ZStream)
    }
}

impl fmt::Display for TreeAlgorithm {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = match self {
            TreeAlgorithm::ZStream => "ZSTREAM",
            TreeAlgorithm::ZStreamOrd => "ZSTREAM-ORD",
            TreeAlgorithm::DpB => "DP-B",
        };
        f.write_str(s)
    }
}

pub use adaptive::{SelectivityMonitor, StatsMonitor};
pub use planner::{LatencyAnchor, Planner, PlannerConfig};
pub use profiler::OutputProfiler;
