//! ZSTREAM plan generation \[35\] and its greedy-ordered variant.
//!
//! ZStream's native algorithm chooses the optimal tree *topology* over a
//! fixed left-to-right sequence of leaves — an interval dynamic program,
//! `O(n³)`. Because it cannot reorder leaves, it misses plans such as
//! Figure 3(c) of the paper; ZSTREAM-ORD closes part of the gap by first
//! ordering the leaves with the greedy JQPG heuristic (Section 7.1).

use crate::masks::{SubsetTables, MAX_DP_ELEMENTS};
use crate::order::greedy_order;
use cep_core::cost::CostModel;
use cep_core::error::CepError;
use cep_core::plan::TreeNode;
use cep_core::stats::PatternStats;

/// ZSTREAM: optimal tree over the given (fixed) leaf order.
pub fn zstream_tree(
    stats: &PatternStats,
    cm: &CostModel,
    leaf_order: &[usize],
) -> Result<TreeNode, CepError> {
    let n = leaf_order.len();
    if n == 0 {
        return Err(CepError::Plan("empty pattern".into()));
    }
    if n > MAX_DP_ELEMENTS {
        return Err(CepError::Plan(format!(
            "ZStream interval DP supports at most {MAX_DP_ELEMENTS} leaves, got {n}"
        )));
    }
    let tables = SubsetTables::build(stats, cm.strategy);
    // Interval masks.
    let mut interval_mask = vec![vec![0usize; n]; n];
    #[allow(clippy::needless_range_loop)] // triangular table fill: index form is clearest
    for i in 0..n {
        let mut m = 0usize;
        for j in i..n {
            m |= 1 << leaf_order[j];
            interval_mask[i][j] = m;
        }
    }
    let anchor_bit = cm.latency_last.map(|a| 1usize << a);
    let mut dp = vec![vec![f64::INFINITY; n]; n];
    let mut choice = vec![vec![0usize; n]; n];
    #[allow(clippy::needless_range_loop)]
    for i in 0..n {
        dp[i][i] = tables.pm_tree[1 << leaf_order[i]];
    }
    for len in 2..=n {
        for i in 0..=(n - len) {
            let j = i + len - 1;
            let pm = tables.pm_tree[interval_mask[i][j]];
            let mut best = f64::INFINITY;
            let mut best_k = i;
            for k in i..j {
                let mut cost = dp[i][k] + dp[k + 1][j] + pm;
                if let Some(abit) = anchor_bit {
                    let left = interval_mask[i][k];
                    let right = interval_mask[k + 1][j];
                    if left & abit != 0 {
                        cost += cm.alpha * tables.pm_tree[right];
                    } else if right & abit != 0 {
                        cost += cm.alpha * tables.pm_tree[left];
                    }
                }
                if cost < best {
                    best = cost;
                    best_k = k;
                }
            }
            dp[i][j] = best;
            choice[i][j] = best_k;
        }
    }
    fn rebuild(i: usize, j: usize, leaf_order: &[usize], choice: &[Vec<usize>]) -> TreeNode {
        if i == j {
            return TreeNode::Leaf(leaf_order[i]);
        }
        let k = choice[i][j];
        TreeNode::join(
            rebuild(i, k, leaf_order, choice),
            rebuild(k + 1, j, leaf_order, choice),
        )
    }
    Ok(rebuild(0, n - 1, leaf_order, &choice))
}

/// ZSTREAM with the specification leaf order (the paper's native baseline).
pub fn zstream_native(stats: &PatternStats, cm: &CostModel) -> Result<TreeNode, CepError> {
    let order: Vec<usize> = (0..stats.n()).collect();
    zstream_tree(stats, cm, &order)
}

/// ZSTREAM-ORD: greedy leaf ordering, then the interval DP.
pub fn zstream_ordered(stats: &PatternStats, cm: &CostModel) -> Result<TreeNode, CepError> {
    let order = greedy_order(stats, cm);
    zstream_tree(stats, cm, &order)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::dp::dp_bushy_tree;

    /// Figure 3's instance: SEQ(A,B,C), equal rates, highly selective
    /// predicate between A and C only.
    fn figure3_stats() -> PatternStats {
        let sel_ac = 0.01;
        let temporal = 0.5;
        PatternStats::synthetic(
            10.0,
            vec![1.0, 1.0, 1.0],
            vec![
                vec![1.0, temporal, sel_ac * temporal],
                vec![temporal, 1.0, temporal],
                vec![sel_ac * temporal, temporal, 1.0],
            ],
        )
    }

    #[test]
    fn zstream_misses_optimal_tree_dp_b_finds_it() {
        // The paper's Figure 3: ZStream, unable to reorder leaves, cannot
        // produce ((A C) B); DP-B can.
        let s = figure3_stats();
        let cm = CostModel::throughput();
        let z = zstream_native(&s, &cm).unwrap();
        let b = dp_bushy_tree(&s, &cm).unwrap();
        let z_cost = cm.tree_cost(&s, &z);
        let b_cost = cm.tree_cost(&s, &b);
        assert!(
            b_cost < z_cost,
            "DP-B ({b_cost}) must beat order-bound ZStream ({z_cost})"
        );
        // The optimal tree joins A and C first.
        let expected = TreeNode::join(
            TreeNode::join(TreeNode::Leaf(0), TreeNode::Leaf(2)),
            TreeNode::Leaf(1),
        );
        assert!((cm.tree_cost(&s, &expected) - b_cost).abs() <= 1e-9 * b_cost);
    }

    #[test]
    fn zstream_is_optimal_among_fixed_order_trees() {
        // For n=4 compare against brute force over trees preserving the
        // leaf order.
        let s = PatternStats::synthetic(
            10.0,
            vec![2.0, 0.5, 1.0, 0.2],
            vec![
                vec![1.0, 0.4, 1.0, 1.0],
                vec![0.4, 1.0, 0.9, 1.0],
                vec![1.0, 0.9, 1.0, 0.3],
                vec![1.0, 1.0, 0.3, 1.0],
            ],
        );
        let cm = CostModel::throughput();
        fn shapes(leaves: &[usize]) -> Vec<TreeNode> {
            if leaves.len() == 1 {
                return vec![TreeNode::Leaf(leaves[0])];
            }
            let mut out = Vec::new();
            for split in 1..leaves.len() {
                for l in shapes(&leaves[..split]) {
                    for r in shapes(&leaves[split..]) {
                        out.push(TreeNode::join(l.clone(), r));
                    }
                }
            }
            out
        }
        let best = shapes(&[0, 1, 2, 3])
            .into_iter()
            .map(|t| cm.tree_cost(&s, &t))
            .fold(f64::INFINITY, f64::min);
        let z = zstream_native(&s, &cm).unwrap();
        let zc = cm.tree_cost(&s, &z);
        assert!((zc - best).abs() <= 1e-9 * best.max(1.0), "{zc} vs {best}");
        assert_eq!(z.leaves(), vec![0, 1, 2, 3], "leaf order must be kept");
    }

    #[test]
    fn zstream_ordered_no_worse_than_native_on_fig3() {
        let s = figure3_stats();
        let cm = CostModel::throughput();
        let native = cm.tree_cost(&s, &zstream_native(&s, &cm).unwrap());
        let ordered = cm.tree_cost(&s, &zstream_ordered(&s, &cm).unwrap());
        assert!(ordered <= native + 1e-9);
    }

    #[test]
    fn latency_anchor_respected() {
        let s = figure3_stats();
        let cm = CostModel::throughput()
            .with_alpha(0.5)
            .with_latency_last(Some(2));
        fn shapes(leaves: &[usize]) -> Vec<TreeNode> {
            if leaves.len() == 1 {
                return vec![TreeNode::Leaf(leaves[0])];
            }
            let mut out = Vec::new();
            for split in 1..leaves.len() {
                for l in shapes(&leaves[..split]) {
                    for r in shapes(&leaves[split..]) {
                        out.push(TreeNode::join(l.clone(), r));
                    }
                }
            }
            out
        }
        let best = shapes(&[0, 1, 2])
            .into_iter()
            .map(|t| cm.tree_cost(&s, &t))
            .fold(f64::INFINITY, f64::min);
        let z = zstream_native(&s, &cm).unwrap();
        let zc = cm.tree_cost(&s, &z);
        assert!((zc - best).abs() <= 1e-9 * best.max(1.0));
    }

    #[test]
    fn single_leaf_tree() {
        let s = PatternStats::synthetic(10.0, vec![1.0], vec![vec![1.0]]);
        let cm = CostModel::throughput();
        let z = zstream_native(&s, &cm).unwrap();
        assert_eq!(z, TreeNode::Leaf(0));
    }
}
