//! Observability foundation for the CEP stack: structured tracing,
//! log₂-bucketed latency histograms, and a metrics registry with
//! Prometheus/JSON export.
//!
//! This crate deliberately has **zero dependencies** (not even on
//! `cep-core`) so every layer of the stack — core engines, the adaptive
//! runtime, the sharded runtime, the bench harness — can embed its types
//! without cycles:
//!
//! - [`hist::LatencyHistogram`] replaces sum-only latency counters with
//!   mergeable p50/p95/p99 distributions (embedded in `EngineMetrics`).
//! - [`trace::Tracer`] + [`trace::TraceRecord`] give runtime decisions
//!   (plan swaps, replays, shard routing, match emission) a typed,
//!   JSONL-serializable trace with a one-load disabled path.
//! - [`registry::MetricsRegistry`] renders metric snapshots in Prometheus
//!   text-exposition and JSON formats, with a [`validate_prometheus`]
//!   checker used by the CI smoke step.

#![warn(missing_docs)]
#![forbid(unsafe_code)]
// The vendored proptest macro is a token-tree muncher; two property tests
// in one block exceed the default recursion limit.
#![recursion_limit = "256"]

pub mod hist;
pub mod json;
pub mod registry;
pub mod trace;

pub use hist::LatencyHistogram;
pub use registry::{validate_prometheus, MetricKind, MetricsRegistry};
pub use trace::{JsonlSink, RingSink, TraceRecord, TraceSink, Tracer};
