//! A snapshot-style metrics registry with Prometheus text-exposition and
//! JSON export.
//!
//! Unlike a live registry of shared atomics, this one is rebuilt from a
//! metrics snapshot on demand — the engines already aggregate their own
//! `EngineMetrics`-style structs, so the registry's job is only naming,
//! labelling, and rendering. Families keep insertion order (stable output
//! for diffs), samples within a family keep insertion order too, and
//! [`validate_prometheus`] checks the rendered text against the
//! [exposition format] rules the CI smoke step relies on.
//!
//! [exposition format]: https://prometheus.io/docs/instrumenting/exposition_formats/

use crate::hist::LatencyHistogram;
use crate::json::Json;

/// The exposition type of a metric family.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum MetricKind {
    /// Monotonically increasing count.
    Counter,
    /// Point-in-time value.
    Gauge,
    /// Bucketed distribution (rendered as `_bucket`/`_sum`/`_count`).
    Histogram,
}

impl MetricKind {
    fn as_str(self) -> &'static str {
        match self {
            MetricKind::Counter => "counter",
            MetricKind::Gauge => "gauge",
            MetricKind::Histogram => "histogram",
        }
    }
}

type Labels = Vec<(String, String)>;

enum SampleValue {
    Scalar(f64),
    Hist {
        buckets: Vec<(f64, u64)>,
        sum: u64,
        count: u64,
    },
}

struct Sample {
    labels: Labels,
    value: SampleValue,
}

struct MetricFamily {
    name: String,
    help: String,
    kind: MetricKind,
    samples: Vec<Sample>,
}

/// An insertion-ordered collection of metric families, built from metric
/// snapshots and rendered to Prometheus text or JSON.
#[derive(Default)]
pub struct MetricsRegistry {
    families: Vec<MetricFamily>,
}

fn own_labels(labels: &[(&str, &str)]) -> Labels {
    labels
        .iter()
        .map(|(k, v)| (k.to_string(), v.to_string()))
        .collect()
}

fn valid_name(name: &str) -> bool {
    !name.is_empty()
        && name
            .bytes()
            .enumerate()
            .all(|(i, b)| b.is_ascii_alphabetic() || b == b'_' || (i > 0 && b.is_ascii_digit()))
}

impl MetricsRegistry {
    /// An empty registry.
    pub fn new() -> MetricsRegistry {
        MetricsRegistry::default()
    }

    fn family(&mut self, name: &str, help: &str, kind: MetricKind) -> &mut MetricFamily {
        assert!(valid_name(name), "invalid metric name {name:?}");
        if let Some(i) = self.families.iter().position(|f| f.name == name) {
            assert!(
                self.families[i].kind == kind,
                "metric {name:?} registered with two kinds"
            );
            return &mut self.families[i];
        }
        self.families.push(MetricFamily {
            name: name.to_string(),
            help: help.to_string(),
            kind,
            samples: Vec::new(),
        });
        self.families.last_mut().expect("just pushed")
    }

    /// Records a counter sample. Repeated calls with the same name append
    /// samples (one per label set) to the same family.
    pub fn counter(&mut self, name: &str, help: &str, labels: &[(&str, &str)], value: u64) {
        self.family(name, help, MetricKind::Counter)
            .samples
            .push(Sample {
                labels: own_labels(labels),
                value: SampleValue::Scalar(value as f64),
            });
    }

    /// Records a gauge sample.
    pub fn gauge(&mut self, name: &str, help: &str, labels: &[(&str, &str)], value: f64) {
        self.family(name, help, MetricKind::Gauge)
            .samples
            .push(Sample {
                labels: own_labels(labels),
                value: SampleValue::Scalar(value),
            });
    }

    /// Records a histogram sample from a [`LatencyHistogram`] snapshot.
    pub fn histogram(
        &mut self,
        name: &str,
        help: &str,
        labels: &[(&str, &str)],
        hist: &LatencyHistogram,
    ) {
        self.family(name, help, MetricKind::Histogram)
            .samples
            .push(Sample {
                labels: own_labels(labels),
                value: SampleValue::Hist {
                    buckets: hist.cumulative_buckets(),
                    sum: hist.sum(),
                    count: hist.count(),
                },
            });
    }

    /// Number of registered families.
    pub fn len(&self) -> usize {
        self.families.len()
    }

    /// Whether no family was registered.
    pub fn is_empty(&self) -> bool {
        self.families.is_empty()
    }

    /// Renders the Prometheus text exposition format (`# HELP`/`# TYPE`
    /// headers, one sample line per label set, histograms expanded into
    /// `_bucket{le=…}`/`_sum`/`_count` series).
    pub fn render_prometheus(&self) -> String {
        let mut out = String::new();
        for fam in &self.families {
            out.push_str(&format!("# HELP {} {}\n", fam.name, escape_help(&fam.help)));
            out.push_str(&format!("# TYPE {} {}\n", fam.name, fam.kind.as_str()));
            for s in &fam.samples {
                match &s.value {
                    SampleValue::Scalar(v) => {
                        out.push_str(&format!(
                            "{}{} {}\n",
                            fam.name,
                            render_labels(&s.labels, None),
                            render_value(*v)
                        ));
                    }
                    SampleValue::Hist {
                        buckets,
                        sum,
                        count,
                    } => {
                        for (le, cum) in buckets {
                            out.push_str(&format!(
                                "{}_bucket{} {}\n",
                                fam.name,
                                render_labels(&s.labels, Some(*le)),
                                cum
                            ));
                        }
                        out.push_str(&format!(
                            "{}_sum{} {}\n",
                            fam.name,
                            render_labels(&s.labels, None),
                            sum
                        ));
                        out.push_str(&format!(
                            "{}_count{} {}\n",
                            fam.name,
                            render_labels(&s.labels, None),
                            count
                        ));
                    }
                }
            }
        }
        out
    }

    /// Renders the same snapshot as a canonical JSON document:
    /// `{"metrics":[{"name":…,"kind":…,"help":…,"samples":[…]}]}`.
    pub fn render_json(&self) -> String {
        let families: Vec<Json> = self
            .families
            .iter()
            .map(|fam| {
                let samples: Vec<Json> = fam
                    .samples
                    .iter()
                    .map(|s| {
                        let labels = Json::Obj(
                            s.labels
                                .iter()
                                .map(|(k, v)| (k.clone(), Json::Str(v.clone())))
                                .collect(),
                        );
                        let mut pairs = vec![("labels".to_string(), labels)];
                        match &s.value {
                            SampleValue::Scalar(v) => {
                                pairs.push(("value".to_string(), json_number(*v)));
                            }
                            SampleValue::Hist {
                                buckets,
                                sum,
                                count,
                            } => {
                                let bs: Vec<Json> = buckets
                                    .iter()
                                    .map(|(le, cum)| {
                                        Json::Obj(vec![
                                            (
                                                "le".to_string(),
                                                if le.is_infinite() {
                                                    Json::Str("+Inf".to_string())
                                                } else {
                                                    Json::Float(*le)
                                                },
                                            ),
                                            ("count".to_string(), Json::UInt(*cum)),
                                        ])
                                    })
                                    .collect();
                                pairs.push(("buckets".to_string(), Json::Arr(bs)));
                                pairs.push(("sum".to_string(), Json::UInt(*sum)));
                                pairs.push(("count".to_string(), Json::UInt(*count)));
                            }
                        }
                        Json::Obj(pairs)
                    })
                    .collect();
                Json::Obj(vec![
                    ("name".to_string(), Json::Str(fam.name.clone())),
                    ("kind".to_string(), Json::Str(fam.kind.as_str().to_string())),
                    ("help".to_string(), Json::Str(fam.help.clone())),
                    ("samples".to_string(), Json::Arr(samples)),
                ])
            })
            .collect();
        Json::Obj(vec![("metrics".to_string(), Json::Arr(families))]).encode()
    }
}

/// Integers render as JSON integers, everything else as floats.
fn json_number(v: f64) -> Json {
    if v.is_finite() && v >= 0.0 && v <= u64::MAX as f64 && v.fract() == 0.0 {
        Json::UInt(v as u64)
    } else if v.is_finite() {
        Json::Float(v)
    } else {
        Json::Str(if v.is_nan() {
            "nan".to_string()
        } else if v > 0.0 {
            "inf".to_string()
        } else {
            "-inf".to_string()
        })
    }
}

fn render_value(v: f64) -> String {
    if v.is_nan() {
        "NaN".to_string()
    } else if v.is_infinite() {
        if v > 0.0 { "+Inf" } else { "-Inf" }.to_string()
    } else if v.fract() == 0.0 && v.abs() < 1e15 {
        format!("{}", v as i64)
    } else {
        format!("{v:?}")
    }
}

fn render_le(le: f64) -> String {
    if le.is_infinite() {
        "+Inf".to_string()
    } else {
        render_value(le)
    }
}

fn escape_label(v: &str) -> String {
    let mut out = String::with_capacity(v.len());
    for c in v.chars() {
        match c {
            '\\' => out.push_str("\\\\"),
            '"' => out.push_str("\\\""),
            '\n' => out.push_str("\\n"),
            c => out.push(c),
        }
    }
    out
}

fn escape_help(v: &str) -> String {
    let mut out = String::with_capacity(v.len());
    for c in v.chars() {
        match c {
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            c => out.push(c),
        }
    }
    out
}

fn render_labels(labels: &Labels, le: Option<f64>) -> String {
    if labels.is_empty() && le.is_none() {
        return String::new();
    }
    let mut parts: Vec<String> = labels
        .iter()
        .map(|(k, v)| format!("{k}=\"{}\"", escape_label(v)))
        .collect();
    if let Some(le) = le {
        parts.push(format!("le=\"{}\"", render_le(le)));
    }
    format!("{{{}}}", parts.join(","))
}

/// Validates Prometheus text-exposition output: every sample belongs to a
/// family whose `# TYPE` appeared first, names are well-formed, values
/// parse, histogram bucket series are cumulative with `le="+Inf"` equal to
/// the `_count` sample. Returns the first violation found.
pub fn validate_prometheus(text: &str) -> Result<(), String> {
    use std::collections::HashMap;
    let mut types: HashMap<String, String> = HashMap::new();
    // (family, labels-without-le) → (last le seen, last cumulative, inf count)
    let mut bucket_state: HashMap<(String, String), (f64, u64, Option<u64>)> = HashMap::new();
    let mut counts: HashMap<(String, String), u64> = HashMap::new();

    for (lineno, line) in text.lines().enumerate() {
        let n = lineno + 1;
        let line = line.trim_end();
        if line.is_empty() {
            continue;
        }
        if let Some(rest) = line.strip_prefix("# TYPE ") {
            let mut it = rest.splitn(2, ' ');
            let name = it.next().unwrap_or("");
            let kind = it.next().ok_or(format!("line {n}: TYPE without kind"))?;
            if !valid_name(name) {
                return Err(format!("line {n}: invalid metric name {name:?}"));
            }
            if !matches!(
                kind,
                "counter" | "gauge" | "histogram" | "summary" | "untyped"
            ) {
                return Err(format!("line {n}: unknown TYPE {kind:?}"));
            }
            if types.insert(name.to_string(), kind.to_string()).is_some() {
                return Err(format!("line {n}: duplicate TYPE for {name:?}"));
            }
            continue;
        }
        if line.starts_with('#') {
            continue; // HELP or comment
        }

        // Sample line: name[{labels}] value
        let (name_labels, value) = line
            .rsplit_once(' ')
            .ok_or(format!("line {n}: sample without value"))?;
        if !(value == "+Inf" || value == "-Inf" || value == "NaN" || value.parse::<f64>().is_ok()) {
            return Err(format!("line {n}: unparseable value {value:?}"));
        }
        let (name, labels) = match name_labels.find('{') {
            Some(i) => {
                if !name_labels.ends_with('}') {
                    return Err(format!("line {n}: unterminated label set"));
                }
                (
                    &name_labels[..i],
                    &name_labels[i + 1..name_labels.len() - 1],
                )
            }
            None => (name_labels, ""),
        };
        if !valid_name(name) {
            return Err(format!("line {n}: invalid metric name {name:?}"));
        }
        // The family is the name with any histogram suffix stripped —
        // but only if the suffixed form matches a declared histogram.
        let (family, suffix) = ["_bucket", "_sum", "_count"]
            .iter()
            .find_map(|s| {
                name.strip_suffix(s)
                    .filter(|f| types.get(*f).map(String::as_str) == Some("histogram"))
                    .map(|f| (f.to_string(), *s))
            })
            .unwrap_or((name.to_string(), ""));
        if !types.contains_key(&family) {
            return Err(format!("line {n}: sample {name:?} precedes its # TYPE"));
        }
        if types[&family] == "histogram" && suffix.is_empty() {
            return Err(format!(
                "line {n}: bare sample {name:?} for histogram family"
            ));
        }

        if suffix == "_bucket" {
            let mut le: Option<f64> = None;
            let mut rest_labels: Vec<&str> = Vec::new();
            for part in split_labels(labels) {
                if let Some(v) = part.strip_prefix("le=\"").and_then(|v| v.strip_suffix('"')) {
                    le = Some(match v {
                        "+Inf" => f64::INFINITY,
                        v => v
                            .parse::<f64>()
                            .map_err(|_| format!("line {n}: bad le {v:?}"))?,
                    });
                } else {
                    rest_labels.push(part);
                }
            }
            let le = le.ok_or(format!("line {n}: _bucket without le label"))?;
            let cum: u64 = value
                .parse()
                .map_err(|_| format!("line {n}: bucket count not a u64"))?;
            let key = (family.clone(), rest_labels.join(","));
            let entry = bucket_state
                .entry(key)
                .or_insert((f64::NEG_INFINITY, 0, None));
            if le <= entry.0 {
                return Err(format!("line {n}: le bounds not increasing"));
            }
            if cum < entry.1 {
                return Err(format!("line {n}: bucket counts not cumulative"));
            }
            entry.0 = le;
            entry.1 = cum;
            if le.is_infinite() {
                entry.2 = Some(cum);
            }
        } else if suffix == "_count" {
            let cum: u64 = value
                .parse()
                .map_err(|_| format!("line {n}: _count not a u64"))?;
            counts.insert((family.clone(), labels.to_string()), cum);
        }
    }

    for ((family, labels), (_, _, inf)) in &bucket_state {
        let inf = inf.ok_or(format!(
            "histogram {family:?}{{{labels}}} has no le=\"+Inf\" bucket"
        ))?;
        let count = counts
            .get(&(family.clone(), labels.clone()))
            .ok_or(format!(
                "histogram {family:?}{{{labels}}} has buckets but no _count"
            ))?;
        if inf != *count {
            return Err(format!(
                "histogram {family:?}{{{labels}}}: +Inf bucket {inf} != _count {count}"
            ));
        }
    }
    Ok(())
}

/// Splits a label body on commas outside quotes.
fn split_labels(body: &str) -> Vec<&str> {
    let mut out = Vec::new();
    let mut depth_quote = false;
    let mut start = 0;
    let bytes = body.as_bytes();
    let mut i = 0;
    while i < bytes.len() {
        match bytes[i] {
            b'"' => depth_quote = !depth_quote,
            b'\\' if depth_quote => i += 1, // skip escaped char
            b',' if !depth_quote => {
                if start < i {
                    out.push(&body[start..i]);
                }
                start = i + 1;
            }
            _ => {}
        }
        i += 1;
    }
    if start < body.len() {
        out.push(&body[start..]);
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::json::parse;

    fn demo_registry() -> MetricsRegistry {
        let mut reg = MetricsRegistry::new();
        reg.counter(
            "cep_events_processed_total",
            "Events processed",
            &[("engine", "adaptive")],
            12_345,
        );
        reg.counter(
            "cep_events_processed_total",
            "Events processed",
            &[("engine", "shard"), ("shard", "0")],
            678,
        );
        reg.gauge("cep_imbalance_ratio", "Max/mean shard busy time", &[], 1.25);
        let mut h = LatencyHistogram::new();
        for v in [100u64, 900, 900, 15_000, 2_000_000] {
            h.record(v);
        }
        reg.histogram(
            "cep_match_latency_ns",
            "Detection latency",
            &[("engine", "adaptive")],
            &h,
        );
        reg
    }

    #[test]
    fn prometheus_output_validates() {
        let text = demo_registry().render_prometheus();
        validate_prometheus(&text).unwrap_or_else(|e| panic!("{e}\n---\n{text}"));
        assert!(text.contains("# TYPE cep_events_processed_total counter"));
        assert!(text.contains("cep_events_processed_total{engine=\"adaptive\"} 12345"));
        assert!(text.contains("cep_match_latency_ns_bucket{engine=\"adaptive\",le=\"+Inf\"} 5"));
        assert!(text.contains("cep_match_latency_ns_count{engine=\"adaptive\"} 5"));
    }

    #[test]
    fn json_output_parses_and_preserves_structure() {
        let doc = demo_registry().render_json();
        let v = parse(&doc).expect("registry JSON parses");
        let metrics = match v.get("metrics") {
            Some(Json::Arr(m)) => m,
            other => panic!("metrics array missing: {other:?}"),
        };
        assert_eq!(metrics.len(), 3);
        let hist = &metrics[2];
        assert_eq!(hist.get("kind").and_then(Json::as_str), Some("histogram"));
        let samples = match hist.get("samples") {
            Some(Json::Arr(s)) => s,
            other => panic!("samples missing: {other:?}"),
        };
        assert_eq!(samples[0].get("count").and_then(Json::as_u64), Some(5));
    }

    #[test]
    fn validator_rejects_format_violations() {
        // Sample before TYPE.
        assert!(validate_prometheus("foo 1\n# TYPE foo counter\n").is_err());
        // Non-cumulative buckets.
        let bad = "# TYPE h histogram\nh_bucket{le=\"1\"} 5\nh_bucket{le=\"2\"} 3\n\
                   h_bucket{le=\"+Inf\"} 5\nh_sum 9\nh_count 5\n";
        assert!(validate_prometheus(bad).is_err());
        // +Inf != _count.
        let bad = "# TYPE h histogram\nh_bucket{le=\"+Inf\"} 4\nh_sum 9\nh_count 5\n";
        assert!(validate_prometheus(bad).is_err());
        // Missing +Inf bucket.
        let bad = "# TYPE h histogram\nh_bucket{le=\"8\"} 4\nh_sum 9\nh_count 4\n";
        assert!(validate_prometheus(bad).is_err());
        // Unparseable value.
        assert!(validate_prometheus("# TYPE g gauge\ng wat\n").is_err());
        // Bad name.
        assert!(validate_prometheus("# TYPE 9g gauge\n").is_err());
        // Good minimal documents pass.
        validate_prometheus("# TYPE g gauge\ng{a=\"x,y\"} 1.5\ng NaN\n").unwrap();
        validate_prometheus("").unwrap();
    }

    #[test]
    fn registering_same_name_with_other_kind_panics() {
        let result = std::panic::catch_unwind(|| {
            let mut reg = MetricsRegistry::new();
            reg.counter("m", "", &[], 1);
            reg.gauge("m", "", &[], 1.0);
        });
        assert!(result.is_err());
    }

    #[test]
    fn label_escaping_survives_validation() {
        let mut reg = MetricsRegistry::new();
        reg.gauge(
            "weird",
            "help with\nnewline and \\ backslash",
            &[("q", "a\"b\\c\nd")],
            2.0,
        );
        let text = reg.render_prometheus();
        validate_prometheus(&text).unwrap_or_else(|e| panic!("{e}\n---\n{text}"));
        assert!(text.contains("q=\"a\\\"b\\\\c\\nd\""));
    }
}
