//! A minimal JSON value model with a canonical encoder and a strict
//! parser.
//!
//! The workspace is offline (no `serde`), so the trace and metrics
//! exporters carry their own tiny JSON layer. It is deliberately small:
//! objects preserve insertion order (encoding is canonical — what a
//! [`crate::TraceRecord`] emits is byte-for-byte what a re-encode of the
//! parsed value produces), integers survive as `u64`/`i64` without a
//! round-trip through `f64`, and floats are printed with Rust's shortest
//! round-trip formatting.

use std::fmt::Write as _;

/// A parsed JSON value.
#[derive(Debug, Clone, PartialEq)]
pub enum Json {
    /// `null`.
    Null,
    /// `true` / `false`.
    Bool(bool),
    /// A non-negative integer that fits `u64` (the common case for
    /// counters and timestamps).
    UInt(u64),
    /// A negative integer that fits `i64`.
    Int(i64),
    /// Any other number (fractional or exponent-form).
    Float(f64),
    /// A string.
    Str(String),
    /// An array.
    Arr(Vec<Json>),
    /// An object; insertion-ordered `(key, value)` pairs.
    Obj(Vec<(String, Json)>),
}

impl Json {
    /// The value under `key`, for objects.
    pub fn get(&self, key: &str) -> Option<&Json> {
        match self {
            Json::Obj(pairs) => pairs.iter().find(|(k, _)| k == key).map(|(_, v)| v),
            _ => None,
        }
    }

    /// This value as a `u64`, when it is a non-negative integer.
    pub fn as_u64(&self) -> Option<u64> {
        match self {
            Json::UInt(v) => Some(*v),
            Json::Int(v) if *v >= 0 => Some(*v as u64),
            _ => None,
        }
    }

    /// This value as an `f64` (integers widen; strings do not coerce).
    pub fn as_f64(&self) -> Option<f64> {
        match self {
            Json::UInt(v) => Some(*v as f64),
            Json::Int(v) => Some(*v as f64),
            Json::Float(v) => Some(*v),
            _ => None,
        }
    }

    /// This value as a string slice.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Json::Str(s) => Some(s),
            _ => None,
        }
    }

    /// Canonical single-line encoding: compact (`{"k":v,...}`), no
    /// insignificant whitespace, keys in insertion order.
    pub fn encode(&self) -> String {
        let mut s = String::new();
        self.encode_into(&mut s);
        s
    }

    fn encode_into(&self, s: &mut String) {
        match self {
            Json::Null => s.push_str("null"),
            Json::Bool(b) => s.push_str(if *b { "true" } else { "false" }),
            Json::UInt(v) => {
                let _ = write!(s, "{v}");
            }
            Json::Int(v) => {
                let _ = write!(s, "{v}");
            }
            Json::Float(v) => {
                debug_assert!(v.is_finite(), "non-finite floats are not valid JSON");
                // `{:?}` is Rust's shortest round-trip float formatting.
                let _ = write!(s, "{v:?}");
            }
            Json::Str(v) => encode_str(v, s),
            Json::Arr(items) => {
                s.push('[');
                for (i, item) in items.iter().enumerate() {
                    if i > 0 {
                        s.push(',');
                    }
                    item.encode_into(s);
                }
                s.push(']');
            }
            Json::Obj(pairs) => {
                s.push('{');
                for (i, (k, v)) in pairs.iter().enumerate() {
                    if i > 0 {
                        s.push(',');
                    }
                    encode_str(k, s);
                    s.push(':');
                    v.encode_into(s);
                }
                s.push('}');
            }
        }
    }
}

/// Encodes a JSON string literal with its quotes.
fn encode_str(v: &str, s: &mut String) {
    s.push('"');
    for c in v.chars() {
        match c {
            '"' => s.push_str("\\\""),
            '\\' => s.push_str("\\\\"),
            '\n' => s.push_str("\\n"),
            '\r' => s.push_str("\\r"),
            '\t' => s.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                let _ = write!(s, "\\u{:04x}", c as u32);
            }
            c => s.push(c),
        }
    }
    s.push('"');
}

/// Parses one JSON document, rejecting trailing garbage.
pub fn parse(input: &str) -> Result<Json, String> {
    let mut p = Parser {
        bytes: input.as_bytes(),
        pos: 0,
    };
    p.skip_ws();
    let v = p.value()?;
    p.skip_ws();
    if p.pos != p.bytes.len() {
        return Err(format!("trailing input at byte {}", p.pos));
    }
    Ok(v)
}

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl Parser<'_> {
    fn skip_ws(&mut self) {
        while let Some(&b) = self.bytes.get(self.pos) {
            if b == b' ' || b == b'\t' || b == b'\n' || b == b'\r' {
                self.pos += 1;
            } else {
                break;
            }
        }
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn expect(&mut self, b: u8) -> Result<(), String> {
        if self.peek() == Some(b) {
            self.pos += 1;
            Ok(())
        } else {
            Err(format!(
                "expected '{}' at byte {}, found {:?}",
                b as char,
                self.pos,
                self.peek().map(|c| c as char)
            ))
        }
    }

    fn literal(&mut self, lit: &str, v: Json) -> Result<Json, String> {
        if self.bytes[self.pos..].starts_with(lit.as_bytes()) {
            self.pos += lit.len();
            Ok(v)
        } else {
            Err(format!("invalid literal at byte {}", self.pos))
        }
    }

    fn value(&mut self) -> Result<Json, String> {
        match self.peek() {
            Some(b'n') => self.literal("null", Json::Null),
            Some(b't') => self.literal("true", Json::Bool(true)),
            Some(b'f') => self.literal("false", Json::Bool(false)),
            Some(b'"') => self.string().map(Json::Str),
            Some(b'[') => self.array(),
            Some(b'{') => self.object(),
            Some(b) if b == b'-' || b.is_ascii_digit() => self.number(),
            other => Err(format!(
                "unexpected {:?} at byte {}",
                other.map(|c| c as char),
                self.pos
            )),
        }
    }

    fn array(&mut self) -> Result<Json, String> {
        self.expect(b'[')?;
        let mut items = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b']') {
            self.pos += 1;
            return Ok(Json::Arr(items));
        }
        loop {
            self.skip_ws();
            items.push(self.value()?);
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b']') => {
                    self.pos += 1;
                    return Ok(Json::Arr(items));
                }
                _ => return Err(format!("expected ',' or ']' at byte {}", self.pos)),
            }
        }
    }

    fn object(&mut self) -> Result<Json, String> {
        self.expect(b'{')?;
        let mut pairs = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            return Ok(Json::Obj(pairs));
        }
        loop {
            self.skip_ws();
            let key = self.string()?;
            self.skip_ws();
            self.expect(b':')?;
            self.skip_ws();
            let value = self.value()?;
            pairs.push((key, value));
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b'}') => {
                    self.pos += 1;
                    return Ok(Json::Obj(pairs));
                }
                _ => return Err(format!("expected ',' or '}}' at byte {}", self.pos)),
            }
        }
    }

    fn string(&mut self) -> Result<String, String> {
        self.expect(b'"')?;
        let mut out = String::new();
        loop {
            let start = self.pos;
            // Fast path: run of plain bytes.
            while let Some(&b) = self.bytes.get(self.pos) {
                if b == b'"' || b == b'\\' || b < 0x20 {
                    break;
                }
                self.pos += 1;
            }
            out.push_str(
                std::str::from_utf8(&self.bytes[start..self.pos])
                    .map_err(|_| "invalid UTF-8 in string".to_string())?,
            );
            match self.peek() {
                Some(b'"') => {
                    self.pos += 1;
                    return Ok(out);
                }
                Some(b'\\') => {
                    self.pos += 1;
                    let esc = self
                        .peek()
                        .ok_or_else(|| "unterminated escape".to_string())?;
                    self.pos += 1;
                    match esc {
                        b'"' => out.push('"'),
                        b'\\' => out.push('\\'),
                        b'/' => out.push('/'),
                        b'b' => out.push('\u{8}'),
                        b'f' => out.push('\u{c}'),
                        b'n' => out.push('\n'),
                        b'r' => out.push('\r'),
                        b't' => out.push('\t'),
                        b'u' => {
                            let hex = self
                                .bytes
                                .get(self.pos..self.pos + 4)
                                .and_then(|h| std::str::from_utf8(h).ok())
                                .ok_or_else(|| "truncated \\u escape".to_string())?;
                            let code = u32::from_str_radix(hex, 16)
                                .map_err(|_| "invalid \\u escape".to_string())?;
                            self.pos += 4;
                            // Surrogates are rejected rather than paired: the
                            // canonical encoder never emits them (it escapes
                            // only control characters).
                            let c = char::from_u32(code)
                                .ok_or_else(|| "surrogate \\u escape unsupported".to_string())?;
                            out.push(c);
                        }
                        other => return Err(format!("invalid escape '\\{}'", other as char)),
                    }
                }
                _ => return Err("unterminated string".to_string()),
            }
        }
    }

    fn number(&mut self) -> Result<Json, String> {
        let start = self.pos;
        if self.peek() == Some(b'-') {
            self.pos += 1;
        }
        let mut fractional = false;
        while let Some(b) = self.peek() {
            match b {
                b'0'..=b'9' => self.pos += 1,
                b'.' | b'e' | b'E' | b'+' | b'-' => {
                    fractional = true;
                    self.pos += 1;
                }
                _ => break,
            }
        }
        let text = std::str::from_utf8(&self.bytes[start..self.pos]).expect("ASCII number");
        if !fractional {
            if let Ok(v) = text.parse::<u64>() {
                return Ok(Json::UInt(v));
            }
            if let Ok(v) = text.parse::<i64>() {
                return Ok(Json::Int(v));
            }
        }
        text.parse::<f64>()
            .map(Json::Float)
            .map_err(|_| format!("invalid number {text:?}"))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn scalars_roundtrip() {
        for (text, v) in [
            ("null", Json::Null),
            ("true", Json::Bool(true)),
            ("false", Json::Bool(false)),
            ("0", Json::UInt(0)),
            ("18446744073709551615", Json::UInt(u64::MAX)),
            ("-7", Json::Int(-7)),
            ("1.5", Json::Float(1.5)),
            ("\"a\\\"b\\\\c\\n\"", Json::Str("a\"b\\c\n".into())),
        ] {
            assert_eq!(parse(text).unwrap(), v, "{text}");
            assert_eq!(parse(&v.encode()).unwrap(), v, "{text}");
        }
    }

    #[test]
    fn nested_structures_roundtrip() {
        let v = Json::Obj(vec![
            ("a".into(), Json::Arr(vec![Json::UInt(1), Json::Null])),
            ("b".into(), Json::Obj(vec![("x".into(), Json::Float(0.25))])),
            ("weird key \"\\".into(), Json::Str("\u{1}".into())),
        ]);
        let text = v.encode();
        assert_eq!(parse(&text).unwrap(), v);
        // Canonical: encode ∘ parse is the identity on encoder output.
        assert_eq!(parse(&text).unwrap().encode(), text);
    }

    #[test]
    fn rejects_garbage() {
        for bad in ["", "{", "[1,]", "{\"a\":}", "1 2", "\"\\q\"", "nul"] {
            assert!(parse(bad).is_err(), "{bad:?} should not parse");
        }
    }

    #[test]
    fn whitespace_tolerated_on_parse() {
        let v = parse(" { \"a\" : [ 1 , 2 ] } ").unwrap();
        assert_eq!(
            v.get("a"),
            Some(&Json::Arr(vec![Json::UInt(1), Json::UInt(2)]))
        );
    }

    #[test]
    fn accessors() {
        let v = parse("{\"n\":3,\"s\":\"x\",\"f\":2.5}").unwrap();
        assert_eq!(v.get("n").and_then(Json::as_u64), Some(3));
        assert_eq!(v.get("s").and_then(Json::as_str), Some("x"));
        assert_eq!(v.get("f").and_then(Json::as_f64), Some(2.5));
        assert_eq!(v.get("missing"), None);
    }
}
