//! Structured runtime tracing: typed records, cheap-when-disabled
//! emission, and pluggable sinks.
//!
//! The engine/adaptive/shard stack makes runtime decisions — plan swaps,
//! suppressed swaps, replicate-join routing — that are invisible as summed
//! counters. A [`Tracer`] makes them visible as typed [`TraceRecord`]s
//! without taxing the hot path: every instrumentation site goes through
//! [`Tracer::emit_with`], whose disabled cost is a single branch (for the
//! global [`Tracer::disabled`] handle) or one relaxed atomic load (for a
//! constructed tracer that is switched off), and whose record-construction
//! closure only runs when tracing is live.
//!
//! Two sinks ship with the crate: [`RingSink`], a bounded in-memory ring
//! for live inspection (the `experiments observe` decision timeline), and
//! [`JsonlSink`], which appends one canonical JSON object per record to a
//! writer — the interchange format the CI smoke step parses back and
//! round-trips.

use crate::json::{parse, Json};
use std::io::Write;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{Arc, Mutex};

/// One structured trace event.
///
/// Variants mirror the decision points of the stack: plan-swap verdicts
/// with their amortization arithmetic, replay windows, shard routing and
/// batch queueing, match emission, and analyzer diagnostics. All fields
/// are plain scalars so records serialize canonically
/// ([`TraceRecord::to_json`]) and parse back losslessly
/// ([`TraceRecord::from_json`]).
#[derive(Debug, Clone, PartialEq)]
pub enum TraceRecord {
    /// An adaptive replan attempt and its verdict. The swap inequality is
    /// `(current_cost − candidate_cost) · amortize_windows >
    /// candidate_cost · replay_fraction`; `verdict` is `"swap"`, `"keep"`,
    /// or `"suppressed"`.
    PlanSwapDecision {
        /// Events processed by the engine when the decision was taken.
        at_event: u64,
        /// `"swap"`, `"keep"`, or `"suppressed"`.
        verdict: String,
        /// Per-window cost of the incumbent plan under fresh statistics
        /// (negative when the replanner produced no cost breakdown).
        current_cost: f64,
        /// Per-window cost of the best candidate under the same
        /// statistics (negative when unavailable).
        candidate_cost: f64,
        /// Retained replay buffer as a fraction of one window's expected
        /// events.
        replay_fraction: f64,
        /// Amortization horizon in pattern windows.
        amortize_windows: f64,
        /// Events in the retained replay buffer.
        retained_events: u64,
    },
    /// A hot swap's replay of the retained window.
    ReplayWindow {
        /// Events processed when the swap ran.
        at_event: u64,
        /// Events replayed into the fresh engine.
        replayed_events: u64,
        /// Wall time of the replay in nanoseconds.
        replay_ns: u64,
        /// Replayed re-detections suppressed by the signature dedup.
        suppressed_matches: u64,
    },
    /// A routing decision (sampled — one in every
    /// `cep-shard`'s sampling interval). `shard` is the target worker, or
    /// `broadcast == true` for a replicated fan-out to every worker.
    ShardRoute {
        /// Serial number of the routed event.
        seq: u64,
        /// Timestamp of the routed event.
        ts: u64,
        /// Target shard (the lowest one for broadcasts).
        shard: u64,
        /// Whether the event was broadcast to every shard.
        broadcast: bool,
    },
    /// A batch handed to a worker queue.
    ShardBatch {
        /// Receiving shard.
        shard: u64,
        /// Events in the batch.
        len: u64,
        /// Batches resident in the shard's queue right after the send
        /// (including this one) — the backpressure signal.
        queue_depth: u64,
    },
    /// A match leaving the engine.
    MatchEmitted {
        /// Emission watermark of the match.
        emitted_at: u64,
        /// Timestamp of the last contributing event.
        last_ts: u64,
        /// Detection latency in nanoseconds (shared by all matches the
        /// same event completed).
        latency_ns: u64,
    },
    /// A static-analysis diagnostic surfaced at runtime.
    DiagnosticEmitted {
        /// Stable diagnostic code, e.g. `"A006"`.
        code: String,
        /// `"error"` or `"warning"`.
        severity: String,
        /// Human-readable message.
        message: String,
    },
    /// A compiled-plan cache lookup (`cep-core`'s `PlanCache`): a replan or
    /// factory build asked for the compiled program of a pattern signature.
    PlanCacheLookup {
        /// Stable pattern signature that keyed the lookup.
        signature: u64,
        /// Whether a previously compiled program was reused.
        hit: bool,
        /// Programs resident in the cache after the lookup.
        size: u64,
    },
    /// A query registered with a multi-query registry: how many of its DNF
    /// branches landed on already-running shared fragments versus built
    /// fresh engines.
    QueryRegistered {
        /// The registry-assigned query id.
        query_id: u64,
        /// DNF branches of the registered pattern.
        branches: u64,
        /// Branches that subscribed to an existing shared fragment.
        shared: u64,
        /// Distinct fragments live in the registry after registration.
        fragments: u64,
    },
    /// A query unregistered from a multi-query registry.
    QueryUnregistered {
        /// The retired query id.
        query_id: u64,
        /// Fragments torn down because this query was their last
        /// subscriber.
        retired_fragments: u64,
        /// Distinct fragments still live after the unregistration.
        fragments: u64,
    },
}

/// Encodes a float that may be non-finite: JSON numbers cannot carry
/// `inf`/`nan`, so those become the strings `"inf"`, `"-inf"`, `"nan"`.
fn f64_to_json(v: f64) -> Json {
    if v.is_finite() {
        Json::Float(v)
    } else if v.is_nan() {
        Json::Str("nan".into())
    } else if v > 0.0 {
        Json::Str("inf".into())
    } else {
        Json::Str("-inf".into())
    }
}

fn f64_from_json(v: &Json, field: &'static str) -> Result<f64, String> {
    match v {
        Json::Str(s) => match s.as_str() {
            "inf" => Ok(f64::INFINITY),
            "-inf" => Ok(f64::NEG_INFINITY),
            "nan" => Ok(f64::NAN),
            other => Err(format!("field {field}: invalid float string {other:?}")),
        },
        other => other
            .as_f64()
            .ok_or_else(|| format!("field {field}: expected a number")),
    }
}

fn u64_field(obj: &Json, field: &'static str) -> Result<u64, String> {
    obj.get(field)
        .and_then(Json::as_u64)
        .ok_or_else(|| format!("field {field}: expected a u64"))
}

fn f64_field(obj: &Json, field: &'static str) -> Result<f64, String> {
    f64_from_json(
        obj.get(field)
            .ok_or_else(|| format!("field {field}: missing"))?,
        field,
    )
}

fn str_field(obj: &Json, field: &'static str) -> Result<String, String> {
    obj.get(field)
        .and_then(Json::as_str)
        .map(str::to_owned)
        .ok_or_else(|| format!("field {field}: expected a string"))
}

fn bool_field(obj: &Json, field: &'static str) -> Result<bool, String> {
    match obj.get(field) {
        Some(Json::Bool(b)) => Ok(*b),
        _ => Err(format!("field {field}: expected a bool")),
    }
}

impl TraceRecord {
    /// The record's type tag as serialized (`"plan_swap_decision"`, …).
    pub fn kind(&self) -> &'static str {
        match self {
            TraceRecord::PlanSwapDecision { .. } => "plan_swap_decision",
            TraceRecord::ReplayWindow { .. } => "replay_window",
            TraceRecord::ShardRoute { .. } => "shard_route",
            TraceRecord::ShardBatch { .. } => "shard_batch",
            TraceRecord::MatchEmitted { .. } => "match_emitted",
            TraceRecord::DiagnosticEmitted { .. } => "diagnostic",
            TraceRecord::PlanCacheLookup { .. } => "plan_cache_lookup",
            TraceRecord::QueryRegistered { .. } => "query_registered",
            TraceRecord::QueryUnregistered { .. } => "query_unregistered",
        }
    }

    /// Canonical single-line JSON encoding. Field order is fixed, floats
    /// use shortest round-trip formatting, non-finite floats encode as
    /// strings — so `from_json(to_json(r))` is the identity and
    /// `to_json(from_json(line))` reproduces `line` byte-for-byte.
    pub fn to_json(&self) -> String {
        let mut pairs: Vec<(String, Json)> = vec![("type".into(), Json::Str(self.kind().into()))];
        match self {
            TraceRecord::PlanSwapDecision {
                at_event,
                verdict,
                current_cost,
                candidate_cost,
                replay_fraction,
                amortize_windows,
                retained_events,
            } => {
                pairs.push(("at_event".into(), Json::UInt(*at_event)));
                pairs.push(("verdict".into(), Json::Str(verdict.clone())));
                pairs.push(("current_cost".into(), f64_to_json(*current_cost)));
                pairs.push(("candidate_cost".into(), f64_to_json(*candidate_cost)));
                pairs.push(("replay_fraction".into(), f64_to_json(*replay_fraction)));
                pairs.push(("amortize_windows".into(), f64_to_json(*amortize_windows)));
                pairs.push(("retained_events".into(), Json::UInt(*retained_events)));
            }
            TraceRecord::ReplayWindow {
                at_event,
                replayed_events,
                replay_ns,
                suppressed_matches,
            } => {
                pairs.push(("at_event".into(), Json::UInt(*at_event)));
                pairs.push(("replayed_events".into(), Json::UInt(*replayed_events)));
                pairs.push(("replay_ns".into(), Json::UInt(*replay_ns)));
                pairs.push(("suppressed_matches".into(), Json::UInt(*suppressed_matches)));
            }
            TraceRecord::ShardRoute {
                seq,
                ts,
                shard,
                broadcast,
            } => {
                pairs.push(("seq".into(), Json::UInt(*seq)));
                pairs.push(("ts".into(), Json::UInt(*ts)));
                pairs.push(("shard".into(), Json::UInt(*shard)));
                pairs.push(("broadcast".into(), Json::Bool(*broadcast)));
            }
            TraceRecord::ShardBatch {
                shard,
                len,
                queue_depth,
            } => {
                pairs.push(("shard".into(), Json::UInt(*shard)));
                pairs.push(("len".into(), Json::UInt(*len)));
                pairs.push(("queue_depth".into(), Json::UInt(*queue_depth)));
            }
            TraceRecord::MatchEmitted {
                emitted_at,
                last_ts,
                latency_ns,
            } => {
                pairs.push(("emitted_at".into(), Json::UInt(*emitted_at)));
                pairs.push(("last_ts".into(), Json::UInt(*last_ts)));
                pairs.push(("latency_ns".into(), Json::UInt(*latency_ns)));
            }
            TraceRecord::DiagnosticEmitted {
                code,
                severity,
                message,
            } => {
                pairs.push(("code".into(), Json::Str(code.clone())));
                pairs.push(("severity".into(), Json::Str(severity.clone())));
                pairs.push(("message".into(), Json::Str(message.clone())));
            }
            TraceRecord::PlanCacheLookup {
                signature,
                hit,
                size,
            } => {
                pairs.push(("signature".into(), Json::UInt(*signature)));
                pairs.push(("hit".into(), Json::Bool(*hit)));
                pairs.push(("size".into(), Json::UInt(*size)));
            }
            TraceRecord::QueryRegistered {
                query_id,
                branches,
                shared,
                fragments,
            } => {
                pairs.push(("query_id".into(), Json::UInt(*query_id)));
                pairs.push(("branches".into(), Json::UInt(*branches)));
                pairs.push(("shared".into(), Json::UInt(*shared)));
                pairs.push(("fragments".into(), Json::UInt(*fragments)));
            }
            TraceRecord::QueryUnregistered {
                query_id,
                retired_fragments,
                fragments,
            } => {
                pairs.push(("query_id".into(), Json::UInt(*query_id)));
                pairs.push(("retired_fragments".into(), Json::UInt(*retired_fragments)));
                pairs.push(("fragments".into(), Json::UInt(*fragments)));
            }
        }
        Json::Obj(pairs).encode()
    }

    /// Parses one canonical JSON line back into a record.
    pub fn from_json(line: &str) -> Result<TraceRecord, String> {
        let v = parse(line.trim())?;
        let kind = str_field(&v, "type")?;
        match kind.as_str() {
            "plan_swap_decision" => Ok(TraceRecord::PlanSwapDecision {
                at_event: u64_field(&v, "at_event")?,
                verdict: str_field(&v, "verdict")?,
                current_cost: f64_field(&v, "current_cost")?,
                candidate_cost: f64_field(&v, "candidate_cost")?,
                replay_fraction: f64_field(&v, "replay_fraction")?,
                amortize_windows: f64_field(&v, "amortize_windows")?,
                retained_events: u64_field(&v, "retained_events")?,
            }),
            "replay_window" => Ok(TraceRecord::ReplayWindow {
                at_event: u64_field(&v, "at_event")?,
                replayed_events: u64_field(&v, "replayed_events")?,
                replay_ns: u64_field(&v, "replay_ns")?,
                suppressed_matches: u64_field(&v, "suppressed_matches")?,
            }),
            "shard_route" => Ok(TraceRecord::ShardRoute {
                seq: u64_field(&v, "seq")?,
                ts: u64_field(&v, "ts")?,
                shard: u64_field(&v, "shard")?,
                broadcast: bool_field(&v, "broadcast")?,
            }),
            "shard_batch" => Ok(TraceRecord::ShardBatch {
                shard: u64_field(&v, "shard")?,
                len: u64_field(&v, "len")?,
                queue_depth: u64_field(&v, "queue_depth")?,
            }),
            "match_emitted" => Ok(TraceRecord::MatchEmitted {
                emitted_at: u64_field(&v, "emitted_at")?,
                last_ts: u64_field(&v, "last_ts")?,
                latency_ns: u64_field(&v, "latency_ns")?,
            }),
            "diagnostic" => Ok(TraceRecord::DiagnosticEmitted {
                code: str_field(&v, "code")?,
                severity: str_field(&v, "severity")?,
                message: str_field(&v, "message")?,
            }),
            "plan_cache_lookup" => Ok(TraceRecord::PlanCacheLookup {
                signature: u64_field(&v, "signature")?,
                hit: bool_field(&v, "hit")?,
                size: u64_field(&v, "size")?,
            }),
            "query_registered" => Ok(TraceRecord::QueryRegistered {
                query_id: u64_field(&v, "query_id")?,
                branches: u64_field(&v, "branches")?,
                shared: u64_field(&v, "shared")?,
                fragments: u64_field(&v, "fragments")?,
            }),
            "query_unregistered" => Ok(TraceRecord::QueryUnregistered {
                query_id: u64_field(&v, "query_id")?,
                retired_fragments: u64_field(&v, "retired_fragments")?,
                fragments: u64_field(&v, "fragments")?,
            }),
            other => Err(format!("unknown record type {other:?}")),
        }
    }
}

/// A destination for trace records. Sinks must tolerate concurrent
/// emission — workers on different shards share one tracer.
pub trait TraceSink: Send + Sync {
    /// Accepts one record.
    fn emit(&self, record: &TraceRecord);

    /// Flushes buffered output, if any.
    fn flush(&self) {}
}

/// Sinks behind `Arc` are sinks too — the pattern for keeping a reading
/// handle (e.g. on a [`RingSink`]) while the tracer owns an emitting one.
impl<S: TraceSink> TraceSink for Arc<S> {
    fn emit(&self, record: &TraceRecord) {
        (**self).emit(record);
    }

    fn flush(&self) {
        (**self).flush();
    }
}

struct TracerInner {
    enabled: AtomicBool,
    sinks: Vec<Box<dyn TraceSink>>,
}

/// A cheap, cloneable handle instrumentation sites emit through.
///
/// [`Tracer::disabled`] carries no allocation at all: its enabled check is
/// a branch on a constant `None`. A constructed tracer's check is one
/// relaxed atomic load. Record construction is wrapped in a closure
/// ([`Tracer::emit_with`]) so the disabled path never materializes a
/// record.
#[derive(Clone, Default)]
pub struct Tracer {
    inner: Option<Arc<TracerInner>>,
}

impl std::fmt::Debug for Tracer {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match &self.inner {
            None => write!(f, "Tracer(disabled)"),
            Some(i) => write!(
                f,
                "Tracer(enabled={}, sinks={})",
                i.enabled.load(Ordering::Relaxed),
                i.sinks.len()
            ),
        }
    }
}

impl Tracer {
    /// The permanently disabled tracer (the default everywhere).
    pub fn disabled() -> Tracer {
        Tracer { inner: None }
    }

    /// A tracer emitting to `sinks`, initially enabled.
    pub fn new(sinks: Vec<Box<dyn TraceSink>>) -> Tracer {
        Tracer {
            inner: Some(Arc::new(TracerInner {
                enabled: AtomicBool::new(true),
                sinks,
            })),
        }
    }

    /// A tracer over a single sink.
    pub fn to_sink(sink: impl TraceSink + 'static) -> Tracer {
        Tracer::new(vec![Box::new(sink)])
    }

    /// Whether records would currently be emitted.
    pub fn is_enabled(&self) -> bool {
        match &self.inner {
            None => false,
            Some(i) => i.enabled.load(Ordering::Relaxed),
        }
    }

    /// Switches emission on or off (no-op on the disabled tracer).
    pub fn set_enabled(&self, on: bool) {
        if let Some(i) = &self.inner {
            i.enabled.store(on, Ordering::Relaxed);
        }
    }

    /// Emits the record produced by `f`, if enabled. The closure only
    /// runs when tracing is live, so call sites may freely capture
    /// whatever the record needs.
    #[inline]
    pub fn emit_with(&self, f: impl FnOnce() -> TraceRecord) {
        if let Some(i) = &self.inner {
            if i.enabled.load(Ordering::Relaxed) {
                let record = f();
                for sink in &i.sinks {
                    sink.emit(&record);
                }
            }
        }
    }

    /// Flushes every sink.
    pub fn flush(&self) {
        if let Some(i) = &self.inner {
            for sink in &i.sinks {
                sink.flush();
            }
        }
    }
}

/// A bounded in-memory ring of the most recent records.
///
/// Writers claim a slot with one atomic `fetch_add` (lock-free) and then
/// take that slot's private mutex — uncontended unless two writers lap
/// each other on the same slot, so emission never serializes across
/// shards the way one global buffer lock would.
pub struct RingSink {
    slots: Vec<Mutex<Option<TraceRecord>>>,
    next: AtomicU64,
}

impl RingSink {
    /// A ring keeping the most recent `capacity` records.
    pub fn new(capacity: usize) -> RingSink {
        assert!(capacity >= 1, "ring capacity must be positive");
        RingSink {
            slots: (0..capacity).map(|_| Mutex::new(None)).collect(),
            next: AtomicU64::new(0),
        }
    }

    /// Total records ever emitted (including overwritten ones).
    pub fn total_emitted(&self) -> u64 {
        self.next.load(Ordering::Relaxed)
    }

    /// Records currently held, oldest first. Concurrent emission during a
    /// snapshot may skip a slot mid-write; quiesce writers for an exact
    /// picture.
    pub fn snapshot(&self) -> Vec<TraceRecord> {
        let total = self.next.load(Ordering::Acquire);
        let cap = self.slots.len() as u64;
        let start = total.saturating_sub(cap);
        let mut out = Vec::with_capacity((total - start) as usize);
        for idx in start..total {
            let slot = self.slots[(idx % cap) as usize].lock().expect("ring slot");
            if let Some(r) = slot.as_ref() {
                out.push(r.clone());
            }
        }
        out
    }
}

impl TraceSink for RingSink {
    fn emit(&self, record: &TraceRecord) {
        let idx = self.next.fetch_add(1, Ordering::AcqRel);
        let cap = self.slots.len() as u64;
        *self.slots[(idx % cap) as usize].lock().expect("ring slot") = Some(record.clone());
    }
}

/// Appends one canonical JSON line per record to a writer (JSONL).
pub struct JsonlSink {
    out: Mutex<Box<dyn Write + Send>>,
}

impl JsonlSink {
    /// A sink over any writer (e.g. a `Vec<u8>` in tests).
    pub fn new(out: Box<dyn Write + Send>) -> JsonlSink {
        JsonlSink {
            out: Mutex::new(out),
        }
    }

    /// A sink writing to a freshly created (truncated) file, buffered.
    pub fn create(path: &str) -> std::io::Result<JsonlSink> {
        let file = std::fs::File::create(path)?;
        Ok(JsonlSink::new(Box::new(std::io::BufWriter::new(file))))
    }
}

impl TraceSink for JsonlSink {
    fn emit(&self, record: &TraceRecord) {
        let mut out = self.out.lock().expect("jsonl writer");
        // Serialization happens under the lock so lines never interleave.
        let _ = writeln!(out, "{}", record.to_json());
    }

    fn flush(&self) {
        let _ = self.out.lock().expect("jsonl writer").flush();
    }
}

impl Drop for JsonlSink {
    fn drop(&mut self) {
        self.flush();
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn samples() -> Vec<TraceRecord> {
        vec![
            TraceRecord::PlanSwapDecision {
                at_event: 512,
                verdict: "suppressed".into(),
                current_cost: 123.5,
                candidate_cost: 77.25,
                replay_fraction: 0.4,
                amortize_windows: f64::INFINITY,
                retained_events: 321,
            },
            TraceRecord::ReplayWindow {
                at_event: 513,
                replayed_events: 321,
                replay_ns: 44_000,
                suppressed_matches: 7,
            },
            TraceRecord::ShardRoute {
                seq: 99,
                ts: 1234,
                shard: 3,
                broadcast: false,
            },
            TraceRecord::ShardBatch {
                shard: 1,
                len: 256,
                queue_depth: 4,
            },
            TraceRecord::MatchEmitted {
                emitted_at: 5000,
                last_ts: 4999,
                latency_ns: 812,
            },
            TraceRecord::DiagnosticEmitted {
                code: "A006".into(),
                severity: "warning".into(),
                message: "redundant \"quoted\" predicate\nsecond line".into(),
            },
            TraceRecord::PlanCacheLookup {
                signature: 0xdead_beef_cafe_f00d,
                hit: true,
                size: 12,
            },
            TraceRecord::QueryRegistered {
                query_id: 17,
                branches: 3,
                shared: 2,
                fragments: 9,
            },
            TraceRecord::QueryUnregistered {
                query_id: 17,
                retired_fragments: 1,
                fragments: 8,
            },
        ]
    }

    #[test]
    fn every_variant_roundtrips_through_json() {
        for r in samples() {
            let line = r.to_json();
            let back = TraceRecord::from_json(&line).expect(&line);
            assert_eq!(back, r, "{line}");
            // Canonical: re-encoding the parsed record reproduces the line.
            assert_eq!(back.to_json(), line);
        }
    }

    #[test]
    fn non_finite_floats_survive() {
        let r = TraceRecord::PlanSwapDecision {
            at_event: 1,
            verdict: "keep".into(),
            current_cost: f64::NEG_INFINITY,
            candidate_cost: -1.0,
            replay_fraction: 0.0,
            amortize_windows: f64::INFINITY,
            retained_events: 0,
        };
        let line = r.to_json();
        assert!(line.contains("\"-inf\"") && line.contains("\"inf\""));
        assert_eq!(TraceRecord::from_json(&line).unwrap(), r);
    }

    #[test]
    fn from_json_rejects_malformed_records() {
        for bad in [
            "{}",
            "{\"type\":\"no_such_type\"}",
            "{\"type\":\"shard_batch\",\"shard\":1,\"len\":2}",
            "{\"type\":\"shard_route\",\"seq\":1,\"ts\":2,\"shard\":0,\"broadcast\":3}",
            "not json",
        ] {
            assert!(TraceRecord::from_json(bad).is_err(), "{bad}");
        }
    }

    #[test]
    fn disabled_tracer_never_runs_the_closure() {
        let t = Tracer::disabled();
        assert!(!t.is_enabled());
        t.emit_with(|| unreachable!("closure must not run when disabled"));
        t.set_enabled(true); // no-op on the disabled tracer
        assert!(!t.is_enabled());
        t.flush();
    }

    #[test]
    fn tracer_toggles_and_fans_out() {
        let ring_a = Arc::new(RingSink::new(8));
        let ring_b = Arc::new(RingSink::new(8));
        let t = Tracer::new(vec![Box::new(ring_a.clone()), Box::new(ring_b.clone())]);
        assert!(t.is_enabled());
        t.emit_with(|| samples()[3].clone());
        t.set_enabled(false);
        t.emit_with(|| unreachable!("disabled"));
        t.set_enabled(true);
        t.emit_with(|| samples()[4].clone());
        assert_eq!(ring_a.snapshot().len(), 2);
        assert_eq!(ring_b.snapshot().len(), 2);
        assert_eq!(ring_a.total_emitted(), 2);
    }

    #[test]
    fn ring_keeps_most_recent_in_order() {
        let ring = RingSink::new(3);
        for i in 0..5u64 {
            ring.emit(&TraceRecord::ShardBatch {
                shard: i,
                len: 1,
                queue_depth: 1,
            });
        }
        let shards: Vec<u64> = ring
            .snapshot()
            .iter()
            .map(|r| match r {
                TraceRecord::ShardBatch { shard, .. } => *shard,
                _ => unreachable!(),
            })
            .collect();
        assert_eq!(shards, vec![2, 3, 4], "oldest two were overwritten");
        assert_eq!(ring.total_emitted(), 5);
    }

    #[test]
    fn jsonl_sink_writes_parseable_lines() {
        use std::sync::OnceLock;
        // Shared buffer observable after the sink is dropped.
        static BUF: OnceLock<Arc<Mutex<Vec<u8>>>> = OnceLock::new();
        let buf = BUF.get_or_init(|| Arc::new(Mutex::new(Vec::new()))).clone();
        struct Shared(Arc<Mutex<Vec<u8>>>);
        impl Write for Shared {
            fn write(&mut self, b: &[u8]) -> std::io::Result<usize> {
                self.0.lock().unwrap().extend_from_slice(b);
                Ok(b.len())
            }
            fn flush(&mut self) -> std::io::Result<()> {
                Ok(())
            }
        }
        {
            let sink = JsonlSink::new(Box::new(Shared(buf.clone())));
            for r in samples() {
                sink.emit(&r);
            }
        } // drop flushes
        let text = String::from_utf8(buf.lock().unwrap().clone()).unwrap();
        let lines: Vec<&str> = text.lines().collect();
        assert_eq!(lines.len(), samples().len());
        for (line, expected) in lines.iter().zip(samples()) {
            assert_eq!(TraceRecord::from_json(line).unwrap(), expected);
        }
    }
}
