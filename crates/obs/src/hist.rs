//! Log₂-bucketed latency histograms.
//!
//! The paper's evaluation (Section 7) reports throughput, latency, and
//! memory of competing plans; a sum-only latency counter hides the tail
//! behaviour those comparisons hinge on. [`LatencyHistogram`] keeps a fixed
//! array of power-of-two buckets — nanosecond value `v` lands in bucket
//! `⌈log₂ v⌉` — so recording is two instructions and a slot increment,
//! merging is element-wise addition, and percentiles come from a cumulative
//! walk. Bucketing trades resolution for a fixed footprint: a reported
//! percentile is the *upper bound* of the bucket containing that rank, i.e.
//! at most 2× the true value, which is ample for p50/p95/p99 comparisons
//! across plans.

/// Number of log₂ buckets. Bucket 0 holds exact zeros; bucket `k ≥ 1`
/// holds `[2^(k-1), 2^k)`; the last bucket additionally absorbs everything
/// at or above `2^(BUCKETS-2)` (≈ 4.6 minutes in nanoseconds) —
/// recording saturates instead of overflowing.
pub const BUCKETS: usize = 40;

/// A fixed-size log₂ histogram of `u64` samples (nanoseconds by
/// convention), with saturating totals and mergeable buckets.
#[derive(Clone, PartialEq, Eq)]
pub struct LatencyHistogram {
    counts: [u64; BUCKETS],
    count: u64,
    sum: u64,
}

impl Default for LatencyHistogram {
    fn default() -> Self {
        LatencyHistogram {
            counts: [0; BUCKETS],
            count: 0,
            sum: 0,
        }
    }
}

/// Bucket index of a sample value.
fn bucket_of(v: u64) -> usize {
    if v == 0 {
        0
    } else {
        ((64 - v.leading_zeros()) as usize).min(BUCKETS - 1)
    }
}

/// Inclusive upper bound of bucket `k`; the last bucket is unbounded.
fn upper_bound(k: usize) -> u64 {
    if k == 0 {
        0
    } else if k >= BUCKETS - 1 {
        u64::MAX
    } else {
        (1u64 << k) - 1
    }
}

impl LatencyHistogram {
    /// An empty histogram.
    pub fn new() -> LatencyHistogram {
        LatencyHistogram::default()
    }

    /// Records one sample.
    pub fn record(&mut self, v: u64) {
        self.record_n(v, 1);
    }

    /// Records `n` samples of the same value (e.g. `n` matches completed
    /// by one event share that event's detection latency). Totals
    /// saturate instead of wrapping.
    pub fn record_n(&mut self, v: u64, n: u64) {
        if n == 0 {
            return;
        }
        self.counts[bucket_of(v)] = self.counts[bucket_of(v)].saturating_add(n);
        self.count = self.count.saturating_add(n);
        self.sum = self.sum.saturating_add(v.saturating_mul(n));
    }

    /// Element-wise merge of another histogram into `self`. Buckets are
    /// position-aligned by construction (the bucketization is global), so
    /// merging shard- or engine-local histograms loses nothing.
    pub fn merge(&mut self, other: &LatencyHistogram) {
        for (a, b) in self.counts.iter_mut().zip(other.counts.iter()) {
            *a = a.saturating_add(*b);
        }
        self.count = self.count.saturating_add(other.count);
        self.sum = self.sum.saturating_add(other.sum);
    }

    /// Total samples recorded.
    pub fn count(&self) -> u64 {
        self.count
    }

    /// Saturating sum of all recorded values.
    pub fn sum(&self) -> u64 {
        self.sum
    }

    /// Whether no sample was ever recorded.
    pub fn is_empty(&self) -> bool {
        self.count == 0
    }

    /// Mean recorded value; 0.0 when empty.
    pub fn mean(&self) -> f64 {
        if self.count == 0 {
            0.0
        } else {
            self.sum as f64 / self.count as f64
        }
    }

    /// The `p`-quantile (`0 < p ≤ 1`) as the upper bound of the bucket
    /// holding rank `⌈p·count⌉`; 0 when empty. `u64::MAX` means the rank
    /// fell into the unbounded overflow bucket.
    pub fn percentile(&self, p: f64) -> u64 {
        if self.count == 0 {
            return 0;
        }
        let p = p.clamp(0.0, 1.0);
        let rank = ((p * self.count as f64).ceil() as u64).max(1);
        let mut seen = 0u64;
        for (k, &c) in self.counts.iter().enumerate() {
            seen = seen.saturating_add(c);
            if seen >= rank {
                return upper_bound(k);
            }
        }
        upper_bound(BUCKETS - 1)
    }

    /// Median upper bound.
    pub fn p50(&self) -> u64 {
        self.percentile(0.50)
    }

    /// 95th-percentile upper bound.
    pub fn p95(&self) -> u64 {
        self.percentile(0.95)
    }

    /// 99th-percentile upper bound.
    pub fn p99(&self) -> u64 {
        self.percentile(0.99)
    }

    /// `[p50, p95, p99]` in one call (the bench tables' column triple).
    pub fn percentiles(&self) -> [u64; 3] {
        [self.p50(), self.p95(), self.p99()]
    }

    /// Cumulative Prometheus-style buckets: `(le, cumulative_count)`
    /// pairs with strictly increasing `le`, trimmed after the last
    /// non-empty bucket, always ending with `(+Inf, count)`.
    pub fn cumulative_buckets(&self) -> Vec<(f64, u64)> {
        let mut out = Vec::new();
        if let Some(last) = self.counts.iter().rposition(|&c| c > 0) {
            let highest = last.min(BUCKETS - 2);
            let mut cum = 0u64;
            for k in 0..=highest {
                cum = cum.saturating_add(self.counts[k]);
                out.push((upper_bound(k) as f64, cum));
            }
        }
        out.push((f64::INFINITY, self.count));
        out
    }
}

/// Compact single-token rendering (`hist(n=…, sum=…, p50=…, p95=…,
/// p99=…)`). Deliberately free of `": "` so a histogram-valued field adds
/// exactly one `name: value` pair to its parent struct's `{:?}` output —
/// the `EngineMetrics` field-count canary in `cep-core` counts those.
impl std::fmt::Debug for LatencyHistogram {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "hist(n={}, sum={}, p50={}, p95={}, p99={})",
            self.count,
            self.sum,
            self.p50(),
            self.p95(),
            self.p99()
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    #[test]
    fn empty_histogram_is_all_zero() {
        let h = LatencyHistogram::new();
        assert!(h.is_empty());
        assert_eq!(h.count(), 0);
        assert_eq!(h.sum(), 0);
        assert_eq!(h.mean(), 0.0);
        assert_eq!(h.percentiles(), [0, 0, 0]);
        assert_eq!(h.cumulative_buckets(), vec![(f64::INFINITY, 0)]);
    }

    #[test]
    fn merging_empties_is_identity() {
        let mut a = LatencyHistogram::new();
        a.record(100);
        a.record(1_000);
        let before = a.clone();
        a.merge(&LatencyHistogram::new());
        assert_eq!(a, before);
        let mut empty = LatencyHistogram::new();
        empty.merge(&before);
        assert_eq!(empty, before);
        let mut both = LatencyHistogram::new();
        both.merge(&LatencyHistogram::new());
        assert!(both.is_empty());
    }

    #[test]
    fn single_sample_percentiles_hit_its_bucket() {
        let mut h = LatencyHistogram::new();
        h.record(700); // bucket [512, 1024) → upper bound 1023
        assert_eq!(h.count(), 1);
        assert_eq!(h.sum(), 700);
        for p in [0.01, 0.5, 0.95, 0.99, 1.0] {
            assert_eq!(h.percentile(p), 1023, "p={p}");
        }
    }

    #[test]
    fn zero_samples_land_in_bucket_zero() {
        let mut h = LatencyHistogram::new();
        h.record(0);
        assert_eq!(h.p50(), 0);
        assert_eq!(h.cumulative_buckets()[0], (0.0, 1));
    }

    #[test]
    fn bucket_boundaries() {
        assert_eq!(bucket_of(0), 0);
        assert_eq!(bucket_of(1), 1);
        assert_eq!(bucket_of(2), 2);
        assert_eq!(bucket_of(3), 2);
        assert_eq!(bucket_of(4), 3);
        assert_eq!(upper_bound(2), 3);
        // Everything at or above 2^(BUCKETS-2) saturates into the last
        // bucket, whose upper bound is unbounded.
        assert_eq!(bucket_of(1 << (BUCKETS - 2)), BUCKETS - 1);
        assert_eq!(bucket_of(u64::MAX), BUCKETS - 1);
    }

    #[test]
    fn overflow_saturates_without_panicking() {
        let mut h = LatencyHistogram::new();
        h.record(u64::MAX);
        h.record(u64::MAX); // sum saturates
        assert_eq!(h.sum(), u64::MAX);
        assert_eq!(h.count(), 2);
        assert_eq!(h.p99(), u64::MAX, "overflow bucket is unbounded");
        // record_n with huge n saturates the count too.
        h.record_n(1, u64::MAX);
        assert_eq!(h.count(), u64::MAX);
    }

    #[test]
    fn record_n_matches_repeated_record() {
        let mut a = LatencyHistogram::new();
        a.record_n(333, 4);
        let mut b = LatencyHistogram::new();
        for _ in 0..4 {
            b.record(333);
        }
        assert_eq!(a, b);
        a.record_n(1, 0); // n = 0 is a no-op
        assert_eq!(a, b);
    }

    #[test]
    fn percentiles_are_monotone_in_p() {
        let mut h = LatencyHistogram::new();
        for v in [1u64, 5, 5, 80, 3000, 3000, 3000, 100_000] {
            h.record(v);
        }
        let [p50, p95, p99] = h.percentiles();
        assert!(p50 <= p95 && p95 <= p99);
        // Rank ⌈0.5·8⌉ = 4 is the 80 sample → bucket [64, 128).
        assert_eq!(p50, 127);
        assert!(p95 >= 100_000, "tail rank reaches the 100k sample");
    }

    #[test]
    fn cumulative_buckets_end_in_inf_total() {
        let mut h = LatencyHistogram::new();
        h.record(9);
        h.record(70);
        let buckets = h.cumulative_buckets();
        let (last_le, last_cum) = *buckets.last().unwrap();
        assert!(last_le.is_infinite());
        assert_eq!(last_cum, h.count());
        for w in buckets.windows(2) {
            assert!(w[0].0 < w[1].0, "le bounds strictly increase");
            assert!(w[0].1 <= w[1].1, "cumulative counts are monotone");
        }
    }

    // Quantiles of a merge are bounded by the worse input: for any p,
    // `merge(a, b).percentile(p) <= max(a.percentile(p), b.percentile(p))`.
    // Holds exactly at bucket granularity because both sides bucketize
    // identically.
    proptest! {
        #[test]
        fn merge_percentile_bounded_by_max_input(
            xs in proptest::collection::vec(0u64..1_000_000_000, 1..64),
            ys in proptest::collection::vec(0u64..1_000_000_000, 1..64),
            p in 0.01f64..1.0,
        ) {
            let mut a = LatencyHistogram::new();
            for &x in &xs { a.record(x); }
            let mut b = LatencyHistogram::new();
            for &y in &ys { b.record(y); }
            let mut m = a.clone();
            m.merge(&b);
            prop_assert_eq!(m.count(), a.count() + b.count());
            prop_assert_eq!(m.sum(), a.sum() + b.sum());
            prop_assert!(m.percentile(p) <= a.percentile(p).max(b.percentile(p)));
        }
    }

    // A reported percentile never undershoots the true quantile of the
    // recorded samples (the bucket upper bound is conservative).
    proptest! {
        #[test]
        fn percentile_upper_bounds_true_quantile(
            xs in proptest::collection::vec(0u64..1_000_000_000, 1..64),
            p in 0.01f64..1.0,
        ) {
            let mut h = LatencyHistogram::new();
            for &x in &xs { h.record(x); }
            let mut xs = xs.clone();
            xs.sort_unstable();
            let rank = ((p * xs.len() as f64).ceil() as usize).clamp(1, xs.len());
            prop_assert!(h.percentile(p) >= xs[rank - 1]);
        }
    }
}
