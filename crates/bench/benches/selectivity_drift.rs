//! Criterion bench: static-initial vs rate-only-adaptive vs full-adaptive
//! vs static-oracle engines over a selectivity-drifting stock stream —
//! arrival rates stay flat for the whole run while the correlations (and
//! with them the cheap evaluation order) flip at the phase boundary.
//!
//! All four configurations detect the identical match count (asserted
//! inside the measured closure). The rate-only engine cannot see the drift
//! and tracks static-initial; the full engine re-estimates selectivities
//! online, swaps once, and runs each phase on that phase's best plan —
//! matching (and on balanced phases beating) the static-oracle bound.

use cep_adaptive::{AdaptiveConfig, AdaptiveEngine, PlanKind, PlanReplanner, Replanner};
use cep_bench::env::selectivity_drift_workload;
use cep_core::engine::{run_to_completion, Engine, EngineConfig};
use cep_optimizer::{OrderAlgorithm, Planner};
use criterion::{criterion_group, criterion_main, Criterion};
use std::hint::black_box;
use std::time::Duration;

fn selectivity_drift(c: &mut Criterion) {
    // Symmetric phases: each static plan is optimal for exactly half of
    // the stream, so full-stream time exposes what each configuration pays
    // for the half its plan is wrong about. The adaptive engine tracks the
    // best plan through both phases and can therefore beat even the
    // oracle, whose hindsight plan is stale for all of phase 1.
    let (gen, cp, initial_sels, oracle_sels) =
        selectivity_drift_workload(15_000, 15_000, 0xCE9, 3_000);
    let stats = gen.stats();
    let replanner_for = |sels: &[f64]| {
        PlanReplanner::new(
            vec![(cp.clone(), sels.to_vec())],
            &stats,
            Planner::default(),
            PlanKind::Order(OrderAlgorithm::DpLd),
            EngineConfig::default(),
        )
        .expect("selectivities match the pattern's predicates")
    };
    let initial = replanner_for(&initial_sels);
    let oracle = replanner_for(&oracle_sels);
    let adaptive_cfg = AdaptiveConfig {
        horizon_ms: 3_000,
        drift_threshold: 0.5,
        check_every: 32,
        cooldown_events: 128,
        ..AdaptiveConfig::default()
    };
    let expected = {
        let mut engine = initial.build();
        run_to_completion(engine.as_mut(), &gen.stream, false).match_count
    };
    let mut group = c.benchmark_group("selectivity_drift");
    group
        .sample_size(10)
        .warm_up_time(Duration::from_millis(300))
        .measurement_time(Duration::from_secs(2));
    let mut run = |name: &str, mut build: Box<dyn FnMut() -> Box<dyn Engine>>| {
        group.bench_function(name, |b| {
            b.iter(|| {
                let mut engine = build();
                let r = run_to_completion(engine.as_mut(), &gen.stream, false);
                assert_eq!(r.match_count, expected, "plan swaps must stay exact");
                black_box(r.match_count)
            })
        });
    };
    {
        let initial = initial.clone();
        run("static_initial", Box::new(move || initial.build()));
    }
    {
        let initial = initial.clone();
        let cfg = adaptive_cfg.clone();
        let window = cp.window;
        run(
            "rate_only_adaptive",
            Box::new(move || Box::new(AdaptiveEngine::new(initial.clone(), window, cfg.clone()))),
        );
    }
    {
        let initial = initial.clone();
        let cfg = adaptive_cfg.clone();
        let window = cp.window;
        run(
            "full_adaptive",
            Box::new(move || {
                Box::new(AdaptiveEngine::new(
                    initial.clone().with_selectivity_monitoring(3_000, 0.5, 512),
                    window,
                    cfg.clone(),
                ))
            }),
        );
    }
    run("static_oracle", Box::new(move || oracle.build()));
    group.finish();
}

criterion_group!(benches, selectivity_drift);
criterion_main!(benches);
