//! Criterion benchmark for Figure 17(b): plan-generation time by algorithm
//! and pattern size. The paper's headline: DP methods blow up exponentially
//! (50+ hours at n = 22 for DP-B) while the heuristics stay sub-second.

use cep_bench::env::{ExperimentEnv, Scale};
use cep_core::compile::CompiledPattern;
use cep_optimizer::{OrderAlgorithm, Planner, TreeAlgorithm};
use cep_streamgen::{
    analytic_measured_stats, analytic_selectivities, generate_pattern, PatternSetKind,
};
use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use rand::rngs::StdRng;
use rand::SeedableRng;
use std::hint::black_box;
use std::time::Duration;

fn plan_generation(c: &mut Criterion) {
    let mut scale = Scale::quick();
    scale.duration_ms = 1_000; // planning only; the stream is irrelevant
    let env = ExperimentEnv::setup(scale);
    let planner = Planner::default();
    let measured = analytic_measured_stats(&env.gen);
    let mut rng = StdRng::seed_from_u64(17);
    let mut group = c.benchmark_group("fig17_plan_generation");
    group
        .sample_size(10)
        .warm_up_time(Duration::from_millis(200))
        .measurement_time(Duration::from_secs(1));
    for size in [4usize, 8, 12, 16] {
        let pattern = generate_pattern(
            PatternSetKind::Sequence,
            size,
            &env.gen,
            &env.workload,
            &mut rng,
        )
        .unwrap()
        .pattern;
        let cp = CompiledPattern::compile_single(&pattern).unwrap();
        let sels = analytic_selectivities(&cp, &env.gen);
        let stats = planner.stats_for(&cp, &measured, &sels).unwrap();
        group.bench_with_input(BenchmarkId::new("GREEDY", size), &size, |b, _| {
            b.iter(|| black_box(planner.plan_order(&cp, &stats, OrderAlgorithm::Greedy)))
        });
        group.bench_with_input(BenchmarkId::new("II-GREEDY", size), &size, |b, _| {
            b.iter(|| black_box(planner.plan_order(&cp, &stats, OrderAlgorithm::IIGreedy)))
        });
        group.bench_with_input(BenchmarkId::new("DP-LD", size), &size, |b, _| {
            b.iter(|| black_box(planner.plan_order(&cp, &stats, OrderAlgorithm::DpLd)))
        });
        group.bench_with_input(BenchmarkId::new("ZSTREAM", size), &size, |b, _| {
            b.iter(|| black_box(planner.plan_tree(&cp, &stats, TreeAlgorithm::ZStream)))
        });
        if size <= 16 {
            group.bench_with_input(BenchmarkId::new("DP-B", size), &size, |b, _| {
                b.iter(|| black_box(planner.plan_tree(&cp, &stats, TreeAlgorithm::DpB)))
            });
        }
    }
    group.finish();
}

criterion_group!(benches, plan_generation);
criterion_main!(benches);
