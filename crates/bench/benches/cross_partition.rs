//! Criterion bench: replicate-join sharding on a **cross-partition**
//! workload — stock updates correlated by account but partitioned by
//! symbol, the shape split-only routing cannot serve exactly.
//!
//! Sweeps 1/2/4/8 worker shards under `RoutingPolicy::ReplicateJoin`
//! against the single-threaded engine as the serial baseline. The
//! replicate-join merge must produce the identical match count at every
//! shard count (asserted inside the measured closure — an O(1) check), so
//! the sweep isolates the parallel speedup *net of* the broadcast
//! overhead of the replicated low-rate side.

use cep_bench::env::cross_key_stock_workload;
use cep_core::engine::{run_to_completion, Engine, EngineConfig};
use cep_core::partition::QueryPartitioner;
use cep_core::stats::MeasuredStats;
use cep_nfa::NfaEngine;
use cep_shard::{RoutingPolicy, ShardedRuntime};
use criterion::{criterion_group, criterion_main, Criterion};
use std::hint::black_box;
use std::sync::Arc;
use std::time::Duration;

fn cross_partition(c: &mut Criterion) {
    let (gen, cp) = cross_key_stock_workload(60_000, 1.0, 0xC0A, 128, 5_000);
    let stats = MeasuredStats::measure(&gen.stream);
    let spec = QueryPartitioner::analyze_measured(std::slice::from_ref(&cp), &stats)
        .expect("cross-key query partitions");
    let policy = RoutingPolicy::ReplicateJoin(Arc::new(spec));
    let factory = {
        move || {
            Box::new(NfaEngine::with_trivial_plan(
                cp.clone(),
                EngineConfig::default(),
            )) as Box<dyn Engine>
        }
    };
    let expected = {
        let mut engine = factory();
        run_to_completion(engine.as_mut(), &gen.stream, false).match_count
    };
    let mut group = c.benchmark_group("cross_partition");
    group
        .sample_size(10)
        .warm_up_time(Duration::from_millis(300))
        .measurement_time(Duration::from_secs(2));
    group.bench_function("serial", |b| {
        b.iter(|| {
            let mut engine = factory();
            let r = run_to_completion(engine.as_mut(), &gen.stream, false);
            assert_eq!(r.match_count, expected);
            black_box(r.match_count)
        })
    });
    for shards in [1usize, 2, 4, 8] {
        let runtime = ShardedRuntime::with_shards(shards);
        group.bench_function(format!("replicate_join_shards_{shards}"), |b| {
            b.iter(|| {
                let r = runtime.run(&factory, &gen.stream, policy.clone(), false);
                assert_eq!(
                    r.match_count, expected,
                    "replicate-join must stay exact across partitions"
                );
                black_box(r.match_count)
            })
        });
    }
    group.finish();
}

criterion_group!(benches, cross_partition);
criterion_main!(benches);
