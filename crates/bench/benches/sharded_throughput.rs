//! Criterion bench: sharded-runtime throughput sweeping 1/2/4/8 worker
//! shards over a partition-replicated stock workload (plus the
//! single-threaded engine as the serial baseline).
//!
//! The query equates the `replica` attribute across all positions, so it
//! is partition-local: every shard count detects the identical match set
//! (asserted inside the measured closure — the check is O(1) on counts),
//! and the sweep isolates the runtime's parallel speedup.

use cep_bench::env::replicated_stock_workload;
use cep_core::engine::{run_to_completion, Engine, EngineConfig};
use cep_nfa::NfaEngine;
use cep_shard::{RoutingPolicy, ShardedRuntime};
use criterion::{criterion_group, criterion_main, Criterion};
use std::hint::black_box;
use std::time::Duration;

fn sharded(c: &mut Criterion) {
    let (gen, cp) = replicated_stock_workload(20_000, 0.5, 0xCE9, 8, 5_000);
    let factory = {
        move || {
            Box::new(NfaEngine::with_trivial_plan(
                cp.clone(),
                EngineConfig::default(),
            )) as Box<dyn Engine>
        }
    };
    let expected = {
        let mut engine = factory();
        run_to_completion(engine.as_mut(), &gen.stream, false).match_count
    };
    let mut group = c.benchmark_group("sharded_throughput");
    group
        .sample_size(10)
        .warm_up_time(Duration::from_millis(300))
        .measurement_time(Duration::from_secs(2));
    group.bench_function("serial", |b| {
        b.iter(|| {
            let mut engine = factory();
            let r = run_to_completion(engine.as_mut(), &gen.stream, false);
            assert_eq!(r.match_count, expected);
            black_box(r.match_count)
        })
    });
    for shards in [1usize, 2, 4, 8] {
        let runtime = ShardedRuntime::with_shards(shards);
        group.bench_function(format!("shards_{shards}"), |b| {
            b.iter(|| {
                let r = runtime.run(&factory, &gen.stream, RoutingPolicy::Partition, false);
                assert_eq!(r.match_count, expected, "sharding must stay exact");
                black_box(r.match_count)
            })
        });
    }
    group.finish();
}

criterion_group!(benches, sharded);
criterion_main!(benches);
