//! Criterion bench: static-initial-plan vs adaptive vs static-oracle-plan
//! engines over a drifting-rate stock stream (frequent and rare types swap
//! roles at the halfway point).
//!
//! All three configurations detect the identical match count (asserted
//! inside the measured closure); the adaptive engine pays a bounded
//! replay cost at the swap and then runs on the post-drift-optimal plan,
//! so it lands between the two static bounds — far from static-initial,
//! close to static-oracle.

use cep_adaptive::{AdaptiveConfig, AdaptiveEngine, PlanKind, PlanReplanner, Replanner};
use cep_bench::env::drifting_stock_workload;
use cep_core::engine::{run_to_completion, Engine, EngineConfig};
use cep_core::stats::MeasuredStats;
use cep_optimizer::{OrderAlgorithm, Planner};
use criterion::{criterion_group, criterion_main, Criterion};
use std::hint::black_box;
use std::time::Duration;

fn adaptive_drift(c: &mut Criterion) {
    // A short pre-drift phase and a long post-drift one: the full-stream
    // iteration time is then dominated by the regime the initial plan is
    // wrong for, which is exactly what adaptivity recovers.
    let (gen, cp, sels) = drifting_stock_workload(5_000, 25_000, 0xCE9, 3_000);
    let replanner_for = |stats: &MeasuredStats| {
        PlanReplanner::new(
            vec![(cp.clone(), sels.clone())],
            stats,
            Planner::default(),
            PlanKind::Order(OrderAlgorithm::DpLd),
            EngineConfig::default(),
        )
        .expect("selectivities match the pattern's predicates")
    };
    let initial = replanner_for(&gen.initial_stats());
    let oracle = replanner_for(&gen.final_stats());
    let adaptive_cfg = AdaptiveConfig {
        horizon_ms: 3_000,
        drift_threshold: 0.5,
        check_every: 32,
        cooldown_events: 128,
        ..AdaptiveConfig::default()
    };
    let expected = {
        let mut engine = initial.build();
        run_to_completion(engine.as_mut(), &gen.stream, false).match_count
    };
    let mut group = c.benchmark_group("adaptive_drift");
    group
        .sample_size(10)
        .warm_up_time(Duration::from_millis(300))
        .measurement_time(Duration::from_secs(2));
    let mut run = |name: &str, mut build: Box<dyn FnMut() -> Box<dyn Engine>>| {
        group.bench_function(name, |b| {
            b.iter(|| {
                let mut engine = build();
                let r = run_to_completion(engine.as_mut(), &gen.stream, false);
                assert_eq!(r.match_count, expected, "plan swaps must stay exact");
                black_box(r.match_count)
            })
        });
    };
    {
        let initial = initial.clone();
        run("static_initial", Box::new(move || initial.build()));
    }
    {
        let initial = initial.clone();
        let cfg = adaptive_cfg.clone();
        let window = cp.window;
        run(
            "adaptive",
            Box::new(move || Box::new(AdaptiveEngine::new(initial.clone(), window, cfg.clone()))),
        );
    }
    run("static_oracle", Box::new(move || oracle.build()));
    group.finish();
}

criterion_group!(benches, adaptive_drift);
criterion_main!(benches);
