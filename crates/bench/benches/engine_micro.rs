//! Criterion micro-benchmarks: raw engine throughput per evaluation model
//! and plan, on a fixed synthetic sequence workload. These are the
//! engine-side counterpart of Figures 4/6 at micro scale.

use cep_bench::env::{ExperimentEnv, Scale};
use cep_bench::runner::{plan_pattern, Algo};
use cep_core::engine::{run_to_completion, Engine, EngineConfig};
use cep_nfa::NfaEngine;
use cep_optimizer::{OrderAlgorithm, TreeAlgorithm};
use cep_streamgen::PatternSetKind;
use cep_tree::TreeEngine;
use criterion::{criterion_group, criterion_main, Criterion};
use std::hint::black_box;
use std::time::Duration;

fn bench_env() -> ExperimentEnv {
    let mut scale = Scale::quick();
    scale.duration_ms = 20_000;
    scale.per_size = 1;
    scale.sizes = 4..=4;
    ExperimentEnv::setup(scale)
}

fn engines(c: &mut Criterion) {
    let env = bench_env();
    let pattern = &env.pattern_set(PatternSetKind::Sequence)[0].pattern;
    let mut group = c.benchmark_group("engine_micro");
    group
        .sample_size(10)
        .warm_up_time(Duration::from_millis(300))
        .measurement_time(Duration::from_secs(2));
    for (name, algo) in [
        ("nfa_trivial", Algo::Order(OrderAlgorithm::Trivial)),
        ("nfa_dp_ld", Algo::Order(OrderAlgorithm::DpLd)),
        ("tree_zstream", Algo::Tree(TreeAlgorithm::ZStream)),
        ("tree_dp_b", Algo::Tree(TreeAlgorithm::DpB)),
    ] {
        let planned = plan_pattern(pattern, &env, algo, 0.0).expect("planning succeeds");
        group.bench_function(name, |b| {
            b.iter(|| {
                let (cp, _, plan) = &planned.branches[0];
                let mut engine: Box<dyn Engine> = match plan {
                    cep_bench::runner::BranchPlan::Order(p) => Box::new(
                        NfaEngine::new(cp.clone(), p.clone(), EngineConfig::default()).unwrap(),
                    ),
                    cep_bench::runner::BranchPlan::Tree(p) => Box::new(
                        TreeEngine::new(cp.clone(), p.clone(), EngineConfig::default()).unwrap(),
                    ),
                };
                let r = run_to_completion(engine.as_mut(), env.stream(), false);
                black_box(r.match_count)
            })
        });
    }
    group.finish();
}

criterion_group!(benches, engines);
criterion_main!(benches);
