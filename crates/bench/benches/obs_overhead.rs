//! Criterion bench: tracing overhead on the hot path.
//!
//! Three configurations over the same drifting-rate adaptive workload:
//!
//! * `untraced` — `run_to_completion`, the PR 5 baseline path;
//! * `tracer_disabled` — `run_traced` with a constructed-but-disabled
//!   tracer, measuring the cost of the enabled checks alone (the
//!   acceptance bound: within 2% of `untraced`);
//! * `tracer_ring` — a live tracer into a bounded ring, measuring the
//!   full cost of record construction and emission.

use cep_adaptive::{AdaptiveConfig, AdaptiveEngine, PlanKind, PlanReplanner};
use cep_bench::env::drifting_stock_workload;
use cep_core::engine::{run_to_completion, run_traced, EngineConfig};
use cep_obs::{RingSink, Tracer};
use cep_optimizer::{OrderAlgorithm, Planner};
use criterion::{criterion_group, criterion_main, Criterion};
use std::hint::black_box;
use std::sync::Arc;
use std::time::Duration;

fn obs_overhead(c: &mut Criterion) {
    let window_ms = 3_000;
    let (gen, cp, sels) = drifting_stock_workload(4_000, 12_000, 0xCE9, window_ms);
    let replanner = PlanReplanner::new(
        vec![(cp, sels)],
        &gen.initial_stats(),
        Planner::default(),
        PlanKind::Order(OrderAlgorithm::DpLd),
        EngineConfig::default(),
    )
    .expect("selectivities match the pattern's predicates");
    let cfg = AdaptiveConfig {
        horizon_ms: window_ms,
        drift_threshold: 0.5,
        check_every: 32,
        cooldown_events: 128,
        ..AdaptiveConfig::default()
    };
    let build = |tracer: &Tracer| {
        AdaptiveEngine::new(replanner.clone(), window_ms, cfg.clone()).with_tracer(tracer.clone())
    };

    let expected = {
        let mut engine = build(&Tracer::disabled());
        run_to_completion(&mut engine, &gen.stream, false).match_count
    };
    let mut group = c.benchmark_group("obs_overhead");
    group
        .sample_size(10)
        .warm_up_time(Duration::from_millis(300))
        .measurement_time(Duration::from_secs(2));
    group.bench_function("untraced", |b| {
        b.iter(|| {
            let mut engine = build(&Tracer::disabled());
            let r = run_to_completion(&mut engine, &gen.stream, false);
            assert_eq!(r.match_count, expected);
            black_box(r.match_count)
        })
    });
    group.bench_function("tracer_disabled", |b| {
        let tracer = Tracer::to_sink(Arc::new(RingSink::new(1 << 16)));
        tracer.set_enabled(false);
        b.iter(|| {
            let mut engine = build(&tracer);
            let r = run_traced(&mut engine, &gen.stream, false, &tracer);
            assert_eq!(r.match_count, expected);
            black_box(r.match_count)
        })
    });
    group.bench_function("tracer_ring", |b| {
        let ring = Arc::new(RingSink::new(1 << 16));
        let tracer = Tracer::to_sink(ring.clone());
        b.iter(|| {
            let mut engine = build(&tracer);
            let r = run_traced(&mut engine, &gen.stream, false, &tracer);
            assert_eq!(r.match_count, expected);
            black_box(ring.total_emitted())
        })
    });
    group.finish();
}

criterion_group!(benches, obs_overhead);
criterion_main!(benches);
