//! Ablation benchmarks for the design choices called out in `DESIGN.md` §7:
//!
//! * **II seeding** — iterative improvement from random starts vs the
//!   greedy seed (plan quality is asserted equal-or-better elsewhere; here
//!   we measure the planning-time cost of restarts).
//! * **Kleene cap sensitivity** — engine runtime as the per-accumulator
//!   cap grows (the power-set semantics is exponential by design;
//!   the cap trades recall of long iterations for bounded work).
//! * **Temporal-selectivity constant** — cost-model sensitivity to the
//!   SEQ→AND rewrite's 0.5-per-pair assumption.

use cep_bench::env::{ExperimentEnv, Scale};
use cep_core::compile::CompiledPattern;
use cep_core::engine::{run_to_completion, EngineConfig};
use cep_core::stats::{PatternStats, StatsOptions};
use cep_nfa::NfaEngine;
use cep_optimizer::{OrderAlgorithm, Planner, PlannerConfig};
use cep_streamgen::{
    analytic_measured_stats, analytic_selectivities, generate_pattern, PatternSetKind,
};
use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use rand::rngs::StdRng;
use rand::SeedableRng;
use std::hint::black_box;
use std::time::Duration;

fn ablation_env() -> ExperimentEnv {
    let mut scale = Scale::quick();
    scale.duration_ms = 30_000;
    ExperimentEnv::setup(scale)
}

fn ii_seeding(c: &mut Criterion) {
    let env = ablation_env();
    let planner = Planner::default();
    let measured = analytic_measured_stats(&env.gen);
    let mut rng = StdRng::seed_from_u64(3);
    let pattern = generate_pattern(
        PatternSetKind::Sequence,
        10,
        &env.gen,
        &env.workload,
        &mut rng,
    )
    .unwrap()
    .pattern;
    let cp = CompiledPattern::compile_single(&pattern).unwrap();
    let sels = analytic_selectivities(&cp, &env.gen);
    let stats = planner.stats_for(&cp, &measured, &sels).unwrap();
    let mut group = c.benchmark_group("ablation_ii_seeding");
    group
        .sample_size(10)
        .warm_up_time(Duration::from_millis(200))
        .measurement_time(Duration::from_secs(1));
    for restarts in [1usize, 5, 10, 20] {
        group.bench_with_input(
            BenchmarkId::new("II-RANDOM", restarts),
            &restarts,
            |b, &r| {
                b.iter(|| {
                    black_box(planner.plan_order(
                        &cp,
                        &stats,
                        OrderAlgorithm::IIRandom {
                            restarts: r,
                            seed: 7,
                        },
                    ))
                })
            },
        );
    }
    group.bench_function("II-GREEDY (seeded)", |b| {
        b.iter(|| black_box(planner.plan_order(&cp, &stats, OrderAlgorithm::IIGreedy)))
    });
    group.finish();
}

fn kleene_cap(c: &mut Criterion) {
    let env = ablation_env();
    let mut rng = StdRng::seed_from_u64(11);
    let pattern = generate_pattern(PatternSetKind::Kleene, 4, &env.gen, &env.workload, &mut rng)
        .unwrap()
        .pattern;
    let cp = CompiledPattern::compile_single(&pattern).unwrap();
    let run_once = |cap: usize, compiled: bool| {
        let cfg = EngineConfig {
            max_kleene_events: cap,
            compiled_predicates: compiled,
            ..Default::default()
        };
        let mut engine = NfaEngine::with_trivial_plan(cp.clone(), cfg);
        run_to_completion(&mut engine, env.stream(), false).match_count
    };
    let mut group = c.benchmark_group("ablation_kleene_cap");
    group
        .sample_size(10)
        .warm_up_time(Duration::from_millis(200))
        .measurement_time(Duration::from_secs(1));
    for cap in [2usize, 4, 8, 12] {
        // The compiled pipeline is a pure optimization at every cap: any
        // divergence in match counts makes the timing meaningless, so
        // assert it before measuring.
        assert_eq!(
            run_once(cap, false),
            run_once(cap, true),
            "compiled pipeline changed match counts at kleene cap {cap}"
        );
        for (label, compiled) in [("nfa-interpreted", false), ("nfa-compiled", true)] {
            group.bench_with_input(BenchmarkId::new(label, cap), &cap, |b, &cap| {
                b.iter(|| black_box(run_once(cap, compiled)))
            });
        }
    }
    group.finish();
}

/// Sensitivity of the planner to the bounded-Kleene rate refinement
/// (`StatsOptions::max_kleene_events`): planning time and the chosen
/// order as the cost model moves from power-set semantics (no cap) to the
/// Σ C(m, j) subset count a capped engine can actually materialize.
fn kleene_cost_refinement(c: &mut Criterion) {
    let env = ablation_env();
    let measured = analytic_measured_stats(&env.gen);
    let mut rng = StdRng::seed_from_u64(11);
    let pattern = generate_pattern(PatternSetKind::Kleene, 5, &env.gen, &env.workload, &mut rng)
        .unwrap()
        .pattern;
    let cp = CompiledPattern::compile_single(&pattern).unwrap();
    let sels = analytic_selectivities(&cp, &env.gen);
    let mut group = c.benchmark_group("ablation_kleene_cost_refinement");
    group
        .sample_size(10)
        .warm_up_time(Duration::from_millis(200))
        .measurement_time(Duration::from_secs(1));
    for cap in [None, Some(2usize), Some(4), Some(8), Some(12)] {
        let planner = match cap {
            None => Planner::default(),
            Some(k) => Planner::default().with_max_kleene_events(k),
        };
        let stats = planner.stats_for(&cp, &measured, &sels).unwrap();
        let label = cap.map_or("unbounded".to_string(), |k| k.to_string());
        let order = planner
            .plan_order(&cp, &stats, OrderAlgorithm::DpLd)
            .unwrap();
        eprintln!(
            "kleene cost refinement cap={label}: DP-LD order {:?}",
            order.order()
        );
        group.bench_with_input(BenchmarkId::new("DP-LD", &label), &cap, |b, _| {
            b.iter(|| black_box(planner.plan_order(&cp, &stats, OrderAlgorithm::DpLd)))
        });
    }
    group.finish();
}

fn temporal_selectivity(c: &mut Criterion) {
    // Not a timing question but a stability one: measure the planning time
    // while recording (via eprintln at setup) how the chosen plan reacts to
    // the temporal-selectivity constant.
    let env = ablation_env();
    let measured = analytic_measured_stats(&env.gen);
    let mut rng = StdRng::seed_from_u64(19);
    let pattern = generate_pattern(
        PatternSetKind::Sequence,
        7,
        &env.gen,
        &env.workload,
        &mut rng,
    )
    .unwrap()
    .pattern;
    let cp = CompiledPattern::compile_single(&pattern).unwrap();
    let mut group = c.benchmark_group("ablation_temporal_selectivity");
    group
        .sample_size(10)
        .warm_up_time(Duration::from_millis(200))
        .measurement_time(Duration::from_secs(1));
    for ts in [0.25f64, 0.5, 0.75, 1.0] {
        let planner = Planner::new(PlannerConfig {
            stats_options: StatsOptions {
                temporal_selectivity: ts,
                ..Default::default()
            },
            ..Default::default()
        });
        let sels = analytic_selectivities(&cp, &env.gen);
        let stats: PatternStats = planner.stats_for(&cp, &measured, &sels).unwrap();
        group.bench_with_input(BenchmarkId::new("DP-LD", format!("{ts}")), &ts, |b, _| {
            b.iter(|| black_box(planner.plan_order(&cp, &stats, OrderAlgorithm::DpLd)))
        });
    }
    group.finish();
}

criterion_group!(
    benches,
    ii_seeding,
    kleene_cap,
    kleene_cost_refinement,
    temporal_selectivity
);
criterion_main!(benches);
