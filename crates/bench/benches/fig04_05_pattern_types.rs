//! Criterion benchmark backing Figures 4/5: full plan+run cycles per
//! pattern category for the flagship algorithm of each family (native CPG
//! baseline vs best adapted JQPG method).

use cep_bench::env::{ExperimentEnv, Scale};
use cep_bench::runner::{plan_and_run, Algo};
use cep_core::engine::EngineConfig;
use cep_optimizer::{OrderAlgorithm, TreeAlgorithm};
use cep_streamgen::PatternSetKind;
use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use std::hint::black_box;
use std::time::Duration;

fn pattern_types(c: &mut Criterion) {
    let mut scale = Scale::quick();
    scale.duration_ms = 10_000;
    scale.per_size = 1;
    scale.sizes = 4..=4;
    let env = ExperimentEnv::setup(scale);
    let cfg = EngineConfig {
        max_kleene_events: 8,
        ..Default::default()
    };
    let mut group = c.benchmark_group("fig04_05_pattern_types");
    group
        .sample_size(10)
        .warm_up_time(Duration::from_millis(200))
        .measurement_time(Duration::from_secs(2));
    let algos = [
        ("EFREQ", Algo::Order(OrderAlgorithm::EFreq)),
        ("DP-LD", Algo::Order(OrderAlgorithm::DpLd)),
        ("ZSTREAM", Algo::Tree(TreeAlgorithm::ZStream)),
        ("DP-B", Algo::Tree(TreeAlgorithm::DpB)),
    ];
    for kind in PatternSetKind::all() {
        let pattern = env.pattern_set(kind)[0].pattern.clone();
        for (name, algo) in algos {
            group.bench_with_input(
                BenchmarkId::new(name, kind.to_string()),
                &pattern,
                |b, p| {
                    b.iter(|| black_box(plan_and_run(p, &env, algo, 0.0, &cfg).unwrap().matches))
                },
            );
        }
    }
    group.finish();
}

criterion_group!(benches, pattern_types);
criterion_main!(benches);
